# Convenience wrapper around dune.  `make check` is the whole gate:
# build everything, run the static-analysis lint over every shipped
# scenario (config lint + trace invariant check + bounded exhaustive
# checker), then the test suite.

.PHONY: all build lint test check clean

all: build

build:
	dune build @all

lint:
	dune build @lint

test:
	dune runtest

check:
	dune build @all @lint && dune runtest

clean:
	dune clean
