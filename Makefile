# Convenience wrapper around dune.  `make check` is the whole gate:
# build everything, run the static-analysis lint over every shipped
# scenario (config lint + trace invariant check + bounded exhaustive
# checker), then the test suite (which includes the campaign smoke
# gate), then explicit 2-worker campaign runs — the clean smoke
# campaign and the fault-injection sweep — each compared against its
# committed golden report.

.PHONY: all build lint test check clean campaign-smoke campaign-baseline \
  faults-smoke

all: build

build:
	dune build @all

lint:
	dune build @lint

test:
	dune runtest

# Run the smoke campaign with 2 workers and gate it against the
# committed golden report; exits non-zero on any metric regression.
campaign-smoke: build
	dune exec bin/ddcr_campaign.exe -- compare smoke -j 2 --quiet \
	  -o _build/BENCH_smoke.current.json \
	  --baseline test/fixtures/BENCH_smoke_golden.json

# Run the fault-injection sweep (burst noise, misperception, crash
# windows over DDCR) and gate it against the committed golden report.
faults-smoke: build
	dune exec bin/ddcr_campaign.exe -- compare fault_sweep -j 2 --quiet \
	  -o _build/BENCH_fault_sweep.current.json \
	  --baseline test/fixtures/BENCH_fault_sweep.json

# Refresh the committed campaign baselines after an intentional
# behaviour change (review the diff before committing!).
campaign-baseline: build
	dune exec bin/ddcr_campaign.exe -- run campaign_v1 -j 2 --quiet \
	  -o BENCH_campaign_v1.json
	dune exec bin/ddcr_campaign.exe -- run smoke -j 2 --quiet \
	  -o test/fixtures/BENCH_smoke_golden.json
	dune exec bin/ddcr_campaign.exe -- run fault_sweep -j 2 --quiet \
	  -o test/fixtures/BENCH_fault_sweep.json

check:
	dune build @all @lint && dune runtest && $(MAKE) campaign-smoke \
	  && $(MAKE) faults-smoke

clean:
	dune clean
