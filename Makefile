# Convenience wrapper around dune.  `make check` is the whole gate:
# build everything, run the static-analysis lint over every shipped
# scenario (config lint + trace invariant check + bounded exhaustive
# checker), then the test suite (which includes the campaign smoke
# gate), then explicit 2-worker campaign runs — the clean smoke
# campaign and the fault-injection sweep — each compared against its
# committed golden report.

.PHONY: all build lint test check clean campaign-smoke campaign-baseline \
  faults-smoke telemetry-smoke chaos-smoke model-smoke topo-smoke \
  topo-faults-smoke obs-smoke admit-smoke

all: build

build:
	dune build @all

lint:
	dune build @lint

test:
	dune runtest

# Run the smoke campaign with 2 workers and gate it against the
# committed golden report; exits non-zero on any metric regression.
campaign-smoke: build
	dune exec bin/ddcr_campaign.exe -- compare smoke -j 2 --quiet \
	  -o _build/BENCH_smoke.current.json \
	  --baseline test/fixtures/BENCH_smoke_golden.json

# Run the fault-injection sweep (burst noise, misperception, crash
# windows over DDCR) and gate it against the committed golden report.
faults-smoke: build
	dune exec bin/ddcr_campaign.exe -- compare fault_sweep -j 2 --quiet \
	  -o _build/BENCH_fault_sweep.current.json \
	  --baseline test/fixtures/BENCH_fault_sweep.json

# End-to-end telemetry gate: record a DDCR run with the full probe
# stack, export its Perfetto timeline, then validate it (JSON parses,
# spans nest, every transmission span's class headroom >= 0) and run
# a profiled 2-worker campaign whose worker timeline must validate
# too.
telemetry-smoke: build
	dune exec bin/ddcr_sim.exe -- -s videoconference -n 4 --horizon-ms 2 \
	  --telemetry --trace-out _build/telemetry_smoke.json > /dev/null
	dune exec bin/ddcr_lint.exe -- --check-perfetto _build/telemetry_smoke.json
	dune exec bin/ddcr_campaign.exe -- run smoke -j 2 --quiet --profile \
	  --profile-trace _build/telemetry_workers.json \
	  -o _build/BENCH_smoke.profile.json > /dev/null
	dune exec bin/ddcr_lint.exe -- --check-perfetto _build/telemetry_workers.json

# Adversarial fault-schedule gate: the committed chaos search config
# must still find a violation, the delta-debugging shrinker must
# minimize the 4-event finding to one event and reproduce the
# committed artifact byte-for-byte, the frozen repro must replay with
# the same verdict and trace fingerprint, and tampered/invalid
# artifacts must be rejected with the documented exit codes.
chaos-smoke: build
	dune build @chaos-smoke

# Explicit-state model-checking gate: exhaustively verify the small
# uniform instance clean, re-find the committed broken-ξ
# counterexample (exit 1 asserted), regenerate its replay artifact
# byte-for-byte, replay it through ddcr_chaos, and lint-check the v2
# artifact plus a torn copy (exit 2 asserted).
model-smoke: build
	dune build @model-smoke

# Multi-hop topology gate: the committed fixtures must keep their
# documented admission verdicts (admitted / budget-below-B_DDCR /
# malformed route), the admitted 1008-source star must simulate to the
# horizon with zero unexcused end-to-end misses with the domain-sharded
# run byte-identical to the single-domain one, and the topology_sweep
# campaign must reproduce its committed golden report.
topo-smoke: build
	dune build @topo-smoke
	dune exec bin/ddcr_campaign.exe -- compare topology_sweep --quiet \
	  -o _build/BENCH_topology_sweep.current.json \
	  --baseline test/fixtures/BENCH_topology_sweep.json

# Fault-tolerant federation gate: the committed 3-segment tree must
# keep its documented fault-aware admission verdicts (survivable crash
# admitted / deadline-swallowing crash OVERLOADED / out-of-segment
# station malformed), the admitted tree must simulate through the
# bridge crash with zero unexcused misses and a DEGRADED/RESTORED
# transition pair, the topology chaos search must still find the
# seeded bridge-crash accept-then-violate counterexample and shrink it
# to the committed artifact byte-for-byte, and the topology_fault_sweep
# campaign must reproduce its committed golden report.
topo-faults-smoke: build
	dune build @topo-faults-smoke
	dune exec bin/ddcr_campaign.exe -- compare topology_fault_sweep --quiet \
	  -o _build/BENCH_topology_fault_sweep.current.json \
	  --baseline test/fixtures/BENCH_topology_fault_sweep.json

# Observability gate: the seeded federated fault run must dump a
# postmortem byte-identical to the committed golden (and ddcr_chaos
# replay must regenerate the frozen failure's postmortem likewise),
# the stitched cross-segment causal flows must pass ddcr_lint
# --check-perfetto (with the corrupted-flow fixture asserted to exit
# 1), an attached-but-disabled flight recorder must cost within noise
# of no recorder at all (Bechamel guard), and the perf_v1 campaign
# must reproduce the metrics frozen in BENCH_perf.json (the slots/sec
# trajectory rides in its stripped "perf" section).
obs-smoke: build
	dune build @obs-smoke
	dune exec bench/obs_guard.exe
	dune exec bin/ddcr_campaign.exe -- compare perf_v1 --quiet \
	  -o _build/BENCH_perf.current.json \
	  --baseline BENCH_perf.json

# Crash-safe admission gate: replay the committed churn fixture in
# paranoid mode against the golden decision log and run the seeded
# accept-then-violate chaos pipeline (@admit-smoke); kill -9 the
# service mid-trace with a torn journal record and assert --resume
# completes a decision log byte-identical to the golden; re-measure
# the churn throughput and gate it against the committed
# BENCH_admit_churn.json (counts exact, decisions/s within the floor);
# and pin the incremental engine at >= 10x the from-scratch analysis
# (Bechamel guard).
admit-smoke: build
	dune build @admit-smoke
	rm -f _build/admit_crash.log _build/admit_crash.wal _build/admit_crash.wal.snap
	-dune exec bin/ddcr_admit.exe -- run test/fixtures/admit_churn_smoke.json \
	  -o _build/admit_crash.log --journal _build/admit_crash.wal \
	  --crash-after 97 --crash-torn --quiet
	dune exec bin/ddcr_admit.exe -- run test/fixtures/admit_churn_smoke.json \
	  -o _build/admit_crash.log --journal _build/admit_crash.wal --resume \
	  --quiet
	cmp test/fixtures/admit_decisions_golden.log _build/admit_crash.log
	dune exec bin/ddcr_admit.exe -- run test/fixtures/admit_churn_smoke.json \
	  -o _build/admit_bench.log \
	  --bench-out _build/BENCH_admit_churn.current.json --quiet
	dune exec bin/ddcr_admit.exe -- compare \
	  _build/BENCH_admit_churn.current.json --baseline BENCH_admit_churn.json
	dune exec bench/admit_guard.exe

# Refresh the committed campaign baselines after an intentional
# behaviour change (review the diff before committing!).
campaign-baseline: build
	dune exec bin/ddcr_campaign.exe -- run campaign_v1 -j 2 --quiet \
	  -o BENCH_campaign_v1.json
	dune exec bin/ddcr_campaign.exe -- run smoke -j 2 --quiet \
	  -o test/fixtures/BENCH_smoke_golden.json
	dune exec bin/ddcr_campaign.exe -- run fault_sweep -j 2 --quiet \
	  -o test/fixtures/BENCH_fault_sweep.json
	dune exec bin/ddcr_campaign.exe -- run topology_sweep --quiet \
	  -o test/fixtures/BENCH_topology_sweep.json
	dune exec bin/ddcr_campaign.exe -- run topology_fault_sweep --quiet \
	  -o test/fixtures/BENCH_topology_fault_sweep.json
	dune exec bin/ddcr_campaign.exe -- run perf_v1 --profile --quiet \
	  -o BENCH_perf.json

check:
	dune build @all @lint && dune runtest && $(MAKE) campaign-smoke \
	  && $(MAKE) faults-smoke && $(MAKE) telemetry-smoke \
	  && $(MAKE) chaos-smoke && $(MAKE) model-smoke && $(MAKE) topo-smoke \
	  && $(MAKE) topo-faults-smoke && $(MAKE) obs-smoke \
	  && $(MAKE) admit-smoke

clean:
	dune clean
