(* Shared cmdliner terms for the rtnet command-line tools. *)

open Cmdliner

let scenario_doc =
  "Workload scenario: videoconference, atc, trading, atm, manufacturing, \
   skewed, uniform."

(* One source of truth for scenario naming: the campaign spec's
   scenario decoder, so `ddcr_sim -s trading -n 4` and a campaign cell
   build byte-identical instances. *)
let instance_of ~scenario ~size ~load ~deadline_windows =
  Rtnet_campaign.Spec.instance
    {
      Rtnet_campaign.Spec.sc_kind = scenario;
      sc_size = size;
      sc_load = load;
      sc_deadline_windows = deadline_windows;
      sc_fanout = 1;
    }

let scenario =
  Arg.(
    value
    & opt string "videoconference"
    & info [ "s"; "scenario" ] ~docv:"NAME" ~doc:scenario_doc)

let size =
  Arg.(
    value & opt int 6
    & info [ "n"; "size" ] ~docv:"N"
        ~doc:"Number of stations/radars/gateways/ports/sources.")

let load =
  Arg.(
    value & opt float 0.3
    & info [ "load" ] ~docv:"FRACTION"
        ~doc:"Peak offered load for the uniform scenario.")

let deadline_windows =
  Arg.(
    value & opt float 2.0
    & info [ "deadline-windows" ] ~docv:"K"
        ~doc:"Relative deadline in window units (uniform scenario).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let horizon_ms =
  Arg.(
    value & opt int 50
    & info [ "horizon-ms" ] ~docv:"MS"
        ~doc:"Simulated duration in milliseconds (1 ms = 1e6 bit-times).")

let indices_per_source =
  Arg.(
    value & opt int 1
    & info [ "indices" ] ~docv:"NU"
        ~doc:"Static indices allocated to each source.")

let burst_bits =
  Arg.(
    value & opt int 0
    & info [ "burst" ] ~docv:"BITS"
        ~doc:"Packet-bursting budget in bits (0 disables; 65536 = 802.3z).")

let theta =
  Arg.(
    value & opt int 0
    & info [ "theta" ] ~docv:"BITS"
        ~doc:"Compressed-time increment theta(c) in bit-times (0 = off).")

let allocation =
  let parse = function
    | "round-robin" -> Ok Rtnet_core.Ddcr_params.Round_robin
    | "contiguous" -> Ok Rtnet_core.Ddcr_params.Contiguous
    | "weighted" -> Ok Rtnet_core.Ddcr_params.Weighted
    | other -> Error (`Msg (Printf.sprintf "unknown allocation %S" other))
  in
  let print fmt = function
    | Rtnet_core.Ddcr_params.Round_robin -> Format.pp_print_string fmt "round-robin"
    | Rtnet_core.Ddcr_params.Contiguous -> Format.pp_print_string fmt "contiguous"
    | Rtnet_core.Ddcr_params.Weighted -> Format.pp_print_string fmt "weighted"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Rtnet_core.Ddcr_params.Round_robin
    & info [ "allocation" ] ~docv:"POLICY"
        ~doc:"Static-index allocation: round-robin, contiguous or weighted.")

let adversary =
  Arg.(
    value & flag
    & info [ "adversary" ]
        ~doc:"Replace every arrival law by the greedy peak-load adversary.")
