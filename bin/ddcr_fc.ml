(* ddcr_fc: evaluate the feasibility conditions of Section 4.3 for a
   scenario, or search for a feasible protocol configuration.

   Examples:
     ddcr_fc -s videoconference -n 8
     ddcr_fc -s uniform -n 8 --load 0.5 --dimension *)

module Instance = Rtnet_workload.Instance
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Dimensioning = Rtnet_core.Dimensioning
module Np_edf_fc = Rtnet_edf.Np_edf_fc

open Cmdliner

let dimension =
  Arg.(
    value & flag
    & info [ "dimension" ]
        ~doc:"Search the candidate grid for a provably feasible \
              configuration instead of checking the default one.")

let main scenario size load deadline_windows indices burst theta allocation
    dimension_flag =
  let inst = Cli_common.instance_of ~scenario ~size ~load ~deadline_windows in
  Format.printf "%a@.@." Instance.pp inst;
  let oracle = Np_edf_fc.check inst in
  Format.printf
    "centralized NP-EDF oracle: feasible %b (margin %.3f at t = %d)@.@."
    oracle.Np_edf_fc.np_feasible oracle.Np_edf_fc.np_margin
    oracle.Np_edf_fc.critical_t;
  if dimension_flag then begin
    let verdict = Dimensioning.dimension inst in
    Format.printf "%a@.@." Dimensioning.pp_verdict verdict;
    let p =
      match verdict with
      | Dimensioning.Feasible p | Dimensioning.Infeasible (p, _) -> p
    in
    Format.printf "%a@." Feasibility.pp_report (Feasibility.check p inst)
  end
  else begin
    let p =
      Ddcr_params.with_theta
        (Ddcr_params.with_burst
           (Ddcr_params.default ~indices_per_source:indices ~allocation inst)
           burst)
        theta
    in
    Format.printf "parameters: %a@.@." Ddcr_params.pp p;
    Format.printf "%a@." Feasibility.pp_report (Feasibility.check p inst)
  end;
  0

let cmd =
  let term =
    Term.(
      const main $ Cli_common.scenario $ Cli_common.size $ Cli_common.load
      $ Cli_common.deadline_windows $ Cli_common.indices_per_source
      $ Cli_common.burst_bits $ Cli_common.theta $ Cli_common.allocation
      $ dimension)
  in
  Cmd.v
    (Cmd.info "ddcr_fc"
       ~doc:"Feasibility conditions and dimensioning for CSMA/DDCR")
    term

let () = exit (Cmd.eval' cmd)
