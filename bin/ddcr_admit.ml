(* ddcr_admit: the crash-safe incremental admission-control service.

   `run` drains a churn trace (flow add/remove/modify requests) through
   the incremental Section 4.3 feasibility engine, journaling every
   decision to a length-prefixed write-ahead log with periodic engine
   snapshots.  After a kill -9 mid-churn, `--resume` replays the intact
   journal prefix (snapshot-accelerated) and continues: the completed
   decision log is byte-identical to an uninterrupted run.  `gen`
   samples a reproducible churn trace; `compare` gates a bench report
   against the committed baseline.

   Examples:
     ddcr_admit gen -o churn.json --sources 2 --pool 8 --requests 200
     ddcr_admit run churn.json -o decisions.log --journal churn.wal
     ddcr_admit run churn.json --journal churn.wal --crash-after 100
     ddcr_admit run churn.json --journal churn.wal --resume -o decisions.log
     ddcr_admit run churn.json --paranoid --simulate
     ddcr_admit compare _build/bench.json --baseline BENCH_admit_churn.json

   Exit codes: 0 clean; 1 a differential self-check mismatch, a
   simulated admission violation or a failed compare gate; 2 malformed
   input (trace, config, journal or baseline). *)

module Request = Rtnet_admit.Request
module Engine = Rtnet_admit.Engine
module Journal = Rtnet_admit.Journal
module Service = Rtnet_admit.Service
module Generator = Rtnet_chaos.Generator
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run
module Oracle = Rtnet_analysis.Oracle
module Json = Rtnet_util.Json

open Cmdliner

let ( let* ) = Result.bind

(* -------------------- shared terms -------------------- *)

let quiet =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the progress/summary lines.")

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Deterministic seed (churn sampling / arrival trace).")

(* -------------------- run -------------------- *)

let trace_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE"
        ~doc:"Churn trace to drain (a file written by $(b,ddcr_admit gen)).")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Write the decision log to $(docv) (one canonical journal line \
           per decision; on $(b,--resume) the replayed prefix is \
           re-emitted first, so a completed resumed log is byte-identical \
           to an uninterrupted run's).  Default: stdout.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead journal path.  Without $(b,--resume) the file is \
           truncated and a fresh header written; snapshots live at \
           $(docv).snap.")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Recover from $(b,--journal): drop a torn tail, replay the \
           intact decision prefix (from the latest matching snapshot when \
           one exists), then continue the trace from the next request.")

let chunk =
  Arg.(
    value & opt int Service.default.Service.sv_chunk
    & info [ "chunk" ] ~docv:"N"
        ~doc:"Requests arriving per chunk (1 = steady drip).")

let capacity =
  Arg.(
    value & opt int Service.default.Service.sv_capacity
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Hard queue bound; chunk positions at or past it are shed.")

let high =
  Arg.(
    value & opt int Service.default.Service.sv_high
    & info [ "high" ] ~docv:"N"
        ~doc:"High watermark: chunk size at which degraded mode engages.")

let low =
  Arg.(
    value & opt int Service.default.Service.sv_low
    & info [ "low" ] ~docv:"N"
        ~doc:"Low watermark: backlog at which degraded mode releases.")

let selfcheck_every =
  Arg.(
    value & opt int Service.default.Service.sv_selfcheck_every
    & info [ "selfcheck-every" ] ~docv:"N"
        ~doc:
          "Run the differential self-check (incremental vs from-scratch \
           feasibility, exact equality) every $(docv)-th decision; 0 \
           disables sampling.")

let paranoid =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:"Differential self-check on every decision.")

let snapshot_every =
  Arg.(
    value & opt int Service.default.Service.sv_snapshot_every
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Snapshot the engine state next to the journal every $(docv) \
           decisions; 0 disables (journal-only recovery).")

let simulate =
  Arg.(
    value & flag
    & info [ "simulate" ]
        ~doc:
          "After the churn drains, simulate the admitted set under \
           CSMA/DDCR and fail (exit 1, admission-violation report) if any \
           deadline is missed — the accept-then-violate check.")

let sim_horizon_ms =
  Arg.(
    value & opt int 10
    & info [ "horizon-ms" ] ~docv:"MS"
        ~doc:"Simulated horizon for $(b,--simulate), milliseconds.")

let bench_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench-out" ] ~docv:"FILE"
        ~doc:
          "Write a bench report (decision counts + decisions/s) to \
           $(docv), comparable with $(b,ddcr_admit compare).")

let crash_after =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-after" ] ~docv:"N"
        ~doc:
          "Crash-injection hook: SIGKILL this process (no cleanup, no \
           atexit) immediately before journaling decision N+1, leaving \
           exactly N durable records.  Requires $(b,--journal).")

let crash_torn =
  Arg.(
    value & flag
    & info [ "crash-torn" ]
        ~doc:
          "With $(b,--crash-after): first write half of the fatal \
           record's frame — the torn tail a kill -9 mid-write leaves.")

(* Rebuild the engine from journal + snapshot; returns the engine, the
   replayed records (for log re-emission) and the intact byte prefix. *)
let recover ~trace ~hash ~journal_path =
  let fresh () =
    Engine.create ~phy:trace.Request.tr_phy
      ~num_sources:trace.Request.tr_sources ~params:trace.Request.tr_params
  in
  match journal_path with
  | None ->
    let* eng = fresh () in
    Ok (eng, [], 0, false)
  | Some jp ->
    let* loaded = Journal.load ~path:jp ~trace_hash:hash in
    let records = loaded.Journal.lo_records in
    let replay eng from =
      List.fold_left
        (fun acc r ->
          let* () = acc in
          if r.Journal.jr_seq < from then Ok ()
          else Engine.apply eng r.Journal.jr_request r.Journal.jr_decision)
        (Ok ()) records
    in
    let from_scratch () =
      let* eng = fresh () in
      let* () = replay eng 0 in
      Ok eng
    in
    let* eng =
      match Journal.load_snapshot ~path:jp ~trace_hash:hash with
      | Some (seq, state) when seq <= List.length records -> (
        match
          Engine.restore ~phy:trace.Request.tr_phy
            ~num_sources:trace.Request.tr_sources
            ~params:trace.Request.tr_params state
        with
        | Ok eng ->
          let* () = replay eng seq in
          Ok eng
        | Error _ ->
          (* A bad snapshot degrades to journal-only recovery. *)
          from_scratch ())
      | _ -> from_scratch ()
    in
    Ok (eng, records, loaded.Journal.lo_valid_bytes, loaded.Journal.lo_torn)

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

let run_main trace_file out journal_path resume chunk capacity high low
    selfcheck_every paranoid snapshot_every simulate sim_horizon_ms seed
    bench_out crash_after crash_torn quiet =
  let fail code fmt = Format.kasprintf (fun s -> Format.eprintf "ddcr_admit: %s@." s; code) fmt in
  if crash_after <> None && journal_path = None then
    fail 2 "--crash-after requires --journal"
  else if resume && journal_path = None then fail 2 "--resume requires --journal"
  else
    match Request.load_trace ~path:trace_file with
    | Error e -> fail 2 "%s" e
    | Ok trace -> (
      let config =
        {
          Service.sv_chunk = chunk;
          sv_capacity = capacity;
          sv_high = high;
          sv_low = low;
          sv_selfcheck_every = selfcheck_every;
          sv_paranoid = paranoid;
          sv_snapshot_every = snapshot_every;
        }
      in
      match Service.validate config with
      | Error e -> fail 2 "%s" e
      | Ok () -> (
        let hash = Request.trace_hash trace in
        match
          recover ~trace ~hash
            ~journal_path:(if resume then journal_path else None)
        with
        | Error e -> fail 2 "%s" e
        | Ok (eng, replayed, valid_bytes, torn) -> (
          let writer =
            match journal_path with
            | None -> Ok None
            | Some jp ->
              Result.map Option.some
                (if resume then Journal.open_append ~path:jp ~valid_bytes
                 else Journal.create ~path:jp ~trace_hash:hash)
          in
          match writer with
          | Error e -> fail 2 "%s" e
          | Ok writer ->
            let start = List.length replayed in
            let remaining = drop start trace.Request.tr_requests in
            let log_oc, close_log =
              match out with
              | None -> (stdout, fun () -> flush stdout)
              | Some p ->
                let oc = open_out p in
                (oc, fun () -> close_out oc)
            in
            (* Re-emit the replayed prefix so a resumed log is
               byte-identical to an uninterrupted one. *)
            List.iter
              (fun r -> output_string log_oc (Journal.record_line r ^ "\n"))
              replayed;
            let appended = ref 0 in
            let journal_cb =
              Option.map
                (fun w r ->
                  (match crash_after with
                  | Some n when !appended >= n ->
                    if crash_torn then Journal.append_torn w r;
                    Unix.kill (Unix.getpid ()) Sys.sigkill
                  | _ -> ());
                  Journal.append w r;
                  incr appended)
                writer
            in
            let snapshot_cb =
              Option.map
                (fun _ ~seq state ->
                  match
                    Journal.save_snapshot
                      ~path:(Option.get journal_path)
                      ~trace_hash:hash ~seq state
                  with
                  | Ok () -> ()
                  | Error e ->
                    Format.eprintf "ddcr_admit: snapshot: %s@." e)
                writer
            in
            if (not quiet) && resume then
              Format.eprintf
                "resumed: %d decision(s) replayed from journal%s@." start
                (if torn then " (torn tail dropped)" else "");
            let t0 = Unix.gettimeofday () in
            let summary =
              Service.run ?journal:journal_cb ?snapshot:snapshot_cb
                ~log:log_oc config eng ~start remaining
            in
            let elapsed = Unix.gettimeofday () -. t0 in
            Option.iter Journal.close writer;
            close_log ();
            let stats = Engine.stats eng in
            if not quiet then begin
              Format.printf
                "admit run: %d decision(s) (%d replayed), %d accepted, %d \
                 admitted flow(s), %d self-check(s)@."
                (start + summary.Service.sm_processed)
                start summary.Service.sm_accepted summary.Service.sm_flows
                summary.Service.sm_selfchecks;
              List.iter
                (fun (code, n) -> Format.printf "  rejected %-14s %d@." code n)
                summary.Service.sm_rejected;
              if summary.Service.sm_degraded > 0 then
                Format.printf "  degraded/restored    %d/%d@."
                  summary.Service.sm_degraded summary.Service.sm_restored
            end;
            Option.iter
              (fun p ->
                let r =
                  Json.Obj
                    [
                      ("bench_admit_version", Json.Int 1);
                      ("decisions", Json.Int summary.Service.sm_processed);
                      ("accepted", Json.Int summary.Service.sm_accepted);
                      ("flows", Json.Int summary.Service.sm_flows);
                      ("elapsed_s", Json.Float elapsed);
                      ( "decisions_per_s",
                        Json.Float
                          (if elapsed > 0. then
                             float_of_int summary.Service.sm_processed
                             /. elapsed
                           else 0.) );
                      ("s1_hits", Json.Int stats.Engine.st_s1_hits);
                      ("s1_misses", Json.Int stats.Engine.st_s1_misses);
                    ]
                in
                Json.to_file p r;
                if not quiet then
                  Format.printf "bench report written to %s@." p)
              bench_out;
            match summary.Service.sm_mismatch with
            | Some m -> fail 1 "differential self-check FAILED %s" m
            | None ->
              if not simulate then 0
              else if Engine.size eng = 0 then begin
                if not quiet then
                  Format.printf "simulate: empty admitted set, pass@.";
                0
              end
              else (
                match Engine.instance eng with
                | Error e -> fail 2 "admitted set not instantiable: %s" e
                | Ok inst ->
                  let horizon = sim_horizon_ms * 1_000_000 in
                  let wtrace = Instance.trace inst ~seed ~horizon in
                  let outcome =
                    Ddcr.run_trace ~check_lockstep:true
                      trace.Request.tr_params inst wtrace ~horizon
                  in
                  let m = Run.metrics outcome in
                  if m.Run.deadline_misses = 0 then begin
                    if not quiet then
                      Format.printf
                        "simulate: %d admitted flow(s), %d delivered, 0 \
                         misses — pass@."
                        summary.Service.sm_flows m.Run.delivered;
                    0
                  end
                  else begin
                    let flow =
                      let due msg =
                        Message.abs_deadline msg <= outcome.Run.horizon
                      in
                      let name msg = msg.Message.cls.Message.cls_name in
                      match
                        List.find_opt Run.missed outcome.Run.completions
                      with
                      | Some c -> name c.Run.c_msg
                      | None -> (
                        match
                          List.find_opt due outcome.Run.dropped
                        with
                        | Some msg -> name msg
                        | None -> (
                          match
                            List.find_opt due outcome.Run.unfinished
                          with
                          | Some msg -> name msg
                          | None -> "?"))
                    in
                    fail 1 "%s"
                      (Oracle.describe
                         (Oracle.Admission_violation
                            { flow; misses = m.Run.deadline_misses }))
                  end))))

let run_cmd =
  let term =
    Term.(
      const run_main $ trace_arg $ out $ journal_arg $ resume $ chunk
      $ capacity $ high $ low $ selfcheck_every $ paranoid $ snapshot_every
      $ simulate $ sim_horizon_ms $ seed $ bench_out $ crash_after
      $ crash_torn $ quiet)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Drain a churn trace through the incremental admission engine \
          with write-ahead journaling and crash recovery")
    term

(* -------------------- gen -------------------- *)

let gen_out =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the trace.")

let gen_sources =
  Arg.(
    value & opt int 2
    & info [ "sources" ] ~docv:"N" ~doc:"Station count.")

let gen_pool =
  Arg.(
    value & opt int 8
    & info [ "pool" ] ~docv:"N"
        ~doc:
          "Flow-id pool size; smaller pools against longer streams \
           exercise the duplicate/unknown-flow paths harder.")

let gen_requests =
  Arg.(
    value & opt int 200
    & info [ "requests" ] ~docv:"N" ~doc:"Churn-stream length.")

let gen_phy =
  Arg.(
    value & opt string "gigabit-ethernet"
    & info [ "phy" ] ~docv:"NAME"
        ~doc:
          "Broadcast medium: gigabit-ethernet, classic-ethernet or \
           atm-bus.")

let gen_params =
  Arg.(
    value
    & opt (some file) None
    & info [ "params" ] ~docv:"FILE"
        ~doc:
          "Embed the protocol parameters from $(docv) instead of the \
           derived defaults — how the accept-then-violate fixtures \
           (horizon-starved parameters) are built.")

(* A workable default configuration for sampled churn: quaternary
   trees with the scheduling horizon c·F = 8192·1024 sized past the
   largest deadline sample_churn can emit (bits <= 16000, window <=
   127·bits, deadline <= 4·window < 8.2M bit-times) and round-robin
   static indices.  Horizon coverage is what the broken fixtures
   give up. *)
let default_params ~sources =
  let rec pow4 n = if n >= 2 * sources then n else pow4 (4 * n) in
  let q = pow4 4 in
  let static_indices =
    Array.init sources (fun i ->
        let rec walk j acc = if j >= q then List.rev acc else walk (j + sources) (j :: acc) in
        Array.of_list (walk i []))
  in
  {
    Ddcr_params.time_m = 4;
    time_leaves = 1024;
    class_width = 8192;
    alpha = 8192;
    theta = 0;
    static_m = 4;
    static_leaves = q;
    static_indices;
    burst_bits = 0;
  }

let gen_main out sources pool requests seed phy params quiet =
  let fail code fmt = Format.kasprintf (fun s -> Format.eprintf "ddcr_admit: %s@." s; code) fmt in
  if sources < 1 || pool < 1 || requests < 0 then
    fail 2 "gen: --sources and --pool must be >= 1, --requests >= 0"
  else
    match
      let* phy = Request.phy_of_name phy in
      let* params =
        match params with
        | None -> Ok (default_params ~sources)
        | Some p -> Result.bind (Json.parse_file p) Ddcr_params.of_json
      in
      let* () = Ddcr_params.validate params ~num_sources:sources in
      Ok (phy, params)
    with
    | Error e -> fail 2 "%s" e
    | Ok (phy, params) ->
      let trace =
        {
          Request.tr_phy = phy;
          tr_sources = sources;
          tr_params = params;
          tr_requests =
            Generator.sample_churn ~seed ~index:0 ~sources ~pool ~requests;
        }
      in
      Request.save_trace ~path:out trace;
      if not quiet then
        Format.printf "wrote %d request(s) to %s (trace %s)@." requests out
          (Request.trace_hash trace);
      0

let gen_cmd =
  let term =
    Term.(
      const gen_main $ gen_out $ gen_sources $ gen_pool $ gen_requests $ seed
      $ gen_phy $ gen_params $ quiet)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Sample a reproducible churn trace (seeded, self-contained)")
    term

(* -------------------- compare -------------------- *)

let compare_current =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:"Current bench report (from $(b,ddcr_admit run --bench-out)).")

let compare_baseline =
  Arg.(
    required
    & opt (some file) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Committed baseline report to gate on.")

let min_ratio =
  Arg.(
    value & opt float 0.1
    & info [ "min-ratio" ] ~docv:"R"
        ~doc:
          "Fail unless current decisions/s >= R x the baseline's — a \
           deliberately loose floor so the gate catches order-of-\
           magnitude regressions (e.g. the incremental path silently \
           falling back to from-scratch reanalysis) without flaking on \
           machine noise.")

(* The counts are deterministic functions of the committed trace, so
   they must match exactly; only throughput gets a tolerance. *)
let compare_main current baseline min_ratio =
  let load path =
    let* j = Json.parse_file path in
    let* v = Result.bind (Json.field "bench_admit_version" j) Json.get_int in
    if v <> 1 then Error (Printf.sprintf "%s: unknown bench version %d" path v)
    else
      let* decisions = Result.bind (Json.field "decisions" j) Json.get_int in
      let* accepted = Result.bind (Json.field "accepted" j) Json.get_int in
      let* flows = Result.bind (Json.field "flows" j) Json.get_int in
      let* rate =
        Result.bind (Json.field "decisions_per_s" j) Json.get_float
      in
      Ok (decisions, accepted, flows, rate)
  in
  match (load current, load baseline) with
  | Error e, _ | _, Error e ->
    Format.eprintf "ddcr_admit: %s@." e;
    2
  | Ok (cd, ca, cf, cr), Ok (bd, ba, bf, br) ->
    let drift =
      List.filter_map
        (fun (what, c, b) ->
          if c <> b then Some (Printf.sprintf "%s %d != baseline %d" what c b)
          else None)
        [ ("decisions", cd, bd); ("accepted", ca, ba); ("flows", cf, bf) ]
    in
    if drift <> [] then begin
      List.iter (Format.eprintf "ddcr_admit: compare: %s@.") drift;
      1
    end
    else if br > 0. && cr < min_ratio *. br then begin
      Format.eprintf
        "ddcr_admit: compare: %.0f decisions/s is below %.2f x baseline \
         %.0f@."
        cr min_ratio br;
      1
    end
    else begin
      Format.printf
        "admit bench ok: %d decision(s), %d accepted, %.0f decisions/s \
         (baseline %.0f)@."
        cd ca cr br;
      0
    end

let compare_cmd =
  let term =
    Term.(const compare_main $ compare_current $ compare_baseline $ min_ratio)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Gate a bench report against the committed baseline: exact \
          decision counts, loose throughput floor")
    term

let cmd =
  Cmd.group
    (Cmd.info "ddcr_admit"
       ~doc:
         "Crash-safe incremental admission-control service for CSMA/DDCR \
          churn streams")
    [ run_cmd; gen_cmd; compare_cmd ]

let () = exit (Cmd.eval' cmd)
