(* ddcr_model: explicit-state model checking of the DDCR automaton.

   The model (rtnet.model) mirrors one contention slot of the whole
   system — replicated Ddcr.Step states, EDF queues, channel
   resolution, divergence detection and recovery — as a pure
   transition function, and explores it breadth-first over every
   schedule of at most one fault action per slot (wire garble, local
   misperception, crash, revive) within a fault budget.  Invariants
   checked on every reached state: protocol safety, per-replica
   well-formedness (slot accounting), lockstep among synced replicas,
   resync-by-the-next-tree-epoch-boundary, and unexcused deadline
   misses.

   `explore` prints state-space statistics; `check` additionally fails
   (exit 1) on any reachable violation or a non-exhaustive run;
   `export-repro` turns the first counterexample trail into a
   self-contained chaos replay artifact (scheduled fault-plan atoms,
   zero random draws) that `ddcr_chaos replay` re-executes
   byte-identically.

   Exit codes: 0 success (check: proven clean within bounds;
   export-repro: artifact written); 1 expectation failed (check:
   violation or truncation; export-repro: no violation found);
   2 invalid configuration or I/O error.

   Examples:
     ddcr_model explore -s uniform -n 2 --horizon-ms 1 --depth 12
     ddcr_model check -s uniform -n 2 --horizon-ms 1 --depth 12 --budget 2
     ddcr_model export-repro -s uniform -n 2 --params broken.json -o repro.json *)

module Spec = Rtnet_campaign.Spec
module Instance = Rtnet_workload.Instance
module Ddcr_params = Rtnet_core.Ddcr_params
module Json = Rtnet_util.Json
module Fault_plan = Rtnet_channel.Fault_plan
module Oracle = Rtnet_analysis.Oracle
module Candidate = Rtnet_chaos.Candidate
module Repro = Rtnet_chaos.Repro
module Transition = Rtnet_model.Transition
module Explore = Rtnet_model.Explore
module Witness = Rtnet_model.Witness

open Cmdliner

(* -------------------- shared terms -------------------- *)

let depth_t =
  Arg.(
    value
    & opt int Explore.default_config.Explore.c_depth
    & info [ "depth" ] ~docv:"SLOTS"
        ~doc:"Exploration bound: maximum contention slots along any path.")

let budget_t =
  Arg.(
    value
    & opt int Explore.default_config.Explore.c_budget
    & info [ "budget" ] ~docv:"N"
        ~doc:"Fault budget: maximum fault actions along any path.")

let max_states_t =
  Arg.(
    value
    & opt int Explore.default_config.Explore.c_max_states
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Safety valve on distinct states; exceeding it truncates the \
              exploration (reported, and fatal for $(b,check)).")

let params_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "params" ] ~docv:"FILE"
        ~doc:"Override the scenario's protocol parameters with a \
              Ddcr_params JSON file (as embedded in v2 replay artifacts).")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the trail dump.")

let load_params = function
  | None -> Ok None
  | Some path -> (
    match Json.parse_file path with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> (
      match Ddcr_params.of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok p -> Ok (Some p)))

(* The model must explore exactly the workload the replay artifact will
   re-execute: same scenario instance, same arrival trace (trace seed),
   same horizon, same (possibly overridden) parameters. *)
let build ~scenario ~size ~load ~deadline_windows ~horizon_ms ~seed ~params_file
    =
  match load_params params_file with
  | Error e -> Error e
  | Ok override -> (
    let sc =
      {
        Spec.sc_kind = scenario;
        sc_size = size;
        sc_load = load;
        sc_deadline_windows = deadline_windows;
        sc_fanout = 1;
      }
    in
    match Spec.instance sc with
    | exception Failure e -> Error e
    | inst -> (
      let horizon = horizon_ms * 1_000_000 in
      let trace = Instance.trace inst ~seed ~horizon in
      let params =
        match override with Some p -> p | None -> Ddcr_params.default inst
      in
      match Transition.make ~params ~inst ~trace ~horizon with
      | exception Invalid_argument e -> Error e
      | sys ->
        Ok
          ( sys,
            {
              Witness.w_scenario = sc;
              w_horizon_ms = horizon_ms;
              w_params = override;
              w_trace_seed = seed;
            } )))

let explore_with ~depth ~budget ~max_states ?(max_violations = 1) sys =
  Explore.run
    ~config:
      {
        Explore.c_depth = depth;
        c_budget = budget;
        c_max_states = max_states;
        c_max_violations = max_violations;
      }
    sys ~budget

let print_outcome ~depth ~budget out =
  Format.printf
    "model: %d state(s) explored, %d transition(s), depth %d/%d, budget %d%s@."
    out.Explore.o_explored out.Explore.o_transitions
    out.Explore.o_depth_reached depth budget
    (if out.Explore.o_truncated then " [TRUNCATED: state cap hit]" else "")

let print_finding ~quiet f =
  Format.printf "violation: %s@."
    (Transition.describe_violation f.Explore.f_violation);
  if not quiet then
    List.iter
      (fun (t, a) ->
        if a <> Transition.No_fault then
          Format.printf "  t=%-8d %s@." t (Transition.action_label a))
      f.Explore.f_trail

(* -------------------- explore -------------------- *)

let run_explore scenario size load deadline_windows horizon_ms seed params_file
    depth budget max_states quiet =
  match
    build ~scenario ~size ~load ~deadline_windows ~horizon_ms ~seed
      ~params_file
  with
  | Error e ->
    Format.eprintf "ddcr_model: %s@." e;
    2
  | Ok (sys, _) ->
    let out = explore_with ~depth ~budget ~max_states ~max_violations:8 sys in
    print_outcome ~depth ~budget out;
    List.iter (print_finding ~quiet) out.Explore.o_findings;
    0

let explore_cmd =
  let term =
    Term.(
      const run_explore $ Cli_common.scenario $ Cli_common.size
      $ Cli_common.load $ Cli_common.deadline_windows $ Cli_common.horizon_ms
      $ Cli_common.seed $ params_file $ depth_t $ budget_t $ max_states_t
      $ quiet)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate the bounded state space and report statistics and any \
          violations (informational: always exits 0 on a valid \
          configuration)")
    term

(* -------------------- check -------------------- *)

let run_check scenario size load deadline_windows horizon_ms seed params_file
    depth budget max_states quiet =
  match
    build ~scenario ~size ~load ~deadline_windows ~horizon_ms ~seed
      ~params_file
  with
  | Error e ->
    Format.eprintf "ddcr_model: %s@." e;
    2
  | Ok (sys, _) -> (
    let out = explore_with ~depth ~budget ~max_states sys in
    print_outcome ~depth ~budget out;
    match out.Explore.o_findings with
    | f :: _ ->
      print_finding ~quiet f;
      1
    | [] ->
      if out.Explore.o_truncated then begin
        Format.eprintf
          "ddcr_model: exploration truncated at %d states — nothing proven; \
           raise --max-states or lower --depth/--budget@."
          max_states;
        1
      end
      else begin
        Format.printf
          "check: no violation reachable within %d slot(s) and %d fault \
           action(s)@."
          depth budget;
        0
      end)

let check_cmd =
  let term =
    Term.(
      const run_check $ Cli_common.scenario $ Cli_common.size $ Cli_common.load
      $ Cli_common.deadline_windows $ Cli_common.horizon_ms $ Cli_common.seed
      $ params_file $ depth_t $ budget_t $ max_states_t $ quiet)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively verify the invariants up to the depth and fault \
          budget; exit 1 on any reachable violation or a truncated \
          (non-exhaustive) exploration")
    term

(* -------------------- export-repro -------------------- *)

let out_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Where to write the replay artifact.")

let run_export scenario size load deadline_windows horizon_ms seed params_file
    depth budget max_states quiet out =
  match
    build ~scenario ~size ~load ~deadline_windows ~horizon_ms ~seed
      ~params_file
  with
  | Error e ->
    Format.eprintf "ddcr_model: %s@." e;
    2
  | Ok (sys, src) -> (
    let res = explore_with ~depth ~budget ~max_states sys in
    print_outcome ~depth ~budget res;
    match res.Explore.o_findings with
    | [] ->
      Format.eprintf
        "ddcr_model: no violation reachable within %d slot(s) and %d fault \
         action(s) — nothing to export@."
        depth budget;
      1
    | f :: _ -> (
      print_finding ~quiet f;
      let repro, report = Witness.export src f in
      match Repro.save ~path:out repro with
      | () ->
        Format.printf
          "export: plan [%s], simulator verdict %s, written to %s@."
          (Fault_plan.label repro.Repro.re_plan)
          (Oracle.label report.Candidate.rp_verdict)
          out;
        0
      | exception Sys_error e ->
        Format.eprintf "ddcr_model: cannot write %s: %s@." out e;
        2))

let export_cmd =
  let term =
    Term.(
      const run_export $ Cli_common.scenario $ Cli_common.size
      $ Cli_common.load $ Cli_common.deadline_windows $ Cli_common.horizon_ms
      $ Cli_common.seed $ params_file $ depth_t $ budget_t $ max_states_t
      $ quiet $ out_t)
  in
  Cmd.v
    (Cmd.info "export-repro"
       ~doc:
         "Find a counterexample and freeze its fault schedule as a \
          deterministic chaos replay artifact (scheduled atoms only, zero \
          random draws), re-executed through the real simulator")
    term

(* -------------------- group -------------------- *)

let cmd =
  Cmd.group
    (Cmd.info "ddcr_model"
       ~doc:
         "Explicit-state model checking of the DDCR automaton with \
          chaos-replayable counterexamples")
    [ explore_cmd; check_cmd; export_cmd ]

let () = exit (Cmd.eval' cmd)
