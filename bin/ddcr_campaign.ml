(* ddcr_campaign: parallel experiment-campaign runner.

   Compiles a declarative sweep (protocol x scenario x variant x
   replicate) into a deterministic work-list, executes it on a pool of
   worker processes, checkpoints completed cells for resume, and writes
   a versioned BENCH_<name>.json report.  `compare` re-runs (or loads)
   a campaign and diffs it against a stored baseline, exiting non-zero
   on metric regressions beyond the configured tolerances.

   Exit codes: 0 success / no regression; 1 regression detected;
   2 invalid spec, lint rejection or I/O error; 3 campaign interrupted
   (checkpoint left in place; re-run with --resume).

   Examples:
     ddcr_campaign list
     ddcr_campaign run smoke -j 2
     ddcr_campaign run --spec sweep.json -o BENCH_sweep.json --resume
     ddcr_campaign compare campaign_v1 --baseline BENCH_campaign_v1.json *)

module Spec = Rtnet_campaign.Spec
module Runner = Rtnet_campaign.Runner
module Report = Rtnet_campaign.Report
module Pool = Rtnet_campaign.Pool
module Sink = Rtnet_telemetry.Sink
module Recorder = Rtnet_telemetry.Recorder
module Registry = Rtnet_telemetry.Registry
module Perf = Rtnet_obs.Perf

open Cmdliner

(* -------------------- shared terms -------------------- *)

let campaign_name =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"CAMPAIGN"
        ~doc:"Builtin campaign name (see $(b,list)); omit with $(b,--spec).")

let spec_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:"Load the campaign spec from a JSON file instead of a builtin.")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker processes (0 = one per recommended core).")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Report path (default BENCH_<name>.json).")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Reuse the checkpoint journal of an interrupted run instead of \
           starting fresh.")

let max_cells =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cells" ] ~docv:"N"
        ~doc:
          "Stop after N fresh results, leaving the checkpoint in place \
           (simulates an interrupted campaign; exit code 3).")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-cell progress lines.")

let progress_flag =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a rich progress line to stderr after each completed cell: \
           done/total, cell key, throughput (cells/s) and ETA.  Off by \
           default, so default output stays byte-stable.")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Record campaign telemetry: a per-worker wall-clock profile \
           (printed after the run) and a per-cell telemetry snapshot \
           embedded in the report's DDCR cells (behind the optional \
           'telemetry' key; fingerprints are unaffected).")

let profile_trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-trace" ] ~docv:"FILE"
        ~doc:
          "With $(b,--profile): write the wall-clock worker timeline as \
           Chrome trace-event JSON (Perfetto-loadable) to $(docv).")

let spec_of name spec_file =
  match (spec_file, name) with
  | Some f, _ -> Spec.load_file f
  | None, Some n -> (
    match Spec.find_builtin n with
    | Some s -> Ok s
    | None ->
      Error
        (Printf.sprintf "unknown builtin campaign %S (try `ddcr_campaign list`)"
           n))
  | None, None -> Error "pass a builtin campaign name or --spec FILE"

(* Builds the runner options and, when profiling, the telemetry
   recorder fed by the pool's worker probes.  The rich --progress line
   and the profile recorder share one wall-clock origin so throughput,
   ETA and the worker timeline agree. *)
let options_of spec ~jobs ~out ~resume ~max_cells ~quiet ~rich_progress
    ~profile =
  let out =
    match out with
    | Some o -> o
    | None -> Printf.sprintf "BENCH_%s.json" spec.Spec.name
  in
  let t0 = Unix.gettimeofday () in
  let progress =
    if rich_progress then
      Some
        (fun ~done_ ~total ~key ~elapsed_s:_ ->
          let dt = Unix.gettimeofday () -. t0 in
          let rate = if dt > 0. then float_of_int done_ /. dt else 0. in
          let eta =
            if rate > 0. then float_of_int (total - done_) /. rate else 0.
          in
          Printf.eprintf "progress %d/%d %s  %.1f cells/s  ETA %.0f s\n%!"
            done_ total key rate eta)
    else if quiet then None
    else
      Some
        (fun ~done_ ~total ~key ~elapsed_s ->
          Printf.eprintf "[%d/%d] %s (%.1f ms)\n%!" done_ total key
            (elapsed_s *. 1000.))
  in
  let recorder = if profile then Some (Recorder.create ~wall0:t0 ()) else None in
  let sink =
    match recorder with Some r -> Recorder.sink r | None -> Sink.null
  in
  ( {
      (Runner.default_options ~out) with
      Runner.jobs = (if jobs <= 0 then Pool.default_jobs () else jobs);
      resume;
      max_cells;
      progress;
      telemetry = profile;
      sink;
    },
    recorder )

(* Printed after a profiled campaign completes; the optional trace file
   holds the wall-clock worker timeline for Perfetto. *)
let emit_profile recorder profile_trace =
  match recorder with
  | None -> 0
  | Some r ->
    Format.printf "campaign profile:@.";
    print_string (Registry.render (Recorder.snapshot r));
    (match profile_trace with
    | None -> 0
    | Some path -> (
      try
        Rtnet_util.Json.to_file path (Recorder.trace_json r);
        Format.printf "worker timeline written to %s@." path;
        0
      with Sys_error e ->
        Format.eprintf "ddcr_campaign: cannot write worker timeline: %s@." e;
        2))

let report_error e =
  Format.eprintf "ddcr_campaign: %a@." Runner.pp_error e;
  2

(* -------------------- run -------------------- *)

let run_campaign name spec_file jobs out resume max_cells quiet rich_progress
    profile profile_trace =
  match spec_of name spec_file with
  | Error e ->
    Format.eprintf "ddcr_campaign: %s@." e;
    2
  | Ok spec -> (
    let options, recorder =
      options_of spec ~jobs ~out ~resume ~max_cells ~quiet ~rich_progress
        ~profile
    in
    match Runner.run options spec with
    | Error e -> report_error e
    | Ok (Runner.Interrupted { completed; total }) ->
      Format.eprintf
        "ddcr_campaign: interrupted after %d/%d cells; checkpoint kept — \
         re-run with --resume@."
        completed total;
      3
    | Ok (Runner.Complete report) ->
      Format.printf "campaign %s: %d cells in %.2f s (%d jobs)@."
        report.Report.campaign
        (List.length report.Report.cells)
        report.Report.wall_clock_s report.Report.jobs;
      Format.printf "report      %s@." options.Runner.out;
      Format.printf "spec hash   %s@." report.Report.spec_hash;
      Format.printf "fingerprint %s@." (Report.fingerprint report);
      (* The perf counters ride in the report's stripped "perf" section;
         echo the slots/sec headline for the operator. *)
      (match report.Report.perf with
      | None -> ()
      | Some pj -> (
        match Perf.of_json pj with
        | Ok p -> Format.printf "%a@." Perf.pp p
        | Error _ -> ()));
      emit_profile recorder profile_trace)

let run_cmd =
  let term =
    Term.(
      const run_campaign $ campaign_name $ spec_file $ jobs $ out $ resume
      $ max_cells $ quiet $ progress_flag $ profile $ profile_trace)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a campaign and write its BENCH report")
    term

(* -------------------- compare -------------------- *)

let baseline =
  Arg.(
    required
    & opt (some file) None
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Stored baseline report to gate on.")

let current =
  Arg.(
    value
    & opt (some file) None
    & info [ "current" ] ~docv:"FILE"
        ~doc:
          "Compare a stored report instead of running the campaign fresh \
           (CAMPAIGN/--spec then unnecessary).")

let tol_miss_ratio =
  Arg.(
    value & opt float 0.
    & info [ "tol-miss-ratio" ] ~docv:"EPS"
        ~doc:"Allowed absolute increase in per-cell deadline-miss ratio.")

let tol_latency_rel =
  Arg.(
    value & opt float 0.
    & info [ "tol-latency" ] ~docv:"FRACTION"
        ~doc:"Allowed relative increase in worst/mean latency.")

let tol_delivered =
  Arg.(
    value & opt int 0
    & info [ "tol-delivered" ] ~docv:"N"
        ~doc:"Allowed absolute drop in per-cell deliveries.")

let compare_campaign name spec_file jobs out resume max_cells quiet
    rich_progress baseline current tol_miss_ratio tol_latency_rel
    tol_delivered =
  let tolerance =
    { Report.tol_miss_ratio; tol_latency_rel; tol_delivered }
  in
  let fresh () =
    match spec_of name spec_file with
    | Error e -> Error (`Msg e)
    | Ok spec -> (
      let out =
        match out with
        | Some o -> Some o
        | None -> Some (Printf.sprintf "BENCH_%s.current.json" spec.Spec.name)
      in
      let options, _ =
        options_of spec ~jobs ~out ~resume ~max_cells ~quiet ~rich_progress
          ~profile:false
      in
      match Runner.run options spec with
      | Error e -> Error (`Runner e)
      | Ok (Runner.Interrupted _) ->
        Error (`Msg "campaign interrupted; nothing to compare")
      | Ok (Runner.Complete report) -> Ok report)
  in
  let current_report =
    match current with
    | Some path ->
      Result.map_error (fun e -> `Msg e) (Report.load ~path)
    | None -> fresh ()
  in
  match
    ( Result.map_error (fun e -> `Msg e) (Report.load ~path:baseline),
      current_report )
  with
  | Error (`Msg e), _ | _, Error (`Msg e) ->
    Format.eprintf "ddcr_campaign: %s@." e;
    2
  | _, Error (`Runner e) -> report_error e
  | Ok base, Ok cur -> (
    match Report.compare_reports ~tolerance ~baseline:base ~current:cur with
    | Error e ->
      Format.eprintf "ddcr_campaign: %s@." e;
      2
    | Ok [] ->
      Format.printf "no regression: %d cells within tolerance of %s@."
        (List.length cur.Report.cells)
        baseline;
      0
    | Ok regs ->
      Format.eprintf "ddcr_campaign: %d regression(s) vs %s@."
        (List.length regs) baseline;
      List.iter
        (fun r -> Format.eprintf "  %a@." Report.pp_regression r)
        regs;
      1)

let compare_cmd =
  let term =
    Term.(
      const compare_campaign $ campaign_name $ spec_file $ jobs $ out $ resume
      $ max_cells $ quiet $ progress_flag $ baseline $ current $ tol_miss_ratio
      $ tol_latency_rel $ tol_delivered)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run (or load) a campaign and diff it against a stored baseline; \
          exit 1 on regression")
    term

(* -------------------- list -------------------- *)

let list_campaigns () =
  List.iter
    (fun (name, spec) ->
      Format.printf "%-12s %3d cells  %d protocols x %d scenarios x %d \
                     variants x %d replicates, %d ms@."
        name (Spec.cell_count spec)
        (List.length spec.Spec.protocols)
        (List.length spec.Spec.scenarios)
        (List.length spec.Spec.variants)
        spec.Spec.replicates spec.Spec.horizon_ms)
    Spec.builtins;
  0

let list_cmd =
  let term = Term.(const list_campaigns $ const ()) in
  Cmd.v (Cmd.info "list" ~doc:"List the builtin campaigns") term

(* -------------------- group -------------------- *)

let cmd =
  Cmd.group
    (Cmd.info "ddcr_campaign"
       ~doc:
         "Parallel experiment-campaign runner with JSON results and a \
          perf-regression gate")
    [ run_cmd; compare_cmd; list_cmd ]

let () = exit (Cmd.eval' cmd)
