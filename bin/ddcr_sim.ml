(* ddcr_sim: simulate a scenario under a chosen MAC protocol.

   Examples:
     ddcr_sim -s trading -n 6 --protocol ddcr --burst 65536
     ddcr_sim -s uniform -n 8 --load 0.7 --protocol beb
     ddcr_sim -s atc --adversary --per-class *)

module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Run = Rtnet_stats.Run
module Summary = Rtnet_stats.Summary
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Beb = Rtnet_baselines.Csma_cd_beb
module Dcr = Rtnet_baselines.Csma_dcr
module Tdma = Rtnet_baselines.Tdma
module Np_edf = Rtnet_edf.Np_edf
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Sink = Rtnet_telemetry.Sink
module Recorder = Rtnet_telemetry.Recorder
module Registry = Rtnet_telemetry.Registry
module Headroom = Rtnet_telemetry.Headroom

open Cmdliner

let ms = 1_000_000

let protocol =
  Arg.(
    value & opt string "ddcr"
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"One of: ddcr, beb, dcr, tdma, oracle, all.")

let per_class =
  Arg.(
    value & flag
    & info [ "per-class" ] ~doc:"Print per-class worst latencies and bounds.")

let histogram =
  Arg.(
    value & flag
    & info [ "histogram" ]
        ~doc:"Print an ASCII latency histogram per protocol.")

let trace_summary =
  Arg.(
    value & flag
    & info [ "trace-summary" ]
        ~doc:"Collect a protocol event trace (ddcr only) and print its \
              per-phase slot accounting.")

let lockstep =
  Arg.(
    value & flag
    & info [ "lockstep" ]
        ~doc:"Assert replica lockstep after every slot (slower).")

let telemetry_flag =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:
          "Record telemetry on the DDCR run and print the metrics registry \
           plus the per-class bound-headroom table.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the DDCR run's timeline as Chrome trace-event JSON \
           (Perfetto-loadable) to $(docv); implies telemetry recording.")

let headroom_flag =
  Arg.(
    value & flag
    & info [ "headroom" ]
        ~doc:
          "Print the per-class bound-headroom table (observed worst access \
           delay vs. the analytic B_DDCR/B_impl bounds) for the DDCR run.")

(* Same analytic bounds the feasibility checker reports, reshaped for
   the recorder's per-class annotations. *)
let bounds_for params inst =
  List.map
    (fun cr ->
      {
        Headroom.b_cls = cr.Feasibility.cr_cls.Message.cls_id;
        b_name = cr.Feasibility.cr_cls.Message.cls_name;
        b_deadline = cr.Feasibility.cr_cls.Message.cls_deadline;
        b_bound = cr.Feasibility.cr_bound;
        b_bound_impl = cr.Feasibility.cr_bound_impl;
      })
    (Feasibility.check params inst).Feasibility.per_class

let run_one ~name ~inst ~params ~trace ~horizon ~seed ~lockstep ~on_event ~sink
    =
  match name with
  | "ddcr" ->
    Ddcr.run_trace ~check_lockstep:lockstep ?on_event ~sink params inst trace
      ~horizon
  | "beb" -> Beb.run_trace ~seed inst trace ~horizon
  | "dcr" -> Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon
  | "tdma" -> Tdma.run_trace inst trace ~horizon
  | "oracle" -> Np_edf.run inst.Instance.phy trace ~horizon
  | other -> failwith (Printf.sprintf "unknown protocol %S" other)

let main scenario size load deadline_windows seed horizon_ms indices burst
    theta allocation adversary protocol per_class histogram trace_summary
    lockstep telemetry trace_out headroom =
  let inst =
    Cli_common.instance_of ~scenario ~size ~load ~deadline_windows
  in
  let inst =
    if adversary then Instance.with_law inst Arrival.Greedy_burst else inst
  in
  let horizon = horizon_ms * ms in
  let trace = Instance.trace inst ~seed ~horizon in
  let params =
    Ddcr_params.with_theta
      (Ddcr_params.with_burst
         (Ddcr_params.default ~indices_per_source:indices ~allocation inst)
         burst)
      theta
  in
  Format.printf "%a@.parameters: %a@.trace: %d messages over %d ms@.@."
    Instance.pp inst Ddcr_params.pp params (List.length trace) horizon_ms;
  let names =
    if protocol = "all" then [ "ddcr"; "beb"; "dcr"; "tdma"; "oracle" ]
    else [ protocol ]
  in
  let want_telemetry = telemetry || headroom || trace_out <> None in
  let rc = ref 0 in
  if want_telemetry && not (List.mem "ddcr" names) then begin
    Format.eprintf
      "ddcr_sim: --telemetry/--trace-out/--headroom record the DDCR run; \
       protocol %S never runs it@."
      protocol;
    rc := 1
  end;
  List.iter
    (fun name ->
      let recorder =
        if trace_summary && name = "ddcr" then Some (Ddcr_trace.collector ())
        else None
      in
      let tele =
        if want_telemetry && name = "ddcr" then
          Some (Recorder.create ~bounds:(bounds_for params inst) ())
        else None
      in
      let sink =
        match tele with Some r -> Recorder.sink r | None -> Sink.null
      in
      let on_event = Option.map fst recorder in
      let o =
        run_one ~name ~inst ~params ~trace ~horizon ~seed ~lockstep ~on_event
          ~sink
      in
      Format.printf "%-14s %a@." o.Run.protocol Run.pp_metrics (Run.metrics o);
      (match recorder with
      | Some (_, finish) ->
        Format.printf "%a@." Ddcr_trace.pp_summary
          (Ddcr_trace.summarize (finish ()))
      | None -> ());
      (match Summary.of_list (List.map Run.latency o.Run.completions) with
      | Some s ->
        Format.printf "  latency: %a@." Summary.pp s;
        if histogram then begin
          let h =
            Summary.Histogram.create ~lo:s.Summary.min ~hi:(s.Summary.max + 1)
              ~buckets:12
          in
          List.iter
            (fun c -> Summary.Histogram.add h (Run.latency c))
            o.Run.completions;
          print_string (Summary.Histogram.render h)
        end
      | None -> ());
      if per_class then
        List.iter
          (fun (cls_id, worst) ->
            let c =
              List.find
                (fun c -> c.Message.cls_id = cls_id)
                (Instance.classes inst)
            in
            Format.printf "  %-12s worst %10d  B_DDCR %12.0f@."
              c.Message.cls_name worst
              (Feasibility.latency_bound params inst c))
          (Run.per_class_worst_latency o);
      match tele with
      | None -> ()
      | Some r ->
        if telemetry then begin
          Format.printf "telemetry registry:@.";
          print_string (Registry.render (Recorder.snapshot r))
        end;
        if telemetry || headroom then begin
          Format.printf "bound headroom (bit-times):@.";
          print_string (Headroom.render (Recorder.headroom_table r))
        end;
        (match trace_out with
        | None -> ()
        | Some path -> (
          try
            Rtnet_util.Json.to_file path (Recorder.trace_json r);
            Format.printf "telemetry trace written to %s@." path
          with Sys_error e ->
            Format.eprintf "ddcr_sim: cannot write trace: %s@." e;
            rc := 1)))
    names;
  !rc

let cmd =
  let term =
    Term.(
      const main $ Cli_common.scenario $ Cli_common.size $ Cli_common.load
      $ Cli_common.deadline_windows $ Cli_common.seed $ Cli_common.horizon_ms
      $ Cli_common.indices_per_source $ Cli_common.burst_bits
      $ Cli_common.theta $ Cli_common.allocation $ Cli_common.adversary
      $ protocol $ per_class $ histogram $ trace_summary $ lockstep
      $ telemetry_flag $ trace_out $ headroom_flag)
  in
  Cmd.v
    (Cmd.info "ddcr_sim" ~doc:"Simulate HRTDM scenarios under MAC protocols")
    term

let () = exit (Cmd.eval' cmd)
