(* ddcr_sim: simulate a scenario under a chosen MAC protocol.

   Examples:
     ddcr_sim -s trading -n 6 --protocol ddcr --burst 65536
     ddcr_sim -s uniform -n 8 --load 0.7 --protocol beb
     ddcr_sim -s atc --adversary --per-class *)

module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Run = Rtnet_stats.Run
module Summary = Rtnet_stats.Summary
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Beb = Rtnet_baselines.Csma_cd_beb
module Dcr = Rtnet_baselines.Csma_dcr
module Tdma = Rtnet_baselines.Tdma
module Np_edf = Rtnet_edf.Np_edf
module Ddcr_trace = Rtnet_core.Ddcr_trace

open Cmdliner

let ms = 1_000_000

let protocol =
  Arg.(
    value & opt string "ddcr"
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"One of: ddcr, beb, dcr, tdma, oracle, all.")

let per_class =
  Arg.(
    value & flag
    & info [ "per-class" ] ~doc:"Print per-class worst latencies and bounds.")

let histogram =
  Arg.(
    value & flag
    & info [ "histogram" ]
        ~doc:"Print an ASCII latency histogram per protocol.")

let trace_summary =
  Arg.(
    value & flag
    & info [ "trace-summary" ]
        ~doc:"Collect a protocol event trace (ddcr only) and print its \
              per-phase slot accounting.")

let lockstep =
  Arg.(
    value & flag
    & info [ "lockstep" ]
        ~doc:"Assert replica lockstep after every slot (slower).")

let run_one ~name ~inst ~params ~trace ~horizon ~seed ~lockstep ~on_event =
  match name with
  | "ddcr" ->
    Ddcr.run_trace ~check_lockstep:lockstep ?on_event params inst trace ~horizon
  | "beb" -> Beb.run_trace ~seed inst trace ~horizon
  | "dcr" -> Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon
  | "tdma" -> Tdma.run_trace inst trace ~horizon
  | "oracle" -> Np_edf.run inst.Instance.phy trace ~horizon
  | other -> failwith (Printf.sprintf "unknown protocol %S" other)

let main scenario size load deadline_windows seed horizon_ms indices burst
    theta allocation adversary protocol per_class histogram trace_summary
    lockstep =
  let inst =
    Cli_common.instance_of ~scenario ~size ~load ~deadline_windows
  in
  let inst =
    if adversary then Instance.with_law inst Arrival.Greedy_burst else inst
  in
  let horizon = horizon_ms * ms in
  let trace = Instance.trace inst ~seed ~horizon in
  let params =
    Ddcr_params.with_theta
      (Ddcr_params.with_burst
         (Ddcr_params.default ~indices_per_source:indices ~allocation inst)
         burst)
      theta
  in
  Format.printf "%a@.parameters: %a@.trace: %d messages over %d ms@.@."
    Instance.pp inst Ddcr_params.pp params (List.length trace) horizon_ms;
  let names =
    if protocol = "all" then [ "ddcr"; "beb"; "dcr"; "tdma"; "oracle" ]
    else [ protocol ]
  in
  List.iter
    (fun name ->
      let recorder =
        if trace_summary && name = "ddcr" then Some (Ddcr_trace.collector ())
        else None
      in
      let on_event = Option.map fst recorder in
      let o = run_one ~name ~inst ~params ~trace ~horizon ~seed ~lockstep ~on_event in
      Format.printf "%-14s %a@." o.Run.protocol Run.pp_metrics (Run.metrics o);
      (match recorder with
      | Some (_, finish) ->
        Format.printf "%a@." Ddcr_trace.pp_summary
          (Ddcr_trace.summarize (finish ()))
      | None -> ());
      (match Summary.of_list (List.map Run.latency o.Run.completions) with
      | Some s ->
        Format.printf "  latency: %a@." Summary.pp s;
        if histogram then begin
          let h =
            Summary.Histogram.create ~lo:s.Summary.min ~hi:(s.Summary.max + 1)
              ~buckets:12
          in
          List.iter
            (fun c -> Summary.Histogram.add h (Run.latency c))
            o.Run.completions;
          print_string (Summary.Histogram.render h)
        end
      | None -> ());
      if per_class then
        List.iter
          (fun (cls_id, worst) ->
            let c =
              List.find
                (fun c -> c.Message.cls_id = cls_id)
                (Instance.classes inst)
            in
            Format.printf "  %-12s worst %10d  B_DDCR %12.0f@."
              c.Message.cls_name worst
              (Feasibility.latency_bound params inst c))
          (Run.per_class_worst_latency o))
    names;
  0

let cmd =
  let term =
    Term.(
      const main $ Cli_common.scenario $ Cli_common.size $ Cli_common.load
      $ Cli_common.deadline_windows $ Cli_common.seed $ Cli_common.horizon_ms
      $ Cli_common.indices_per_source $ Cli_common.burst_bits
      $ Cli_common.theta $ Cli_common.allocation $ Cli_common.adversary
      $ protocol $ per_class $ histogram $ trace_summary $ lockstep)
  in
  Cmd.v
    (Cmd.info "ddcr_sim" ~doc:"Simulate HRTDM scenarios under MAC protocols")
    term

let () = exit (Cmd.eval' cmd)
