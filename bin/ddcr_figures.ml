(* ddcr_figures: regenerate the paper's figures as CSV files.

   Example:
     ddcr_figures --out results/      # writes fig1.csv, fig2.csv, ... *)

module Table = Rtnet_util.Table
module Xi = Rtnet_core.Xi
module Multi_tree = Rtnet_core.Multi_tree

open Cmdliner

let out_dir =
  Arg.(
    value & opt string "results"
    & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory for CSV files.")

let fig1 () =
  let m = 4 and t = 64 in
  let tab = Xi.table ~m ~t in
  let csv = Table.create [ "k"; "xi_exact"; "xi_asymptotic" ] in
  for k = 0 to t do
    Table.add_row csv
      [
        string_of_int k;
        string_of_int tab.(k);
        (if k >= 2 then Printf.sprintf "%.6f" (Xi.tilde ~m ~t (float_of_int k))
         else "");
      ]
  done;
  csv

let fig2 () =
  let b = Xi.table ~m:2 ~t:64 and q = Xi.table ~m:4 ~t:64 in
  let csv = Table.create [ "k"; "xi_binary"; "xi_quaternary" ] in
  for k = 2 to 64 do
    Table.add_int_row csv [ k; b.(k); q.(k) ]
  done;
  csv

let tightness () =
  let csv = Table.create [ "m"; "t"; "max_gap"; "eq13_bound"; "eq14_bound" ] in
  List.iter
    (fun (m, n) ->
      let t = Rtnet_util.Int_math.pow m n in
      Table.add_row csv
        [
          string_of_int m;
          string_of_int t;
          Printf.sprintf "%.6f" (Xi.max_gap ~m ~t);
          Printf.sprintf "%.6f" (Xi.gap_bound ~m *. float_of_int t);
          Printf.sprintf "%.6f" (Xi.gap_bound_universal *. float_of_int t);
        ])
    [ (2, 6); (2, 10); (3, 4); (3, 6); (4, 3); (4, 5); (5, 4); (8, 3); (9, 3) ];
  csv

let p2 () =
  let csv = Table.create [ "m"; "t"; "v"; "u"; "exhaustive"; "bound" ] in
  List.iter
    (fun (m, t, v) ->
      for u = 2 * v to t * v do
        Table.add_row csv
          [
            string_of_int m;
            string_of_int t;
            string_of_int v;
            string_of_int u;
            string_of_int (Multi_tree.worst_exact ~m ~t ~u ~v);
            Printf.sprintf "%.6f" (Multi_tree.bound ~m ~t ~u ~v);
          ]
      done)
    [ (2, 8, 2); (2, 8, 4); (4, 16, 2); (3, 9, 3) ];
  csv

let arbitrated () =
  let csv = Table.create [ "m"; "t"; "k"; "zeta"; "xi" ] in
  List.iter
    (fun (m, t) ->
      let z = Rtnet_core.Xi_arb.table ~m ~t and x = Xi.table ~m ~t in
      for k = 0 to t do
        Table.add_int_row csv [ m; t; k; z.(k); x.(k) ]
      done)
    [ (2, 64); (4, 64) ];
  csv

let expected () =
  let csv = Table.create [ "m"; "t"; "k"; "expected"; "worst" ] in
  List.iter
    (fun (m, t) ->
      for k = 0 to t do
        Table.add_row csv
          [
            string_of_int m;
            string_of_int t;
            string_of_int k;
            Printf.sprintf "%.6f" (Xi.expected ~m ~t ~k);
            string_of_int (Xi.exact ~m ~t ~k);
          ]
      done)
    [ (2, 64); (4, 64) ];
  csv

let main dir =
  let save name csv =
    let path = Table.save_csv ~dir ~name csv in
    Printf.printf "wrote %s\n" path
  in
  save "fig1_quaternary_64" (fig1 ());
  save "fig2_binary_vs_quaternary" (fig2 ());
  save "tightness_eq12_14" (tightness ());
  save "p2_bound_vs_exhaustive" (p2 ());
  save "arbitrated_zeta_vs_xi" (arbitrated ());
  save "expected_vs_worst" (expected ());
  0

let cmd =
  Cmd.v
    (Cmd.info "ddcr_figures" ~doc:"Regenerate the paper's figures as CSV")
    Term.(const main $ out_dir)

let () = exit (Cmd.eval' cmd)
