(* ddcr_topo: multi-hop federated DDCR topologies.

   A topology spec (JSON) declares broadcast segments, store-and-forward
   bridge stations joining them into a DAG, and end-to-end flows.
   `check` decomposes every flow's deadline into per-hop budgets
   (rtnet.topology Admit), prices each hop with the Section 4.3 B_DDCR
   bound, runs the NP-EDF demand-bound oracle on every bridge queue,
   and reports the admission verdict.  `run` simulates the whole
   federation — segments sharded across OCaml domains wavefront by
   wavefront — and classifies every end-to-end chain: in time, missed
   (attributed to the hop that overran its budget), or in flight past
   the horizon.  `dimension` compares both decomposition policies side
   by side.

   Both check and run understand per-segment fault plans — embedded in
   the spec (a segment's "fault_plan" key) or overlaid from a separate
   file (--fault-plan, a JSON object mapping segment names to plans).
   A crash window naming a bridge station takes the bridge down: check
   prices the worst window fault-aware, run holds / drains its
   store-and-forward queue and reports Degraded/Shed/Restored events,
   bridge drops and fault-attributed misses.

   Exit codes: 0 success (check: admitted; run: zero unexcused
   end-to-end misses, sheds or drops; dimension: some policy admits);
   1 expectation failed (rejected / misses, sheds or drops observed /
   no policy admits); 2 malformed spec, malformed fault plan or I/O
   error.

   Examples:
     ddcr_topo check topo.json
     ddcr_topo run topo.json --domains 4 --horizon-ms 5 --trace-out t.json
     ddcr_topo run topo.json --fault-plan faults.json
     ddcr_topo dimension topo.json *)

module Topo = Rtnet_topology.Topo
module Admit = Rtnet_topology.Admit
module Bridge = Rtnet_topology.Bridge
module Driver = Rtnet_topology.Driver
module Decompose = Rtnet_core.Decompose
module Feasibility = Rtnet_core.Feasibility
module Fault_plan = Rtnet_channel.Fault_plan
module Message = Rtnet_workload.Message
module Run = Rtnet_stats.Run
module Sink = Rtnet_telemetry.Sink
module Recorder = Rtnet_telemetry.Recorder
module Registry = Rtnet_telemetry.Registry
module Headroom = Rtnet_telemetry.Headroom
module Trace_event = Rtnet_telemetry.Trace_event
module Flight = Rtnet_obs.Flight
module Causal = Rtnet_obs.Causal
module Postmortem = Rtnet_obs.Postmortem
module Prng = Rtnet_util.Prng
module Json = Rtnet_util.Json

open Cmdliner

let spec_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TOPO.json" ~doc:"Topology spec file.")

let policy_t =
  let policy_conv =
    Arg.enum
      [
        ("proportional", Decompose.Proportional);
        ("slack-weighted", Decompose.Slack_weighted);
      ]
  in
  Arg.(
    value
    & opt policy_conv Decompose.Proportional
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Deadline decomposition policy: proportional (whole budget split \
           in proportion to the per-hop bounds) or slack-weighted (each hop \
           gets its bound plus an equal share of the slack).")

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard each wavefront level across up to N OCaml domains (the \
           result is fingerprint-identical for any N).")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a merged Perfetto trace with one process track per \
           segment.")

let fault_plan_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "fault-plan" ] ~docv:"FAULTS.json"
        ~doc:
          "Overlay per-segment fault plans: a JSON object mapping segment \
           names to fault-plan specs (garble / misperception / crashes).  A \
           crash window naming a bridge station models that bridge going \
           down.")

let telemetry_t =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:
          "Record per-segment telemetry and print each segment's metrics \
           registry plus its per-class bound-headroom table.")

let headroom_t =
  Arg.(
    value & flag
    & info [ "headroom" ]
        ~doc:
          "Print the per-segment bound-headroom tables (observed worst \
           access delay vs the admitted hop bounds) without the full \
           registry dump.")

let postmortem_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem-out" ] ~docv:"FILE"
        ~doc:
          "On a failure verdict (chain miss, shed, or bridge overflow), \
           dump the black-box flight recorders into a versioned postmortem \
           artifact at $(docv).  Nothing is written for a clean run.")

(* { "<segment>": <fault plan spec>, ... } *)
let load_faults path =
  match Json.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok (Json.Obj fields) ->
    List.fold_left
      (fun acc (seg, pj) ->
        match acc with
        | Error _ as e -> e
        | Ok plans -> (
          match Fault_plan.spec_of_json pj with
          | Ok sp -> Ok ((seg, sp) :: plans)
          | Error e ->
            Error (Printf.sprintf "%s: segment %s: %s" path seg e)))
      (Ok []) fields
    |> Result.map List.rev
  | Ok _ -> Error (Printf.sprintf "%s: expected an object of segment plans" path)

let load_spec ?faults path =
  match Topo.load_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok topo -> (
    match faults with
    | None -> Ok topo
    | Some fpath -> (
      match load_faults fpath with
      | Error e -> Error e
      | Ok plans -> (
        match Topo.with_faults topo plans with
        | Error e -> Error (Printf.sprintf "%s: %s" fpath e)
        | Ok topo -> Ok topo)))

let elaborated ?faults ~policy path =
  match load_spec ?faults path with
  | Error e -> Error e
  | Ok topo -> (
    match Admit.elaborate ~policy topo with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok e -> Ok e)

(* -------------------- check -------------------- *)

let run_check path policy faults =
  match elaborated ?faults ~policy path with
  | Error e ->
    Format.eprintf "ddcr_topo: %s@." e;
    2
  | Ok e ->
    Format.printf "%a@." Admit.pp_report e;
    let bridges = Bridge.check ~fault_aware:true e in
    List.iter (fun v -> Format.printf "  %a@." Bridge.pp_verdict v) bridges;
    let bridges_ok = List.for_all (fun v -> v.Bridge.bv_feasible) bridges in
    if e.Admit.e_admitted && bridges_ok then begin
      Format.printf
        "check: ADMITTED — every hop budget covers its B_DDCR and every \
         bridge queue is NP-EDF schedulable@.";
      0
    end
    else begin
      Format.printf "check: REJECTED@.";
      1
    end

let check_cmd =
  let term = Term.(const run_check $ spec_file $ policy_t $ fault_plan_t) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Admission-check a topology: decompose every flow deadline into \
          per-hop budgets, test B_DDCR <= budget on every hop and NP-EDF \
          schedulability on every bridge queue, fault-aware of the worst \
          scheduled bridge crash window (exit 0 iff admitted)")
    term

(* -------------------- run -------------------- *)

(* Same analytic bounds ddcr_sim annotates its recorder with, per
   segment of the elaborated federation: the admitted hop classes
   priced by the Section 4.3 feasibility checker. *)
let seg_bounds e name =
  let params = Admit.params_of e name in
  let inst = Admit.instance_of e name in
  List.map
    (fun cr ->
      {
        Headroom.b_cls = cr.Feasibility.cr_cls.Message.cls_id;
        b_name = cr.Feasibility.cr_cls.Message.cls_name;
        b_deadline = cr.Feasibility.cr_cls.Message.cls_deadline;
        b_bound = cr.Feasibility.cr_bound;
        b_bound_impl = cr.Feasibility.cr_bound_impl;
      })
    (Feasibility.check params inst).Feasibility.per_class

let run_run path policy domains horizon_ms seed trace_out faults telemetry
    headroom postmortem_out =
  match elaborated ?faults ~policy path with
  | Error e ->
    Format.eprintf "ddcr_topo: %s@." e;
    2
  | Ok e ->
    let horizon = horizon_ms * 1_000_000 in
    let want_recorder = trace_out <> None || telemetry || headroom in
    let want_flight = postmortem_out <> None in
    let recorders = ref [] in
    let flights = ref [] in
    let sink_for =
      if not (want_recorder || want_flight) then None
      else
        Some
          (fun ~index ~segment ->
            let rec_sink =
              if not want_recorder then Sink.null
              else begin
                let r =
                  Recorder.create ~bounds:(seg_bounds e segment)
                    ~pid:(2 * index)
                    ~process_name:
                      (Printf.sprintf "segment %s (bit-times)" segment)
                    ()
                in
                recorders := (index, segment, r) :: !recorders;
                Recorder.sink r
              end
            in
            let fl_sink =
              if not want_flight then Sink.null
              else begin
                let f = Flight.create ~segment () in
                flights := (index, f) :: !flights;
                Flight.sink f
              end
            in
            Sink.tee rec_sink fl_sink)
    in
    match Driver.run_seeded ?sink_for ~domains e ~seed ~horizon with
    | Error msg ->
      Format.eprintf "ddcr_topo: %s@." msg;
      2
    | Ok res ->
    if not e.Admit.e_admitted then
      Format.printf
        "note: topology NOT admitted — running anyway to observe the \
         predicted misses@.";
    List.iter
      (fun ev -> Format.printf "%a@." Driver.pp_event ev)
      res.Driver.r_events;
    Format.printf "%a@." Driver.pp_verdict res.Driver.r_verdict;
    List.iter
      (fun sr ->
        let m = Run.metrics sr.Driver.sr_outcome in
        Format.printf "  segment %-10s %a@." sr.Driver.sr_segment
          Run.pp_metrics m)
      res.Driver.r_segments;
    Format.printf "merged: %a@." Run.pp_metrics res.Driver.r_metrics;
    Format.printf "fingerprint: %s@." res.Driver.r_fingerprint;
    let ordered_recorders = List.sort compare !recorders in
    if telemetry || headroom then
      List.iter
        (fun (_, segment, r) ->
          Format.printf "segment %s:@." segment;
          if telemetry then print_string (Registry.render (Recorder.snapshot r));
          Format.printf "  bound headroom (bit-times):@.";
          print_string (Headroom.render (Recorder.headroom_table r)))
        ordered_recorders;
    (match trace_out with
    | None -> ()
    | Some out ->
      (* Causal flows ride in their own buffer, merged after the
         per-segment timelines so the spans they bind to come first. *)
      let flows = Trace_event.create () in
      let seg_idx =
        let tbl = Hashtbl.create 8 in
        List.iteri
          (fun i (s : Topo.segment) -> Hashtbl.replace tbl s.Topo.sg_name i)
          e.Admit.e_topo.Topo.tp_segments;
        fun ~segment -> 2 * Hashtbl.find tbl segment
      in
      let stitched =
        Causal.stitch ~into:flows ~seg_pid:seg_idx ~chains:res.Driver.r_chains
      in
      let traces =
        List.map (fun (_, _, r) -> Recorder.trace_json r) ordered_recorders
        @ [ Trace_event.to_json flows ]
      in
      let oc = open_out out in
      output_string oc (Json.to_string (Trace_event.merge_json traces));
      output_char oc '\n';
      close_out oc;
      Format.printf "trace: %s (%d cross-segment chains stitched)@." out
        stitched);
    (match postmortem_out with
    | None -> ()
    | Some out -> (
      match Postmortem.trigger_of_result res with
      | None -> Format.printf "postmortem: clean run, nothing written@."
      | Some trigger ->
        let pm =
          Postmortem.build ~trigger ~topology:e.Admit.e_topo.Topo.tp_name
            ~seed ~fault_seed:(Prng.derive seed 0xFA) ~horizon ~result:res
            ~flights:(List.map snd (List.sort compare !flights))
            ()
        in
        Postmortem.save ~path:out pm;
        Format.printf "postmortem: %s (trigger: %a)@." out
          Postmortem.pp_trigger trigger));
    let v = res.Driver.r_verdict in
    if v.Driver.v_misses = [] && v.Driver.v_shed = 0 && v.Driver.v_bridge_drops = []
    then 0
    else 1

let run_cmd =
  let term =
    Term.(
      const run_run $ spec_file $ policy_t $ domains_t $ Cli_common.horizon_ms
      $ Cli_common.seed $ trace_out_t $ fault_plan_t $ telemetry_t
      $ headroom_t $ postmortem_out_t)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate the federated topology end to end — fault plans, bridge \
          failover and degraded-mode shedding included — and report \
          per-chain verdicts (exit 0 iff no unexcused end-to-end miss, \
          shed or bridge drop)")
    term

(* -------------------- dimension -------------------- *)

let run_dimension path =
  match load_spec path with
  | Error e ->
    Format.eprintf "ddcr_topo: %s@." e;
    2
  | Ok topo ->
    let admits =
      List.filter_map
        (fun policy ->
          match Admit.elaborate ~policy topo with
          | Error e ->
            Format.eprintf "ddcr_topo: %s@." e;
            None
          | Ok e ->
            Format.printf "%a@." Admit.pp_report e;
            Some e.Admit.e_admitted)
        [ Decompose.Proportional; Decompose.Slack_weighted ]
    in
    if List.length admits < 2 then 2
    else if List.exists (fun a -> a) admits then 0
    else 1

let dimension_cmd =
  let term = Term.(const run_dimension $ spec_file) in
  Cmd.v
    (Cmd.info "dimension"
       ~doc:
         "Print the per-hop budget tables of both decomposition policies \
          side by side (exit 0 iff at least one admits)")
    term

(* -------------------- group -------------------- *)

let cmd =
  Cmd.group
    (Cmd.info "ddcr_topo"
       ~doc:
         "Multi-hop federated DDCR topologies: end-to-end admission and \
          federated simulation")
    [ check_cmd; run_cmd; dimension_cmd ]

let () = exit (Cmd.eval' cmd)
