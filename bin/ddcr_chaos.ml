(* ddcr_chaos: adversarial fault-schedule search for the DDCR stack.

   `search` samples random fault plans over a severity budget, runs
   each candidate through the harness on a supervised worker pool
   (watchdog timeout, bounded retry with backoff, graceful degradation
   on an exhausted wall budget) and classifies outcomes with the
   analysis oracles.  `shrink` minimizes a failing plan by delta
   debugging (drop events, narrow windows, weaken severities).
   `replay` re-executes a frozen repro artifact and verifies that both
   the verdict and the trace fingerprint reproduce byte-identically.
   `soak` runs repeated searches under one wall budget, freezing each
   de-duplicated finding as a repro artifact.

   Exit codes: 0 success (for `search --expect-finding`: a violation
   was found; for `replay`: the artifact reproduced); 1 expectation
   failed (no finding / verdict or fingerprint drifted / shrink above
   --max-fraction); 2 invalid config, artifact or I/O error.

   Examples:
     ddcr_chaos search -s videoconference -n 4 --horizon-ms 2 --candidates 32
     ddcr_chaos search --config test/fixtures/chaos_smoke.json -o finding.json
     ddcr_chaos shrink --repro finding.json -o minimized.json
     ddcr_chaos replay test/fixtures/chaos_repro_min.json
     ddcr_chaos soak -s trading -n 3 --rounds 8 --wall-budget 60 --out-dir repros *)

module Spec = Rtnet_campaign.Spec
module Fault_plan = Rtnet_channel.Fault_plan
module Oracle = Rtnet_analysis.Oracle
module Generator = Rtnet_chaos.Generator
module Candidate = Rtnet_chaos.Candidate
module Search = Rtnet_chaos.Search
module Shrink = Rtnet_chaos.Shrink
module Repro = Rtnet_chaos.Repro
module Soak = Rtnet_chaos.Soak
module Registry = Rtnet_telemetry.Registry
module Topo = Rtnet_topology.Topo
module Flight = Rtnet_obs.Flight
module Postmortem = Rtnet_obs.Postmortem

open Cmdliner

(* -------------------- shared terms -------------------- *)

let config_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:"Load the search configuration from a JSON file (fields: \
              scenario, horizon_ms, seed, candidates, budget, jobs, \
              watchdog_s, retries, backoff_s, wall_budget_s).")

let candidates_t =
  Arg.(
    value & opt int 32
    & info [ "candidates" ] ~docv:"N" ~doc:"Candidate budget per search.")

let jobs =
  Arg.(
    value & opt int 2
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Concurrent worker processes.")

let watchdog =
  Arg.(
    value & opt float 30.
    & info [ "watchdog" ] ~docv:"S"
        ~doc:"Per-candidate watchdog timeout in seconds (0 disables).")

let retries =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:"Retry budget per hung/lost candidate.")

let backoff =
  Arg.(
    value & opt float 0.1
    & info [ "backoff" ] ~docv:"S" ~doc:"Linear retry backoff unit, seconds.")

let wall_budget =
  Arg.(
    value
    & opt (some float) None
    & info [ "wall-budget" ] ~docv:"S"
        ~doc:"Total wall-clock budget; exhaustion stops launching new \
              candidates and reports partial results.")

let max_events =
  Arg.(
    value & opt int 4
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Severity budget: max fault events per sampled plan.")

let max_rate =
  Arg.(
    value & opt float 0.5
    & info [ "max-rate" ] ~docv:"R"
        ~doc:"Severity budget: cap on garble/misperception rates.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the first finding as a replay artifact.")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-dir" ] ~docv:"DIR" ~doc:"Write every finding/repro here.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines.")

let topo_segments =
  Arg.(
    value & opt int 0
    & info [ "topo-segments" ] ~docv:"N"
        ~doc:"Topology mode: hunt accept-then-violate bugs of the federated \
              admission layer — candidates are per-segment fault plans over \
              an N-segment uniform tree (N >= 2; 0 disables).  --load and \
              --deadline-windows describe the per-segment workload; \
              --scenario/--size are ignored.")

let topo_fanout =
  Arg.(
    value & opt int 2
    & info [ "topo-fanout" ] ~docv:"N" ~doc:"Topology mode: tree fan-out.")

let topo_sources =
  Arg.(
    value & opt int 4
    & info [ "topo-sources" ] ~docv:"N"
        ~doc:"Topology mode: sources per segment.")

let admit_params =
  Arg.(
    value
    & opt (some file) None
    & info [ "admit-params" ] ~docv:"FILE"
        ~doc:"Admission mode: hunt accept-then-violate bugs of the \
              admission-control engine — candidates are churn streams \
              (flow add/remove/modify) decided by rtnet.admit under the \
              protocol parameters in $(docv), after which the admitted set \
              is simulated; a deadline miss in an accepted set is the \
              violation.  --scenario/--size are ignored.")

let admit_sources =
  Arg.(
    value & opt int 2
    & info [ "admit-sources" ] ~docv:"N"
        ~doc:"Admission mode: station count.")

let admit_pool =
  Arg.(
    value & opt int 8
    & info [ "admit-pool" ] ~docv:"N"
        ~doc:"Admission mode: flow-id pool size per candidate stream.")

let admit_requests =
  Arg.(
    value & opt int 64
    & info [ "admit-requests" ] ~docv:"N"
        ~doc:"Admission mode: churn-stream length per candidate.")

let admit_phy =
  Arg.(
    value
    & opt string "gigabit-ethernet"
    & info [ "admit-phy" ] ~docv:"NAME"
        ~doc:"Admission mode: broadcast medium (gigabit-ethernet, \
              classic-ethernet, atm-bus).")

let log_of quiet =
  if quiet then fun (_ : string) -> ()
  else fun m -> Printf.eprintf "ddcr_chaos: %s\n%!" m

let config_of_args config_file scenario size load deadline_windows horizon_ms
    seed candidates jobs watchdog retries backoff wall_budget max_events
    max_rate =
  match config_file with
  | Some f -> Search.load_config f
  | None ->
    let cf =
      {
        Candidate.cf_scenario =
          {
            Spec.sc_kind = scenario;
            sc_size = size;
            sc_load = load;
            sc_deadline_windows = deadline_windows;
            sc_fanout = 1;
          };
        cf_horizon_ms = horizon_ms;
        cf_params = None;
      }
    in
    Ok
      {
        (Search.default_config cf) with
        Search.s_seed = seed;
        s_count = candidates;
        s_jobs = jobs;
        s_watchdog_s = (if watchdog <= 0. then None else Some watchdog);
        s_retries = retries;
        s_backoff_s = backoff;
        s_wall_budget_s = wall_budget;
        s_budget =
          {
            Generator.default_budget with
            Generator.g_max_events = max_events;
            g_max_rate = max_rate;
          };
      }

let write_repro ~config ~note path finding =
  Repro.save ~path
    (Repro.make ~config ~candidate:finding.Search.fi_candidate
       ~report:finding.Search.fi_report ~note)

let plans_label plans =
  String.concat "; "
    (List.map (fun (n, sp) -> n ^ ":" ^ Fault_plan.label sp) plans)

let plans_events plans =
  List.fold_left (fun a (_, sp) -> a + Fault_plan.event_count sp) 0 plans

(* -------------------- search -------------------- *)

let expect_finding =
  Arg.(
    value & flag
    & info [ "expect-finding" ]
        ~doc:"Exit 1 unless the search finds at least one violation — the \
              smoke gate's assertion that the seeded violation is still \
              found.")

(* Topology mode: the same search loop over federated-tree candidates
   (per-segment fault plans, end-to-end oracle verdicts). *)
let run_topo_search ~segments ~fanout ~sources ~load ~deadline_windows
    ~horizon_ms ~seed ~candidates ~jobs ~watchdog ~retries ~backoff
    ~wall_budget ~max_events ~max_rate ~out ~out_dir ~quiet ~expect_finding =
  let tc =
    {
      Candidate.tc_segments = segments;
      tc_fanout = fanout;
      tc_sources = sources;
      tc_load = load;
      tc_deadline_windows = deadline_windows;
      tc_horizon_ms = horizon_ms;
    }
  in
  let config =
    {
      (Search.default_topo_config tc) with
      Search.t_seed = seed;
      t_count = candidates;
      t_jobs = jobs;
      t_watchdog_s = (if watchdog <= 0. then None else Some watchdog);
      t_retries = retries;
      t_backoff_s = backoff;
      t_wall_budget_s = wall_budget;
      t_budget =
        {
          Generator.default_budget with
          Generator.g_max_events = max_events;
          g_max_rate = max_rate;
        };
    }
  in
  let log = log_of quiet in
  let registry = Registry.create () in
  let res = Search.run_topo ~registry ~log config in
  Format.printf
    "topo search: %d/%d candidates examined, %d finding(s), %d gave up%s@."
    res.Search.tr_examined config.Search.t_count
    (List.length res.Search.tr_findings)
    (List.length res.Search.tr_gave_up)
    (if res.Search.tr_exhausted then " (budget exhausted, partial)" else "");
  List.iter
    (fun f ->
      Format.printf "  candidate %d [%s]: %s@." f.Search.tf_index
        (plans_label f.Search.tf_candidate.Candidate.td_plans)
        (Oracle.describe f.Search.tf_report.Candidate.rp_verdict))
    res.Search.tr_findings;
  let note i =
    Printf.sprintf "topo search seed=%d candidate=%d" config.Search.t_seed i
  in
  let write path (f : Search.topo_finding) =
    Repro.save_topo ~path
      (Repro.make_topo ~config:tc ~candidate:f.Search.tf_candidate
         ~report:f.Search.tf_report ~note:(note f.Search.tf_index))
  in
  (try
     (match (out, res.Search.tr_findings) with
     | Some path, f :: _ ->
       write path f;
       Format.printf "first finding written to %s@." path
     | Some _, [] | None, _ -> ());
     match out_dir with
     | None -> Ok ()
     | Some dir ->
       List.iter
         (fun f ->
           write
             (Filename.concat dir
                (Printf.sprintf "topo_chaos_finding_%d.json" f.Search.tf_index))
             f)
         res.Search.tr_findings;
       Ok ()
   with Sys_error e -> Error e)
  |> function
  | Error e ->
    Format.eprintf "ddcr_chaos: cannot write artifact: %s@." e;
    2
  | Ok () ->
    if expect_finding && res.Search.tr_findings = [] then begin
      Format.eprintf
        "ddcr_chaos: --expect-finding: no violation found in %d candidates@."
        res.Search.tr_examined;
      1
    end
    else 0

(* Admission mode: the same search loop over churn-stream candidates
   (admit the stream, simulate the admitted set). *)
let run_admit_search ~params_file ~sources ~pool ~requests ~phy ~horizon_ms
    ~seed ~candidates ~jobs ~watchdog ~retries ~backoff ~wall_budget ~out
    ~out_dir ~quiet ~expect_finding =
  match
    Result.bind (Rtnet_util.Json.parse_file params_file)
      Rtnet_core.Ddcr_params.of_json
  with
  | Error e ->
    Format.eprintf "ddcr_chaos: --admit-params %s: %s@." params_file e;
    2
  | Ok params ->
    let ac =
      {
        Candidate.an_phy = phy;
        an_sources = sources;
        an_params = params;
        an_horizon_ms = horizon_ms;
      }
    in
    let config =
      {
        (Search.default_admit_config ac) with
        Search.a_seed = seed;
        a_count = candidates;
        a_pool = pool;
        a_requests = requests;
        a_jobs = jobs;
        a_watchdog_s = (if watchdog <= 0. then None else Some watchdog);
        a_retries = retries;
        a_backoff_s = backoff;
        a_wall_budget_s = wall_budget;
      }
    in
    let log = log_of quiet in
    let registry = Registry.create () in
    let res = Search.run_admit ~registry ~log config in
    Format.printf
      "admit search: %d/%d candidates examined, %d finding(s), %d gave up%s@."
      res.Search.as_examined config.Search.a_count
      (List.length res.Search.as_findings)
      (List.length res.Search.as_gave_up)
      (if res.Search.as_exhausted then " (budget exhausted, partial)" else "");
    List.iter
      (fun f ->
        Format.printf "  candidate %d [%d request(s)]: %s@." f.Search.af_index
          (List.length f.Search.af_candidate.Candidate.ar_requests)
          (Oracle.describe f.Search.af_report.Candidate.rp_verdict))
      res.Search.as_findings;
    let note i =
      Printf.sprintf "admit search seed=%d candidate=%d" config.Search.a_seed i
    in
    let write path (f : Search.admit_finding) =
      Repro.save_admission ~path
        (Repro.make_admission ~config:ac ~candidate:f.Search.af_candidate
           ~report:f.Search.af_report ~note:(note f.Search.af_index))
    in
    (try
       (match (out, res.Search.as_findings) with
       | Some path, f :: _ ->
         write path f;
         Format.printf "first finding written to %s@." path
       | Some _, [] | None, _ -> ());
       match out_dir with
       | None -> Ok ()
       | Some dir ->
         List.iter
           (fun f ->
             write
               (Filename.concat dir
                  (Printf.sprintf "admit_chaos_finding_%d.json"
                     f.Search.af_index))
               f)
           res.Search.as_findings;
         Ok ()
     with Sys_error e -> Error e)
    |> ( function
    | Error e ->
      Format.eprintf "ddcr_chaos: cannot write artifact: %s@." e;
      2
    | Ok () ->
      if expect_finding && res.Search.as_findings = [] then begin
        Format.eprintf
          "ddcr_chaos: --expect-finding: no violation found in %d candidates@."
          res.Search.as_examined;
        1
      end
      else 0 )

let run_search config_file scenario size load deadline_windows horizon_ms seed
    candidates jobs watchdog retries backoff wall_budget max_events max_rate
    out out_dir quiet expect_finding topo_segments topo_fanout topo_sources
    admit_params admit_sources admit_pool admit_requests admit_phy =
  match admit_params with
  | Some params_file ->
    run_admit_search ~params_file ~sources:admit_sources ~pool:admit_pool
      ~requests:admit_requests ~phy:admit_phy ~horizon_ms ~seed ~candidates
      ~jobs ~watchdog ~retries ~backoff ~wall_budget ~out ~out_dir ~quiet
      ~expect_finding
  | None ->
  if topo_segments > 0 then
    if topo_segments < 2 then begin
      Format.eprintf "ddcr_chaos: --topo-segments must be >= 2@.";
      2
    end
    else
      run_topo_search ~segments:topo_segments ~fanout:topo_fanout
        ~sources:topo_sources ~load ~deadline_windows ~horizon_ms ~seed
        ~candidates ~jobs ~watchdog ~retries ~backoff ~wall_budget ~max_events
        ~max_rate ~out ~out_dir ~quiet ~expect_finding
  else
  match
    config_of_args config_file scenario size load deadline_windows horizon_ms
      seed candidates jobs watchdog retries backoff wall_budget max_events
      max_rate
  with
  | Error e ->
    Format.eprintf "ddcr_chaos: %s@." e;
    2
  | Ok config -> (
    let log = log_of quiet in
    let registry = Registry.create () in
    let res = Search.run ~registry ~log config in
    Format.printf "search: %d/%d candidates examined, %d finding(s), %d gave \
                   up%s@."
      res.Search.r_examined config.Search.s_count
      (List.length res.Search.r_findings)
      (List.length res.Search.r_gave_up)
      (if res.Search.r_exhausted then " (budget exhausted, partial)" else "");
    List.iter
      (fun f ->
        Format.printf "  candidate %d [%s]: %s@." f.Search.fi_index
          (Fault_plan.label f.Search.fi_candidate.Candidate.cd_plan)
          (Oracle.describe f.Search.fi_report.Candidate.rp_verdict))
      res.Search.r_findings;
    let note i =
      Printf.sprintf "search seed=%d candidate=%d" config.Search.s_seed i
    in
    (try
       (match (out, res.Search.r_findings) with
       | Some path, f :: _ ->
         write_repro ~config:config.Search.s_candidate ~note:(note f.Search.fi_index)
           path f;
         Format.printf "first finding written to %s@." path
       | Some _, [] | None, _ -> ());
       match out_dir with
       | None -> Ok ()
       | Some dir ->
         List.iter
           (fun f ->
             write_repro ~config:config.Search.s_candidate
               ~note:(note f.Search.fi_index)
               (Filename.concat dir
                  (Printf.sprintf "chaos_finding_%d.json" f.Search.fi_index))
               f)
           res.Search.r_findings;
         Ok ()
     with Sys_error e -> Error e)
    |> function
    | Error e ->
      Format.eprintf "ddcr_chaos: cannot write artifact: %s@." e;
      2
    | Ok () ->
      if expect_finding && res.Search.r_findings = [] then begin
        Format.eprintf
          "ddcr_chaos: --expect-finding: no violation found in %d candidates@."
          res.Search.r_examined;
        1
      end
      else 0)

let search_cmd =
  let term =
    Term.(
      const run_search $ config_file $ Cli_common.scenario $ Cli_common.size
      $ Cli_common.load $ Cli_common.deadline_windows $ Cli_common.horizon_ms
      $ Cli_common.seed $ candidates_t $ jobs $ watchdog $ retries $ backoff
      $ wall_budget $ max_events $ max_rate $ out $ out_dir $ quiet
      $ expect_finding $ topo_segments $ topo_fanout $ topo_sources
      $ admit_params $ admit_sources $ admit_pool $ admit_requests
      $ admit_phy)
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Sample adversarial fault plans and hunt for oracle violations")
    term

(* -------------------- shrink -------------------- *)

let repro_in =
  Arg.(
    required
    & opt (some file) None
    & info [ "repro" ] ~docv:"FILE"
        ~doc:"Finding to minimize (a replay artifact from $(b,search)).")

let shrink_out =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Where to write the minimized replay artifact.")

let max_fraction =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-fraction" ] ~docv:"F"
        ~doc:"Exit 1 unless the minimized plan has at most F times the \
              original event count — the smoke gate's shrink-quality \
              assertion.")

(* The shared tail of both shrink paths: report the reduction, enforce the
   optional --max-fraction quality gate. *)
let finish_shrink ~shrink_out ~max_fraction ~original_events ~shrunk_events
    ~plan_label ~verdict =
  Format.printf "shrink: %d -> %d event(s) [%s], verdict %s, written to %s@."
    original_events shrunk_events plan_label (Oracle.label verdict) shrink_out;
  match max_fraction with
  | Some f when float_of_int shrunk_events > f *. float_of_int original_events
    ->
    Format.eprintf
      "ddcr_chaos: --max-fraction %.2f: minimized plan still has %d of %d \
       events@."
      f shrunk_events original_events;
    1
  | _ -> 0

let run_topo_shrink ~log ~repro_in ~shrink_out ~max_fraction
    (repro : Repro.topo) =
  let config, td = Repro.topo_candidate repro in
  let oracle plans =
    (Candidate.run_topo config { td with Candidate.td_plans = plans })
      .Candidate.rp_verdict
  in
  let original_events = plans_events repro.Repro.rt_plans in
  let res =
    Shrink.run_topo ~oracle ~target:repro.Repro.rt_verdict repro.Repro.rt_plans
  in
  let shrunk_events = plans_events res.Shrink.st_plans in
  if not (Oracle.same_class res.Shrink.st_verdict repro.Repro.rt_verdict) then begin
    Format.eprintf
      "ddcr_chaos: the repro does not reproduce its own verdict (%s vs \
       expected %s) — nothing to shrink@."
      (Oracle.label res.Shrink.st_verdict)
      (Oracle.label repro.Repro.rt_verdict);
    1
  end
  else begin
    log
      (Printf.sprintf "shrink: %d -> %d event(s) in %d oracle check(s)"
         original_events shrunk_events res.Shrink.st_checks);
    let minimized_cd = { td with Candidate.td_plans = res.Shrink.st_plans } in
    let report = Candidate.run_topo config minimized_cd in
    let minimized =
      Repro.make_topo ~config ~candidate:minimized_cd ~report
        ~note:
          (Printf.sprintf "shrunk from %s (%d -> %d events)"
             (Filename.basename repro_in) original_events shrunk_events)
    in
    match Repro.save_topo ~path:shrink_out minimized with
    | () ->
      finish_shrink ~shrink_out ~max_fraction ~original_events ~shrunk_events
        ~plan_label:(plans_label res.Shrink.st_plans)
        ~verdict:report.Candidate.rp_verdict
    | exception Sys_error e ->
      Format.eprintf "ddcr_chaos: cannot write %s: %s@." shrink_out e;
      2
  end

(* Admission findings shrink over the churn stream itself: ddmin drops
   requests (an order-preserving subsequence) while the verdict class
   holds.  "Events" are requests here. *)
let run_admit_shrink ~log ~repro_in ~shrink_out ~max_fraction
    (repro : Repro.admission) =
  let config, ad = Repro.admission_candidate repro in
  let oracle reqs =
    (Candidate.run_admit config { ad with Candidate.ar_requests = reqs })
      .Candidate.rp_verdict
  in
  let original_events = List.length repro.Repro.ra_requests in
  let res =
    Shrink.run_admit ~oracle ~target:repro.Repro.ra_verdict
      repro.Repro.ra_requests
  in
  let shrunk_events = List.length res.Shrink.sa_requests in
  if not (Oracle.same_class res.Shrink.sa_verdict repro.Repro.ra_verdict)
  then begin
    Format.eprintf
      "ddcr_chaos: the repro does not reproduce its own verdict (%s vs \
       expected %s) — nothing to shrink@."
      (Oracle.label res.Shrink.sa_verdict)
      (Oracle.label repro.Repro.ra_verdict);
    1
  end
  else begin
    log
      (Printf.sprintf "shrink: %d -> %d request(s) in %d oracle check(s)"
         original_events shrunk_events res.Shrink.sa_checks);
    let minimized_cd = { ad with Candidate.ar_requests = res.Shrink.sa_requests } in
    let report = Candidate.run_admit config minimized_cd in
    let minimized =
      Repro.make_admission ~config ~candidate:minimized_cd ~report
        ~note:
          (Printf.sprintf "shrunk from %s (%d -> %d requests)"
             (Filename.basename repro_in) original_events shrunk_events)
    in
    match Repro.save_admission ~path:shrink_out minimized with
    | () ->
      finish_shrink ~shrink_out ~max_fraction ~original_events ~shrunk_events
        ~plan_label:(Printf.sprintf "%d request(s)" shrunk_events)
        ~verdict:report.Candidate.rp_verdict
    | exception Sys_error e ->
      Format.eprintf "ddcr_chaos: cannot write %s: %s@." shrink_out e;
      2
  end

let run_shrink repro_in shrink_out max_fraction quiet =
  let log = log_of quiet in
  match Repro.load_any ~path:repro_in with
  | Error e ->
    Format.eprintf "ddcr_chaos: %s@." e;
    2
  | Ok (Repro.Federated repro) ->
    run_topo_shrink ~log ~repro_in ~shrink_out ~max_fraction repro
  | Ok (Repro.Admission repro) ->
    run_admit_shrink ~log ~repro_in ~shrink_out ~max_fraction repro
  | Ok (Repro.Plain repro) -> (
    let config, cd = Repro.candidate repro in
    let oracle sp =
      (Candidate.run config { cd with Candidate.cd_plan = sp })
        .Candidate.rp_verdict
    in
    let original_events = Fault_plan.event_count repro.Repro.re_plan in
    let res =
      Shrink.run ~oracle ~target:repro.Repro.re_verdict repro.Repro.re_plan
    in
    let shrunk_events = Fault_plan.event_count res.Shrink.sh_plan in
    if not (Oracle.same_class res.Shrink.sh_verdict repro.Repro.re_verdict)
    then begin
      Format.eprintf
        "ddcr_chaos: the repro does not reproduce its own verdict (%s vs \
         expected %s) — nothing to shrink@."
        (Oracle.label res.Shrink.sh_verdict)
        (Oracle.label repro.Repro.re_verdict);
      1
    end
    else begin
      log
        (Printf.sprintf "shrink: %d -> %d event(s) in %d oracle check(s)"
           original_events shrunk_events res.Shrink.sh_checks);
      (* Re-freeze with the minimized plan's own verdict/fingerprint:
         the minimized artifact must replay byte-identically too. *)
      let report =
        Candidate.run config { cd with Candidate.cd_plan = res.Shrink.sh_plan }
      in
      let minimized =
        Repro.make ~config
          ~candidate:{ cd with Candidate.cd_plan = res.Shrink.sh_plan }
          ~report
          ~note:
            (Printf.sprintf "shrunk from %s (%d -> %d events)"
               (Filename.basename repro_in) original_events shrunk_events)
      in
      match Repro.save ~path:shrink_out minimized with
      | () ->
        Format.printf
          "shrink: %d -> %d event(s) [%s], verdict %s, written to %s@."
          original_events shrunk_events
          (Fault_plan.label res.Shrink.sh_plan)
          (Oracle.label report.Candidate.rp_verdict)
          shrink_out;
        (match max_fraction with
        | Some f
          when float_of_int shrunk_events
               > f *. float_of_int original_events ->
          Format.eprintf
            "ddcr_chaos: --max-fraction %.2f: minimized plan still has %d of \
             %d events@."
            f shrunk_events original_events;
          1
        | _ -> 0)
      | exception Sys_error e ->
        Format.eprintf "ddcr_chaos: cannot write %s: %s@." shrink_out e;
        2
    end)

let shrink_cmd =
  let term =
    Term.(const run_shrink $ repro_in $ shrink_out $ max_fraction $ quiet)
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Minimize a failing plan by delta debugging (drop events, narrow \
          windows, weaken severities) while preserving the verdict")
    term

(* -------------------- replay -------------------- *)

let replay_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Replay artifact to re-execute.")

let replay_postmortem_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem-out" ] ~docv:"FILE"
        ~doc:
          "Federated artifacts only: attach black-box flight recorders to \
           the replayed run and regenerate the postmortem of the frozen \
           failure at $(docv), cross-linked to this repro's note and \
           fingerprint.  Because the seeds are frozen, re-running the same \
           replay writes a byte-identical artifact.")

(* Shared verdict printing for both artifact flavors. *)
let report_replay ~replay_file ~expected_verdict ~expected_fingerprint
    (r : Repro.replay) =
  Format.printf "replay %s: verdict %s (%s), fingerprint %s@."
    (Filename.basename replay_file)
    (Oracle.label r.Repro.rr_report.Candidate.rp_verdict)
    (if r.Repro.rr_verdict_ok then "matches" else "DRIFTED")
    (if r.Repro.rr_fingerprint_ok then "matches" else "DRIFTED");
  if r.Repro.rr_verdict_ok && r.Repro.rr_fingerprint_ok then 0
  else begin
    Format.eprintf
      "ddcr_chaos: %s no longer reproduces: expected %s / %s, got %s / %s@."
      replay_file
      (Oracle.describe expected_verdict)
      expected_fingerprint
      (Oracle.describe r.Repro.rr_report.Candidate.rp_verdict)
      r.Repro.rr_report.Candidate.rp_fingerprint;
    1
  end

let run_replay replay_file postmortem_out =
  match Repro.load_any ~path:replay_file with
  | Error e ->
    Format.eprintf "ddcr_chaos: %s@." e;
    2
  | Ok (Repro.Plain repro) ->
    if postmortem_out <> None then
      Format.eprintf
        "ddcr_chaos: --postmortem-out applies to federated artifacts only; \
         ignoring@.";
    report_replay ~replay_file ~expected_verdict:repro.Repro.re_verdict
      ~expected_fingerprint:repro.Repro.re_fingerprint (Repro.replay repro)
  | Ok (Repro.Admission repro) ->
    if postmortem_out <> None then
      Format.eprintf
        "ddcr_chaos: --postmortem-out applies to federated artifacts only; \
         ignoring@.";
    report_replay ~replay_file ~expected_verdict:repro.Repro.ra_verdict
      ~expected_fingerprint:repro.Repro.ra_fingerprint
      (Repro.replay_admission repro)
  | Ok (Repro.Federated repro) ->
    let flights = ref [] in
    let result = ref None in
    let sink_for, on_result =
      match postmortem_out with
      | None -> (None, None)
      | Some _ ->
        ( Some
            (fun ~index ~segment ->
              let f = Flight.create ~segment () in
              flights := (index, f) :: !flights;
              Flight.sink f),
          Some (fun r -> result := Some r) )
    in
    let r = Repro.replay_topo ?sink_for ?on_result repro in
    (match (postmortem_out, !result) with
    | Some out, Some res ->
      (* Re-freeze the black box of the frozen failure.  The trigger is
         taken from the replayed result itself; if the oracle verdict
         fired on evidence outside the driver's own miss accounting,
         fall back to the artifact's frozen verdict label. *)
      let trigger =
        match Postmortem.trigger_of_result res with
        | Some t -> t
        | None -> Postmortem.Verdict (Oracle.label repro.Repro.rt_verdict)
      in
      let pm =
        Postmortem.build ~trigger
          ~topology:
            (Candidate.topo_tree repro.Repro.rt_config).Topo.tp_name
          ~seed:repro.Repro.rt_trace_seed
          ~fault_seed:repro.Repro.rt_fault_seed
          ~horizon:(repro.Repro.rt_config.Candidate.tc_horizon_ms * 1_000_000)
          ~result:res
          ~flights:(List.map snd (List.sort compare !flights))
          ~repro:(repro.Repro.rt_note, repro.Repro.rt_fingerprint)
          ()
      in
      Postmortem.save ~path:out pm;
      Format.printf "postmortem: %s (trigger: %a)@." out Postmortem.pp_trigger
        trigger
    | Some out, None ->
      Format.eprintf
        "ddcr_chaos: replay ended in a configuration error — no driver \
         result, %s not written@."
        out
    | None, _ -> ());
    report_replay ~replay_file ~expected_verdict:repro.Repro.rt_verdict
      ~expected_fingerprint:repro.Repro.rt_fingerprint r

let replay_cmd =
  let term = Term.(const run_replay $ replay_file $ replay_postmortem_out) in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a replay artifact and verify verdict and trace \
          fingerprint reproduce byte-identically")
    term

(* -------------------- soak -------------------- *)

let rounds =
  Arg.(
    value & opt int 4
    & info [ "rounds" ] ~docv:"N" ~doc:"Maximum search rounds.")

let run_soak config_file scenario size load deadline_windows horizon_ms seed
    candidates jobs watchdog retries backoff wall_budget max_events max_rate
    rounds out_dir quiet =
  match
    config_of_args config_file scenario size load deadline_windows horizon_ms
      seed candidates jobs watchdog retries backoff None max_events max_rate
  with
  | Error e ->
    Format.eprintf "ddcr_chaos: %s@." e;
    2
  | Ok search_config ->
    let log = log_of quiet in
    (match out_dir with
    | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
    | _ -> ());
    let res =
      Soak.run ~log
        {
          Soak.so_search = search_config;
          so_rounds = rounds;
          so_wall_budget_s = wall_budget;
          so_out_dir = out_dir;
        }
    in
    Format.printf
      "soak: %d round(s), %d candidate(s) examined, %d distinct finding(s), \
       %d gave up%s@."
      res.Soak.so_rounds_run res.Soak.so_examined res.Soak.so_findings
      res.Soak.so_gave_up
      (if res.Soak.so_exhausted then " (budget exhausted)" else "");
    List.iter (fun p -> Format.printf "  %s@." p) res.Soak.so_repro_paths;
    0

let soak_cmd =
  let term =
    Term.(
      const run_soak $ config_file $ Cli_common.scenario $ Cli_common.size
      $ Cli_common.load $ Cli_common.deadline_windows $ Cli_common.horizon_ms
      $ Cli_common.seed $ candidates_t $ jobs $ watchdog $ retries $ backoff
      $ wall_budget $ max_events $ max_rate $ rounds $ out_dir $ quiet)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run repeated searches under one wall budget, freezing each \
          de-duplicated finding as a replay artifact")
    term

(* -------------------- group -------------------- *)

let cmd =
  Cmd.group
    (Cmd.info "ddcr_chaos"
       ~doc:
         "Adversarial fault-schedule search with delta-debugging shrinker \
          and deterministic replay artifacts")
    [ search_cmd; shrink_cmd; replay_cmd; soak_cmd ]

let () = exit (Cmd.eval' cmd)
