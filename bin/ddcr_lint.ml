(* ddcr_lint: the static-analysis gate of rtnet.analysis.

   Lints protocol configurations against the Section 4.3 feasibility
   conditions, invariant-checks simulated traces against the paper's
   proof obligations, and cross-validates the tree-search analysis by
   bounded exhaustive enumeration.  Exits non-zero iff any pass emits
   an Error diagnostic — the contract the @lint alias and `make check`
   rely on.

   Examples:
     ddcr_lint -s videoconference -n 8
     ddcr_lint --all-scenarios --trace --bounded
     ddcr_lint -s trading -n 4 --scale-windows 0.05       # seeded overload
     ddcr_lint --dump-trace trace.txt -s trading -n 4
     ddcr_lint --check-trace trace.txt *)

module Instance = Rtnet_workload.Instance
module Scenarios = Rtnet_workload.Scenarios
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Message = Rtnet_workload.Message
module Diagnostic = Rtnet_analysis.Diagnostic
module Config_lint = Rtnet_analysis.Config_lint
module Trace_check = Rtnet_analysis.Trace_check
module Bounded_check = Rtnet_analysis.Bounded_check
module Trace_io = Rtnet_analysis.Trace_io

open Cmdliner

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Treat B_DDCR feasibility violations as errors even when the \
           centralized NP-EDF oracle accepts the workload.")

let with_trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Also simulate each linted scenario and run the trace invariant \
           checker over the emitted events.")

let bounded =
  Arg.(
    value & flag
    & info [ "bounded" ]
        ~doc:
          "Run the bounded exhaustive checker: enumerate all contender \
           subsets on small trees and cross-validate tree searches against \
           the xi/zeta closed forms.")

let max_m =
  Arg.(
    value & opt int 3
    & info [ "max-m" ] ~docv:"M"
        ~doc:"Largest branching degree for the bounded checker.")

let max_leaves =
  Arg.(
    value & opt int 9
    & info [ "max-leaves" ] ~docv:"Q"
        ~doc:"Largest leaf count for the bounded checker.")

let all_scenarios =
  Arg.(
    value & flag
    & info [ "all-scenarios" ]
        ~doc:"Lint every shipped scenario (Scenarios.all) instead of one.")

let check_trace_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-trace" ] ~docv:"FILE"
        ~doc:
          "Parse a dumped trace fixture and run the invariant checker over \
           it (no simulation).")

let check_perfetto_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-perfetto" ] ~docv:"FILE"
        ~doc:
          "Validate a Chrome trace-event JSON file written by ddcr_sim or \
           ddcr_topo --trace-out: the JSON must parse, spans on every \
           track must nest, no transmission span may carry negative bound \
           headroom, and every cross-segment causal flow chain must read \
           s -> t* -> f in non-decreasing timestamp order.  Exit 0 if \
           valid, 1 if not, 2 on parse failure.")

let check_repro_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-repro" ] ~docv:"FILE"
        ~doc:
          "Validate a chaos replay artifact written by ddcr_chaos (plain, \
           federated-topology or admission flavor, dispatched on the \
           version key): the schema version must match, the embedded \
           fault plan or churn stream must pass construction validation, \
           and the scenario must decode.  Exit 0 if valid, 2 if not.  The \
           artifact is not re-executed; use $(b,ddcr_chaos replay) for \
           that.")

let check_admit_trace_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-admit-trace" ] ~docv:"FILE"
        ~doc:
          "Lint an admission request trace written by ddcr_admit gen: \
           replay the churn stream through a fresh engine and report \
           CFG-ADMIT diagnostics (duplicate live flow ids are errors, \
           bindings within one frame of infeasibility are warnings).  \
           Exit 0 if clean, 1 on lint errors, 2 if the file does not \
           decode.")

let dump_trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-trace" ] ~docv:"FILE"
        ~doc:
          "Simulate the selected scenario and write its event trace (with \
           dm fields) to FILE, then exit.")

let scale_deadlines =
  Arg.(
    value & opt float 1.0
    & info [ "scale-deadlines" ] ~docv:"K"
        ~doc:"Multiply every relative deadline by K before linting.")

let scale_windows =
  Arg.(
    value & opt float 1.0
    & info [ "scale-windows" ] ~docv:"K"
        ~doc:
          "Multiply every arrival window by K before linting (K < 1 \
           increases offered load).")

let apply_scaling ~sd ~sw inst =
  let inst = if sd = 1.0 then inst else Instance.scale_deadlines inst sd in
  if sw = 1.0 then inst else Instance.scale_windows inst sw

let params_for ~indices ~burst ~theta ~allocation inst =
  Ddcr_params.with_theta
    (Ddcr_params.with_burst
       (Ddcr_params.default ~indices_per_source:indices ~allocation inst)
       burst)
    theta

(* Config lint, optionally followed by a simulated, invariant-checked
   trace.  The simulation is skipped when the configuration itself is
   structurally invalid (Ddcr.run_trace would reject it). *)
let lint_one ~strict ~with_trace ~seed ~horizon params inst =
  let cfg = Config_lint.check ~strict params inst in
  let structurally_broken =
    List.exists
      (fun d -> d.Diagnostic.rule_id = "CFG-PARAMS")
      (Diagnostic.errors cfg)
  in
  if (not with_trace) || structurally_broken then cfg
  else begin
    let workload = Instance.trace inst ~seed ~horizon in
    let record, finish = Ddcr_trace.collector () in
    let outcome = Ddcr.run_trace ~on_event:record params inst workload ~horizon in
    cfg @ Trace_check.check_run ~workload ~outcome (finish ())
  end

let dump ~seed ~horizon params inst path =
  let workload = Instance.trace inst ~seed ~horizon in
  let record, finish = Ddcr_trace.collector () in
  let (_ : Rtnet_stats.Run.outcome) =
    Ddcr.run_trace ~on_event:record params inst workload ~horizon
  in
  let deadlines = Hashtbl.create 256 in
  List.iter
    (fun m -> Hashtbl.replace deadlines m.Message.uid (Message.abs_deadline m))
    workload;
  let events = finish () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Trace_io.output ~deadline_of:(Hashtbl.find_opt deadlines) oc events);
  Format.printf "wrote %d events to %s@." (List.length events) path

let main scenario size load deadline_windows indices burst theta allocation
    seed horizon_ms strict with_trace bounded max_m max_leaves all_scenarios
    check_trace_file check_perfetto_file check_repro_file
    check_admit_trace_file dump_trace_file sd sw =
  let horizon = horizon_ms * 1_000_000 in
  match check_admit_trace_file with
  | Some path -> (
    match Rtnet_admit.Request.load_trace ~path with
    | Error e ->
      Format.eprintf "ddcr_lint: %s@." e;
      2
    | Ok trace ->
      let diags = Config_lint.check_admit trace in
      Format.printf "== admission trace %s (%d requests) ==@.%a" path
        (List.length trace.Rtnet_admit.Request.tr_requests)
        Diagnostic.pp_report diags;
      Diagnostic.exit_code diags)
  | None -> (
  match check_repro_file with
  | Some path -> (
    match Rtnet_util.Json.parse_file path with
    | Error e ->
      Format.eprintf "ddcr_lint: cannot parse %s: %s@." path e;
      2
    | Ok j -> (
      (* Report the version the artifact DECLARES, not the current
         constant: a back-compatible v1 file must read as v1. *)
      let declared key =
        match
          Result.bind (Rtnet_util.Json.field key j) Rtnet_util.Json.get_int
        with
        | Ok v -> string_of_int v
        | Error _ -> "?"
      in
      match Rtnet_chaos.Repro.load_any ~path with
      | Ok (Rtnet_chaos.Repro.Plain r) ->
        Format.printf "chaos repro %s: schema v%s, plan [%s]%s, verdict %s ok@."
          path
          (declared "chaos_repro_version")
          (Rtnet_channel.Fault_plan.label r.Rtnet_chaos.Repro.re_plan)
          (match r.Rtnet_chaos.Repro.re_params with
          | Some _ -> ", params override"
          | None -> "")
          (Rtnet_analysis.Oracle.label r.Rtnet_chaos.Repro.re_verdict);
        0
      | Ok (Rtnet_chaos.Repro.Federated r) ->
        Format.printf
          "topo chaos repro %s: schema v%s, %d segment plan(s), verdict %s \
           ok@."
          path
          (declared "topo_chaos_repro_version")
          (List.length r.Rtnet_chaos.Repro.rt_plans)
          (Rtnet_analysis.Oracle.label r.Rtnet_chaos.Repro.rt_verdict);
        0
      | Ok (Rtnet_chaos.Repro.Admission r) ->
        Format.printf
          "admit chaos repro %s: schema v%s, %d request(s), verdict %s ok@."
          path
          (declared "admit_chaos_repro_version")
          (List.length r.Rtnet_chaos.Repro.ra_requests)
          (Rtnet_analysis.Oracle.label r.Rtnet_chaos.Repro.ra_verdict);
        0
      | Error e ->
        Format.eprintf "ddcr_lint: %s@." e;
        2))
  | None -> (
  match check_perfetto_file with
  | Some path -> (
    match Rtnet_util.Json.parse_file path with
    | Error e ->
      Format.eprintf "ddcr_lint: cannot parse %s: %s@." path e;
      2
    | Ok j -> (
      match Rtnet_telemetry.Trace_event.validate j with
      | Ok spans ->
        Format.printf
          "perfetto trace %s: %d events, nesting, headroom and causal \
           flows ok@."
          path spans;
        0
      | Error e ->
        Format.eprintf "ddcr_lint: %s: %s@." path e;
        1))
  | None -> (
  match check_trace_file with
  | Some path -> (
    match Trace_io.parse_file path with
    | Error e ->
      Format.eprintf "ddcr_lint: cannot parse %s: %s@." path e;
      2
    | Ok (events, deadlines) ->
      let diags = Trace_check.check ~deadlines events in
      Format.printf "== trace %s (%d events) ==@.%a" path (List.length events)
        Diagnostic.pp_report diags;
      Diagnostic.exit_code diags)
  | None -> (
    let targets =
      if all_scenarios then Scenarios.all
      else
        [
          ( scenario,
            Cli_common.instance_of ~scenario ~size ~load ~deadline_windows );
        ]
    in
    let targets =
      List.map (fun (name, inst) -> (name, apply_scaling ~sd ~sw inst)) targets
    in
    match dump_trace_file with
    | Some path ->
      let name, inst = List.hd targets in
      Format.printf "== scenario %s ==@." name;
      dump ~seed ~horizon (params_for ~indices ~burst ~theta ~allocation inst)
        inst path;
      0
    | None ->
      let scenario_diags =
        List.concat_map
          (fun (name, inst) ->
            let params = params_for ~indices ~burst ~theta ~allocation inst in
            let diags =
              lint_one ~strict ~with_trace ~seed ~horizon params inst
            in
            Format.printf "== scenario %s ==@.%a@." name Diagnostic.pp_report
              diags;
            diags)
          targets
      in
      let bounded_diags =
        if bounded then begin
          let diags = Bounded_check.sweep ~max_m ~max_leaves () in
          Format.printf "== bounded exhaustive checker ==@.%a@."
            Diagnostic.pp_report diags;
          diags
        end
        else []
      in
      Diagnostic.exit_code (scenario_diags @ bounded_diags)))))

let cmd =
  let term =
    Term.(
      const main $ Cli_common.scenario $ Cli_common.size $ Cli_common.load
      $ Cli_common.deadline_windows $ Cli_common.indices_per_source
      $ Cli_common.burst_bits $ Cli_common.theta $ Cli_common.allocation
      $ Cli_common.seed $ Cli_common.horizon_ms $ strict $ with_trace
      $ bounded $ max_m $ max_leaves $ all_scenarios $ check_trace_file
      $ check_perfetto_file $ check_repro_file $ check_admit_trace_file
      $ dump_trace_file $ scale_deadlines $ scale_windows)
  in
  Cmd.v
    (Cmd.info "ddcr_lint"
       ~doc:
         "Static protocol linter and trace invariant checker for CSMA/DDCR")
    term

let () = exit (Cmd.eval' cmd)
