(* Benchmark harness: regenerates every figure of the paper (Fig. 1 and
   Fig. 2) plus one table per verifiable analytical claim (Eq. 5-19,
   the feasibility conditions, the protocol comparison the paper argues
   qualitatively), then times the core artefacts with Bechamel.

   Experiment ids (E1..E10) are indexed in DESIGN.md and their
   paper-vs-measured record lives in EXPERIMENTS.md. *)

module Table = Rtnet_util.Table
module Xi = Rtnet_core.Xi
module Multi_tree = Rtnet_core.Multi_tree
module Tree_search = Rtnet_core.Tree_search
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Multi_bus = Rtnet_core.Multi_bus
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Arrival = Rtnet_workload.Arrival
module Scenarios = Rtnet_workload.Scenarios
module Phy = Rtnet_channel.Phy
module Run = Rtnet_stats.Run
module Np_edf = Rtnet_edf.Np_edf
module Beb = Rtnet_baselines.Csma_cd_beb
module Dcr = Rtnet_baselines.Csma_dcr
module Tdma = Rtnet_baselines.Tdma

let ms = 1_000_000

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* E1 / Fig. 1: worst-case search times for a 64-leaf balanced
   quaternary tree — exact xi and the asymptotic tight bound. *)
let fig1 () =
  section "E1 (Fig. 1): 64-leaf quaternary tree: xi and its asymptote";
  let m = 4 and t = 64 in
  let tab = Xi.table ~m ~t in
  let out = Table.create [ "k"; "xi_k^64"; "xi~_k^64"; "gap" ] in
  for k = 0 to t do
    let tilde =
      if k >= 2 then Printf.sprintf "%.2f" (Xi.tilde ~m ~t (float_of_int k))
      else "-"
    in
    let gap =
      if k >= 2 then
        Printf.sprintf "%.2f" (Xi.tilde ~m ~t (float_of_int k) -. float_of_int tab.(k))
      else "-"
    in
    Table.add_row out [ string_of_int k; string_of_int tab.(k); tilde; gap ]
  done;
  Table.print out;
  Printf.printf "concave asymptote, exact at k = 2*4^i; max gap (even k) = %.3f <= 9.54%% * t = %.3f\n"
    (Xi.max_gap ~m ~t)
    (Xi.gap_bound_universal *. float_of_int t)

(* E2 / Fig. 2: binary vs quaternary on 64 leaves. *)
let fig2 () =
  section "E2 (Fig. 2): 64-leaf binary vs quaternary trees";
  let b = Xi.table ~m:2 ~t:64 and q = Xi.table ~m:4 ~t:64 in
  let out = Table.create [ "k"; "xi (m=2)"; "xi (m=4)"; "quaternary wins" ] in
  let dominated = ref true in
  for k = 2 to 64 do
    if q.(k) > b.(k) then dominated := false;
    Table.add_row out
      [
        string_of_int k;
        string_of_int b.(k);
        string_of_int q.(k);
        (if q.(k) <= b.(k) then "yes" else "NO");
      ]
  done;
  Table.print out;
  Printf.printf "paper's claim (quaternary <= binary for all k in [2,64]): %b\n"
    !dominated

(* E3: the closed-form special values Eq. 5-7 across tree shapes. *)
let eq5_7 () =
  section "E3 (Eq. 5-7): special values across tree shapes";
  let out =
    Table.create [ "m"; "t"; "xi_2 (Eq.5)"; "xi_{2t/m} (Eq.6)"; "xi_t (Eq.7)" ]
  in
  List.iter
    (fun (m, n) ->
      let t = Rtnet_util.Int_math.pow m n in
      Table.add_int_row out
        [ m; t; Xi.eq5 ~m ~t; Xi.eq6 ~m ~t; Xi.eq7 ~m ~t ])
    [ (2, 3); (2, 6); (2, 10); (3, 3); (3, 5); (4, 3); (4, 5); (8, 2); (8, 3) ];
  Table.print out

(* E4: tightness of the asymptote, Eq. 12-14. *)
let tightness () =
  section "E4 (Eq. 12-14): tightness of the asymptotic bound";
  let out =
    Table.create
      [ "m"; "t"; "max gap (even k)"; "Eq.13 bound"; "Eq.14 bound"; "holds" ]
  in
  List.iter
    (fun (m, n) ->
      let t = Rtnet_util.Int_math.pow m n in
      let gap = Xi.max_gap ~m ~t in
      let b13 = Xi.gap_bound ~m *. float_of_int t in
      let b14 = Xi.gap_bound_universal *. float_of_int t in
      Table.add_row out
        [
          string_of_int m;
          string_of_int t;
          Printf.sprintf "%.3f" gap;
          Printf.sprintf "%.3f" b13;
          Printf.sprintf "%.3f" b14;
          (if gap <= b13 +. 1e-9 && gap <= b14 +. 1e-9 then "yes" else "NO");
        ])
    [ (2, 6); (2, 10); (3, 4); (3, 6); (4, 3); (4, 5); (5, 4); (8, 3); (9, 3) ];
  Table.print out

(* E5: problem P2 — analytic bound vs exhaustive optimisation. *)
let p2 () =
  section "E5 (Eq. 16-19): multi-tree worst case, bound vs exhaustive";
  let out =
    Table.create
      [ "m"; "t"; "v"; "u"; "exhaustive max"; "Eq.19 bound"; "slack" ]
  in
  List.iter
    (fun (m, t, v) ->
      List.iter
        (fun u ->
          if u >= 2 * v && u <= t * v then begin
            let exact = Multi_tree.worst_exact ~m ~t ~u ~v in
            let bound = Multi_tree.bound ~m ~t ~u ~v in
            Table.add_row out
              [
                string_of_int m;
                string_of_int t;
                string_of_int v;
                string_of_int u;
                string_of_int exact;
                Printf.sprintf "%.2f" bound;
                Printf.sprintf "%.2f" (bound -. float_of_int exact);
              ]
          end)
        [ 2 * v; 3 * v; 4 * v; 6 * v; 8 * v ])
    [ (2, 8, 2); (2, 8, 4); (4, 16, 2); (4, 16, 4); (3, 27, 3) ];
  Table.print out

(* E6: feasibility-condition validation — simulated worst latency under
   the greedy peak-load adversary vs the analytical bounds. *)
let fc_validation () =
  section "E6 (Sec. 4.3): bound domination under the peak-load adversary";
  let out =
    Table.create
      [
        "instance"; "class"; "observed worst"; "B_DDCR"; "B_impl"; "obs/B"; "ok";
      ]
  in
  List.iter
    (fun (name, inst) ->
      let params = Ddcr_params.default inst in
      let adv = Instance.with_law inst Arrival.Greedy_burst in
      let o = Ddcr.run ~seed:42 params adv ~horizon:(40 * ms) in
      List.iter
        (fun (cls_id, worst) ->
          let c =
            List.find (fun c -> c.Message.cls_id = cls_id) (Instance.classes adv)
          in
          let b = Feasibility.latency_bound params adv c in
          let bi = Feasibility.latency_bound_impl params adv c in
          Table.add_row out
            [
              name;
              c.Message.cls_name;
              string_of_int worst;
              Printf.sprintf "%.0f" b;
              Printf.sprintf "%.0f" bi;
              Printf.sprintf "%.3f" (float_of_int worst /. b);
              (if float_of_int worst <= bi then "yes" else "NO");
            ])
        (Run.per_class_worst_latency o))
    [
      ("videoconference", Scenarios.videoconference ~stations:5);
      ("air-traffic", Scenarios.air_traffic_control ~radars:4);
      ( "uniform-0.2",
        Scenarios.uniform ~sources:6 ~classes_per_source:1 ~load:0.2
          ~deadline_windows:3.0 );
      ( "uniform-0.4",
        Scenarios.uniform ~sources:8 ~classes_per_source:1 ~load:0.4
          ~deadline_windows:4.0 );
    ];
  Table.print out

(* E7: protocol comparison across offered load (the motivation of
   Sec. 3.1: deterministic resolution beats BEB's tail and TDMA's
   reservation waste; the NP-EDF oracle is the floor). *)
let protocol_comparison () =
  section "E7 (Sec. 3.1/5): protocol comparison under increasing load";
  let out =
    Table.create
      [ "load"; "protocol"; "delivered"; "misses"; "worst lat (us)"; "mean lat (us)"; "inversions" ]
  in
  List.iter
    (fun load ->
      let inst =
        Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load
          ~deadline_windows:2.0
      in
      let horizon = 40 * ms in
      let trace = Instance.trace inst ~seed:42 ~horizon in
      let params = Ddcr_params.default inst in
      let runs =
        [
          Ddcr.run_trace params inst trace ~horizon;
          Beb.run_trace ~seed:42 inst trace ~horizon;
          Dcr.run_trace (Dcr.of_ddcr params) inst trace ~horizon;
          Tdma.run_trace inst trace ~horizon;
          Np_edf.run inst.Instance.phy trace ~horizon;
        ]
      in
      List.iter
        (fun o ->
          let m = Run.metrics o in
          Table.add_row out
            [
              Printf.sprintf "%.2f" load;
              o.Run.protocol;
              string_of_int m.Run.delivered;
              string_of_int m.Run.deadline_misses;
              Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. 1000.);
              Printf.sprintf "%.1f" (m.Run.mean_latency /. 1000.);
              string_of_int m.Run.inversions;
            ])
        runs)
    [ 0.1; 0.3; 0.5; 0.7; 0.85 ];
  Table.print out;
  (* The same sweep, replicated and machine-readable:
     `ddcr_campaign run load_sweep` writes BENCH_load_sweep.json with
     per-cell metrics for all five protocols over these loads. *)
  Printf.printf
    "(machine-readable replicated form: ddcr_campaign run load_sweep)\n"

(* E8: the "optimal m" remark at the end of Sec. 4.1. *)
let optimal_m () =
  section "E8 (Sec. 4.1): choosing the branching degree";
  let out =
    Table.create
      [ "m"; "t (>= 64 leaves)"; "xi_2"; "xi_t"; "sum xi / t" ]
  in
  List.iter
    (fun m ->
      let rec tree size = if size >= 64 then size else tree (size * m) in
      let t = tree m in
      Table.add_row out
        [
          string_of_int m;
          string_of_int t;
          string_of_int (Xi.eq5 ~m ~t);
          string_of_int (Xi.eq7 ~m ~t);
          Printf.sprintf "%.2f"
            (float_of_int (Xi.total_over_ks ~m ~t) /. float_of_int t);
        ])
    [ 2; 3; 4; 5; 8 ];
  Table.print out;
  Printf.printf "best branching for 64 leaves among {2,3,4,8}: m = %d\n"
    (Xi.best_branching ~min_leaves:64 ~candidates:[ 2; 3; 4; 8 ])

(* E9: compressed time ablation (theta trade-off of Sec. 3.2). *)
let compressed_time () =
  section "E9 (Sec. 3.2): compressed-time mode ablation";
  (* Far deadlines relative to the scheduling horizon: exactly the
     situation compressed time exists for. *)
  let phy = Phy.classic_ethernet in
  let far id src =
    {
      Message.cls_id = id;
      cls_name = Printf.sprintf "far%d" id;
      cls_source = src;
      cls_bits = 1000;
      cls_deadline = 1_000_000;
      cls_burst = 1;
      cls_window = 1_500_000;
    }
  in
  (* A sprinkle of genuinely urgent traffic: aggressive compression
     promotes far-deadline messages into the urgent messages' classes,
     which is where the deadline inversions of the trade-off come
     from. *)
  let urgent id src =
    {
      Message.cls_id = id;
      cls_name = Printf.sprintf "urgent%d" id;
      cls_source = src;
      cls_bits = 1000;
      cls_deadline = 30_000;
      cls_burst = 1;
      cls_window = 40_000;
    }
  in
  let inst =
    Instance.create_exn ~name:"far-deadlines" ~phy ~num_sources:4
      (List.init 4 (fun i -> (far i i, Arrival.Periodic { offset = i * 700 }))
      @ List.init 4 (fun i ->
            (urgent (4 + i) i, Arrival.Periodic { offset = 13_000 + (i * 9_700) })))
  in
  let base =
    {
      Ddcr_params.time_m = 2;
      time_leaves = 16;
      class_width = 2000;
      alpha = 0;
      theta = 0;
      static_m = 2;
      static_leaves = 4;
      static_indices = [| [| 0 |]; [| 1 |]; [| 2 |]; [| 3 |] |];
      burst_bits = 0;
    }
  in
  let out =
    Table.create
      [ "theta"; "first finish (us)"; "mean lat (us)"; "idle+collision slots"; "inversions" ]
  in
  List.iter
    (fun theta ->
      let p = Ddcr_params.with_theta base theta in
      let o = Ddcr.run ~seed:1 p inst ~horizon:(3 * ms) in
      let m = Run.metrics o in
      let wasted =
        match o.Run.channel with
        | Some st ->
          st.Rtnet_channel.Channel.idle_slots
          + st.Rtnet_channel.Channel.collision_slots
        | None -> 0
      in
      let first =
        match o.Run.completions with
        | c :: _ -> Printf.sprintf "%.1f" (float_of_int c.Run.c_finish /. 1000.)
        | [] -> "-"
      in
      Table.add_row out
        [
          string_of_int theta;
          first;
          Printf.sprintf "%.1f" (m.Run.mean_latency /. 1000.);
          string_of_int wasted;
          string_of_int m.Run.inversions;
        ])
    [ 0; 2000; 8000; 32000 ];
  Table.print out

(* E10: destructive vs arbitrated collisions (Sec. 5's ATM bus). *)
let atm_mode () =
  section "E10 (Sec. 5): ATM internal bus, destructive vs arbitrated";
  let inst = Scenarios.atm_fabric ~ports:4 in
  let destructive_phy = { inst.Instance.phy with Phy.semantics = Phy.Destructive } in
  let destructive =
    Instance.create_exn ~name:"atm-destructive" ~phy:destructive_phy
      ~num_sources:inst.Instance.num_sources
      (Array.to_list inst.Instance.classes)
  in
  let out =
    Table.create
      [ "collision semantics"; "delivered"; "misses"; "worst lat"; "mean lat"; "utilization" ]
  in
  List.iter
    (fun (label, i) ->
      let params = Ddcr_params.default i in
      let o = Ddcr.run ~seed:9 params i ~horizon:(4 * ms) in
      let m = Run.metrics o in
      Table.add_row out
        [
          label;
          string_of_int m.Run.delivered;
          string_of_int m.Run.deadline_misses;
          string_of_int m.Run.worst_latency;
          Printf.sprintf "%.0f" m.Run.mean_latency;
          Printf.sprintf "%.3f" m.Run.utilization;
        ])
    [ ("arbitrated (XOR bus)", inst); ("destructive", destructive) ];
  Table.print out;
  (* The Sec. 3.2 "straightforward" analytical counterpart: per-class
     B_DDCR with the arbitrated zeta analysis vs the destructive one. *)
  let params = Ddcr_params.default inst in
  let bounds = Table.create [ "class"; "B (destructive xi)"; "B (arbitrated)" ] in
  List.iter
    (fun c ->
      Table.add_row bounds
        [
          c.Message.cls_name;
          Printf.sprintf "%.0f" (Feasibility.latency_bound params inst c);
          Printf.sprintf "%.0f" (Feasibility.latency_bound_arbitrated params inst c);
        ])
    (Instance.classes inst);
  Table.print bounds

(* E11: packet bursting (Sec. 5, IEEE 802.3z) — the extension the paper
   recommends for Gigabit Ethernet, where small frames cost a full
   4096-bit contention slot each. *)
let packet_bursting () =
  section "E11 (Sec. 5): packet bursting on small-frame workloads";
  let inst = Scenarios.trading ~gateways:6 in
  let horizon = 50 * ms in
  let trace = Instance.trace inst ~seed:3 ~horizon in
  let base = Ddcr_params.default inst in
  let out =
    Table.create
      [ "burst budget (bits)"; "misses"; "worst lat (us)"; "mean lat (us)"; "inversions" ]
  in
  List.iter
    (fun burst ->
      let p = Ddcr_params.with_burst base burst in
      let m = Run.metrics (Ddcr.run_trace p inst trace ~horizon) in
      Table.add_row out
        [
          string_of_int burst;
          string_of_int m.Run.deadline_misses;
          Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. 1000.);
          Printf.sprintf "%.1f" (m.Run.mean_latency /. 1000.);
          string_of_int m.Run.inversions;
        ])
    [ 0; 8_192; 32_768; 65_536 ];
  Table.print out;
  print_endline
    "(65536 bits is the 802.3z burstLimit; Sec. 5 predicts bursting also\n\
     reduces deadline inversions relative to coarse equivalence classes)"

(* E12: resilience to channel noise — the fault-tolerance interest of
   broadcast-media protocols (Sec. 3.1).  Garbled frames are retried
   deterministically; we sweep the corruption rate. *)
let channel_noise () =
  section "E12 (Sec. 3.1): deterministic retries under channel noise";
  let inst = Scenarios.trading ~gateways:4 in
  let horizon = 40 * ms in
  let trace = Instance.trace inst ~seed:5 ~horizon in
  let params = Ddcr_params.default inst in
  let out =
    Table.create
      [ "corruption"; "garbled"; "delivered"; "misses"; "worst lat (us)"; "mean lat (us)" ]
  in
  List.iter
    (fun rate ->
      let fault =
        if rate = 0. then None
        else Some { Rtnet_channel.Channel.fault_rate = rate; fault_seed = 21 }
      in
      let o = Ddcr.run_trace ?fault params inst trace ~horizon in
      let m = Run.metrics o in
      let garbled =
        match o.Run.channel with
        | Some st -> st.Rtnet_channel.Channel.garbled_count
        | None -> 0
      in
      Table.add_row out
        [
          Printf.sprintf "%.2f" rate;
          string_of_int garbled;
          string_of_int m.Run.delivered;
          string_of_int m.Run.deadline_misses;
          Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. 1000.);
          Printf.sprintf "%.1f" (m.Run.mean_latency /. 1000.);
        ])
    [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
  Table.print out

(* E13: dual-bus operation (Sec. 5's deployed configuration): an
   instance infeasible on one bus becomes provably feasible when its
   message set is split over two parallel busses. *)
let dual_bus () =
  section "E13 (Sec. 5): single vs dual bus";
  let inst = Scenarios.manufacturing ~cells:6 in
  let single = Feasibility.check (Ddcr_params.default inst) inst in
  let dual = Multi_bus.check (Multi_bus.partition_exn inst ~buses:2) in
  Printf.printf "FC margins: single bus %.3f (feasible %b), dual bus %.3f (feasible %b)\n"
    single.Feasibility.worst_margin single.Feasibility.feasible
    dual.Multi_bus.worst_margin dual.Multi_bus.feasible;
  let horizon = 40 * ms in
  let overload =
    Instance.with_law
      (Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.85
         ~deadline_windows:2.0)
      Arrival.Greedy_burst
  in
  let out =
    Table.create [ "configuration"; "delivered"; "misses"; "worst lat (us)"; "utilization" ]
  in
  let row label m =
    Table.add_row out
      [
        label;
        string_of_int m.Run.delivered;
        string_of_int m.Run.deadline_misses;
        Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. 1000.);
        Printf.sprintf "%.3f" m.Run.utilization;
      ]
  in
  row "0.85 load, 1 bus"
    (Run.metrics (Ddcr.run ~seed:5 (Ddcr_params.default overload) overload ~horizon));
  row "0.85 load, 2 buses"
    (Run.metrics
       (Multi_bus.run ~seed:5 (Multi_bus.partition_exn overload ~buses:2) ~horizon));
  Table.print out

(* E14: Sec. 5 proposes carrying deadlines to the MAC through the
   802.1Q priority field — 8 levels.  Quantization is conservative
   (deadlines round down to their bucket), so correctness is kept; the
   cost is coarser EDF ordering inside the protocol.  Misses and
   latency are measured against the REAL deadlines. *)
let cos_quantization () =
  section "E14 (Sec. 5): deadlines through the 802.1Q priority field";
  let inst = Scenarios.manufacturing ~cells:5 in
  let horizon = 40 * ms in
  let original_cls = Hashtbl.create 32 in
  List.iter
    (fun c -> Hashtbl.replace original_cls c.Message.cls_id c)
    (Instance.classes inst);
  let against_real o =
    (* Remap every message back to its original class so lateness is
       judged against the true deadline, not the quantized one. *)
    let remap m =
      { m with Message.cls = Hashtbl.find original_cls m.Message.cls.Message.cls_id }
    in
    Run.metrics
      {
        o with
        Run.completions =
          List.map
            (fun c -> { c with Run.c_msg = remap c.Run.c_msg })
            o.Run.completions;
        unfinished = List.map remap o.Run.unfinished;
      }
  in
  let out =
    Table.create
      [ "priority levels"; "misses (real d)"; "worst lat (us)"; "mean lat (us)"; "inversions" ]
  in
  let row label inst_q =
    let params = Ddcr_params.default inst_q in
    let m = against_real (Ddcr.run ~seed:9 params inst_q ~horizon) in
    Table.add_row out
      [
        label;
        string_of_int m.Run.deadline_misses;
        Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. 1000.);
        Printf.sprintf "%.1f" (m.Run.mean_latency /. 1000.);
        string_of_int m.Run.inversions;
      ]
  in
  row "exact deadlines" inst;
  List.iter
    (fun levels ->
      let scheme = Rtnet_edf.Cos.design ~levels inst in
      row (string_of_int levels)
        (Rtnet_edf.Cos.quantize_instance scheme inst))
    [ 8; 4; 2; 1 ];
  Table.print out;
  print_endline
    "(802.1p offers 8 levels; quantization is essentially free there, as\n\
     Sec. 5 anticipates)"

(* E15: the provable price of distribution — the FC margin of
   CSMA/DDCR vs the schedulability margin of the centralized NP-EDF
   oracle it emulates (Sec. 3.1 / ref [20]), on the same instances. *)
let price_of_distribution () =
  section "E15 (Sec. 3.1): provable price of distribution";
  let out =
    Table.create
      [ "instance"; "oracle margin"; "ddcr margin"; "price"; "both verdicts" ]
  in
  List.iter
    (fun (name, inst) ->
      let oracle = Rtnet_edf.Np_edf_fc.check inst in
      let ddcr = Feasibility.check (Ddcr_params.default inst) inst in
      let om = oracle.Rtnet_edf.Np_edf_fc.np_margin in
      let dm = ddcr.Feasibility.worst_margin in
      Table.add_row out
        [
          name;
          Printf.sprintf "%.3f" om;
          Printf.sprintf "%.3f" dm;
          Printf.sprintf "%.1fx" (dm /. om);
          Printf.sprintf "%s / %s"
            (if oracle.Rtnet_edf.Np_edf_fc.np_feasible then "ok" else "NO")
            (if ddcr.Feasibility.feasible then "ok" else "NO");
        ])
    [
      ("videoconference-5", Scenarios.videoconference ~stations:5);
      ("air-traffic-4", Scenarios.air_traffic_control ~radars:4);
      ("trading-4", Scenarios.trading ~gateways:4);
      ("manufacturing-4", Scenarios.manufacturing ~cells:4);
      ( "uniform-0.3",
        Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.3
          ~deadline_windows:2.0 );
      ( "uniform-0.6",
        Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.6
          ~deadline_windows:2.0 );
    ];
  Table.print out;
  print_endline
    "(price = how much of the deadline budget the distributed contention\n\
     resolution provably consumes beyond an ideal centralized queue)"

(* E16: average-case search cost and channel efficiency — the basis of
   Sec. 3.1's claim that tree protocols reach near-optimal channel
   utilization.  Exact nested-hypergeometric expectation over uniform
   random active sets. *)
let expected_case () =
  section "E16 (Sec. 3.1): expected search cost and channel efficiency";
  let out =
    Table.create
      [ "m"; "t"; "k"; "E[search]"; "worst xi"; "E/worst"; "efficiency (3-slot frames)" ]
  in
  List.iter
    (fun m ->
      let rec tree size = if size >= 64 then size else tree (size * m) in
      let t = tree m in
      List.iter
        (fun k ->
          if k <= t then begin
            let e = Xi.expected ~m ~t ~k in
            let w = Xi.exact ~m ~t ~k in
            Table.add_row out
              [
                string_of_int m;
                string_of_int t;
                string_of_int k;
                Printf.sprintf "%.2f" e;
                string_of_int w;
                Printf.sprintf "%.2f" (e /. float_of_int w);
                Printf.sprintf "%.3f"
                  (Xi.expected_efficiency ~m ~t ~k ~frame_slots:3.0);
              ]
          end)
        [ 2; 4; 8; 16; 32 ])
    [ 2; 3; 4; 8 ];
  Table.print out;
  print_endline
    "(the expectation sits well below the worst case; for m <= 4 the\n\
     expected epoch efficiency with 3-slot frames stays near 0.6-0.74\n\
     across contention levels - the near-optimal utilization Sec. 3.1\n\
     cites; binary/ternary trees win on average at low contention even\n\
     though quaternary dominates the worst case)"

(* E17: static-index allocation ablation — the paper's mapping model
   leaves the q' -> sources partition unrestricted (Sec. 3.2); on
   skewed loads the choice matters both provably (v(M) via ν_i) and
   behaviourally (search locality). *)
let allocation () =
  section "E17 (Sec. 3.2): static-index allocation on a skewed load";
  let inst = Scenarios.skewed ~sources:8 ~heavy_fraction:0.7 in
  let horizon = 40 * ms in
  let trace = Instance.trace inst ~seed:4 ~horizon in
  let out =
    Table.create
      [ "allocation"; "FC margin"; "misses"; "worst lat (us)"; "mean lat (us)"; "inversions" ]
  in
  List.iter
    (fun (label, alloc) ->
      let params = Ddcr_params.default ~allocation:alloc inst in
      let fc = Feasibility.check params inst in
      let m = Run.metrics (Ddcr.run_trace params inst trace ~horizon) in
      Table.add_row out
        [
          label;
          Printf.sprintf "%.3f" fc.Feasibility.worst_margin;
          string_of_int m.Run.deadline_misses;
          Printf.sprintf "%.1f" (float_of_int m.Run.worst_latency /. 1000.);
          Printf.sprintf "%.1f" (m.Run.mean_latency /. 1000.);
          string_of_int m.Run.inversions;
        ])
    [
      ("round-robin", Ddcr_params.Round_robin);
      ("contiguous", Ddcr_params.Contiguous);
      ("load-weighted", Ddcr_params.Weighted);
    ];
  Table.print out;
  print_endline
    "(one source carries 70% of the load: weighting its share of static\n\
     leaves fixes the provable margin, while keeping its indices in one\n\
     contiguous block fixes the observed behaviour - search locality)"

(* E18: does Fig. 2's worst-case branching comparison show up
   end-to-end?  The whole protocol run under binary, quaternary and
   octal trees on a contended workload. *)
let branching_end_to_end () =
  section "E18 (Fig. 2, end to end): protocol behaviour vs branching degree";
  let inst = Scenarios.trading ~gateways:5 in
  let horizon = 40 * ms in
  let trace = Instance.trace inst ~seed:6 ~horizon in
  let out =
    Table.create
      [ "branching m"; "F"; "q"; "misses"; "worst lat (us)"; "mean lat (us)"; "inversions" ]
  in
  List.iter
    (fun m ->
      let params = Ddcr_params.default ~branching:m inst in
      let r = Run.metrics (Ddcr.run_trace params inst trace ~horizon) in
      Table.add_row out
        [
          string_of_int m;
          string_of_int params.Ddcr_params.time_leaves;
          string_of_int params.Ddcr_params.static_leaves;
          string_of_int r.Run.deadline_misses;
          Printf.sprintf "%.1f" (float_of_int r.Run.worst_latency /. 1000.);
          Printf.sprintf "%.1f" (r.Run.mean_latency /. 1000.);
          string_of_int r.Run.inversions;
        ])
    [ 2; 3; 4; 8 ];
  Table.print out;
  print_endline
    "(the branching degree also fixes the reachable static-tree sizes q\n\
     and per-source index counts - here quaternary lands on q=16 with 3\n\
     indices per source while the others waste leaves at q=8/9 - which\n\
     is part of why Fig. 2's quaternary choice wins in deployment)"

(* Micro-benchmarks: throughput of the analysis and the simulator. *)
let bechamel () =
  section "Bechamel micro-benchmarks";
  let uniform =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.4
      ~deadline_windows:2.0
  in
  let params = Ddcr_params.default uniform in
  let trace = Instance.trace uniform ~seed:1 ~horizon:(2 * ms) in
  let phy = uniform.Instance.phy in
  let witness = Xi.worst_case_subset ~m:4 ~t:256 ~k:64 in
  (* Bechamel.Toolkit.Instance shadows the workload Instance from here
     on, so everything instance-related is bound above. *)
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"rtnet"
      [
        Test.make ~name:"xi_closed_form_4_4096"
          (Staged.stage (fun () -> ignore (Xi.exact ~m:4 ~t:4096 ~k:1777)));
        Test.make ~name:"xi_table_4_256"
          (Staged.stage (fun () -> ignore (Xi.table ~m:4 ~t:256)));
        Test.make ~name:"xi_recursion_2_64"
          (Staged.stage (fun () -> ignore (Xi.of_recursion ~m:2 ~t:64 ~k:33)));
        Test.make ~name:"tree_search_4_256_k64"
          (Staged.stage (fun () ->
               ignore (Tree_search.run ~m:4 ~t:256 ~active:witness)));
        Test.make ~name:"p2_bound"
          (Staged.stage (fun () ->
               ignore (Multi_tree.bound ~m:4 ~t:64 ~u:100 ~v:7)));
        Test.make ~name:"fc_check_uniform16"
          (Staged.stage (fun () -> ignore (Feasibility.check params uniform)));
        Test.make ~name:"ddcr_sim_2ms_load0.4"
          (Staged.stage (fun () ->
               ignore (Ddcr.run_trace params uniform trace ~horizon:(2 * ms))));
        (* The telemetry overhead guard (ISSUE 4): the explicit null
           sink must track the seed's implicit-default run above to
           within the ~2% noise floor, while the enabled recorder
           quantifies the full probe + trace-buffer cost. *)
        Test.make ~name:"ddcr_sim_2ms_sink_null"
          (Staged.stage (fun () ->
               ignore
                 (Ddcr.run_trace ~sink:Rtnet_telemetry.Sink.null params uniform
                    trace ~horizon:(2 * ms))));
        Test.make ~name:"ddcr_sim_2ms_sink_recorder"
          (Staged.stage (fun () ->
               let r = Rtnet_telemetry.Recorder.create () in
               ignore
                 (Ddcr.run_trace
                    ~sink:(Rtnet_telemetry.Recorder.sink r)
                    params uniform trace ~horizon:(2 * ms))));
        Test.make ~name:"np_edf_oracle_2ms"
          (Staged.stage (fun () ->
               ignore (Np_edf.run phy trace ~horizon:(2 * ms))));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let out = Table.create [ "benchmark"; "ns/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let nspr =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Printf.sprintf "%.0f" est
        | Some [] | None -> "-"
      in
      rows := (name, nspr) :: !rows)
    results;
  List.iter
    (fun (name, v) -> Table.add_row out [ name; v ])
    (List.sort compare !rows);
  Table.print out

let () =
  fig1 ();
  fig2 ();
  eq5_7 ();
  tightness ();
  p2 ();
  fc_validation ();
  protocol_comparison ();
  optimal_m ();
  compressed_time ();
  atm_mode ();
  packet_bursting ();
  channel_noise ();
  dual_bus ();
  cos_quantization ();
  price_of_distribution ();
  expected_case ();
  allocation ();
  branching_end_to_end ();
  bechamel ();
  print_newline ()
