(* admit_guard: the incremental-admission speedup gate (ISSUE 10).

   The admission engine answers each request by updating cached
   per-class interference sums in O(n) instead of re-running the O(n²)
   pairwise Section 4.3 analysis; Engine.decide_full is the deliberate
   from-scratch path kept for the differential self-check.  This guard
   drains the same churn stream both ways through fresh engines and
   fails (exit 1) unless the incremental path is at least [threshold]
   times faster — the regression it pins is the incremental path
   silently degrading into re-analysis (a dropped cache, an
   accidentally-quadratic delta).

   Run directly (it is part of `make admit-smoke`):
     dune exec bench/admit_guard.exe *)

module Engine = Rtnet_admit.Engine
module Request = Rtnet_admit.Request
module Ddcr_params = Rtnet_core.Ddcr_params

(* The pinned floor.  The asymptotic gap grows with the resident flow
   count, so the stream below (hundreds of admitted low-rate flows)
   lands the measured ratio well above this. *)
let threshold = 10.

let sources = 4

(* Same shape as ddcr_admit gen's defaults: quaternary trees, horizon
   c·F past the largest sampled deadline, round-robin static leaves. *)
let params =
  let rec pow4 n = if n >= 2 * sources then n else pow4 (4 * n) in
  let q = pow4 4 in
  let static_indices =
    Array.init sources (fun i ->
        let rec walk j acc =
          if j >= q then List.rev acc else walk (j + sources) (j :: acc)
        in
        Array.of_list (walk i []))
  in
  {
    Ddcr_params.time_m = 4;
    time_leaves = 1024;
    class_width = 8192;
    alpha = 8192;
    theta = 0;
    static_m = 4;
    static_leaves = q;
    static_indices;
    burst_bits = 0;
  }

(* Build-up then steady-state churn: 200 adds of distinct low-rate
   flows (each contributes ~1 interference term to every class, so the
   resident set grows into the hundreds before the bound binds),
   followed by 100 modifies at full population.  Deciding one request
   against n residents is O(n) incrementally and O(n²) from scratch;
   a rejected add pays the same attach/evaluate/detach, so the
   comparison holds whether or not the tail of the stream is
   admitted. *)
let requests =
  let flow i =
    {
      Request.fl_id = Printf.sprintf "g%d" i;
      fl_source = i mod sources;
      fl_bits = 1600;
      fl_deadline = 4_000_000;
      fl_burst = 1;
      fl_window = 16_000_000;
      fl_offset = 0;
    }
  in
  List.init 200 (fun i -> Request.Add (flow i))
  @ List.init 100 (fun i -> Request.Modify (flow (i * 2)))

let phy =
  match Request.phy_of_name "gigabit-ethernet" with
  | Ok p -> p
  | Error e -> failwith e

let drain decide () =
  match Engine.create ~phy ~num_sources:sources ~params with
  | Error e -> failwith e
  | Ok eng -> List.iter (fun r -> ignore (decide eng r)) requests

let () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"admit_guard"
      [
        Test.make ~name:"incremental" (Staged.stage (drain Engine.decide));
        Test.make ~name:"from_scratch"
          (Staged.stage (drain Engine.decide_full));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate name =
    let key = "admit_guard/" ^ name in
    match Hashtbl.find_opt results key with
    | None -> None
    | Some r -> (
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Some est
      | Some [] | None -> None)
  in
  match (estimate "incremental", estimate "from_scratch") with
  | Some inc, Some full ->
    let ratio = full /. inc in
    Printf.printf
      "admit_guard: incremental %.0f ns/stream, from_scratch %.0f \
       ns/stream (%.1fx)\n"
      inc full ratio;
    if ratio < threshold then begin
      Printf.printf
        "admit_guard: FAIL — incremental admission is only %.1fx the \
         from-scratch analysis (pinned floor %.0fx); the cached sums \
         have stopped paying for themselves\n"
        ratio threshold;
      exit 1
    end
    else Printf.printf "admit_guard: ok (floor %.0fx)\n" threshold
  | _ ->
    (* A missing estimate means Bechamel could not fit the model —
       treat as an infrastructure failure, not a perf regression. *)
    Printf.printf "admit_guard: could not estimate both runs\n";
    exit 2
