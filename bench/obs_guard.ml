(* obs_guard: the disabled-flight-recorder overhead gate (ISSUE 9).

   The black-box recorder rides on the same Sink API as the telemetry
   layer, so an attached-but-disabled probe must cost one boolean load
   per instrumentation point and nothing else.  This guard measures the
   simulator three ways — implicit default sink, explicit Sink.null,
   and a live flight-recorder ring — and fails (exit 1) if the
   null-sink run exceeds the default run by more than the noise
   threshold.  The live ring is reported for context but not gated: it
   is allowed to cost what a bounded int-array push costs.

   Run directly (it is part of `make obs-smoke`):
     dune exec bench/obs_guard.exe *)

module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Instance = Rtnet_workload.Instance
module Scenarios = Rtnet_workload.Scenarios
module Sink = Rtnet_telemetry.Sink
module Flight = Rtnet_obs.Flight

let ms = 1_000_000

(* Ratio above which the "disabled probe" claim is considered broken.
   Generous: CI machines are noisy and the runs are short; a real
   regression (allocation or branch on the hot path) lands far above
   this. *)
let threshold = 1.5

let () =
  let uniform =
    Scenarios.uniform ~sources:8 ~classes_per_source:2 ~load:0.4
      ~deadline_windows:2.0
  in
  let params = Ddcr_params.default uniform in
  let trace = Instance.trace uniform ~seed:1 ~horizon:(2 * ms) in
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"obs_guard"
      [
        Test.make ~name:"default"
          (Staged.stage (fun () ->
               ignore (Ddcr.run_trace params uniform trace ~horizon:(2 * ms))));
        Test.make ~name:"sink_null"
          (Staged.stage (fun () ->
               ignore
                 (Ddcr.run_trace ~sink:Sink.null params uniform trace
                    ~horizon:(2 * ms))));
        Test.make ~name:"flight_ring"
          (Staged.stage (fun () ->
               let f = Flight.create ~segment:"guard" () in
               ignore
                 (Ddcr.run_trace ~sink:(Flight.sink f) params uniform trace
                    ~horizon:(2 * ms))));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate name =
    let key = "obs_guard/" ^ name in
    match Hashtbl.find_opt results key with
    | None -> None
    | Some r -> (
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Some est
      | Some [] | None -> None)
  in
  match (estimate "default", estimate "sink_null", estimate "flight_ring") with
  | Some base, Some null, Some ring ->
    let ratio_null = null /. base and ratio_ring = ring /. base in
    Printf.printf
      "obs_guard: default %.0f ns/run, sink_null %.0f ns/run (%.3fx), \
       flight_ring %.0f ns/run (%.3fx)\n"
      base null ratio_null ring ratio_ring;
    if ratio_null > threshold then begin
      Printf.printf
        "obs_guard: FAIL — disabled recorder costs %.3fx > %.2fx the \
         unprobed run; the one-boolean-load discipline is broken\n"
        ratio_null threshold;
      exit 1
    end
    else Printf.printf "obs_guard: ok (threshold %.2fx)\n" threshold
  | _ ->
    (* A missing estimate means Bechamel could not fit the model —
       treat as an infrastructure failure, not a perf regression. *)
    Printf.printf "obs_guard: could not estimate all three runs\n";
    exit 2
