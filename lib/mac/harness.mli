(** Common harness for slotted MAC-protocol simulations.

    Every contention protocol in this repository (CSMA/DDCR, CSMA/DCR,
    CSMA-CD/BEB) shares the same skeleton: deliver arrivals into
    per-source EDF queues at each slot boundary, collect the sources'
    transmission attempts, resolve the slot on the {!Rtnet_channel}
    medium, record the carried frame (if any) as a completion, let the
    protocol update its state from the feedback, and repeat until the
    horizon.  This module owns that skeleton — driven by the
    {!Rtnet_sim.Engine} discrete-event kernel — so a protocol only
    supplies two callbacks:

    - [decide]: the attempts for the next contention slot;
    - [after]: protocol-state update from the slot's resolution, with
      the option to extend the acquisition (packet bursting) by
      returning a later [next_free].

    The harness asserts the channel-level safety property (mutual
    exclusion) when the run ends and assembles the {!Rtnet_stats.Run}
    outcome (completions, unfinished, dropped, channel statistics). *)

type services = {
  channel : Rtnet_channel.Channel.t;  (** the medium (e.g. for {!Rtnet_channel.Channel.burst}) *)
  peek : int -> Rtnet_workload.Message.t option;
      (** [peek src] is the head ([msg*]) of [src]'s EDF queue *)
  pop : int -> Rtnet_workload.Message.t option;
      (** [pop src] removes and returns the head *)
  complete : Rtnet_workload.Message.t -> start:int -> finish:int -> unit;
      (** record a carried frame (used by the harness itself for the
          slot's main frame, and by protocols for burst frames) *)
  drop : Rtnet_workload.Message.t -> unit;
      (** record a message the protocol abandoned (counts as missed) *)
  deliver_until : int -> unit;
      (** make arrivals with [T <= time] visible in the queues; the
          harness already does this at every slot boundary, but a
          protocol extending an acquisition (packet bursting) must call
          it before choosing each continuation frame so the EDF ranking
          sees messages that arrived mid-acquisition *)
}

exception Mismatch of string
(** Raised when the channel reports a transmission whose tag is not the
    head of the sender's queue — a protocol-implementation error. *)

val run :
  protocol:string ->
  ?fault:Rtnet_channel.Channel.fault ->
  ?analyze:bool ->
  phy:Rtnet_channel.Phy.t ->
  num_sources:int ->
  horizon:int ->
  decide:(services -> now:int -> Rtnet_channel.Channel.attempt list) ->
  after:
    (services ->
    now:int ->
    resolution:Rtnet_channel.Channel.resolution ->
    next_free:int ->
    int) ->
  Rtnet_workload.Message.t list ->
  Rtnet_stats.Run.outcome
(** [run ~protocol ~phy ~num_sources ~horizon ~decide ~after trace]
    simulates the protocol on [trace].  Per slot, the harness:

    + delivers arrivals with [T <= now] into the EDF queues,
    + calls [decide] and resolves the slot on the channel,
    + on a carried frame ([Tx] or an arbitrated survivor) pops the
      sender's head (verifying the tag — {!Mismatch} otherwise) and
      records the completion,
    + calls [after], whose return value becomes the next slot boundary
      (return [next_free] unchanged unless bursting extended the
      acquisition),
    + asserts, at the end, that no two carried frames overlapped.

    With [analyze] (default [true] — every harness run is
    invariant-checked unless explicitly opted out) the run additionally
    reconciles its completion list against the channel's transmission
    log when it ends: the two must agree entry for entry on
    (source, uid, start, finish), and no two completions may overlap on
    the wire.  This is the MAC-layer half of the [rtnet.analysis]
    safety net; the richer protocol-trace obligations (nesting,
    timeliness, ξ bounds) live in [Rtnet_analysis.Trace_check], which
    sits above this library.

    @raise Mismatch on tag/queue-head disagreement.
    @raise Failure if the channel safety check or the [analyze]
    reconciliation fails. *)
