(** Common harness for slotted MAC-protocol simulations.

    Every contention protocol in this repository (CSMA/DDCR, CSMA/DCR,
    CSMA-CD/BEB) shares the same skeleton: deliver arrivals into
    per-source EDF queues at each slot boundary, collect the sources'
    transmission attempts, resolve the slot on the {!Rtnet_channel}
    medium, record the carried frame (if any) as a completion, let the
    protocol update its state from the feedback, and repeat until the
    horizon.  This module owns that skeleton — driven by the
    {!Rtnet_sim.Engine} discrete-event kernel — so a protocol only
    supplies two callbacks:

    - [decide]: the attempts for the next contention slot;
    - [after]: protocol-state update from the slot's resolution, with
      the option to extend the acquisition (packet bursting) by
      returning a later [next_free].

    Under a {!Rtnet_channel.Fault_plan} the harness additionally owns
    the {e per-source} view of each slot: a crashed source's attempts
    are discarded and it observes nothing; a live listener may
    misperceive the wire ([observed] then differs from the wire
    resolution).  The paper's consistent-observation assumption
    (Section 2.1) is exactly [observed src = resolution] for every
    live [src]; fault plans break it and the harness measures by how
    much (per-source counters, merged fault epochs) in
    {!Rtnet_stats.Run.fault_stats}.

    The harness asserts the channel-level safety property (mutual
    exclusion) when the run ends and assembles the {!Rtnet_stats.Run}
    outcome (completions, unfinished, dropped, channel statistics). *)

type services = {
  channel : Rtnet_channel.Channel.t;  (** the medium (e.g. for {!Rtnet_channel.Channel.burst}) *)
  peek : int -> Rtnet_workload.Message.t option;
      (** [peek src] is the head ([msg*]) of [src]'s EDF queue *)
  pop : int -> Rtnet_workload.Message.t option;
      (** [pop src] removes and returns the head *)
  complete : Rtnet_workload.Message.t -> start:int -> finish:int -> unit;
      (** record a carried frame (used by the harness itself for the
          slot's main frame, and by protocols for burst frames) *)
  drop : Rtnet_workload.Message.t -> unit;
      (** record a message the protocol abandoned (counts as missed) *)
  deliver_until : int -> unit;
      (** make arrivals with [T <= time] visible in the queues; the
          harness already does this at every slot boundary, but a
          protocol extending an acquisition (packet bursting) must call
          it before choosing each continuation frame so the EDF ranking
          sees messages that arrived mid-acquisition *)
  alive : int -> bool;
      (** [alive src] — false while [src] is inside a fault-plan crash
          window (always true without a plan).  Valid during [decide]
          and [after] of the current slot. *)
  observed : int -> Rtnet_channel.Channel.resolution;
      (** [observed src] is [src]'s {e local} decoding of the current
          slot — equal to the wire resolution unless the fault plan
          made [src] misperceive it.  Only meaningful inside [after];
          a protocol with replicated state must feed each replica its
          own observation, not the wire's. *)
  mark_desync : int -> unit;
      (** protocol callback: count one slot during which [src]'s
          replica was desynchronized (listen-only); feeds
          {!Rtnet_stats.Run.source_faults} and extends the current
          fault epoch *)
  mark_resync : int -> unit;
      (** protocol callback: count one completed divergence recovery
          by [src] *)
}

type mismatch = {
  mm_slot : int;  (** slot start time (bit-times) *)
  mm_source : int;  (** transmitting source *)
  mm_tag : int;  (** tag the channel carried *)
  mm_reason : string;  (** what disagreed *)
}
(** Structured diagnostic for a tag/queue disagreement, so protocol
    bugs under fault injection are debuggable: which slot, which
    source, which tag. *)

exception Mismatch of mismatch
(** Raised when the channel reports a transmission whose tag is not the
    head of the sender's queue — a protocol-implementation error. *)

val mismatch_message : mismatch -> string
(** [mismatch_message m] formats the diagnostic:
    ["slot at t=<slot>: source <src>, tag <tag>: <reason>"].  Also
    installed as the [Printexc] printer for {!Mismatch}. *)

val misperceived_view :
  Rtnet_channel.Channel.resolution -> Rtnet_channel.Channel.resolution
(** [misperceived_view resolution] is what a misperceiving listener
    decodes instead of [resolution]: a [Tx] as CRC-garbage
    ([Garbled]), a destructive [Clash] as silence ([Idle]); [Idle],
    [Garbled] and arbitrated-survivor slots pass through unchanged.
    Exposed so model checkers ([Rtnet_model]) apply the {e exact} same
    observation corruption the harness does. *)

val run :
  protocol:string ->
  ?fault:Rtnet_channel.Channel.fault ->
  ?plan:Rtnet_channel.Fault_plan.t ->
  ?analyze:bool ->
  ?sink:Rtnet_telemetry.Sink.t ->
  ?on_complete:
    (msg:Rtnet_workload.Message.t -> start:int -> finish:int -> unit) ->
  ?inject:(now:int -> Rtnet_workload.Message.t list) ->
  phy:Rtnet_channel.Phy.t ->
  num_sources:int ->
  horizon:int ->
  decide:(services -> now:int -> Rtnet_channel.Channel.attempt list) ->
  after:
    (services ->
    now:int ->
    resolution:Rtnet_channel.Channel.resolution ->
    next_free:int ->
    int) ->
  Rtnet_workload.Message.t list ->
  Rtnet_stats.Run.outcome
(** [run ~protocol ~phy ~num_sources ~horizon ~decide ~after trace]
    simulates the protocol on [trace].  Per slot, the harness:

    + delivers arrivals with [T <= now] into the EDF queues,
    + under a [plan], refreshes per-source liveness (crash windows),
    + calls [decide], discards attempts of crashed sources, and
      resolves the slot on the channel,
    + under a [plan], computes each live source's local observation
      (misperception draws) and each crashed source's missed slots,
    + on a carried frame ([Tx] or an arbitrated survivor) pops the
      sender's head (verifying the tag — {!Mismatch} otherwise) and
      records the completion,
    + calls [after], whose return value becomes the next slot boundary
      (return [next_free] unchanged unless bursting extended the
      acquisition),
    + if anything was degraded this slot (crash, miss, misperception,
      wire garbling, or the protocol called [mark_desync]), extends
      the current fault epoch to the returned boundary,
    + asserts, at the end, that no two carried frames overlapped.

    [fault] is the legacy i.i.d. noise model, [plan] the composable
    fault-plan model; they are mutually exclusive (the channel rejects
    both).  The outcome's [faults] field is [Some] iff [plan] was
    given.

    With [analyze] (default [true] — every harness run is
    invariant-checked unless explicitly opted out) the run additionally
    reconciles its completion list against the channel's transmission
    log when it ends: the two must agree entry for entry on
    (source, uid, start, finish), and no two completions may overlap on
    the wire.  This is the MAC-layer half of the [rtnet.analysis]
    safety net; the richer protocol-trace obligations (nesting,
    timeliness, ξ bounds) live in [Rtnet_analysis.Trace_check], which
    sits above this library.

    [sink] (default {!Rtnet_telemetry.Sink.null}) receives the
    harness-level probes: [enqueue] on queue insertion, [slot] after
    every channel resolution, [complete]/[drop] on message service,
    [engine_event] per engine dispatch, and [epoch] for each merged
    fault epoch at the end of the run.  With the null sink every probe
    is a single boolean test.

    [on_complete] and [inject] are the federation hooks for multi-hop
    topologies ([Rtnet_topology]).  [on_complete] is called for every
    recorded completion (main frames and burst frames alike), in
    completion order, before the run's outcome is assembled — a bridge
    station uses it to ingest frames bound for a downstream segment the
    moment they finish on this one.  [inject ~now], polled at every
    slot boundary before arrivals are delivered, returns messages to
    merge into the arrival stream (the injector must return each
    message exactly once); a message whose [arrival <= now] becomes
    visible to the EDF queues this very slot, a later one when its
    arrival time passes — exactly the visibility rule trace arrivals
    follow.  Injected messages are indistinguishable from trace
    arrivals afterwards: they are EDF-queued, completed, counted in
    [unfinished] if still pending, and reconciled by [analyze].

    @raise Mismatch on tag/queue-head disagreement.
    @raise Failure if the channel safety check or the [analyze]
    reconciliation fails. *)
