module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel
module Fault_plan = Rtnet_channel.Fault_plan
module Edf_queue = Rtnet_edf.Edf_queue
module Run = Rtnet_stats.Run
module Engine = Rtnet_sim.Engine
module Sink = Rtnet_telemetry.Sink

type services = {
  channel : Channel.t;
  peek : int -> Message.t option;
  pop : int -> Message.t option;
  complete : Message.t -> start:int -> finish:int -> unit;
  drop : Message.t -> unit;
  deliver_until : int -> unit;
  alive : int -> bool;
  observed : int -> Channel.resolution;
  mark_desync : int -> unit;
  mark_resync : int -> unit;
}

type mismatch = {
  mm_slot : int;
  mm_source : int;
  mm_tag : int;
  mm_reason : string;
}

exception Mismatch of mismatch

let mismatch_message m =
  Printf.sprintf "slot at t=%d: source %d, tag %d: %s" m.mm_slot m.mm_source
    m.mm_tag m.mm_reason

let () =
  Printexc.register_printer (function
    | Mismatch m -> Some ("Rtnet_mac.Harness.Mismatch: " ^ mismatch_message m)
    | _ -> None)

(* Post-run invariant check (the [?analyze] flag): the completion list
   the harness assembled must reconcile exactly with the channel's
   transmission log — same multiset of (source, uid, start, finish) —
   and no two completions may overlap on the wire.  [Channel.check_safety]
   already re-examines the channel's own log; this pass catches
   bookkeeping divergence between the protocol layer and the medium. *)
let reconcile completions channel =
  let of_completion c =
    ( c.Run.c_msg.Message.cls.Message.cls_source,
      c.Run.c_msg.Message.uid,
      c.Run.c_start,
      c.Run.c_finish )
  in
  let ours = List.sort compare (List.map of_completion completions) in
  let theirs = List.sort compare (Channel.carried channel) in
  let problems = ref [] in
  if List.length ours <> List.length theirs then
    problems :=
      Printf.sprintf "%d completions recorded but the channel carried %d"
        (List.length ours) (List.length theirs)
      :: !problems
  else
    List.iter2
      (fun ((s1, u1, t1, f1) as a) b ->
        if a <> b then
          let s2, u2, t2, f2 = b in
          problems :=
            Printf.sprintf
              "completion (src %d uid %d [%d, %d)) disagrees with the channel \
               log entry (src %d uid %d [%d, %d))"
              s1 u1 t1 f1 s2 u2 t2 f2
            :: !problems)
      ours theirs;
  let by_start =
    List.sort (fun a b -> compare a.Run.c_start b.Run.c_start) completions
  in
  let rec overlaps = function
    | a :: (b :: _ as rest) ->
      if b.Run.c_start < a.Run.c_finish then
        problems :=
          Printf.sprintf "completions uid %d and uid %d overlap on the wire"
            a.Run.c_msg.Message.uid b.Run.c_msg.Message.uid
          :: !problems;
      overlaps rest
    | [ _ ] | [] -> ()
  in
  overlaps by_start;
  List.rev !problems

(* A listener's local decoding of the wire under misperception: a
   carried frame decodes as CRC-garbage, a destructive collision as
   silence (the fragment is below its carrier-sense threshold).  Both
   mapped observations are feedback values the protocols already
   tolerate, so misperception degrades consistency — never the local
   automaton's own invariants.  Arbitrated-survivor slots and the
   listener's own transmissions are immune (the survivor's preamble
   re-synchronizes receivers; a sender knows what it sent). *)
let misperceived_view (resolution : Channel.resolution) =
  match resolution with
  | Channel.Tx { on_wire; _ } -> Channel.Garbled { on_wire }
  | Channel.Clash { survivor = None; _ } -> Channel.Idle
  | Channel.Idle | Channel.Garbled _ | Channel.Clash { survivor = Some _; _ }
    ->
    resolution

let arrival_order a b =
  compare
    (a.Message.arrival, a.Message.uid)
    (b.Message.arrival, b.Message.uid)

let run ~protocol ?fault ?plan ?(analyze = true) ?(sink = Sink.null)
    ?on_complete ?inject ~phy ~num_sources ~horizon ~decide ~after trace =
  let telemetry = sink.Sink.enabled in
  let channel = Channel.create ?fault ?plan phy in
  let queues = Array.make num_sources Edf_queue.empty in
  let completions = ref [] in
  let dropped = ref [] in
  let arrivals = ref (List.sort arrival_order trace) in
  let deliver now =
    let rec go = function
      | m :: rest when m.Message.arrival <= now ->
        let s = m.Message.cls.Message.cls_source in
        if s < 0 || s >= num_sources then
          failwith
            (Printf.sprintf
               "harness: arrival for unknown source %d (instance has %d \
                sources)"
               s num_sources);
        queues.(s) <- Edf_queue.insert queues.(s) m;
        if telemetry then sink.Sink.enqueue ~now ~msg:m;
        go rest
      | rest -> arrivals := rest
    in
    go !arrivals
  in
  (* Per-source fault bookkeeping (only populated under a plan). *)
  let alive_now = Array.make num_sources true in
  let observed_now = Array.make num_sources Channel.Idle in
  let crashed_slots = Array.make num_sources 0 in
  let missed = Array.make num_sources 0 in
  let misperceived = Array.make num_sources 0 in
  let desync_slots = Array.make num_sources 0 in
  let resyncs = Array.make num_sources 0 in
  let slot_faulty = ref false in
  (* Fault epochs, merged on the fly: adjacent/overlapping faulty slots
     coalesce because the next slot starts exactly at this one's
     [next_free]. *)
  let epochs = ref [] in
  let epoch_open = ref None in
  let note_epoch ~start ~finish =
    match !epoch_open with
    | Some (s, e) when start <= e -> epoch_open := Some (s, max e finish)
    | Some (s, e) ->
      epochs := (s, e) :: !epochs;
      epoch_open := Some (start, finish)
    | None -> epoch_open := Some (start, finish)
  in
  let services =
    {
      channel;
      peek = (fun src -> Edf_queue.peek queues.(src));
      pop =
        (fun src ->
          match Edf_queue.pop queues.(src) with
          | Some (m, q) ->
            queues.(src) <- q;
            Some m
          | None -> None);
      complete =
        (fun m ~start ~finish ->
          if telemetry then sink.Sink.complete ~msg:m ~start ~finish;
          (match on_complete with
          | None -> ()
          | Some f -> f ~msg:m ~start ~finish);
          completions :=
            { Run.c_msg = m; c_start = start; c_finish = finish }
            :: !completions);
      drop =
        (fun m ->
          if telemetry then sink.Sink.drop ~msg:m;
          dropped := m :: !dropped);
      deliver_until = (fun time -> deliver time);
      alive = (fun src -> alive_now.(src));
      observed = (fun src -> observed_now.(src));
      mark_desync =
        (fun src ->
          desync_slots.(src) <- desync_slots.(src) + 1;
          slot_faulty := true);
      mark_resync = (fun src -> resyncs.(src) <- resyncs.(src) + 1);
    }
  in
  let take ~now src tag =
    match services.pop src with
    | Some m when m.Message.uid = tag -> m
    | Some m ->
      raise
        (Mismatch
           {
             mm_slot = now;
             mm_source = src;
             mm_tag = tag;
             mm_reason =
               Printf.sprintf
                 "transmitted tag disagrees with the EDF head (uid %d)"
                 m.Message.uid;
           })
    | None ->
      raise
        (Mismatch
           {
             mm_slot = now;
             mm_source = src;
             mm_tag = tag;
             mm_reason = "transmitted from an empty queue";
           })
  in
  let engine =
    if telemetry then
      Engine.create ~on_step:(fun ~time -> sink.Sink.engine_event ~time) ()
    else Engine.create ()
  in
  let rec slot eng =
    let now = Engine.now eng in
    (* Bridge ingress (multi-hop topologies): the injector may hand the
       harness new messages at any slot boundary; they join the arrival
       stream and become visible to the EDF queues exactly like trace
       arrivals (at the first boundary at or after their arrival time). *)
    (match inject with
    | None -> ()
    | Some f -> (
      match f ~now with
      | [] -> ()
      | injected ->
        arrivals :=
          List.merge arrival_order
            (List.sort arrival_order injected)
            !arrivals));
    deliver now;
    slot_faulty := false;
    (match plan with
    | None -> ()
    | Some p ->
      for s = 0 to num_sources - 1 do
        let a = Fault_plan.alive p ~source:s ~now in
        alive_now.(s) <- a;
        if not a then begin
          crashed_slots.(s) <- crashed_slots.(s) + 1;
          slot_faulty := true
        end
      done);
    let attempts = decide services ~now in
    (* A crashed source transmits nothing, whatever the protocol's
       decision callback returned. *)
    let attempts =
      match plan with
      | None -> attempts
      | Some _ ->
        List.filter (fun a -> alive_now.(a.Channel.att_source)) attempts
    in
    let resolution, next_free = Channel.contend channel ~now attempts in
    if telemetry then sink.Sink.slot ~now ~next_free ~resolution;
    (match plan with
    | None ->
      (* No plan: every source observes the wire. *)
      Array.fill observed_now 0 num_sources resolution
    | Some p ->
      let participants =
        List.map (fun a -> a.Channel.att_source) attempts
      in
      (match resolution with
      | Channel.Garbled _ ->
        (* Wire-level noise destroyed a frame: the slot is degraded
           even though everyone observed it consistently. *)
        slot_faulty := true
      | _ -> ());
      for s = 0 to num_sources - 1 do
        if not alive_now.(s) then begin
          observed_now.(s) <- Channel.Idle;
          match resolution with
          | Channel.Idle -> ()
          | _ -> missed.(s) <- missed.(s) + 1
        end
        else begin
          let listener = not (List.mem s participants) in
          let flips = Fault_plan.misperceives p ~source:s ~now in
          let obs =
            if listener && flips then misperceived_view resolution
            else resolution
          in
          observed_now.(s) <- obs;
          if obs <> resolution then begin
            misperceived.(s) <- misperceived.(s) + 1;
            slot_faulty := true
          end
        end
      done);
    (match resolution with
    | Channel.Idle | Channel.Garbled _ | Channel.Clash { survivor = None; _ } ->
      ()
    | Channel.Tx { src; tag; on_wire } ->
      let m = take ~now src tag in
      services.complete m ~start:now ~finish:(now + on_wire)
    | Channel.Clash { survivor = Some (src, tag, on_wire); _ } ->
      let m = take ~now src tag in
      let start = now + Channel.slot_bits channel in
      services.complete m ~start ~finish:(start + on_wire));
    let next_free = after services ~now ~resolution ~next_free in
    if !slot_faulty then note_epoch ~start:now ~finish:next_free;
    if next_free < horizon then Engine.schedule_at eng ~time:next_free slot
  in
  Engine.schedule_at engine ~time:0 slot;
  Engine.run engine;
  (match Channel.check_safety channel with
  | Ok () -> ()
  | Error reason -> failwith ("MAC safety violated: " ^ reason));
  if analyze then begin
    match reconcile !completions channel with
    | [] -> ()
    | problems ->
      failwith ("harness analyze: " ^ String.concat "; " problems)
  end;
  let unfinished =
    Array.fold_left (fun acc q -> acc @ Edf_queue.to_sorted_list q) [] queues
    @ List.filter (fun m -> m.Message.arrival < horizon) !arrivals
  in
  let faults =
    match plan with
    | None -> None
    | Some _ ->
      (match !epoch_open with
      | Some span -> epochs := span :: !epochs
      | None -> ());
      if telemetry then
        List.iter
          (fun (start, finish) -> sink.Sink.epoch ~start ~finish)
          (List.rev !epochs);
      Some
        {
          Run.f_per_source =
            List.init num_sources (fun s ->
                {
                  Run.sf_source = s;
                  sf_crashed_slots = crashed_slots.(s);
                  sf_missed = missed.(s);
                  sf_misperceived = misperceived.(s);
                  sf_desync_slots = desync_slots.(s);
                  sf_resyncs = resyncs.(s);
                });
          f_epochs = List.rev !epochs;
        }
  in
  {
    Run.protocol;
    completions = List.rev !completions;
    unfinished;
    dropped = List.rev !dropped;
    horizon;
    channel = Some (Channel.stats channel);
    faults;
  }
