module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel
module Edf_queue = Rtnet_edf.Edf_queue
module Run = Rtnet_stats.Run
module Engine = Rtnet_sim.Engine

type services = {
  channel : Channel.t;
  peek : int -> Message.t option;
  pop : int -> Message.t option;
  complete : Message.t -> start:int -> finish:int -> unit;
  drop : Message.t -> unit;
  deliver_until : int -> unit;
}

exception Mismatch of string

(* Post-run invariant check (the [?analyze] flag): the completion list
   the harness assembled must reconcile exactly with the channel's
   transmission log — same multiset of (source, uid, start, finish) —
   and no two completions may overlap on the wire.  [Channel.check_safety]
   already re-examines the channel's own log; this pass catches
   bookkeeping divergence between the protocol layer and the medium. *)
let reconcile completions channel =
  let of_completion c =
    ( c.Run.c_msg.Message.cls.Message.cls_source,
      c.Run.c_msg.Message.uid,
      c.Run.c_start,
      c.Run.c_finish )
  in
  let ours = List.sort compare (List.map of_completion completions) in
  let theirs = List.sort compare (Channel.carried channel) in
  let problems = ref [] in
  if List.length ours <> List.length theirs then
    problems :=
      Printf.sprintf "%d completions recorded but the channel carried %d"
        (List.length ours) (List.length theirs)
      :: !problems
  else
    List.iter2
      (fun ((s1, u1, t1, f1) as a) b ->
        if a <> b then
          let s2, u2, t2, f2 = b in
          problems :=
            Printf.sprintf
              "completion (src %d uid %d [%d, %d)) disagrees with the channel \
               log entry (src %d uid %d [%d, %d))"
              s1 u1 t1 f1 s2 u2 t2 f2
            :: !problems)
      ours theirs;
  let by_start =
    List.sort (fun a b -> compare a.Run.c_start b.Run.c_start) completions
  in
  let rec overlaps = function
    | a :: (b :: _ as rest) ->
      if b.Run.c_start < a.Run.c_finish then
        problems :=
          Printf.sprintf "completions uid %d and uid %d overlap on the wire"
            a.Run.c_msg.Message.uid b.Run.c_msg.Message.uid
          :: !problems;
      overlaps rest
    | [ _ ] | [] -> ()
  in
  overlaps by_start;
  List.rev !problems

let run ~protocol ?fault ?(analyze = true) ~phy ~num_sources ~horizon ~decide
    ~after trace =
  let channel = Channel.create ?fault phy in
  let queues = Array.make num_sources Edf_queue.empty in
  let completions = ref [] in
  let dropped = ref [] in
  let arrivals =
    ref
      (List.sort
         (fun a b ->
           compare
             (a.Message.arrival, a.Message.uid)
             (b.Message.arrival, b.Message.uid))
         trace)
  in
  let deliver now =
    let rec go = function
      | m :: rest when m.Message.arrival <= now ->
        let s = m.Message.cls.Message.cls_source in
        queues.(s) <- Edf_queue.insert queues.(s) m;
        go rest
      | rest -> arrivals := rest
    in
    go !arrivals
  in
  let services =
    {
      channel;
      peek = (fun src -> Edf_queue.peek queues.(src));
      pop =
        (fun src ->
          match Edf_queue.pop queues.(src) with
          | Some (m, q) ->
            queues.(src) <- q;
            Some m
          | None -> None);
      complete =
        (fun m ~start ~finish ->
          completions :=
            { Run.c_msg = m; c_start = start; c_finish = finish }
            :: !completions);
      drop = (fun m -> dropped := m :: !dropped);
      deliver_until = (fun time -> deliver time);
    }
  in
  let take src tag =
    match services.pop src with
    | Some m when m.Message.uid = tag -> m
    | Some m ->
      raise
        (Mismatch
           (Printf.sprintf
              "source %d transmitted uid %d but its EDF head is uid %d" src tag
              m.Message.uid))
    | None ->
      raise (Mismatch (Printf.sprintf "source %d transmitted from an empty queue" src))
  in
  let engine = Engine.create () in
  let rec slot eng =
    let now = Engine.now eng in
    deliver now;
    let attempts = decide services ~now in
    let resolution, next_free = Channel.contend channel ~now attempts in
    (match resolution with
    | Channel.Idle | Channel.Garbled _ | Channel.Clash { survivor = None; _ } ->
      ()
    | Channel.Tx { src; tag; on_wire } ->
      let m = take src tag in
      services.complete m ~start:now ~finish:(now + on_wire)
    | Channel.Clash { survivor = Some (src, tag, on_wire); _ } ->
      let m = take src tag in
      let start = now + Channel.slot_bits channel in
      services.complete m ~start ~finish:(start + on_wire));
    let next_free = after services ~now ~resolution ~next_free in
    if next_free < horizon then Engine.schedule_at eng ~time:next_free slot
  in
  Engine.schedule_at engine ~time:0 slot;
  Engine.run engine;
  (match Channel.check_safety channel with
  | Ok () -> ()
  | Error reason -> failwith ("MAC safety violated: " ^ reason));
  if analyze then begin
    match reconcile !completions channel with
    | [] -> ()
    | problems ->
      failwith ("harness analyze: " ^ String.concat "; " problems)
  end;
  let unfinished =
    Array.fold_left (fun acc q -> acc @ Edf_queue.to_sorted_list q) [] queues
    @ List.filter (fun m -> m.Message.arrival < horizon) !arrivals
  in
  {
    Run.protocol;
    completions = List.rev !completions;
    unfinished;
    dropped = List.rev !dropped;
    horizon;
    channel = Some (Channel.stats channel);
  }
