type t = {
  mutable clock : int;
  queue : (t -> unit) Event_queue.t;
  mutable processed : int;
  on_step : time:int -> unit;
}

let nop_on_step ~time:_ = ()

let create ?(on_step = nop_on_step) () =
  { clock = 0; queue = Event_queue.create (); processed = 0; on_step }

let now eng = eng.clock

let schedule_at eng ~time k =
  if time < eng.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add eng.queue ~time k

let schedule eng ~delay k =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.add eng.queue ~time:(eng.clock + delay) k

let step eng =
  match Event_queue.pop eng.queue with
  | None -> false
  | Some (time, k) ->
    eng.clock <- time;
    eng.processed <- eng.processed + 1;
    eng.on_step ~time;
    k eng;
    true

let run ?until eng =
  let within t = match until with None -> true | Some u -> t <= u in
  let rec go () =
    match Event_queue.peek_time eng.queue with
    | Some t when within t ->
      if step eng then go ()
    | Some _ | None -> ()
  in
  go ();
  match until with
  | Some u when u > eng.clock -> eng.clock <- u
  | Some _ | None -> ()

let stop eng =
  let rec drain () =
    match Event_queue.pop eng.queue with Some _ -> drain () | None -> ()
  in
  drain ()

let events_processed eng = eng.processed
