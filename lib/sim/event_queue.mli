(** Priority queue of timestamped events (binary min-heap).

    Events are ordered by timestamp; ties are broken by insertion order
    so that simulations are fully deterministic (two events scheduled
    for the same instant fire in the order they were scheduled). *)

type 'a t
(** Queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [true] iff [q] holds no event. *)

val length : 'a t -> int
(** [length q] is the number of pending events. *)

val add : 'a t -> time:int -> 'a -> unit
(** [add q ~time payload] schedules [payload] at [time].
    @raise Invalid_argument if [time < 0]. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the timestamp of the earliest event, if any. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns the earliest event as
    [(time, payload)]. *)

val drain_until : 'a t -> time:int -> (int * 'a) list
(** [drain_until q ~time] pops every event with timestamp [<= time], in
    order, and returns them oldest first. *)
