(** Discrete-event simulation engine.

    A simulation is a set of callbacks scheduled on a virtual clock.
    Time is a non-negative integer; the protocol layers use one unit
    per bit-time so that every duration in the paper (slot time [x],
    transmission time [l'/ψ]) is exact.

    The engine is single-threaded and deterministic: callbacks run in
    (time, scheduling-order) order, and a callback may schedule further
    events (including at the current instant). *)

type t
(** Engine state: clock plus pending-event queue. *)

val create : ?on_step:(time:int -> unit) -> unit -> t
(** [create ()] is an engine at time 0 with no pending events.
    [on_step], if given, observes every dispatched event (called with
    the event's time just before its callback runs) — the telemetry
    probe point.  The engine deliberately knows nothing of the sink
    type; callers bridge. *)

val now : t -> int
(** [now eng] is the current virtual time. *)

val schedule_at : t -> time:int -> (t -> unit) -> unit
(** [schedule_at eng ~time k] runs [k] at virtual [time].
    @raise Invalid_argument if [time] is in the past. *)

val schedule : t -> delay:int -> (t -> unit) -> unit
(** [schedule eng ~delay k] runs [k] after [delay] time units.
    @raise Invalid_argument if [delay < 0]. *)

val run : ?until:int -> t -> unit
(** [run ?until eng] processes events in order until the queue is empty
    or the next event is strictly later than [until]; the clock is left
    at the last processed event's time (or [until] if given and
    greater). *)

val step : t -> bool
(** [step eng] processes the single earliest event; [false] if none. *)

val stop : t -> unit
(** [stop eng] discards all pending events, ending [run] early. *)

val events_processed : t -> int
(** [events_processed eng] counts callbacks run so far. *)
