(** Counterexample export: a model trail becomes a deterministic chaos
    replay artifact.

    A trail is a schedule of fault atoms, so it maps directly onto a
    {!Rtnet_channel.Fault_plan} spec — scheduled garbles
    ([garble_at]), scheduled misperceptions ([misperceive_at]) and
    crash windows, {e no random process at all}.  Such a plan consumes
    zero PRNG draws, making the candidate a pure function of
    (scenario, params, trace seed, plan): [ddcr_chaos replay]
    re-executes the artifact byte-identically whatever fault seed it
    carries.

    The artifact's frozen verdict and fingerprint come from an actual
    {!Rtnet_chaos.Candidate.run} of the schedule — never from the
    model's prediction — so replay equality is exact by
    construction. *)

val plan_of_trail : Explore.trail -> Rtnet_channel.Fault_plan.spec
(** Fold the trail's actions into scheduled fault-plan atoms.  A
    [Crash s] opens a window closed by the matching [Revive s]; a
    crash still open when the trail ends is closed just past the last
    explored slot start (the model only relied on the source being
    down at slot starts it actually explored). *)

type source = {
  w_scenario : Rtnet_campaign.Spec.scenario;
  w_horizon_ms : int;
  w_params : Rtnet_core.Ddcr_params.t option;
      (** [Some] iff the check overrode the scenario-default
          parameters — pinned into the artifact so replay uses the
          same ones *)
  w_trace_seed : int;
}
(** Everything besides the trail that determines the replayed run —
    it must match what {!Transition.make} was given. *)

val export :
  source -> Explore.finding -> Rtnet_chaos.Repro.t * Rtnet_chaos.Candidate.report
(** [export src finding] runs the real simulator on the trail's plan
    and freezes the result as a replay artifact whose note names the
    violated model invariant.  Also returns the simulator's report so
    callers can print the verdict without re-running. *)
