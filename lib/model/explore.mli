(** Breadth-first explicit-state exploration of {!Transition}'s
    bounded state space.

    States dedup on {!Transition.key}, so a configuration reached
    along two different fault schedules expands once; the trail kept
    per finding is the first (shortest, in BFS order).

    {b Soundness caveat} (DESIGN.md §12): a clean {!outcome} means no
    invariant violation is reachable within [c_depth] slots, [c_budget]
    fault actions and the one-fault-per-slot restriction — a bounded
    guarantee, not a proof over unbounded executions.  A truncated
    outcome ([o_truncated]) proves nothing. *)

type config = {
  c_depth : int;  (** max slots along any path *)
  c_budget : int;  (** fault-action budget per path *)
  c_max_states : int;  (** safety valve on distinct states *)
  c_max_violations : int;  (** stop after this many distinct violations *)
}

val default_config : config
(** depth 24, budget 2, 200k states, stop at the first violation. *)

type trail = (int * Transition.action) list
(** (slot start time, action applied in that slot), root first. *)

type finding = { f_violation : Transition.violation; f_trail : trail }

type outcome = {
  o_explored : int;  (** distinct states expanded *)
  o_transitions : int;  (** step calls that produced a successor *)
  o_depth_reached : int;
  o_truncated : bool;  (** [c_max_states] exhausted: NOT exhaustive *)
  o_findings : finding list;
}

val actions_for : Transition.sys -> Transition.node -> Transition.action list
(** The candidate actions at a node: [No_fault] always; with budget
    left, [Garble], [Misperceive s] of each live synced source and
    [Crash s] of each live source; [Revive s] of each crashed source
    (free — ending a crash spends no budget).  Inapplicable candidates
    are filtered by {!Transition.step} returning [Disabled]. *)

val run : ?config:config -> Transition.sys -> budget:int -> outcome
(** [run sys ~budget] explores from {!Transition.init} with the given
    fault budget.  [budget] is the root node's allowance and should
    equal [config.c_budget] (the latter only documents the bound in
    reports). *)
