(** The model's transition relation: one contention slot of the whole
    system as a pure function of (node, fault action).

    A {!node} is a complete system configuration — per-source
    {!Rtnet_core.Ddcr.Step} replica states, EDF queues, sync/liveness
    flags, the remaining fault budget and the fault-epoch ledger.  The
    {!step} function mirrors, piece for piece, what
    {!Rtnet_mac.Harness.run} driving [Ddcr.run_trace] does in one slot:
    deliver arrivals, collect decisions, resolve the channel, compute
    each source's {e local} observation, pop the completed frame,
    advance every live synced replica on its own observation, detect
    divergence by fingerprint plurality, recover (cold restart,
    boundary resync) and extend the fault epoch.  Every deterministic
    piece {e reuses the production code} ([Step.decide]/[Step.observe],
    the channel's arbitration rule, [Harness.misperceived_view]); what
    the simulator samples randomly is the explorer's branching choice —
    at most one fault {!action} per slot.

    A node therefore corresponds exactly to one reachable configuration
    of the simulator under some scheduled fault plan, which is what
    lets {!Witness} replay any trail byte-identically. *)

type sys = {
  params : Rtnet_core.Ddcr_params.t;
  inst : Rtnet_workload.Instance.t;
  arrivals : Rtnet_workload.Message.t array;
      (** the full trace, sorted by (arrival, uid) *)
  horizon : int;  (** bit-times; the replay horizon, not the depth bound *)
}

type node = {
  time : int;  (** start of the next contention slot, bit-times *)
  arr : int;  (** [arrivals.(i)] for [i < arr] have been delivered *)
  queues : Rtnet_edf.Edf_queue.t array;
  replicas : Rtnet_core.Ddcr.Step.state array;
  synced : bool array;
  crashed : bool array;
      (** inside a model crash (an explicit [Revive] ends it) *)
  budget : int;  (** remaining fault actions *)
  epochs : (int * int) list;  (** closed fault epochs, most recent first *)
  epoch_open : (int * int) option;  (** the growing current epoch *)
}

type action =
  | No_fault
  | Garble  (** destroy this slot's lone frame on the wire *)
  | Misperceive of int
      (** this live synced listener mis-decodes the slot *)
  | Crash of int  (** source goes down from this slot *)
  | Revive of int  (** source rejoins (listen-only) from this slot *)

type violation =
  | Protocol_error of { time : int; reason : string }
      (** [Step.observe] raised {!Rtnet_core.Ddcr.Protocol_violation} *)
  | Wf_error of { time : int; source : int; reason : string }
      (** a live synced replica failed {!Rtnet_core.Ddcr.Step.wf} —
          the slot-accounting invariant *)
  | Lockstep_broken of {
      time : int;
      reference : int;
      source : int;
      ref_fp : string;
      fp : string;
    }
      (** two live synced replicas disagree {e after} recovery ran —
          the no-two-winners safety root *)
  | Missed_resync of { time : int; source : int }
      (** a live station is still desynchronized although the
          reference reached a tree-epoch boundary this slot *)
  | Deadline_miss of {
      time : int;
      source : int;
      uid : int;
      finish : int;
      deadline : int;
    }
      (** a completed frame finished late with no overlapping fault
          epoch to excuse it (TRC-DEADLINE semantics) *)
  | Model_error of { time : int; reason : string }
      (** the carried tag disagrees with the sender's EDF head — a
          model/simulator divergence, never expected *)

type step_result =
  | Stepped of node
  | Disabled
      (** the action is not applicable here (e.g. [Garble] with no
          lone frame on the wire, [Misperceive] of a source whose view
          would not differ) — the explorer skips the branch *)
  | Violating of violation

val action_label : action -> string
val describe_violation : violation -> string

val make :
  params:Rtnet_core.Ddcr_params.t ->
  inst:Rtnet_workload.Instance.t ->
  trace:Rtnet_workload.Message.t list ->
  horizon:int ->
  sys
(** Validates [params] against the instance and sorts the trace.
    @raise Invalid_argument on an invalid configuration or a nonzero
    [burst_bits] (packet bursting is outside the model). *)

val init : sys -> node
(** The initial configuration: time 0, empty queues, all replicas at
    {!Rtnet_core.Ddcr.Step.init}, everyone live and synced, budget 0
    (the explorer sets it). *)

val step : sys -> node -> action -> step_result
(** One slot under the given fault action. *)

val key : node -> string
(** Canonical dedup key: every field that influences any future
    transition or invariant, serialized into one string.  Two nodes
    with equal keys have identical futures. *)
