module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Channel = Rtnet_channel.Channel
module Phy = Rtnet_channel.Phy
module Edf_queue = Rtnet_edf.Edf_queue
module Ddcr = Rtnet_core.Ddcr
module Step = Rtnet_core.Ddcr.Step
module Ddcr_params = Rtnet_core.Ddcr_params

(* The model's transition relation: one contention slot of the whole
   system — arrivals, per-replica decisions, channel resolution, local
   observations, divergence detection and recovery — as a pure function
   of (node, fault action).  Every deterministic piece reuses the
   production code (Step.decide / Step.observe, EDF queues); what the
   simulator samples randomly (garbles, misperceptions, crash windows)
   is the explorer's branching choice, at most ONE fault action per
   slot.  A node therefore corresponds exactly to one reachable
   configuration of Ddcr.run_trace under some scheduled fault plan,
   which is what lets Witness replay any trail byte-identically. *)

type sys = {
  params : Ddcr_params.t;
  inst : Instance.t;
  arrivals : Message.t array; (* the full trace, sorted by (arrival, uid) *)
  horizon : int; (* bit-times; the replay horizon, not the depth bound *)
}

type node = {
  time : int; (* start of the next contention slot, bit-times *)
  arr : int; (* arrivals.(i) for i < arr have been delivered *)
  queues : Edf_queue.t array;
  replicas : Step.state array;
  synced : bool array;
  crashed : bool array; (* inside a model crash (explicit Revive ends it) *)
  budget : int; (* remaining fault actions *)
  epochs : (int * int) list; (* closed fault epochs, most recent first *)
  epoch_open : (int * int) option; (* the growing current epoch *)
}

type action =
  | No_fault
  | Garble (* destroy this slot's lone frame on the wire *)
  | Misperceive of int (* this live synced listener mis-decodes the slot *)
  | Crash of int (* source goes down from this slot *)
  | Revive of int (* source rejoins (listen-only) from this slot *)

type violation =
  | Protocol_error of { time : int; reason : string }
  | Wf_error of { time : int; source : int; reason : string }
  | Lockstep_broken of {
      time : int;
      reference : int;
      source : int;
      ref_fp : string;
      fp : string;
    }
  | Missed_resync of { time : int; source : int }
  | Deadline_miss of {
      time : int;
      source : int;
      uid : int;
      finish : int;
      deadline : int;
    }
  | Model_error of { time : int; reason : string }

type step_result =
  | Stepped of node
  | Disabled
  | Violating of violation

let action_label = function
  | No_fault -> "-"
  | Garble -> "garble"
  | Misperceive s -> Printf.sprintf "misperceive(%d)" s
  | Crash s -> Printf.sprintf "crash(%d)" s
  | Revive s -> Printf.sprintf "revive(%d)" s

let describe_violation = function
  | Protocol_error { time; reason } ->
    Printf.sprintf "protocol violation at t=%d: %s" time reason
  | Wf_error { time; source; reason } ->
    Printf.sprintf "ill-formed replica state of source %d at t=%d: %s" source
      time reason
  | Lockstep_broken { time; reference; source; ref_fp; fp } ->
    Printf.sprintf
      "lockstep broken at t=%d: source %d [%s] disagrees with reference %d \
       [%s] after recovery"
      time source fp reference ref_fp
  | Missed_resync { time; source } ->
    Printf.sprintf
      "missed resync at t=%d: source %d still desynchronized at a tree-epoch \
       boundary"
      time source
  | Deadline_miss { time; source; uid; finish; deadline } ->
    Printf.sprintf
      "unexcused deadline miss at t=%d: uid %d of source %d finished at %d, \
       deadline %d, no overlapping fault epoch"
      time uid source finish deadline
  | Model_error { time; reason } ->
    Printf.sprintf "model error at t=%d: %s" time reason

let make ~params ~inst ~trace ~horizon =
  (match Ddcr_params.validate params ~num_sources:inst.Instance.num_sources with
  | Ok () -> ()
  | Error e -> invalid_arg ("Transition.make: " ^ e));
  if params.Ddcr_params.burst_bits <> 0 then
    invalid_arg
      "Transition.make: packet bursting is outside the model (burst_bits must \
       be 0)";
  let arrivals =
    List.sort
      (fun a b ->
        compare (a.Message.arrival, a.Message.uid) (b.Message.arrival, b.Message.uid))
      trace
    |> Array.of_list
  in
  { params; inst; arrivals; horizon }

let init sys =
  let z = sys.inst.Instance.num_sources in
  {
    time = 0;
    arr = 0;
    queues = Array.make z Edf_queue.empty;
    replicas = Array.make z Step.init;
    synced = Array.make z true;
    crashed = Array.make z false;
    budget = 0 (* set by the explorer *);
    epochs = [];
    epoch_open = None;
  }

(* Mirrors Harness.note_epoch: adjacent/overlapping faulty slots
   coalesce because the next slot starts exactly at this one's
   next_free. *)
let note_epoch nd ~start ~finish =
  match nd.epoch_open with
  | Some (s, e) when start <= e -> { nd with epoch_open = Some (s, max e finish) }
  | Some span -> { nd with epochs = span :: nd.epochs; epoch_open = Some (start, finish) }
  | None -> { nd with epoch_open = Some (start, finish) }

(* Mirrors Trace_check.inside_epoch over the epochs recorded so far
   (closed plus open).  Checking at completion time is equivalent to
   checking against the final epoch list: a future epoch starts at or
   after this slot's next_free >= finish, so it can never satisfy
   s < finish; and the open epoch can only grow while it still covers
   the current slot, in which case it already excuses it. *)
let inside_epoch nd ~t0 ~dm ~finish =
  let lo = min t0 dm in
  let hit (s, e) = s < finish && lo < e in
  List.exists hit nd.epochs
  || match nd.epoch_open with Some span -> hit span | None -> false

let exists_src z p =
  let rec go s = s < z && (p s || go (s + 1)) in
  go 0

(* One slot.  Applies [action], then mirrors, in order: the harness
   slot body (deliver, liveness refresh, decide, contend, per-source
   observation, completion) and Ddcr.run_trace's [after] (liveness
   edges, per-replica observe on the OWN observation, fingerprint
   plurality, desync accounting, cold restart, boundary resync),
   then the harness epoch note — and checks the invariants. *)
let step sys nd action =
  let z = sys.inst.Instance.num_sources in
  let phy = sys.inst.Instance.phy in
  let slot = phy.Phy.slot_bits in
  let now = nd.time in
  (* Fault action: liveness changes apply from this slot's start (the
     harness refreshes per-source liveness before [decide]). *)
  let enabled, budget, crashed =
    match action with
    | No_fault -> (true, nd.budget, nd.crashed)
    | Garble | Misperceive _ ->
      (nd.budget > 0, nd.budget - 1, nd.crashed)
    | Crash s ->
      if nd.budget > 0 && not nd.crashed.(s) then begin
        let crashed = Array.copy nd.crashed in
        crashed.(s) <- true;
        (true, nd.budget - 1, crashed)
      end
      else (false, nd.budget, nd.crashed)
    | Revive s ->
      if nd.crashed.(s) then begin
        let crashed = Array.copy nd.crashed in
        crashed.(s) <- false;
        (true, nd.budget, crashed)
      end
      else (false, nd.budget, nd.crashed)
  in
  if not enabled then Disabled
  else begin
    let alive s = not crashed.(s) in
    (* Deliver arrivals with T <= now. *)
    let queues = Array.copy nd.queues in
    let arr = ref nd.arr in
    while
      !arr < Array.length sys.arrivals
      && sys.arrivals.(!arr).Message.arrival <= now
    do
      let m = sys.arrivals.(!arr) in
      let s = m.Message.cls.Message.cls_source in
      queues.(s) <- Edf_queue.insert queues.(s) m;
      incr arr
    done;
    let slot_faulty = ref (exists_src z (fun s -> crashed.(s))) in
    (* Decisions of the live synced replicas, in source order (crashed
       sources transmit nothing; desynced stations are listen-only). *)
    let attempts = ref [] in
    for s = z - 1 downto 0 do
      if alive s && nd.synced.(s) then
        match
          Step.decide sys.params ~source:s nd.replicas.(s)
            ~msg_star:(Edf_queue.peek queues.(s))
        with
        | Some a -> attempts := a :: !attempts
        | None -> ()
    done;
    let attempts = !attempts in
    (* A Garble action needs a lone frame to destroy; a Misperceive
       needs a live synced listener whose mapped view differs. *)
    match (action, attempts) with
    | Garble, ([] | _ :: _ :: _) -> Disabled
    | _ -> (
      (* Channel resolution (pure mirror of Channel.contend with the
         chosen garble). *)
      let resolution, next_free =
        match attempts with
        | [] -> (Channel.Idle, now + slot)
        | [ a ] ->
          let on_wire = Phy.tx_bits phy a.Channel.att_bits in
          if action = Garble then (Channel.Garbled { on_wire }, now + on_wire)
          else
            ( Channel.Tx
                { src = a.Channel.att_source; tag = a.Channel.att_tag; on_wire },
              now + on_wire )
        | contenders -> (
          let ids =
            List.map
              (fun a -> (a.Channel.att_source, a.Channel.att_tag))
              contenders
          in
          match phy.Phy.semantics with
          | Phy.Destructive ->
            (Channel.Clash { contenders = ids; survivor = None }, now + slot)
          | Phy.Arbitration ->
            let best =
              List.fold_left
                (fun acc a ->
                  match acc with
                  | None -> Some a
                  | Some b ->
                    if
                      compare
                        (a.Channel.att_key, a.Channel.att_source)
                        (b.Channel.att_key, b.Channel.att_source)
                      < 0
                    then Some a
                    else acc)
                None contenders
            in
            let a = match best with Some a -> a | None -> assert false in
            let on_wire = Phy.tx_bits phy a.Channel.att_bits in
            ( Channel.Clash
                {
                  contenders = ids;
                  survivor = Some (a.Channel.att_source, a.Channel.att_tag, on_wire);
                },
              now + slot + on_wire ))
      in
      let participants = List.map (fun a -> a.Channel.att_source) attempts in
      (match resolution with
      | Channel.Garbled _ -> slot_faulty := true
      | _ -> ());
      (* Per-source local observations (Harness.misperceived_view). *)
      let observed s =
        if crashed.(s) then Channel.Idle
        else
          match action with
          | Misperceive s' when s' = s && not (List.mem s participants) ->
            Rtnet_mac.Harness.misperceived_view resolution
          | _ -> resolution
      in
      let misperceive_ok =
        match action with
        | Misperceive s ->
          alive s && nd.synced.(s)
          && (not (List.mem s participants))
          && observed s <> resolution
        | _ -> true
      in
      if not misperceive_ok then Disabled
      else begin
        (match action with
        | Misperceive _ -> slot_faulty := true
        | _ -> ());
        (* Completion of the carried frame, if any. *)
        let completion = ref None in
        let take_err = ref None in
        (match resolution with
        | Channel.Idle | Channel.Garbled _
        | Channel.Clash { survivor = None; _ } ->
          ()
        | Channel.Tx { src; tag; _ } | Channel.Clash { survivor = Some (src, tag, _); _ }
          -> (
          let start =
            match resolution with
            | Channel.Clash _ -> now + slot
            | _ -> now
          in
          let on_wire =
            match resolution with
            | Channel.Tx { on_wire; _ }
            | Channel.Clash { survivor = Some (_, _, on_wire); _ } ->
              on_wire
            | _ -> assert false
          in
          match Edf_queue.pop queues.(src) with
          | Some (m, q) when m.Message.uid = tag ->
            queues.(src) <- q;
            completion := Some (m, start, start + on_wire)
          | Some (m, _) ->
            take_err :=
              Some
                (Printf.sprintf
                   "carried tag %d of source %d disagrees with the EDF head \
                    (uid %d)"
                   tag src m.Message.uid)
          | None ->
            take_err :=
              Some
                (Printf.sprintf "source %d transmitted from an empty queue" src)));
        match !take_err with
        | Some reason -> Violating (Model_error { time = now; reason })
        | None -> (
          (* --- the run_trace [after] mirror --- *)
          let replicas = Array.copy nd.replicas in
          let synced = Array.copy nd.synced in
          (* Liveness edges: entering a crash loses sync. *)
          for s = 0 to z - 1 do
            if nd.crashed.(s) = false && crashed.(s) then synced.(s) <- false
          done;
          (* Each live synced replica advances on its own observation. *)
          let proto_err = ref None in
          for s = 0 to z - 1 do
            if alive s && synced.(s) && !proto_err = None then
              match
                Step.observe sys.params ~source:s replicas.(s)
                  ~resolution:(observed s) ~next_free
              with
              | st -> replicas.(s) <- st
              | exception Ddcr.Protocol_violation reason ->
                proto_err := Some reason
          done;
          match !proto_err with
          | Some reason -> Violating (Protocol_error { time = now; reason })
          | None -> (
            (* Fingerprint plurality: minority digests go listen-only
               (ties broken toward the group holding the lowest id). *)
            let groups : (string, int list) Hashtbl.t = Hashtbl.create 4 in
            for s = 0 to z - 1 do
              if alive s && synced.(s) then begin
                let fp = Step.fingerprint replicas.(s) in
                let members =
                  match Hashtbl.find_opt groups fp with
                  | Some l -> l
                  | None -> []
                in
                Hashtbl.replace groups fp (s :: members)
              end
            done;
            if Hashtbl.length groups > 1 then begin
              let best =
                Hashtbl.fold
                  (fun fp members acc ->
                    let size = List.length members in
                    let low = List.fold_left min max_int members in
                    match acc with
                    | Some (_, bsize, blow)
                      when size < bsize || (size = bsize && low > blow) ->
                      acc
                    | _ -> Some (fp, size, low))
                  groups None
              in
              let ref_fp =
                match best with Some (fp, _, _) -> fp | None -> assert false
              in
              for s = 0 to z - 1 do
                if
                  alive s && synced.(s)
                  && Step.fingerprint replicas.(s) <> ref_fp
                then synced.(s) <- false
              done
            end;
            (* Desync accounting extends the fault epoch. *)
            if exists_src z (fun s -> alive s && not synced.(s)) then
              slot_faulty := true;
            (* Recovery: cold restart if no synced station remains,
               then boundary resync toward the reference. *)
            let pick_reference () =
              let rec go s =
                if s >= z then None
                else if alive s && synced.(s) then Some s
                else go (s + 1)
              in
              go 0
            in
            (match pick_reference () with
            | Some _ -> ()
            | None -> (
              let rec first_alive s =
                if s >= z then None else if alive s then Some s else first_alive (s + 1)
              in
              match first_alive 0 with
              | None -> ()
              | Some s ->
                replicas.(s) <- { Step.init with Step.reft = next_free };
                synced.(s) <- true));
            (match pick_reference () with
            | Some r when Step.at_boundary replicas.(r) ->
              for s = 0 to z - 1 do
                if alive s && not synced.(s) then begin
                  replicas.(s) <- { (replicas.(r)) with Step.rank = 0 };
                  synced.(s) <- true
                end
              done
            | Some _ | None -> ());
            (* Epoch note (the harness does this after [after]). *)
            let nd' =
              {
                time = next_free;
                arr = !arr;
                queues;
                replicas;
                synced;
                crashed;
                budget;
                epochs = nd.epochs;
                epoch_open = nd.epoch_open;
              }
            in
            let nd' =
              if !slot_faulty then note_epoch nd' ~start:now ~finish:next_free
              else nd'
            in
            (* --- invariants --- *)
            let violation = ref None in
            let set v = if !violation = None then violation := Some v in
            (* Slot accounting: every live synced replica structurally
               well-formed. *)
            for s = 0 to z - 1 do
              if alive s && synced.(s) then
                match Step.wf sys.params ~source:s replicas.(s) with
                | Ok () -> ()
                | Error reason ->
                  set (Wf_error { time = next_free; source = s; reason })
            done;
            (* Lockstep among live synced replicas. *)
            (match pick_reference () with
            | None -> ()
            | Some r ->
              let ref_fp = Step.fingerprint replicas.(r) in
              for s = 0 to z - 1 do
                if alive s && synced.(s) then begin
                  let fp = Step.fingerprint replicas.(s) in
                  if fp <> ref_fp then
                    set
                      (Lockstep_broken
                         {
                           time = next_free;
                           reference = r;
                           source = s;
                           ref_fp;
                           fp;
                         })
                end
              done;
              (* Resync within one tree epoch: no live station may still
                 be desynchronized once the reference reached a
                 boundary (recovery must have fired this very slot). *)
              if Step.at_boundary replicas.(r) then
                for s = 0 to z - 1 do
                  if alive s && not synced.(s) then
                    set (Missed_resync { time = next_free; source = s })
                done);
            (* Timeliness: a completed frame past its deadline must be
               excused by an overlapping fault epoch (TRC-DEADLINE /
               TRC-DEGRADED semantics of Trace_check). *)
            (match !completion with
            | None -> ()
            | Some (m, start, finish) ->
              let dm = Message.abs_deadline m in
              if finish > dm && not (inside_epoch nd' ~t0:start ~dm ~finish)
              then
                set
                  (Deadline_miss
                     {
                       time = now;
                       source = m.Message.cls.Message.cls_source;
                       uid = m.Message.uid;
                       finish;
                       deadline = dm;
                     }));
            match !violation with
            | Some v -> Violating v
            | None -> Stepped nd'))
      end)
  end

(* Canonical state key for dedup: every field that influences any
   future transition or invariant, serialized into one string.  Two
   nodes with equal keys have identical futures, so the explorer keeps
   only the first trail that reaches each key. *)
let key nd =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int nd.time);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int nd.arr);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int nd.budget);
  Array.iteri
    (fun s st ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int s);
      Buffer.add_char b (if nd.synced.(s) then 's' else 'd');
      Buffer.add_char b (if nd.crashed.(s) then 'x' else 'a');
      Buffer.add_string b (Step.fingerprint st);
      Buffer.add_char b '#';
      Buffer.add_string b (string_of_int st.Step.rank);
      Buffer.add_char b (if st.Step.last_out then 'o' else '-'))
    nd.replicas;
  Array.iter
    (fun q ->
      Buffer.add_char b '|';
      List.iter
        (fun m ->
          Buffer.add_string b (string_of_int m.Message.uid);
          Buffer.add_char b ',')
        (Edf_queue.to_sorted_list q))
    nd.queues;
  Buffer.add_char b '|';
  List.iter
    (fun (s, e) -> Buffer.add_string b (Printf.sprintf "[%d,%d)" s e))
    nd.epochs;
  (match nd.epoch_open with
  | Some (s, e) -> Buffer.add_string b (Printf.sprintf "o[%d,%d)" s e)
  | None -> ());
  Buffer.contents b
