module Fault_plan = Rtnet_channel.Fault_plan
module Candidate = Rtnet_chaos.Candidate
module Repro = Rtnet_chaos.Repro
module T = Transition

(* Counterexample export: a model trail is a schedule of deterministic
   fault atoms, so it maps directly onto a Fault_plan spec — scheduled
   garbles, scheduled misperceptions and crash windows, no random
   process at all.  Such a plan consumes zero PRNG draws, so the
   candidate is a pure function of (scenario, params, trace seed, plan)
   and `ddcr_chaos replay` re-executes the artifact byte-identically
   whatever fault seed it carries. *)

let plan_of_trail trail =
  let garbles = ref [] in
  let misperceives = ref [] in
  let open_crash : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let windows = ref [] in
  let last_time = ref 0 in
  List.iter
    (fun (time, action) ->
      last_time := max !last_time time;
      match action with
      | T.No_fault -> ()
      | T.Garble -> garbles := time :: !garbles
      | T.Misperceive s -> misperceives := (s, time) :: !misperceives
      | T.Crash s -> Hashtbl.replace open_crash s time
      | T.Revive s -> (
        match Hashtbl.find_opt open_crash s with
        | Some from_ ->
          Hashtbl.remove open_crash s;
          windows := (s, from_, time) :: !windows
        | None -> ()))
    trail;
  (* A crash still open when the trail ends is closed just past the
     last explored slot start: the model only relied on the source
     being down at slot starts <= last_time. *)
  Hashtbl.iter
    (fun s from_ -> windows := (s, from_, !last_time + 1) :: !windows)
    open_crash;
  Fault_plan.merge
    ([ Fault_plan.garble_at (List.rev !garbles) ]
    @ [ Fault_plan.misperceive_at (List.rev !misperceives) ]
    @ List.map
        (fun (s, from_, until) -> Fault_plan.crash ~source:s ~from_ ~until)
        !windows)

type source = {
  w_scenario : Rtnet_campaign.Spec.scenario;
  w_horizon_ms : int;
  w_params : Rtnet_core.Ddcr_params.t option;
      (* [Some] iff the check overrode the scenario-default parameters
         — pinned into the artifact so replay uses the same ones *)
  w_trace_seed : int;
}

let export src finding =
  let plan = plan_of_trail finding.Explore.f_trail in
  let config =
    {
      Candidate.cf_scenario = src.w_scenario;
      cf_horizon_ms = src.w_horizon_ms;
      cf_params = src.w_params;
    }
  in
  let cd =
    {
      Candidate.cd_plan = plan;
      cd_trace_seed = src.w_trace_seed;
      cd_fault_seed = 0;
    }
  in
  (* Freeze what the real simulator produces for this schedule — the
     artifact's expectations come from an actual run, never from the
     model's prediction, so replay equality is exact by construction. *)
  let report = Candidate.run config cd in
  ( Repro.make ~config ~candidate:cd ~report
      ~note:
        (Printf.sprintf "model counterexample: %s"
           (T.describe_violation finding.Explore.f_violation)),
    report )
