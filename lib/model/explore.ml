module T = Transition

(* Breadth-first explicit-state exploration, exhaustive up to a slot
   depth and a fault budget.  Dedup is by Transition.key, so a state
   reached along two different fault schedules is expanded once; the
   trail kept is the first (shortest, BFS order) one.  Soundness
   caveat (documented in DESIGN.md §12): "clean" means no invariant
   violation is reachable within [c_depth] slots, [c_budget] fault
   actions and the explorer's one-fault-per-slot restriction — not a
   proof over unbounded executions. *)

type config = {
  c_depth : int; (* max slots along any path *)
  c_budget : int; (* fault-action budget per path *)
  c_max_states : int; (* safety valve on distinct states *)
  c_max_violations : int; (* stop after this many distinct violations *)
}

let default_config =
  { c_depth = 24; c_budget = 2; c_max_states = 200_000; c_max_violations = 1 }

type trail = (int * T.action) list
(* (slot start time, action applied in that slot), root first *)

type finding = { f_violation : T.violation; f_trail : trail }

type outcome = {
  o_explored : int; (* distinct states expanded *)
  o_transitions : int; (* step calls that produced a successor *)
  o_depth_reached : int;
  o_truncated : bool; (* c_max_states exhausted: NOT exhaustive *)
  o_findings : finding list;
}

let actions_for sys nd =
  let z = sys.T.inst.Rtnet_workload.Instance.num_sources in
  let acc = ref [ T.No_fault ] in
  if nd.T.budget > 0 then begin
    acc := T.Garble :: !acc;
    for s = z - 1 downto 0 do
      if (not nd.T.crashed.(s)) && nd.T.synced.(s) then
        acc := T.Misperceive s :: !acc
    done;
    for s = z - 1 downto 0 do
      if not nd.T.crashed.(s) then acc := T.Crash s :: !acc
    done
  end;
  for s = z - 1 downto 0 do
    if nd.T.crashed.(s) then acc := T.Revive s :: !acc
  done;
  !acc

let run ?(config = default_config) sys ~budget =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let frontier = Queue.create () in
  let root = { (T.init sys) with T.budget } in
  Hashtbl.replace visited (T.key root) ();
  Queue.add (root, [], 0) frontier;
  let explored = ref 0 in
  let transitions = ref 0 in
  let depth_reached = ref 0 in
  let truncated = ref false in
  let findings = ref [] in
  let seen_violations : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (try
     while not (Queue.is_empty frontier) do
       let nd, rtrail, depth = Queue.pop frontier in
       incr explored;
       if depth > !depth_reached then depth_reached := depth;
       if
         depth < config.c_depth
         && nd.T.time < sys.T.horizon
       then
         List.iter
           (fun action ->
             match T.step sys nd action with
             | T.Disabled -> ()
             | T.Stepped nd' ->
               incr transitions;
               let k = T.key nd' in
               if not (Hashtbl.mem visited k) then begin
                 if Hashtbl.length visited >= config.c_max_states then
                   truncated := true
                 else begin
                   Hashtbl.replace visited k ();
                   Queue.add
                     (nd', (nd.T.time, action) :: rtrail, depth + 1)
                     frontier
                 end
               end
             | T.Violating v ->
               incr transitions;
               let label = T.describe_violation v in
               if not (Hashtbl.mem seen_violations label) then begin
                 Hashtbl.replace seen_violations label ();
                 findings :=
                   {
                     f_violation = v;
                     f_trail = List.rev ((nd.T.time, action) :: rtrail);
                   }
                   :: !findings;
                 if List.length !findings >= config.c_max_violations then
                   raise Exit
               end)
           (actions_for sys nd)
     done
   with Exit -> ());
  {
    o_explored = !explored;
    o_transitions = !transitions;
    o_depth_reached = !depth_reached;
    o_truncated = !truncated;
    o_findings = List.rev !findings;
  }
