module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Np_edf_fc = Rtnet_edf.Np_edf_fc
module Fault_plan = Rtnet_channel.Fault_plan

type verdict = {
  bv_bridge : string;
  bv_classes : int;
  bv_utilization : float;
  bv_feasible : bool;
  bv_margin : float;
  bv_crash_window : int;
}

(* Worst scheduled outage of the bridge station, per the downstream
   segment's fault plan: while crashed the bridge neither drains its
   queue nor contends, so the fault-aware test must fit each forwarded
   class into [deadline - window]. *)
let worst_window (e : Admit.t) (b : Topo.bridge) =
  match Topo.find_segment e.Admit.e_topo b.Topo.br_to with
  | Some { Topo.sg_fault = Some sp; _ } ->
    Fault_plan.max_outage sp ~source:b.Topo.br_station
  | Some _ | None -> 0

(* The forwarded (class, law) pairs a bridge injects downstream: every
   flow hop reached through this bridge, with the law looked up in the
   elaborated downstream instance. *)
let crossing (e : Admit.t) (b : Topo.bridge) =
  List.concat_map
    (fun (f : Admit.eflow) ->
      List.filter_map
        (fun (h : Admit.hop) ->
          match h.Admit.h_bridge with
          | Some hb when hb.Topo.br_name = b.Topo.br_name ->
            let inst = Admit.instance_of e h.Admit.h_segment in
            let _, law =
              List.find
                (fun (c, _) ->
                  c.Message.cls_id = h.Admit.h_cls.Message.cls_id)
                (Array.to_list inst.Instance.classes)
            in
            Some (h.Admit.h_cls, law)
          | Some _ | None -> None)
        f.Admit.ef_hops)
    e.Admit.e_flows

let check ?(fault_aware = false) (e : Admit.t) =
  List.map
    (fun (b : Topo.bridge) ->
      let window = if fault_aware then worst_window e b else 0 in
      match crossing e b with
      | [] ->
        {
          bv_bridge = b.Topo.br_name;
          bv_classes = 0;
          bv_utilization = 0.0;
          bv_feasible = true;
          bv_margin = 0.0;
          bv_crash_window = window;
        }
      | classes ->
        let shortened =
          List.map
            (fun (c, law) ->
              ({ c with Message.cls_deadline = c.Message.cls_deadline - window },
               law))
            classes
        in
        if
          List.exists
            (fun ((c : Message.cls), _) -> c.Message.cls_deadline <= 0)
            shortened
        then
          (* The outage alone swallows a forwarded deadline: no queue
             discipline can save it, so don't even build the synthetic
             instance (its constructor would reject the class). *)
          {
            bv_bridge = b.Topo.br_name;
            bv_classes = List.length classes;
            bv_utilization = 0.0;
            bv_feasible = false;
            bv_margin = infinity;
            bv_crash_window = window;
          }
        else
          let renumbered =
            List.mapi
              (fun i (c, law) ->
                ({ c with Message.cls_id = i; cls_source = 0 }, law))
              shortened
          in
          let downstream = Admit.instance_of e b.Topo.br_to in
          let inst =
            Instance.create_exn
              ~name:("bridge/" ^ b.Topo.br_name)
              ~phy:downstream.Instance.phy ~num_sources:1 renumbered
          in
          let v = Np_edf_fc.check inst in
          {
            bv_bridge = b.Topo.br_name;
            bv_classes = List.length classes;
            bv_utilization = Np_edf_fc.utilization inst;
            bv_feasible = v.Np_edf_fc.np_feasible;
            bv_margin = v.Np_edf_fc.np_margin;
            bv_crash_window = window;
          })
    e.Admit.e_topo.Topo.tp_bridges

let pp_verdict fmt v =
  Format.fprintf fmt
    "bridge %-10s %2d forwarded classes  util %5.3f  margin %6.3f  %s%s"
    v.bv_bridge v.bv_classes v.bv_utilization v.bv_margin
    (if v.bv_feasible then "ok" else "OVERLOADED")
    (if v.bv_crash_window > 0 then
       Printf.sprintf "  (crash window %d)" v.bv_crash_window
     else "")
