(** Federated multi-segment simulation with end-to-end verdicts.

    The driver executes an elaborated topology ({!Admit.t}) segment by
    segment along the wavefront levels of the bridge DAG
    ({!Topo.levels}).  Frames only travel {e down} the DAG, so running
    a whole upstream segment to the horizon before its downstream
    neighbours start is observationally equivalent to slot-lockstep
    co-simulation (DESIGN.md §13) — and lets each level's segments run
    in parallel OCaml domains.

    Per segment it runs the ordinary CSMA/DDCR simulator
    ({!Rtnet_core.Ddcr.run_trace}) with the two federation hooks of
    {!Rtnet_mac.Harness.run}: [?on_complete] captures the completions
    of flow-hop classes, [?inject] feeds the bridge deliveries
    ([finish + br_latency] on the downstream segment) into the arrival
    stream.  Between levels the (sequential, deterministic)
    coordinator turns upstream completions into downstream arrivals —
    so the parallel run is fingerprint-identical to [~domains:1].

    Every origin arrival of a flow class opens a {e chain}; the
    verdict classifies each chain: delivered in time, missed (with the
    miss {b attributed} to a specific hop — the first hop that
    overran its decomposed budget, which by the decomposition
    invariant must exist whenever the end-to-end deadline is missed),
    or still in flight (undelivered but with its deadline beyond the
    horizon — excused, not a miss). *)

type miss = {
  ms_flow : string;
  ms_uid : int;  (** origin message uid *)
  ms_t0 : int;  (** origin arrival, bit-times *)
  ms_deadline : int;  (** absolute end-to-end deadline [T0 + d(M)] *)
  ms_finish : int option;  (** final-hop finish; [None] if undelivered *)
  ms_hop : string;  (** segment of the attributed hop *)
  ms_hop_index : int;  (** 0-based hop index on the flow's path *)
  ms_fault : string option;
      (** the faulty hop, when there is one to blame: the bridge whose
          crash window held the chain, else the attributed segment if
          it carries a fault plan; [None] = a genuine fault-free
          overrun *)
}

type bridge_drop = {
  bd_bridge : string;  (** overflowing bridge *)
  bd_flow : string;
  bd_uid : int;  (** origin message uid *)
  bd_at : int;  (** revival instant the drop was decided at *)
  bd_deadline : int;  (** the chain's absolute end-to-end deadline *)
}
(** A message lost to a crashed bridge's bounded store-and-forward
    queue (capacity {!Topo.bridge.br_capacity}): structured loss, never
    silent — surfaced in the verdict and, via the chaos oracle, as a
    [Bridge_overflow] end-to-end verdict. *)

(** Degraded-mode operation events, in emission order (per bridge in
    declaration order, windows chronological). *)
type event =
  | Degraded of {
      dg_bridge : string;
      dg_segment : string;  (** the segment the bridge transmits on *)
      dg_from : int;
      dg_until : int;
    }  (** a bridge station's scheduled crash window began *)
  | Shed of {
      sh_bridge : string;
      sh_flow : string;
      sh_uid : int;
      sh_at : int;
      sh_criticality : int;
    }
      (** a held chain was dropped at revival because its remaining
          per-hop budget no longer decomposes ({!Rtnet_core.Decompose}
          slack-weighted) — shed lowest-criticality-first *)
  | Restored of { rs_bridge : string; rs_at : int; rs_backlog : int }
      (** the window closed; the bridge re-admitted and drains
          [rs_backlog] held messages under NP-EDF with a bounded
          catch-up burst *)

type verdict = {
  v_messages : int;  (** chains opened (origin arrivals of flow classes) *)
  v_delivered : int;  (** chains that completed every hop *)
  v_met : int;  (** delivered within the end-to-end deadline *)
  v_in_flight : int;
      (** undelivered chains whose deadline lies beyond the horizon *)
  v_shed : int;  (** chains shed under degraded-mode operation *)
  v_bridge_drops : bridge_drop list;  (** bridge-queue overflow losses *)
  v_misses : miss list;
      (** everything else, attributed (shed / dropped chains are
          accounted above, not counted as misses) *)
}

type seg_result = {
  sr_segment : string;
  sr_outcome : Rtnet_stats.Run.outcome;
}

type hop_record = {
  hr_index : int;  (** 0-based hop index on the flow's path *)
  hr_segment : string;
  hr_arrival : int;  (** arrival on the hop's segment, bit-times *)
  hr_start : int;  (** frame start on the wire *)
  hr_finish : int;  (** frame finish *)
  hr_source : int;  (** transmitting station on the segment *)
}
(** One completed hop of a chain — the raw material for cross-segment
    causal tracing ([Rtnet_obs.Causal]) and postmortem artifacts. *)

type chain_record = {
  cr_flow : string;
  cr_uid : int;  (** origin message uid *)
  cr_t0 : int;  (** origin arrival *)
  cr_deadline : int;  (** absolute end-to-end deadline *)
  cr_fault : string option;
      (** first bridge whose crash window held the chain *)
  cr_shed : bool;  (** shed under degraded-mode operation *)
  cr_dropped : bool;  (** lost to a bridge-queue overflow *)
  cr_hops : hop_record list;  (** completed hops, path order *)
}
(** The full per-hop story of one origin arrival.  [cr_hops] stops at
    the last completed hop — shorter than the flow's path for chains
    still in flight, shed, dropped, or stuck. *)

type result = {
  r_segments : seg_result list;  (** declaration order *)
  r_outcome : Rtnet_stats.Run.outcome;
      (** all segments merged ({!Rtnet_stats.Run.merge}) *)
  r_metrics : Rtnet_stats.Run.metrics;  (** scoreboard of the merge *)
  r_verdict : verdict;
  r_events : event list;  (** degraded-mode timeline (empty = no faults) *)
  r_chains : chain_record list;
      (** every chain, deterministic (trace) order *)
  r_fingerprint : string;
      (** digest of every segment's completion schedule, declaration
          order — equal across [~domains] settings iff sharding is
          transparent *)
}

val run :
  ?domains:int ->
  ?check_lockstep:bool ->
  ?sink_for:(index:int -> segment:string -> Rtnet_telemetry.Sink.t) ->
  ?fault_seed:int ->
  Admit.t ->
  traces:(string * Rtnet_workload.Message.t list) list ->
  horizon:int ->
  (result, string) Stdlib.result
(** [run e ~traces ~horizon] simulates every segment over
    [\[0, horizon)].  [traces] carries one arrival trace per segment
    name, generated from the {b original} (declared) instances — the
    driver itself rewrites origin-class arrivals to the elaborated
    hop-0 classes and synthesizes the forwarded arrivals, so traces
    from elaborated instances would double-count.  [domains] (default
    1) caps the OCaml domains running one wavefront level concurrently;
    any value yields the same [r_fingerprint].  [sink_for] supplies a
    per-segment telemetry sink (index = declaration position); each
    sink is only ever touched by the one domain simulating its segment.

    Segments carrying a fault plan ({!Topo.segment.sg_fault}) run
    under a {!Rtnet_channel.Fault_plan} sampler seeded
    [Prng.derive fault_seed i] (declaration index [i], [fault_seed]
    defaulting to 0) — protocol-blind and independent of the traces.
    A crash window naming a bridge station additionally parks that
    bridge's store-and-forward queue: hand-offs becoming ready inside
    the window are held and drained at revival (NP-EDF order, bounded
    catch-up burst), overflowing ones dropped oldest-past-deadline
    first, and chains whose remaining budgets no longer decompose are
    shed — see {!event}.

    Configuration-level failures (a segment without a trace, a
    malformed cross-segment hand-off, a fault plan the sampler
    rejects) return [Error msg] — a diagnostic, not an exception.
    Protocol-violation exceptions ([Rtnet_mac.Harness.Mismatch],
    [Rtnet_core.Ddcr.Protocol_violation]) still propagate: they are
    run verdicts for the analysis layer, not configuration errors. *)

val run_seeded :
  ?domains:int ->
  ?check_lockstep:bool ->
  ?sink_for:(index:int -> segment:string -> Rtnet_telemetry.Sink.t) ->
  ?fault_seed:int ->
  Admit.t ->
  seed:int ->
  horizon:int ->
  (result, string) Stdlib.result
(** [run_seeded e ~seed ~horizon] is {!run} on per-segment traces
    drawn from the declared instances with
    [Rtnet_util.Prng.derive seed i] (segment declaration index [i]) —
    one seed reproduces the whole federation.  [fault_seed] defaults
    to [Prng.derive seed 0xFA] (a branch disjoint from every trace
    stream), so faults too replay from the single run seed. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_event : Format.formatter -> event -> unit
