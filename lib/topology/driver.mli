(** Federated multi-segment simulation with end-to-end verdicts.

    The driver executes an elaborated topology ({!Admit.t}) segment by
    segment along the wavefront levels of the bridge DAG
    ({!Topo.levels}).  Frames only travel {e down} the DAG, so running
    a whole upstream segment to the horizon before its downstream
    neighbours start is observationally equivalent to slot-lockstep
    co-simulation (DESIGN.md §13) — and lets each level's segments run
    in parallel OCaml domains.

    Per segment it runs the ordinary CSMA/DDCR simulator
    ({!Rtnet_core.Ddcr.run_trace}) with the two federation hooks of
    {!Rtnet_mac.Harness.run}: [?on_complete] captures the completions
    of flow-hop classes, [?inject] feeds the bridge deliveries
    ([finish + br_latency] on the downstream segment) into the arrival
    stream.  Between levels the (sequential, deterministic)
    coordinator turns upstream completions into downstream arrivals —
    so the parallel run is fingerprint-identical to [~domains:1].

    Every origin arrival of a flow class opens a {e chain}; the
    verdict classifies each chain: delivered in time, missed (with the
    miss {b attributed} to a specific hop — the first hop that
    overran its decomposed budget, which by the decomposition
    invariant must exist whenever the end-to-end deadline is missed),
    or still in flight (undelivered but with its deadline beyond the
    horizon — excused, not a miss). *)

type miss = {
  ms_flow : string;
  ms_uid : int;  (** origin message uid *)
  ms_t0 : int;  (** origin arrival, bit-times *)
  ms_deadline : int;  (** absolute end-to-end deadline [T0 + d(M)] *)
  ms_finish : int option;  (** final-hop finish; [None] if undelivered *)
  ms_hop : string;  (** segment of the attributed hop *)
  ms_hop_index : int;  (** 0-based hop index on the flow's path *)
}

type verdict = {
  v_messages : int;  (** chains opened (origin arrivals of flow classes) *)
  v_delivered : int;  (** chains that completed every hop *)
  v_met : int;  (** delivered within the end-to-end deadline *)
  v_in_flight : int;
      (** undelivered chains whose deadline lies beyond the horizon *)
  v_misses : miss list;  (** everything else, attributed *)
}

type seg_result = {
  sr_segment : string;
  sr_outcome : Rtnet_stats.Run.outcome;
}

type result = {
  r_segments : seg_result list;  (** declaration order *)
  r_outcome : Rtnet_stats.Run.outcome;
      (** all segments merged ({!Rtnet_stats.Run.merge}) *)
  r_metrics : Rtnet_stats.Run.metrics;  (** scoreboard of the merge *)
  r_verdict : verdict;
  r_fingerprint : string;
      (** digest of every segment's completion schedule, declaration
          order — equal across [~domains] settings iff sharding is
          transparent *)
}

val run :
  ?domains:int ->
  ?check_lockstep:bool ->
  ?sink_for:(index:int -> segment:string -> Rtnet_telemetry.Sink.t) ->
  Admit.t ->
  traces:(string * Rtnet_workload.Message.t list) list ->
  horizon:int ->
  result
(** [run e ~traces ~horizon] simulates every segment over
    [\[0, horizon)].  [traces] carries one arrival trace per segment
    name, generated from the {b original} (declared) instances — the
    driver itself rewrites origin-class arrivals to the elaborated
    hop-0 classes and synthesizes the forwarded arrivals, so traces
    from elaborated instances would double-count.  [domains] (default
    1) caps the OCaml domains running one wavefront level concurrently;
    any value yields the same [r_fingerprint].  [sink_for] supplies a
    per-segment telemetry sink (index = declaration position); each
    sink is only ever touched by the one domain simulating its segment.
    @raise Invalid_argument if a segment has no trace. *)

val run_seeded :
  ?domains:int ->
  ?check_lockstep:bool ->
  ?sink_for:(index:int -> segment:string -> Rtnet_telemetry.Sink.t) ->
  Admit.t ->
  seed:int ->
  horizon:int ->
  result
(** [run_seeded e ~seed ~horizon] is {!run} on per-segment traces
    drawn from the declared instances with
    [Rtnet_util.Prng.derive seed i] (segment declaration index [i]) —
    one seed reproduces the whole federation. *)

val pp_verdict : Format.formatter -> verdict -> unit
