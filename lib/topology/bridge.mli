(** Bridge-queue overload analysis.

    A bridge is a store-and-forward station: frames of the flows
    crossing it arrive (complete upstream), wait [br_latency], and
    contend downstream as the bridge's own NP-EDF-ranked backlog.  The
    downstream segment's admission check already prices the forwarded
    classes' {e medium} contention; what it cannot see is whether the
    bridge's single transmit queue keeps up with the aggregate demand
    routed through it — a bridge relaying many flows can be the
    bottleneck even when every hop is feasible on the wire.

    The oracle: gather the forwarded classes a bridge injects
    downstream into a synthetic single-source instance and run the
    centralized NP-EDF schedulability test
    ({!Rtnet_edf.Np_edf_fc.check}) on it.  This is the exact demand
    a dedicated server draining the bridge's queue in EDF order could
    (not) sustain; a failed verdict means the relay itself is
    overloaded regardless of how generous the per-hop budgets are.
    The CFG-TOPO lint surfaces failed verdicts as errors. *)

type verdict = {
  bv_bridge : string;  (** bridge name *)
  bv_classes : int;  (** forwarded classes crossing it *)
  bv_utilization : float;  (** queue demand per unit time, [Σ a·l'/w] *)
  bv_feasible : bool;  (** NP-EDF demand-bound test passed *)
  bv_margin : float;  (** worst checkpoint ratio; [<= 1] iff feasible *)
  bv_crash_window : int;
      (** longest scheduled outage of the bridge station accounted for
          (0 unless [~fault_aware] and the downstream segment's plan
          crashes the station) *)
}

val check : ?fault_aware:bool -> Admit.t -> verdict list
(** [check e] runs the oracle for every bridge of the elaborated
    topology, in declaration order.  A bridge no flow crosses is
    trivially feasible ([bv_classes = 0], zero utilization).

    With [~fault_aware:true], each bridge's worst scheduled crash
    window [W] (per the downstream segment's fault plan, see
    {!Topo.segment.sg_fault}) is deducted from every forwarded class's
    deadline before the NP-EDF test: a queue that only keeps up when
    never interrupted is not admissible under the planned outage.  A
    class whose deadline [W] swallows entirely is reported infeasible
    with infinite margin. *)

val pp_verdict : Format.formatter -> verdict -> unit
