module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Decompose = Rtnet_core.Decompose
module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility

type hop = {
  h_segment : string;
  h_cls : Message.cls;
  h_budget : int;
  h_bound : float;
  h_feasible : bool;
  h_bridge : Topo.bridge option;
}

type eflow = {
  ef_flow : Topo.flow;
  ef_deadline : int;
  ef_hops : hop list;
  ef_error : string option;
  ef_admitted : bool;
}

type t = {
  e_topo : Topo.t;
  e_policy : Decompose.policy;
  e_order : string list;
  e_levels : string list list;
  e_instances : (string * Instance.t) list;
  e_params : (string * Ddcr_params.t) list;
  e_reports : (string * Feasibility.report) list;
  e_flows : eflow list;
  e_admitted : bool;
}

(* Static route of one flow, resolved once [Topo.route_errors] came
   back empty (so every lookup below is total). *)
type route = {
  rt_flow : Topo.flow;
  rt_origin_cls : Message.cls;
  rt_origin_law : Rtnet_workload.Arrival.law;
  rt_bridges : Topo.bridge list;  (* bridge into hop [i] at position [i-1] *)
}

let routes topo =
  List.map
    (fun (f : Topo.flow) ->
      let origin = List.hd f.Topo.fl_path in
      let seg = Option.get (Topo.find_segment topo origin) in
      let cls, law =
        List.find
          (fun (c, _) -> c.Message.cls_id = f.Topo.fl_cls)
          (Array.to_list seg.Topo.sg_instance.Instance.classes)
      in
      let rec bridges = function
        | a :: (b :: _ as rest) ->
          Option.get (Topo.find_bridge topo ~from_:a ~to_:b) :: bridges rest
        | [ _ ] | [] -> []
      in
      {
        rt_flow = f;
        rt_origin_cls = cls;
        rt_origin_law = law;
        rt_bridges = bridges f.Topo.fl_path;
      })
    topo.Topo.tp_flows

let delays rt = List.map (fun b -> b.Topo.br_latency) rt.rt_bridges

(* Provisional pass-1 split: whatever of [d(M)] remains after the
   bridge delays, divided equally (never below 1 per hop, so even a
   hopeless flow yields well-formed classes to price). *)
let equal_split ~k ~available =
  let available = max k available in
  let q = available / k and r = available mod k in
  List.init k (fun i -> q + if i < r then 1 else 0)

(* Elaborate the per-segment instances for the given per-flow budget
   vectors.  Returns the instances (declaration order) and the map
   [(flow name, hop index) -> (segment, elaborated class)].  Forwarded
   classes get fresh ids above the segment's maximum, assigned in flow
   declaration order, so elaboration is deterministic. *)
let build topo routed =
  let overrides = Hashtbl.create 8 in
  let additions = Hashtbl.create 8 in
  let add_addition seg x =
    let cur = Option.value ~default:[] (Hashtbl.find_opt additions seg) in
    Hashtbl.replace additions seg (x :: cur)
  in
  List.iter
    (fun (rt, budgets) ->
      let path = rt.rt_flow.Topo.fl_path in
      Hashtbl.replace overrides
        (List.hd path, rt.rt_origin_cls.Message.cls_id)
        (List.nth budgets 0);
      List.iteri
        (fun i seg ->
          if i > 0 then
            add_addition seg
              (rt, i, List.nth rt.rt_bridges (i - 1), List.nth budgets i))
        path)
    routed;
  let hop_cls = Hashtbl.create 8 in
  List.iter
    (fun (rt, budgets) ->
      let origin = List.hd rt.rt_flow.Topo.fl_path in
      let c =
        { rt.rt_origin_cls with Message.cls_deadline = List.nth budgets 0 }
      in
      Hashtbl.replace hop_cls (rt.rt_flow.Topo.fl_name, 0) (origin, c))
    routed;
  let instances =
    List.map
      (fun (s : Topo.segment) ->
        let name = s.Topo.sg_name in
        let base =
          List.map
            (fun (c, law) ->
              match Hashtbl.find_opt overrides (name, c.Message.cls_id) with
              | Some b -> ({ c with Message.cls_deadline = b }, law)
              | None -> (c, law))
            (Array.to_list s.Topo.sg_instance.Instance.classes)
        in
        let max_id =
          List.fold_left (fun acc (c, _) -> max acc c.Message.cls_id) (-1) base
        in
        let adds =
          List.mapi
            (fun k (rt, i, bridge, budget) ->
              let c =
                {
                  rt.rt_origin_cls with
                  Message.cls_id = max_id + 1 + k;
                  cls_name = rt.rt_flow.Topo.fl_name ^ "@" ^ name;
                  cls_source = bridge.Topo.br_station;
                  cls_deadline = budget;
                }
              in
              Hashtbl.replace hop_cls (rt.rt_flow.Topo.fl_name, i) (name, c);
              (c, rt.rt_origin_law))
            (List.rev (Option.value ~default:[] (Hashtbl.find_opt additions name)))
        in
        let num_sources =
          List.fold_left
            (fun acc (b : Topo.bridge) ->
              if b.Topo.br_to = name then max acc (b.Topo.br_station + 1)
              else acc)
            s.Topo.sg_instance.Instance.num_sources topo.Topo.tp_bridges
        in
        ( name,
          Instance.create_exn ~name ~phy:s.Topo.sg_instance.Instance.phy
            ~num_sources (base @ adds) ))
      topo.Topo.tp_segments
  in
  (instances, hop_cls)

let price instances =
  List.map
    (fun (name, inst) ->
      let p = Ddcr_params.default inst in
      (name, p, Feasibility.check p inst))
    instances

let class_report priced seg cls_id =
  let _, _, rep = List.find (fun (n, _, _) -> n = seg) priced in
  List.find
    (fun cr -> cr.Feasibility.cr_cls.Message.cls_id = cls_id)
    rep.Feasibility.per_class

let elaborate ?(policy = Decompose.Proportional) topo =
  match Topo.route_errors topo @ Topo.fault_errors topo with
  | _ :: _ as errs -> Error (String.concat "; " errs)
  | [] -> (
    match (Topo.toposort topo, Topo.levels topo) with
    | Error e, _ | _, Error e -> Error e
    | Ok order, Ok levels ->
      let provisional =
        List.map
          (fun rt ->
            let k = List.length rt.rt_flow.Topo.fl_path in
            let d = rt.rt_origin_cls.Message.cls_deadline in
            let avail = d - List.fold_left ( + ) 0 (delays rt) in
            (rt, equal_split ~k ~available:avail))
          (routes topo)
      in
      let insts1, hops1 = build topo provisional in
      let priced1 = price insts1 in
      let final =
        List.map
          (fun (rt, fallback) ->
            let bounds =
              List.mapi
                (fun i _ ->
                  let seg, c =
                    Hashtbl.find hops1 (rt.rt_flow.Topo.fl_name, i)
                  in
                  (class_report priced1 seg c.Message.cls_id)
                    .Feasibility.cr_bound)
                rt.rt_flow.Topo.fl_path
            in
            match
              Decompose.split ~policy
                ~deadline:rt.rt_origin_cls.Message.cls_deadline
                ~bridge_delays:(delays rt) ~bounds
            with
            | Ok budgets -> (rt, budgets, None)
            | Error e -> (rt, fallback, Some e))
          provisional
      in
      let insts2, hops2 =
        build topo (List.map (fun (rt, budgets, _) -> (rt, budgets)) final)
      in
      let priced2 = price insts2 in
      let e_flows =
        List.map
          (fun (rt, budgets, err) ->
            let hops =
              List.mapi
                (fun i _ ->
                  let seg, c =
                    Hashtbl.find hops2 (rt.rt_flow.Topo.fl_name, i)
                  in
                  let cr = class_report priced2 seg c.Message.cls_id in
                  {
                    h_segment = seg;
                    h_cls = c;
                    h_budget = List.nth budgets i;
                    h_bound = cr.Feasibility.cr_bound;
                    h_feasible = cr.Feasibility.cr_feasible;
                    h_bridge =
                      (if i = 0 then None
                       else Some (List.nth rt.rt_bridges (i - 1)));
                  })
                rt.rt_flow.Topo.fl_path
            in
            {
              ef_flow = rt.rt_flow;
              ef_deadline = rt.rt_origin_cls.Message.cls_deadline;
              ef_hops = hops;
              ef_error = err;
              ef_admitted =
                err = None && List.for_all (fun h -> h.h_feasible) hops;
            })
          final
      in
      Ok
        {
          e_topo = topo;
          e_policy = policy;
          e_order = order;
          e_levels = levels;
          e_instances = insts2;
          e_params = List.map (fun (n, p, _) -> (n, p)) priced2;
          e_reports = List.map (fun (n, _, r) -> (n, r)) priced2;
          e_flows;
          e_admitted = List.for_all (fun f -> f.ef_admitted) e_flows;
        })

let instance_of t name = List.assoc name t.e_instances
let params_of t name = List.assoc name t.e_params

let pp_report fmt t =
  Format.fprintf fmt "@[<v>topology %s: %s (decomposition %s)@,"
    t.e_topo.Topo.tp_name
    (if t.e_admitted then "ADMITTED" else "REJECTED")
    (Decompose.policy_label t.e_policy);
  List.iter
    (fun (name, rep) ->
      Format.fprintf fmt "  segment %-10s worst margin %6.3f  %s@," name
        rep.Feasibility.worst_margin
        (if rep.Feasibility.feasible then "feasible" else "INFEASIBLE"))
    t.e_reports;
  List.iter
    (fun f ->
      Format.fprintf fmt "  flow %s: d(M) = %d bit-times, %s@,"
        f.ef_flow.Topo.fl_name f.ef_deadline
        (if f.ef_admitted then "admitted" else "rejected");
      (match f.ef_error with
      | Some e -> Format.fprintf fmt "    decomposition failed: %s@," e
      | None -> ());
      List.iteri
        (fun i h ->
          Format.fprintf fmt
            "    hop %d on %-10s budget %8d  B_DDCR %10.1f  headroom %10.1f  \
             %s@,"
            i h.h_segment h.h_budget h.h_bound
            (float_of_int h.h_budget -. h.h_bound)
            (if h.h_feasible then "ok" else "OVER BUDGET");
          match h.h_bridge with
          | Some b ->
            Format.fprintf fmt "      via bridge %s (station %d, latency %d)@,"
              b.Topo.br_name b.Topo.br_station b.Topo.br_latency
          | None -> ())
        f.ef_hops)
    t.e_flows;
  Format.fprintf fmt "@]"
