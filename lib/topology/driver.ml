module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Run = Rtnet_stats.Run
module Ddcr = Rtnet_core.Ddcr
module Prng = Rtnet_util.Prng

type miss = {
  ms_flow : string;
  ms_uid : int;
  ms_t0 : int;
  ms_deadline : int;
  ms_finish : int option;
  ms_hop : string;
  ms_hop_index : int;
}

type verdict = {
  v_messages : int;
  v_delivered : int;
  v_met : int;
  v_in_flight : int;
  v_misses : miss list;
}

type seg_result = {
  sr_segment : string;
  sr_outcome : Run.outcome;
}

type result = {
  r_segments : seg_result list;
  r_outcome : Run.outcome;
  r_metrics : Run.metrics;
  r_verdict : verdict;
  r_fingerprint : string;
}

(* Static per-(segment, class) routing info, derived from the
   elaborated flows once per run. *)
type hop_info = {
  hi_flow : string;
  hi_idx : int;
  hi_e2e : int;  (* the flow's end-to-end relative deadline *)
  hi_cls : Message.cls;  (* elaborated class on this segment *)
  hi_next : (Topo.bridge * string * Message.cls) option;
}

(* A chain tracks one origin arrival across its hops. *)
type chain = {
  ch_flow : string;
  ch_uid : int;
  ch_t0 : int;
  ch_deadline : int;  (* absolute *)
  mutable ch_done : (int * string * int * int) list;
      (* (hop idx, segment, hop arrival, hop finish), reverse order *)
}

let arrival_order (a : Message.t) (b : Message.t) =
  match compare a.Message.arrival b.Message.arrival with
  | 0 -> compare a.Message.uid b.Message.uid
  | c -> c

let rec chunk n = function
  | [] -> []
  | xs ->
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let batch, rest = take n [] xs in
    batch :: chunk n rest

(* Run the thunks of one wavefront level, at most [domains] at a time.
   Each thunk owns all the mutable state it touches (its queue copy,
   its completion accumulator, its telemetry sink), so spawning them
   on separate domains is safe; everything cross-segment happens in
   the sequential coordinator between levels. *)
let run_batch ~domains thunks =
  if domains <= 1 then List.map (fun f -> f ()) thunks
  else
    List.concat_map
      (fun batch ->
        match batch with
        | [ f ] -> [ f () ]
        | fs -> List.map Domain.join (List.map Domain.spawn fs))
      (chunk domains thunks)

let run ?(domains = 1) ?check_lockstep ?sink_for (e : Admit.t) ~traces
    ~horizon =
  let topo = e.Admit.e_topo in
  let seg_names = List.map (fun s -> s.Topo.sg_name) topo.Topo.tp_segments in
  (* (segment, cls id) -> hop routing info *)
  let hops = Hashtbl.create 16 in
  List.iter
    (fun (f : Admit.eflow) ->
      let rec walk i = function
        | [] -> ()
        | (h : Admit.hop) :: rest ->
          let next =
            match rest with
            | [] -> None
            | nh :: _ ->
              Some
                ( Option.get nh.Admit.h_bridge,
                  nh.Admit.h_segment,
                  nh.Admit.h_cls )
          in
          Hashtbl.replace hops
            (h.Admit.h_segment, h.Admit.h_cls.Message.cls_id)
            {
              hi_flow = f.Admit.ef_flow.Topo.fl_name;
              hi_idx = i;
              hi_e2e = f.Admit.ef_deadline;
              hi_cls = h.Admit.h_cls;
              hi_next = next;
            };
          walk (i + 1) rest
      in
      walk 0 f.Admit.ef_hops)
    e.Admit.e_flows;
  (* Open one chain per origin arrival while rewriting the trace's
     origin-class messages to the elaborated hop-0 class (whose
     deadline is the hop budget — EDF ranking and per-hop miss
     accounting are budget-driven). *)
  let chains = Hashtbl.create 64 in
  let chain_keys = ref [] in
  let prepared =
    List.map
      (fun name ->
        let trace =
          try List.assoc name traces
          with Not_found ->
            invalid_arg
              (Printf.sprintf "Driver.run: no trace for segment %s" name)
        in
        let trace =
          List.map
            (fun (m : Message.t) ->
              match
                Hashtbl.find_opt hops (name, m.Message.cls.Message.cls_id)
              with
              | Some info when info.hi_idx = 0 ->
                let key = (info.hi_flow, m.Message.uid) in
                Hashtbl.replace chains key
                  {
                    ch_flow = info.hi_flow;
                    ch_uid = m.Message.uid;
                    ch_t0 = m.Message.arrival;
                    ch_deadline = m.Message.arrival + info.hi_e2e;
                    ch_done = [];
                  };
                chain_keys := key :: !chain_keys;
                { m with Message.cls = info.hi_cls }
              | Some _ | None -> m)
            trace
        in
        (name, trace))
      seg_names
  in
  let next_uid = Hashtbl.create 8 in
  List.iter
    (fun (name, trace) ->
      let top =
        List.fold_left (fun acc (m : Message.t) -> max acc m.Message.uid) (-1)
          trace
      in
      Hashtbl.replace next_uid name (ref (top + 1)))
    prepared;
  let fresh_uid name =
    let r = Hashtbl.find next_uid name in
    let u = !r in
    incr r;
    u
  in
  let pending = Hashtbl.create 8 in
  let pending_ref name =
    match Hashtbl.find_opt pending name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace pending name r;
      r
  in
  (* (segment, injected uid) -> chain key *)
  let injected = Hashtbl.create 64 in
  let outcomes = Hashtbl.create 8 in
  let seg_index =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i n -> Hashtbl.replace tbl n i) seg_names;
    fun n -> Hashtbl.find tbl n
  in
  let post_process name comps =
    let comps =
      List.sort
        (fun ((a : Message.t), fa) ((b : Message.t), fb) ->
          match compare fa fb with
          | 0 -> compare a.Message.uid b.Message.uid
          | c -> c)
        comps
    in
    List.iter
      (fun ((m : Message.t), finish) ->
        let info = Hashtbl.find hops (name, m.Message.cls.Message.cls_id) in
        let key =
          if info.hi_idx = 0 then (info.hi_flow, m.Message.uid)
          else Hashtbl.find injected (name, m.Message.uid)
        in
        let chain = Hashtbl.find chains key in
        chain.ch_done <-
          (info.hi_idx, name, m.Message.arrival, finish) :: chain.ch_done;
        match info.hi_next with
        | None -> ()
        | Some (bridge, next_seg, next_cls) ->
          let uid = fresh_uid next_seg in
          let m' =
            {
              Message.uid;
              cls = next_cls;
              arrival = finish + bridge.Topo.br_latency;
            }
          in
          Hashtbl.replace injected (next_seg, uid) key;
          let r = pending_ref next_seg in
          r := m' :: !r)
      comps
  in
  List.iter
    (fun level ->
      let jobs =
        List.map
          (fun name ->
            let inst = Admit.instance_of e name in
            let params = Admit.params_of e name in
            let trace = List.assoc name prepared in
            let pend0 = List.sort arrival_order !(pending_ref name) in
            let flow_ids =
              Hashtbl.fold
                (fun (s, id) _ acc -> if s = name then id :: acc else acc)
                hops []
            in
            let sink =
              Option.map
                (fun f -> f ~index:(seg_index name) ~segment:name)
                sink_for
            in
            let thunk () =
              let pend = ref pend0 in
              let inject ~now =
                let rec take acc = function
                  | (m : Message.t) :: rest when m.Message.arrival <= now ->
                    take (m :: acc) rest
                  | rest ->
                    pend := rest;
                    List.rev acc
                in
                take [] !pend
              in
              let comps = ref [] in
              let on_complete ~msg ~start:_ ~finish =
                if List.mem msg.Message.cls.Message.cls_id flow_ids then
                  comps := (msg, finish) :: !comps
              in
              let outcome =
                Ddcr.run_trace ?check_lockstep ?sink ~on_complete ~inject
                  params inst trace ~horizon
              in
              (outcome, List.rev !comps)
            in
            (name, thunk))
          level
      in
      let results = run_batch ~domains (List.map snd jobs) in
      List.iter2
        (fun (name, _) (outcome, comps) ->
          Hashtbl.replace outcomes name outcome;
          post_process name comps)
        jobs results)
    e.Admit.e_levels;
  (* End-to-end verdict, chains in deterministic (trace) order. *)
  let misses = ref [] in
  let delivered = ref 0 and met = ref 0 and in_flight = ref 0 in
  let keys = List.rev !chain_keys in
  List.iter
    (fun key ->
      let c = Hashtbl.find chains key in
      let ef =
        List.find
          (fun (f : Admit.eflow) -> f.Admit.ef_flow.Topo.fl_name = c.ch_flow)
          e.Admit.e_flows
      in
      let total = List.length ef.Admit.ef_hops in
      let done_ = List.sort compare (List.rev c.ch_done) in
      let miss ~finish ~hop ~idx =
        misses :=
          {
            ms_flow = c.ch_flow;
            ms_uid = c.ch_uid;
            ms_t0 = c.ch_t0;
            ms_deadline = c.ch_deadline;
            ms_finish = finish;
            ms_hop = hop;
            ms_hop_index = idx;
          }
          :: !misses
      in
      if List.length done_ = total then begin
        incr delivered;
        let _, _, _, finish = List.nth done_ (total - 1) in
        if finish <= c.ch_deadline then incr met
        else begin
          (* By the decomposition invariant a late chain overran some
             hop budget; attribute the miss to the first such hop. *)
          let over =
            List.find_opt
              (fun (idx, _, arr, fin) ->
                fin
                > arr + (List.nth ef.Admit.ef_hops idx).Admit.h_budget)
              done_
          in
          match over with
          | Some (idx, seg, _, _) -> miss ~finish:(Some finish) ~hop:seg ~idx
          | None ->
            let idx, seg, _, _ = List.nth done_ (total - 1) in
            miss ~finish:(Some finish) ~hop:seg ~idx
        end
      end
      else if c.ch_deadline >= horizon then incr in_flight
      else begin
        (* Hops complete strictly in path order, so the first
           un-completed hop is where the chain is stuck. *)
        let idx = List.length done_ in
        miss ~finish:None
          ~hop:(List.nth ef.Admit.ef_hops idx).Admit.h_segment ~idx
      end)
    keys;
  let seg_outcomes =
    List.map
      (fun n -> { sr_segment = n; sr_outcome = Hashtbl.find outcomes n })
      seg_names
  in
  let merged =
    Run.merge
      ~protocol:(Printf.sprintf "csma-ddcr/%d-seg" (List.length seg_names))
      ~horizon
      (List.map (fun sr -> sr.sr_outcome) seg_outcomes)
  in
  let fingerprint =
    let buf = Buffer.create 1024 in
    List.iter
      (fun sr ->
        Buffer.add_string buf sr.sr_segment;
        Buffer.add_char buf '\n';
        List.iter
          (fun (c : Run.completion) ->
            Buffer.add_string buf
              (Printf.sprintf "%d:%d:%d:%d\n"
                 c.Run.c_msg.Message.cls.Message.cls_id c.Run.c_msg.Message.uid
                 c.Run.c_start c.Run.c_finish))
          sr.sr_outcome.Run.completions)
      seg_outcomes;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  {
    r_segments = seg_outcomes;
    r_outcome = merged;
    r_metrics = Run.metrics merged;
    r_verdict =
      {
        v_messages = List.length keys;
        v_delivered = !delivered;
        v_met = !met;
        v_in_flight = !in_flight;
        v_misses = List.rev !misses;
      };
    r_fingerprint = fingerprint;
  }

let run_seeded ?domains ?check_lockstep ?sink_for (e : Admit.t) ~seed ~horizon
    =
  let traces =
    List.mapi
      (fun i (s : Topo.segment) ->
        ( s.Topo.sg_name,
          Instance.trace s.Topo.sg_instance ~seed:(Prng.derive seed i) ~horizon
        ))
      e.Admit.e_topo.Topo.tp_segments
  in
  run ?domains ?check_lockstep ?sink_for e ~traces ~horizon

let pp_verdict fmt v =
  Format.fprintf fmt
    "@[<v>flows: %d messages, %d delivered (%d in time), %d in flight past \
     the horizon, %d missed@,"
    v.v_messages v.v_delivered v.v_met v.v_in_flight
    (List.length v.v_misses);
  List.iter
    (fun m ->
      Format.fprintf fmt "  MISS %s uid %d: t0 %d, deadline %d, %s at hop %d (%s)@,"
        m.ms_flow m.ms_uid m.ms_t0 m.ms_deadline
        (match m.ms_finish with
        | Some f -> Printf.sprintf "finished %d" f
        | None -> "undelivered")
        m.ms_hop_index m.ms_hop)
    v.v_misses;
  Format.fprintf fmt "@]"
