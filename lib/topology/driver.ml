module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Run = Rtnet_stats.Run
module Ddcr = Rtnet_core.Ddcr
module Prng = Rtnet_util.Prng
module Fault_plan = Rtnet_channel.Fault_plan
module Decompose = Rtnet_core.Decompose

type miss = {
  ms_flow : string;
  ms_uid : int;
  ms_t0 : int;
  ms_deadline : int;
  ms_finish : int option;
  ms_hop : string;
  ms_hop_index : int;
  ms_fault : string option;
}

type bridge_drop = {
  bd_bridge : string;
  bd_flow : string;
  bd_uid : int;
  bd_at : int;
  bd_deadline : int;
}

type event =
  | Degraded of {
      dg_bridge : string;
      dg_segment : string;
      dg_from : int;
      dg_until : int;
    }
  | Shed of {
      sh_bridge : string;
      sh_flow : string;
      sh_uid : int;
      sh_at : int;
      sh_criticality : int;
    }
  | Restored of { rs_bridge : string; rs_at : int; rs_backlog : int }

type verdict = {
  v_messages : int;
  v_delivered : int;
  v_met : int;
  v_in_flight : int;
  v_shed : int;
  v_bridge_drops : bridge_drop list;
  v_misses : miss list;
}

type seg_result = {
  sr_segment : string;
  sr_outcome : Run.outcome;
}

type hop_record = {
  hr_index : int;
  hr_segment : string;
  hr_arrival : int;
  hr_start : int;
  hr_finish : int;
  hr_source : int;
}

type chain_record = {
  cr_flow : string;
  cr_uid : int;
  cr_t0 : int;
  cr_deadline : int;
  cr_fault : string option;
  cr_shed : bool;
  cr_dropped : bool;
  cr_hops : hop_record list;
}

type result = {
  r_segments : seg_result list;
  r_outcome : Run.outcome;
  r_metrics : Run.metrics;
  r_verdict : verdict;
  r_events : event list;
  r_chains : chain_record list;
  r_fingerprint : string;
}

(* How many backlogged messages a revived bridge may release per
   [br_latency] interval — the bounded catch-up burst that keeps a
   long-crashed bridge from slamming its whole queue into one
   downstream contention window. *)
let catchup_burst = 4

(* Static per-(segment, class) routing info, derived from the
   elaborated flows once per run. *)
type hop_info = {
  hi_flow : string;
  hi_idx : int;
  hi_e2e : int;  (* the flow's end-to-end relative deadline *)
  hi_cls : Message.cls;  (* elaborated class on this segment *)
  hi_next : (Topo.bridge * string * Message.cls) option;
}

(* A chain tracks one origin arrival across its hops. *)
type chain = {
  ch_flow : string;
  ch_uid : int;
  ch_t0 : int;
  ch_deadline : int;  (* absolute *)
  mutable ch_done : (int * string * int * int * int * int) list;
      (* (hop idx, segment, hop arrival, frame start, hop finish,
         transmitting station), reverse order *)
  mutable ch_fault : string option;
      (* first bridge whose crash window held this chain *)
  mutable ch_shed : bool;  (* shed under degraded-mode operation *)
  mutable ch_dropped : bool;  (* lost to a bridge-queue overflow *)
}

(* A message held in a crashed bridge's store-and-forward queue. *)
type held = {
  hd_key : string * int;  (* chain key *)
  hd_ready : int;  (* finish + br_latency, inside the window *)
  hd_seg : string;  (* downstream segment *)
  hd_cls : Message.cls;  (* forwarded class there *)
  hd_next_idx : int;  (* hop index the release would start *)
}

let arrival_order (a : Message.t) (b : Message.t) =
  match compare a.Message.arrival b.Message.arrival with
  | 0 -> compare a.Message.uid b.Message.uid
  | c -> c

let rec chunk n = function
  | [] -> []
  | xs ->
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let batch, rest = take n [] xs in
    batch :: chunk n rest

(* Run the thunks of one wavefront level, at most [domains] at a time.
   Each thunk owns all the mutable state it touches (its queue copy,
   its completion accumulator, its telemetry sink), so spawning them
   on separate domains is safe; everything cross-segment happens in
   the sequential coordinator between levels. *)
let run_batch ~domains thunks =
  if domains <= 1 then List.map (fun f -> f ()) thunks
  else
    List.concat_map
      (fun batch ->
        match batch with
        | [ f ] -> [ f () ]
        | fs -> List.map Domain.join (List.map Domain.spawn fs))
      (chunk domains thunks)

exception Driver_error of string

let run_exn ~domains ?check_lockstep ?sink_for ~fault_seed (e : Admit.t)
    ~traces ~horizon =
  let topo = e.Admit.e_topo in
  let seg_names = List.map (fun s -> s.Topo.sg_name) topo.Topo.tp_segments in
  (match Topo.fault_errors topo with
  | [] -> ()
  | errs -> raise (Driver_error (String.concat "; " errs)));
  (* (segment, cls id) -> hop routing info *)
  let hops = Hashtbl.create 16 in
  List.iter
    (fun (f : Admit.eflow) ->
      let rec walk i = function
        | [] -> ()
        | (h : Admit.hop) :: rest ->
          let next =
            match rest with
            | [] -> None
            | nh :: _ ->
              Some
                ( Option.get nh.Admit.h_bridge,
                  nh.Admit.h_segment,
                  nh.Admit.h_cls )
          in
          Hashtbl.replace hops
            (h.Admit.h_segment, h.Admit.h_cls.Message.cls_id)
            {
              hi_flow = f.Admit.ef_flow.Topo.fl_name;
              hi_idx = i;
              hi_e2e = f.Admit.ef_deadline;
              hi_cls = h.Admit.h_cls;
              hi_next = next;
            };
          walk (i + 1) rest
      in
      walk 0 f.Admit.ef_hops)
    e.Admit.e_flows;
  (* Open one chain per origin arrival while rewriting the trace's
     origin-class messages to the elaborated hop-0 class (whose
     deadline is the hop budget — EDF ranking and per-hop miss
     accounting are budget-driven). *)
  let chains = Hashtbl.create 64 in
  let chain_keys = ref [] in
  let prepared =
    List.map
      (fun name ->
        let trace =
          try List.assoc name traces
          with Not_found ->
            raise
              (Driver_error
                 (Printf.sprintf "Driver.run: no trace for segment %s" name))
        in
        let trace =
          List.map
            (fun (m : Message.t) ->
              match
                Hashtbl.find_opt hops (name, m.Message.cls.Message.cls_id)
              with
              | Some info when info.hi_idx = 0 ->
                let key = (info.hi_flow, m.Message.uid) in
                Hashtbl.replace chains key
                  {
                    ch_flow = info.hi_flow;
                    ch_uid = m.Message.uid;
                    ch_t0 = m.Message.arrival;
                    ch_deadline = m.Message.arrival + info.hi_e2e;
                    ch_done = [];
                    ch_fault = None;
                    ch_shed = false;
                    ch_dropped = false;
                  };
                chain_keys := key :: !chain_keys;
                { m with Message.cls = info.hi_cls }
              | Some _ | None -> m)
            trace
        in
        (name, trace))
      seg_names
  in
  let next_uid = Hashtbl.create 8 in
  List.iter
    (fun (name, trace) ->
      let top =
        List.fold_left (fun acc (m : Message.t) -> max acc m.Message.uid) (-1)
          trace
      in
      Hashtbl.replace next_uid name (ref (top + 1)))
    prepared;
  let fresh_uid name =
    let r = Hashtbl.find next_uid name in
    let u = !r in
    incr r;
    u
  in
  let pending = Hashtbl.create 8 in
  let pending_ref name =
    match Hashtbl.find_opt pending name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace pending name r;
      r
  in
  (* (segment, injected uid) -> chain key *)
  let injected = Hashtbl.create 64 in
  let outcomes = Hashtbl.create 8 in
  let seg_index =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i n -> Hashtbl.replace tbl n i) seg_names;
    fun n -> Hashtbl.find tbl n
  in
  (* Fault machinery.  A crash window of a bridge's station (in the
     downstream segment's plan) takes the bridge's store-and-forward
     queue offline: hand-offs whose ready time falls inside the window
     are held, then drained at revival in NP-EDF order under a bounded
     catch-up burst.  With no fault plans every table below stays
     empty and the hand-off path is bit-identical to the fault-free
     driver. *)
  let plan_of_segment nm =
    match Topo.find_segment topo nm with
    | Some s -> s.Topo.sg_fault
    | None -> None
  in
  let bridge_windows (b : Topo.bridge) =
    match plan_of_segment b.Topo.br_to with
    | None -> []
    | Some sp ->
      List.sort
        (fun (a : Fault_plan.crash_window) b ->
          compare a.Fault_plan.cw_from b.Fault_plan.cw_from)
        (List.filter
           (fun (w : Fault_plan.crash_window) -> w.Fault_plan.cw_from < horizon)
           (Fault_plan.crashes_of sp ~source:b.Topo.br_station))
  in
  let criticality_of flow =
    match List.find_opt (fun f -> f.Topo.fl_name = flow) topo.Topo.tp_flows with
    | Some f -> f.Topo.fl_criticality
    | None -> 0
  in
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let drops = ref [] in
  let shed_count = ref 0 in
  (* Can the chain still meet its end-to-end deadline if released at
     [at], per a fresh slack-weighted re-decomposition of the remaining
     hops?  (The budget must cover the remaining hop bounds plus the
     remaining bridge delays — [at] already includes this bridge's
     latency.) *)
  let still_feasible chain ~at ~next_idx =
    let ef =
      List.find
        (fun (f : Admit.eflow) -> f.Admit.ef_flow.Topo.fl_name = chain.ch_flow)
        e.Admit.e_flows
    in
    let remaining =
      List.filteri (fun i _ -> i >= next_idx) ef.Admit.ef_hops
    in
    let bounds = List.map (fun (h : Admit.hop) -> h.Admit.h_bound) remaining in
    let bridge_delays =
      match remaining with
      | [] | [ _ ] -> []
      | _ :: tl ->
        List.map
          (fun (h : Admit.hop) ->
            (Option.get h.Admit.h_bridge).Topo.br_latency)
          tl
    in
    let deadline = chain.ch_deadline - at in
    deadline > 0 && remaining <> []
    && Result.is_ok
         (Decompose.split ~policy:Decompose.Slack_weighted ~deadline
            ~bridge_delays ~bounds)
  in
  (* (bridge name, window start) -> held messages, arrival order *)
  let backlog = Hashtbl.create 8 in
  let backlog_ref k =
    match Hashtbl.find_opt backlog k with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace backlog k r;
      r
  in
  (* Drain one revived bridge queue: EDF order, overflow drops
     (oldest-past-deadline first, then least-urgent), degraded-mode
     shedding of chains whose remaining budget no longer decomposes,
     and a catch-up burst of [catchup_burst] releases per [br_latency]
     for the survivors. *)
  let drain_window (b : Topo.bridge) (w : Fault_plan.crash_window) entries =
    let until = w.Fault_plan.cw_until in
    emit
      (Degraded
         {
           dg_bridge = b.Topo.br_name;
           dg_segment = b.Topo.br_to;
           dg_from = w.Fault_plan.cw_from;
           dg_until = until;
         });
    let chain_of en = Hashtbl.find chains en.hd_key in
    let edf =
      List.sort
        (fun a b ->
          let ca = chain_of a and cb = chain_of b in
          match compare ca.ch_deadline cb.ch_deadline with
          | 0 -> (
            match compare a.hd_ready b.hd_ready with
            | 0 -> compare ca.ch_uid cb.ch_uid
            | c -> c)
          | c -> c)
        entries
    in
    let total = List.length edf in
    (* Overflow: the queue held more than br_capacity messages while
       parked.  Drop the oldest already-hopeless messages first; if
       that is not enough, the least urgent survivors go. *)
    let kept =
      if total <= b.Topo.br_capacity then edf
      else begin
        let overflow = total - b.Topo.br_capacity in
        let past, live =
          List.partition (fun en -> (chain_of en).ch_deadline < until) edf
        in
        let oldest_first =
          List.sort
            (fun a b ->
              match compare a.hd_ready b.hd_ready with
              | 0 -> compare (chain_of a).ch_uid (chain_of b).ch_uid
              | c -> c)
            past
        in
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        let victims = take overflow oldest_first in
        let victims =
          if List.length victims >= overflow then victims
          else
            victims
            @ take
                (overflow - List.length victims)
                (List.rev live (* least urgent = latest deadline *))
        in
        List.iter
          (fun en ->
            let c = chain_of en in
            c.ch_dropped <- true;
            drops :=
              {
                bd_bridge = b.Topo.br_name;
                bd_flow = c.ch_flow;
                bd_uid = c.ch_uid;
                bd_at = until;
                bd_deadline = c.ch_deadline;
              }
              :: !drops)
          victims;
        List.filter (fun en -> not (chain_of en).ch_dropped) edf
      end
    in
    (* Degraded mode: re-decompose each survivor's remaining budget at
       the revival instant; chains that no longer fit are shed,
       lowest criticality first. *)
    let feasible, infeasible =
      List.partition
        (fun en -> still_feasible (chain_of en) ~at:until ~next_idx:en.hd_next_idx)
        kept
    in
    List.iter
      (fun en ->
        let c = chain_of en in
        c.ch_shed <- true;
        incr shed_count)
      infeasible;
    List.iter
      (fun en ->
        let c = chain_of en in
        emit
          (Shed
             {
               sh_bridge = b.Topo.br_name;
               sh_flow = c.ch_flow;
               sh_uid = c.ch_uid;
               sh_at = until;
               sh_criticality = criticality_of c.ch_flow;
             }))
      (List.sort
         (fun a b ->
           let ca = chain_of a and cb = chain_of b in
           match
             compare (criticality_of ca.ch_flow) (criticality_of cb.ch_flow)
           with
           | 0 -> compare ca.ch_uid cb.ch_uid
           | c -> c)
         infeasible);
    let quantum = max b.Topo.br_latency 1 in
    List.iteri
      (fun rank en ->
        let release = until + (rank / catchup_burst * quantum) in
        let uid = fresh_uid en.hd_seg in
        Hashtbl.replace injected (en.hd_seg, uid) en.hd_key;
        let r = pending_ref en.hd_seg in
        r := { Message.uid; cls = en.hd_cls; arrival = release } :: !r)
      feasible;
    emit
      (Restored { rs_bridge = b.Topo.br_name; rs_at = until; rs_backlog = total })
  in
  let post_process name comps =
    let comps =
      List.sort
        (fun ((a : Message.t), _, fa) ((b : Message.t), _, fb) ->
          match compare fa fb with
          | 0 -> compare a.Message.uid b.Message.uid
          | c -> c)
        comps
    in
    List.iter
      (fun ((m : Message.t), start, finish) ->
        let info = Hashtbl.find hops (name, m.Message.cls.Message.cls_id) in
        let key =
          if info.hi_idx = 0 then (info.hi_flow, m.Message.uid)
          else
            try Hashtbl.find injected (name, m.Message.uid)
            with Not_found ->
              raise
                (Driver_error
                   (Printf.sprintf
                      "Driver.run: malformed cross-segment hand-off (segment \
                       %s, class %d, uid %d has no upstream chain)"
                      name m.Message.cls.Message.cls_id m.Message.uid))
        in
        let chain = Hashtbl.find chains key in
        chain.ch_done <-
          ( info.hi_idx,
            name,
            m.Message.arrival,
            start,
            finish,
            m.Message.cls.Message.cls_source )
          :: chain.ch_done;
        match info.hi_next with
        | None -> ()
        | Some (bridge, next_seg, next_cls) -> (
          let ready = finish + bridge.Topo.br_latency in
          let outage =
            List.find_opt
              (fun (w : Fault_plan.crash_window) ->
                ready >= w.Fault_plan.cw_from && ready < w.Fault_plan.cw_until)
              (bridge_windows bridge)
          in
          match outage with
          | None ->
            let uid = fresh_uid next_seg in
            let m' = { Message.uid; cls = next_cls; arrival = ready } in
            Hashtbl.replace injected (next_seg, uid) key;
            let r = pending_ref next_seg in
            r := m' :: !r
          | Some w ->
            if chain.ch_fault = None then
              chain.ch_fault <- Some bridge.Topo.br_name;
            let r =
              backlog_ref (bridge.Topo.br_name, w.Fault_plan.cw_from)
            in
            r :=
              {
                hd_key = key;
                hd_ready = ready;
                hd_seg = next_seg;
                hd_cls = next_cls;
                hd_next_idx = info.hi_idx + 1;
              }
              :: !r))
      comps;
    (* Revive this segment's outgoing bridges: all hand-offs a window
       can hold are known once the upstream segment completed (its
       whole horizon ran), so each (bridge, window) drains exactly
       once, in declaration/chronological order. *)
    List.iter
      (fun (b : Topo.bridge) ->
        if b.Topo.br_from = name then
          List.iter
            (fun (w : Fault_plan.crash_window) ->
              let entries =
                match
                  Hashtbl.find_opt backlog (b.Topo.br_name, w.Fault_plan.cw_from)
                with
                | Some r -> List.rev !r
                | None -> []
              in
              drain_window b w entries)
            (bridge_windows b))
      topo.Topo.tp_bridges
  in
  List.iter
    (fun level ->
      let jobs =
        List.map
          (fun name ->
            let inst = Admit.instance_of e name in
            let params = Admit.params_of e name in
            (* Per-segment fault sampler, seeded protocol-blind from
               the run's fault seed and the segment's declaration
               index — the schedule is a property of the (topology,
               seed) pair, never of the protocol under test. *)
            let plan =
              Option.map
                (fun sp ->
                  Fault_plan.create ~horizon
                    ~seed:(Prng.derive fault_seed (seg_index name))
                    sp)
                (plan_of_segment name)
            in
            let trace = List.assoc name prepared in
            let pend0 = List.sort arrival_order !(pending_ref name) in
            let flow_ids =
              Hashtbl.fold
                (fun (s, id) _ acc -> if s = name then id :: acc else acc)
                hops []
            in
            let sink =
              Option.map
                (fun f -> f ~index:(seg_index name) ~segment:name)
                sink_for
            in
            let thunk () =
              let pend = ref pend0 in
              let inject ~now =
                let rec take acc = function
                  | (m : Message.t) :: rest when m.Message.arrival <= now ->
                    take (m :: acc) rest
                  | rest ->
                    pend := rest;
                    List.rev acc
                in
                take [] !pend
              in
              let comps = ref [] in
              let on_complete ~msg ~start ~finish =
                if List.mem msg.Message.cls.Message.cls_id flow_ids then
                  comps := (msg, start, finish) :: !comps
              in
              let outcome =
                Ddcr.run_trace ?check_lockstep ?plan ?sink ~on_complete ~inject
                  params inst trace ~horizon
              in
              (outcome, List.rev !comps)
            in
            (name, thunk))
          level
      in
      let results = run_batch ~domains (List.map snd jobs) in
      List.iter2
        (fun (name, _) (outcome, comps) ->
          Hashtbl.replace outcomes name outcome;
          post_process name comps)
        jobs results)
    e.Admit.e_levels;
  (* End-to-end verdict, chains in deterministic (trace) order. *)
  let misses = ref [] in
  let delivered = ref 0 and met = ref 0 and in_flight = ref 0 in
  let keys = List.rev !chain_keys in
  List.iter
    (fun key ->
      let c = Hashtbl.find chains key in
      if c.ch_shed || c.ch_dropped then ()
      else
      let ef =
        List.find
          (fun (f : Admit.eflow) -> f.Admit.ef_flow.Topo.fl_name = c.ch_flow)
          e.Admit.e_flows
      in
      let total = List.length ef.Admit.ef_hops in
      let done_ = List.sort compare (List.rev c.ch_done) in
      let miss ~finish ~hop ~idx =
        (* A held chain's miss is the crashed bridge's fault; otherwise
           a miss on a fault-injected segment is attributed to that
           segment's epochs.  [None] = a genuine (fault-free) overrun. *)
        let fault =
          match c.ch_fault with
          | Some _ as f -> f
          | None -> (
            match Topo.find_segment topo hop with
            | Some { Topo.sg_fault = Some _; _ } -> Some hop
            | Some _ | None -> None)
        in
        misses :=
          {
            ms_flow = c.ch_flow;
            ms_uid = c.ch_uid;
            ms_t0 = c.ch_t0;
            ms_deadline = c.ch_deadline;
            ms_finish = finish;
            ms_hop = hop;
            ms_hop_index = idx;
            ms_fault = fault;
          }
          :: !misses
      in
      if List.length done_ = total then begin
        incr delivered;
        let _, _, _, _, finish, _ = List.nth done_ (total - 1) in
        if finish <= c.ch_deadline then incr met
        else begin
          (* By the decomposition invariant a late chain overran some
             hop budget; attribute the miss to the first such hop. *)
          let over =
            List.find_opt
              (fun (idx, _, arr, _, fin, _) ->
                fin
                > arr + (List.nth ef.Admit.ef_hops idx).Admit.h_budget)
              done_
          in
          match over with
          | Some (idx, seg, _, _, _, _) -> miss ~finish:(Some finish) ~hop:seg ~idx
          | None ->
            let idx, seg, _, _, _, _ = List.nth done_ (total - 1) in
            miss ~finish:(Some finish) ~hop:seg ~idx
        end
      end
      else if c.ch_deadline >= horizon then incr in_flight
      else begin
        (* Hops complete strictly in path order, so the first
           un-completed hop is where the chain is stuck. *)
        let idx = List.length done_ in
        miss ~finish:None
          ~hop:(List.nth ef.Admit.ef_hops idx).Admit.h_segment ~idx
      end)
    keys;
  (* Deterministic per-chain hop records (trace order), for causal
     tracing and postmortem artifacts. *)
  let chain_records =
    List.map
      (fun key ->
        let c = Hashtbl.find chains key in
        {
          cr_flow = c.ch_flow;
          cr_uid = c.ch_uid;
          cr_t0 = c.ch_t0;
          cr_deadline = c.ch_deadline;
          cr_fault = c.ch_fault;
          cr_shed = c.ch_shed;
          cr_dropped = c.ch_dropped;
          cr_hops =
            List.map
              (fun (idx, seg, arr, start, fin, src) ->
                {
                  hr_index = idx;
                  hr_segment = seg;
                  hr_arrival = arr;
                  hr_start = start;
                  hr_finish = fin;
                  hr_source = src;
                })
              (List.sort compare (List.rev c.ch_done));
        })
      keys
  in
  let seg_outcomes =
    List.map
      (fun n -> { sr_segment = n; sr_outcome = Hashtbl.find outcomes n })
      seg_names
  in
  let merged =
    Run.merge
      ~protocol:(Printf.sprintf "csma-ddcr/%d-seg" (List.length seg_names))
      ~horizon
      (List.map (fun sr -> sr.sr_outcome) seg_outcomes)
  in
  let fingerprint =
    let buf = Buffer.create 1024 in
    List.iter
      (fun sr ->
        Buffer.add_string buf sr.sr_segment;
        Buffer.add_char buf '\n';
        List.iter
          (fun (c : Run.completion) ->
            Buffer.add_string buf
              (Printf.sprintf "%d:%d:%d:%d\n"
                 c.Run.c_msg.Message.cls.Message.cls_id c.Run.c_msg.Message.uid
                 c.Run.c_start c.Run.c_finish))
          sr.sr_outcome.Run.completions)
      seg_outcomes;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  {
    r_segments = seg_outcomes;
    r_outcome = merged;
    r_metrics = Run.metrics merged;
    r_verdict =
      {
        v_messages = List.length keys;
        v_delivered = !delivered;
        v_met = !met;
        v_in_flight = !in_flight;
        v_shed = !shed_count;
        v_bridge_drops = List.rev !drops;
        v_misses = List.rev !misses;
      };
    r_events = List.rev !events;
    r_chains = chain_records;
    r_fingerprint = fingerprint;
  }

(* Structured-error front door: configuration-level failures (missing
   trace, malformed hand-off, a fault plan the sampler rejects) come
   back as [Error msg] for the CLI to print and exit 2 on.  Protocol
   exceptions ([Harness.Mismatch], [Ddcr.Protocol_violation]) still
   propagate — they are run verdicts, not configuration diagnostics,
   and the chaos layer classifies them. *)
let run ?(domains = 1) ?check_lockstep ?sink_for ?(fault_seed = 0)
    (e : Admit.t) ~traces ~horizon =
  try
    Ok (run_exn ~domains ?check_lockstep ?sink_for ~fault_seed e ~traces ~horizon)
  with
  | Driver_error msg -> Error msg
  | Invalid_argument msg | Failure msg -> Error msg

let run_seeded ?domains ?check_lockstep ?sink_for ?fault_seed (e : Admit.t)
    ~seed ~horizon =
  let traces =
    List.mapi
      (fun i (s : Topo.segment) ->
        ( s.Topo.sg_name,
          Instance.trace s.Topo.sg_instance ~seed:(Prng.derive seed i) ~horizon
        ))
      e.Admit.e_topo.Topo.tp_segments
  in
  (* Unless pinned, the fault streams derive from the same run seed as
     the traces, through a disjoint branch — one seed reproduces the
     whole federation, faults included. *)
  let fault_seed =
    match fault_seed with Some s -> s | None -> Prng.derive seed 0xFA
  in
  run ?domains ?check_lockstep ?sink_for ~fault_seed e ~traces ~horizon

let pp_verdict fmt v =
  Format.fprintf fmt
    "@[<v>flows: %d messages, %d delivered (%d in time), %d in flight past \
     the horizon, %d missed%s@,"
    v.v_messages v.v_delivered v.v_met v.v_in_flight
    (List.length v.v_misses)
    (if v.v_shed = 0 && v.v_bridge_drops = [] then ""
     else
       Printf.sprintf ", %d shed, %d dropped at bridges" v.v_shed
         (List.length v.v_bridge_drops));
  List.iter
    (fun m ->
      Format.fprintf fmt "  MISS %s uid %d: t0 %d, deadline %d, %s at hop %d (%s)%s@,"
        m.ms_flow m.ms_uid m.ms_t0 m.ms_deadline
        (match m.ms_finish with
        | Some f -> Printf.sprintf "finished %d" f
        | None -> "undelivered")
        m.ms_hop_index m.ms_hop
        (match m.ms_fault with
        | Some f -> Printf.sprintf " [fault: %s]" f
        | None -> ""))
    v.v_misses;
  List.iter
    (fun d ->
      Format.fprintf fmt
        "  DROP %s uid %d: deadline %d, overflowed bridge %s at %d@," d.bd_flow
        d.bd_uid d.bd_deadline d.bd_bridge d.bd_at)
    v.v_bridge_drops;
  Format.fprintf fmt "@]"

let pp_event fmt = function
  | Degraded { dg_bridge; dg_segment; dg_from; dg_until } ->
    Format.fprintf fmt "DEGRADED bridge %s (segment %s) down [%d, %d)"
      dg_bridge dg_segment dg_from dg_until
  | Shed { sh_bridge; sh_flow; sh_uid; sh_at; sh_criticality } ->
    Format.fprintf fmt
      "SHED     %s uid %d (criticality %d) at %d: bridge %s backlog no \
       longer decomposes"
      sh_flow sh_uid sh_criticality sh_at sh_bridge
  | Restored { rs_bridge; rs_at; rs_backlog } ->
    Format.fprintf fmt "RESTORED bridge %s at %d, draining %d held message%s"
      rs_bridge rs_at rs_backlog
      (if rs_backlog = 1 then "" else "s")
