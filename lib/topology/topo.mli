(** Declarative multi-hop topologies of DDCR segments.

    The paper proves deadline bounds for {e one} broadcast segment of
    [z] sources; scaling beyond [z] means federating segments.  A
    {!t} describes such a federation:

    - {b segments} — independent broadcast media, each with its own
      HRTDM instance (sources, message classes, arrival laws);
    - {b bridges} — store-and-forward relay stations: a bridge listens
      on its [br_from] segment (broadcast reception is free on a
      shared medium) and re-transmits, as station [br_station] of the
      [br_to] segment, the frames of flows routed across it, after a
      fixed relaying delay [br_latency];
    - {b flows} — end-to-end traffic: a message class of the first
      path segment whose arrivals must reach the last path segment
      within the class's relative deadline [d(M)].

    The bridge graph must be acyclic (checked by {!toposort}); the
    driver exploits the DAG to run segments wavefront-by-wavefront,
    which is observationally equivalent to slot-lockstep because
    frames only ever travel {e down} the DAG.

    Values can be built programmatically ({!create}, {!tree},
    {!of_assignment}) or loaded from a JSON spec ({!of_json}) whose
    segments carry declarative workload descriptors (the same scenario
    kinds the campaign layer uses). *)

type workload = {
  wk_kind : string;
      (** scenario kind: videoconference | atc | trading | atm |
          manufacturing | skewed | uniform *)
  wk_size : int;  (** stations / radars / gateways / ... *)
  wk_load : float;  (** peak offered load (uniform only) *)
  wk_deadline_windows : float;  (** relative deadline in windows (uniform only) *)
}
(** Declarative per-segment workload, mirroring the campaign scenario
    dispatch so JSON topology specs and campaign sweeps describe
    traffic identically. *)

type segment = {
  sg_name : string;  (** unique segment name *)
  sg_instance : Rtnet_workload.Instance.t;  (** local traffic *)
  sg_workload : workload option;
      (** the descriptor the instance was built from, when it was —
          required to serialize the topology back to JSON *)
  sg_fault : Rtnet_channel.Fault_plan.spec option;
      (** the segment's fault plan, if any: garbling, misperception and
          crash windows local to this broadcast medium.  A crash window
          naming a bridge's [br_station] models that {e bridge} going
          down (see {!fault_errors}).  Sampler seeds are derived
          protocol-blind by the driver from the run seed and the
          segment's declaration index. *)
}

type bridge = {
  br_name : string;  (** unique bridge name *)
  br_from : string;  (** upstream segment (the bridge listens here) *)
  br_to : string;  (** downstream segment (the bridge transmits here) *)
  br_station : int;
      (** the bridge's station id on [br_to] — an {e additional}
          station when [>= num_sources] (the elaborated instance
          grows), or a double-duty existing one *)
  br_latency : int;  (** fixed store-and-forward delay, bit-times *)
  br_capacity : int;
      (** store-and-forward queue depth, messages ([>= 1], default 64).
          While the bridge is crashed the queue stops draining; held
          messages beyond this bound are dropped oldest-past-deadline
          first and surface as a [Bridge_overflow] verdict. *)
}

type flow = {
  fl_name : string;  (** unique flow name *)
  fl_cls : int;  (** class id on the first path segment *)
  fl_path : string list;
      (** hop path, at least 2 segment names; consecutive hops must be
          joined by a bridge *)
  fl_criticality : int;
      (** shedding priority under degraded-mode operation: when a
          revived bridge's backlog cannot be re-decomposed feasibly,
          flows are shed lowest-criticality-first (default 0) *)
}

val default_capacity : int
(** Default [br_capacity] (64 messages); the JSON codec omits the
    [capacity] key at this value so pre-fault specs round-trip
    byte-identically. *)

type t = {
  tp_name : string;
  tp_segments : segment list;
  tp_bridges : bridge list;
  tp_flows : flow list;
}

val workload_instance : workload -> (Rtnet_workload.Instance.t, string) result
(** [workload_instance wk] builds the segment instance from the
    descriptor — the same dispatch the campaign layer applies to its
    scenarios. *)

val segment_of_workload : name:string -> workload -> (segment, string) result
(** [segment_of_workload ~name wk] is {!workload_instance} relabelled
    with the segment name. *)

val create :
  name:string ->
  segments:segment list ->
  bridges:bridge list ->
  flows:flow list ->
  (t, string) result
(** [create ~name ~segments ~bridges ~flows] validates the {e shape}:
    non-empty segment list, unique segment / bridge / flow names,
    bridge endpoints naming existing distinct segments, at most one
    bridge per [(from, to)] pair, non-negative station ids and
    latencies.  Routing problems (unknown path segments, missing
    bridges, cycles, shared origin classes) are deliberately {e not}
    rejected here — they are reported granularly by {!route_errors} /
    {!toposort} so the CFG-TOPO lint can diagnose them. *)

val create_exn :
  name:string ->
  segments:segment list ->
  bridges:bridge list ->
  flows:flow list ->
  t
(** {!create} or @raise Invalid_argument. *)

val find_segment : t -> string -> segment option
val find_bridge : t -> from_:string -> to_:string -> bridge option

val toposort : t -> (string list, string) result
(** [toposort t] orders segment names upstream-first along the bridge
    graph (stable: ties keep declaration order), or reports a cycle
    by naming the segments involved. *)

val levels : t -> (string list list, string) result
(** [levels t] groups the topological order into wavefronts: level [k]
    holds the segments whose longest bridge path from a root has [k]
    edges.  All segments of one level are independent (no bridge joins
    them, transitively through earlier levels only) and can be
    simulated in parallel once levels [< k] completed. *)

val route_errors : t -> string list
(** [route_errors t] checks every flow's route: path length [>= 2],
    known and non-repeating path segments, an existing bridge for each
    consecutive hop pair, an existing origin class, and no two flows
    sharing an origin class.  Returns one message per problem (empty =
    routable). *)

val with_faults :
  t -> (string * Rtnet_channel.Fault_plan.spec) list -> (t, string) result
(** [with_faults t plans] attaches each [(segment, spec)] to its
    segment, {!Rtnet_channel.Fault_plan.compose}-overlaying onto any
    plan already present.  [Error] if a pair names an unknown segment.
    Station validity is {e not} checked here — see {!fault_errors}. *)

val fault_errors : t -> string list
(** [fault_errors t] checks every segment's fault plan: the spec itself
    must {!Rtnet_channel.Fault_plan.validate}, and each crash window's
    [cw_source] must be a station that exists on that segment — a
    declared source or an incoming bridge's [br_station].  One message
    per problem (empty = fault-clean), mirroring {!route_errors};
    surfaced as CFG-TOPO-FAULT by the lint and rejected by
    [Admit.elaborate]. *)

val aggregate_sources : t -> int
(** Total stations across segments (bridge stations not counted
    twice — they are stations of their [br_to] segment only when
    [br_station >= num_sources]; this sums the {e declared} instances,
    the elaborated count can be higher). *)

val tree :
  name:string ->
  segments:int ->
  fanout:int ->
  sources:int ->
  load:float ->
  deadline_windows:float ->
  ?bridge_latency:int ->
  unit ->
  t
(** [tree ~name ~segments ~fanout ~sources ~load ~deadline_windows ()]
    builds a uniform [fanout]-ary tree of [segments] uniform-workload
    segments: segment 0 is the root, segment [i]'s parent is
    [(i−1)/fanout].  Every non-root segment gets a bridge to its
    parent (as a fresh station [sources + ordinal-among-siblings] of
    the parent, [bridge_latency] defaulting to 4096 bit-times) and one
    flow: its class 0 routed up the whole path to the root — so a
    depth-2 tree exercises genuine multi-hop forwarding.
    @raise Invalid_argument if [segments < 1] or [fanout < 1]. *)

val of_assignment : name:string -> Rtnet_core.Multi_bus.assignment -> t
(** [of_assignment ~name a] is the flowless star: one segment per
    parallel bus of the {!Rtnet_core.Multi_bus} partition, no bridges,
    no flows — the 1-hop special case under which the topology driver
    reproduces [Multi_bus.run] exactly. *)

val to_json : t -> (Rtnet_util.Json.t, string) result
(** Canonical JSON spec; errors if a segment lacks its workload
    descriptor (programmatic instances are not serializable). *)

val of_json : Rtnet_util.Json.t -> (t, string) result
val load_file : string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** Multi-line summary: segments, bridges, flows. *)
