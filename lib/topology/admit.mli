(** End-to-end admission control: elaborate a topology into runnable
    per-segment instances and check every hop of every flow.

    Elaboration turns the declarative {!Topo.t} into what the driver
    simulates, in two passes:

    + {b provisional}: each flow's end-to-end deadline [d(M)], minus
      the fixed bridge delays on its path, is split {e equally} over
      its hops; hop [i] of the flow appears on segment [i] of the path
      as a deadline class — hop 0 is the origin class with its
      deadline replaced by the hop budget, hop [i > 0] is a {e fresh}
      forwarded class owned by the crossing bridge's station, copying
      the origin's length and arrival density.  On these provisional
      instances [Feasibility.latency_bound] yields each hop's
      [B_DDCR];
    + {b final}: the bounds feed {!Rtnet_core.Decompose.split} (under
      the chosen policy) and the resulting budgets rebuild the
      elaborated instances.  A second [Feasibility.check] per segment
      then prices every hop: since the hop class's deadline {e is} its
      budget, the paper's per-class test [B_DDCR <= d] is exactly the
      admission condition "per-hop budget covers the hop's bound".

    A flow is {b admitted} iff its decomposition succeeded and every
    hop is feasible; the topology is admitted iff every flow is.  By
    the decomposition invariant ([Σ budgets + Σ bridge delays <=
    d(M)]) an admitted flow's messages meet [d(M)] end-to-end whenever
    each hop meets its budget — which, on fault-free traces, the
    per-hop [B_DDCR] feasibility guarantees (soundness caveats:
    DESIGN.md §13). *)

type hop = {
  h_segment : string;  (** segment this hop contends on *)
  h_cls : Rtnet_workload.Message.cls;
      (** the elaborated class there (origin class on hop 0 with the
          budget as deadline; a fresh forwarded class otherwise) *)
  h_budget : int;  (** the hop's deadline budget, bit-times *)
  h_bound : float;  (** [B_DDCR] of the hop class on the elaborated segment *)
  h_feasible : bool;  (** [h_bound <= h_budget] *)
  h_bridge : Topo.bridge option;
      (** the bridge crossed to reach this hop ([None] on hop 0) *)
}

type eflow = {
  ef_flow : Topo.flow;
  ef_deadline : int;  (** end-to-end [d(M)] — the origin class's deadline *)
  ef_hops : hop list;  (** path order *)
  ef_error : string option;
      (** decomposition failure (deadline cannot cover bounds +
          delays); hops then carry the equal fallback split *)
  ef_admitted : bool;  (** no error and every hop feasible *)
}

type t = {
  e_topo : Topo.t;
  e_policy : Rtnet_core.Decompose.policy;
  e_order : string list;  (** topological segment order *)
  e_levels : string list list;  (** wavefront levels (see {!Topo.levels}) *)
  e_instances : (string * Rtnet_workload.Instance.t) list;
      (** elaborated instance per segment, declaration order; the
          instance's [num_sources] grows to cover incoming bridge
          stations *)
  e_params : (string * Rtnet_core.Ddcr_params.t) list;
      (** derived CSMA/DDCR parameters per elaborated segment *)
  e_reports : (string * Rtnet_core.Feasibility.report) list;
      (** full Section 4.3 report per elaborated segment (covers local
          classes too, not just flow hops) *)
  e_flows : eflow list;
  e_admitted : bool;
}

val elaborate :
  ?policy:Rtnet_core.Decompose.policy -> Topo.t -> (t, string) result
(** [elaborate topo] runs both passes under [policy] (default
    {!Rtnet_core.Decompose.Proportional}).  Errors on structural
    problems that preclude elaboration entirely — routing errors
    ({!Topo.route_errors}), malformed per-segment fault plans
    ({!Topo.fault_errors}) or a cyclic bridge graph; admission
    {e failures} are not errors (inspect [e_admitted] / [ef_admitted],
    the driver can still simulate a rejected topology to observe the
    predicted misses). *)

val instance_of : t -> string -> Rtnet_workload.Instance.t
(** Elaborated instance by segment name.
    @raise Not_found on an unknown segment. *)

val params_of : t -> string -> Rtnet_core.Ddcr_params.t
(** @raise Not_found on an unknown segment. *)

val pp_report : Format.formatter -> t -> unit
(** Per-flow hop tables (budget, [B_DDCR], headroom, verdict),
    per-segment worst margins, and the admission verdict. *)
