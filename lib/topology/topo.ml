module Instance = Rtnet_workload.Instance
module Scenarios = Rtnet_workload.Scenarios
module Json = Rtnet_util.Json
module Multi_bus = Rtnet_core.Multi_bus
module Fault_plan = Rtnet_channel.Fault_plan

type workload = {
  wk_kind : string;
  wk_size : int;
  wk_load : float;
  wk_deadline_windows : float;
}

type segment = {
  sg_name : string;
  sg_instance : Instance.t;
  sg_workload : workload option;
  sg_fault : Fault_plan.spec option;
}

type bridge = {
  br_name : string;
  br_from : string;
  br_to : string;
  br_station : int;
  br_latency : int;
  br_capacity : int;
}

type flow = {
  fl_name : string;
  fl_cls : int;
  fl_path : string list;
  fl_criticality : int;
}

let default_capacity = 64

type t = {
  tp_name : string;
  tp_segments : segment list;
  tp_bridges : bridge list;
  tp_flows : flow list;
}

let relabel ~name inst =
  Instance.create_exn ~name ~phy:inst.Instance.phy
    ~num_sources:inst.Instance.num_sources
    (Array.to_list inst.Instance.classes)

let workload_instance wk =
  try
    Ok
      (match wk.wk_kind with
      | "videoconference" -> Scenarios.videoconference ~stations:wk.wk_size
      | "atc" -> Scenarios.air_traffic_control ~radars:wk.wk_size
      | "trading" -> Scenarios.trading ~gateways:wk.wk_size
      | "atm" -> Scenarios.atm_fabric ~ports:wk.wk_size
      | "manufacturing" -> Scenarios.manufacturing ~cells:wk.wk_size
      | "skewed" -> Scenarios.skewed ~sources:wk.wk_size ~heavy_fraction:0.7
      | "uniform" ->
        Scenarios.uniform ~sources:wk.wk_size ~classes_per_source:2
          ~load:wk.wk_load ~deadline_windows:wk.wk_deadline_windows
      | other -> failwith (Printf.sprintf "unknown workload kind %S" other))
  with
  | Failure e -> Error e
  | Invalid_argument e -> Error e

let segment_of_workload ~name wk =
  match workload_instance wk with
  | Error e -> Error (Printf.sprintf "segment %s: %s" name e)
  | Ok inst ->
    Ok
      {
        sg_name = name;
        sg_instance = relabel ~name inst;
        sg_workload = Some wk;
        sg_fault = None;
      }

let rec dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else dup rest

let create ~name ~segments ~bridges ~flows =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let seg_names = List.map (fun s -> s.sg_name) segments in
  if name = "" then err "topology name is empty"
  else if segments = [] then err "topology %s has no segments" name
  else begin
    match dup seg_names with
    | Some n -> err "duplicate segment name %S" n
    | None -> (
      match dup (List.map (fun b -> b.br_name) bridges) with
      | Some n -> err "duplicate bridge name %S" n
      | None -> (
        match dup (List.map (fun f -> f.fl_name) flows) with
        | Some n -> err "duplicate flow name %S" n
        | None -> (
          match dup (List.map (fun b -> (b.br_from, b.br_to)) bridges) with
          | Some (f, t) -> err "two bridges join %s -> %s" f t
          | None ->
            let bad =
              List.find_opt
                (fun b ->
                  (not (List.mem b.br_from seg_names))
                  || (not (List.mem b.br_to seg_names))
                  || b.br_from = b.br_to || b.br_station < 0
                  || b.br_latency < 0 || b.br_capacity < 1)
                bridges
            in
            (match bad with
            | Some b ->
              err
                "bridge %s is malformed (endpoints must name distinct \
                 existing segments, station and latency must be >= 0, \
                 capacity >= 1)"
                b.br_name
            | None ->
              Ok
                {
                  tp_name = name;
                  tp_segments = segments;
                  tp_bridges = bridges;
                  tp_flows = flows;
                }))))
  end

let create_exn ~name ~segments ~bridges ~flows =
  match create ~name ~segments ~bridges ~flows with
  | Ok t -> t
  | Error e -> invalid_arg ("Topo.create_exn: " ^ e)

let find_segment t name =
  List.find_opt (fun s -> s.sg_name = name) t.tp_segments

let find_bridge t ~from_ ~to_ =
  List.find_opt (fun b -> b.br_from = from_ && b.br_to = to_) t.tp_bridges

(* Kahn's algorithm, stable on the declaration order: among the nodes
   with no remaining upstream edge, the first-declared segment goes
   next — so the topological order (and everything derived from it:
   wavefront levels, fingerprints) is a pure function of the value. *)
let toposort t =
  let names = List.map (fun s -> s.sg_name) t.tp_segments in
  let indeg = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace indeg n 0) names;
  List.iter
    (fun b ->
      match Hashtbl.find_opt indeg b.br_to with
      | Some d -> Hashtbl.replace indeg b.br_to (d + 1)
      | None -> ())
    t.tp_bridges;
  let rec go acc remaining =
    if remaining = [] then Ok (List.rev acc)
    else begin
      match
        List.find_opt (fun n -> Hashtbl.find indeg n = 0) remaining
      with
      | None ->
        Error
          (Printf.sprintf "bridge graph is cyclic (among segments %s)"
             (String.concat ", " remaining))
      | Some n ->
        List.iter
          (fun b ->
            if b.br_from = n then
              Hashtbl.replace indeg b.br_to (Hashtbl.find indeg b.br_to - 1))
          t.tp_bridges;
        go (n :: acc) (List.filter (fun m -> m <> n) remaining)
    end
  in
  go [] names

let levels t =
  match toposort t with
  | Error e -> Error e
  | Ok order ->
    let level = Hashtbl.create 8 in
    List.iter (fun n -> Hashtbl.replace level n 0) order;
    List.iter
      (fun n ->
        List.iter
          (fun b ->
            if b.br_from = n then
              Hashtbl.replace level b.br_to
                (max (Hashtbl.find level b.br_to) (Hashtbl.find level n + 1)))
          t.tp_bridges)
      order;
    let deepest = List.fold_left (fun acc n -> max acc (Hashtbl.find level n)) 0 order in
    Ok
      (List.init (deepest + 1) (fun k ->
           List.filter (fun n -> Hashtbl.find level n = k) order))

let route_errors t =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let origins = Hashtbl.create 8 in
  List.iter
    (fun f ->
      (match f.fl_path with
      | [] | [ _ ] ->
        add "flow %s: path must name at least 2 segments" f.fl_name
      | path ->
        (match dup path with
        | Some n -> add "flow %s: segment %s repeats on the path" f.fl_name n
        | None -> ());
        List.iter
          (fun n ->
            if find_segment t n = None then
              add "flow %s: unknown path segment %S" f.fl_name n)
          path;
        let rec hops = function
          | a :: (b :: _ as rest) ->
            if
              find_segment t a <> None
              && find_segment t b <> None
              && find_bridge t ~from_:a ~to_:b = None
            then add "flow %s: no bridge joins %s -> %s" f.fl_name a b;
            hops rest
          | [ _ ] | [] -> ()
        in
        hops path);
      match f.fl_path with
      | origin :: _ -> (
        match find_segment t origin with
        | None -> ()
        | Some seg ->
          if
            not
              (List.exists
                 (fun c -> c.Rtnet_workload.Message.cls_id = f.fl_cls)
                 (Instance.classes seg.sg_instance))
          then
            add "flow %s: segment %s has no class %d" f.fl_name origin f.fl_cls
          else begin
            match Hashtbl.find_opt origins (origin, f.fl_cls) with
            | Some other ->
              add "flows %s and %s share origin class %d of %s" other
                f.fl_name f.fl_cls origin
            | None -> Hashtbl.replace origins (origin, f.fl_cls) f.fl_name
          end)
      | [] -> ())
    t.tp_flows;
  List.rev !errs

let aggregate_sources t =
  List.fold_left
    (fun acc s -> acc + s.sg_instance.Instance.num_sources)
    0 t.tp_segments

let tree ~name ~segments ~fanout ~sources ~load ~deadline_windows
    ?(bridge_latency = 4096) () =
  if segments < 1 then invalid_arg "Topo.tree: segments < 1";
  if fanout < 1 then invalid_arg "Topo.tree: fanout < 1";
  let wk =
    {
      wk_kind = "uniform";
      wk_size = sources;
      wk_load = load;
      wk_deadline_windows = deadline_windows;
    }
  in
  let seg_name i = Printf.sprintf "seg%d" i in
  let segs =
    List.init segments (fun i ->
        match segment_of_workload ~name:(seg_name i) wk with
        | Ok s -> s
        | Error e -> invalid_arg ("Topo.tree: " ^ e))
  in
  let parent i = (i - 1) / fanout in
  let bridges =
    List.init (segments - 1) (fun k ->
        let i = k + 1 in
        let p = parent i in
        let ordinal = i - ((p * fanout) + 1) in
        {
          br_name = Printf.sprintf "br%d" i;
          br_from = seg_name i;
          br_to = seg_name p;
          br_station = sources + ordinal;
          br_latency = bridge_latency;
          br_capacity = default_capacity;
        })
  in
  let flows =
    List.init (segments - 1) (fun k ->
        let i = k + 1 in
        let rec path j acc = if j = 0 then List.rev (seg_name 0 :: acc) else path (parent j) (seg_name j :: acc) in
        {
          fl_name = Printf.sprintf "flow%d" i;
          fl_cls = 0;
          fl_path = path i [];
          fl_criticality = 0;
        })
  in
  create_exn ~name ~segments:segs ~bridges ~flows

let of_assignment ~name (a : Multi_bus.assignment) =
  let segments =
    List.map
      (fun inst ->
        {
          sg_name = inst.Instance.name;
          sg_instance = inst;
          sg_workload = None;
          sg_fault = None;
        })
      (Array.to_list a.Multi_bus.buses)
  in
  create_exn ~name ~segments ~bridges:[] ~flows:[]

(* Per-segment fault plans.  A plan's crash-window sources must name a
   station that exists on its segment: a declared traffic source, or an
   incoming bridge's station (which the elaboration adds when it is
   [>= num_sources]).  Anything else is a spec bug — caught here (and
   surfaced by the CFG-TOPO-FAULT lint) rather than silently simulating
   the crash of a station nobody listens to. *)
let with_faults t plans =
  let seg_names = List.map (fun s -> s.sg_name) t.tp_segments in
  match List.find_opt (fun (n, _) -> not (List.mem n seg_names)) plans with
  | Some (n, _) -> Error (Printf.sprintf "fault plan names unknown segment %S" n)
  | None ->
    let segments =
      List.map
        (fun s ->
          match List.assoc_opt s.sg_name plans with
          | None -> s
          | Some sp ->
            let sp =
              match s.sg_fault with
              | None -> sp
              | Some prev -> Fault_plan.compose prev sp
            in
            { s with sg_fault = Some sp })
        t.tp_segments
    in
    Ok { t with tp_segments = segments }

let fault_errors t =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun s ->
      match s.sg_fault with
      | None -> ()
      | Some sp ->
        (match Fault_plan.validate sp with
        | Ok () -> ()
        | Error e -> add "segment %s: invalid fault plan: %s" s.sg_name e);
        let num_sources = s.sg_instance.Instance.num_sources in
        let stations =
          List.filter_map
            (fun b -> if b.br_to = s.sg_name then Some b.br_station else None)
            t.tp_bridges
        in
        List.iter
          (fun w ->
            let src = w.Fault_plan.cw_source in
            if
              (src < 0 || src >= num_sources) && not (List.mem src stations)
            then
              add
                "segment %s: crash window names station %d, which is \
                 neither a declared source (0..%d) nor an incoming bridge \
                 station"
                s.sg_name src (num_sources - 1))
          sp.Fault_plan.sp_crashes)
    t.tp_segments;
  List.rev !errs

(* JSON spec codec.  Canonical key order; floats only where the value
   is genuinely fractional, so specs round-trip byte-identically. *)

let workload_to_json wk =
  Json.Obj
    [
      ("kind", Json.String wk.wk_kind);
      ("size", Json.Int wk.wk_size);
      ("load", Json.Float wk.wk_load);
      ("deadline_windows", Json.Float wk.wk_deadline_windows);
    ]

let workload_of_json j =
  let ( let* ) = Result.bind in
  let* kind = Result.bind (Json.field "kind" j) Json.get_string in
  let* size = Result.bind (Json.field "size" j) Json.get_int in
  let* load = Result.bind (Json.field "load" j) Json.get_float in
  let* dw = Result.bind (Json.field "deadline_windows" j) Json.get_float in
  Ok { wk_kind = kind; wk_size = size; wk_load = load; wk_deadline_windows = dw }

let to_json t =
  let ( let* ) = Result.bind in
  let* segs =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        match s.sg_workload with
        | None ->
          Error
            (Printf.sprintf
               "segment %s has no workload descriptor (not serializable)"
               s.sg_name)
        | Some wk ->
          Ok
            (Json.Obj
               ([
                  ("name", Json.String s.sg_name);
                  ("workload", workload_to_json wk);
                ]
               (* Emitted only when set, so pre-fault specs (and the
                  campaign hashes derived from them) stay byte-identical. *)
               @
               match s.sg_fault with
               | None -> []
               | Some sp -> [ ("fault_plan", Fault_plan.spec_to_json sp) ])
            :: acc))
      (Ok []) t.tp_segments
  in
  Ok
    (Json.Obj
       [
         ("name", Json.String t.tp_name);
         ("segments", Json.List (List.rev segs));
         ( "bridges",
           Json.List
             (List.map
                (fun b ->
                  Json.Obj
                    ([
                       ("name", Json.String b.br_name);
                       ("from", Json.String b.br_from);
                       ("to", Json.String b.br_to);
                       ("station", Json.Int b.br_station);
                       ("latency", Json.Int b.br_latency);
                     ]
                    @
                    if b.br_capacity = default_capacity then []
                    else [ ("capacity", Json.Int b.br_capacity) ]))
                t.tp_bridges) );
         ( "flows",
           Json.List
             (List.map
                (fun f ->
                  Json.Obj
                    ([
                       ("name", Json.String f.fl_name);
                       ("class", Json.Int f.fl_cls);
                       ( "path",
                         Json.List
                           (List.map (fun s -> Json.String s) f.fl_path) );
                     ]
                    @
                    if f.fl_criticality = 0 then []
                    else [ ("criticality", Json.Int f.fl_criticality) ]))
                t.tp_flows) );
       ])

let of_json j =
  let ( let* ) = Result.bind in
  let* name = Result.bind (Json.field "name" j) Json.get_string in
  let* seg_list = Result.bind (Json.field "segments" j) Json.get_list in
  let* segments =
    List.fold_left
      (fun acc sj ->
        let* acc = acc in
        let* sname = Result.bind (Json.field "name" sj) Json.get_string in
        let* wj = Json.field "workload" sj in
        let* wk = workload_of_json wj in
        let* seg = segment_of_workload ~name:sname wk in
        let* fault =
          match Json.member "fault_plan" sj with
          | None -> Ok None
          | Some fj -> (
            match Fault_plan.spec_of_json fj with
            | Ok sp -> Ok (Some sp)
            | Error e ->
              Error (Printf.sprintf "segment %s: fault_plan: %s" sname e))
        in
        Ok ({ seg with sg_fault = fault } :: acc))
      (Ok []) seg_list
  in
  let* bridge_list =
    match Json.member "bridges" j with
    | None -> Ok []
    | Some l -> Json.get_list l
  in
  let* bridges =
    List.fold_left
      (fun acc bj ->
        let* acc = acc in
        let* bname = Result.bind (Json.field "name" bj) Json.get_string in
        let* from_ = Result.bind (Json.field "from" bj) Json.get_string in
        let* to_ = Result.bind (Json.field "to" bj) Json.get_string in
        let* station = Result.bind (Json.field "station" bj) Json.get_int in
        let* latency = Result.bind (Json.field "latency" bj) Json.get_int in
        let* capacity =
          match Json.member "capacity" bj with
          | None -> Ok default_capacity
          | Some cj -> Json.get_int cj
        in
        Ok
          ({
             br_name = bname;
             br_from = from_;
             br_to = to_;
             br_station = station;
             br_latency = latency;
             br_capacity = capacity;
           }
          :: acc))
      (Ok []) bridge_list
  in
  let* flow_list =
    match Json.member "flows" j with
    | None -> Ok []
    | Some l -> Json.get_list l
  in
  let* flows =
    List.fold_left
      (fun acc fj ->
        let* acc = acc in
        let* fname = Result.bind (Json.field "name" fj) Json.get_string in
        let* cls = Result.bind (Json.field "class" fj) Json.get_int in
        let* pathj = Result.bind (Json.field "path" fj) Json.get_list in
        let* path =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              let* s = Json.get_string p in
              Ok (s :: acc))
            (Ok []) pathj
        in
        let* criticality =
          match Json.member "criticality" fj with
          | None -> Ok 0
          | Some cj -> Json.get_int cj
        in
        Ok
          ({
             fl_name = fname;
             fl_cls = cls;
             fl_path = List.rev path;
             fl_criticality = criticality;
           }
          :: acc))
      (Ok []) flow_list
  in
  create ~name ~segments:(List.rev segments) ~bridges:(List.rev bridges)
    ~flows:(List.rev flows)

let load_file path =
  match Json.parse_file path with
  | Error e -> Error e
  | Ok j -> of_json j

let pp fmt t =
  Format.fprintf fmt "@[<v>topology %s: %d segments, %d bridges, %d flows@,"
    t.tp_name
    (List.length t.tp_segments)
    (List.length t.tp_bridges)
    (List.length t.tp_flows);
  List.iter
    (fun s ->
      Format.fprintf fmt "  segment %s: %d sources, %d classes%s@," s.sg_name
        s.sg_instance.Instance.num_sources
        (Array.length s.sg_instance.Instance.classes)
        (match s.sg_fault with
        | None -> ""
        | Some sp -> Printf.sprintf " (faults: %s)" (Fault_plan.label sp)))
    t.tp_segments;
  List.iter
    (fun b ->
      Format.fprintf fmt "  bridge %s: %s -> %s (station %d, latency %d)@,"
        b.br_name b.br_from b.br_to b.br_station b.br_latency)
    t.tp_bridges;
  List.iter
    (fun f ->
      Format.fprintf fmt "  flow %s: class %d via %s@," f.fl_name f.fl_cls
        (String.concat " -> " f.fl_path))
    t.tp_flows;
  Format.fprintf fmt "@]"
