(** Centralized Non-Preemptive EDF oracle.

    The paper chooses CSMA/DDCR because it {i emulates a distributed
    NP-EDF scheduler}, and centralized NP-EDF is optimal for the
    centralized variant of HRTDM (Section 3.1, refs [20, 21]).  This
    module schedules a trace on an ideal single server with complete
    knowledge and zero contention overhead: transmitting a message
    costs exactly its on-wire time [l'].  Its outcome is the
    lower-bound reference every distributed protocol is compared
    against. *)

val run :
  Rtnet_channel.Phy.t -> Rtnet_workload.Message.t list -> horizon:int -> Rtnet_stats.Run.outcome
(** [run phy trace ~horizon] schedules [trace] (any order) under
    non-preemptive EDF on an ideal server of medium [phy] and reports
    the outcome.  Messages whose service has not started by [horizon]
    are reported unfinished. *)

val schedulable : Rtnet_channel.Phy.t -> Rtnet_workload.Message.t list -> bool
(** [schedulable phy trace] is [true] iff the ideal NP-EDF schedule of
    this trace meets every deadline — a necessary condition for any
    distributed protocol on the same medium to meet them. *)
