(** Class-of-Service deadline quantization (Section 5).

    IEEE 802.1Q carries an explicit priority field in packet headers;
    the paper proposes passing message deadlines to the CSMA/DDCR layer
    through it ("Classes-of-Service are naturally defined via task
    deadlines D, transformed into message deadlines d, which can be
    passed on ... via the standard conformant priority field").  The
    field is small — 8 levels in 802.1p — so the deadline reaches the
    MAC {i quantized}.

    A {!scheme} maps the instance's deadline range onto [levels]
    log-spaced buckets.  Quantization is {b conservative}: a deadline
    is replaced by its bucket's lower edge, which never exceeds the
    true deadline, so a schedule feasible for the quantized instance is
    feasible for the real one.  The cost of the coarser information is
    measured in experiment E14. *)

type scheme = private {
  floor_value : int;  (** the smallest deadline the scheme covers *)
  boundaries : int array;  (** ascending bucket upper edges *)
}

val design : levels:int -> Rtnet_workload.Instance.t -> scheme
(** [design ~levels inst] builds a scheme with [levels] log-spaced
    buckets spanning the instance's smallest to largest class deadline
    (802.1p: [levels = 8]).
    @raise Invalid_argument if [levels < 1]. *)

val levels : scheme -> int
(** [levels s] is the number of priority levels. *)

val priority : scheme -> int -> int
(** [priority s d] is the priority level of deadline [d]: [0] is the
    most urgent bucket; deadlines above the top boundary saturate at
    the last level.  Monotone in [d]. *)

val representative : scheme -> int -> int
(** [representative s d] is the quantized deadline: the lower edge of
    [d]'s bucket.  Always [<= d] (conservative) and idempotent. *)

val quantize_instance :
  scheme -> Rtnet_workload.Instance.t -> Rtnet_workload.Instance.t
(** [quantize_instance s inst] replaces every class's relative deadline
    by its representative — the instance as the MAC layer sees it
    through an 8-level priority field. *)
