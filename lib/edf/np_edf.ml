module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy

module Run = Rtnet_stats.Run

let run phy trace ~horizon =
  let arrivals =
    List.sort (fun a b -> compare a.Message.arrival b.Message.arrival) trace
  in
  let rec go now pending arrivals completions =
    (* Admit everything that has arrived by [now]. *)
    let admitted, arrivals =
      let rec split q = function
        | m :: rest when m.Message.arrival <= now ->
          split (Edf_queue.insert q m) rest
        | rest -> (q, rest)
      in
      split pending arrivals
    in
    match Edf_queue.pop admitted with
    | Some (m, pending) ->
      if now >= horizon then
        (* Run ends: everything still queued is unfinished. *)
        (completions, Edf_queue.insert pending m, arrivals)
      else begin
        let finish = now + Phy.tx_bits phy m.Message.cls.Message.cls_bits in
        let c = { Run.c_msg = m; c_start = now; c_finish = finish } in
        go finish pending arrivals (c :: completions)
      end
    | None -> (
      match arrivals with
      | [] -> (completions, Edf_queue.empty, [])
      | m :: _ when m.Message.arrival < horizon ->
        go m.Message.arrival admitted arrivals completions
      | _ :: _ -> (completions, admitted, arrivals))
  in
  let completions, pending, not_arrived = go 0 Edf_queue.empty arrivals [] in
  {
    Run.protocol = "np-edf-oracle";
    completions = List.rev completions;
    unfinished = Edf_queue.to_sorted_list pending @ not_arrived;
    dropped = [];
    horizon;
    channel = None;
    faults = None;
  }

let schedulable phy trace =
  let horizon =
    List.fold_left (fun acc m -> max acc (Message.abs_deadline m)) 1 trace + 1
  in
  let outcome = run phy trace ~horizon in
  outcome.Run.unfinished = []
  && List.for_all (fun c -> not (Run.missed c)) outcome.Run.completions
