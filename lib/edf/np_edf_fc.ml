module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy

let wire inst c = Phy.tx_bits inst.Instance.phy c.Message.cls_bits

let utilization inst =
  List.fold_left
    (fun acc c ->
      acc
      +. float_of_int (c.Message.cls_burst * wire inst c)
         /. float_of_int c.Message.cls_window)
    0. (Instance.classes inst)

let dbf_class inst c t =
  let d = c.Message.cls_deadline and w = c.Message.cls_window in
  if t < d then 0
  else c.Message.cls_burst * (((t - d) / w) + 1) * wire inst c

let demand_bound inst t =
  List.fold_left (fun acc c -> acc + dbf_class inst c t) 0 (Instance.classes inst)

let blocking inst t =
  List.fold_left
    (fun acc c ->
      if c.Message.cls_deadline > t then max acc (wire inst c) else acc)
    0 (Instance.classes inst)

let max_blocking inst =
  List.fold_left (fun acc c -> max acc (wire inst c)) 0 (Instance.classes inst)

let busy_period inst =
  if utilization inst >= 1. then None
  else begin
    (* Fixpoint of L = B + Σ a·⌈L/w⌉·l', the synchronous busy period
       under peak-load arrivals plus worst blocking. *)
    let next l =
      List.fold_left
        (fun acc c ->
          acc
          + (c.Message.cls_burst
            * Rtnet_util.Int_math.cdiv l c.Message.cls_window
            * wire inst c))
        (max_blocking inst) (Instance.classes inst)
    in
    let rec iterate l guard =
      if guard = 0 then Some l
      else begin
        let l' = next l in
        if l' = l then Some l else iterate l' (guard - 1)
      end
    in
    iterate (max 1 (max_blocking inst)) 10_000
  end

type verdict = { np_feasible : bool; np_margin : float; critical_t : int }

let checkpoints inst ~upto =
  (* All instants where some class's demand steps: t = d + k·w. *)
  let points =
    List.concat_map
      (fun c ->
        let d = c.Message.cls_deadline and w = c.Message.cls_window in
        let rec go t acc = if t > upto then acc else go (t + w) (t :: acc) in
        go d [])
      (Instance.classes inst)
  in
  List.sort_uniq compare points

let check inst =
  match busy_period inst with
  | None ->
    { np_feasible = false; np_margin = utilization inst; critical_t = 0 }
  | Some busy -> (
    (* The busy period suffices for exactness, but when every deadline
       exceeds it there would be no checkpoint at all; extending the
       range past each class's first demand step keeps the condition
       (which is necessary at every t) and yields a meaningful
       margin. *)
    let first_steps =
      List.fold_left
        (fun acc c -> max acc (c.Message.cls_deadline + c.Message.cls_window))
        1 (Instance.classes inst)
    in
    let upto = max busy first_steps in
    let score t =
      float_of_int (blocking inst t + demand_bound inst t) /. float_of_int t
    in
    match checkpoints inst ~upto with
    | [] -> { np_feasible = true; np_margin = 0.; critical_t = 0 }
    | t0 :: rest ->
      let critical, margin =
        List.fold_left
          (fun (bt, bm) t ->
            let s = score t in
            if s > bm then (t, s) else (bt, bm))
          (t0, score t0) rest
      in
      { np_feasible = margin <= 1.; np_margin = margin; critical_t = critical })

let price_of_distribution ~distributed_margin inst =
  let oracle = (check inst).np_margin in
  if oracle <= 0. then infinity else distributed_margin /. oracle
