(** EDF-ordered waiting queue (algorithm {i LA} of Section 3.2).

    Each source stores its pending messages in a queue [Q] serviced
    earliest-absolute-deadline first; [msg*] is the head.  Ordering is
    the total order {!Rtnet_workload.Message.compare_edf}, so every replica ranks
    identically.  Implemented as a leftist heap: O(log n) insert and
    pop, O(1) peek. *)

type t
(** Immutable EDF queue. *)

val empty : t
(** [empty] is the queue with no message. *)

val is_empty : t -> bool
(** [is_empty q] is [true] iff [q] holds no message. *)

val size : t -> int
(** [size q] is the number of queued messages. *)

val insert : t -> Rtnet_workload.Message.t -> t
(** [insert q m] adds [m]. *)

val peek : t -> Rtnet_workload.Message.t option
(** [peek q] is [msg*] — the earliest-deadline message — if any. *)

val pop : t -> (Rtnet_workload.Message.t * t) option
(** [pop q] removes and returns [msg*]. *)

val of_list : Rtnet_workload.Message.t list -> t
(** [of_list ms] builds a queue from arbitrary order. *)

val to_sorted_list : t -> Rtnet_workload.Message.t list
(** [to_sorted_list q] is the EDF order, earliest deadline first. *)
