(** Feasibility conditions for the {e centralized} NP-EDF oracle.

    Section 3.1 justifies CSMA/DDCR by the optimality of centralized
    non-preemptive EDF (ref [20], Jeffay, Stanat & Martel 1991).  This
    module implements the corresponding schedulability test, extended
    from sporadic tasks to the paper's unimodal arbitrary arrival model
    through demand-bound functions:

    - the {b demand} of class [m] over any interval of length [t] is at
      most [dbf_m(t) = a·(⌊(t − d)/w⌋ + 1)·l'] for [t ≥ d] (the
      adversary releases [a] messages at the start of every window, as
      early as density permits);
    - non-preemption adds a {b blocking} term: one already-started
      frame of any class with a larger deadline;
    - the oracle meets all deadlines iff for every checkpoint [t]
      (the absolute-deadline instants where some [dbf] steps),
      [blocking(t) + Σ_m dbf_m(t) <= t].

    Checkpoints are enumerated up to the synchronous busy-period bound
    (fixpoint of [L = B + Σ a·⌈L/w⌉·l']), so the test is exact for
    peak-load arrivals.  Comparing this margin with
    {!Rtnet_core.Feasibility}'s quantifies the {e provable price of
    distribution} — how much of the deadline budget CSMA/DDCR's
    contention resolution consumes beyond what any centralized
    scheduler would. *)

val utilization : Rtnet_workload.Instance.t -> float
(** [utilization inst] is [Σ a·l'/w] — demand per unit time; above 1
    nothing is schedulable. *)

val demand_bound : Rtnet_workload.Instance.t -> int -> int
(** [demand_bound inst t] is [Σ_m dbf_m(t)] in bit-times. *)

val blocking : Rtnet_workload.Instance.t -> int -> int
(** [blocking inst t] is the worst head-of-line blocking at deadline
    horizon [t]: the largest on-wire length among classes whose
    relative deadline exceeds [t] (a longer-deadline frame that just
    started cannot be preempted). *)

val busy_period : Rtnet_workload.Instance.t -> int option
(** [busy_period inst] is the synchronous busy-period length (fixpoint
    iteration), or [None] when [utilization inst >= 1]. *)

type verdict = {
  np_feasible : bool;  (** every checkpoint satisfied *)
  np_margin : float;
      (** max over checkpoints of [(blocking + demand)/t]; [<= 1] iff
          feasible *)
  critical_t : int;  (** the checkpoint attaining the margin *)
}

val check : Rtnet_workload.Instance.t -> verdict
(** [check inst] runs the test over all checkpoints up to the busy
    period.  An instance with [utilization >= 1] is reported infeasible
    with the utilization as margin. *)

val price_of_distribution :
  distributed_margin:float -> Rtnet_workload.Instance.t -> float
(** [price_of_distribution ~distributed_margin inst] is the ratio of
    the distributed protocol's FC margin (e.g.
    [Rtnet_core.Feasibility]'s worst margin) to the centralized
    oracle's margin — the provable cost of resolving contention on a
    broadcast medium rather than in a central queue. *)
