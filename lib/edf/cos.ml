module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message

type scheme = { floor_value : int; boundaries : int array }

let design ~levels inst =
  if levels < 1 then invalid_arg "Cos.design: levels < 1";
  let deadlines =
    List.map (fun c -> c.Message.cls_deadline) (Instance.classes inst)
  in
  let lo = List.fold_left min max_int deadlines in
  let hi = List.fold_left max 1 deadlines in
  let ratio = float_of_int hi /. float_of_int lo in
  let boundaries =
    Array.init levels (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int levels in
        let edge = float_of_int lo *. (ratio ** frac) in
        max lo (int_of_float (ceil edge)))
  in
  (* Guarantee the top bucket covers the largest deadline despite any
     floating-point shortfall. *)
  boundaries.(levels - 1) <- max boundaries.(levels - 1) hi;
  { floor_value = lo; boundaries }

let levels s = Array.length s.boundaries

let priority s d =
  let n = Array.length s.boundaries in
  let rec go i = if i >= n - 1 || d <= s.boundaries.(i) then i else go (i + 1) in
  go 0

let representative s d =
  let level = priority s d in
  (* The smallest deadline of the bucket: one past the previous edge,
     so the value stays inside its own bucket (idempotence). *)
  if level = 0 then min s.floor_value d else s.boundaries.(level - 1) + 1

let quantize_instance s inst =
  let classes =
    Array.to_list
      (Array.map
         (fun (c, law) ->
           ( { c with Message.cls_deadline = representative s c.Message.cls_deadline },
             law ))
         inst.Instance.classes)
  in
  Instance.create_exn
    ~name:(inst.Instance.name ^ "/cos" ^ string_of_int (levels s))
    ~phy:inst.Instance.phy ~num_sources:inst.Instance.num_sources classes
