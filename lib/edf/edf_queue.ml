module Message = Rtnet_workload.Message

(* Leftist heap keyed by Message.compare_edf. *)
type t = Leaf | Node of { rank : int; msg : Message.t; left : t; right : t }

let empty = Leaf

let is_empty q = q = Leaf

let rank = function Leaf -> 0 | Node { rank; _ } -> rank

let make msg a b =
  let ra = rank a and rb = rank b in
  if ra >= rb then Node { rank = rb + 1; msg; left = a; right = b }
  else Node { rank = ra + 1; msg; left = b; right = a }

let rec merge a b =
  match (a, b) with
  | Leaf, q | q, Leaf -> q
  | Node na, Node nb ->
    if Message.compare_edf na.msg nb.msg <= 0 then
      make na.msg na.left (merge na.right b)
    else make nb.msg nb.left (merge a nb.right)

let insert q m = merge q (Node { rank = 1; msg = m; left = Leaf; right = Leaf })

let peek = function Leaf -> None | Node { msg; _ } -> Some msg

let pop = function
  | Leaf -> None
  | Node { msg; left; right; _ } -> Some (msg, merge left right)

let rec size = function
  | Leaf -> 0
  | Node { left; right; _ } -> 1 + size left + size right

let of_list ms = List.fold_left insert empty ms

let to_sorted_list q =
  let rec go acc q =
    match pop q with None -> List.rev acc | Some (m, q) -> go (m :: acc) q
  in
  go [] q
