module Prng = Rtnet_util.Prng

(* Leading path components 0/1 domain-separate the two seed families. *)

let trace_seed ~base ~scenario ~variant ~replicate =
  List.fold_left Prng.derive base [ 0; scenario; variant; replicate ]

let protocol_seed ~base ~scenario ~variant ~replicate ~protocol =
  List.fold_left Prng.derive base [ 1; scenario; variant; replicate; protocol ]

let fault_seed ~base ~scenario ~variant ~replicate =
  List.fold_left Prng.derive base [ 2; scenario; variant; replicate ]
