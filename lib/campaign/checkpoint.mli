(** Append-only checkpoint journal for interrupted campaigns.

    The coordinator appends one line per completed cell as results
    arrive (and flushes), so a campaign killed at any point can be
    re-invoked and resume from the journal without recomputing
    finished cells.  The file is line-oriented JSON:

    - line 1 (header): [{"campaign": name, "spec_hash": h,
      "schema_version": 1}]
    - completed cell: [{"cell": index, "key": k, "result": {...}}]
    - failed cell (worker died before delivering it):
      [{"cell": index, "key": k, "failed": reason}]

    {!load} replays the journal in order: a failed marker voids any
    earlier result for that cell (so a resumed run re-executes it),
    and a later result line — the in-run retry succeeding — records it
    again.

    A partially written final line (the kill landed mid-write) is
    tolerated and dropped on load; corruption anywhere else is an
    error.  The header's spec hash guards against resuming a journal
    under a different spec — cell indices would silently mean
    different configurations. *)

val journal_path : out:string -> string
(** [journal_path ~out] is the default journal location for a report
    written to [out]: [out ^ ".ckpt"]. *)

val load :
  ?on_warning:(string -> unit) ->
  path:string ->
  spec:Spec.t ->
  unit ->
  ((int * Rtnet_util.Json.t) list, string) result
(** [load ~path ~spec] returns the completed [(cell index, result)]
    pairs recorded so far after replaying failed markers, oldest first
    ([\[\]] if the file does not exist), or [Error] on a
    header/spec-hash mismatch or a corrupt interior line.

    Mid-write truncation is recoverable, not fatal: a torn {e final}
    entry line is dropped (that cell re-runs) and a torn header —
    nothing was checkpointed yet — yields an empty journal.  Both are
    reported through [on_warning] (default: silent). *)

val open_for_append : path:string -> spec:Spec.t -> out_channel
(** [open_for_append ~path ~spec] opens the journal for appending,
    writing the header first if the file is new or empty.  Call
    {!load} first when resuming — this function does not validate an
    existing header. *)

val append :
  out_channel -> index:int -> key:string -> Rtnet_util.Json.t -> unit
(** [append oc ~index ~key result] writes one completed-cell line and
    flushes, so the line survives a subsequent kill. *)

val append_failed :
  out_channel -> index:int -> key:string -> reason:string -> unit
(** [append_failed oc ~index ~key ~reason] writes a failed-cell marker
    (and flushes): the cell's previous results, if any, are void and a
    resumed run must re-execute it unless a later {!append} for the
    same cell — the retry succeeding — supersedes the marker. *)

val remove : path:string -> unit
(** [remove ~path] deletes the journal (after the final report has
    been written); missing files are ignored. *)
