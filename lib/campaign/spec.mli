(** Declarative experiment-campaign specification.

    A campaign is a sweep over [protocol × scenario × variant ×
    replicate]: every protocol in {!t.protocols} is run on every
    scenario in {!t.scenarios} under every parameter {!variant}, for
    {!t.replicates} independently seeded arrival traces.  The spec is
    pure data — it can be written as an OCaml value (the
    {!builtins}) or loaded from a JSON file ({!load_file}) — and
    {!Grid.cells} compiles it into the deterministic work-list the
    worker pool executes.

    The canonical JSON rendering of a spec ({!to_json}) also defines
    its identity: {!hash} digests it, and both the checkpoint journal
    and the regression gate refuse to mix results from different spec
    hashes. *)

type protocol = Ddcr | Beb | Dcr | Tdma | Oracle | Topo

val all_protocols : protocol list
(** [all_protocols] is every {e single-medium} protocol, in canonical
    order.  {!Topo} is deliberately excluded: a topo cell is a whole
    federated tree of segments, only meaningful with ["topo"]
    scenarios, and including it here would change the cell grids (and
    golden baselines) of every shipped campaign. *)

val protocol_label : protocol -> string
(** ["ddcr"], ["beb"], ["dcr"], ["tdma"], ["oracle"] or ["topo"] — the
    same names the [ddcr_sim] CLI uses. *)

val protocol_of_string : string -> (protocol, string) result

type scenario = {
  sc_kind : string;
      (** one of: videoconference, atc, trading, atm, manufacturing,
          skewed, uniform, topo *)
  sc_size : int;
      (** stations / radars / gateways / ports / sources; for topo:
          the number of federated segments *)
  sc_load : float;  (** peak offered load (uniform and topo only) *)
  sc_deadline_windows : float;
      (** relative deadline in window units (uniform and topo only) *)
  sc_fanout : int;
      (** tree fan-out (topo only; 1 elsewhere).  A topo scenario is a
          {!Rtnet_topology.Topo.tree} of [sc_size] uniform segments of
          4 sources each, fan-out [sc_fanout], with one flow per
          non-root segment routed up to the root. *)
}

val scenario_label : scenario -> string
(** e.g. ["trading-4"] or ["uniform-8-0.30"] — stable across runs, used
    in cell keys and reports. *)

val scenario_to_json : scenario -> Rtnet_util.Json.t
(** Canonical encoding (fixed key order) — embedded in campaign specs
    and chaos replay artifacts alike. *)

val scenario_of_json : Rtnet_util.Json.t -> (scenario, string) result
(** [load]/[deadline_windows]/[fanout] may be omitted (defaults 0.3 /
    2.0 / 1), matching hand-written spec files; the ["fanout"] key is
    only written for topo scenarios, so pre-topology specs round-trip
    byte-identically. *)

val instance : scenario -> Rtnet_workload.Instance.t
(** [instance sc] builds the workload instance.
    @raise Failure on an unknown [sc_kind] ({!validate} rejects such
    specs first) and on ["topo"] — a topo scenario is a federation,
    not one instance; [Grid] builds it via [Rtnet_topology.Topo.tree]. *)

type variant = {
  v_fault_rate : float;  (** channel-noise probability (ddcr and beb) *)
  v_burst_bits : int;  (** packet-bursting budget, 0 = off (ddcr) *)
  v_theta : int;  (** compressed-time increment, 0 = off (ddcr) *)
  v_fault_plan : Rtnet_channel.Fault_plan.spec option;
      (** composable fault plan (burst noise, misperception, crash
          windows); mutually exclusive with [v_fault_rate].  Plans with
          per-source faults require [protocols = \[Ddcr\]]; wire-only
          plans also allow [Beb]. *)
}

val default_variant : variant
(** No faults, no bursting, no compressed time. *)

val variant_label : variant -> string
(** e.g. ["f0.05-b0-t0"]; a fault plan appends its
    {!Rtnet_channel.Fault_plan.label}, e.g. ["f0.00-b0-t0-iid0.15"]. *)

type t = {
  name : string;  (** campaign name; reports default to [BENCH_<name>.json] *)
  base_seed : int;  (** root of every derived per-cell seed *)
  replicates : int;  (** independently seeded traces per configuration *)
  horizon_ms : int;  (** simulated duration per cell *)
  protocols : protocol list;
  scenarios : scenario list;
  variants : variant list;
}

val validate : t -> (unit, string) result
(** [validate spec] checks shape: non-empty name/axes, positive
    replicates and horizon, known scenario kinds, fault rates within
    [\[0, 1\]], no duplicate cells (distinct scenario and variant
    labels). *)

val cell_count : t -> int
(** [cell_count spec] is
    [protocols × scenarios × variants × replicates]. *)

val to_json : t -> Rtnet_util.Json.t
(** Canonical rendering: fixed key order, every field explicit —
    equal specs produce equal bytes. *)

val of_json : Rtnet_util.Json.t -> (t, string) result
(** Decoder.  [load], [seeds] etc. are exactly the keys {!to_json}
    writes; [scenarios] entries may omit [load]/[deadline_windows]
    (defaults 0.3 / 2.0) and the top level may omit [variants]
    (default [[default_variant]]). *)

val load_file : string -> (t, string) result
(** [load_file path] parses and validates a JSON spec file. *)

val hash : t -> string
(** [hash spec] is the hex digest of the canonical JSON — the identity
    checkpoint files and the regression gate match on. *)

val builtins : (string * t) list
(** Shipped campaigns:
    - ["smoke"]: 2 protocols × 2 scenarios, 1 ms — seconds to run; the
      [make campaign-smoke] gate.
    - ["campaign_v1"]: all 5 protocols × 3 scenarios × {clean, 5%
      noise} × 2 replicates, 2 ms — the committed
      [BENCH_campaign_v1.json] trajectory baseline.
    - ["load_sweep"]: all protocols over the uniform scenario at 6
      offered loads — the Fig. E7 comparison as a campaign.
    - ["fault_sweep"]: CSMA/DDCR under every builtin fault plan (clean,
      i.i.d. noise, Gilbert–Elliott bursts, misperception, crash/rejoin
      and their composition) — the robustness trajectory
      ([BENCH_fault_sweep.json]).
    - ["topology_sweep"]: federated trees (segment count × fan-out) at
      an admitted load point — the end-to-end trajectory
      ([BENCH_topology_sweep.json]).
    - ["topology_fault_sweep"]: the 3-segment tree, clean and under a
      scheduled crash of the root's inbound bridge — bridge failover
      and degraded-mode drain as a pinned trajectory
      ([BENCH_topology_fault_sweep.json]).
    - ["perf_v1"]: the slots/sec perf trajectory — two protocols × two
      scenarios at 5 ms, run with [--profile] so the report carries the
      wall-clock ["perf"] section ([BENCH_perf.json]); the regression
      gate compares only the deterministic cell metrics. *)

val find_builtin : string -> t option
