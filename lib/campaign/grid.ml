module Json = Rtnet_util.Json
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel
module Feasibility = Rtnet_core.Feasibility
module Recorder = Rtnet_telemetry.Recorder
module Registry = Rtnet_telemetry.Registry
module Headroom = Rtnet_telemetry.Headroom
module Run = Rtnet_stats.Run
module Run_json = Rtnet_stats.Run_json
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Beb = Rtnet_baselines.Csma_cd_beb
module Dcr = Rtnet_baselines.Csma_dcr
module Tdma = Rtnet_baselines.Tdma
module Np_edf = Rtnet_edf.Np_edf
module Config_lint = Rtnet_analysis.Config_lint
module Diagnostic = Rtnet_analysis.Diagnostic
module Topo = Rtnet_topology.Topo
module Admit = Rtnet_topology.Admit
module Topo_driver = Rtnet_topology.Driver
module Decompose = Rtnet_core.Decompose

let ( let* ) = Result.bind

type cell = {
  index : int;
  protocol : Spec.protocol;
  scenario : Spec.scenario;
  variant : Spec.variant;
  replicate : int;
  trace_seed : int;
  protocol_seed : int;
  fault_seed : int;
}

(* Fixed nesting order: scenario, variant, replicate, protocol.  The
   seeds depend only on the coordinates (not on the index), so
   reordering the spec's axes renumbers cells but never changes what a
   given configuration computes. *)
let cells spec =
  let acc = ref [] in
  let index = ref 0 in
  List.iteri
    (fun si scenario ->
      List.iteri
        (fun vi variant ->
          for r = 0 to spec.Spec.replicates - 1 do
            List.iteri
              (fun pi protocol ->
                let base = spec.Spec.base_seed in
                acc :=
                  {
                    index = !index;
                    protocol;
                    scenario;
                    variant;
                    replicate = r;
                    trace_seed =
                      Seeding.trace_seed ~base ~scenario:si ~variant:vi
                        ~replicate:r;
                    protocol_seed =
                      Seeding.protocol_seed ~base ~scenario:si ~variant:vi
                        ~replicate:r ~protocol:pi;
                    fault_seed =
                      Seeding.fault_seed ~base ~scenario:si ~variant:vi
                        ~replicate:r;
                  }
                  :: !acc;
                incr index)
              spec.Spec.protocols
          done)
        spec.Spec.variants)
    spec.Spec.scenarios;
  Array.of_list (List.rev !acc)

let key c =
  Printf.sprintf "%s/%s/%s/r%d"
    (Spec.protocol_label c.protocol)
    (Spec.scenario_label c.scenario)
    (Spec.variant_label c.variant)
    c.replicate

type result_ = {
  r_metrics : Run.metrics;
  r_channel : Channel.stats option;
  r_elapsed_s : float;
  r_telemetry : Json.t option;
}

let params_for variant inst =
  Ddcr_params.with_theta
    (Ddcr_params.with_burst (Ddcr_params.default inst)
       variant.Spec.v_burst_bits)
    variant.Spec.v_theta

(* Analytic per-class bounds for the cell's exact configuration — the
   recorder annotates each transmission span and the headroom gauges
   with them. *)
let bounds_for params inst =
  let report = Feasibility.check params inst in
  List.map
    (fun cr ->
      {
        Headroom.b_cls = cr.Feasibility.cr_cls.Message.cls_id;
        b_name = cr.Feasibility.cr_cls.Message.cls_name;
        b_deadline = cr.Feasibility.cr_cls.Message.cls_deadline;
        b_bound = cr.Feasibility.cr_bound;
        b_bound_impl = cr.Feasibility.cr_bound_impl;
      })
    report.Feasibility.per_class

(* A topo scenario expands into a whole federated tree of uniform
   4-source segments (one flow per non-root segment, routed up to the
   root) — mirrored by Spec's scenario doc and the CFG-TOPO lint. *)
let tree_of scenario =
  Topo.tree
    ~name:(Spec.scenario_label scenario)
    ~segments:scenario.Spec.sc_size ~fanout:scenario.Spec.sc_fanout ~sources:4
    ~load:scenario.Spec.sc_load
    ~deadline_windows:scenario.Spec.sc_deadline_windows ()

(* Campaign topo cells decompose slack-weighted: each hop gets its
   B_DDCR bound plus an equal slack share, so a flow admits iff the
   bounds (plus bridge delays) fit its deadline at all — under the
   proportional split the deep hops of a 3-hop flow are starved no
   matter how far the deadline is stretched. *)
let topo_policy = Decompose.Slack_weighted

(* A topo variant's fault plan lands on the tree's {e root} segment —
   the hub every flow terminates at, so its inbound bridge stations
   (the interesting crash targets, station [sources + ordinal]) are
   all valid there.  [Topo.tree] names the root "seg0". *)
let topo_tree_of scenario variant =
  let tree = tree_of scenario in
  match variant.Spec.v_fault_plan with
  | None -> Ok tree
  | Some plan -> Topo.with_faults tree [ ("seg0", plan) ]

let run_topo_cell spec c t0 =
  let horizon = spec.Spec.horizon_ms * 1_000_000 in
  let tree =
    match topo_tree_of c.scenario c.variant with
    | Ok t -> t
    | Error e -> failwith ("topo cell: " ^ e)
  in
  match Admit.elaborate ~policy:topo_policy tree with
  | Error e -> failwith ("topo cell: " ^ e)
  | Ok e ->
    let res =
      match
        Topo_driver.run_seeded e ~seed:c.trace_seed
          ~fault_seed:c.fault_seed ~horizon
      with
      | Ok res -> res
      | Error e -> failwith ("topo cell: " ^ e)
    in
    {
      r_metrics = res.Topo_driver.r_metrics;
      r_channel = res.Topo_driver.r_outcome.Run.channel;
      r_elapsed_s = Unix.gettimeofday () -. t0;
      r_telemetry = None;
    }

let run_cell ?(telemetry = false) spec c =
  let t0 = Unix.gettimeofday () in
  if c.protocol = Spec.Topo then run_topo_cell spec c t0
  else
  let inst = Spec.instance c.scenario in
  let horizon = spec.Spec.horizon_ms * 1_000_000 in
  let trace = Instance.trace inst ~seed:c.trace_seed ~horizon in
  let fault =
    if c.variant.Spec.v_fault_rate > 0. then
      Some
        {
          Channel.fault_rate = c.variant.Spec.v_fault_rate;
          fault_seed = c.protocol_seed;
        }
    else None
  in
  let plan =
    Option.map
      (fun sp -> Rtnet_channel.Fault_plan.create ~horizon ~seed:c.fault_seed sp)
      c.variant.Spec.v_fault_plan
  in
  (* Telemetry is recorded for DDCR cells only — the probes live in
     the DDCR simulator; baseline cells ignore the flag. *)
  let recorder =
    if telemetry && c.protocol = Spec.Ddcr then
      Some
        (Recorder.create ~bounds:(bounds_for (params_for c.variant inst) inst)
           ())
    else None
  in
  let outcome =
    match c.protocol with
    | Spec.Ddcr ->
      let sink =
        match recorder with
        | Some r -> Recorder.sink r
        | None -> Rtnet_telemetry.Sink.null
      in
      Ddcr.run_trace ?fault ?plan ~sink (params_for c.variant inst) inst trace
        ~horizon
    | Spec.Beb ->
      Beb.run_trace ?fault ?plan ~seed:c.protocol_seed inst trace ~horizon
    | Spec.Dcr ->
      Dcr.run_trace (Dcr.of_ddcr (params_for c.variant inst)) inst trace ~horizon
    | Spec.Tdma -> Tdma.run_trace inst trace ~horizon
    | Spec.Oracle -> Np_edf.run inst.Instance.phy trace ~horizon
    | Spec.Topo -> assert false (* handled by [run_topo_cell] above *)
  in
  {
    r_metrics = Run.metrics outcome;
    r_channel = outcome.Run.channel;
    r_elapsed_s = Unix.gettimeofday () -. t0;
    r_telemetry =
      Option.map
        (fun r ->
          Json.Obj
            [
              ("registry", Registry.snapshot_to_json (Recorder.snapshot r));
              ("headroom", Headroom.to_json (Recorder.headroom_table r));
            ])
        recorder;
  }

let result_to_json r =
  Json.Obj
    ([
       ("metrics", Run_json.metrics_to_json r.r_metrics);
       ( "channel",
         match r.r_channel with
         | None -> Json.Null
         | Some st -> Run_json.channel_stats_to_json st );
       ("elapsed_s", Json.Float r.r_elapsed_s);
     ]
    (* Emitted only when present, so pre-telemetry reports (and their
       fingerprints) are byte-identical. *)
    @ match r.r_telemetry with None -> [] | Some t -> [ ("telemetry", t) ])

let result_of_json j =
  let* mj = Json.field "metrics" j in
  let* metrics = Run_json.metrics_of_json mj in
  let* channel =
    match Json.member "channel" j with
    | None | Some Json.Null -> Ok None
    | Some cj -> Result.map Option.some (Run_json.channel_stats_of_json cj)
  in
  let* elapsed =
    match Json.member "elapsed_s" j with
    | None -> Ok 0.
    | Some v -> Json.get_float v
  in
  Ok
    {
      r_metrics = metrics;
      r_channel = channel;
      r_elapsed_s = elapsed;
      r_telemetry = Json.member "telemetry" j;
    }

(* The fail-fast gate: lint every (scenario, variant) DDCR configuration
   of the sweep before forking any worker.  The linter's oracle-aware
   severities apply (a conservative-bound violation the NP-EDF oracle
   forgives is a warning); an [Error] rejects the whole campaign. *)
let lint spec =
  let fault_diags =
    (* Fault plans are scenario-independent: lint each one once. *)
    List.concat_map
      (fun variant ->
        match variant.Spec.v_fault_plan with
        | None -> []
        | Some plan ->
          List.map
            (fun d ->
              {
                d with
                Diagnostic.subject =
                  Spec.variant_label variant ^ ":" ^ d.Diagnostic.subject;
              })
            (Config_lint.check_fault
               ~horizon:(spec.Spec.horizon_ms * 1_000_000)
               plan))
      spec.Spec.variants
  in
  fault_diags
  @ List.concat_map
      (fun scenario ->
        if scenario.Spec.sc_kind = "topo" then
          (* A topo scenario is a whole federation: the CFG-TOPO lint
             covers routing, per-hop budgets and bridge queues in one
             pass.  Variants carrying a fault plan are linted again
             with the plan attached (CFG-TOPO-FAULT: station validity,
             fault-aware bridge oracle, slackless-window warnings). *)
          List.map
            (fun d ->
              {
                d with
                Diagnostic.subject =
                  Spec.scenario_label scenario ^ ":" ^ d.Diagnostic.subject;
              })
            (Config_lint.check_topo ~policy:topo_policy (tree_of scenario))
          @ List.concat_map
              (fun variant ->
                let label =
                  Printf.sprintf "%s/%s" (Spec.scenario_label scenario)
                    (Spec.variant_label variant)
                in
                match variant.Spec.v_fault_plan with
                | None -> []
                | Some _ -> (
                  match topo_tree_of scenario variant with
                  | Error e ->
                    [
                      Diagnostic.error ~rule_id:"CFG-TOPO-FAULT" ~subject:label
                        ~paper_ref:"DESIGN.md #14" e;
                    ]
                  | Ok tree ->
                    List.map
                      (fun d ->
                        {
                          d with
                          Diagnostic.subject = label ^ ":" ^ d.Diagnostic.subject;
                        })
                      (Config_lint.check_topo ~policy:topo_policy tree)))
              spec.Spec.variants
        else
          let inst = Spec.instance scenario in
          List.concat_map
            (fun variant ->
              let label =
                Printf.sprintf "%s/%s" (Spec.scenario_label scenario)
                  (Spec.variant_label variant)
              in
              List.map
                (fun d ->
                  { d with Diagnostic.subject = label ^ ":" ^ d.Diagnostic.subject })
                (Config_lint.check (params_for variant inst) inst))
            spec.Spec.variants)
      spec.Spec.scenarios
