type timing = { worker : int; t0 : float; t1 : float }
type 'b event = Result of int * timing * 'b | Failed of int * timing * string

let default_jobs () = Domain.recommended_domain_count ()

(* -------------------- framing -------------------- *)

(* Each message is [8-byte little-endian length][Marshal payload]; the
   coordinator reassembles frames from whatever chunk boundaries the
   pipe delivers. *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let frame v =
  let payload = Marshal.to_string v [] in
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int64_le b 0 (Int64.of_int len);
  Bytes.blit_string payload 0 b 8 len;
  b

(* Per-pipe reassembly buffer: concatenated unread bytes. *)
type inbox = { fd : Unix.file_descr; pid : int; mutable pending : Bytes.t }

let drain_frames inbox emit =
  let continue = ref true in
  while !continue do
    let avail = Bytes.length inbox.pending in
    if avail < 8 then continue := false
    else
      let len = Int64.to_int (Bytes.get_int64_le inbox.pending 0) in
      if avail < 8 + len then continue := false
      else begin
        let payload = Bytes.sub_string inbox.pending 8 len in
        inbox.pending <-
          Bytes.sub inbox.pending (8 + len) (avail - 8 - len);
        emit (Marshal.from_string payload 0)
      end
  done

(* -------------------- worker -------------------- *)

(* Tasks arrive as [(position, task)] pairs so a retry round can run a
   compacted array of survivors while still reporting the original
   positions. *)
let run_worker ~tasks ~jobs ~rank ~worker_id ~fd f =
  let n = Array.length tasks in
  let i = ref rank in
  while !i < n do
    let pos, task = tasks.(!i) in
    (* Wall-clock is measured in the worker, around [f] alone, so the
       coordinator's timeline reflects compute time, not pipe latency. *)
    let t0 = Unix.gettimeofday () in
    let timing t1 = { worker = worker_id; t0; t1 } in
    let ev =
      match f task with
      | v -> Result (pos, timing (Unix.gettimeofday ()), v)
      | exception e ->
        Failed (pos, timing (Unix.gettimeofday ()), Printexc.to_string e)
    in
    write_all fd (frame ev);
    i := !i + jobs
  done;
  Unix.close fd

(* -------------------- supervised pool -------------------- *)

type give_up_reason = Timed_out of float | Worker_lost of string

type 'b sevent =
  | Completed of int * timing * 'b
  | Task_error of int * timing * string
  | Gave_up of { position : int; attempts : int; reason : give_up_reason }

let reason_text = function
  | Timed_out s -> Printf.sprintf "watchdog timeout after %.2f s" s
  | Worker_lost e -> "worker lost: " ^ e

(* One running supervised worker: exactly one task per fork, so the
   coordinator always knows which task a hung or dead pid was running
   and can kill, back off and retry it individually. *)
type swork = {
  sw_pos : int;
  sw_pid : int;
  sw_fd : Unix.file_descr;
  mutable sw_pending : Bytes.t;
  sw_deadline : float option;
  mutable sw_delivered : bool;
}

let supervise ~jobs ?watchdog_s ?(retries = 1) ?(backoff_s = 0.05)
    ?(on_retry = fun ~position:_ ~attempt:_ ~reason:_ -> ())
    ?(should_stop = fun () -> false) ~on_event f tasks =
  if jobs < 1 then invalid_arg "Pool.supervise: jobs < 1";
  let n = Array.length tasks in
  let attempts = Array.make (max n 1) 0 in
  (* Ready queue: (not-before time, position).  Launch order follows
     readiness, so backed-off retries never starve fresh tasks. *)
  let queue = ref (List.init n (fun i -> (0., i))) in
  let running = ref [] in
  let launches = ref 0 in
  let emitted = ref 0 in
  let emit ev =
    incr emitted;
    on_event ev
  in
  let spawn now pos =
    flush stdout;
    flush stderr;
    let r, w = Unix.pipe ~cloexec:false () in
    match Unix.fork () with
    | 0 ->
      Unix.close r;
      let worker_id = !launches in
      let t0 = Unix.gettimeofday () in
      let timing t1 = { worker = worker_id; t0; t1 } in
      let ev =
        match f tasks.(pos) with
        | v -> Result (pos, timing (Unix.gettimeofday ()), v)
        | exception e ->
          Failed (pos, timing (Unix.gettimeofday ()), Printexc.to_string e)
      in
      (match write_all w (frame ev) with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 2)
    | pid ->
      Unix.close w;
      incr launches;
      running :=
        {
          sw_pos = pos;
          sw_pid = pid;
          sw_fd = r;
          sw_pending = Bytes.empty;
          sw_deadline = Option.map (fun s -> now +. s) watchdog_s;
          sw_delivered = false;
        }
        :: !running
  in
  let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
  let retire sw =
    (try Unix.close sw.sw_fd with Unix.Unix_error _ -> ());
    running := List.filter (fun o -> o != sw) !running;
    reap sw.sw_pid
  in
  (* A failed attempt either re-enqueues the task after a linear
     backoff or — once the retry budget is spent — reports a
     structured [Gave_up] and moves on.  The search never aborts. *)
  let failed now sw reason =
    retire sw;
    let pos = sw.sw_pos in
    attempts.(pos) <- attempts.(pos) + 1;
    if attempts.(pos) > retries then
      emit (Gave_up { position = pos; attempts = attempts.(pos); reason })
    else begin
      on_retry ~position:pos ~attempt:attempts.(pos)
        ~reason:(reason_text reason);
      queue :=
        !queue @ [ (now +. (backoff_s *. float_of_int attempts.(pos)), pos) ]
    end
  in
  let chunk = Bytes.create 65536 in
  let continue = ref true in
  while !continue do
    let now = Unix.gettimeofday () in
    (* Launch every ready task while worker slots are free; a true
       [should_stop] (budget exhausted) stops launching but still
       drains what is already running — graceful degradation. *)
    let stop = should_stop () in
    if stop then queue := [];
    let rec launch () =
      if List.length !running < jobs then
        match List.find_opt (fun (nb, _) -> nb <= now) !queue with
        | Some ((_, pos) as item) ->
          queue := List.filter (fun o -> o != item) !queue;
          spawn now pos;
          launch ()
        | None -> ()
    in
    launch ();
    if !running = [] && !queue = [] then continue := false
    else if !running = [] then
      (* Only backed-off retries remain: sleep until the earliest. *)
      let wake = List.fold_left (fun a (nb, _) -> min a nb) infinity !queue in
      let d = wake -. Unix.gettimeofday () in
      if d > 0. then Unix.sleepf (min d 0.05) else ()
    else begin
      let timeout =
        let next_deadline =
          List.fold_left
            (fun a sw ->
              match sw.sw_deadline with Some d -> min a d | None -> a)
            infinity !running
        in
        let next_ready =
          if List.length !running < jobs then
            List.fold_left (fun a (nb, _) -> min a nb) infinity !queue
          else infinity
        in
        let t = min next_deadline next_ready -. now in
        if t = infinity then -1. else Float.max t 0.001
      in
      let fds = List.map (fun sw -> sw.sw_fd) !running in
      let readable, _, _ =
        try Unix.select fds [] [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun sw ->
          if List.mem sw.sw_fd readable then
            match Unix.read sw.sw_fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              if sw.sw_delivered then retire sw
              else failed now sw (Worker_lost "exited without delivering")
            | r ->
              let ib =
                {
                  fd = sw.sw_fd;
                  pid = sw.sw_pid;
                  pending = Bytes.cat sw.sw_pending (Bytes.sub chunk 0 r);
                }
              in
              drain_frames ib (fun ev ->
                  sw.sw_delivered <- true;
                  match ev with
                  | Result (pos, timing, v) -> emit (Completed (pos, timing, v))
                  | Failed (pos, timing, e) ->
                    (* The task itself raised: deterministic, so a
                       retry would fail identically — report, don't
                       retry. *)
                    emit (Task_error (pos, timing, e)));
              sw.sw_pending <- ib.pending)
        (List.filter (fun sw -> List.mem sw.sw_fd fds) !running);
      (* Kill whatever overran its watchdog and was not delivered. *)
      let now = Unix.gettimeofday () in
      List.iter
        (fun sw ->
          match sw.sw_deadline with
          | Some d when now >= d ->
            (try Unix.kill sw.sw_pid Sys.sigkill with Unix.Unix_error _ -> ());
            if sw.sw_delivered then
              (* Result already in hand; the overrun is only a worker
                 that failed to exit — reclaim it silently. *)
              retire sw
            else
              failed now sw (Timed_out (Option.value watchdog_s ~default:0.))
          | _ -> ())
        !running
    end
  done;
  !emitted

(* -------------------- coordinator -------------------- *)

let map ~jobs ?max_results ?(on_retry = fun _ -> ()) ~on_event f tasks =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  let n = Array.length tasks in
  if n = 0 then 0
  else begin
    let expected = n in
    let collected = ref 0 in
    let stopped = ref false in
    let seen = Array.make n false in
    let target =
      match max_results with None -> expected | Some m -> min m expected
    in
    (* One fork-and-drain round over [(position, task)] pairs.  Returns
       the pids of workers that exited abnormally.  [worker_base]
       offsets the worker ids events report (the retry round's spare
       worker gets id [jobs], distinguishing it on profiles). *)
    let round ~jobs ?(worker_base = 0) indexed =
      let jobs = min jobs (Array.length indexed) in
      (* Flush before forking so buffered output is not duplicated into
         the children. *)
      flush stdout;
      flush stderr;
      let inboxes =
        List.init jobs (fun rank ->
            let r, w = Unix.pipe ~cloexec:false () in
            match Unix.fork () with
            | 0 ->
              (* Child: only its own write end matters.  [Unix._exit]
                 skips at_exit handlers and buffered channels inherited
                 from the coordinator. *)
              Unix.close r;
              (match
                 run_worker ~tasks:indexed ~jobs ~rank
                   ~worker_id:(worker_base + rank) ~fd:w f
               with
              | () -> Unix._exit 0
              | exception _ -> Unix._exit 2)
            | pid ->
              Unix.close w;
              { fd = r; pid; pending = Bytes.empty })
      in
      (* Children inherit the read (and not-yet-created write) ends of
         pipes forked before them; that is harmless — they never read,
         and EOF detection only needs the coordinator's copies closed,
         which happens below, plus each child's copies vanishing when
         it exits. *)
      let open_inboxes = ref inboxes in
      let chunk = Bytes.create 65536 in
      while !open_inboxes <> [] && not !stopped do
        let fds = List.map (fun ib -> ib.fd) !open_inboxes in
        let readable, _, _ = Unix.select fds [] [] (-1.) in
        List.iter
          (fun ib ->
            if (not !stopped) && List.mem ib.fd readable then begin
              match Unix.read ib.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                Unix.close ib.fd;
                open_inboxes := List.filter (fun o -> o != ib) !open_inboxes
              | r ->
                ib.pending <- Bytes.cat ib.pending (Bytes.sub chunk 0 r);
                drain_frames ib (fun ev ->
                    if not !stopped then begin
                      (match ev with
                      | Result (pos, _, _) | Failed (pos, _, _) ->
                        seen.(pos) <- true);
                      incr collected;
                      on_event ev;
                      if !collected >= target then stopped := true
                    end)
            end)
          !open_inboxes
      done;
      if !stopped then
        (* Early stop: kill whatever is still running. *)
        List.iter
          (fun ib ->
            (try Unix.kill ib.pid Sys.sigkill with Unix.Unix_error _ -> ());
            try Unix.close ib.fd with Unix.Unix_error _ -> ())
          !open_inboxes;
      let crashed = ref [] in
      List.iter
        (fun ib ->
          match Unix.waitpid [] ib.pid with
          | _, Unix.WEXITED 0 -> ()
          | _, (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
            crashed := ib.pid :: !crashed
          | exception Unix.Unix_error _ -> ())
        inboxes;
      !crashed
    in
    let (_ : int list) =
      round ~jobs (Array.mapi (fun i t -> (i, t)) tasks)
    in
    (* A worker that died (crash, signal) leaves its undelivered tasks
       behind.  Retry them once on a spare worker — a transient death
       (OOM kill of one cell, a stray signal) then costs only the lost
       cells, not the campaign.  A second failure aborts. *)
    if (not !stopped) && !collected < expected then begin
      let missing =
        List.filter (fun i -> not seen.(i)) (List.init n (fun i -> i))
      in
      on_retry missing;
      let crashed =
        round ~jobs:1 ~worker_base:jobs
          (Array.of_list (List.map (fun i -> (i, tasks.(i))) missing))
      in
      if (not !stopped) && !collected < expected then
        failwith
          (Printf.sprintf
             "Pool.map: collected %d of %d results after retrying %d cells \
              (worker died twice; pids: %s)"
             !collected expected (List.length missing)
             (String.concat ", " (List.map string_of_int crashed)))
    end;
    !collected
  end
