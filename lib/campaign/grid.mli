(** Compilation of a campaign spec into its deterministic work-list,
    and execution of individual cells.

    {!cells} enumerates the full sweep in a fixed nesting order
    (scenario, then variant, then replicate, then protocol), assigns
    each cell a dense index and its derived seeds ({!Seeding}), and
    gives it a stable human-readable {!key} — the identity used by the
    checkpoint journal and the regression gate.  {!run_cell} executes
    one cell with the existing simulators and reduces it to
    {!Rtnet_stats.Run.metrics}; it is what the worker processes run.

    {!lint} is the campaign's fail-fast gate: every (scenario ×
    variant) configuration of the sweep is passed through the
    [rtnet.analysis] configuration linter before any worker is forked,
    so an infeasible sweep is rejected in milliseconds instead of
    burning worker time. *)

type cell = {
  index : int;  (** dense position in the work-list *)
  protocol : Spec.protocol;
  scenario : Spec.scenario;
  variant : Spec.variant;
  replicate : int;  (** 0-based replication number *)
  trace_seed : int;  (** arrival-trace seed — protocol-independent *)
  protocol_seed : int;  (** protocol/fault randomness seed *)
  fault_seed : int;
      (** fault-plan sampler seed — protocol-independent, so every
          protocol faces the same fault sample path *)
}

val cells : Spec.t -> cell array
(** [cells spec] is the work-list, indexed by [cell.index]. *)

val key : cell -> string
(** [key c] is ["<protocol>/<scenario>/<variant>/r<replicate>"], e.g.
    ["ddcr/trading-4/f0.05-b0-t0/r1"] — unique within a campaign and
    stable across runs and code versions. *)

type result_ = {
  r_metrics : Rtnet_stats.Run.metrics;
  r_channel : Rtnet_channel.Channel.stats option;
      (** medium counters ([None] for the oracle, which has none) *)
  r_elapsed_s : float;  (** wall-clock cell runtime (excluded from
                            determinism comparisons) *)
  r_telemetry : Rtnet_util.Json.t option;
      (** telemetry snapshot (registry + per-class headroom), recorded
          only for DDCR cells run with [telemetry:true]; serialized
          behind an optional key, so reports without it are
          byte-identical to pre-telemetry ones *)
}

val run_cell : ?telemetry:bool -> Spec.t -> cell -> result_
(** [run_cell spec c] builds the instance, generates the seeded trace
    and runs the cell's protocol to the spec horizon.  Deterministic
    up to [r_elapsed_s].  With [telemetry] (default [false]), a DDCR
    cell additionally records a {!Rtnet_telemetry.Recorder} snapshot
    into [r_telemetry]; the snapshot itself is deterministic. *)

val result_to_json : result_ -> Rtnet_util.Json.t

val result_of_json : Rtnet_util.Json.t -> (result_, string) result

val lint : Spec.t -> Rtnet_analysis.Diagnostic.t list
(** [lint spec] runs {!Rtnet_analysis.Config_lint.check} over every
    (scenario × variant) configuration of the sweep, with the same
    CSMA/DDCR parameter derivation {!run_cell} uses, plus
    {!Rtnet_analysis.Config_lint.check_fault} over every variant's
    fault plan (against the spec horizon).  Subjects are prefixed with
    the scenario/variant labels.  The runner aborts the campaign iff
    the result contains an [Error] diagnostic. *)
