module Diagnostic = Rtnet_analysis.Diagnostic
module Sink = Rtnet_telemetry.Sink
module Perf = Rtnet_obs.Perf

type options = {
  jobs : int;
  out : string;
  journal : string option;
  resume : bool;
  max_cells : int option;
  progress : (done_:int -> total:int -> key:string -> elapsed_s:float -> unit)
             option;
  telemetry : bool;
  sink : Sink.t;
}

let default_options ~out =
  {
    jobs = Pool.default_jobs ();
    out;
    journal = None;
    resume = false;
    max_cells = None;
    progress = None;
    telemetry = false;
    sink = Sink.null;
  }

let order_failures l =
  List.map snd
    (List.sort (fun (a, _) (b, _) -> compare (a : int) b) l)

type error =
  | Invalid_spec of string
  | Lint_rejected of Diagnostic.t list
  | Checkpoint_error of string
  | Worker_failure of string

let pp_error fmt = function
  | Invalid_spec msg -> Format.fprintf fmt "invalid spec: %s" msg
  | Lint_rejected diags ->
    Format.fprintf fmt "configuration lint rejected the campaign:";
    List.iter
      (fun d ->
        if d.Diagnostic.severity = Diagnostic.Error then
          Format.fprintf fmt "@\n  %a" Diagnostic.pp d)
      diags
  | Checkpoint_error msg -> Format.fprintf fmt "checkpoint: %s" msg
  | Worker_failure msg -> Format.fprintf fmt "worker failure: %s" msg

type outcome =
  | Complete of Report.t
  | Interrupted of { completed : int; total : int }

let ( let* ) = Result.bind

let journal_path options =
  match options.journal with
  | Some p -> p
  | None -> Checkpoint.journal_path ~out:options.out

let load_journal options spec =
  let path = journal_path options in
  if not options.resume then begin
    (* A fresh run must not silently absorb a stale journal. *)
    Checkpoint.remove ~path;
    Ok []
  end
  else
    let* entries =
      (* Truncation warnings (torn tail line, torn header) go to
         stderr: the resume proceeds, but the operator should know a
         kill landed mid-write. *)
      Result.map_error
        (fun e -> e)
        (Checkpoint.load
           ~on_warning:(fun w -> Printf.eprintf "ddcr_campaign: warning: %s\n%!" w)
           ~path ~spec ())
    in
    List.fold_left
      (fun acc (index, rj) ->
        let* acc = acc in
        let* r = Grid.result_of_json rj in
        Ok ((index, r) :: acc))
      (Ok []) entries
    |> Result.map List.rev

let run options spec =
  let t0 = Unix.gettimeofday () in
  (* Perf profiling rides on the telemetry flag: lint/cells/report
     phases, GC words and the slots/sec headline land in the report's
     fingerprint-stripped "perf" section. *)
  let perf =
    if options.telemetry then Some (Perf.start ~phase:"prepare" ()) else None
  in
  let perf_phase name = Option.iter (fun c -> Perf.phase c name) perf in
  let* () =
    Result.map_error (fun e -> Invalid_spec e) (Spec.validate spec)
  in
  let diags = Grid.lint spec in
  let* () =
    if List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags
    then Error (Lint_rejected diags)
    else Ok ()
  in
  let cells = Grid.cells spec in
  let total = Array.length cells in
  let* recovered =
    Result.map_error (fun e -> Checkpoint_error e) (load_journal options spec)
  in
  let results : (int, Grid.result_) Hashtbl.t = Hashtbl.create total in
  List.iter
    (fun (index, r) ->
      if index < 0 || index >= total then ()
      else Hashtbl.replace results index r)
    recovered;
  let pending =
    Array.of_list
      (List.filter
         (fun c -> not (Hashtbl.mem results c.Grid.index))
         (Array.to_list cells))
  in
  let report_progress key elapsed_s =
    match options.progress with
    | None -> ()
    | Some f -> f ~done_:(Hashtbl.length results) ~total ~key ~elapsed_s
  in
  perf_phase "cells";
  let* () =
    if Array.length pending = 0 then Ok ()
    else begin
      let path = journal_path options in
      let oc = Checkpoint.open_for_append ~path ~spec in
      let failures = ref [] in
      let worker_probe tm key ok =
        if options.sink.Sink.enabled then
          options.sink.Sink.worker_cell ~worker:tm.Pool.worker ~key
            ~t0:tm.Pool.t0 ~t1:tm.Pool.t1 ~ok
      in
      let on_event = function
        | Pool.Result (i, tm, r) ->
          let c = pending.(i) in
          let key = Grid.key c in
          worker_probe tm key true;
          Checkpoint.append oc ~index:c.Grid.index ~key
            (Grid.result_to_json r);
          Hashtbl.replace results c.Grid.index r;
          report_progress key r.Grid.r_elapsed_s
        | Pool.Failed (i, tm, msg) ->
          let key = Grid.key pending.(i) in
          worker_probe tm key false;
          (* Keyed by submission position: events arrive in frame
             order, but failures are reported in submission order. *)
          failures := (i, Printf.sprintf "%s: %s" key msg) :: !failures
      in
      let on_retry missing =
        (* Journal the cells a dead worker never delivered before the
           spare worker retries them: if the retry also dies, the
           journal shows exactly which cells were lost, and a resumed
           run re-executes them. *)
        List.iter
          (fun i ->
            let c = pending.(i) in
            Checkpoint.append_failed oc ~index:c.Grid.index ~key:(Grid.key c)
              ~reason:"worker died before delivering this cell; retrying")
          missing
      in
      let run_pool () =
        Pool.map ~jobs:options.jobs ?max_results:options.max_cells ~on_retry
          ~on_event
          (Grid.run_cell ~telemetry:options.telemetry spec)
          pending
      in
      let r =
        match run_pool () with
        | (_ : int) -> Ok ()
        | exception Failure msg -> Error (Worker_failure msg)
      in
      close_out_noerr oc;
      let* () = r in
      match !failures with
      | [] -> Ok ()
      | fs -> Error (Worker_failure (String.concat "; " (order_failures fs)))
    end
  in
  if Hashtbl.length results < total then
    Ok (Interrupted { completed = Hashtbl.length results; total })
  else begin
    perf_phase "report";
    let entries =
      List.init total (fun i ->
          {
            Report.ce_index = i;
            ce_key = Grid.key cells.(i);
            ce_result = Hashtbl.find results i;
          })
    in
    let perf_json =
      Option.map
        (fun c ->
          (* Virtual bit-times simulated across the whole grid: the
             slots/sec numerator (1 bit-time = 1 slot tick). *)
          Perf.to_json (Perf.finish c ~slots:(total * spec.Spec.horizon_ms * 1_000_000)))
        perf
    in
    let report =
      {
        Report.campaign = spec.Spec.name;
        spec_hash = Spec.hash spec;
        spec;
        jobs = options.jobs;
        wall_clock_s = Unix.gettimeofday () -. t0;
        perf = perf_json;
        cells = entries;
      }
    in
    Report.write ~path:options.out report;
    Checkpoint.remove ~path:(journal_path options);
    Ok (Complete report)
  end
