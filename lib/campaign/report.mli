(** Versioned campaign report ([BENCH_<name>.json]) and the
    perf-regression gate.

    A report bundles the spec (and its hash), the per-cell metrics and
    the run's timing metadata into one JSON document.  Everything
    except the timing fields ([elapsed_s] per cell, [wall_clock_s] and
    [jobs] at the top) is a pure function of the spec, so
    {!fingerprint} — a digest of the canonical JSON with timings
    stripped — is identical across [-j 1] and [-j 8] runs, across
    resumed runs, and across machines.

    {!compare_reports} is the regression gate: it matches cells of a
    fresh report against a stored baseline by {!Grid.key} and flags
    every metric that degraded beyond the configured tolerances. *)

type cell_entry = {
  ce_index : int;
  ce_key : string;
  ce_result : Grid.result_;
}

type t = {
  campaign : string;
  spec_hash : string;
  spec : Spec.t;
  jobs : int;  (** worker count of the producing run (timing metadata) *)
  wall_clock_s : float;  (** coordinator wall-clock (timing metadata) *)
  perf : Rtnet_util.Json.t option;
      (** perf-counter section ([Rtnet_obs.Perf.to_json]: slots/sec
          headline, GC allocation words, per-phase wall timing) —
          recorded by profiled runs, timing metadata like [jobs]:
          stripped from fingerprints, absent sections tolerated *)
  cells : cell_entry list;  (** sorted by [ce_index] *)
}

val schema_version : int

val to_json : t -> Rtnet_util.Json.t
(** Canonical rendering, fixed key order. *)

val of_json : Rtnet_util.Json.t -> (t, string) result
(** Rejects unknown schema versions and reports whose stored
    [spec_hash] does not match the embedded spec (a hand-edited or
    corrupted baseline). *)

val write : path:string -> t -> unit
(** [write ~path r] pretty-prints the report to [path]
    (deterministically — byte-identical for equal reports). *)

val load : path:string -> (t, string) result

val strip_timings : Rtnet_util.Json.t -> Rtnet_util.Json.t
(** Remove every timing field ([elapsed_s], [wall_clock_s], [jobs],
    the whole [perf] section) at any depth, leaving only the
    deterministic content. *)

val fingerprint : t -> string
(** Hex digest of the canonical timing-stripped JSON.  Two runs of the
    same spec fingerprint identically regardless of [-j]. *)

type tolerance = {
  tol_miss_ratio : float;
      (** max allowed absolute increase in per-cell miss ratio *)
  tol_latency_rel : float;
      (** max allowed relative increase in worst/mean latency *)
  tol_delivered : int;  (** max allowed absolute drop in deliveries *)
}

val default_tolerance : tolerance
(** [{tol_miss_ratio = 0.; tol_latency_rel = 0.; tol_delivered = 0}] —
    the simulators are deterministic, so by default any degradation at
    all is a regression. *)

type regression = {
  reg_key : string;  (** cell key *)
  reg_metric : string;  (** e.g. ["miss_ratio"] *)
  reg_baseline : float;
  reg_current : float;
}

val pp_regression : Format.formatter -> regression -> unit

val compare_reports :
  tolerance:tolerance -> baseline:t -> current:t ->
  (regression list, string) result
(** [compare_reports ~tolerance ~baseline ~current] is [Ok \[\]] when
    no cell degraded beyond tolerance, [Ok regs] listing each
    violation otherwise, and [Error] when the reports are not
    comparable at all: different spec hashes, or cells present in one
    but not the other. *)
