(** Campaign execution: lint gate → work-list → worker pool →
    checkpoint → report.

    {!run} validates the spec, runs the fail-fast configuration lint
    ({!Grid.lint}), enumerates the work-list, subtracts cells already
    recorded in the checkpoint journal (when resuming), executes the
    remainder on a {!Pool} of worker processes — appending each result
    to the journal as it arrives — and, once every cell is in, writes
    the versioned report and removes the journal.

    Because each cell's seeds derive from its coordinates alone, the
    report content (minus timing fields) is identical for any [jobs]
    and for any interrupt/resume split. *)

type options = {
  jobs : int;  (** worker processes (clamped to the cell count) *)
  out : string;  (** report path, e.g. [BENCH_smoke.json] *)
  journal : string option;
      (** checkpoint path; default [out ^ ".ckpt"] *)
  resume : bool;
      (** reuse an existing journal instead of starting fresh *)
  max_cells : int option;
      (** stop after this many fresh results, leaving the journal in
          place — the interrupted-campaign test hook *)
  progress : (done_:int -> total:int -> key:string -> elapsed_s:float -> unit)
             option;  (** per-cell completion callback *)
  telemetry : bool;
      (** have each DDCR cell record a telemetry snapshot, embedded in
          the report behind the optional ["telemetry"] key (absent
          when off, so report fingerprints are unchanged) *)
  sink : Rtnet_telemetry.Sink.t;
      (** coordinator-side sink; receives one [worker_cell] probe per
          pool event (the wall-clock worker timeline) *)
}

val default_options : out:string -> options
(** [jobs = Pool.default_jobs ()], journal derived from [out], no
    resume, no cap, no progress callback, telemetry off,
    [Sink.null]. *)

val order_failures : (int * string) list -> string list
(** [order_failures l] sorts [(submission position, message)] pairs by
    position and returns the messages — worker failures arrive in
    frame order (an arbitrary interleaving), but are reported in
    submission order. *)

type error =
  | Invalid_spec of string
  | Lint_rejected of Rtnet_analysis.Diagnostic.t list
      (** every diagnostic from the gate (the rejection is triggered by
          the [Error]-severity ones) *)
  | Checkpoint_error of string
  | Worker_failure of string

val pp_error : Format.formatter -> error -> unit

type outcome =
  | Complete of Report.t
      (** report written to [options.out], journal removed *)
  | Interrupted of { completed : int; total : int }
      (** [max_cells] stopped the run; journal left for resume *)

val run : options -> Spec.t -> (outcome, error) result
