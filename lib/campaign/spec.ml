module Json = Rtnet_util.Json
module Scenarios = Rtnet_workload.Scenarios
module Fault_plan = Rtnet_channel.Fault_plan

let ( let* ) = Result.bind

type protocol = Ddcr | Beb | Dcr | Tdma | Oracle | Topo

(* [Topo] is deliberately not in [all_protocols]: it is a different
   shape of cell (a federated tree of segments, not one medium), only
   meaningful with "topo" scenarios, and adding it here would change
   the cell grids — and golden baselines — of every shipped campaign. *)
let all_protocols = [ Ddcr; Beb; Dcr; Tdma; Oracle ]

let protocol_label = function
  | Ddcr -> "ddcr"
  | Beb -> "beb"
  | Dcr -> "dcr"
  | Tdma -> "tdma"
  | Oracle -> "oracle"
  | Topo -> "topo"

let protocol_of_string = function
  | "ddcr" -> Ok Ddcr
  | "beb" -> Ok Beb
  | "dcr" -> Ok Dcr
  | "tdma" -> Ok Tdma
  | "oracle" -> Ok Oracle
  | "topo" -> Ok Topo
  | other -> Error (Printf.sprintf "unknown protocol %S" other)

type scenario = {
  sc_kind : string;
  sc_size : int;
  sc_load : float;
  sc_deadline_windows : float;
  sc_fanout : int;
}

let scenario_kinds =
  [
    "videoconference"; "atc"; "trading"; "atm"; "manufacturing"; "skewed";
    "uniform"; "topo";
  ]

let scenario_label sc =
  if sc.sc_kind = "uniform" then
    Printf.sprintf "uniform-%d-%.2f" sc.sc_size sc.sc_load
  else if sc.sc_kind = "topo" then
    Printf.sprintf "topo-%dseg-f%d-%.2f" sc.sc_size sc.sc_fanout sc.sc_load
  else Printf.sprintf "%s-%d" sc.sc_kind sc.sc_size

let instance sc =
  match sc.sc_kind with
  | "videoconference" -> Scenarios.videoconference ~stations:sc.sc_size
  | "atc" -> Scenarios.air_traffic_control ~radars:sc.sc_size
  | "trading" -> Scenarios.trading ~gateways:sc.sc_size
  | "atm" -> Scenarios.atm_fabric ~ports:sc.sc_size
  | "manufacturing" -> Scenarios.manufacturing ~cells:sc.sc_size
  | "skewed" -> Scenarios.skewed ~sources:sc.sc_size ~heavy_fraction:0.7
  | "uniform" ->
    Scenarios.uniform ~sources:sc.sc_size ~classes_per_source:2
      ~load:sc.sc_load ~deadline_windows:sc.sc_deadline_windows
  | "topo" ->
    (* A "topo" scenario is a whole federation, not one medium —
       Grid.run_cell builds it via Rtnet_topology.Topo.tree. *)
    failwith "topo scenarios have no single-segment instance"
  | other -> failwith (Printf.sprintf "unknown scenario %S" other)

type variant = {
  v_fault_rate : float;
  v_burst_bits : int;
  v_theta : int;
  v_fault_plan : Fault_plan.spec option;
}

let default_variant =
  { v_fault_rate = 0.; v_burst_bits = 0; v_theta = 0; v_fault_plan = None }

let variant_label v =
  let base = Printf.sprintf "f%.2f-b%d-t%d" v.v_fault_rate v.v_burst_bits v.v_theta in
  match v.v_fault_plan with
  | None -> base
  | Some plan -> base ^ "-" ^ Fault_plan.label plan

type t = {
  name : string;
  base_seed : int;
  replicates : int;
  horizon_ms : int;
  protocols : protocol list;
  scenarios : scenario list;
  variants : variant list;
}

let cell_count spec =
  List.length spec.protocols * List.length spec.scenarios
  * List.length spec.variants * spec.replicates

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

let validate spec =
  if spec.name = "" then Error "campaign name is empty"
  else if String.exists (fun c -> c = '/' || c = ' ') spec.name then
    Error "campaign name must not contain '/' or spaces"
  else if spec.replicates < 1 then Error "replicates < 1"
  else if spec.horizon_ms < 1 then Error "horizon_ms < 1"
  else if spec.protocols = [] then Error "no protocols"
  else if spec.scenarios = [] then Error "no scenarios"
  else if spec.variants = [] then Error "no variants"
  else
    let* () =
      match find_dup (List.map protocol_label spec.protocols) with
      | Some p -> Error (Printf.sprintf "duplicate protocol %S" p)
      | None -> Ok ()
    in
    let* () =
      match find_dup (List.map scenario_label spec.scenarios) with
      | Some s -> Error (Printf.sprintf "duplicate scenario %S" s)
      | None -> Ok ()
    in
    let* () =
      match find_dup (List.map variant_label spec.variants) with
      | Some v -> Error (Printf.sprintf "duplicate variant %S" v)
      | None -> Ok ()
    in
    let* () =
      List.fold_left
        (fun acc sc ->
          let* () = acc in
          if not (List.mem sc.sc_kind scenario_kinds) then
            Error (Printf.sprintf "unknown scenario kind %S" sc.sc_kind)
          else if sc.sc_size < 1 then
            Error (Printf.sprintf "%s: size < 1" (scenario_label sc))
          else if sc.sc_kind = "skewed" && sc.sc_size < 2 then
            Error "skewed: size < 2"
          else if
            (sc.sc_kind = "uniform" || sc.sc_kind = "topo")
            && (sc.sc_load <= 0. || sc.sc_deadline_windows <= 0.)
          then
            Error
              (Printf.sprintf "%s: load and deadline_windows must be positive"
                 sc.sc_kind)
          else if sc.sc_kind = "topo" && sc.sc_fanout < 1 then
            Error "topo: fanout < 1"
          else Ok ())
        (Ok ()) spec.scenarios
    in
    (* Topo cells are a different shape (a federated tree, not one
       medium): the protocol and the scenario kind must opt in
       together, and the single-medium variant axes (faults, bursting,
       theta) do not apply. *)
    let* () =
      let topo_scenario = List.exists (fun sc -> sc.sc_kind = "topo") spec.scenarios in
      let topo_protocol = List.mem Topo spec.protocols in
      if not (topo_scenario || topo_protocol) then Ok ()
      else if spec.protocols <> [ Topo ] then
        Error "topo scenarios require protocols = [topo] (and vice versa)"
      else if List.exists (fun sc -> sc.sc_kind <> "topo") spec.scenarios then
        Error "protocol topo requires every scenario to be of kind topo"
      else if
        (* The fault-plan axis does apply to federations (Grid attaches
           the plan to the tree's root segment); the single-medium axes
           (fault_rate, bursting, theta) still do not. *)
        List.exists
          (fun v -> { v with v_fault_plan = None } <> default_variant)
          spec.variants
      then
        Error
          "topo campaigns take only default-shaped variants (a fault \
           plan is allowed; fault_rate, bursting and theta are not)"
      else Ok ()
    in
    List.fold_left
      (fun acc v ->
        let* () = acc in
        if v.v_fault_rate < 0. || v.v_fault_rate > 1. then
          Error (Printf.sprintf "%s: fault rate out of [0, 1]" (variant_label v))
        else if v.v_burst_bits < 0 then Error "negative burst budget"
        else if v.v_theta < 0 then Error "negative theta"
        else
          match v.v_fault_plan with
          | None -> Ok ()
          | Some plan ->
            let* () =
              Result.map_error
                (fun e -> Printf.sprintf "%s: %s" (variant_label v) e)
                (Fault_plan.validate ~horizon:(spec.horizon_ms * 1_000_000)
                   plan)
            in
            if v.v_fault_rate > 0. then
              Error
                (Printf.sprintf
                   "%s: fault_rate and fault_plan are mutually exclusive"
                   (variant_label v))
            else if
              (* Per-source faults need divergence recovery, which only
                 CSMA/DDCR implements; wire-level garbling is also
                 meaningful for BEB (it retries). *)
              Fault_plan.has_local_faults plan
              && List.exists (fun p -> p <> Ddcr && p <> Topo) spec.protocols
            then
              Error
                (Printf.sprintf
                   "%s: per-source faults (misperception/crashes) require \
                    protocols = [ddcr]"
                   (variant_label v))
            else if
              List.exists
                (fun p -> p <> Ddcr && p <> Beb && p <> Topo)
                spec.protocols
            then
              Error
                (Printf.sprintf
                   "%s: fault plans only apply to ddcr, beb and topo"
                   (variant_label v))
            else Ok ())
      (Ok ()) spec.variants

(* ---------------------------------------------------------------- *)
(* JSON codec.  [to_json] is canonical (fixed key order, all fields   *)
(* explicit): [hash] and the determinism guarantee depend on it.      *)

let scenario_to_json sc =
  (* The "fanout" key is emitted only for topo scenarios, so the
     canonical bytes — and therefore [hash] — of every pre-topology
     spec are unchanged (committed baselines keep loading). *)
  Json.Obj
    ([
       ("kind", Json.String sc.sc_kind);
       ("size", Json.Int sc.sc_size);
       ("load", Json.Float sc.sc_load);
       ("deadline_windows", Json.Float sc.sc_deadline_windows);
     ]
    @ if sc.sc_kind = "topo" then [ ("fanout", Json.Int sc.sc_fanout) ] else [])

let variant_to_json v =
  (* The "fault_plan" key is emitted only when set, so the canonical
     bytes — and therefore [hash] — of every pre-fault-plan spec are
     unchanged (committed baselines keep loading). *)
  Json.Obj
    ([
       ("fault_rate", Json.Float v.v_fault_rate);
       ("burst_bits", Json.Int v.v_burst_bits);
       ("theta", Json.Int v.v_theta);
     ]
    @
    match v.v_fault_plan with
    | None -> []
    | Some plan -> [ ("fault_plan", Fault_plan.spec_to_json plan) ])

let to_json spec =
  Json.Obj
    [
      ("name", Json.String spec.name);
      ("base_seed", Json.Int spec.base_seed);
      ("replicates", Json.Int spec.replicates);
      ("horizon_ms", Json.Int spec.horizon_ms);
      ( "protocols",
        Json.List
          (List.map (fun p -> Json.String (protocol_label p)) spec.protocols)
      );
      ("scenarios", Json.List (List.map scenario_to_json spec.scenarios));
      ("variants", Json.List (List.map variant_to_json spec.variants));
    ]

let opt_field j key decode default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> decode v

let scenario_of_json j =
  let* kind = Result.bind (Json.field "kind" j) Json.get_string in
  let* size = Result.bind (Json.field "size" j) Json.get_int in
  let* load = opt_field j "load" Json.get_float 0.3 in
  let* dw = opt_field j "deadline_windows" Json.get_float 2.0 in
  let* fanout = opt_field j "fanout" Json.get_int 1 in
  Ok
    {
      sc_kind = kind;
      sc_size = size;
      sc_load = load;
      sc_deadline_windows = dw;
      sc_fanout = fanout;
    }

let variant_of_json j =
  let* fault = opt_field j "fault_rate" Json.get_float 0. in
  let* burst = opt_field j "burst_bits" Json.get_int 0 in
  let* theta = opt_field j "theta" Json.get_int 0 in
  let* plan =
    match Json.member "fault_plan" j with
    | None | Some Json.Null -> Ok None
    | Some pj -> Result.map Option.some (Fault_plan.spec_of_json pj)
  in
  Ok
    {
      v_fault_rate = fault;
      v_burst_bits = burst;
      v_theta = theta;
      v_fault_plan = plan;
    }

let list_field j key decode_one =
  let* v = Json.field key j in
  let* items = Json.get_list v in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* x = decode_one item in
      Ok (x :: acc))
    (Ok []) items
  |> Result.map List.rev

let of_json j =
  let* name = Result.bind (Json.field "name" j) Json.get_string in
  let* base_seed = opt_field j "base_seed" Json.get_int 1 in
  let* replicates = opt_field j "replicates" Json.get_int 1 in
  let* horizon_ms = opt_field j "horizon_ms" Json.get_int 10 in
  let* protocols =
    list_field j "protocols" (fun v ->
        Result.bind (Json.get_string v) protocol_of_string)
  in
  let* scenarios = list_field j "scenarios" scenario_of_json in
  let* variants =
    match Json.member "variants" j with
    | None -> Ok [ default_variant ]
    | Some _ -> list_field j "variants" variant_of_json
  in
  Ok { name; base_seed; replicates; horizon_ms; protocols; scenarios; variants }

let load_file path =
  let* j = Json.parse_file path in
  let* spec =
    Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (of_json j)
  in
  let* () =
    Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (validate spec)
  in
  Ok spec

let hash spec = Digest.to_hex (Digest.string (Json.to_string (to_json spec)))

(* ---------------------------------------------------------------- *)
(* Shipped campaigns.  Scenario sizes track [Scenarios.all] (the      *)
(* sizes the ddcr_lint gate keeps green) scaled down where runtime    *)
(* matters.                                                           *)

let scenario ?(load = 0.3) ?(deadline_windows = 2.0) kind size =
  {
    sc_kind = kind;
    sc_size = size;
    sc_load = load;
    sc_deadline_windows = deadline_windows;
    sc_fanout = 1;
  }

let topo_scenario ~segments ~fanout ~load ~deadline_windows =
  {
    sc_kind = "topo";
    sc_size = segments;
    sc_load = load;
    sc_deadline_windows = deadline_windows;
    sc_fanout = fanout;
  }

let smoke =
  {
    name = "smoke";
    base_seed = 7;
    replicates = 1;
    horizon_ms = 1;
    protocols = [ Ddcr; Tdma ];
    scenarios = [ scenario "trading" 3; scenario "videoconference" 3 ];
    variants = [ default_variant ];
  }

let campaign_v1 =
  {
    name = "campaign_v1";
    base_seed = 42;
    replicates = 2;
    horizon_ms = 2;
    protocols = all_protocols;
    scenarios =
      [
        scenario "trading" 4;
        scenario "videoconference" 6;
        scenario "uniform" 8 ~load:0.3 ~deadline_windows:2.0;
      ];
    variants = [ default_variant; { default_variant with v_fault_rate = 0.05 } ];
  }

let load_sweep =
  {
    name = "load_sweep";
    base_seed = 42;
    replicates = 3;
    horizon_ms = 10;
    protocols = all_protocols;
    scenarios =
      List.map
        (fun load -> scenario "uniform" 8 ~load ~deadline_windows:2.0)
        [ 0.1; 0.3; 0.5; 0.7; 0.85; 0.95 ];
    variants = [ default_variant ];
  }

let fault_sweep =
  (* Robustness sweep: CSMA/DDCR only (the only protocol with
     divergence recovery) across every fault-plan axis — clean
     reference, i.i.d. noise at two rates, Gilbert–Elliott bursts,
     misperception, a scheduled crash/rejoin, and everything at once.
     Crash windows sit inside the 5 ms horizon so stations rejoin. *)
  let ms = 1_000_000 in
  let planned plan = { default_variant with v_fault_plan = Some plan } in
  {
    name = "fault_sweep";
    base_seed = 11;
    replicates = 2;
    horizon_ms = 5;
    protocols = [ Ddcr ];
    scenarios = [ scenario "videoconference" 4; scenario "trading" 3 ];
    variants =
      [
        default_variant;
        planned (Fault_plan.iid 0.05);
        planned (Fault_plan.iid 0.15);
        planned
          (Fault_plan.gilbert_elliott ~p_enter:0.02 ~p_exit:0.2
             ~rate_good:0.01 ~rate_bad:0.8);
        planned (Fault_plan.misperceive 0.02);
        planned (Fault_plan.crash ~source:1 ~from_:(1 * ms) ~until:(2 * ms));
        planned
          (Fault_plan.compose
             (Fault_plan.compose
                (Fault_plan.gilbert_elliott ~p_enter:0.02 ~p_exit:0.2
                   ~rate_good:0.01 ~rate_bad:0.8)
                (Fault_plan.misperceive 0.02))
             (Fault_plan.crash ~source:2 ~from_:(2 * ms) ~until:(3 * ms)));
      ];
  }

let topology_sweep =
  (* Federation sweep: segment count × fan-out over uniform trees of
     4-source segments (Grid builds them with Rtnet_topology.Topo.tree).
     The load/deadline point is chosen so every cell passes end-to-end
     admission — the golden baseline then pins "admitted topology, zero
     unexcused misses" across the grid. *)
  {
    name = "topology_sweep";
    base_seed = 23;
    replicates = 1;
    horizon_ms = 5;
    protocols = [ Topo ];
    scenarios =
      [
        topo_scenario ~segments:3 ~fanout:2 ~load:0.1 ~deadline_windows:16.0;
        topo_scenario ~segments:5 ~fanout:2 ~load:0.1 ~deadline_windows:16.0;
        topo_scenario ~segments:7 ~fanout:3 ~load:0.1 ~deadline_windows:16.0;
      ];
    variants = [ default_variant ];
  }

let topology_fault_sweep =
  (* Degraded-mode sweep: the admitted 3-segment tree from
     topology_sweep's first point, clean and under a scheduled crash
     of the root's inbound bridge station (station 4 of seg0 = bridge
     br1).  Grid attaches the plan to the tree's root segment; the
     golden baseline pins the failover behaviour — held hand-offs,
     catch-up drain at revival, miss attribution — byte-for-byte. *)
  let ms = 1_000_000 in
  {
    name = "topology_fault_sweep";
    base_seed = 29;
    replicates = 1;
    horizon_ms = 5;
    protocols = [ Topo ];
    scenarios =
      [ topo_scenario ~segments:3 ~fanout:2 ~load:0.1 ~deadline_windows:16.0 ];
    variants =
      [
        default_variant;
        {
          default_variant with
          v_fault_plan =
            Some (Fault_plan.crash ~source:4 ~from_:(1 * ms) ~until:(2 * ms));
        };
      ];
  }

let perf_v1 =
  (* The slots/sec trajectory workload: one protocol per simulator
     family (contention, slotted, federation) at a fixed size/load
     point, single replicate — small enough for `make obs-smoke`, big
     enough that the slots/sec headline measures the simulator and not
     process startup.  Its deterministic cell metrics are gated by
     `ddcr_campaign compare perf_v1 --baseline BENCH_perf.json`; the
     wall-clock "perf" section rides along fingerprint-stripped. *)
  {
    name = "perf_v1";
    base_seed = 31;
    replicates = 1;
    horizon_ms = 5;
    protocols = [ Ddcr; Tdma ];
    scenarios =
      [
        scenario "videoconference" 6;
        scenario "uniform" 8 ~load:0.5 ~deadline_windows:2.0;
      ];
    variants = [ default_variant ];
  }

let builtins =
  [
    ("smoke", smoke);
    ("campaign_v1", campaign_v1);
    ("load_sweep", load_sweep);
    ("fault_sweep", fault_sweep);
    ("topology_sweep", topology_sweep);
    ("topology_fault_sweep", topology_fault_sweep);
    ("perf_v1", perf_v1);
  ]

let find_builtin name = List.assoc_opt name builtins
