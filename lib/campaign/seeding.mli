(** Deterministic per-cell seed derivation.

    Every campaign cell draws its seeds as a pure function of the
    spec's [base_seed] and the cell's coordinates, via
    {!Rtnet_util.Prng.derive} stream-splitting.  Two properties the
    runner depends on:

    - {b order independence}: a cell's seeds do not depend on which
      worker runs it or in what order, so [-j 1] and [-j N] campaigns
      produce bit-identical results;
    - {b protocol-blind traces}: the arrival-trace seed excludes the
      protocol coordinate, so every protocol in a configuration is
      measured on {e the same} message trace — protocols are compared
      like for like, exactly as the bench's E7 comparison does.

    The two seed families are domain-separated (distinct leading path
    component), so a trace seed can never collide with a protocol
    seed. *)

val trace_seed :
  base:int -> scenario:int -> variant:int -> replicate:int -> int
(** [trace_seed ~base ~scenario ~variant ~replicate] seeds
    [Instance.trace] for one configuration.  Protocol-independent. *)

val protocol_seed :
  base:int ->
  scenario:int ->
  variant:int ->
  replicate:int ->
  protocol:int ->
  int
(** [protocol_seed] seeds protocol-private randomness (BEB backoff
    draws, channel fault injection) for one cell. *)

val fault_seed : base:int -> scenario:int -> variant:int -> replicate:int -> int
(** [fault_seed] seeds a {!Rtnet_channel.Fault_plan} sampler.  Like
    {!trace_seed} it excludes the protocol coordinate: a fault plan is
    an environment property, so every protocol in a configuration faces
    {e the same} fault sample path.  Domain-separated from both other
    families (leading path component 2). *)
