module Json = Rtnet_util.Json
module Run = Rtnet_stats.Run

let ( let* ) = Result.bind

type cell_entry = {
  ce_index : int;
  ce_key : string;
  ce_result : Grid.result_;
}

type t = {
  campaign : string;
  spec_hash : string;
  spec : Spec.t;
  jobs : int;
  wall_clock_s : float;
  perf : Json.t option;
  cells : cell_entry list;
}

let schema_version = 1

let cell_to_json ce =
  Json.Obj
    [
      ("cell", Json.Int ce.ce_index);
      ("key", Json.String ce.ce_key);
      ("result", Grid.result_to_json ce.ce_result);
    ]

let cell_of_json j =
  let* index = Result.bind (Json.field "cell" j) Json.get_int in
  let* key = Result.bind (Json.field "key" j) Json.get_string in
  let* result = Result.bind (Json.field "result" j) Grid.result_of_json in
  Ok { ce_index = index; ce_key = key; ce_result = result }

let to_json r =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("campaign", Json.String r.campaign);
       ("spec_hash", Json.String r.spec_hash);
       ("jobs", Json.Int r.jobs);
       ("wall_clock_s", Json.Float r.wall_clock_s);
     ]
    (* Optional key, timing metadata: absent reports hash identically
       to pre-perf ones, and [strip_timings] removes it wholesale. *)
    @ (match r.perf with None -> [] | Some p -> [ ("perf", p) ])
    @ [
        ("spec", Spec.to_json r.spec);
        ("cells", Json.List (List.map cell_to_json r.cells));
      ])

let of_json j =
  let* v = Result.bind (Json.field "schema_version" j) Json.get_int in
  let* () =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "unsupported report schema version %d" v)
  in
  let* campaign = Result.bind (Json.field "campaign" j) Json.get_string in
  let* spec_hash = Result.bind (Json.field "spec_hash" j) Json.get_string in
  let* jobs = Result.bind (Json.field "jobs" j) Json.get_int in
  let* wall = Result.bind (Json.field "wall_clock_s" j) Json.get_float in
  let* spec = Result.bind (Json.field "spec" j) Spec.of_json in
  let* () =
    if Spec.hash spec = spec_hash then Ok ()
    else
      Error
        (Printf.sprintf
           "stored spec_hash %s does not match the embedded spec (%s) — \
            corrupted or hand-edited report"
           spec_hash (Spec.hash spec))
  in
  let* cells =
    let* l = Result.bind (Json.field "cells" j) Json.get_list in
    List.fold_left
      (fun acc cj ->
        let* acc = acc in
        let* ce = cell_of_json cj in
        Ok (ce :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  Ok
    {
      campaign;
      spec_hash;
      spec;
      jobs;
      wall_clock_s = wall;
      perf = Json.member "perf" j;
      cells;
    }

let write ~path r = Json.to_file path (to_json r)

let load ~path =
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e)
    (Result.bind (Json.parse_file path) of_json)

let timing_keys = [ "elapsed_s"; "wall_clock_s"; "jobs"; "perf" ]

let rec strip_timings = function
  | Json.Obj kvs ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k timing_keys then None else Some (k, strip_timings v))
         kvs)
  | Json.List xs -> Json.List (List.map strip_timings xs)
  | j -> j

let fingerprint r =
  Digest.to_hex (Digest.string (Json.to_string (strip_timings (to_json r))))

(* -------------------- regression gate -------------------- *)

type tolerance = {
  tol_miss_ratio : float;
  tol_latency_rel : float;
  tol_delivered : int;
}

let default_tolerance =
  { tol_miss_ratio = 0.; tol_latency_rel = 0.; tol_delivered = 0 }

type regression = {
  reg_key : string;
  reg_metric : string;
  reg_baseline : float;
  reg_current : float;
}

let pp_regression fmt r =
  Format.fprintf fmt "%s: %s regressed %g -> %g" r.reg_key r.reg_metric
    r.reg_baseline r.reg_current

let cell_regressions tol key (base : Run.metrics) (cur : Run.metrics) =
  let regs = ref [] in
  let flag metric b c = regs := { reg_key = key; reg_metric = metric;
                                  reg_baseline = b; reg_current = c } :: !regs
  in
  if cur.Run.miss_ratio > base.Run.miss_ratio +. tol.tol_miss_ratio then
    flag "miss_ratio" base.Run.miss_ratio cur.Run.miss_ratio;
  if cur.Run.delivered < base.Run.delivered - tol.tol_delivered then
    flag "delivered" (float_of_int base.Run.delivered)
      (float_of_int cur.Run.delivered);
  let lat metric b c =
    (* Relative slack; a zero baseline admits no slack, which is fine
       for deterministic simulators. *)
    if c > b *. (1. +. tol.tol_latency_rel) then flag metric b c
  in
  lat "worst_latency"
    (float_of_int base.Run.worst_latency)
    (float_of_int cur.Run.worst_latency);
  lat "mean_latency" base.Run.mean_latency cur.Run.mean_latency;
  List.rev !regs

let compare_reports ~tolerance ~baseline ~current =
  if baseline.spec_hash <> current.spec_hash then
    Error
      (Printf.sprintf
         "spec mismatch: baseline %s vs current %s — the campaigns ran \
          different sweeps and their cells are not comparable"
         baseline.spec_hash current.spec_hash)
  else begin
    let tbl = Hashtbl.create 64 in
    List.iter (fun ce -> Hashtbl.replace tbl ce.ce_key ce) baseline.cells;
    let missing =
      List.filter
        (fun ce -> not (List.exists (fun c -> c.ce_key = ce.ce_key) current.cells))
        baseline.cells
    in
    match missing with
    | ce :: _ ->
      Error
        (Printf.sprintf "cell %s present in baseline but not in current run"
           ce.ce_key)
    | [] ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | ce :: rest -> (
          match Hashtbl.find_opt tbl ce.ce_key with
          | None ->
            Error
              (Printf.sprintf
                 "cell %s present in current run but not in baseline" ce.ce_key)
          | Some base_ce ->
            let regs =
              cell_regressions tolerance ce.ce_key
                base_ce.ce_result.Grid.r_metrics ce.ce_result.Grid.r_metrics
            in
            go (List.rev_append regs acc) rest)
      in
      go [] current.cells
  end
