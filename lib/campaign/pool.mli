(** Multi-process worker pool ([Unix.fork] + pipes).

    The coordinator forks [jobs] workers; worker [w] executes the
    tasks whose array position is congruent to [w] modulo [jobs]
    (static round-robin — no coordinator→worker protocol needed) and
    streams each result back over its pipe as a length-prefixed
    [Marshal] frame.  The coordinator multiplexes the pipes with
    [Unix.select], decoding frames as they complete and invoking
    [on_event] for each — which is where the campaign runner
    checkpoints and reports progress.

    Task results must be marshal-safe plain data (no closures).
    Because work assignment is static and results carry their task
    position, the outcome is independent of scheduling: any [jobs]
    produces the same result set.

    An exception inside a worker's task is caught in the worker and
    reported as {!Failed} for that task; the worker carries on with
    its remaining tasks.  A worker that dies without delivering all
    its results (crash, signal) does {e not} sink the campaign: after
    the first round drains, the coordinator collects the undelivered
    task positions, reports them via [on_retry], and retries them once
    on a single spare worker.  Only a second failure raises [Failure]
    in the coordinator. *)

type timing = {
  worker : int;
      (** worker id: the first round's rank, or [jobs] for the retry
          round's spare worker *)
  t0 : float;  (** wall-clock start of the task, Unix epoch seconds *)
  t1 : float;  (** wall-clock end of the task *)
}
(** Worker-side measurement around one task — the telemetry probe the
    campaign profiler renders as a wall-clock timeline.  Measured in
    the worker around the task function alone, so pipe and coordinator
    latency never inflate it. *)

type 'b event =
  | Result of int * timing * 'b
      (** task position, timing, worker's return value *)
  | Failed of int * timing * string
      (** task position, timing, exception text *)

val default_jobs : unit -> int
(** [default_jobs ()] is the machine's recommended parallelism
    ([Domain.recommended_domain_count]). *)

val map :
  jobs:int ->
  ?max_results:int ->
  ?on_retry:(int list -> unit) ->
  on_event:('b event -> unit) ->
  ('a -> 'b) ->
  'a array ->
  int
(** [map ~jobs ~on_event f tasks] runs [f] on every task across [jobs]
    worker processes and returns the number of events collected.
    [on_event] runs in the coordinator, in frame-arrival order (an
    arbitrary interleaving of the workers' per-worker task order).

    [max_results] stops collection early after that many events: the
    workers are killed, remaining results are discarded, and [map]
    returns the count collected — the hook the checkpoint/resume tests
    use to simulate an interrupted campaign.

    [on_retry missing] is called (default: ignored) before the spare
    worker re-runs the task positions a dead worker failed to deliver
    — the campaign runner's hook for journalling them as failed before
    the retry outcome overwrites them.

    [jobs] is clamped to [\[1, Array.length tasks\]]; with an empty
    task array no worker is forked and [map] returns 0.
    @raise Invalid_argument if [jobs < 1].
    @raise Failure if a retried task is lost a second time. *)
