(** Multi-process worker pool ([Unix.fork] + pipes).

    The coordinator forks [jobs] workers; worker [w] executes the
    tasks whose array position is congruent to [w] modulo [jobs]
    (static round-robin — no coordinator→worker protocol needed) and
    streams each result back over its pipe as a length-prefixed
    [Marshal] frame.  The coordinator multiplexes the pipes with
    [Unix.select], decoding frames as they complete and invoking
    [on_event] for each — which is where the campaign runner
    checkpoints and reports progress.

    Task results must be marshal-safe plain data (no closures).
    Because work assignment is static and results carry their task
    position, the outcome is independent of scheduling: any [jobs]
    produces the same result set.

    An exception inside a worker's task is caught in the worker and
    reported as {!Failed} for that task; the worker carries on with
    its remaining tasks.  A worker that dies without delivering all
    its results (crash, signal) does {e not} sink the campaign: after
    the first round drains, the coordinator collects the undelivered
    task positions, reports them via [on_retry], and retries them once
    on a single spare worker.  Only a second failure raises [Failure]
    in the coordinator. *)

type timing = {
  worker : int;
      (** worker id: the first round's rank, or [jobs] for the retry
          round's spare worker *)
  t0 : float;  (** wall-clock start of the task, Unix epoch seconds *)
  t1 : float;  (** wall-clock end of the task *)
}
(** Worker-side measurement around one task — the telemetry probe the
    campaign profiler renders as a wall-clock timeline.  Measured in
    the worker around the task function alone, so pipe and coordinator
    latency never inflate it. *)

type 'b event =
  | Result of int * timing * 'b
      (** task position, timing, worker's return value *)
  | Failed of int * timing * string
      (** task position, timing, exception text *)

val default_jobs : unit -> int
(** [default_jobs ()] is the machine's recommended parallelism
    ([Domain.recommended_domain_count]). *)

val map :
  jobs:int ->
  ?max_results:int ->
  ?on_retry:(int list -> unit) ->
  on_event:('b event -> unit) ->
  ('a -> 'b) ->
  'a array ->
  int
(** [map ~jobs ~on_event f tasks] runs [f] on every task across [jobs]
    worker processes and returns the number of events collected.
    [on_event] runs in the coordinator, in frame-arrival order (an
    arbitrary interleaving of the workers' per-worker task order).

    [max_results] stops collection early after that many events: the
    workers are killed, remaining results are discarded, and [map]
    returns the count collected — the hook the checkpoint/resume tests
    use to simulate an interrupted campaign.

    [on_retry missing] is called (default: ignored) before the spare
    worker re-runs the task positions a dead worker failed to deliver
    — the campaign runner's hook for journalling them as failed before
    the retry outcome overwrites them.

    [jobs] is clamped to [\[1, Array.length tasks\]]; with an empty
    task array no worker is forked and [map] returns 0.
    @raise Invalid_argument if [jobs < 1].
    @raise Failure if a retried task is lost a second time. *)

(** {1 Supervised pool (watchdog + bounded retry)}

    {!map} amortizes forks by giving each worker a static share of the
    tasks — the right trade for a campaign of uniform, trusted cells.
    The chaos search runs {e adversarial} candidates: any one may hang
    the simulator or kill its worker, and losing the whole share (or
    the whole search) to one bad candidate is unacceptable.
    {!supervise} therefore forks {b one worker per task}: the
    coordinator always knows which task a pid is running, kills it
    when it overruns the watchdog, retries it a bounded number of
    times with linear backoff, and — once the retry budget is spent —
    reports a structured {!Gave_up} instead of raising.  It never
    aborts the run. *)

type give_up_reason =
  | Timed_out of float  (** killed by the watchdog after this many seconds *)
  | Worker_lost of string  (** worker died without delivering a frame *)

type 'b sevent =
  | Completed of int * timing * 'b
      (** task position, timing, worker's return value *)
  | Task_error of int * timing * string
      (** the task function itself raised — deterministic, so it is
          reported immediately and {e not} retried *)
  | Gave_up of { position : int; attempts : int; reason : give_up_reason }
      (** every attempt timed out or lost its worker *)

val reason_text : give_up_reason -> string
(** [reason_text r] is a one-line human-readable rendering. *)

val supervise :
  jobs:int ->
  ?watchdog_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?on_retry:(position:int -> attempt:int -> reason:string -> unit) ->
  ?should_stop:(unit -> bool) ->
  on_event:('b sevent -> unit) ->
  ('a -> 'b) ->
  'a array ->
  int
(** [supervise ~jobs ~on_event f tasks] runs [f] on every task, one
    fork per task, at most [jobs] concurrently, and returns the number
    of events emitted.  [on_event] runs in the coordinator in
    completion order.

    [watchdog_s] (default: none) kills any attempt still undelivered
    after that many seconds.  A killed or lost attempt is re-enqueued
    after [backoff_s * attempt] seconds (default [0.05]) up to
    [retries] times (default [1]); [on_retry] observes each
    re-enqueue.  When the budget is spent the task yields one
    {!Gave_up} event.

    [should_stop] (default: never) is polled each scheduling round;
    once true no further task is {e launched} — already-running
    attempts drain normally and tasks never launched emit nothing, so
    a caller on an exhausted budget gets partial results, not an
    exception.
    @raise Invalid_argument if [jobs < 1]. *)
