module Json = Rtnet_util.Json

let ( let* ) = Result.bind

let schema_version = 1

let journal_path ~out = out ^ ".ckpt"

let header_json spec =
  Json.Obj
    [
      ("campaign", Json.String spec.Spec.name);
      ("spec_hash", Json.String (Spec.hash spec));
      ("schema_version", Json.Int schema_version);
    ]

let check_header spec j =
  let* name = Result.bind (Json.field "campaign" j) Json.get_string in
  let* h = Result.bind (Json.field "spec_hash" j) Json.get_string in
  let* v = Result.bind (Json.field "schema_version" j) Json.get_int in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported checkpoint schema version %d" v)
  else if name <> spec.Spec.name || h <> Spec.hash spec then
    Error
      (Printf.sprintf
         "checkpoint was written for campaign %s (spec %s), not %s (spec %s) \
          — delete it or pass a different journal path"
         name h spec.Spec.name (Spec.hash spec))
  else Ok ()

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

type entry = Completed of int * Json.t | Failed_marker of int

let entry_of_json j =
  let* index = Result.bind (Json.field "cell" j) Json.get_int in
  match Json.member "result" j with
  | Some result -> Ok (Completed (index, result))
  | None -> (
    match Json.member "failed" j with
    | Some _ -> Ok (Failed_marker index)
    | None -> Error "entry has neither \"result\" nor \"failed\"")

let load ?(on_warning = fun (_ : string) -> ()) ~path ~spec () =
  if not (Sys.file_exists path) then Ok []
  else
    match read_lines path with
    | [] -> Ok []
    | [ header ] when Result.is_error (Json.parse header) ->
      (* The kill landed while the header itself was being written:
         nothing was checkpointed yet, so resume from scratch rather
         than refusing — but say so. *)
      on_warning
        (Printf.sprintf
           "%s: header line is torn (kill landed mid-write); treating the \
            journal as empty and restarting the campaign"
           path);
      Ok []
    | header :: entries -> (
      match Json.parse header with
      | Error e -> Error (Printf.sprintf "%s: corrupt header: %s" path e)
      | Ok hj ->
        let* () =
          Result.map_error (fun e -> Printf.sprintf "%s: %s" path e)
            (check_header spec hj)
        in
        let total = List.length entries in
        (* Replay the journal in order: a completed line records a
           cell's result, a failed marker (worker died before
           delivering it) voids any earlier record so resume re-runs
           the cell; a retry's later completed line re-records it. *)
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
            match Result.bind (Json.parse line) entry_of_json with
            | Ok (Completed (index, result)) ->
              let acc =
                (index, result)
                :: List.filter (fun (i', _) -> i' <> index) acc
              in
              go (i + 1) acc rest
            | Ok (Failed_marker index) ->
              go (i + 1) (List.filter (fun (i', _) -> i' <> index) acc) rest
            | Error e ->
              if i = total - 1 then begin
                (* Torn final line: the kill landed mid-append.  The
                   cell it recorded simply re-runs; everything before
                   it is intact. *)
                on_warning
                  (Printf.sprintf
                     "%s: final journal line %d is torn (%s); dropping it — \
                      the cell it recorded will re-run"
                     path (i + 2) e);
                Ok (List.rev acc)
              end
              else
                Error
                  (Printf.sprintf "%s: corrupt entry on line %d: %s" path
                     (i + 2) e))
        in
        go 0 [] entries)

let open_for_append ~path ~spec =
  let fresh = (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0 in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if fresh then begin
    output_string oc (Json.to_string (header_json spec));
    output_char oc '\n';
    flush oc
  end;
  oc

let append oc ~index ~key result =
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("cell", Json.Int index);
            ("key", Json.String key);
            ("result", result);
          ]));
  output_char oc '\n';
  flush oc

let append_failed oc ~index ~key ~reason =
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("cell", Json.Int index);
            ("key", Json.String key);
            ("failed", Json.String reason);
          ]));
  output_char oc '\n';
  flush oc

let remove ~path = if Sys.file_exists path then Sys.remove path
