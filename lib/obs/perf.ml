module Json = Rtnet_util.Json

let ( let* ) = Result.bind

type phase = { ph_name : string; ph_wall_s : float; ph_alloc_words : float }

type t = {
  p_slots : int;
  p_wall_s : float;
  p_slots_per_sec : float;
  p_alloc_words : float;
  p_phases : phase list;
}

type ctl = {
  mutable cur_name : string;
  mutable cur_t0 : float;
  mutable cur_w0 : float;
  mutable rev_phases : phase list;
}

(* [Gc.minor_words] reads the live young-pointer, so small phases that
   never trigger a minor collection still count ([quick_stat]'s copy
   only refreshes at GC time).  Promoted words are subtracted so a
   value survives promotion without being billed twice. *)
let words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let start ?(phase = "run") () =
  {
    cur_name = phase;
    cur_t0 = Unix.gettimeofday ();
    cur_w0 = words ();
    rev_phases = [];
  }

let close c =
  let t1 = Unix.gettimeofday () and w1 = words () in
  c.rev_phases <-
    {
      ph_name = c.cur_name;
      ph_wall_s = t1 -. c.cur_t0;
      ph_alloc_words = w1 -. c.cur_w0;
    }
    :: c.rev_phases;
  (t1, w1)

let phase c name =
  let t1, w1 = close c in
  c.cur_name <- name;
  c.cur_t0 <- t1;
  c.cur_w0 <- w1

let finish c ~slots =
  ignore (close c);
  let phases = List.rev c.rev_phases in
  let wall = List.fold_left (fun acc p -> acc +. p.ph_wall_s) 0. phases in
  let alloc = List.fold_left (fun acc p -> acc +. p.ph_alloc_words) 0. phases in
  {
    p_slots = slots;
    p_wall_s = wall;
    p_slots_per_sec = (if wall > 0. then float_of_int slots /. wall else 0.);
    p_alloc_words = alloc;
    p_phases = phases;
  }

let phase_to_json p =
  Json.Obj
    [
      ("name", Json.String p.ph_name);
      ("wall_clock_s", Json.Float p.ph_wall_s);
      ("alloc_words", Json.Float p.ph_alloc_words);
    ]

let to_json t =
  Json.Obj
    [
      ("slots", Json.Int t.p_slots);
      ("wall_clock_s", Json.Float t.p_wall_s);
      ("slots_per_sec", Json.Float t.p_slots_per_sec);
      ("alloc_words", Json.Float t.p_alloc_words);
      ("phases", Json.List (List.map phase_to_json t.p_phases));
    ]

let phase_of_json j =
  let* name = Result.bind (Json.field "name" j) Json.get_string in
  let* wall = Result.bind (Json.field "wall_clock_s" j) Json.get_float in
  let* alloc = Result.bind (Json.field "alloc_words" j) Json.get_float in
  Ok { ph_name = name; ph_wall_s = wall; ph_alloc_words = alloc }

let of_json j =
  let* slots = Result.bind (Json.field "slots" j) Json.get_int in
  let* wall = Result.bind (Json.field "wall_clock_s" j) Json.get_float in
  let* sps = Result.bind (Json.field "slots_per_sec" j) Json.get_float in
  let* alloc = Result.bind (Json.field "alloc_words" j) Json.get_float in
  let* phases =
    let* l = Result.bind (Json.field "phases" j) Json.get_list in
    List.fold_left
      (fun acc pj ->
        let* acc = acc in
        let* p = phase_of_json pj in
        Ok (p :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  Ok
    {
      p_slots = slots;
      p_wall_s = wall;
      p_slots_per_sec = sps;
      p_alloc_words = alloc;
      p_phases = phases;
    }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>perf: %d slots in %.3f s = %.3g slots/sec, %.3g words allocated@,"
    t.p_slots t.p_wall_s t.p_slots_per_sec t.p_alloc_words;
  List.iter
    (fun p ->
      Format.fprintf fmt "  %-12s %8.3f s  %.3g words@," p.ph_name p.ph_wall_s
        p.ph_alloc_words)
    t.p_phases;
  Format.fprintf fmt "@]"
