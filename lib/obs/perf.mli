(** Perf-counter layer: the slots/sec trajectory.

    A tiny phase-structured profiler for the ROADMAP's committed
    performance headline: virtual bit-times simulated per wall-clock
    second, GC allocation words, and per-phase wall timing.  A {!ctl}
    is opened with {!start}, split into named phases with {!phase},
    and closed with {!finish} into an immutable {!t} that serializes
    into the ["perf"] section of [BENCH_perf.json].

    Wall-clock numbers are machine-dependent by nature; the report
    layer strips them from fingerprints ({!Rtnet_campaign.Report}
    [strip_timings]) so the perf section never perturbs the regression
    gate's deterministic comparisons — the trajectory is advisory,
    tracked PR over PR, while the gate stays byte-exact. *)

type phase = {
  ph_name : string;
  ph_wall_s : float;
  ph_alloc_words : float;  (** minor + major words allocated *)
}

type t = {
  p_slots : int;  (** virtual bit-times simulated *)
  p_wall_s : float;  (** total wall time over all phases *)
  p_slots_per_sec : float;  (** the headline: [slots / wall] *)
  p_alloc_words : float;  (** total words allocated *)
  p_phases : phase list;  (** in open order *)
}

type ctl

val start : ?phase:string -> unit -> ctl
(** Begin profiling; an implicit first phase (default ["run"]) opens
    immediately. *)

val phase : ctl -> string -> unit
(** [phase c name] closes the current phase and opens [name]. *)

val finish : ctl -> slots:int -> t
(** Close the last phase and total everything up.  [slots] is the
    virtual time simulated (bit-times), the numerator of the
    headline. *)

val to_json : t -> Rtnet_util.Json.t
val of_json : Rtnet_util.Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
