(** Black-box flight recorder for one segment.

    Wraps a pre-allocated {!Ring} behind the {!Rtnet_telemetry.Sink}
    API: attach [Flight.sink] to a harness (or tee it next to a
    {!Rtnet_telemetry.Recorder}) and the last [capacity] slot / queue /
    fault-epoch events are always on hand, allocation-free, ready to be
    dumped into a {!Postmortem} when a run ends in a failure verdict.
    When nothing fails the recorder is never read — like its aircraft
    namesake it costs the same whether or not the flight ends well. *)

type t

val default_capacity : int
(** 256 events — a few contention windows' worth of context. *)

val create : ?capacity:int -> segment:string -> unit -> t
(** [create ~segment ()] pre-allocates the ring.  [segment] labels the
    dump (use the topology segment name, or the scenario name for a
    single-segment run). *)

val sink : t -> Rtnet_telemetry.Sink.t
(** The recording sink.  Records channel slots (idle / garbled /
    collision; [Tx] slots are skipped — the [complete] frame record
    already carries them), queue events (enqueue / complete / drop)
    and fault epochs.  Searches, jumps and engine steps are not
    black-box material and are ignored. *)

val segment : t -> string
val recorded : t -> int
(** Total events recorded (monotone, wrap-insensitive). *)

val to_json : t -> Rtnet_util.Json.t
(** Deterministic dump:
    [{"segment"; "capacity"; "recorded"; "overwritten"; "events"}]
    with events oldest-first, each
    [{"k": kind; "t0"; "t1"?; "uid"?; "cls"?; "contenders"?}]. *)
