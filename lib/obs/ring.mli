(** Fixed-capacity, pre-allocated event ring.

    The flight recorder's storage: a struct-of-arrays ring of integer
    event records, allocated once at creation.  [push] writes into the
    pre-allocated arrays and never allocates, so an attached recorder
    adds only array stores to the hot path; once full, the oldest
    record is overwritten — the ring always holds the {e most recent}
    [capacity] events, exactly like an aircraft black box. *)

type t

val create : capacity:int -> t
(** [create ~capacity] pre-allocates a ring of [capacity] records
    (raises [Invalid_argument] when [capacity <= 0]). *)

val capacity : t -> int

val recorded : t -> int
(** Total events ever pushed (monotone; exceeds [capacity] once the
    ring has wrapped). *)

val length : t -> int
(** Events currently held: [min (recorded t) (capacity t)]. *)

val overwritten : t -> int
(** Events lost to wrapping: [recorded - length]. *)

val push : t -> kind:int -> t0:int -> t1:int -> a:int -> b:int -> unit
(** [push t ~kind ~t0 ~t1 ~a ~b] appends one record.  The field
    meaning is the caller's convention ({!Flight} uses [kind] as an
    event-kind code, [t0]/[t1] as a bit-time interval and [a]/[b] as
    uid / class id). *)

val iter_oldest_first :
  t -> (kind:int -> t0:int -> t1:int -> a:int -> b:int -> unit) -> unit
(** Visit the held records in push order, oldest surviving first. *)
