module Json = Rtnet_util.Json
module Trace_event = Rtnet_telemetry.Trace_event
module Driver = Rtnet_topology.Driver

let tid_bridges = 4

let stitch ~into ~seg_pid ~chains =
  let named = Hashtbl.create 8 in
  let ensure_bridge_track pid =
    if not (Hashtbl.mem named pid) then begin
      Hashtbl.add named pid ();
      Trace_event.set_thread_name into ~pid ~tid:tid_bridges "bridges"
    end
  in
  let stitched = ref 0 in
  List.iteri
    (fun id (c : Driver.chain_record) ->
      match c.Driver.cr_hops with
      | [] | [ _ ] -> ()
      | hops ->
        incr stitched;
        let last = List.length hops - 1 in
        let name = Printf.sprintf "%s#%d" c.Driver.cr_flow c.Driver.cr_uid in
        List.iteri
          (fun i (h : Driver.hop_record) ->
            let pid = seg_pid ~segment:h.Driver.hr_segment in
            let tid = 10 + h.Driver.hr_source in
            (* Bind to the hop's frame span: any ts inside
               [hr_start, hr_finish) encloses. *)
            let ts = h.Driver.hr_start in
            if i = 0 then
              Trace_event.flow_start into ~pid ~tid ~name ~cat:"chain" ~ts ~id
                ()
            else begin
              (* The hand-off that fed this hop: an instant on the
                 downstream segment's bridge track at the hop arrival
                 (= upstream finish + bridge latency, or the drain
                 release under a crash window). *)
              ensure_bridge_track pid;
              Trace_event.instant into ~pid ~tid:tid_bridges ~name:"handoff"
                ~cat:"bridge" ~ts:h.Driver.hr_arrival
                ~args:
                  [
                    ("chain", Json.String name);
                    ("hop", Json.Int h.Driver.hr_index);
                  ]
                ();
              if i = last then
                Trace_event.flow_end into ~pid ~tid ~name ~cat:"chain" ~ts ~id
                  ()
              else
                Trace_event.flow_step into ~pid ~tid ~name ~cat:"chain" ~ts ~id
                  ()
            end)
          hops)
    chains;
  !stitched
