(** Versioned postmortem artifact: the flight recorder's dump format.

    When a federated run ends badly — a chain missed its end-to-end
    deadline, a bridge queue overflowed, or the chaos oracle returned a
    failure verdict — the driver's structured verdict, its degraded-
    mode timeline, the failing chains' per-hop records and every
    segment's flight-recorder ring are frozen into one deterministic
    JSON artifact.  Everything in it is virtual-time data from a
    seeded run, so re-running the same seeds (directly or through
    [ddcr_chaos replay]) regenerates the artifact byte-for-byte; the
    optional [repro] block cross-links the chaos artifact that
    reproduces the run. *)

type trigger =
  | Chain_miss  (** at least one unexcused end-to-end deadline miss *)
  | Bridge_overflow  (** a bridge store-and-forward queue overflowed *)
  | Verdict of string
      (** a chaos / oracle failure verdict (its label, e.g.
          ["bridge_overflow"], ["chain_deadline_miss"]) *)

val trigger_of_result : Rtnet_topology.Driver.result -> trigger option
(** The dump decision: [Some Bridge_overflow] when the verdict carries
    bridge drops, else [Some Chain_miss] when it carries misses (shed
    chains count — they are abandoned hand-offs), else [None] — no
    postmortem for a clean run. *)

type t = {
  pm_trigger : trigger;
  pm_topology : string;  (** topology name *)
  pm_seed : int;
  pm_fault_seed : int;
  pm_horizon : int;
  pm_fingerprint : string;  (** the driver's completion fingerprint *)
  pm_verdict : Rtnet_util.Json.t;
  pm_events : Rtnet_util.Json.t;  (** degraded-mode timeline *)
  pm_chains : Rtnet_util.Json.t;  (** failing chains' hop records *)
  pm_flight : Rtnet_util.Json.t;  (** per-segment ring dumps *)
  pm_repro : (string * string) option;
      (** cross-link to a chaos repro artifact: (note, fingerprint) *)
}

val build :
  trigger:trigger ->
  topology:string ->
  seed:int ->
  fault_seed:int ->
  horizon:int ->
  result:Rtnet_topology.Driver.result ->
  flights:Flight.t list ->
  ?repro:string * string ->
  unit ->
  t
(** Freeze a failed run.  Only the {e failing} chains (missed, shed,
    dropped, or held by a faulty bridge) keep their hop records — the
    healthy ones are summarized by the verdict counts. *)

val to_json : t -> Rtnet_util.Json.t
val of_json : Rtnet_util.Json.t -> (t, string) result

val save : path:string -> t -> unit
(** Canonical pretty-printed JSON + trailing newline
    ({!Rtnet_util.Json.to_file}) — byte-stable across runs. *)

val load : path:string -> (t, string) result
val pp_trigger : Format.formatter -> trigger -> unit
