module Json = Rtnet_util.Json
module Sink = Rtnet_telemetry.Sink
module Channel = Rtnet_channel.Channel
module Message = Rtnet_workload.Message

(* Event-kind codes stored in the ring's [kind] column. *)
let k_idle = 0
let k_garbled = 1
let k_collision = 2
let k_enqueue = 3
let k_complete = 4
let k_drop = 5
let k_epoch = 6

let kind_name = function
  | 0 -> "idle"
  | 1 -> "garbled"
  | 2 -> "collision"
  | 3 -> "enqueue"
  | 4 -> "complete"
  | 5 -> "drop"
  | 6 -> "epoch"
  | k -> Printf.sprintf "kind%d" k

type t = { f_segment : string; ring : Ring.t; f_sink : Sink.t }

let default_capacity = 256

let make_sink ring =
  Sink.create
    ~slot:(fun ~now ~next_free ~resolution ->
      match (resolution : Channel.resolution) with
      | Channel.Idle -> Ring.push ring ~kind:k_idle ~t0:now ~t1:next_free ~a:0 ~b:0
      | Channel.Tx _ ->
        (* the [complete] record carries the frame *)
        ()
      | Channel.Garbled _ ->
        Ring.push ring ~kind:k_garbled ~t0:now ~t1:next_free ~a:0 ~b:0
      | Channel.Clash { contenders; survivor = _ } ->
        Ring.push ring ~kind:k_collision ~t0:now ~t1:next_free
          ~a:(List.length contenders) ~b:0)
    ~enqueue:(fun ~now ~msg ->
      Ring.push ring ~kind:k_enqueue ~t0:now ~t1:now ~a:msg.Message.uid
        ~b:msg.Message.cls.Message.cls_id)
    ~complete:(fun ~msg ~start ~finish ->
      Ring.push ring ~kind:k_complete ~t0:start ~t1:finish ~a:msg.Message.uid
        ~b:msg.Message.cls.Message.cls_id)
    ~drop:(fun ~msg ->
      Ring.push ring ~kind:k_drop ~t0:msg.Message.arrival
        ~t1:msg.Message.arrival ~a:msg.Message.uid
        ~b:msg.Message.cls.Message.cls_id)
    ~epoch:(fun ~start ~finish ->
      Ring.push ring ~kind:k_epoch ~t0:start ~t1:finish ~a:0 ~b:0)
    ()

let create ?(capacity = default_capacity) ~segment () =
  let ring = Ring.create ~capacity in
  { f_segment = segment; ring; f_sink = make_sink ring }

let sink t = t.f_sink
let segment t = t.f_segment
let recorded t = Ring.recorded t.ring

let event_json ~kind ~t0 ~t1 ~a ~b =
  let base = [ ("k", Json.String (kind_name kind)); ("t0", Json.Int t0) ] in
  let fields =
    if kind = k_idle || kind = k_garbled || kind = k_epoch then
      base @ [ ("t1", Json.Int t1) ]
    else if kind = k_collision then
      base @ [ ("t1", Json.Int t1); ("contenders", Json.Int a) ]
    else
      (* queue events: uid + class id; [complete] also keeps its span *)
      base
      @ (if kind = k_complete then [ ("t1", Json.Int t1) ] else [])
      @ [ ("uid", Json.Int a); ("cls", Json.Int b) ]
  in
  Json.Obj fields

let to_json t =
  let events = ref [] in
  Ring.iter_oldest_first t.ring (fun ~kind ~t0 ~t1 ~a ~b ->
      events := event_json ~kind ~t0 ~t1 ~a ~b :: !events);
  Json.Obj
    [
      ("segment", Json.String t.f_segment);
      ("capacity", Json.Int (Ring.capacity t.ring));
      ("recorded", Json.Int (Ring.recorded t.ring));
      ("overwritten", Json.Int (Ring.overwritten t.ring));
      ("events", Json.List (List.rev !events));
    ]
