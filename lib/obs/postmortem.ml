module Json = Rtnet_util.Json
module Driver = Rtnet_topology.Driver

let ( let* ) = Result.bind

type trigger = Chain_miss | Bridge_overflow | Verdict of string

let schema_version = 1

let trigger_of_result (r : Driver.result) =
  let v = r.Driver.r_verdict in
  if v.Driver.v_bridge_drops <> [] then Some Bridge_overflow
  else if v.Driver.v_misses <> [] || v.Driver.v_shed > 0 then Some Chain_miss
  else None

let trigger_to_string = function
  | Chain_miss -> "chain_miss"
  | Bridge_overflow -> "bridge_overflow"
  | Verdict label -> "verdict:" ^ label

let trigger_of_string s =
  match s with
  | "chain_miss" -> Ok Chain_miss
  | "bridge_overflow" -> Ok Bridge_overflow
  | _ ->
    if String.length s > 8 && String.sub s 0 8 = "verdict:" then
      Ok (Verdict (String.sub s 8 (String.length s - 8)))
    else Error (Printf.sprintf "unknown postmortem trigger %S" s)

let pp_trigger fmt t = Format.pp_print_string fmt (trigger_to_string t)

type t = {
  pm_trigger : trigger;
  pm_topology : string;
  pm_seed : int;
  pm_fault_seed : int;
  pm_horizon : int;
  pm_fingerprint : string;
  pm_verdict : Json.t;
  pm_events : Json.t;
  pm_chains : Json.t;
  pm_flight : Json.t;
  pm_repro : (string * string) option;
}

(* -------------------- driver encodings -------------------- *)

let miss_to_json (m : Driver.miss) =
  Json.Obj
    [
      ("flow", Json.String m.Driver.ms_flow);
      ("uid", Json.Int m.Driver.ms_uid);
      ("t0", Json.Int m.Driver.ms_t0);
      ("deadline", Json.Int m.Driver.ms_deadline);
      ( "finish",
        match m.Driver.ms_finish with
        | Some f -> Json.Int f
        | None -> Json.Null );
      ("hop", Json.String m.Driver.ms_hop);
      ("hop_index", Json.Int m.Driver.ms_hop_index);
      ( "fault",
        match m.Driver.ms_fault with
        | Some f -> Json.String f
        | None -> Json.Null );
    ]

let drop_to_json (d : Driver.bridge_drop) =
  Json.Obj
    [
      ("bridge", Json.String d.Driver.bd_bridge);
      ("flow", Json.String d.Driver.bd_flow);
      ("uid", Json.Int d.Driver.bd_uid);
      ("at", Json.Int d.Driver.bd_at);
      ("deadline", Json.Int d.Driver.bd_deadline);
    ]

let verdict_to_json (v : Driver.verdict) =
  Json.Obj
    [
      ("messages", Json.Int v.Driver.v_messages);
      ("delivered", Json.Int v.Driver.v_delivered);
      ("met", Json.Int v.Driver.v_met);
      ("in_flight", Json.Int v.Driver.v_in_flight);
      ("shed", Json.Int v.Driver.v_shed);
      ("bridge_drops", Json.List (List.map drop_to_json v.Driver.v_bridge_drops));
      ("misses", Json.List (List.map miss_to_json v.Driver.v_misses));
    ]

let event_to_json = function
  | Driver.Degraded { dg_bridge; dg_segment; dg_from; dg_until } ->
    Json.Obj
      [
        ("ev", Json.String "degraded");
        ("bridge", Json.String dg_bridge);
        ("segment", Json.String dg_segment);
        ("from", Json.Int dg_from);
        ("until", Json.Int dg_until);
      ]
  | Driver.Shed { sh_bridge; sh_flow; sh_uid; sh_at; sh_criticality } ->
    Json.Obj
      [
        ("ev", Json.String "shed");
        ("bridge", Json.String sh_bridge);
        ("flow", Json.String sh_flow);
        ("uid", Json.Int sh_uid);
        ("at", Json.Int sh_at);
        ("criticality", Json.Int sh_criticality);
      ]
  | Driver.Restored { rs_bridge; rs_at; rs_backlog } ->
    Json.Obj
      [
        ("ev", Json.String "restored");
        ("bridge", Json.String rs_bridge);
        ("at", Json.Int rs_at);
        ("backlog", Json.Int rs_backlog);
      ]

let hop_to_json (h : Driver.hop_record) =
  Json.Obj
    [
      ("hop", Json.Int h.Driver.hr_index);
      ("segment", Json.String h.Driver.hr_segment);
      ("arrival", Json.Int h.Driver.hr_arrival);
      ("start", Json.Int h.Driver.hr_start);
      ("finish", Json.Int h.Driver.hr_finish);
      ("source", Json.Int h.Driver.hr_source);
    ]

let chain_to_json (c : Driver.chain_record) =
  Json.Obj
    [
      ("flow", Json.String c.Driver.cr_flow);
      ("uid", Json.Int c.Driver.cr_uid);
      ("t0", Json.Int c.Driver.cr_t0);
      ("deadline", Json.Int c.Driver.cr_deadline);
      ( "fault",
        match c.Driver.cr_fault with
        | Some f -> Json.String f
        | None -> Json.Null );
      ("shed", Json.Bool c.Driver.cr_shed);
      ("dropped", Json.Bool c.Driver.cr_dropped);
      ("hops", Json.List (List.map hop_to_json c.Driver.cr_hops));
    ]

(* -------------------- build / codec -------------------- *)

let failing (r : Driver.result) =
  let v = r.Driver.r_verdict in
  let missed = Hashtbl.create 16 in
  List.iter
    (fun (m : Driver.miss) ->
      Hashtbl.replace missed (m.Driver.ms_flow, m.Driver.ms_uid) ())
    v.Driver.v_misses;
  List.filter
    (fun (c : Driver.chain_record) ->
      c.Driver.cr_shed || c.Driver.cr_dropped
      || c.Driver.cr_fault <> None
      || Hashtbl.mem missed (c.Driver.cr_flow, c.Driver.cr_uid))
    r.Driver.r_chains

let build ~trigger ~topology ~seed ~fault_seed ~horizon
    ~(result : Driver.result) ~flights ?repro () =
  {
    pm_trigger = trigger;
    pm_topology = topology;
    pm_seed = seed;
    pm_fault_seed = fault_seed;
    pm_horizon = horizon;
    pm_fingerprint = result.Driver.r_fingerprint;
    pm_verdict = verdict_to_json result.Driver.r_verdict;
    pm_events = Json.List (List.map event_to_json result.Driver.r_events);
    pm_chains = Json.List (List.map chain_to_json (failing result));
    pm_flight = Json.List (List.map Flight.to_json flights);
    pm_repro = repro;
  }

let to_json t =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("kind", Json.String "rtnet-postmortem");
       ("trigger", Json.String (trigger_to_string t.pm_trigger));
       ("topology", Json.String t.pm_topology);
       ("seed", Json.Int t.pm_seed);
       ("fault_seed", Json.Int t.pm_fault_seed);
       ("horizon", Json.Int t.pm_horizon);
       ("fingerprint", Json.String t.pm_fingerprint);
       ("verdict", t.pm_verdict);
       ("events", t.pm_events);
       ("chains", t.pm_chains);
       ("flight", t.pm_flight);
     ]
    @
    match t.pm_repro with
    | None -> []
    | Some (note, fp) ->
      [
        ( "repro",
          Json.Obj
            [ ("note", Json.String note); ("fingerprint", Json.String fp) ] );
      ])

let of_json j =
  let* v = Result.bind (Json.field "schema_version" j) Json.get_int in
  let* () =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "unsupported postmortem schema version %d" v)
  in
  let* kind = Result.bind (Json.field "kind" j) Json.get_string in
  let* () =
    if kind = "rtnet-postmortem" then Ok ()
    else Error (Printf.sprintf "not a postmortem artifact (kind %S)" kind)
  in
  let* trig = Result.bind (Json.field "trigger" j) Json.get_string in
  let* trigger = trigger_of_string trig in
  let* topology = Result.bind (Json.field "topology" j) Json.get_string in
  let* seed = Result.bind (Json.field "seed" j) Json.get_int in
  let* fault_seed = Result.bind (Json.field "fault_seed" j) Json.get_int in
  let* horizon = Result.bind (Json.field "horizon" j) Json.get_int in
  let* fingerprint = Result.bind (Json.field "fingerprint" j) Json.get_string in
  let* verdict = Json.field "verdict" j in
  let* events = Json.field "events" j in
  let* chains = Json.field "chains" j in
  let* flight = Json.field "flight" j in
  let* repro =
    match Json.member "repro" j with
    | None -> Ok None
    | Some r ->
      let* note = Result.bind (Json.field "note" r) Json.get_string in
      let* fp = Result.bind (Json.field "fingerprint" r) Json.get_string in
      Ok (Some (note, fp))
  in
  Ok
    {
      pm_trigger = trigger;
      pm_topology = topology;
      pm_seed = seed;
      pm_fault_seed = fault_seed;
      pm_horizon = horizon;
      pm_fingerprint = fingerprint;
      pm_verdict = verdict;
      pm_events = events;
      pm_chains = chains;
      pm_flight = flight;
      pm_repro = repro;
    }

let save ~path t = Json.to_file path (to_json t)

let load ~path =
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e)
    (Result.bind (Json.parse_file path) of_json)
