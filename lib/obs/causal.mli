(** Cross-segment causal tracing: Perfetto flow events over chains.

    The federated driver reports every chain's completed hops
    ({!Rtnet_topology.Driver.chain_record}); each hop's frame span is
    already in the per-segment recorder timeline (track
    [(seg pid, 10 + source)], covering [\[hr_start, hr_finish)]).
    [stitch] adds the arrows: one flow chain per multi-hop message
    ([ph "s"] at the first hop's frame, ["t"] at intermediate hops,
    ["f"] at the last), plus a ["handoff"] instant on the downstream
    segment's bridge track at each hop arrival — so Perfetto renders a
    message's whole end-to-end journey, bridge queues included, as one
    connected chain. *)

val tid_bridges : int
(** Per-segment-process thread carrying bridge hand-off instants
    (tid 4; recorder tracks use 1–3 and [10 + source]). *)

val stitch :
  into:Rtnet_telemetry.Trace_event.t ->
  seg_pid:(segment:string -> int) ->
  chains:Rtnet_topology.Driver.chain_record list ->
  int
(** [stitch ~into ~seg_pid ~chains] appends flow events (and hand-off
    instants) to [into] for every chain with at least two completed
    hops, binding them to the frame spans of the per-segment recorder
    traces (merge [into] with those traces via
    {!Rtnet_telemetry.Trace_event.merge_json}).  [seg_pid] maps a
    segment name to the pid its recorder used (the
    [2 * declaration index] convention).  Flow ids are the chain's
    position in [chains], so the output is deterministic.  Returns the
    number of chains stitched. *)
