type t = {
  cap : int;
  kind : int array;
  t0 : int array;
  t1 : int array;
  a : int array;
  b : int array;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Ring.create: capacity %d <= 0" capacity);
  {
    cap = capacity;
    kind = Array.make capacity 0;
    t0 = Array.make capacity 0;
    t1 = Array.make capacity 0;
    a = Array.make capacity 0;
    b = Array.make capacity 0;
    pushed = 0;
  }

let capacity t = t.cap
let recorded t = t.pushed
let length t = min t.pushed t.cap
let overwritten t = t.pushed - length t

let push t ~kind ~t0 ~t1 ~a ~b =
  let i = t.pushed mod t.cap in
  t.kind.(i) <- kind;
  t.t0.(i) <- t0;
  t.t1.(i) <- t1;
  t.a.(i) <- a;
  t.b.(i) <- b;
  t.pushed <- t.pushed + 1

let iter_oldest_first t f =
  let n = length t in
  let first = t.pushed - n in
  for j = 0 to n - 1 do
    let i = (first + j) mod t.cap in
    f ~kind:t.kind.(i) ~t0:t.t0.(i) ~t1:t.t1.(i) ~a:t.a.(i) ~b:t.b.(i)
  done
