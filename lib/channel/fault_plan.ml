module Prng = Rtnet_util.Prng
module Json = Rtnet_util.Json

let ( let* ) = Result.bind

type garble =
  | Iid of { rate : float }
  | Gilbert_elliott of {
      p_enter : float;
      p_exit : float;
      rate_good : float;
      rate_bad : float;
    }

type crash_window = { cw_source : int; cw_from : int; cw_until : int }

type spec = {
  sp_garble : garble option;
  sp_misperception : float;
  sp_crashes : crash_window list;
  sp_garbles_at : int list;
  sp_misperceive_at : (int * int) list;
}

let none =
  {
    sp_garble = None;
    sp_misperception = 0.;
    sp_crashes = [];
    sp_garbles_at = [];
    sp_misperceive_at = [];
  }

let iid rate = { none with sp_garble = Some (Iid { rate }) }

let gilbert_elliott ~p_enter ~p_exit ~rate_good ~rate_bad =
  { none with sp_garble = Some (Gilbert_elliott { p_enter; p_exit; rate_good; rate_bad }) }

let misperceive rate = { none with sp_misperception = rate }

let crash ~source ~from_ ~until =
  { none with sp_crashes = [ { cw_source = source; cw_from = from_; cw_until = until } ] }

let garble_at times = { none with sp_garbles_at = List.sort_uniq compare times }

let misperceive_at events =
  { none with sp_misperceive_at = List.sort_uniq compare events }

let compose a b =
  {
    sp_garble = (match b.sp_garble with Some _ as g -> g | None -> a.sp_garble);
    sp_misperception =
      (if b.sp_misperception > 0. then b.sp_misperception
       else a.sp_misperception);
    sp_crashes = a.sp_crashes @ b.sp_crashes;
    sp_garbles_at = List.sort_uniq compare (a.sp_garbles_at @ b.sp_garbles_at);
    sp_misperceive_at =
      List.sort_uniq compare (a.sp_misperceive_at @ b.sp_misperceive_at);
  }

let prob name p =
  if p < 0. || p > 1. || Float.is_nan p then
    Error (Printf.sprintf "%s %g out of [0, 1]" name p)
  else Ok ()

(* Gilbert–Elliott transition probabilities additionally exclude the
   endpoints: at 0 the chain sticks silently in one state (the other
   state's rate is dead configuration), at 1 it alternates
   deterministically every slot — and a chain with both transitions
   degenerate has no stationary distribution to speak of.  Callers who
   want a frozen state should use [Iid] with that state's rate. *)
let transition name p =
  let* () = prob name p in
  if p = 0. || p = 1. then
    Error
      (Printf.sprintf
         "%s %g is degenerate — the Gilbert–Elliott chain would %s; require \
          0 < %s < 1 (use iid for a single-state process)"
         name p
         (if p = 0. then "never change state" else "alternate every slot")
         name)
  else Ok ()

let check_overlaps crashes =
  let overlap a b =
    a.cw_source = b.cw_source && a.cw_from < b.cw_until
    && b.cw_from < a.cw_until
  in
  let rec go = function
    | [] -> Ok ()
    | w :: rest -> (
      match List.find_opt (overlap w) rest with
      | Some w' ->
        Error
          (Printf.sprintf
             "crash windows [%d, %d) and [%d, %d) of source %d overlap"
             w.cw_from w.cw_until w'.cw_from w'.cw_until w.cw_source)
      | None -> go rest)
  in
  go crashes

let validate ?horizon spec =
  let* () =
    match spec.sp_garble with
    | None -> Ok ()
    | Some (Iid { rate }) -> prob "garble rate" rate
    | Some (Gilbert_elliott { p_enter; p_exit; rate_good; rate_bad }) ->
      let* () = transition "p_enter" p_enter in
      let* () = transition "p_exit" p_exit in
      let* () = prob "rate_good" rate_good in
      prob "rate_bad" rate_bad
  in
  let* () = prob "misperception rate" spec.sp_misperception in
  let* () =
    List.fold_left
      (fun acc w ->
        let* () = acc in
        if w.cw_source < 0 then
          Error (Printf.sprintf "crash window: negative source %d" w.cw_source)
        else if w.cw_from < 0 then
          Error (Printf.sprintf "crash window: negative start %d" w.cw_from)
        else if w.cw_until <= w.cw_from then
          Error
            (Printf.sprintf "crash window [%d, %d) of source %d is empty"
               w.cw_from w.cw_until w.cw_source)
        else
          match horizon with
          | Some h when w.cw_until > h ->
            Error
              (Printf.sprintf
                 "crash window [%d, %d) of source %d extends past the horizon \
                  %d — the source would never rejoin"
                 w.cw_from w.cw_until w.cw_source h)
          | Some _ | None -> Ok ())
      (Ok ()) spec.sp_crashes
  in
  let* () = check_overlaps spec.sp_crashes in
  let check_time what t =
    if t < 0 then Error (Printf.sprintf "%s: negative slot time %d" what t)
    else
      match horizon with
      | Some h when t >= h ->
        Error
          (Printf.sprintf
             "%s at %d is at or past the horizon %d — it would never fire"
             what t h)
      | Some _ | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc t ->
        let* () = acc in
        check_time "scheduled garble" t)
      (Ok ()) spec.sp_garbles_at
  in
  List.fold_left
    (fun acc (s, t) ->
      let* () = acc in
      if s < 0 then
        Error (Printf.sprintf "scheduled misperception: negative source %d" s)
      else check_time (Printf.sprintf "scheduled misperception of source %d" s) t)
    (Ok ()) spec.sp_misperceive_at

let is_empty spec =
  spec.sp_garble = None && spec.sp_misperception = 0. && spec.sp_crashes = []
  && spec.sp_garbles_at = [] && spec.sp_misperceive_at = []

let has_local_faults spec =
  spec.sp_misperception > 0. || spec.sp_crashes <> []
  || spec.sp_misperceive_at <> []

(* ---------------------------------------------------------------- *)
(* Mutation / merge helpers.  The chaos shrinker treats a plan as a   *)
(* list of independent fault events (atoms) it can drop, narrow or    *)
(* weaken; these helpers keep that decomposition canonical so         *)
(* [merge (atoms sp)] round-trips (up to crash-window order).         *)

let atoms spec =
  (match spec.sp_garble with
  | None -> []
  | Some g -> [ { none with sp_garble = Some g } ])
  @ (if spec.sp_misperception > 0. then
       [ { none with sp_misperception = spec.sp_misperception } ]
     else [])
  @ List.map (fun w -> { none with sp_crashes = [ w ] }) spec.sp_crashes
  @ List.map (fun t -> { none with sp_garbles_at = [ t ] }) spec.sp_garbles_at
  @ List.map
      (fun ev -> { none with sp_misperceive_at = [ ev ] })
      spec.sp_misperceive_at

let merge specs = List.fold_left compose none specs

let event_count spec = List.length (atoms spec)

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let scale_severity spec factor =
  {
    spec with
    sp_garble =
      Option.map
        (function
          | Iid { rate } -> Iid { rate = clamp01 (rate *. factor) }
          | Gilbert_elliott ge ->
            Gilbert_elliott
              {
                ge with
                rate_good = clamp01 (ge.rate_good *. factor);
                rate_bad = clamp01 (ge.rate_bad *. factor);
              })
        spec.sp_garble;
    sp_misperception = clamp01 (spec.sp_misperception *. factor);
  }

let crashes_of spec ~source =
  List.filter (fun w -> w.cw_source = source) spec.sp_crashes

let max_outage spec ~source =
  List.fold_left
    (fun acc w ->
      if w.cw_source = source then max acc (w.cw_until - w.cw_from) else acc)
    0 spec.sp_crashes

let split_crash w =
  let width = w.cw_until - w.cw_from in
  if width < 2 then None
  else
    let mid = w.cw_from + (width / 2) in
    Some ({ w with cw_until = mid }, { w with cw_from = mid })

let label spec =
  let parts =
    (match spec.sp_garble with
    | None -> []
    | Some (Iid { rate }) -> [ Printf.sprintf "iid%.2f" rate ]
    | Some (Gilbert_elliott { p_enter; p_exit; _ }) ->
      [ Printf.sprintf "ge%.2f-%.2f" p_enter p_exit ])
    @ (if spec.sp_misperception > 0. then
         [ Printf.sprintf "mp%.2f" spec.sp_misperception ]
       else [])
    @ List.map
        (fun w -> Printf.sprintf "cr%d@%d-%d" w.cw_source w.cw_from w.cw_until)
        spec.sp_crashes
    @ List.map (fun t -> Printf.sprintf "g@%d" t) spec.sp_garbles_at
    @ List.map
        (fun (s, t) -> Printf.sprintf "mp%d@%d" s t)
        spec.sp_misperceive_at
  in
  match parts with [] -> "clean" | _ -> String.concat "+" parts

(* ---------------------------------------------------------------- *)
(* Canonical JSON codec (fixed key order; campaign spec hashes        *)
(* depend on the emitted bytes).                                      *)

let garble_to_json = function
  | Iid { rate } ->
    Json.Obj [ ("kind", Json.String "iid"); ("rate", Json.Float rate) ]
  | Gilbert_elliott { p_enter; p_exit; rate_good; rate_bad } ->
    Json.Obj
      [
        ("kind", Json.String "gilbert_elliott");
        ("p_enter", Json.Float p_enter);
        ("p_exit", Json.Float p_exit);
        ("rate_good", Json.Float rate_good);
        ("rate_bad", Json.Float rate_bad);
      ]

let crash_to_json w =
  Json.Obj
    [
      ("source", Json.Int w.cw_source);
      ("from", Json.Int w.cw_from);
      ("until", Json.Int w.cw_until);
    ]

(* The scheduled-fault keys are emitted only when non-empty: campaign
   spec hashes and committed repro fixtures depend on the bytes of the
   pre-existing encoding, which must stay stable for plans without
   scheduled atoms. *)
let spec_to_json spec =
  Json.Obj
    ([
       ( "garble",
         match spec.sp_garble with None -> Json.Null | Some g -> garble_to_json g
       );
       ("misperception", Json.Float spec.sp_misperception);
       ("crashes", Json.List (List.map crash_to_json spec.sp_crashes));
     ]
    @ (match spec.sp_garbles_at with
      | [] -> []
      | ts -> [ ("garbles_at", Json.List (List.map (fun t -> Json.Int t) ts)) ])
    @
    match spec.sp_misperceive_at with
    | [] -> []
    | evs ->
      [
        ( "misperceive_at",
          Json.List
            (List.map
               (fun (s, t) ->
                 Json.Obj [ ("source", Json.Int s); ("at", Json.Int t) ])
               evs) );
      ])

let float_field j key =
  let* v = Json.field key j in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" key e) (Json.get_float v)

let garble_of_json j =
  let* kind = Result.bind (Json.field "kind" j) Json.get_string in
  match kind with
  | "iid" ->
    let* rate = float_field j "rate" in
    Ok (Iid { rate })
  | "gilbert_elliott" ->
    let* p_enter = float_field j "p_enter" in
    let* p_exit = float_field j "p_exit" in
    let* rate_good = float_field j "rate_good" in
    let* rate_bad = float_field j "rate_bad" in
    Ok (Gilbert_elliott { p_enter; p_exit; rate_good; rate_bad })
  | other -> Error (Printf.sprintf "unknown garble kind %S" other)

let crash_of_json j =
  let* source = Result.bind (Json.field "source" j) Json.get_int in
  let* from_ = Result.bind (Json.field "from" j) Json.get_int in
  let* until = Result.bind (Json.field "until" j) Json.get_int in
  Ok { cw_source = source; cw_from = from_; cw_until = until }

let spec_of_json j =
  let* garble =
    match Json.member "garble" j with
    | None | Some Json.Null -> Ok None
    | Some gj -> Result.map Option.some (garble_of_json gj)
  in
  let* misperception =
    match Json.member "misperception" j with
    | None -> Ok 0.
    | Some v -> Json.get_float v
  in
  let* crashes =
    match Json.member "crashes" j with
    | None -> Ok []
    | Some cj ->
      let* l = Json.get_list cj in
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* w = crash_of_json item in
          Ok (w :: acc))
        (Ok []) l
      |> Result.map List.rev
  in
  let* garbles_at =
    match Json.member "garbles_at" j with
    | None -> Ok []
    | Some gj ->
      let* l = Json.get_list gj in
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* t = Json.get_int item in
          Ok (t :: acc))
        (Ok []) l
      |> Result.map List.rev
  in
  let* misperceive_at =
    match Json.member "misperceive_at" j with
    | None -> Ok []
    | Some mj ->
      let* l = Json.get_list mj in
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* s = Result.bind (Json.field "source" item) Json.get_int in
          let* t = Result.bind (Json.field "at" item) Json.get_int in
          Ok ((s, t) :: acc))
        (Ok []) l
      |> Result.map List.rev
  in
  let spec =
    {
      sp_garble = garble;
      sp_misperception = misperception;
      sp_crashes = crashes;
      sp_garbles_at = List.sort_uniq compare garbles_at;
      sp_misperceive_at = List.sort_uniq compare misperceive_at;
    }
  in
  (* Construction-time validation: a decoded plan is rejected with the
     same diagnostics [create] would raise, so malformed specs fail at
     the JSON boundary instead of mid-campaign. *)
  let* () = validate spec in
  Ok spec

(* ---------------------------------------------------------------- *)
(* Instantiated plans.  Stream paths: [0] Gilbert–Elliott state       *)
(* chain, [1] wire-garble draws, [2; source] source's misperception   *)
(* draws — so every random process is independent of the others and   *)
(* the draws of different sources never interleave.                   *)

type ge_state = Good | Bad

type t = {
  sp : spec;
  seed : int;
  state_rng : Prng.t;
  garble_rng : Prng.t;
  mutable state : ge_state;
  obs_rngs : (int, Prng.t) Hashtbl.t;
}

let create ?horizon ~seed sp =
  (match validate ?horizon sp with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fault_plan.create: " ^ e));
  {
    sp;
    seed;
    state_rng = Prng.stream ~seed ~path:[ 0 ];
    garble_rng = Prng.stream ~seed ~path:[ 1 ];
    state = Good;
    obs_rngs = Hashtbl.create 8;
  }

let spec t = t.sp

let tick t =
  match t.sp.sp_garble with
  | None | Some (Iid _) -> ()
  | Some (Gilbert_elliott { p_enter; p_exit; _ }) ->
    let u = Prng.float t.state_rng 1.0 in
    t.state <-
      (match t.state with
      | Good -> if u < p_enter then Bad else Good
      | Bad -> if u < p_exit then Good else Bad)

(* The random draw happens iff the random process is configured — never
   skipped because a scheduled atom already fires — so adding scheduled
   atoms to a plan leaves the random streams' positions (and therefore
   every existing fixture) untouched. *)
let wire_garbles t ~now =
  let drawn =
    match t.sp.sp_garble with
    | None -> false
    | Some (Iid { rate }) -> Prng.float t.garble_rng 1.0 < rate
    | Some (Gilbert_elliott { rate_good; rate_bad; _ }) ->
      let rate = match t.state with Good -> rate_good | Bad -> rate_bad in
      Prng.float t.garble_rng 1.0 < rate
  in
  drawn || List.mem now t.sp.sp_garbles_at

let obs_rng t source =
  match Hashtbl.find_opt t.obs_rngs source with
  | Some rng -> rng
  | None ->
    let rng = Prng.stream ~seed:t.seed ~path:[ 2; source ] in
    Hashtbl.add t.obs_rngs source rng;
    rng

let misperceives t ~source ~now =
  let drawn =
    t.sp.sp_misperception > 0.
    && Prng.float (obs_rng t source) 1.0 < t.sp.sp_misperception
  in
  drawn
  || List.exists (fun (s, at) -> s = source && at = now) t.sp.sp_misperceive_at

let alive t ~source ~now =
  not
    (List.exists
       (fun w -> w.cw_source = source && now >= w.cw_from && now < w.cw_until)
       t.sp.sp_crashes)
