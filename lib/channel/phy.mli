(** Physical-layer model of a broadcast medium.

    The simulator measures everything in {b bit-times}: one unit is the
    time to put one bit on the wire at nominal throughput [ψ].  The
    paper's quantities translate directly: a contention slot costs
    [slot_bits] units ([x·ψ]) and transmitting a message of Data-Link
    length [l] costs [tx_bits l] units ([l'·ψ/ψ = l']), where
    [l' > l] accounts for physical framing and signalling overhead
    (Section 4.3). *)

type collision_semantics =
  | Destructive
      (** Ethernet-like: simultaneous transmissions destroy each other;
          the slot only yields the ternary feedback
          silence/success/collision. *)
  | Arbitration
      (** ATM-internal-bus-like: an exclusive-OR wired logic makes
          collisions non-destructive — the contender with the smallest
          arbitration key survives the collision slot and transmits
          (Section 3.2, "busses internal to ATM switches"). *)

type t = {
  name : string;  (** human-readable medium name *)
  throughput_bps : float;  (** nominal [ψ], for converting to seconds *)
  slot_bits : int;  (** slot time [x] in bit-times *)
  overhead_bits : int;  (** PHY framing added to every frame *)
  min_frame_bits : int;  (** minimum on-wire frame (carrier extension) *)
  semantics : collision_semantics;  (** collision behaviour *)
}

val gigabit_ethernet : t
(** Half-duplex Gigabit Ethernet (IEEE 802.3z): 1 Gbit/s, 4096-bit slot
    (512-byte slotTime with carrier extension), 160 bits of
    preamble + interframe overhead, destructive collisions. *)

val classic_ethernet : t
(** 10 Mbit/s Ethernet: 512-bit slot, 512-bit minimum frame. *)

val atm_bus : t
(** Bus internal to an ATM switch: tiny slot (8 bit-times — "1 or a few
    bit times", Section 3.2), 424-bit cells (53 bytes) with the 40-bit
    header counted as overhead, non-destructive arbitration. *)

val tx_bits : t -> int -> int
(** [tx_bits phy l] is the on-wire cost [l'] (bit-times) of a frame
    with Data-Link length [l] bits: overhead added, then padded to the
    minimum frame.  @raise Invalid_argument if [l <= 0]. *)

val seconds_of_bits : t -> int -> float
(** [seconds_of_bits phy b] converts bit-times to seconds at [ψ]. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt phy] prints a one-line summary of the medium. *)
