type attempt = {
  att_source : int;
  att_tag : int;
  att_bits : int;
  att_key : int * int;
}

type resolution =
  | Idle
  | Tx of { src : int; tag : int; on_wire : int }
  | Garbled of { on_wire : int }
  | Clash of {
      contenders : (int * int) list;
      survivor : (int * int * int) option;
    }

type stats = {
  idle_slots : int;
  collision_slots : int;
  tx_count : int;
  garbled_count : int;
  busy_bits : int;
  total_bits : int;
}

type fault = { fault_rate : float; fault_seed : int }

type t = {
  phy : Phy.t;
  mutable free_at : int;
  mutable holder : int option; (* source of the frame just carried *)
  noise : Rtnet_util.Prng.t option; (* fault-injection draws *)
  fault_rate : float;
  plan : Fault_plan.t option; (* richer fault model; excludes [noise] *)
  mutable st : stats;
  mutable log : (int * int * int * int) list; (* reversed *)
}

let create ?fault ?plan phy =
  (match (fault, plan) with
  | Some _, Some _ ->
    invalid_arg "Channel.create: fault and plan are mutually exclusive"
  | _ -> ());
  let noise, fault_rate =
    match fault with
    | None -> (None, 0.)
    | Some { fault_rate; fault_seed } ->
      if fault_rate < 0. || fault_rate > 1. then
        invalid_arg "Channel.create: fault_rate out of [0, 1]";
      (Some (Rtnet_util.Prng.create fault_seed), fault_rate)
  in
  {
    phy;
    plan;
    free_at = 0;
    holder = None;
    noise;
    fault_rate;
    st =
      {
        idle_slots = 0;
        collision_slots = 0;
        tx_count = 0;
        garbled_count = 0;
        busy_bits = 0;
        total_bits = 0;
      };
    log = [];
  }

let phy ch = ch.phy

let slot_bits ch = ch.phy.Phy.slot_bits

let distinct_sources attempts =
  let sorted =
    List.sort compare (List.map (fun a -> a.att_source) attempts)
  in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | [ _ ] | [] -> true
  in
  no_dup sorted

let record_tx ch ~src ~tag ~start ~bits =
  let on_wire = Phy.tx_bits ch.phy bits in
  ch.log <- (src, tag, start, start + on_wire) :: ch.log;
  ch.st <-
    {
      ch.st with
      tx_count = ch.st.tx_count + 1;
      busy_bits = ch.st.busy_bits + on_wire;
    };
  on_wire

let contend ch ~now attempts =
  if now < ch.free_at then invalid_arg "Channel.contend: channel busy";
  if not (distinct_sources attempts) then
    invalid_arg "Channel.contend: duplicate source in slot";
  (* The burst-noise state chain advances once per contention slot,
     whatever the slot carries. *)
  (match ch.plan with None -> () | Some p -> Fault_plan.tick p);
  let slot = ch.phy.Phy.slot_bits in
  let finish_idle () =
    ch.st <-
      {
        ch.st with
        idle_slots = ch.st.idle_slots + 1;
        total_bits = ch.st.total_bits + slot;
      };
    (Idle, now + slot)
  in
  let garbled ch =
    match ch.plan with
    | Some p -> Fault_plan.wire_garbles p ~now
    | None -> (
      match ch.noise with
      | None -> false
      | Some rng -> Rtnet_util.Prng.float rng 1.0 < ch.fault_rate)
  in
  let finish_tx a =
    if garbled ch then begin
      (* The frame occupies the wire for its full length but carries
         nothing: every station sees a CRC-invalid frame. *)
      let on_wire = Phy.tx_bits ch.phy a.att_bits in
      ch.st <-
        {
          ch.st with
          garbled_count = ch.st.garbled_count + 1;
          total_bits = ch.st.total_bits + on_wire;
        };
      (Garbled { on_wire }, now + on_wire)
    end
    else begin
      let on_wire =
        record_tx ch ~src:a.att_source ~tag:a.att_tag ~start:now ~bits:a.att_bits
      in
      ch.st <- { ch.st with total_bits = ch.st.total_bits + on_wire };
      (Tx { src = a.att_source; tag = a.att_tag; on_wire }, now + on_wire)
    end
  in
  let finish_clash contenders =
    let ids = List.map (fun a -> (a.att_source, a.att_tag)) contenders in
    match ch.phy.Phy.semantics with
    | Phy.Destructive ->
      ch.st <-
        {
          ch.st with
          collision_slots = ch.st.collision_slots + 1;
          total_bits = ch.st.total_bits + slot;
        };
      (Clash { contenders = ids; survivor = None }, now + slot)
    | Phy.Arbitration ->
      (* Wired-OR arbitration: the smallest (deadline, static-index) key
         survives the collision window and transmits immediately. *)
      let best =
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> Some a
            | Some b ->
              if
                compare (a.att_key, a.att_source) (b.att_key, b.att_source)
                < 0
              then Some a
              else acc)
          None contenders
      in
      let a = match best with Some a -> a | None -> assert false in
      let on_wire =
        record_tx ch ~src:a.att_source ~tag:a.att_tag ~start:(now + slot)
          ~bits:a.att_bits
      in
      ch.st <-
        {
          ch.st with
          collision_slots = ch.st.collision_slots + 1;
          total_bits = ch.st.total_bits + slot + on_wire;
        };
      ( Clash
          {
            contenders = ids;
            survivor = Some (a.att_source, a.att_tag, on_wire);
          },
        now + slot + on_wire )
  in
  let resolution, free_at =
    match attempts with
    | [] -> finish_idle ()
    | [ a ] -> finish_tx a
    | _ :: _ :: _ -> finish_clash attempts
  in
  ch.free_at <- free_at;
  ch.holder <-
    (match resolution with
    | Tx { src; _ } | Clash { survivor = Some (src, _, _); _ } -> Some src
    | Idle | Garbled _ | Clash { survivor = None; _ } -> None);
  (resolution, free_at)

let burst ch ~src ~tag ~bits =
  (match ch.holder with
  | Some holder when holder = src -> ()
  | Some _ | None -> invalid_arg "Channel.burst: source does not hold the channel");
  let start = ch.free_at in
  let on_wire = record_tx ch ~src ~tag ~start ~bits in
  ch.st <- { ch.st with total_bits = ch.st.total_bits + on_wire };
  ch.free_at <- start + on_wire;
  (on_wire, ch.free_at)

let stats ch = ch.st

let utilization ch =
  if ch.st.total_bits = 0 then 0.
  else float_of_int ch.st.busy_bits /. float_of_int ch.st.total_bits

let carried ch = List.rev ch.log

let check_safety ch =
  let txs =
    List.sort (fun (_, _, s1, _) (_, _, s2, _) -> compare s1 s2) ch.log
  in
  let rec go = function
    | (src1, tag1, _, f1) :: ((src2, tag2, s2, _) :: _ as rest) ->
      if s2 < f1 then
        Error
          (Printf.sprintf
             "transmissions overlap: src %d tag %d (ends %d) vs src %d tag \
              %d (starts %d)"
             src1 tag1 f1 src2 tag2 s2)
      else go rest
    | [ _ ] | [] -> Ok ()
  in
  go txs
