(** Slotted broadcast channel with ternary feedback.

    The medium is shared by all sources.  Time advances in contention
    slots; in each slot every source either attempts a transmission or
    listens.  At the end of the slot all sources observe the same
    channel state — silence, busy (one transmission) or collision —
    within the slot time [x], as the paper's medium model requires.

    The channel owns the safety property of [<p.HRTDM>]: it records
    every carried transmission and {!check_safety} verifies that no two
    of them ever overlapped. *)

type attempt = {
  att_source : int;  (** attempting source id *)
  att_tag : int;  (** caller-chosen message tag, reported back *)
  att_bits : int;  (** Data-Link frame length [l], bits *)
  att_key : int * int;
      (** arbitration key (absolute deadline, static index); only used
          by {!Phy.Arbitration} media, smaller wins *)
}

type resolution =
  | Idle  (** nobody attempted: one empty slot *)
  | Tx of { src : int; tag : int; on_wire : int }
      (** exactly one attempt: it is carried; [on_wire] is [l'] in
          bit-times *)
  | Garbled of { on_wire : int }
      (** exactly one attempt, but the frame was destroyed by channel
          noise (fault injection): the medium was busy for [on_wire]
          bit-times, every station observed a CRC-invalid frame, and
          nothing was carried — the sender's message stays queued *)
  | Clash of { contenders : (int * int) list; survivor : (int * int * int) option }
      (** two or more attempts, as [(source, tag)] pairs.  On a
          destructive medium [survivor = None] (all destroyed).  On an
          arbitration medium the smallest-key contender survives as
          [Some (src, tag, on_wire)] and its frame is carried in the
          same access. *)

type t
(** Stateful channel: medium parameters plus occupancy statistics and
    the safety log. *)

type fault = {
  fault_rate : float;  (** probability that a lone frame is garbled *)
  fault_seed : int;  (** PRNG seed: fault patterns are reproducible *)
}
(** Channel-noise model: each frame carried through {!contend} is
    independently destroyed with probability [fault_rate] (it still
    occupies the medium for its full length — the full-frame CRC-error
    model, distinguishable from a collision fragment by all stations).
    Arbitrated survivors and {!burst} continuations are not subjected
    to faults (bursting rides a verified acquisition). *)

val create : ?fault:fault -> ?plan:Fault_plan.t -> Phy.t -> t
(** [create phy] is a fresh, idle channel over medium [phy], fault-free
    unless [fault] or [plan] is given.  [fault] is the legacy i.i.d.
    lone-frame garbling model; [plan] is the composable fault-plan
    model ({!Fault_plan}) whose wire-level axes (i.i.d. or
    Gilbert–Elliott burst garbling) the channel applies — its
    state chain advances once per {!contend} and the current rate
    applies to the slot's lone frame.  Per-source axes (misperception,
    crash windows) are sampled by the MAC harness, not here: the
    channel models the wire, which always carries one truth.
    @raise Invalid_argument if both [fault] and [plan] are given, or
    if [fault.fault_rate] is outside [\[0, 1]]. *)

val phy : t -> Phy.t
(** [phy ch] is the underlying medium. *)

val slot_bits : t -> int
(** [slot_bits ch] is the contention-slot duration in bit-times. *)

val contend : t -> now:int -> attempt list -> resolution * int
(** [contend ch ~now attempts] resolves one contention slot beginning
    at time [now] and returns the resolution together with the time at
    which the channel is next free (start of the next slot): [now +
    slot] after [Idle] or a destructive [Clash], [now + on_wire] after
    a [Tx], and [now + slot + on_wire] after an arbitrated [Clash].
    Statistics and the safety log are updated.
    @raise Invalid_argument if [now] precedes the end of the previous
    slot, or if two attempts share a source id. *)

val burst : t -> src:int -> tag:int -> bits:int -> int * int
(** [burst ch ~src ~tag ~bits] appends one more frame to the channel
    acquisition of [src] (IEEE 802.3z packet bursting, Section 5) —
    valid only immediately after a slot whose resolution carried a
    frame from [src] (a [Tx] or an arbitrated [Clash] survivor) and
    before any further {!contend}.  Returns [(on_wire, next_free)].
    The safety log and statistics are updated exactly as for a normal
    transmission.
    @raise Invalid_argument if [src] does not hold the channel. *)

(** Channel occupancy statistics, all in slots/bit-times of this
    channel. *)
type stats = {
  idle_slots : int;  (** slots in which nobody attempted *)
  collision_slots : int;  (** slots consumed by collisions *)
  tx_count : int;  (** messages carried *)
  garbled_count : int;  (** frames destroyed by injected noise *)
  busy_bits : int;  (** bit-times spent carrying frames *)
  total_bits : int;  (** bit-times elapsed across all resolved slots *)
}

val stats : t -> stats
(** [stats ch] is a snapshot of the counters. *)

val utilization : t -> float
(** [utilization ch] is [busy_bits / total_bits] (0 if nothing has
    happened yet). *)

val carried : t -> (int * int * int * int) list
(** [carried ch] lists every carried transmission as
    [(source, tag, start, finish)], oldest first. *)

val check_safety : t -> (unit, string) result
(** [check_safety ch] re-examines the full transmission log and returns
    [Error reason] if any two carried transmissions overlapped in time —
    i.e. if the mutual-exclusion requirement of [<p.HRTDM>] was
    violated. *)
