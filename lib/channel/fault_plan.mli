(** Composable fault plans for the broadcast medium.

    A fault plan bundles every way this repository can break the
    paper's medium model (Section 2.1), beyond the single i.i.d.
    garbling knob of {!Channel.fault}:

    - {b wire garbling}: a lone frame is destroyed on the wire and
      every station sees the same CRC-invalid frame.  Either i.i.d.
      per frame (the legacy model, now one combinator) or governed by
      a Gilbert–Elliott two-state burst process whose good/bad states
      have different garble rates;
    - {b per-source misperception}: a {e listening} station locally
      decodes the slot differently from what the wire carried — it
      sees [Garbled] where the wire carried a frame, or silence where
      the wire carried a collision (imperfect carrier sensing à la
      van Glabbeek et al.).  This violates the consistent-observation
      assumption the replicated DDCR state depends on;
    - {b crash windows}: a station is scheduled to be down during
      [\[from, until)] — it neither decides, transmits nor observes,
      and must rejoin when the window closes (TDMH-style resync).

    Plans are pure data ({!spec}, with a canonical JSON codec for
    campaign specs) instantiated into a stateful sampler ({!t}) with
    one seed.  All randomness is drawn from {!Rtnet_util.Prng}
    streams derived from that seed — plans are deterministic and
    independent of the protocol under test. *)

(** Wire-garbling process for lone frames. *)
type garble =
  | Iid of { rate : float }
      (** every lone frame independently destroyed with [rate] —
          exactly the legacy {!Channel.fault} model *)
  | Gilbert_elliott of {
      p_enter : float;  (** per-slot probability good → bad *)
      p_exit : float;  (** per-slot probability bad → good *)
      rate_good : float;  (** garble rate in the good state *)
      rate_bad : float;  (** garble rate in the bad (burst) state *)
    }
      (** two-state Markov burst noise: the state chain advances once
          per contention slot, the current state's rate applies to the
          slot's lone frame (if any) *)

type crash_window = {
  cw_source : int;  (** station scheduled to crash *)
  cw_from : int;  (** first bit-time of the outage *)
  cw_until : int;  (** first bit-time after the outage (exclusive) *)
}

type spec = {
  sp_garble : garble option;
  sp_misperception : float;
      (** per-slot probability that a listening live station decodes
          the slot differently from the wire (0 = consistent
          observation, the paper's model) *)
  sp_crashes : crash_window list;
  sp_garbles_at : int list;
      (** scheduled deterministic garbles: slot-start bit-times whose
          lone frame is destroyed on the wire, on top of any random
          process.  Sorted, duplicate-free.  The model checker exports
          counterexamples as these (plus crash windows), so a repro
          replays the exact fault schedule the explorer chose. *)
  sp_misperceive_at : (int * int) list;
      (** scheduled deterministic misperceptions: [(source, slot-start)]
          pairs at which that live listening station misperceives the
          slot.  Sorted, duplicate-free. *)
}

val none : spec
(** [none] is the empty plan: no garbling, consistent observation, no
    crashes.  Running under [none] is behaviourally a fault-free run. *)

val iid : float -> spec
(** [iid rate] garbles each lone frame independently with [rate]. *)

val gilbert_elliott :
  p_enter:float -> p_exit:float -> rate_good:float -> rate_bad:float -> spec
(** Burst noise; see {!garble}. *)

val misperceive : float -> spec
(** [misperceive rate] makes every listening station independently
    misperceive each slot with [rate]. *)

val crash : source:int -> from_:int -> until:int -> spec
(** [crash ~source ~from_ ~until] schedules [source] down during
    [\[from_, until)]. *)

val garble_at : int list -> spec
(** [garble_at times] schedules a deterministic wire garble of the lone
    frame (if any) of each slot starting at the given bit-times. *)

val misperceive_at : (int * int) list -> spec
(** [misperceive_at events] schedules deterministic misperceptions:
    each [(source, time)] makes [source] (if live and listening)
    misperceive the slot starting at [time]. *)

val compose : spec -> spec -> spec
(** [compose a b] overlays [b] on [a]: [b]'s garble process and
    misperception rate win when set (non-[None] / non-zero), crash
    windows are concatenated. *)

val validate : ?horizon:int -> spec -> (unit, string) result
(** [validate spec] checks every parameter: rates and probabilities in
    [\[0, 1]], Gilbert–Elliott transition probabilities strictly inside
    [(0, 1)] (at the endpoints the chain either sticks silently in one
    state or alternates deterministically — use {!Iid} for a
    single-state process), crash windows non-empty with non-negative
    bounds, non-overlapping per source and — when [horizon] is given —
    ending within it. *)

val is_empty : spec -> bool
(** [is_empty spec] iff the plan injects nothing at all. *)

val has_local_faults : spec -> bool
(** [has_local_faults spec] iff the plan breaks {e per-source}
    observation (misperception or crashes) — such plans are only
    meaningful for protocols that implement divergence recovery. *)

(** {1 Mutation / merge helpers}

    The chaos shrinker ([rtnet.chaos]) minimizes a failing plan along
    three axes: drop fault events, narrow crash windows, weaken
    severities.  These helpers give it a canonical decomposition of a
    plan into independent fault events and the two pointwise
    mutations, so the shrinker never has to know the record layout. *)

val atoms : spec -> spec list
(** [atoms spec] decomposes the plan into single-event plans: one for
    the garble process (if any), one for misperception (if non-zero),
    one per crash window, one per scheduled garble and one per
    scheduled misperception.  [merge (atoms spec)] rebuilds [spec]
    (up to crash-window order).  [atoms none = \[\]]. *)

val merge : spec list -> spec
(** [merge specs] folds {!compose} over [specs] (left to right) from
    {!none}: later garble/misperception settings win, crash windows
    accumulate. *)

val event_count : spec -> int
(** [event_count spec] is [List.length (atoms spec)] — the shrinker's
    size metric. *)

val scale_severity : spec -> float -> spec
(** [scale_severity spec f] multiplies every severity rate (iid garble
    rate, Gilbert–Elliott good/bad rates, misperception rate) by [f],
    clamped to [\[0, 1]].  Transition probabilities and crash windows
    are untouched — they are shrunk along the other two axes. *)

val crashes_of : spec -> source:int -> crash_window list
(** [crashes_of spec ~source] is the (declaration-ordered) list of
    [source]'s crash windows. *)

val max_outage : spec -> source:int -> int
(** [max_outage spec ~source] is the length in bit-times of [source]'s
    longest crash window (0 if it never crashes) — the worst service
    interruption a fault-aware admission test must absorb. *)

val split_crash : crash_window -> (crash_window * crash_window) option
(** [split_crash w] halves the window at its midpoint, returning the
    left and right halves, or [None] if [w] spans fewer than 2
    bit-times and cannot be narrowed further. *)

val label : spec -> string
(** [label spec] is a compact, filename-safe description, e.g.
    ["iid0.05"], ["ge0.02-0.20"], ["mp0.02+cr1@500000-1000000"],
    ["clean"] for the empty plan.  Distinct shipped plans get
    distinct labels (used in campaign cell keys). *)

val spec_to_json : spec -> Rtnet_util.Json.t
(** Canonical encoding (fixed key order); campaign spec hashes depend
    on it. *)

val spec_of_json : Rtnet_util.Json.t -> (spec, string) result
(** Decodes and {!validate}s (without a horizon): a malformed or
    out-of-range plan is rejected at the JSON boundary with the same
    diagnostics {!create} raises, never silently accepted. *)

(** {1 Instantiated plans} *)

type t
(** A sampler: [spec] plus the PRNG streams and Gilbert–Elliott state.
    Mutable; create one per run. *)

val create : ?horizon:int -> seed:int -> spec -> t
(** [create ~seed spec] instantiates the plan.  Streams are derived
    from [seed] via {!Rtnet_util.Prng.stream} (state chain, wire
    draws and each source's misperception draws are independent).
    @raise Invalid_argument if {!validate} rejects [spec]. *)

val spec : t -> spec

val tick : t -> unit
(** [tick t] advances the Gilbert–Elliott state chain by one
    contention slot (a no-op for [Iid]/no garbling).  The channel
    calls this once per {!Channel.contend}. *)

val wire_garbles : t -> now:int -> bool
(** [wire_garbles t ~now] draws whether the lone frame of the slot
    starting at [now] is destroyed on the wire, at the current state's
    rate — always true at a scheduled garble time.  The random draw is
    taken iff a random garble process is configured (scheduled atoms
    never shift the stream). *)

val misperceives : t -> source:int -> now:int -> bool
(** [misperceives t ~source ~now] draws whether listening station
    [source] misperceives the slot starting at [now] — always true at
    a scheduled [(source, now)] misperception.  Each live listener
    draws once per slot from its own stream iff the random rate is
    non-zero, so the draws of different sources never interleave and
    scheduled atoms never shift a stream. *)

val alive : t -> source:int -> now:int -> bool
(** [alive t ~source ~now] is false iff [now] falls inside one of
    [source]'s crash windows (pure — no draw). *)
