type collision_semantics = Destructive | Arbitration

type t = {
  name : string;
  throughput_bps : float;
  slot_bits : int;
  overhead_bits : int;
  min_frame_bits : int;
  semantics : collision_semantics;
}

let gigabit_ethernet =
  {
    name = "gigabit-ethernet";
    throughput_bps = 1e9;
    slot_bits = 4096;
    overhead_bits = 160;
    min_frame_bits = 4096;
    semantics = Destructive;
  }

let classic_ethernet =
  {
    name = "classic-ethernet";
    throughput_bps = 1e7;
    slot_bits = 512;
    overhead_bits = 160;
    min_frame_bits = 512;
    semantics = Destructive;
  }

let atm_bus =
  {
    name = "atm-bus";
    throughput_bps = 1e9;
    slot_bits = 8;
    overhead_bits = 40;
    min_frame_bits = 424;
    semantics = Arbitration;
  }

let tx_bits phy l =
  if l <= 0 then invalid_arg "Phy.tx_bits: non-positive length";
  max (l + phy.overhead_bits) phy.min_frame_bits

let seconds_of_bits phy b = float_of_int b /. phy.throughput_bps

let pp fmt phy =
  Format.fprintf fmt "%s (%.0e bit/s, slot %d bits, %s collisions)"
    phy.name phy.throughput_bps phy.slot_bits
    (match phy.semantics with
    | Destructive -> "destructive"
    | Arbitration -> "arbitrated")
