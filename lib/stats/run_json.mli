(** JSON codecs for run results.

    The campaign runner ([rtnet.campaign]) persists per-cell
    {!Run.metrics} (and the channel counters they were computed from)
    into [BENCH_*.json] files and checkpoint journals, and the
    perf-regression gate decodes them back.  Encoding is canonical:
    fixed key order, so the same value always serializes to the same
    bytes (see {!Rtnet_util.Json}).

    [metrics] and [channel stats] round-trip exactly.  A full
    {!Run.outcome} is encodable for dumps and external tooling, with
    messages flattened to [(uid, class id, arrival, deadline)] — the
    class table needed to rebuild [Message.t] values is not embedded,
    so the outcome codec is encode-only. *)

val metrics_to_json : Run.metrics -> Rtnet_util.Json.t
val metrics_of_json : Rtnet_util.Json.t -> (Run.metrics, string) result
(** Exact round-trip: [metrics_of_json (metrics_to_json m) = Ok m]. *)

val channel_stats_to_json : Rtnet_channel.Channel.stats -> Rtnet_util.Json.t

val channel_stats_of_json :
  Rtnet_util.Json.t -> (Rtnet_channel.Channel.stats, string) result

val fault_stats_to_json : Run.fault_stats -> Rtnet_util.Json.t

val fault_stats_of_json :
  Rtnet_util.Json.t -> (Run.fault_stats, string) result
(** Exact round-trip, like the metrics codec. *)

val outcome_to_json : Run.outcome -> Rtnet_util.Json.t
(** [outcome_to_json o] renders the whole outcome: protocol, horizon,
    completions as [{uid, cls, src, arrival, deadline, start, finish}],
    unfinished/dropped as [{uid, cls, arrival, deadline}], the
    channel counters ([null] if no medium was simulated) and the
    fault-plan degradation counters ([null] for fault-free runs). *)
