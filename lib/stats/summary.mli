(** Descriptive statistics over integer samples. *)

type t = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

val of_list : int list -> t option
(** [of_list samples] is [None] on the empty list, otherwise the
    summary.  Percentiles use the nearest-rank method. *)

val of_list_exn : int list -> t
(** [of_list_exn samples] is {!of_list} or
    @raise Invalid_argument on the empty list. *)

val percentile : int array -> float -> int
(** [percentile sorted p] is the nearest-rank [p]-percentile
    ([0 <= p <= 100]) of a sorted, non-empty array. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt s] prints a one-line summary. *)

(** Fixed-width histogram over integer samples. *)
module Histogram : sig
  type h

  val create : lo:int -> hi:int -> buckets:int -> h
  (** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with equal buckets;
      out-of-range samples land in the first/last bucket.
      @raise Invalid_argument on empty range or [buckets < 1]. *)

  val add : h -> int -> unit
  (** [add h v] records one sample. *)

  val counts : h -> int array
  (** [counts h] is the per-bucket tally. *)

  val render : h -> string
  (** [render h] is a multi-line ASCII bar rendering. *)
end
