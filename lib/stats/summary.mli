(** Descriptive statistics over integer samples. *)

type t = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

val of_list : int list -> t option
(** [of_list samples] is [None] on the empty list, otherwise the
    summary.  Percentiles use the nearest-rank method. *)

val of_list_exn : int list -> t
(** [of_list_exn samples] is {!of_list} or
    @raise Invalid_argument on the empty list. *)

val percentile : int array -> float -> int
(** [percentile sorted p] is the nearest-rank [p]-percentile
    ([0 <= p <= 100]) of a sorted, non-empty array. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt s] prints a one-line summary. *)

(** Fixed-width or log2-bucketed histogram over integer samples. *)
module Histogram : sig
  type h

  val create : lo:int -> hi:int -> buckets:int -> h
  (** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with equal buckets;
      out-of-range samples land in the first/last bucket.
      @raise Invalid_argument on empty range or [buckets < 1]. *)

  val create_log2 : unit -> h
  (** [create_log2 ()] covers every non-negative int with
      power-of-two buckets: bucket 0 holds samples [<= 1] (negatives
      are clamped), bucket [k >= 1] holds [\[2^k, 2^(k+1))].  Suited
      to latency distributions whose magnitude is unknown a priori. *)

  val log2_buckets : int
  (** Number of buckets in a {!create_log2} histogram. *)

  val bucket_of : h -> int -> int
  (** [bucket_of h v] is the bucket index [add h v] would increment. *)

  val add : h -> int -> unit
  (** [add h v] records one sample. *)

  val counts : h -> int array
  (** [counts h] is the per-bucket tally. *)

  val bounds : h -> (int * int) array
  (** [bounds h] is the inclusive [(lo, hi)] sample range of each
      bucket. *)

  val render : h -> string
  (** [render h] is a multi-line ASCII bar rendering.  Log2
      histograms render only up to the last populated bucket. *)
end
