module Json = Rtnet_util.Json
module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel

let ( let* ) = Result.bind

let metrics_to_json (m : Run.metrics) =
  Json.Obj
    [
      ("delivered", Json.Int m.Run.delivered);
      ("deadline_misses", Json.Int m.Run.deadline_misses);
      ("miss_ratio", Json.Float m.Run.miss_ratio);
      ("worst_latency", Json.Int m.Run.worst_latency);
      ("mean_latency", Json.Float m.Run.mean_latency);
      ("worst_lateness", Json.Int m.Run.worst_lateness);
      ("inversions", Json.Int m.Run.inversions);
      ("garbled", Json.Int m.Run.garbled);
      ("utilization", Json.Float m.Run.utilization);
    ]

let int_field j key =
  let* v = Json.field key j in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" key e) (Json.get_int v)

let float_field j key =
  let* v = Json.field key j in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" key e) (Json.get_float v)

let metrics_of_json j =
  let* delivered = int_field j "delivered" in
  let* deadline_misses = int_field j "deadline_misses" in
  let* miss_ratio = float_field j "miss_ratio" in
  let* worst_latency = int_field j "worst_latency" in
  let* mean_latency = float_field j "mean_latency" in
  let* worst_lateness = int_field j "worst_lateness" in
  let* inversions = int_field j "inversions" in
  let* garbled = int_field j "garbled" in
  let* utilization = float_field j "utilization" in
  Ok
    {
      Run.delivered;
      deadline_misses;
      miss_ratio;
      worst_latency;
      mean_latency;
      worst_lateness;
      inversions;
      garbled;
      utilization;
    }

let channel_stats_to_json (st : Channel.stats) =
  Json.Obj
    [
      ("idle_slots", Json.Int st.Channel.idle_slots);
      ("collision_slots", Json.Int st.Channel.collision_slots);
      ("tx_count", Json.Int st.Channel.tx_count);
      ("garbled_count", Json.Int st.Channel.garbled_count);
      ("busy_bits", Json.Int st.Channel.busy_bits);
      ("total_bits", Json.Int st.Channel.total_bits);
    ]

let channel_stats_of_json j =
  let* idle_slots = int_field j "idle_slots" in
  let* collision_slots = int_field j "collision_slots" in
  let* tx_count = int_field j "tx_count" in
  let* garbled_count = int_field j "garbled_count" in
  let* busy_bits = int_field j "busy_bits" in
  let* total_bits = int_field j "total_bits" in
  Ok
    {
      Channel.idle_slots;
      collision_slots;
      tx_count;
      garbled_count;
      busy_bits;
      total_bits;
    }

let message_to_json (m : Message.t) =
  Json.Obj
    [
      ("uid", Json.Int m.Message.uid);
      ("cls", Json.Int m.Message.cls.Message.cls_id);
      ("arrival", Json.Int m.Message.arrival);
      ("deadline", Json.Int (Message.abs_deadline m));
    ]

let completion_to_json (c : Run.completion) =
  Json.Obj
    [
      ("uid", Json.Int c.Run.c_msg.Message.uid);
      ("cls", Json.Int c.Run.c_msg.Message.cls.Message.cls_id);
      ("src", Json.Int c.Run.c_msg.Message.cls.Message.cls_source);
      ("arrival", Json.Int c.Run.c_msg.Message.arrival);
      ("deadline", Json.Int (Message.abs_deadline c.Run.c_msg));
      ("start", Json.Int c.Run.c_start);
      ("finish", Json.Int c.Run.c_finish);
    ]

let outcome_to_json (o : Run.outcome) =
  Json.Obj
    [
      ("protocol", Json.String o.Run.protocol);
      ("horizon", Json.Int o.Run.horizon);
      ("completions", Json.List (List.map completion_to_json o.Run.completions));
      ("unfinished", Json.List (List.map message_to_json o.Run.unfinished));
      ("dropped", Json.List (List.map message_to_json o.Run.dropped));
      ( "channel",
        match o.Run.channel with
        | None -> Json.Null
        | Some st -> channel_stats_to_json st );
      ("metrics", metrics_to_json (Run.metrics o));
    ]
