module Json = Rtnet_util.Json
module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel

let ( let* ) = Result.bind

let metrics_to_json (m : Run.metrics) =
  Json.Obj
    [
      ("delivered", Json.Int m.Run.delivered);
      ("deadline_misses", Json.Int m.Run.deadline_misses);
      ("miss_ratio", Json.Float m.Run.miss_ratio);
      ("worst_latency", Json.Int m.Run.worst_latency);
      ("mean_latency", Json.Float m.Run.mean_latency);
      ("worst_lateness", Json.Int m.Run.worst_lateness);
      ("inversions", Json.Int m.Run.inversions);
      ("garbled", Json.Int m.Run.garbled);
      ("utilization", Json.Float m.Run.utilization);
      ("desync_slots", Json.Int m.Run.desync_slots);
      ("recoveries", Json.Int m.Run.recoveries);
      ("misperceived", Json.Int m.Run.misperceived);
      ("missed_offline", Json.Int m.Run.missed_offline);
    ]

let int_field j key =
  let* v = Json.field key j in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" key e) (Json.get_int v)

let float_field j key =
  let* v = Json.field key j in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" key e) (Json.get_float v)

(* Fault counters default to 0 so reports written before the fault-plan
   subsystem still load. *)
let opt_int_field j key =
  match Json.member key j with None -> Ok 0 | Some v -> Json.get_int v

let metrics_of_json j =
  let* delivered = int_field j "delivered" in
  let* deadline_misses = int_field j "deadline_misses" in
  let* miss_ratio = float_field j "miss_ratio" in
  let* worst_latency = int_field j "worst_latency" in
  let* mean_latency = float_field j "mean_latency" in
  let* worst_lateness = int_field j "worst_lateness" in
  let* inversions = int_field j "inversions" in
  let* garbled = int_field j "garbled" in
  let* utilization = float_field j "utilization" in
  let* desync_slots = opt_int_field j "desync_slots" in
  let* recoveries = opt_int_field j "recoveries" in
  let* misperceived = opt_int_field j "misperceived" in
  let* missed_offline = opt_int_field j "missed_offline" in
  Ok
    {
      Run.delivered;
      deadline_misses;
      miss_ratio;
      worst_latency;
      mean_latency;
      worst_lateness;
      inversions;
      garbled;
      utilization;
      desync_slots;
      recoveries;
      misperceived;
      missed_offline;
    }

let channel_stats_to_json (st : Channel.stats) =
  Json.Obj
    [
      ("idle_slots", Json.Int st.Channel.idle_slots);
      ("collision_slots", Json.Int st.Channel.collision_slots);
      ("tx_count", Json.Int st.Channel.tx_count);
      ("garbled_count", Json.Int st.Channel.garbled_count);
      ("busy_bits", Json.Int st.Channel.busy_bits);
      ("total_bits", Json.Int st.Channel.total_bits);
    ]

let channel_stats_of_json j =
  let* idle_slots = int_field j "idle_slots" in
  let* collision_slots = int_field j "collision_slots" in
  let* tx_count = int_field j "tx_count" in
  let* garbled_count = int_field j "garbled_count" in
  let* busy_bits = int_field j "busy_bits" in
  let* total_bits = int_field j "total_bits" in
  Ok
    {
      Channel.idle_slots;
      collision_slots;
      tx_count;
      garbled_count;
      busy_bits;
      total_bits;
    }

let source_faults_to_json (sf : Run.source_faults) =
  Json.Obj
    [
      ("source", Json.Int sf.Run.sf_source);
      ("crashed_slots", Json.Int sf.Run.sf_crashed_slots);
      ("missed", Json.Int sf.Run.sf_missed);
      ("misperceived", Json.Int sf.Run.sf_misperceived);
      ("desync_slots", Json.Int sf.Run.sf_desync_slots);
      ("resyncs", Json.Int sf.Run.sf_resyncs);
    ]

let source_faults_of_json j =
  let* sf_source = int_field j "source" in
  let* sf_crashed_slots = int_field j "crashed_slots" in
  let* sf_missed = int_field j "missed" in
  let* sf_misperceived = int_field j "misperceived" in
  let* sf_desync_slots = int_field j "desync_slots" in
  let* sf_resyncs = int_field j "resyncs" in
  Ok
    {
      Run.sf_source;
      sf_crashed_slots;
      sf_missed;
      sf_misperceived;
      sf_desync_slots;
      sf_resyncs;
    }

let fault_stats_to_json (fs : Run.fault_stats) =
  Json.Obj
    [
      ( "per_source",
        Json.List (List.map source_faults_to_json fs.Run.f_per_source) );
      ( "epochs",
        Json.List
          (List.map
             (fun (s, f) -> Json.List [ Json.Int s; Json.Int f ])
             fs.Run.f_epochs) );
    ]

let fault_stats_of_json j =
  let* per_source =
    let* l = Result.bind (Json.field "per_source" j) Json.get_list in
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* sf = source_faults_of_json item in
        Ok (sf :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let* epochs =
    let* l = Result.bind (Json.field "epochs" j) Json.get_list in
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* pair = Json.get_list item in
        match pair with
        | [ s; f ] ->
          let* s = Json.get_int s in
          let* f = Json.get_int f in
          Ok ((s, f) :: acc)
        | _ -> Error "epoch is not a [start, finish] pair")
      (Ok []) l
    |> Result.map List.rev
  in
  Ok { Run.f_per_source = per_source; f_epochs = epochs }

let message_to_json (m : Message.t) =
  Json.Obj
    [
      ("uid", Json.Int m.Message.uid);
      ("cls", Json.Int m.Message.cls.Message.cls_id);
      ("arrival", Json.Int m.Message.arrival);
      ("deadline", Json.Int (Message.abs_deadline m));
    ]

let completion_to_json (c : Run.completion) =
  Json.Obj
    [
      ("uid", Json.Int c.Run.c_msg.Message.uid);
      ("cls", Json.Int c.Run.c_msg.Message.cls.Message.cls_id);
      ("src", Json.Int c.Run.c_msg.Message.cls.Message.cls_source);
      ("arrival", Json.Int c.Run.c_msg.Message.arrival);
      ("deadline", Json.Int (Message.abs_deadline c.Run.c_msg));
      ("start", Json.Int c.Run.c_start);
      ("finish", Json.Int c.Run.c_finish);
    ]

let outcome_to_json (o : Run.outcome) =
  Json.Obj
    [
      ("protocol", Json.String o.Run.protocol);
      ("horizon", Json.Int o.Run.horizon);
      ("completions", Json.List (List.map completion_to_json o.Run.completions));
      ("unfinished", Json.List (List.map message_to_json o.Run.unfinished));
      ("dropped", Json.List (List.map message_to_json o.Run.dropped));
      ( "channel",
        match o.Run.channel with
        | None -> Json.Null
        | Some st -> channel_stats_to_json st );
      ( "faults",
        match o.Run.faults with
        | None -> Json.Null
        | Some fs -> fault_stats_to_json fs );
      ("metrics", metrics_to_json (Run.metrics o));
    ]
