type t = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let of_list samples =
  match samples with
  | [] -> None
  | _ :: _ ->
    let arr = Array.of_list samples in
    Array.sort compare arr;
    let n = Array.length arr in
    let fn = float_of_int n in
    let sum = Array.fold_left ( + ) 0 arr in
    let mean = float_of_int sum /. fn in
    let var =
      Array.fold_left
        (fun acc v ->
          let d = float_of_int v -. mean in
          acc +. (d *. d))
        0. arr
      /. fn
    in
    Some
      {
        count = n;
        min = arr.(0);
        max = arr.(n - 1);
        mean;
        stddev = sqrt var;
        p50 = percentile arr 50.;
        p90 = percentile arr 90.;
        p99 = percentile arr 99.;
      }

let of_list_exn samples =
  match of_list samples with
  | Some s -> s
  | None -> invalid_arg "Summary.of_list_exn: empty"

let pp fmt s =
  Format.fprintf fmt
    "n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f sd=%.1f" s.count s.min
    s.p50 s.p90 s.p99 s.max s.mean s.stddev

module Histogram = struct
  type scale = Linear of { lo : int; width : int } | Log2

  type h = { scale : scale; tally : int array }

  (* 62 buckets cover every non-negative OCaml int: bucket 0 holds
     v <= 1, bucket k >= 1 holds [2^k, 2^(k+1)). *)
  let log2_buckets = 62

  let create ~lo ~hi ~buckets =
    if hi <= lo then invalid_arg "Histogram.create: empty range";
    if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
    let width = max 1 ((hi - lo + buckets - 1) / buckets) in
    { scale = Linear { lo; width }; tally = Array.make buckets 0 }

  let create_log2 () = { scale = Log2; tally = Array.make log2_buckets 0 }

  let log2_bucket v =
    if v <= 1 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 1 do
        incr b;
        v := !v lsr 1
      done;
      !b
    end

  let bucket_of h v =
    match h.scale with
    | Linear { lo; width } ->
      max 0 (min (Array.length h.tally - 1) ((v - lo) / width))
    | Log2 -> min (Array.length h.tally - 1) (log2_bucket v)

  let add h v = h.tally.(bucket_of h v) <- h.tally.(bucket_of h v) + 1

  let counts h = Array.copy h.tally

  let bounds h =
    Array.init (Array.length h.tally) (fun i ->
        match h.scale with
        | Linear { lo; width } -> (lo + (i * width), lo + ((i + 1) * width) - 1)
        | Log2 -> if i = 0 then (0, 1) else (1 lsl i, (1 lsl (i + 1)) - 1))

  let render h =
    let buf = Buffer.create 256 in
    let peak = Array.fold_left max 1 h.tally in
    let bounds = bounds h in
    (* Log2 histograms span every representable magnitude; only render
       up to the last populated bucket. *)
    let last =
      match h.scale with
      | Linear _ -> Array.length h.tally - 1
      | Log2 ->
        let hi = ref 0 in
        Array.iteri (fun i c -> if c > 0 then hi := i) h.tally;
        !hi
    in
    Array.iteri
      (fun i c ->
        if i <= last then begin
          let lo, hi = bounds.(i) in
          let bar = 50 * c / peak in
          Buffer.add_string buf
            (Printf.sprintf "%12d..%-12d |%s %d\n" lo hi
               (String.make bar '#')
               c)
        end)
      h.tally;
    Buffer.contents buf
end
