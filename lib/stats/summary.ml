type t = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let of_list samples =
  match samples with
  | [] -> None
  | _ :: _ ->
    let arr = Array.of_list samples in
    Array.sort compare arr;
    let n = Array.length arr in
    let fn = float_of_int n in
    let sum = Array.fold_left ( + ) 0 arr in
    let mean = float_of_int sum /. fn in
    let var =
      Array.fold_left
        (fun acc v ->
          let d = float_of_int v -. mean in
          acc +. (d *. d))
        0. arr
      /. fn
    in
    Some
      {
        count = n;
        min = arr.(0);
        max = arr.(n - 1);
        mean;
        stddev = sqrt var;
        p50 = percentile arr 50.;
        p90 = percentile arr 90.;
        p99 = percentile arr 99.;
      }

let of_list_exn samples =
  match of_list samples with
  | Some s -> s
  | None -> invalid_arg "Summary.of_list_exn: empty"

let pp fmt s =
  Format.fprintf fmt
    "n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f sd=%.1f" s.count s.min
    s.p50 s.p90 s.p99 s.max s.mean s.stddev

module Histogram = struct
  type h = { lo : int; width : int; tally : int array }

  let create ~lo ~hi ~buckets =
    if hi <= lo then invalid_arg "Histogram.create: empty range";
    if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
    let width = max 1 ((hi - lo + buckets - 1) / buckets) in
    { lo; width; tally = Array.make buckets 0 }

  let add h v =
    let b = (v - h.lo) / h.width in
    let b = max 0 (min (Array.length h.tally - 1) b) in
    h.tally.(b) <- h.tally.(b) + 1

  let counts h = Array.copy h.tally

  let render h =
    let buf = Buffer.create 256 in
    let peak = Array.fold_left max 1 h.tally in
    Array.iteri
      (fun i c ->
        let lo = h.lo + (i * h.width) in
        let bar = 50 * c / peak in
        Buffer.add_string buf
          (Printf.sprintf "%12d..%-12d |%s %d\n" lo
             (lo + h.width - 1)
             (String.make bar '#')
             c))
      h.tally;
    Buffer.contents buf
end
