module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel

type completion = { c_msg : Message.t; c_start : int; c_finish : int }

let latency c = c.c_finish - c.c_msg.Message.arrival

let lateness c = c.c_finish - Message.abs_deadline c.c_msg

let missed c = lateness c > 0

type outcome = {
  protocol : string;
  completions : completion list;
  unfinished : Message.t list;
  dropped : Message.t list;
  horizon : int;
  channel : Channel.stats option;
}

type metrics = {
  delivered : int;
  deadline_misses : int;
  miss_ratio : float;
  worst_latency : int;
  mean_latency : float;
  worst_lateness : int;
  inversions : int;
  garbled : int;
  utilization : float;
}

let inversions cs =
  let arr = Array.of_list cs in
  let n = Array.length arr in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        b.c_msg.Message.arrival <= a.c_start
        && Message.abs_deadline a.c_msg > Message.abs_deadline b.c_msg
      then incr count
    done
  done;
  !count

let metrics o =
  let delivered = List.length o.completions in
  let late = List.length (List.filter missed o.completions) in
  let due_unfinished =
    List.length
      (List.filter (fun m -> Message.abs_deadline m <= o.horizon) o.unfinished)
  in
  let drops = List.length o.dropped in
  let misses = late + drops + due_unfinished in
  let accountable = delivered + drops + due_unfinished in
  let latencies = List.map latency o.completions in
  let worst_latency = List.fold_left max 0 latencies in
  let mean_latency =
    if delivered = 0 then 0.
    else float_of_int (List.fold_left ( + ) 0 latencies) /. float_of_int delivered
  in
  let worst_lateness =
    match o.completions with
    | [] -> 0
    | c :: cs -> List.fold_left (fun acc c -> max acc (lateness c)) (lateness c) cs
  in
  {
    delivered;
    deadline_misses = misses;
    miss_ratio =
      (if accountable = 0 then 0. else float_of_int misses /. float_of_int accountable);
    worst_latency;
    mean_latency;
    worst_lateness;
    inversions = inversions o.completions;
    garbled =
      (match o.channel with
      | None -> 0
      | Some st -> st.Channel.garbled_count);
    utilization =
      (match o.channel with
      | None -> 0.
      | Some st ->
        if st.Channel.total_bits = 0 then 0.
        else float_of_int st.Channel.busy_bits /. float_of_int st.Channel.total_bits);
  }

let per_class_worst_latency o =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let id = c.c_msg.Message.cls.Message.cls_id in
      let l = latency c in
      match Hashtbl.find_opt tbl id with
      | Some best when best >= l -> ()
      | Some _ | None -> Hashtbl.replace tbl id l)
    o.completions;
  List.sort compare (Hashtbl.fold (fun id l acc -> (id, l) :: acc) tbl [])

let pp_metrics fmt m =
  Format.fprintf fmt
    "delivered=%d misses=%d (%.2f%%) worst-lat=%d mean-lat=%.0f \
     worst-late=%d inv=%d garbled=%d util=%.3f"
    m.delivered m.deadline_misses (100. *. m.miss_ratio) m.worst_latency
    m.mean_latency m.worst_lateness m.inversions m.garbled m.utilization
