module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel

type completion = { c_msg : Message.t; c_start : int; c_finish : int }

let latency c = c.c_finish - c.c_msg.Message.arrival

let lateness c = c.c_finish - Message.abs_deadline c.c_msg

let missed c = lateness c > 0

type source_faults = {
  sf_source : int;
  sf_crashed_slots : int;
  sf_missed : int;
  sf_misperceived : int;
  sf_desync_slots : int;
  sf_resyncs : int;
}

type fault_stats = {
  f_per_source : source_faults list;
  f_epochs : (int * int) list;
}

type outcome = {
  protocol : string;
  completions : completion list;
  unfinished : Message.t list;
  dropped : Message.t list;
  horizon : int;
  channel : Channel.stats option;
  faults : fault_stats option;
}

type metrics = {
  delivered : int;
  deadline_misses : int;
  miss_ratio : float;
  worst_latency : int;
  mean_latency : float;
  worst_lateness : int;
  inversions : int;
  garbled : int;
  utilization : float;
  desync_slots : int;
  recoveries : int;
  misperceived : int;
  missed_offline : int;
}

let inversions cs =
  let arr = Array.of_list cs in
  let n = Array.length arr in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        b.c_msg.Message.arrival <= a.c_start
        && Message.abs_deadline a.c_msg > Message.abs_deadline b.c_msg
      then incr count
    done
  done;
  !count

let metrics o =
  let delivered = List.length o.completions in
  let late = List.length (List.filter missed o.completions) in
  let due_unfinished =
    List.length
      (List.filter (fun m -> Message.abs_deadline m <= o.horizon) o.unfinished)
  in
  let drops = List.length o.dropped in
  let misses = late + drops + due_unfinished in
  let accountable = delivered + drops + due_unfinished in
  let latencies = List.map latency o.completions in
  let worst_latency = List.fold_left max 0 latencies in
  let mean_latency =
    if delivered = 0 then 0.
    else float_of_int (List.fold_left ( + ) 0 latencies) /. float_of_int delivered
  in
  let worst_lateness =
    match o.completions with
    | [] -> 0
    | c :: cs -> List.fold_left (fun acc c -> max acc (lateness c)) (lateness c) cs
  in
  let fault_sum field =
    match o.faults with
    | None -> 0
    | Some fs -> List.fold_left (fun acc sf -> acc + field sf) 0 fs.f_per_source
  in
  {
    delivered;
    deadline_misses = misses;
    miss_ratio =
      (if accountable = 0 then 0. else float_of_int misses /. float_of_int accountable);
    worst_latency;
    mean_latency;
    worst_lateness;
    inversions = inversions o.completions;
    garbled =
      (match o.channel with
      | None -> 0
      | Some st -> st.Channel.garbled_count);
    utilization =
      (match o.channel with
      | None -> 0.
      | Some st ->
        if st.Channel.total_bits = 0 then 0.
        else float_of_int st.Channel.busy_bits /. float_of_int st.Channel.total_bits);
    desync_slots = fault_sum (fun sf -> sf.sf_desync_slots);
    recoveries = fault_sum (fun sf -> sf.sf_resyncs);
    misperceived = fault_sum (fun sf -> sf.sf_misperceived);
    missed_offline = fault_sum (fun sf -> sf.sf_missed);
  }

let merge_channel_stats a b =
  {
    Channel.idle_slots = a.Channel.idle_slots + b.Channel.idle_slots;
    collision_slots = a.Channel.collision_slots + b.Channel.collision_slots;
    tx_count = a.Channel.tx_count + b.Channel.tx_count;
    garbled_count = a.Channel.garbled_count + b.Channel.garbled_count;
    busy_bits = a.Channel.busy_bits + b.Channel.busy_bits;
    total_bits = a.Channel.total_bits + b.Channel.total_bits;
  }

let merge_epochs lists =
  let all = List.sort compare (List.concat lists) in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> (
      match acc with
      | (s0, e0) :: acc' when s <= e0 -> go ((s0, max e0 e) :: acc') rest
      | acc -> go ((s, e) :: acc) rest)
  in
  go [] all

let merge ~protocol ~horizon outcomes =
  let completions =
    List.sort
      (fun a b ->
        compare
          (a.c_finish, a.c_start, a.c_msg.Message.uid)
          (b.c_finish, b.c_start, b.c_msg.Message.uid))
      (List.concat_map (fun o -> o.completions) outcomes)
  in
  let channel =
    List.fold_left
      (fun acc o ->
        match (acc, o.channel) with
        | None, s -> s
        | Some s, None -> Some s
        | Some s, Some s' -> Some (merge_channel_stats s s'))
      None outcomes
  in
  let faults =
    if List.for_all (fun o -> o.faults = None) outcomes then None
    else
      let stats =
        List.filter_map (fun o -> o.faults) outcomes
      in
      Some
        {
          f_per_source = List.concat_map (fun fs -> fs.f_per_source) stats;
          f_epochs = merge_epochs (List.map (fun fs -> fs.f_epochs) stats);
        }
  in
  {
    protocol;
    completions;
    unfinished = List.concat_map (fun o -> o.unfinished) outcomes;
    dropped = List.concat_map (fun o -> o.dropped) outcomes;
    horizon;
    channel;
    faults;
  }

let per_class_worst_latency o =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let id = c.c_msg.Message.cls.Message.cls_id in
      let l = latency c in
      match Hashtbl.find_opt tbl id with
      | Some best when best >= l -> ()
      | Some _ | None -> Hashtbl.replace tbl id l)
    o.completions;
  List.sort compare (Hashtbl.fold (fun id l acc -> (id, l) :: acc) tbl [])

let pp_metrics fmt m =
  Format.fprintf fmt
    "delivered=%d misses=%d (%.2f%%) worst-lat=%d mean-lat=%.0f \
     worst-late=%d inv=%d garbled=%d util=%.3f"
    m.delivered m.deadline_misses (100. *. m.miss_ratio) m.worst_latency
    m.mean_latency m.worst_lateness m.inversions m.garbled m.utilization;
  if
    m.desync_slots > 0 || m.recoveries > 0 || m.misperceived > 0
    || m.missed_offline > 0
  then
    Format.fprintf fmt " desync=%d resync=%d mispercv=%d missed-off=%d"
      m.desync_slots m.recoveries m.misperceived m.missed_offline
