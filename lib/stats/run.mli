(** Common result representation for every protocol run.

    All protocol simulators (CSMA/DDCR, the baselines and the
    centralized NP-EDF oracle) report their run as an {!outcome}; all
    experiment harnesses consume {!metrics} computed from it, so
    protocols are compared on identical terms. *)

type completion = {
  c_msg : Rtnet_workload.Message.t;  (** the transmitted message *)
  c_start : int;  (** first bit on the wire, bit-times *)
  c_finish : int;  (** last bit on the wire, bit-times *)
}

val latency : completion -> int
(** [latency c] is [c_finish − T(msg)] — the successful transmission
    latency bounded by [B_DDCR] in Section 4.3. *)

val lateness : completion -> int
(** [lateness c] is [c_finish − DM(msg)]; positive means the timeliness
    property was violated. *)

val missed : completion -> bool
(** [missed c] is [lateness c > 0]. *)

type source_faults = {
  sf_source : int;  (** station id *)
  sf_crashed_slots : int;  (** slots spent down (crash windows) *)
  sf_missed : int;  (** non-idle slots the station missed while down *)
  sf_misperceived : int;  (** slots where its local observation
                              disagreed with the wire *)
  sf_desync_slots : int;  (** slots spent desynchronized (listen-only,
                              replica state stale) *)
  sf_resyncs : int;  (** recoveries: times it re-acquired the shared
                         state and re-entered contention *)
}
(** Per-station degradation counters under a {!Rtnet_channel.Fault_plan}. *)

type fault_stats = {
  f_per_source : source_faults list;  (** one entry per station, in id order *)
  f_epochs : (int * int) list;
      (** merged fault epochs [\[start, finish)] in bit-times: maximal
          spans during which some station was down, desynchronized or
          observing inconsistently, or the wire garbled a frame.
          Timeliness is only asserted outside these spans. *)
}

type outcome = {
  protocol : string;  (** protocol label *)
  completions : completion list;  (** in completion order *)
  unfinished : Rtnet_workload.Message.t list;
      (** messages still queued when the run ended (not counted as
          misses if their deadline is beyond the horizon) *)
  dropped : Rtnet_workload.Message.t list;
      (** messages abandoned by the protocol (e.g. BEB's 16-attempt
          limit) — always counted as misses *)
  horizon : int;  (** end of simulated time, bit-times *)
  channel : Rtnet_channel.Channel.stats option;  (** medium counters, if simulated *)
  faults : fault_stats option;
      (** degradation bookkeeping; [Some] iff the run executed under a
          fault plan (even an empty one), [None] otherwise *)
}

type metrics = {
  delivered : int;  (** messages completed *)
  deadline_misses : int;  (** completions after [DM], plus drops, plus
                              unfinished whose deadline fell within the
                              horizon *)
  miss_ratio : float;  (** misses / (delivered + dropped + due) *)
  worst_latency : int;  (** max latency (0 if nothing delivered) *)
  mean_latency : float;  (** mean latency *)
  worst_lateness : int;  (** max lateness; negative = min slack *)
  inversions : int;  (** deadline inversions, see {!inversions} *)
  garbled : int;  (** frames destroyed by injected channel noise
                      ({!Rtnet_channel.Channel.stats}[.garbled_count];
                      0 when no medium was simulated) — surfaces fault
                      injection in every scoreboard and campaign JSON *)
  utilization : float;  (** carried bits / elapsed bits, if known *)
  desync_slots : int;  (** total slots any station spent desynchronized *)
  recoveries : int;  (** total divergence recoveries (resyncs) *)
  misperceived : int;  (** total locally-misperceived slots *)
  missed_offline : int;  (** total non-idle slots missed while down *)
}

val inversions : completion list -> int
(** [inversions cs] counts pairs [(a, b)] where [a] started
    transmission while [b] was already pending ([T(b) <= c_start a])
    yet [DM(a) > DM(b)] and [b] completed after [a] — the
    deadline-inversion count that CSMA/DDCR's deadline equivalence
    classes are designed to keep small. *)

val metrics : outcome -> metrics
(** [metrics o] computes the scoreboard for one run. *)

val merge : protocol:string -> horizon:int -> outcome list -> outcome
(** [merge ~protocol ~horizon outcomes] combines the outcomes of
    several independent media simulated over the same span — parallel
    busses ({!Rtnet_core.Multi_bus} — forward reference: core sits above
    stats) or the federated segments of a multi-hop topology — into one
    aggregate outcome under the given label: completions re-sorted by
    [(c_finish, c_start, uid)] (a total order, so the merge is
    deterministic whatever the per-medium simulation order was),
    unfinished and dropped lists concatenated, channel statistics
    summed ([None] only when no constituent simulated a medium), and
    fault bookkeeping combined ([None] when every constituent ran
    fault-free; otherwise per-source counters concatenated in outcome
    order — station ids are per-medium, not renumbered — and fault
    epochs re-merged by coalescing overlaps). *)

val per_class_worst_latency : outcome -> (int * int) list
(** [per_class_worst_latency o] maps each class id (that completed at
    least one message) to its worst observed latency — compared against
    [B_DDCR] per class in the validation experiments. *)

val pp_metrics : Format.formatter -> metrics -> unit
(** [pp_metrics fmt m] prints a one-line scoreboard. *)
