(** Named metrics: counters, gauges and log2-bucketed histograms.

    A live {!t} is mutable and cheap to update from probe callbacks; a
    {!snapshot} is the immutable, deterministic view used for
    rendering and JSON embedding ([Run_json]-style codecs, so campaign
    reports can carry telemetry behind an optional key). *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr t name] bumps counter [name] by one (creating it at 0). *)

val add : t -> string -> int -> unit
(** [add t name n] bumps counter [name] by [n]. *)

val set_gauge : t -> string -> float -> unit
(** [set_gauge t name v] sets gauge [name] to [v]. *)

val max_gauge : t -> string -> float -> unit
(** [max_gauge t name v] sets gauge [name] to [max old v]
    (creating it at [v]). *)

val add_gauge : t -> string -> float -> unit
(** [add_gauge t name v] adds [v] to gauge [name] (creating it at
    [v]). *)

val observe : t -> string -> int -> unit
(** [observe t name v] records [v] into log2 histogram [name]
    (creating it empty). *)

val counter_value : t -> string -> int
(** [counter_value t name] is the counter's value, 0 if absent. *)

val gauge_value : t -> string -> float option

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * (int * int) list) list;
      (** sorted by name; each histogram is its sparse non-zero
          [(log2 bucket, count)] pairs in bucket order *)
}

val snapshot : t -> snapshot

val snapshot_to_json : snapshot -> Rtnet_util.Json.t
val snapshot_of_json : Rtnet_util.Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_to_json}. *)

val render : snapshot -> string
(** Aligned text rendering (counters, gauges, then histogram bucket
    tables). *)
