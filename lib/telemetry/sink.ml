type tree = Time_tree | Static_tree

type t = {
  enabled : bool;
  slot :
    now:int ->
    next_free:int ->
    resolution:Rtnet_channel.Channel.resolution ->
    unit;
  enqueue : now:int -> msg:Rtnet_workload.Message.t -> unit;
  complete : msg:Rtnet_workload.Message.t -> start:int -> finish:int -> unit;
  drop : msg:Rtnet_workload.Message.t -> unit;
  search : tree:tree -> start:int -> finish:int -> sent:bool -> unit;
  jump : now:int -> reft_from:int -> reft_to:int -> unit;
  epoch : start:int -> finish:int -> unit;
  engine_event : time:int -> unit;
  worker_cell :
    worker:int -> key:string -> t0:float -> t1:float -> ok:bool -> unit;
  service : component:string -> degraded:bool -> backlog:int -> unit;
}

let nop_slot ~now:_ ~next_free:_ ~resolution:_ = ()
let nop_enqueue ~now:_ ~msg:_ = ()
let nop_complete ~msg:_ ~start:_ ~finish:_ = ()
let nop_drop ~msg:_ = ()
let nop_search ~tree:_ ~start:_ ~finish:_ ~sent:_ = ()
let nop_jump ~now:_ ~reft_from:_ ~reft_to:_ = ()
let nop_epoch ~start:_ ~finish:_ = ()
let nop_engine_event ~time:_ = ()
let nop_worker_cell ~worker:_ ~key:_ ~t0:_ ~t1:_ ~ok:_ = ()
let nop_service ~component:_ ~degraded:_ ~backlog:_ = ()

let null =
  {
    enabled = false;
    slot = nop_slot;
    enqueue = nop_enqueue;
    complete = nop_complete;
    drop = nop_drop;
    search = nop_search;
    jump = nop_jump;
    epoch = nop_epoch;
    engine_event = nop_engine_event;
    worker_cell = nop_worker_cell;
    service = nop_service;
  }

let tee a b =
  match (a.enabled, b.enabled) with
  | false, false -> null
  | true, false -> a
  | false, true -> b
  | true, true ->
    {
      enabled = true;
      slot =
        (fun ~now ~next_free ~resolution ->
          a.slot ~now ~next_free ~resolution;
          b.slot ~now ~next_free ~resolution);
      enqueue =
        (fun ~now ~msg ->
          a.enqueue ~now ~msg;
          b.enqueue ~now ~msg);
      complete =
        (fun ~msg ~start ~finish ->
          a.complete ~msg ~start ~finish;
          b.complete ~msg ~start ~finish);
      drop =
        (fun ~msg ->
          a.drop ~msg;
          b.drop ~msg);
      search =
        (fun ~tree ~start ~finish ~sent ->
          a.search ~tree ~start ~finish ~sent;
          b.search ~tree ~start ~finish ~sent);
      jump =
        (fun ~now ~reft_from ~reft_to ->
          a.jump ~now ~reft_from ~reft_to;
          b.jump ~now ~reft_from ~reft_to);
      epoch =
        (fun ~start ~finish ->
          a.epoch ~start ~finish;
          b.epoch ~start ~finish);
      engine_event =
        (fun ~time ->
          a.engine_event ~time;
          b.engine_event ~time);
      worker_cell =
        (fun ~worker ~key ~t0 ~t1 ~ok ->
          a.worker_cell ~worker ~key ~t0 ~t1 ~ok;
          b.worker_cell ~worker ~key ~t0 ~t1 ~ok);
      service =
        (fun ~component ~degraded ~backlog ->
          a.service ~component ~degraded ~backlog;
          b.service ~component ~degraded ~backlog);
    }

let create ?(slot = nop_slot) ?(enqueue = nop_enqueue) ?(complete = nop_complete)
    ?(drop = nop_drop) ?(search = nop_search) ?(jump = nop_jump)
    ?(epoch = nop_epoch) ?(engine_event = nop_engine_event)
    ?(worker_cell = nop_worker_cell) ?(service = nop_service) () =
  {
    enabled = true;
    slot;
    enqueue;
    complete;
    drop;
    search;
    jump;
    epoch;
    engine_event;
    worker_cell;
    service;
  }
