(** Per-deadline-class bound headroom: observed worst channel-access
    delay vs. the analytic feasibility bounds.

    The bounds themselves come from [Rtnet_core.Feasibility] — callers
    compute them and hand the plain numbers in, which keeps this
    library below [core] in the dependency order.  [b_bound] is the
    model-level bound B_DDCR and [b_bound_impl] the implementation
    bound B_impl (the one observed latencies are measured against, per
    the E6 convention: B_impl accounts for the slots the protocol
    actually spends). *)

type bound = {
  b_cls : int;  (** class id *)
  b_name : string;
  b_deadline : int;  (** relative deadline, bit-times *)
  b_bound : float;  (** B_DDCR, bit-times *)
  b_bound_impl : float;  (** B_impl, bit-times *)
}

type entry = {
  e_bound : bound;
  e_observed : int;  (** worst observed access delay, bit-times *)
  e_count : int;  (** completions observed *)
}

val headroom : entry -> float
(** [headroom e] is [e.e_bound.b_bound_impl - float e.e_observed] —
    non-negative iff the run respected its implementation bound. *)

val render : entry list -> string
(** Aligned headroom table: class, deadline, completions, observed
    worst, B_DDCR, B_impl, headroom. *)

val to_json : entry list -> Rtnet_util.Json.t
val of_json : Rtnet_util.Json.t -> (entry list, string) result
