module Json = Rtnet_util.Json

type t = { mutable rev_meta : Json.t list; mutable rev_events : Json.t list }

let create () = { rev_meta = []; rev_events = [] }

let meta t ~pid ~tid ~name ~args =
  t.rev_meta <-
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
    :: t.rev_meta

let set_process_name t ~pid name =
  meta t ~pid ~tid:0 ~name:"process_name" ~args:[ ("name", Json.String name) ]

let set_thread_name t ~pid ~tid name =
  meta t ~pid ~tid ~name:"thread_name" ~args:[ ("name", Json.String name) ]

let event_fields ~pid ~tid ~name ~cat ~ph ~ts more args =
  [
    ("name", Json.String name);
    ("cat", Json.String cat);
    ("ph", Json.String ph);
    ("ts", Json.Int ts);
  ]
  @ more
  @ [ ("pid", Json.Int pid); ("tid", Json.Int tid) ]
  @ (match args with [] -> [] | a -> [ ("args", Json.Obj a) ])

let complete t ~pid ~tid ~name ~cat ~ts ~dur ?(args = []) () =
  t.rev_events <-
    Json.Obj
      (event_fields ~pid ~tid ~name ~cat ~ph:"X" ~ts
         [ ("dur", Json.Int dur) ]
         args)
    :: t.rev_events

let instant t ~pid ~tid ~name ~cat ~ts ?(args = []) () =
  t.rev_events <-
    Json.Obj
      (event_fields ~pid ~tid ~name ~cat ~ph:"i" ~ts
         [ ("s", Json.String "t") ]
         args)
    :: t.rev_events

(* Flow events bind to the enclosing slice on their (pid, tid) track
   at [ts]; Perfetto draws an arrow s -> t* -> f per (cat, id). *)
let flow_phase t ~pid ~tid ~name ~cat ~ts ~id ~ph more =
  t.rev_events <-
    Json.Obj
      (event_fields ~pid ~tid ~name ~cat ~ph ~ts
         (("id", Json.Int id) :: more)
         [])
    :: t.rev_events

let flow_start t ~pid ~tid ~name ~cat ~ts ~id () =
  flow_phase t ~pid ~tid ~name ~cat ~ts ~id ~ph:"s" []

let flow_step t ~pid ~tid ~name ~cat ~ts ~id () =
  flow_phase t ~pid ~tid ~name ~cat ~ts ~id ~ph:"t" []

let flow_end t ~pid ~tid ~name ~cat ~ts ~id () =
  (* ["bp": "e"] binds the arrow head to the enclosing slice rather
     than the next slice on the track. *)
  flow_phase t ~pid ~tid ~name ~cat ~ts ~id ~ph:"f"
    [ ("bp", Json.String "e") ]

let events t = List.length t.rev_meta + List.length t.rev_events

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev t.rev_meta @ List.rev t.rev_events));
      ("displayTimeUnit", Json.String "ns");
    ]

let merge_json traces =
  let events =
    List.concat_map
      (fun j ->
        match Json.member "traceEvents" j with
        | Some (Json.List evts) -> evts
        | Some _ | None -> [])
      traces
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ns");
    ]

(* -------------------- validation -------------------- *)

let ( let* ) = Result.bind

type span = { s_name : string; s_ts : int; s_dur : int; s_headroom : float option }

let decode_span j =
  let* ts = Result.bind (Json.field "ts" j) Json.get_int in
  let* dur = Result.bind (Json.field "dur" j) Json.get_int in
  let* name = Result.bind (Json.field "name" j) Json.get_string in
  let headroom =
    match Json.member "args" j with
    | None -> None
    | Some a -> (
      match Json.member "headroom" a with
      | None -> None
      | Some h -> Result.to_option (Json.get_float h))
  in
  Ok { s_name = name; s_ts = ts; s_dur = dur; s_headroom = headroom }

(* Spans on one track must nest like a call stack: sorted by start
   time (ties: longest first), each span either starts after the
   enclosing span ends or ends no later than it. *)
let check_track ~pid ~tid spans =
  let spans =
    List.sort
      (fun a b ->
        if a.s_ts <> b.s_ts then compare a.s_ts b.s_ts
        else compare b.s_dur a.s_dur)
      spans
  in
  let stack = ref [] in
  List.fold_left
    (fun acc s ->
      let* () = acc in
      let s_end = s.s_ts + s.s_dur in
      let rec pop () =
        match !stack with
        | (p_end, _) :: rest when p_end <= s.s_ts ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      match !stack with
      | (p_end, p_name) :: _ when s_end > p_end ->
        Error
          (Printf.sprintf
             "track (%d,%d): span %S [%d,%d) overlaps %S ending at %d" pid tid
             s.s_name s.s_ts s_end p_name p_end)
      | _ ->
        stack := (s_end, s.s_name) :: !stack;
        Ok ())
    (Ok ()) spans

(* One flow / async event in emission order. *)
type flow_ev = { f_ph : string; f_name : string; f_ts : int }

let decode_flow ~ph ev =
  let* name = Result.bind (Json.field "name" ev) Json.get_string in
  let* ts = Result.bind (Json.field "ts" ev) Json.get_int in
  let* () =
    if ts < 0 then
      Error (Printf.sprintf "flow event %S (ph %S): negative ts %d" name ph ts)
    else Ok ()
  in
  let* _id =
    Result.map_error
      (fun _ ->
        Printf.sprintf "flow event %S (ph %S) at ts=%d: missing integer id"
          name ph ts)
      (Result.bind (Json.field "id" ev) Json.get_int)
  in
  Ok { f_ph = ph; f_name = name; f_ts = ts }

(* A flow chain (one (cat, id)) must read s -> t* -> f in emission
   order with non-decreasing timestamps. *)
let check_flow ~cat ~id evs =
  let describe e = Printf.sprintf "%S (ph %S) at ts=%d" e.f_name e.f_ph e.f_ts in
  let fail e msg =
    Error (Printf.sprintf "flow (%s,%d): %s %s" cat id (describe e) msg)
  in
  let rec go prev = function
    | [] -> (
      match prev with
      | Some e when e.f_ph <> "f" -> fail e "ends an unterminated chain (no \"f\")"
      | _ -> Ok ())
    | e :: rest -> (
      match (prev, e.f_ph) with
      | None, "s" -> go (Some e) rest
      | None, _ -> fail e "opens a chain without a flow start (\"s\")"
      | Some p, _ when e.f_ts < p.f_ts ->
        fail e
          (Printf.sprintf "steps backwards in time (previous ts=%d)" p.f_ts)
      | Some p, ("t" | "f") when p.f_ph <> "f" -> go (Some e) rest
      | Some _, _ -> fail e "is out of order (expected \"t\" or \"f\")")
  in
  go None evs

let validate j =
  let* events = Result.bind (Json.field "traceEvents" j) Json.get_list in
  let tracks : (int * int, span list) Hashtbl.t = Hashtbl.create 16 in
  let flows : (string * int, flow_ev list) Hashtbl.t = Hashtbl.create 16 in
  let* checked =
    List.fold_left
      (fun acc ev ->
        let* n = acc in
        let* ph = Result.bind (Json.field "ph" ev) Json.get_string in
        match ph with
        | "X" ->
          let* pid = Result.bind (Json.field "pid" ev) Json.get_int in
          let* tid = Result.bind (Json.field "tid" ev) Json.get_int in
          let* s = decode_span ev in
          let* () =
            if s.s_ts < 0 || s.s_dur < 0 then
              Error
                (Printf.sprintf "span %S: negative ts/dur (%d, %d)" s.s_name
                   s.s_ts s.s_dur)
            else Ok ()
          in
          let* () =
            match s.s_headroom with
            | Some h when h < 0. ->
              Error
                (Printf.sprintf
                   "span %S at ts=%d: negative headroom %.3f (observed latency \
                    exceeds its feasibility bound)"
                   s.s_name s.s_ts h)
            | _ -> Ok ()
          in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt tracks (pid, tid))
          in
          Hashtbl.replace tracks (pid, tid) (s :: prev);
          Ok (n + 1)
        | "s" | "t" | "f" ->
          let* fe = decode_flow ~ph ev in
          let* cat = Result.bind (Json.field "cat" ev) Json.get_string in
          let* id = Result.bind (Json.field "id" ev) Json.get_int in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt flows (cat, id))
          in
          Hashtbl.replace flows (cat, id) (fe :: prev);
          Ok (n + 1)
        | "b" | "e" | "n" ->
          (* Async events: accept, requiring only a well-formed header
             (name, non-negative ts, integer id). *)
          let* _ = decode_flow ~ph ev in
          Ok (n + 1)
        | _ -> Ok n)
      (Ok 0) events
  in
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) tracks [] |> List.sort compare
  in
  let* () =
    List.fold_left
      (fun acc (pid, tid) ->
        let* () = acc in
        check_track ~pid ~tid (Hashtbl.find tracks (pid, tid)))
      (Ok ()) keys
  in
  let flow_keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) flows [] |> List.sort compare
  in
  let* () =
    List.fold_left
      (fun acc (cat, id) ->
        let* () = acc in
        check_flow ~cat ~id (List.rev (Hashtbl.find flows (cat, id))))
      (Ok ()) flow_keys
  in
  Ok checked
