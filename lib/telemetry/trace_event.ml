module Json = Rtnet_util.Json

type t = { mutable rev_meta : Json.t list; mutable rev_events : Json.t list }

let create () = { rev_meta = []; rev_events = [] }

let meta t ~pid ~tid ~name ~args =
  t.rev_meta <-
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
    :: t.rev_meta

let set_process_name t ~pid name =
  meta t ~pid ~tid:0 ~name:"process_name" ~args:[ ("name", Json.String name) ]

let set_thread_name t ~pid ~tid name =
  meta t ~pid ~tid ~name:"thread_name" ~args:[ ("name", Json.String name) ]

let event_fields ~pid ~tid ~name ~cat ~ph ~ts more args =
  [
    ("name", Json.String name);
    ("cat", Json.String cat);
    ("ph", Json.String ph);
    ("ts", Json.Int ts);
  ]
  @ more
  @ [ ("pid", Json.Int pid); ("tid", Json.Int tid) ]
  @ (match args with [] -> [] | a -> [ ("args", Json.Obj a) ])

let complete t ~pid ~tid ~name ~cat ~ts ~dur ?(args = []) () =
  t.rev_events <-
    Json.Obj
      (event_fields ~pid ~tid ~name ~cat ~ph:"X" ~ts
         [ ("dur", Json.Int dur) ]
         args)
    :: t.rev_events

let instant t ~pid ~tid ~name ~cat ~ts ?(args = []) () =
  t.rev_events <-
    Json.Obj
      (event_fields ~pid ~tid ~name ~cat ~ph:"i" ~ts
         [ ("s", Json.String "t") ]
         args)
    :: t.rev_events

let events t = List.length t.rev_meta + List.length t.rev_events

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev t.rev_meta @ List.rev t.rev_events));
      ("displayTimeUnit", Json.String "ns");
    ]

let merge_json traces =
  let events =
    List.concat_map
      (fun j ->
        match Json.member "traceEvents" j with
        | Some (Json.List evts) -> evts
        | Some _ | None -> [])
      traces
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ns");
    ]

(* -------------------- validation -------------------- *)

let ( let* ) = Result.bind

type span = { s_name : string; s_ts : int; s_dur : int; s_headroom : float option }

let decode_span j =
  let* ts = Result.bind (Json.field "ts" j) Json.get_int in
  let* dur = Result.bind (Json.field "dur" j) Json.get_int in
  let* name = Result.bind (Json.field "name" j) Json.get_string in
  let headroom =
    match Json.member "args" j with
    | None -> None
    | Some a -> (
      match Json.member "headroom" a with
      | None -> None
      | Some h -> Result.to_option (Json.get_float h))
  in
  Ok { s_name = name; s_ts = ts; s_dur = dur; s_headroom = headroom }

(* Spans on one track must nest like a call stack: sorted by start
   time (ties: longest first), each span either starts after the
   enclosing span ends or ends no later than it. *)
let check_track ~pid ~tid spans =
  let spans =
    List.sort
      (fun a b ->
        if a.s_ts <> b.s_ts then compare a.s_ts b.s_ts
        else compare b.s_dur a.s_dur)
      spans
  in
  let stack = ref [] in
  List.fold_left
    (fun acc s ->
      let* () = acc in
      let s_end = s.s_ts + s.s_dur in
      let rec pop () =
        match !stack with
        | (p_end, _) :: rest when p_end <= s.s_ts ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      match !stack with
      | (p_end, p_name) :: _ when s_end > p_end ->
        Error
          (Printf.sprintf
             "track (%d,%d): span %S [%d,%d) overlaps %S ending at %d" pid tid
             s.s_name s.s_ts s_end p_name p_end)
      | _ ->
        stack := (s_end, s.s_name) :: !stack;
        Ok ())
    (Ok ()) spans

let validate j =
  let* events = Result.bind (Json.field "traceEvents" j) Json.get_list in
  let tracks : (int * int, span list) Hashtbl.t = Hashtbl.create 16 in
  let* checked =
    List.fold_left
      (fun acc ev ->
        let* n = acc in
        let* ph = Result.bind (Json.field "ph" ev) Json.get_string in
        if ph <> "X" then Ok n
        else
          let* pid = Result.bind (Json.field "pid" ev) Json.get_int in
          let* tid = Result.bind (Json.field "tid" ev) Json.get_int in
          let* s = decode_span ev in
          let* () =
            if s.s_ts < 0 || s.s_dur < 0 then
              Error
                (Printf.sprintf "span %S: negative ts/dur (%d, %d)" s.s_name
                   s.s_ts s.s_dur)
            else Ok ()
          in
          let* () =
            match s.s_headroom with
            | Some h when h < 0. ->
              Error
                (Printf.sprintf
                   "span %S at ts=%d: negative headroom %.3f (observed latency \
                    exceeds its feasibility bound)"
                   s.s_name s.s_ts h)
            | _ -> Ok ()
          in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt tracks (pid, tid))
          in
          Hashtbl.replace tracks (pid, tid) (s :: prev);
          Ok (n + 1))
      (Ok 0) events
  in
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) tracks [] |> List.sort compare
  in
  let* () =
    List.fold_left
      (fun acc (pid, tid) ->
        let* () = acc in
        check_track ~pid ~tid (Hashtbl.find tracks (pid, tid)))
      (Ok ()) keys
  in
  Ok checked
