(** Chrome trace-event JSON builder and validator (Perfetto-loadable).

    Events follow the Trace Event Format: complete spans (["ph": "X"]
    with [ts]/[dur]), instants (["ph": "i"]) and metadata (["ph": "M"]
    process/thread names).  Timestamps are integer microsecond ticks;
    the simulator maps one bit-time to one tick, so traces are
    deterministic byte-for-byte and load directly into
    {{:https://ui.perfetto.dev}Perfetto}. *)

type t
(** An append-only event buffer. *)

val create : unit -> t

val set_process_name : t -> pid:int -> string -> unit
val set_thread_name : t -> pid:int -> tid:int -> string -> unit

val complete :
  t ->
  pid:int ->
  tid:int ->
  name:string ->
  cat:string ->
  ts:int ->
  dur:int ->
  ?args:(string * Rtnet_util.Json.t) list ->
  unit ->
  unit
(** [complete t ~pid ~tid ~name ~cat ~ts ~dur ()] appends a span
    covering [\[ts, ts + dur)] on track [(pid, tid)]. *)

val instant :
  t ->
  pid:int ->
  tid:int ->
  name:string ->
  cat:string ->
  ts:int ->
  ?args:(string * Rtnet_util.Json.t) list ->
  unit ->
  unit

val events : t -> int
(** Number of buffered events (metadata included). *)

val to_json : t -> Rtnet_util.Json.t
(** [to_json t] is [{"traceEvents": [...], "displayTimeUnit": "ns"}]
    with events in emission order (metadata first). *)

val merge_json : Rtnet_util.Json.t list -> Rtnet_util.Json.t
(** [merge_json traces] concatenates the [traceEvents] of several
    trace JSONs (in list order) into one trace — used to combine the
    per-segment recorders of a multi-hop topology run into a single
    timeline.  Callers must ensure the constituents use disjoint pids
    (see {!Recorder.create}); inputs without a [traceEvents] list
    contribute nothing. *)

val validate : Rtnet_util.Json.t -> (int, string) result
(** [validate j] checks that [j] is a well-formed trace: the
    [traceEvents] list exists, every ["X"] span has non-negative
    integer [ts]/[dur], spans on each [(pid, tid)] track nest properly
    (no partial overlap), and no span carries a negative
    [args.headroom].  Returns the number of spans checked. *)
