(** Chrome trace-event JSON builder and validator (Perfetto-loadable).

    Events follow the Trace Event Format: complete spans (["ph": "X"]
    with [ts]/[dur]), instants (["ph": "i"]) and metadata (["ph": "M"]
    process/thread names).  Timestamps are integer microsecond ticks;
    the simulator maps one bit-time to one tick, so traces are
    deterministic byte-for-byte and load directly into
    {{:https://ui.perfetto.dev}Perfetto}. *)

type t
(** An append-only event buffer. *)

val create : unit -> t

val set_process_name : t -> pid:int -> string -> unit
val set_thread_name : t -> pid:int -> tid:int -> string -> unit

val complete :
  t ->
  pid:int ->
  tid:int ->
  name:string ->
  cat:string ->
  ts:int ->
  dur:int ->
  ?args:(string * Rtnet_util.Json.t) list ->
  unit ->
  unit
(** [complete t ~pid ~tid ~name ~cat ~ts ~dur ()] appends a span
    covering [\[ts, ts + dur)] on track [(pid, tid)]. *)

val instant :
  t ->
  pid:int ->
  tid:int ->
  name:string ->
  cat:string ->
  ts:int ->
  ?args:(string * Rtnet_util.Json.t) list ->
  unit ->
  unit

val flow_start :
  t -> pid:int -> tid:int -> name:string -> cat:string -> ts:int -> id:int ->
  unit -> unit
(** [flow_start t ~pid ~tid ~name ~cat ~ts ~id ()] opens flow chain
    [(cat, id)] (["ph": "s"]), binding the arrow tail to the slice
    enclosing [ts] on track [(pid, tid)].  Used to stitch a message's
    per-hop frame spans across segments into one causal chain. *)

val flow_step :
  t -> pid:int -> tid:int -> name:string -> cat:string -> ts:int -> id:int ->
  unit -> unit
(** Intermediate hop on an open flow chain (["ph": "t"]). *)

val flow_end :
  t -> pid:int -> tid:int -> name:string -> cat:string -> ts:int -> id:int ->
  unit -> unit
(** Terminates flow chain [(cat, id)] (["ph": "f"], ["bp": "e"] so the
    arrow head binds to the enclosing slice). *)

val events : t -> int
(** Number of buffered events (metadata included). *)

val to_json : t -> Rtnet_util.Json.t
(** [to_json t] is [{"traceEvents": [...], "displayTimeUnit": "ns"}]
    with events in emission order (metadata first). *)

val merge_json : Rtnet_util.Json.t list -> Rtnet_util.Json.t
(** [merge_json traces] concatenates the [traceEvents] of several
    trace JSONs (in list order) into one trace — used to combine the
    per-segment recorders of a multi-hop topology run into a single
    timeline.  Callers must ensure the constituents use disjoint pids
    (see {!Recorder.create}); inputs without a [traceEvents] list
    contribute nothing. *)

val validate : Rtnet_util.Json.t -> (int, string) result
(** [validate j] checks that [j] is a well-formed trace: the
    [traceEvents] list exists, every ["X"] span has non-negative
    integer [ts]/[dur], spans on each [(pid, tid)] track nest properly
    (no partial overlap), no span carries a negative [args.headroom],
    every flow event (["s"]/["t"]/["f"]) carries an integer [id] and a
    non-negative [ts], each flow chain [(cat, id)] reads
    [s -> t* -> f] with non-decreasing timestamps, and async events
    (["b"]/["e"]/["n"]) have well-formed headers.  Returns the number
    of events checked (spans + flow + async). *)
