(** Probe sink: the typed callback surface the whole stack emits into.

    Instrumented layers ({!Rtnet_sim.Engine}, {!Rtnet_mac.Harness},
    [Rtnet_core.Ddcr], [Rtnet_campaign.Pool]) take a [Sink.t] and call
    its fields at well-defined probe points.  The default is {!null},
    whose [enabled] flag is [false]: every emit site guards with
    [if sink.enabled then ...], so a disabled sink costs one boolean
    load per probe point — no closure call, no allocation.

    The sink deliberately depends only on the vocabulary layers
    (channel, workload): it never sees protocol internals, so [mac]
    and [core] can both emit into it without a dependency cycle. *)

type tree = Time_tree | Static_tree
(** Which tree-search phase a {!t.search} span describes: the dynamic
    time tree (TTs) or the static source tree (STs). *)

type t = {
  enabled : bool;
      (** [false] for {!null}; emit sites skip every callback. *)
  slot :
    now:int ->
    next_free:int ->
    resolution:Rtnet_channel.Channel.resolution ->
    unit;
      (** One channel slot resolved at virtual time [now]; the channel
          is busy until [next_free]. *)
  enqueue : now:int -> msg:Rtnet_workload.Message.t -> unit;
      (** [msg] entered a source's pending queue at slot time [now]. *)
  complete : msg:Rtnet_workload.Message.t -> start:int -> finish:int -> unit;
      (** [msg]'s frame occupied the wire over [\[start, finish)]. *)
  drop : msg:Rtnet_workload.Message.t -> unit;
      (** [msg] was dropped (deadline passed before service). *)
  search : tree:tree -> start:int -> finish:int -> sent:bool -> unit;
      (** A tree search ran over [\[start, finish)] and did ([sent]) or
          did not resolve into a transmission. *)
  jump : now:int -> reft_from:int -> reft_to:int -> unit;
      (** Compressed-time jump: the reference time advanced from
          [reft_from] to [reft_to] at [now] without consuming slots. *)
  epoch : start:int -> finish:int -> unit;
      (** A fault epoch (injected perturbation window) covered
          [\[start, finish)]. *)
  engine_event : time:int -> unit;
      (** The discrete-event engine dispatched one event at [time]. *)
  worker_cell :
    worker:int -> key:string -> t0:float -> t1:float -> ok:bool -> unit;
      (** Campaign worker [worker] ran cell [key] over wall-clock
          [\[t0, t1\]] (Unix epoch seconds); [ok] is false if the cell
          raised. *)
  service : component:string -> degraded:bool -> backlog:int -> unit;
      (** Long-running service [component] crossed a load watermark:
          [degraded = true] when backpressure engages (Degraded),
          [false] when it releases (Restored); [backlog] is the queue
          depth at the transition. *)
}

val null : t
(** The no-op sink; [enabled = false]. *)

val tee : t -> t -> t
(** [tee a b] fans every probe out to both sinks, in order [a] then
    [b].  Disabled operands are elided: [tee a null] is [a], and
    [tee null null] is {!null}, so the one-boolean-load-when-off
    discipline is preserved when both halves are off. *)

val create :
  ?slot:
    (now:int ->
    next_free:int ->
    resolution:Rtnet_channel.Channel.resolution ->
    unit) ->
  ?enqueue:(now:int -> msg:Rtnet_workload.Message.t -> unit) ->
  ?complete:(msg:Rtnet_workload.Message.t -> start:int -> finish:int -> unit) ->
  ?drop:(msg:Rtnet_workload.Message.t -> unit) ->
  ?search:(tree:tree -> start:int -> finish:int -> sent:bool -> unit) ->
  ?jump:(now:int -> reft_from:int -> reft_to:int -> unit) ->
  ?epoch:(start:int -> finish:int -> unit) ->
  ?engine_event:(time:int -> unit) ->
  ?worker_cell:
    (worker:int -> key:string -> t0:float -> t1:float -> ok:bool -> unit) ->
  ?service:(component:string -> degraded:bool -> backlog:int -> unit) ->
  unit ->
  t
(** [create ()] is an enabled sink whose unspecified callbacks are
    no-ops. *)
