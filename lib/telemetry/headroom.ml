module Json = Rtnet_util.Json
module Table = Rtnet_util.Table

type bound = {
  b_cls : int;
  b_name : string;
  b_deadline : int;
  b_bound : float;
  b_bound_impl : float;
}

type entry = { e_bound : bound; e_observed : int; e_count : int }

let headroom e = e.e_bound.b_bound_impl -. float_of_int e.e_observed

let render entries =
  let tbl =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right ]
      [ "cls"; "name"; "deadline"; "done"; "worst"; "B_impl"; "headroom" ]
  in
  List.iter
    (fun e ->
      Table.add_row tbl
        [
          string_of_int e.e_bound.b_cls;
          e.e_bound.b_name;
          string_of_int e.e_bound.b_deadline;
          string_of_int e.e_count;
          string_of_int e.e_observed;
          Printf.sprintf "%.0f" e.e_bound.b_bound_impl;
          Printf.sprintf "%.0f" (headroom e);
        ])
    entries;
  Table.render tbl

let entry_to_json e =
  Json.Obj
    [
      ("cls", Json.Int e.e_bound.b_cls);
      ("name", Json.String e.e_bound.b_name);
      ("deadline", Json.Int e.e_bound.b_deadline);
      ("bound", Json.Float e.e_bound.b_bound);
      ("bound_impl", Json.Float e.e_bound.b_bound_impl);
      ("observed", Json.Int e.e_observed);
      ("count", Json.Int e.e_count);
    ]

let to_json entries = Json.List (List.map entry_to_json entries)

let ( let* ) = Result.bind

let entry_of_json j =
  let* cls = Result.bind (Json.field "cls" j) Json.get_int in
  let* name = Result.bind (Json.field "name" j) Json.get_string in
  let* deadline = Result.bind (Json.field "deadline" j) Json.get_int in
  let* bound = Result.bind (Json.field "bound" j) Json.get_float in
  let* bound_impl = Result.bind (Json.field "bound_impl" j) Json.get_float in
  let* observed = Result.bind (Json.field "observed" j) Json.get_int in
  let* count = Result.bind (Json.field "count" j) Json.get_int in
  Ok
    {
      e_bound =
        {
          b_cls = cls;
          b_name = name;
          b_deadline = deadline;
          b_bound = bound;
          b_bound_impl = bound_impl;
        };
      e_observed = observed;
      e_count = count;
    }

let of_json j =
  let* l = Json.get_list j in
  List.fold_left
    (fun acc e ->
      let* acc = acc in
      let* e = entry_of_json e in
      Ok (e :: acc))
    (Ok []) l
  |> Result.map List.rev
