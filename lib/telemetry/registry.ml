module Json = Rtnet_util.Json
module Table = Rtnet_util.Table
module Summary = Rtnet_stats.Summary

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Summary.Histogram.h) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n

let gauge t name init =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
    let r = ref init in
    Hashtbl.add t.gauges name r;
    r

let set_gauge t name v = gauge t name v := v

let max_gauge t name v =
  let r = gauge t name v in
  if v > !r then r := v

let add_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add t.gauges name (ref v)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Summary.Histogram.create_log2 () in
    Hashtbl.add t.histograms name h;
    h

let observe t name v = Summary.Histogram.add (histogram t name) v

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_value t name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * (int * int) list) list;
}

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sparse_counts h =
  let counts = Summary.Histogram.counts h in
  let pairs = ref [] in
  for i = Array.length counts - 1 downto 0 do
    if counts.(i) > 0 then pairs := (i, counts.(i)) :: !pairs
  done;
  !pairs

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters ( ! );
    gauges = sorted_bindings t.gauges ( ! );
    histograms = sorted_bindings t.histograms sparse_counts;
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, pairs) ->
               ( k,
                 Json.List
                   (List.map
                      (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
                      pairs) ))
             s.histograms) );
    ]

let ( let* ) = Result.bind

let decode_obj_fields j decode =
  let* fields = Json.get_obj j in
  List.fold_left
    (fun acc (k, v) ->
      let* acc = acc in
      let* v = decode v in
      Ok ((k, v) :: acc))
    (Ok []) fields
  |> Result.map List.rev

let decode_pair j =
  let* l = Json.get_list j in
  match l with
  | [ b; c ] ->
    let* b = Json.get_int b in
    let* c = Json.get_int c in
    Ok (b, c)
  | _ -> Error "histogram bucket: expected [bucket, count]"

let snapshot_of_json j =
  let* counters = Json.field "counters" j in
  let* counters = decode_obj_fields counters Json.get_int in
  let* gauges = Json.field "gauges" j in
  let* gauges = decode_obj_fields gauges Json.get_float in
  let* histograms = Json.field "histograms" j in
  let* histograms =
    decode_obj_fields histograms (fun v ->
        let* l = Json.get_list v in
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* p = decode_pair p in
            Ok (p :: acc))
          (Ok []) l
        |> Result.map List.rev)
  in
  Ok { counters; gauges; histograms }

let render s =
  let buf = Buffer.create 512 in
  if s.counters <> [] then begin
    let tbl = Table.create ~aligns:[ Table.Left; Table.Right ]
        [ "counter"; "value" ] in
    List.iter (fun (k, v) -> Table.add_row tbl [ k; string_of_int v ]) s.counters;
    Buffer.add_string buf (Table.render tbl)
  end;
  if s.gauges <> [] then begin
    let tbl = Table.create ~aligns:[ Table.Left; Table.Right ]
        [ "gauge"; "value" ] in
    List.iter
      (fun (k, v) -> Table.add_row tbl [ k; Printf.sprintf "%.3f" v ])
      s.gauges;
    Buffer.add_string buf (Table.render tbl)
  end;
  List.iter
    (fun (name, pairs) ->
      Buffer.add_string buf (Printf.sprintf "histogram %s (log2 buckets):\n" name);
      List.iter
        (fun (b, c) ->
          let lo = if b = 0 then 0 else 1 lsl b in
          let hi = (1 lsl (b + 1)) - 1 in
          Buffer.add_string buf (Printf.sprintf "%12d..%-12d %d\n" lo hi c))
        pairs)
    s.histograms;
  Buffer.contents buf
