(** The standard sink implementation: feeds every probe into a
    {!Registry}, a {!Trace_event} buffer and a per-class worst-case
    table, from which the headroom report derives.

    Track layout of the exported trace:
    - pid 0 ["virtual time (bit-times)"] — tid 1 channel slots
      (idle/collision/garbled), tid 2 tree searches, tid 3 fault
      epochs, tid [10 + s] frames of source [s];
    - pid 1 ["campaign (wall clock)"] — one tid per worker, one span
      per cell.

    Virtual-time timestamps are bit-times emitted as microsecond
    ticks; wall-clock timestamps are microseconds since [wall0]. *)

type t

val create :
  ?bounds:Headroom.bound list ->
  ?wall0:float ->
  ?pid:int ->
  ?process_name:string ->
  unit ->
  t
(** [create ()] is a fresh recorder.  [bounds] enables per-class
    headroom gauges and trace [args.headroom] annotations (see
    {!Headroom}).  [wall0] anchors the wall-clock track; it defaults
    to the first worker event's start time.  [pid] (default 0) and
    [process_name] relabel the virtual-time process track — a
    multi-segment topology run gives each segment its own recorder
    with a distinct pid ([2·i], keeping [pid + 1] free for the
    wall-clock track) and merges the traces into one timeline with
    one Perfetto process per segment
    ({!Trace_event.merge_json}). *)

val sink : t -> Sink.t

val registry : t -> Registry.t

val snapshot : t -> Registry.snapshot

val headroom_table : t -> Headroom.entry list
(** One entry per bound given at {!create}, in class-id order, with
    the observed worst access delay and completion count. *)

val trace_json : t -> Rtnet_util.Json.t
(** The Chrome trace-event JSON accumulated so far. *)
