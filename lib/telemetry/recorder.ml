module Json = Rtnet_util.Json
module Channel = Rtnet_channel.Channel
module Message = Rtnet_workload.Message

let pid_virtual = 0
let tid_channel = 1
let tid_search = 2
let tid_faults = 3
let tid_source s = 10 + s

type t = {
  reg : Registry.t;
  trace : Trace_event.t;
  bounds : (int, Headroom.bound) Hashtbl.t;
  worst : (int, int * int) Hashtbl.t;  (** cls id -> (worst, count) *)
  named : (int * int, unit) Hashtbl.t;
  procs : (int, unit) Hashtbl.t;
  pid0 : int;  (** pid of the virtual-time process track *)
  plabel : string;  (** its Perfetto process name *)
  mutable wall0 : float option;
  mutable sink : Sink.t;
}

let ensure_process t ~pid name =
  if not (Hashtbl.mem t.procs pid) then begin
    Hashtbl.add t.procs pid ();
    Trace_event.set_process_name t.trace ~pid name
  end

let ensure_thread t ~pid ~tid name =
  if not (Hashtbl.mem t.named (pid, tid)) then begin
    Hashtbl.add t.named (pid, tid) ();
    (if pid = t.pid0 then ensure_process t ~pid t.plabel
     else ensure_process t ~pid "campaign (wall clock)");
    Trace_event.set_thread_name t.trace ~pid ~tid name
  end

let virtual_span t ~tid ~track_name ~name ~cat ~ts ~dur args =
  ensure_thread t ~pid:t.pid0 ~tid track_name;
  Trace_event.complete t.trace ~pid:t.pid0 ~tid ~name ~cat ~ts ~dur ~args ()

let on_slot t ~now ~next_free ~resolution =
  let dur = next_free - now in
  let span name args =
    virtual_span t ~tid:tid_channel ~track_name:"channel" ~name ~cat:"slot"
      ~ts:now ~dur args
  in
  match (resolution : Channel.resolution) with
  | Channel.Idle ->
    Registry.incr t.reg "slots/idle";
    span "idle" []
  | Channel.Tx _ ->
    (* The frame span on the source track (via [complete]) already
       shows the transmission. *)
    Registry.incr t.reg "slots/tx"
  | Channel.Garbled _ ->
    Registry.incr t.reg "slots/garbled";
    span "garbled" []
  | Channel.Clash { contenders; survivor } ->
    Registry.incr t.reg "slots/collision";
    if survivor <> None then Registry.incr t.reg "slots/collision_arbitrated";
    span "collision" [ ("contenders", Json.Int (List.length contenders)) ]

let on_enqueue t ~now ~msg =
  Registry.incr t.reg "queue/enqueued";
  let s = msg.Message.cls.Message.cls_source in
  ensure_thread t ~pid:t.pid0 ~tid:(tid_source s)
    (Printf.sprintf "source %d" s);
  Trace_event.instant t.trace ~pid:t.pid0 ~tid:(tid_source s)
    ~name:"enqueue" ~cat:"queue" ~ts:now
    ~args:
      [
        ("uid", Json.Int msg.Message.uid);
        ("cls", Json.String msg.Message.cls.Message.cls_name);
      ]
    ()

let on_complete t ~msg ~start ~finish =
  Registry.incr t.reg "frames/completed";
  let cls = msg.Message.cls in
  let latency = finish - msg.Message.arrival in
  Registry.observe t.reg ("access_delay/" ^ cls.Message.cls_name) latency;
  let worst, count =
    match Hashtbl.find_opt t.worst cls.Message.cls_id with
    | Some (w, c) -> (max w latency, c + 1)
    | None -> (latency, 1)
  in
  Hashtbl.replace t.worst cls.Message.cls_id (worst, count);
  let headroom_arg =
    match Hashtbl.find_opt t.bounds cls.Message.cls_id with
    | None -> []
    | Some b ->
      Registry.set_gauge t.reg
        ("headroom/" ^ cls.Message.cls_name)
        (b.Headroom.b_bound_impl -. float_of_int worst);
      [ ("headroom", Json.Float (b.Headroom.b_bound_impl -. float_of_int latency)) ]
  in
  let s = cls.Message.cls_source in
  virtual_span t ~tid:(tid_source s)
    ~track_name:(Printf.sprintf "source %d" s)
    ~name:cls.Message.cls_name ~cat:"frame" ~ts:start ~dur:(finish - start)
    ([
       ("uid", Json.Int msg.Message.uid);
       ("latency", Json.Int latency);
     ]
    @ headroom_arg)

let on_drop t ~msg =
  ignore msg;
  Registry.incr t.reg "queue/dropped"

let on_search t ~tree ~start ~finish ~sent =
  let name, key =
    match (tree : Sink.tree) with
    | Sink.Time_tree -> ("TTs", "tts")
    | Sink.Static_tree -> ("STs", "sts")
  in
  Registry.incr t.reg ("search/" ^ key);
  Registry.observe t.reg ("search_bits/" ^ key) (finish - start);
  virtual_span t ~tid:tid_search ~track_name:"searches" ~name ~cat:"search"
    ~ts:start ~dur:(finish - start)
    [ ("sent", Json.Bool sent) ]

let on_jump t ~now ~reft_from ~reft_to =
  Registry.incr t.reg "reft/jumps";
  Registry.add t.reg "reft/compressed_bits" (reft_to - reft_from);
  ensure_thread t ~pid:t.pid0 ~tid:tid_search "searches";
  Trace_event.instant t.trace ~pid:t.pid0 ~tid:tid_search
    ~name:"reft jump" ~cat:"search" ~ts:now
    ~args:[ ("from", Json.Int reft_from); ("to", Json.Int reft_to) ]
    ()

let on_epoch t ~start ~finish =
  Registry.incr t.reg "faults/epochs";
  (* Total degraded bit-time: the denominator chaos-run reports use to
     distinguish "missed inside an epoch" (degradation) from a real
     timeliness violation. *)
  Registry.add t.reg "faults/epoch_bits" (finish - start);
  Registry.observe t.reg "faults/epoch_len_bits" (finish - start);
  virtual_span t ~tid:tid_faults ~track_name:"faults" ~name:"fault epoch"
    ~cat:"fault" ~ts:start ~dur:(finish - start)
    [ ("start", Json.Int start); ("finish", Json.Int finish) ]

let on_engine_event t ~time =
  ignore time;
  Registry.incr t.reg "engine/events"

let us_of_s s = int_of_float (Float.round (s *. 1e6))

let on_worker_cell t ~worker ~key ~t0 ~t1 ~ok =
  let wall0 =
    match t.wall0 with
    | Some w -> w
    | None ->
      t.wall0 <- Some t0;
      t0
  in
  Registry.incr t.reg "campaign/cells";
  if not ok then Registry.incr t.reg "campaign/cells_failed";
  Registry.add_gauge t.reg
    (Printf.sprintf "campaign/worker%d/busy_s" worker)
    (t1 -. t0);
  ensure_thread t ~pid:(t.pid0 + 1) ~tid:worker
    (Printf.sprintf "worker %d" worker);
  Trace_event.complete t.trace ~pid:(t.pid0 + 1) ~tid:worker ~name:key
    ~cat:"cell"
    ~ts:(max 0 (us_of_s (t0 -. wall0)))
    ~dur:(max 0 (us_of_s (t1 -. t0)))
    ~args:[ ("ok", Json.Bool ok) ]
    ()

let create ?(bounds = []) ?wall0 ?(pid = pid_virtual)
    ?(process_name = "virtual time (bit-times)") () =
  let t =
    {
      reg = Registry.create ();
      trace = Trace_event.create ();
      bounds = Hashtbl.create 8;
      worst = Hashtbl.create 8;
      named = Hashtbl.create 8;
      procs = Hashtbl.create 4;
      pid0 = pid;
      plabel = process_name;
      wall0;
      sink = Sink.null;
    }
  in
  List.iter (fun b -> Hashtbl.replace t.bounds b.Headroom.b_cls b) bounds;
  t.sink <-
    Sink.create
      ~slot:(fun ~now ~next_free ~resolution ->
        on_slot t ~now ~next_free ~resolution)
      ~enqueue:(fun ~now ~msg -> on_enqueue t ~now ~msg)
      ~complete:(fun ~msg ~start ~finish -> on_complete t ~msg ~start ~finish)
      ~drop:(fun ~msg -> on_drop t ~msg)
      ~search:(fun ~tree ~start ~finish ~sent ->
        on_search t ~tree ~start ~finish ~sent)
      ~jump:(fun ~now ~reft_from ~reft_to -> on_jump t ~now ~reft_from ~reft_to)
      ~epoch:(fun ~start ~finish -> on_epoch t ~start ~finish)
      ~engine_event:(fun ~time -> on_engine_event t ~time)
      ~worker_cell:(fun ~worker ~key ~t0 ~t1 ~ok ->
        on_worker_cell t ~worker ~key ~t0 ~t1 ~ok)
      ();
  t

let sink t = t.sink
let registry t = t.reg
let snapshot t = Registry.snapshot t.reg

let headroom_table t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.bounds []
  |> List.sort (fun a b -> compare a.Headroom.b_cls b.Headroom.b_cls)
  |> List.map (fun b ->
         let observed, count =
           Option.value ~default:(0, 0)
             (Hashtbl.find_opt t.worst b.Headroom.b_cls)
         in
         { Headroom.e_bound = b; e_observed = observed; e_count = count })

let trace_json t = Trace_event.to_json t.trace
