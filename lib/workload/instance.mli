(** A quantified instantiation of the HRTDM problem.

    Bundles the medium, the number of sources [z], the message set
    [MSG] with its source mapping, and an arrival law per class — i.e.
    everything [<m.HRTDM>] leaves to the end user.  Feasibility
    conditions (Section 4.3) and simulations are both computed from a
    value of this type. *)

type t = private {
  name : string;  (** instance label *)
  phy : Rtnet_channel.Phy.t;  (** broadcast medium *)
  num_sources : int;  (** [z] *)
  classes : (Message.cls * Arrival.law) array;  (** [MSG] with laws *)
}

val create :
  name:string ->
  phy:Rtnet_channel.Phy.t ->
  num_sources:int ->
  (Message.cls * Arrival.law) list ->
  (t, string) result
(** [create ~name ~phy ~num_sources classes] validates and builds an
    instance: classes must be non-empty with unique ids, every class's
    source must lie in [\[0, num_sources)], and every class must pass
    {!Message.cls_validate}. *)

val create_exn :
  name:string ->
  phy:Rtnet_channel.Phy.t ->
  num_sources:int ->
  (Message.cls * Arrival.law) list ->
  t
(** [create_exn] is {!create} but raises [Invalid_argument] on
    rejection — for statically known instances. *)

val classes : t -> Message.cls list
(** [classes inst] is [MSG], in id order. *)

val classes_of_source : t -> int -> Message.cls list
(** [classes_of_source inst i] is [MSG_i], the subset mapped onto
    source [i]. *)

val trace : t -> seed:int -> horizon:int -> Message.t list
(** [trace inst ~seed ~horizon] generates one deterministic arrival
    trace over [\[0, horizon)] from the per-class laws. *)

val peak_utilization : t -> float
(** [peak_utilization inst] is the worst-case offered load
    [Σ a(m)·l'(m) / w(m)] as a fraction of channel capacity — above 1.0
    no protocol can be feasible. *)

val with_law : t -> Arrival.law -> t
(** [with_law inst law] replaces every class's arrival law (e.g. to
    re-run the same instance under the greedy adversary). *)

val scale_deadlines : t -> float -> t
(** [scale_deadlines inst k] multiplies every relative deadline by [k]
    (rounded, min 1) — used for feasibility sweeps. *)

val scale_windows : t -> float -> t
(** [scale_windows inst k] multiplies every window [w] by [k] (rounded,
    min 1): [k < 1] increases offered load, [k > 1] decreases it. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt inst] prints a multi-line instance summary. *)
