module Phy = Rtnet_channel.Phy

module Prng = Rtnet_util.Prng

type t = {
  name : string;
  phy : Phy.t;
  num_sources : int;
  classes : (Message.cls * Arrival.law) array;
}

let create ~name ~phy ~num_sources classes =
  if classes = [] then Error "instance has no message class"
  else if num_sources < 1 then Error "instance needs at least one source"
  else begin
    let ids = List.map (fun (c, _) -> c.Message.cls_id) classes in
    let sorted = List.sort_uniq compare ids in
    if List.length sorted <> List.length ids then
      Error "duplicate class ids"
    else begin
      let check (c, _) =
        match Message.cls_validate c with
        | Error e -> Some (Printf.sprintf "class %d: %s" c.Message.cls_id e)
        | Ok () ->
          if c.Message.cls_source >= num_sources then
            Some
              (Printf.sprintf "class %d mapped to unknown source %d"
                 c.Message.cls_id c.Message.cls_source)
          else None
      in
      match List.filter_map check classes with
      | e :: _ -> Error e
      | [] ->
        let arr = Array.of_list classes in
        Array.sort
          (fun (c1, _) (c2, _) -> compare c1.Message.cls_id c2.Message.cls_id)
          arr;
        Ok { name; phy; num_sources; classes = arr }
    end
  end

let create_exn ~name ~phy ~num_sources classes =
  match create ~name ~phy ~num_sources classes with
  | Ok t -> t
  | Error e -> invalid_arg ("Instance.create_exn: " ^ e)

let classes inst = Array.to_list (Array.map fst inst.classes)

let classes_of_source inst i =
  List.filter (fun c -> c.Message.cls_source = i) (classes inst)

let trace inst ~seed ~horizon =
  let rng = Prng.create seed in
  Arrival.to_trace rng (Array.to_list inst.classes) ~horizon

let peak_utilization inst =
  Array.fold_left
    (fun acc (c, _) ->
      acc
      +. float_of_int (c.Message.cls_burst * Phy.tx_bits inst.phy c.Message.cls_bits)
         /. float_of_int c.Message.cls_window)
    0. inst.classes

let with_law inst law =
  { inst with classes = Array.map (fun (c, _) -> (c, law)) inst.classes }

let scale_int v k = max 1 (int_of_float (Float.round (float_of_int v *. k)))

let scale_deadlines inst k =
  {
    inst with
    classes =
      Array.map
        (fun (c, law) ->
          ({ c with Message.cls_deadline = scale_int c.Message.cls_deadline k }, law))
        inst.classes;
  }

let scale_windows inst k =
  {
    inst with
    classes =
      Array.map
        (fun (c, law) ->
          ({ c with Message.cls_window = scale_int c.Message.cls_window k }, law))
        inst.classes;
  }

let pp fmt inst =
  Format.fprintf fmt "@[<v>instance %s: %d sources on %a, peak load %.3f@,"
    inst.name inst.num_sources Phy.pp inst.phy (peak_utilization inst);
  Array.iter
    (fun (c, law) ->
      Format.fprintf fmt "  %a under %a@," Message.pp_cls c Arrival.pp_law law)
    inst.classes;
  Format.fprintf fmt "@]"
