type cls = {
  cls_id : int;
  cls_name : string;
  cls_source : int;
  cls_bits : int;
  cls_deadline : int;
  cls_burst : int;
  cls_window : int;
}

let cls_validate c =
  if c.cls_bits <= 0 then Error "class bit length must be positive"
  else if c.cls_deadline <= 0 then Error "class deadline must be positive"
  else if c.cls_burst < 1 then Error "class burst a must be >= 1"
  else if c.cls_window <= 0 then Error "class window w must be positive"
  else if c.cls_source < 0 then Error "class source must be >= 0"
  else Ok ()

let pp_cls fmt c =
  Format.fprintf fmt "%s(id=%d src=%d l=%db d=%d a/w=%d/%d)" c.cls_name
    c.cls_id c.cls_source c.cls_bits c.cls_deadline c.cls_burst c.cls_window

type t = { uid : int; cls : cls; arrival : int }

let abs_deadline m = m.arrival + m.cls.cls_deadline

let compare_edf a b =
  let by_dm = compare (abs_deadline a) (abs_deadline b) in
  if by_dm <> 0 then by_dm
  else
    let by_arrival = compare a.arrival b.arrival in
    if by_arrival <> 0 then by_arrival else compare a.uid b.uid

let pp fmt m =
  Format.fprintf fmt "msg#%d[%s T=%d DM=%d]" m.uid m.cls.cls_name m.arrival
    (abs_deadline m)
