module Phy = Rtnet_channel.Phy

(* Time helpers: the Gigabit media run at 1 ns per bit-time. *)
let us = 1_000
let ms = 1_000_000

let cls ~id ~name ~source ~bits ~deadline ~burst ~window =
  {
    Message.cls_id = id;
    cls_name = name;
    cls_source = source;
    cls_bits = bits;
    cls_deadline = deadline;
    cls_burst = burst;
    cls_window = window;
  }

let videoconference ~stations =
  if stations < 1 then invalid_arg "Scenarios.videoconference";
  let per_station s =
    [
      ( cls ~id:(3 * s) ~name:(Printf.sprintf "video%d" s) ~source:s
          ~bits:12_000 ~deadline:(10 * ms) ~burst:1 ~window:(33 * ms),
        Arrival.Periodic { offset = s * 100 * us } );
      ( cls ~id:((3 * s) + 1) ~name:(Printf.sprintf "audio%d" s) ~source:s
          ~bits:1_600 ~deadline:(5 * ms) ~burst:1 ~window:(20 * ms),
        Arrival.Periodic { offset = s * 50 * us } );
      ( cls ~id:((3 * s) + 2) ~name:(Printf.sprintf "ctl%d" s) ~source:s
          ~bits:800 ~deadline:(50 * ms) ~burst:2 ~window:(100 * ms),
        Arrival.Sporadic { mean_slack = 1.0 } );
    ]
  in
  Instance.create_exn ~name:"videoconference" ~phy:Phy.gigabit_ethernet
    ~num_sources:stations
    (List.concat_map per_station (List.init stations Fun.id))

let air_traffic_control ~radars =
  if radars < 1 then invalid_arg "Scenarios.air_traffic_control";
  let per_radar r =
    [
      ( cls ~id:(2 * r) ~name:(Printf.sprintf "track%d" r) ~source:r
          ~bits:6_400 ~deadline:(20 * ms) ~burst:2 ~window:(50 * ms),
        Arrival.Sporadic { mean_slack = 0.5 } );
      ( cls ~id:((2 * r) + 1) ~name:(Printf.sprintf "alert%d" r) ~source:r
          ~bits:1_200 ~deadline:(5 * ms) ~burst:1 ~window:(100 * ms),
        Arrival.Poisson { intensity = 0.3 } );
    ]
  in
  let coordination =
    ( cls ~id:(2 * radars) ~name:"situation" ~source:0 ~bits:16_000
        ~deadline:(40 * ms) ~burst:1 ~window:(100 * ms),
      Arrival.Periodic { offset = 0 } )
  in
  Instance.create_exn ~name:"air-traffic-control" ~phy:Phy.gigabit_ethernet
    ~num_sources:radars
    (coordination :: List.concat_map per_radar (List.init radars Fun.id))

let trading ~gateways =
  if gateways < 1 then invalid_arg "Scenarios.trading";
  let per_gateway g =
    [
      ( cls ~id:(2 * g) ~name:(Printf.sprintf "orders%d" g) ~source:g
          ~bits:4_000 ~deadline:(500 * us) ~burst:20 ~window:ms,
        Arrival.Staggered_burst
          { phase = float_of_int g /. float_of_int (2 * gateways) } );
      ( cls ~id:((2 * g) + 1) ~name:(Printf.sprintf "hb%d" g) ~source:g
          ~bits:640 ~deadline:(2 * ms) ~burst:1 ~window:(10 * ms),
        Arrival.Periodic { offset = g * 37 * us } );
    ]
  in
  Instance.create_exn ~name:"trading" ~phy:Phy.gigabit_ethernet
    ~num_sources:gateways
    (List.concat_map per_gateway (List.init gateways Fun.id))

let atm_fabric ~ports =
  if ports < 1 then invalid_arg "Scenarios.atm_fabric";
  (* 48-byte payloads; deadlines a few cell times (424 bit-times per
     cell on the internal bus). *)
  let per_port p =
    [
      ( cls ~id:(2 * p) ~name:(Printf.sprintf "cbr%d" p) ~source:p ~bits:384
          ~deadline:(40 * 424) ~burst:1
          ~window:(424 * 2 * ports),
        Arrival.Periodic { offset = p * 424 } );
      ( cls ~id:((2 * p) + 1) ~name:(Printf.sprintf "vbr%d" p) ~source:p
          ~bits:384 ~deadline:(80 * 424) ~burst:4
          ~window:(424 * 16 * ports),
        Arrival.Poisson { intensity = 0.7 } );
    ]
  in
  Instance.create_exn ~name:"atm-fabric" ~phy:Phy.atm_bus ~num_sources:ports
    (List.concat_map per_port (List.init ports Fun.id))

let skewed ~sources ~heavy_fraction =
  if sources < 2 then invalid_arg "Scenarios.skewed: sources < 2";
  if heavy_fraction <= 0. || heavy_fraction >= 1. then
    invalid_arg "Scenarios.skewed: heavy_fraction out of (0, 1)";
  let bits = 4_000 in
  let on_wire = Phy.tx_bits Phy.gigabit_ethernet bits in
  (* Total offered load ~0.5; the heavy source bursts its share into
     1 ms windows, the light ones spread theirs over 10 ms. *)
  let total = 0.5 in
  let heavy_load = total *. heavy_fraction in
  let light_load = total *. (1. -. heavy_fraction) /. float_of_int (sources - 1) in
  let heavy_window = ms in
  let heavy_burst =
    max 1 (int_of_float (heavy_load *. float_of_int heavy_window /. float_of_int on_wire))
  in
  let light_window = 10 * ms in
  let light_burst =
    max 1 (int_of_float (light_load *. float_of_int light_window /. float_of_int on_wire))
  in
  let heavy =
    ( cls ~id:0 ~name:"heavy" ~source:0 ~bits ~deadline:(2 * ms)
        ~burst:heavy_burst ~window:heavy_window,
      Arrival.Greedy_burst )
  in
  let light i =
    ( cls ~id:i ~name:(Printf.sprintf "light%d" i) ~source:i ~bits
        ~deadline:(5 * ms) ~burst:light_burst ~window:light_window,
      Arrival.Periodic { offset = i * 113 * us } )
  in
  Instance.create_exn ~name:"skewed" ~phy:Phy.gigabit_ethernet
    ~num_sources:sources
    (heavy :: List.map light (List.init (sources - 1) (fun i -> i + 1)))

let manufacturing ~cells =
  if cells < 1 then invalid_arg "Scenarios.manufacturing";
  let per_cell c =
    [
      ( cls ~id:(3 * c) ~name:(Printf.sprintf "plc%d" c) ~source:c
          ~bits:6_000 ~deadline:(2 * ms) ~burst:2 ~window:(2 * ms),
        Arrival.Greedy_burst );
      ( cls ~id:(3 * c + 1) ~name:(Printf.sprintf "estop%d" c) ~source:c
          ~bits:512 ~deadline:(1 * ms) ~burst:1 ~window:(5 * ms),
        Arrival.Poisson { intensity = 0.4 } );
      ( cls ~id:(3 * c + 2) ~name:(Printf.sprintf "vision%d" c) ~source:c
          ~bits:60_000 ~deadline:(10 * ms) ~burst:1 ~window:(5 * ms),
        Arrival.Sporadic { mean_slack = 0.3 } );
    ]
  in
  let supervisor =
    ( cls ~id:(3 * cells) ~name:"schedule" ~source:0 ~bits:20_000
        ~deadline:(10 * ms) ~burst:1 ~window:(10 * ms),
      Arrival.Periodic { offset = 0 } )
  in
  Instance.create_exn ~name:"manufacturing" ~phy:Phy.gigabit_ethernet
    ~num_sources:cells
    (supervisor :: List.concat_map per_cell (List.init cells Fun.id))

let uniform ~sources ~classes_per_source ~load ~deadline_windows =
  if sources < 1 || classes_per_source < 1 then
    invalid_arg "Scenarios.uniform: non-positive sizes";
  if load <= 0. then invalid_arg "Scenarios.uniform: non-positive load";
  if deadline_windows <= 0. then
    invalid_arg "Scenarios.uniform: non-positive deadline";
  let bits = 8_000 in
  let on_wire = Phy.tx_bits Phy.gigabit_ethernet bits in
  let n = sources * classes_per_source in
  (* Peak load = n · a · l' / w = load, with a = 1. *)
  let window =
    max 1 (int_of_float (float_of_int (n * on_wire) /. load))
  in
  let deadline =
    max 1 (int_of_float (deadline_windows *. float_of_int window))
  in
  let mk i =
    let s = i mod sources in
    ( cls ~id:i ~name:(Printf.sprintf "u%d" i) ~source:s ~bits ~deadline
        ~burst:1 ~window,
      Arrival.Greedy_burst )
  in
  Instance.create_exn ~name:(Printf.sprintf "uniform-%.2f" load)
    ~phy:Phy.gigabit_ethernet ~num_sources:sources
    (List.map mk (List.init n Fun.id))

let all =
  [
    ("videoconference", videoconference ~stations:6);
    ("air-traffic-control", air_traffic_control ~radars:5);
    ("trading", trading ~gateways:4);
    ("atm-fabric", atm_fabric ~ports:4);
    ("manufacturing", manufacturing ~cells:4);
    ("skewed", skewed ~sources:6 ~heavy_fraction:0.6);
    ( "uniform-0.3",
      uniform ~sources:8 ~classes_per_source:2 ~load:0.3 ~deadline_windows:2.0
    );
  ]
