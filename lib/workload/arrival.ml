module Prng = Rtnet_util.Prng
module Int_math = Rtnet_util.Int_math

type law =
  | Periodic of { offset : int }
  | Sporadic of { mean_slack : float }
  | Greedy_burst
  | Poisson of { intensity : float }
  | Staggered_burst of { phase : float }
  | On_off of { on_windows : int; off_windows : int }

let pp_law fmt = function
  | Periodic { offset } -> Format.fprintf fmt "periodic(offset=%d)" offset
  | Sporadic { mean_slack } -> Format.fprintf fmt "sporadic(slack=%.2f)" mean_slack
  | Greedy_burst -> Format.fprintf fmt "greedy-burst"
  | Poisson { intensity } -> Format.fprintf fmt "poisson(%.2f)" intensity
  | Staggered_burst { phase } -> Format.fprintf fmt "staggered-burst(%.2f)" phase
  | On_off { on_windows; off_windows } ->
    Format.fprintf fmt "on-off(%d/%d)" on_windows off_windows

(* Admit raw candidate times in order, delaying any candidate that
   would put more than [a] arrivals in a sliding window of [w]:
   arrival [i] may not precede arrival [i-a] by less than [w]. *)
let clamp_to_density cls raw ~horizon =
  let a = cls.Message.cls_burst and w = cls.Message.cls_window in
  let recent = Queue.create () in
  (* [recent] holds the last [a] admitted times, oldest first. *)
  let admit acc t =
    let t =
      if Queue.length recent < a then t
      else max t (Queue.peek recent + w)
    in
    if t >= horizon then None
    else begin
      if Queue.length recent >= a then ignore (Queue.pop recent);
      Queue.push t recent;
      Some (t :: acc)
    end
  in
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest -> (
      match admit acc t with
      | None -> List.rev acc (* later candidates only get later *)
      | Some acc -> go acc rest)
  in
  go [] raw

let spacing cls =
  Int_math.cdiv cls.Message.cls_window cls.Message.cls_burst

let raw_periodic cls ~offset ~horizon =
  let step = spacing cls in
  let rec go acc t = if t >= horizon then List.rev acc else go (t :: acc) (t + step) in
  go [] offset

let raw_sporadic rng cls ~mean_slack ~horizon =
  let step = spacing cls in
  let rec go acc t =
    if t >= horizon then List.rev acc
    else begin
      let slack =
        if mean_slack <= 0. then 0
        else
          int_of_float (Prng.exponential rng (1.0 /. (mean_slack *. float_of_int step)))
      in
      go (t :: acc) (t + step + slack)
    end
  in
  go [] 0

let raw_bursts cls ~start_of_window ~horizon =
  let a = cls.Message.cls_burst and w = cls.Message.cls_window in
  let rec go acc s =
    let t = start_of_window s in
    if t >= horizon then List.rev acc
    else begin
      let rec burst acc i = if i = a then acc else burst (t :: acc) (i + 1) in
      go (burst acc 0) (s + w)
    end
  in
  go [] 0

let raw_on_off cls ~on_windows ~off_windows ~horizon =
  let a = cls.Message.cls_burst and w = cls.Message.cls_window in
  let period = on_windows + off_windows in
  let rec go acc window =
    let t = window * w in
    if t >= horizon then List.rev acc
    else if window mod period < on_windows then begin
      let rec burst acc i = if i = a then acc else burst (t :: acc) (i + 1) in
      go (burst acc 0) (window + 1)
    end
    else go acc (window + 1)
  in
  go [] 0

let raw_poisson rng cls ~intensity ~horizon =
  let rate =
    intensity *. float_of_int cls.Message.cls_burst
    /. float_of_int cls.Message.cls_window
  in
  if rate <= 0. then []
  else begin
    let rec go acc t =
      let gap = Prng.exponential rng rate in
      let t = t +. gap in
      if t >= float_of_int horizon then List.rev acc
      else go (int_of_float t :: acc) t
    in
    go [] 0.
  end

let generate rng cls law ~horizon =
  if horizon <= 0 then invalid_arg "Arrival.generate: non-positive horizon";
  let raw =
    match law with
    | Periodic { offset } -> raw_periodic cls ~offset ~horizon
    | Sporadic { mean_slack } -> raw_sporadic rng cls ~mean_slack ~horizon
    | Greedy_burst -> raw_bursts cls ~start_of_window:(fun s -> s) ~horizon
    | Poisson { intensity } -> raw_poisson rng cls ~intensity ~horizon
    | Staggered_burst { phase } ->
      if phase < 0. || phase >= 1. then
        invalid_arg "Arrival.generate: phase out of [0,1)";
      let w = cls.Message.cls_window in
      let shift = int_of_float (phase *. float_of_int w) in
      raw_bursts cls ~start_of_window:(fun s -> s + shift) ~horizon
    | On_off { on_windows; off_windows } ->
      if on_windows < 1 || off_windows < 0 then
        invalid_arg "Arrival.generate: on/off windows";
      raw_on_off cls ~on_windows ~off_windows ~horizon
  in
  clamp_to_density cls raw ~horizon

let respects_density cls times =
  let arr = Array.of_list times in
  let a = cls.Message.cls_burst and w = cls.Message.cls_window in
  let n = Array.length arr in
  let rec sorted i = i >= n || (arr.(i - 1) <= arr.(i) && sorted (i + 1)) in
  let rec spaced i = i + a >= n || (arr.(i + a) - arr.(i) >= w && spaced (i + 1)) in
  (n < 2 || sorted 1) && spaced 0

let to_trace rng classes ~horizon =
  let streams =
    List.map
      (fun (cls, law) ->
        let rng = Prng.split rng in
        List.map (fun t -> (t, cls)) (generate rng cls law ~horizon))
      classes
  in
  let all = List.concat streams in
  let sorted =
    List.sort
      (fun (t1, c1) (t2, c2) ->
        let by_t = compare t1 t2 in
        if by_t <> 0 then by_t else compare c1.Message.cls_id c2.Message.cls_id)
      all
  in
  List.mapi (fun i (t, cls) -> { Message.uid = i; cls; arrival = t }) sorted
