(** Canned HRTDM instances for the application domains the paper's
    introduction motivates: distributed interactive multimedia /
    videoconferencing, surveillance (air traffic control) and on-line
    transactions (stock markets), plus synthetic instances for sweeps.

    All times are bit-times of the instance's medium (1 bit-time = 1 ns
    on Gigabit Ethernet). *)

val videoconference : stations:int -> Instance.t
(** [videoconference ~stations] — each station sends periodic video
    frames (12 kbit every 33 ms, 10 ms deadline), audio samples
    (1.6 kbit every 20 ms, 5 ms deadline) and sporadic control traffic,
    over half-duplex Gigabit Ethernet. *)

val air_traffic_control : radars:int -> Instance.t
(** [air_traffic_control ~radars] — surveillance: each radar head sends
    sporadic track updates (2 per 50 ms window, 20 ms deadline) and
    rare but urgent conflict alerts (5 ms deadline); one coordination
    source broadcasts periodic situation summaries. *)

val trading : gateways:int -> Instance.t
(** [trading ~gateways] — on-line transactions: each gateway emits
    bursts of orders (up to 20 per 1 ms window, 0.5 ms deadline) plus a
    periodic heartbeat; the aggregate is deliberately bursty. *)

val atm_fabric : ports:int -> Instance.t
(** [atm_fabric ~ports] — cell traffic on a bus internal to an ATM
    switch ({!Rtnet_channel.Phy.atm_bus}): fixed-size cells, per-port CBR-like
    streams with cell-scale deadlines and an arbitrated medium. *)

val skewed : sources:int -> heavy_fraction:float -> Instance.t
(** [skewed ~sources ~heavy_fraction] — one "heavy" gateway carrying
    [heavy_fraction] of the total offered load in dense bursts while
    the remaining sources trickle light periodic traffic.  Exercises
    static-index allocation policies (the heavy source profits from
    owning more leaves).
    @raise Invalid_argument unless [sources >= 2] and
    [0 < heavy_fraction < 1]. *)

val manufacturing : cells:int -> Instance.t
(** [manufacturing ~cells] — discrete manufacturing (the CSMA/DCR
    deployments of Section 5): each production cell carries periodic
    PLC scan cycles with millisecond deadlines, sporadic emergency-stop
    signals with very tight deadlines, and bulky sporadic vision-system
    transfers; one supervisory source broadcasts schedules.  The
    aggregate is deliberately heavy for one bus — the dual-bus example
    splits it. *)

val uniform :
  sources:int ->
  classes_per_source:int ->
  load:float ->
  deadline_windows:float ->
  Instance.t
(** [uniform ~sources ~classes_per_source ~load ~deadline_windows] —
    synthetic instance on Gigabit Ethernet: identical 8-kbit classes
    whose windows are sized so the peak offered load is [load]
    (fraction of capacity) and whose relative deadline is
    [deadline_windows · w].  Used for load sweeps.
    @raise Invalid_argument if [load <= 0.] or parameters are
    non-positive. *)

val all : (string * Instance.t) list
(** [all] is a representative list of named instances (small sizes)
    used by tests and benches. *)
