(** Message model of the HRTDM problem ([<m.HRTDM>], Section 2.2).

    A {!cls} is one element of the message set [MSG]: it belongs to
    exactly one source (the mapping model), carries a bit length
    [l(msg)], a strict relative deadline [d(msg)] and a unimodal
    arbitrary arrival-density bound [a(msg)/w(msg)] — at most [a]
    arrivals within any sliding window of [w] time units.

    A {!t} is one concrete arrival of a class: the pair
    [(class, T(msg))], from which the absolute deadline
    [DM = T + d] follows.  All times are in bit-times. *)

type cls = {
  cls_id : int;  (** unique id within the instance *)
  cls_name : string;  (** human-readable label *)
  cls_source : int;  (** owning source [s_i] (mapping model) *)
  cls_bits : int;  (** Data-Link length [l(msg)], bits *)
  cls_deadline : int;  (** relative deadline [d(msg)], bit-times *)
  cls_burst : int;  (** arrival-density numerator [a(msg)] *)
  cls_window : int;  (** sliding-window size [w(msg)], bit-times *)
}

val cls_validate : cls -> (unit, string) result
(** [cls_validate c] checks the positivity constraints of the model
    ([l > 0], [d > 0], [a >= 1], [w > 0], [source >= 0]). *)

val pp_cls : Format.formatter -> cls -> unit
(** [pp_cls fmt c] prints a one-line class summary. *)

type t = {
  uid : int;  (** unique id of this arrival within a run *)
  cls : cls;  (** the class it instantiates *)
  arrival : int;  (** arrival time [T(msg)], bit-times *)
}

val abs_deadline : t -> int
(** [abs_deadline m] is [DM(msg) = T(msg) + d(msg)]. *)

val compare_edf : t -> t -> int
(** [compare_edf a b] orders by absolute deadline, then by arrival
    time, then by [uid] — a total order, so EDF ranking is
    deterministic and identical at every source. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt m] prints a one-line arrival summary. *)
