(** Arrival-law generators for the unimodal arbitrary arrival model.

    The paper's adversary is any arrival stream that respects the
    density bound: at most [a] arrivals of a class within any sliding
    window of [w] time units.  Feasibility conditions are established
    against that adversary, so the simulator must be able to produce
    both {i well-behaved} streams (periodic, sporadic, Poisson — the
    models the paper argues are too optimistic) and the {i worst-case}
    stream (greedy back-to-back bursts saturating [a/w]).

    Every generator {b clamps} its raw stream to the class's declared
    [a/w] bound, so by construction no generated trace can violate the
    model — a property the test suite checks. *)

type law =
  | Periodic of { offset : int }
      (** one arrival every [w/a] time units, first at [offset] *)
  | Sporadic of { mean_slack : float }
      (** gaps of [w/a] plus an Exp-distributed slack with the given
          mean (in units of [w/a]) *)
  | Greedy_burst
      (** the paper's adversary at peak load: [a] back-to-back arrivals
          at the start of every window of size [w] *)
  | Poisson of { intensity : float }
      (** Poisson process with rate [intensity · a/w], clamped to the
          density bound *)
  | Staggered_burst of { phase : float }
      (** like [Greedy_burst] but each window's burst is delayed by
          [phase·w] — exercises mid-window bursts ([0 <= phase < 1]) *)
  | On_off of { on_windows : int; off_windows : int }
      (** alternates activity phases: [on_windows] windows at the full
          density bound, then [off_windows] windows of silence — the
          long-range burstiness of measured LAN traffic that the paper
          cites against Poisson modelling (refs [11–13]); still clamped
          to the [a/w] bound *)

val pp_law : Format.formatter -> law -> unit
(** [pp_law fmt law] prints the law name and parameters. *)

val generate :
  Rtnet_util.Prng.t -> Message.cls -> law -> horizon:int -> int list
(** [generate rng c law ~horizon] is the sorted list of arrival times
    of class [c] in [\[0, horizon)], clamped to [c]'s [a/w] bound. *)

val respects_density : Message.cls -> int list -> bool
(** [respects_density c times] is [true] iff the sorted stream [times]
    satisfies [c]'s sliding-window bound: every [a+1] consecutive
    arrivals span strictly more than... precisely, arrivals [i] and
    [i+a] are at least [w] apart (at most [a] in any half-open window
    [\[t, t+w)]). *)

val to_trace :
  Rtnet_util.Prng.t ->
  (Message.cls * law) list ->
  horizon:int ->
  Message.t list
(** [to_trace rng classes ~horizon] generates every class's stream,
    merges them into one arrival trace sorted by time (ties by class
    id) and assigns unique message ids in that order. *)
