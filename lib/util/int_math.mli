(** Exact integer arithmetic helpers.

    The closed forms of Section 4 of the paper are expressed with
    [floor]/[ceil] of base-[m] logarithms and integer powers.  Computing
    them through floating point is unsound for the tree sizes we sweep
    (rounding can shift a floor across an integer boundary), so every
    function here is implemented with integer arithmetic only. *)

val pow : int -> int -> int
(** [pow m e] is [m{^e}] computed exactly.
    @raise Invalid_argument if [e < 0] or the result overflows [int]. *)

val is_power_of : int -> int -> bool
(** [is_power_of m t] is [true] iff [t = m{^e}] for some [e >= 0].
    Requires [m >= 2]. *)

val log_floor : int -> int -> int
(** [log_floor m v] is [⌊log_m v⌋] for [v >= 1], [m >= 2]. *)

val log_ceil : int -> int -> int
(** [log_ceil m v] is [⌈log_m v⌉] for [v >= 1], [m >= 2]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is [⌈a / b⌉] for [b > 0] and any [a] (exact for negative
    [a] as well, e.g. [cdiv (-1) 2 = 0]). *)

val fdiv : int -> int -> int
(** [fdiv a b] is [⌊a / b⌋] for [b > 0] and any [a] (exact for negative
    [a] as well, e.g. [fdiv (-1) 2 = -1]). *)

val isqrt : int -> int
(** [isqrt v] is [⌊sqrt v⌋] for [v >= 0]. *)
