type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = s }

let derive seed i =
  if i < 0 then invalid_arg "Prng.derive: negative index";
  (* Two finalizer rounds keep child seeds statistically independent of
     both the parent seed and neighbouring indices (SplitMix64's
     stream-splitting construction). *)
  let z = mix (Int64.add (Int64.of_int seed) golden_gamma) in
  let z = mix (Int64.logxor z (Int64.mul (Int64.of_int (i + 1)) 0x94D049BB133111EBL)) in
  Int64.to_int (mix z) land max_int

let stream ~seed ~path = create (List.fold_left derive seed path)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: n <= 0";
  (* Rejection sampling on the top 62 bits keeps the draw unbiased. *)
  let mask = max_int in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) land mask in
    let r = v mod n in
    if v - r + (n - 1) >= 0 then r else go ()
  in
  go ()

let float g x =
  if x <= 0. then invalid_arg "Prng.float: x <= 0";
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate <= 0";
  let u = 1.0 -. float g 1.0 in
  -.log u /. rate

let shuffle g arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
