type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Canonical float rendering: the shortest of %.12g / %.17g that
   round-trips, forced to contain a '.' or exponent so the token parses
   back as a Float (not an Int). *)
let float_repr f =
  (match Float.classify_float f with
  | FP_nan | FP_infinite ->
    invalid_arg "Json: non-finite floats have no JSON representation"
  | FP_normal | FP_subnormal | FP_zero -> ());
  let s =
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pretty buf v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
    | List [] -> Buffer.add_string buf "[]"
    | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) v)
        vs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v

let pp fmt v =
  let buf = Buffer.create 256 in
  pretty buf v;
  Format.pp_print_string fmt (Buffer.contents buf)

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Buffer.create 4096 in
      pretty buf v;
      Buffer.add_char buf '\n';
      output_string oc (Buffer.contents buf))

(* ---------------------------------------------------------------- *)
(* Parser: plain recursive descent over a string.                    *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | Some d -> fail cur (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail cur (Printf.sprintf "expected %C, found end of input" c)

let literal cur word v =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur (Printf.sprintf "expected %s" word)

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 cur =
  let digit () =
    match peek cur with
    | Some c ->
      advance cur;
      (match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail cur "invalid \\u escape")
    | None -> fail cur "truncated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let cp = hex4 cur in
          let cp =
            (* Combine a surrogate pair when one follows. *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              if
                cur.pos + 1 < String.length cur.src
                && cur.src.[cur.pos] = '\\'
                && cur.src.[cur.pos + 1] = 'u'
              then begin
                cur.pos <- cur.pos + 2;
                let lo = hex4 cur in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail cur "invalid low surrogate"
              end
              else fail cur "unpaired surrogate"
            end
            else cp
          in
          add_utf8 buf cp
        | c -> fail cur (Printf.sprintf "invalid escape \\%c" c)));
      go ()
    | Some c when Char.code c < 0x20 -> fail cur "control character in string"
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  (match peek cur with Some '-' -> advance cur | _ -> ());
  let rec digits () =
    match peek cur with
    | Some '0' .. '9' ->
      advance cur;
      digits ()
    | _ -> ()
  in
  digits ();
  (match peek cur with
  | Some '.' ->
    is_float := true;
    advance cur;
    digits ()
  | _ -> ());
  (match peek cur with
  | Some ('e' | 'E') ->
    is_float := true;
    advance cur;
    (match peek cur with Some ('+' | '-') -> advance cur | _ -> ());
    digits ()
  | _ -> ());
  let tok = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "invalid number %S" tok)
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      (* Out of int range: degrade to float rather than failing. *)
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail cur (Printf.sprintf "invalid number %S" tok))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let binding () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let rec items acc =
        let kv = binding () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (kv :: acc)
        | Some '}' ->
          advance cur;
          List.rev (kv :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (items [])
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let parse s =
  let cur = { src = s; pos = 0 } in
  match
    let v = parse_value cur in
    skip_ws cur;
    if cur.pos <> String.length s then fail cur "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let get_int = function
  | Int i -> Ok i
  | v -> Error (Printf.sprintf "expected int, found %s" (type_name v))

let get_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected float, found %s" (type_name v))

let get_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool, found %s" (type_name v))

let get_string = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, found %s" (type_name v))

let get_list = function
  | List vs -> Ok vs
  | v -> Error (Printf.sprintf "expected list, found %s" (type_name v))

let get_obj = function
  | Obj kvs -> Ok kvs
  | v -> Error (Printf.sprintf "expected object, found %s" (type_name v))

let field key v =
  match member key v with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)
