type align = Left | Right

type t = {
  header : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ?aligns header =
  let n = List.length header in
  let aligns =
    match aligns with
    | None -> Array.make n Right
    | Some l ->
      if List.length l <> n then invalid_arg "Table.create: aligns arity";
      Array.of_list l
  in
  { header = Array.of_list header; aligns; rows = [] }

let add_row tbl cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length tbl.header then
    invalid_arg "Table.add_row: arity mismatch";
  tbl.rows <- row :: tbl.rows

let add_int_row tbl cells = add_row tbl (List.map string_of_int cells)

let widths tbl =
  let w = Array.map String.length tbl.header in
  let widen row =
    Array.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  List.iter widen tbl.rows;
  w

let pad align width s =
  let fill = width - String.length s in
  match align with
  | Left -> s ^ String.make fill ' '
  | Right -> String.make fill ' ' ^ s

let render tbl =
  let w = widths tbl in
  let buf = Buffer.create 256 in
  let line row =
    Buffer.add_string buf "| ";
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad tbl.aligns.(i) w.(i) cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter (fun wi -> Buffer.add_string buf (String.make (wi + 2) '-'); Buffer.add_char buf '+') w;
    Buffer.add_char buf '\n'
  in
  rule ();
  line tbl.header;
  rule ();
  List.iter line (List.rev tbl.rows);
  rule ();
  Buffer.contents buf

let csv_cell s =
  let needs_quote =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv tbl =
  let buf = Buffer.create 256 in
  let line row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (csv_cell cell))
      row;
    Buffer.add_char buf '\n'
  in
  line tbl.header;
  List.iter line (List.rev tbl.rows);
  Buffer.contents buf

let print tbl = print_string (render tbl)

let save_csv ~dir ~name tbl =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv tbl);
  close_out oc;
  path
