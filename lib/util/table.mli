(** Aligned text tables and CSV rendering for experiment reports.

    Benches and example programs print the same rows the paper reports;
    this module keeps their formatting uniform. *)

type align = Left | Right

type t
(** A table under construction: a header plus accumulated rows. *)

val create : ?aligns:align list -> string list -> t
(** [create header] is an empty table with the given column names.
    [aligns] defaults to [Right] for every column. *)

val add_row : t -> string list -> unit
(** [add_row tbl cells] appends a row.
    @raise Invalid_argument if the arity differs from the header. *)

val add_int_row : t -> int list -> unit
(** [add_int_row tbl cells] appends a row of integers. *)

val render : t -> string
(** [render tbl] is the aligned, boxed text rendering. *)

val to_csv : t -> string
(** [to_csv tbl] is the RFC-4180-style CSV rendering (header first). *)

val print : t -> unit
(** [print tbl] writes [render tbl] to standard output. *)

val save_csv : dir:string -> name:string -> t -> string
(** [save_csv ~dir ~name tbl] writes the CSV to [dir/name.csv]
    (creating [dir] if needed) and returns the path written. *)
