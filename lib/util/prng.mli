(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic workload generators and randomized baselines draw
    from this generator so that every simulation is exactly
    reproducible from its seed — a prerequisite for the
    bound-domination tests, which must be re-runnable on failure. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val derive : int -> int -> int
(** [derive seed i] is a child seed for index [i >= 0], a pure function
    of [(seed, i)].  Child seeds for distinct indices (and the streams
    they generate) are statistically independent of each other and of
    [create seed]'s own stream — the campaign runner derives one
    per-cell seed this way, so a sweep's cells can be executed in any
    order, serially or in parallel, with bit-identical results, and
    cannot collide with the scenario seeds users pass directly.
    Results are non-negative.
    @raise Invalid_argument if [i < 0]. *)

val stream : seed:int -> path:int list -> t
(** [stream ~seed ~path] is a generator for the hierarchical stream
    reached by folding {!derive} over [path] — e.g.
    [stream ~seed ~path:[scenario; variant; replicate]].  Distinct
    paths yield independent streams; the empty path is
    [create seed]. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)].  Requires [x > 0.]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val exponential : t -> float -> float
(** [exponential g rate] draws from Exp([rate]).  Requires [rate > 0.]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g arr] permutes [arr] in place, uniformly. *)
