let mul_checked a b =
  (* Detects wrap-around on 63-bit native ints before it happens. *)
  if a <> 0 && b <> 0 && (abs a > max_int / abs b) then
    invalid_arg "Int_math.pow: overflow";
  a * b

let pow m e =
  if e < 0 then invalid_arg "Int_math.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul_checked acc base else acc in
      if e <= 1 then acc else go acc (mul_checked base base) (e lsr 1)
    end
  in
  go 1 m e

let is_power_of m t =
  if m < 2 then invalid_arg "Int_math.is_power_of: m < 2";
  let rec go v = if v = 1 then true else if v mod m <> 0 then false else go (v / m) in
  t >= 1 && go t

let log_floor m v =
  if m < 2 then invalid_arg "Int_math.log_floor: m < 2";
  if v < 1 then invalid_arg "Int_math.log_floor: v < 1";
  (* Count how many times [m] divides into [v] before exceeding it;
     [p] tracks m^e and is kept <= v to avoid overflow. *)
  let rec go e p = if p > v / m then e else go (e + 1) (p * m) in
  go 0 1

let log_ceil m v =
  let e = log_floor m v in
  if pow m e = v then e else e + 1

let fdiv a b =
  if b <= 0 then invalid_arg "Int_math.fdiv: b <= 0";
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cdiv a b =
  if b <= 0 then invalid_arg "Int_math.cdiv: b <= 0";
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let isqrt v =
  if v < 0 then invalid_arg "Int_math.isqrt: negative";
  if v < 2 then v
  else begin
    let r = int_of_float (sqrt (float_of_int v)) in
    (* Fix any floating-point rounding in either direction. *)
    let rec down r = if r * r > v then down (r - 1) else r in
    let rec up r = if (r + 1) * (r + 1) <= v then up (r + 1) else r in
    up (down r)
  end
