(** Minimal JSON representation, printer and parser.

    The campaign runner ([rtnet.campaign]) persists machine-readable
    results — [BENCH_*.json] reports, checkpoint journals, sweep
    specifications — and the perf-regression gate diffs two such files.
    That requires a {e deterministic} serialization: printing the same
    value always yields the same bytes (insertion-order object keys,
    canonical float representation), so byte-equality of two reports is
    meaningful.  The repository deliberately has no third-party JSON
    dependency; this module is the small subset we need.

    Numbers are split into {!Int} and {!Float} at parse time (a token
    with a fraction or exponent is a float); floats are printed with
    the shortest representation that round-trips, so
    [parse (to_string v)] reproduces [v] exactly.  Non-finite floats
    are rejected by the printer — they have no JSON representation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order is preserved *)

val to_string : t -> string
(** [to_string v] is the compact (single-line) canonical rendering.
    @raise Invalid_argument on NaN or infinite floats. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt v] pretty-prints [v] with two-space indentation — the
    format of the committed [BENCH_*.json] files.  Same determinism
    guarantee as {!to_string}. *)

val to_file : string -> t -> unit
(** [to_file path v] writes [pp v] plus a trailing newline to [path]
    (truncating). *)

val parse : string -> (t, string) result
(** [parse s] parses one JSON value (surrounding whitespace allowed);
    trailing garbage is an error. *)

val parse_file : string -> (t, string) result
(** [parse_file path] is {!parse} on the file's contents; I/O failures
    are returned as [Error]. *)

val member : string -> t -> t option
(** [member key v] is the value bound to [key] if [v] is an object
    containing it. *)

(** Checked accessors, for decoders.  Each returns [Error] with a
    one-line description naming the expected shape. *)

val get_int : t -> (int, string) result
val get_float : t -> (float, string) result
(** [get_float] accepts {!Int} too (JSON does not distinguish). *)

val get_bool : t -> (bool, string) result
val get_string : t -> (string, string) result
val get_list : t -> (t list, string) result
val get_obj : t -> ((string * t) list, string) result

val field : string -> t -> (t, string) result
(** [field key v] is {!member} as a [result], naming the missing key. *)
