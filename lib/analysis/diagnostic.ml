type severity = Error | Warning | Info

type t = {
  rule_id : string;
  severity : severity;
  subject : string;
  message : string;
  paper_ref : string;
}

let make ~rule_id ~severity ~subject ~paper_ref message =
  { rule_id; severity; subject; message; paper_ref }

let error ~rule_id ~subject ~paper_ref message =
  make ~rule_id ~severity:Error ~subject ~paper_ref message

let warning ~rule_id ~subject ~paper_ref message =
  make ~rule_id ~severity:Warning ~subject ~paper_ref message

let info ~rule_id ~subject ~paper_ref message =
  make ~rule_id ~severity:Info ~subject ~paper_ref message

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let count s ds = List.length (List.filter (fun d -> d.severity = s) ds)

let errors ds = List.filter (fun d -> d.severity = Error) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let exit_code ds = if has_errors ds then 1 else 0

let pp_severity fmt s =
  Format.pp_print_string fmt
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp fmt d =
  Format.fprintf fmt "%a [%s] %s: %s (%s)" pp_severity d.severity d.rule_id
    d.subject d.message d.paper_ref

let pp_report fmt ds =
  let by_severity =
    (* Stable: most severe first, emission order within a severity. *)
    List.stable_sort
      (fun a b -> compare (severity_rank b.severity) (severity_rank a.severity))
      ds
  in
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) by_severity;
  Format.fprintf fmt "%d error(s), %d warning(s), %d info@." (count Error ds)
    (count Warning ds) (count Info ds)
