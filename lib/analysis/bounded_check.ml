module Tree_search = Rtnet_core.Tree_search
module Xi = Rtnet_core.Xi
module Xi_arb = Rtnet_core.Xi_arb
module D = Diagnostic

let p1_ref = "problem P1, Section 4.1"
let safety_ref = "safety property, Section 4.2"
let arb_ref = "arbitrated search, Section 3.2"

(* All permutations of a list — used to enumerate key assignments. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let subset_of_mask ~t mask =
  List.filter (fun leaf -> mask land (1 lsl leaf) <> 0) (List.init t Fun.id)

let pp_subset leaves =
  "{" ^ String.concat "," (List.map string_of_int leaves) ^ "}"

(* Beyond this cardinality only two deterministic key orders are tried
   (k! explodes); below it, all of them, so the worst case is attained. *)
let perm_limit = 4

let check_shape ~m ~leaves =
  let t = leaves in
  let xi = Xi.table ~m ~t in
  let zeta = Xi_arb.table ~m ~t in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let shape = Printf.sprintf "m=%d t=%d" m t in
  (* Closed form vs the independent recursion, at every k. *)
  Array.iteri
    (fun k v ->
      let closed = Xi.exact ~m ~t ~k in
      if closed <> v then
        emit
          (D.error ~rule_id:"BND-XI-IMPL"
             ~subject:(Printf.sprintf "%s k=%d" shape k)
             ~paper_ref:"Eq. 10 vs Eq. 2-3, Section 4.1"
             (Printf.sprintf "closed form gives %d, recursion gives %d" closed
                v)))
    xi;
  let max_cost = Array.make (t + 1) 0 in
  let max_arb = Array.make (t + 1) 0 in
  let searches = ref 0 in
  for mask = 0 to (1 lsl t) - 1 do
    let active = subset_of_mask ~t mask in
    let k = List.length active in
    let subject = Printf.sprintf "%s k=%d subset=%s" shape k (pp_subset active) in
    let trace = Tree_search.run ~m ~t ~active in
    incr searches;
    (* Determinism: the search procedure is a pure function of the
       active set — the replicas of Section 3.2 rely on it. *)
    if Tree_search.run ~m ~t ~active <> trace then
      emit
        (D.error ~rule_id:"BND-DETERMINISM" ~subject
           ~paper_ref:"replicated automaton, Section 3.2"
           "re-running the search produced a different trace");
    (* Mutual exclusion: every active leaf isolated exactly once, in
       left-to-right order. *)
    if Tree_search.isolated trace <> active then
      emit
        (D.error ~rule_id:"BND-MUTEX" ~subject ~paper_ref:safety_ref
           (Printf.sprintf "isolated %s instead of every active leaf once"
              (pp_subset (Tree_search.isolated trace))));
    let cost = Tree_search.cost trace in
    if cost > xi.(k) then
      emit
        (D.error ~rule_id:"BND-XI" ~subject ~paper_ref:p1_ref
           (Printf.sprintf "search took %d non-transmission slots, xi = %d"
              cost xi.(k)));
    if cost > max_cost.(k) then max_cost.(k) <- cost;
    (* Arbitrated medium: every key assignment (all k! orders for small
       k) delivers each contender exactly once within zeta. *)
    let key_orders =
      let idx = List.init k Fun.id in
      if k <= perm_limit then permutations idx
      else [ idx; List.rev idx ]
    in
    List.iter
      (fun keys ->
        let keyed = List.combine active keys in
        let cost, delivered = Tree_search.run_arbitrated ~m ~t ~active:keyed in
        incr searches;
        if List.sort compare delivered <> active then
          emit
            (D.error ~rule_id:"BND-ARB-MUTEX" ~subject ~paper_ref:safety_ref
               (Printf.sprintf "arbitrated search delivered %s"
                  (pp_subset delivered)));
        if cost > zeta.(k) then
          emit
            (D.error ~rule_id:"BND-ZETA" ~subject ~paper_ref:arb_ref
               (Printf.sprintf "arbitrated search cost %d slots, zeta = %d"
                  cost zeta.(k)));
        if cost > max_arb.(k) then max_arb.(k) <- cost)
      key_orders
  done;
  (* Tightness: the worst subset of each cardinality attains xi, and the
     analytic witness reproduces it. *)
  for k = 0 to t do
    if max_cost.(k) <> xi.(k) then
      emit
        (D.error ~rule_id:"BND-TIGHT"
           ~subject:(Printf.sprintf "%s k=%d" shape k)
           ~paper_ref:p1_ref
           (Printf.sprintf
              "worst observed search cost %d does not attain xi = %d"
              max_cost.(k) xi.(k)));
    if k <= perm_limit && max_arb.(k) <> zeta.(k) then
      emit
        (D.error ~rule_id:"BND-ZETA"
           ~subject:(Printf.sprintf "%s k=%d" shape k)
           ~paper_ref:arb_ref
           (Printf.sprintf
              "worst observed arbitrated cost %d does not attain zeta = %d"
              max_arb.(k) zeta.(k)));
    if k >= 2 then begin
      let witness = Xi.worst_case_subset ~m ~t ~k in
      let cost = Tree_search.cost (Tree_search.run ~m ~t ~active:witness) in
      if cost <> xi.(k) then
        emit
          (D.error ~rule_id:"BND-TIGHT"
             ~subject:(Printf.sprintf "%s k=%d witness=%s" shape k
                         (pp_subset witness))
             ~paper_ref:p1_ref
             (Printf.sprintf "witness subset costs %d, xi = %d" cost xi.(k)))
    end
  done;
  if not (D.has_errors !diags) then
    emit
      (D.info ~rule_id:"BND-OK" ~subject:shape ~paper_ref:p1_ref
         (Printf.sprintf
            "verified %d subsets (%d searches): deterministic, mutually \
             exclusive, within and attaining xi/zeta"
            (1 lsl t) !searches));
  List.rev !diags

let sweep ?(max_m = 3) ?(max_leaves = 9) () =
  let rec shapes_of m t acc =
    if t > max_leaves then List.rev acc else shapes_of m (t * m) (t :: acc)
  in
  List.concat_map
    (fun m ->
      List.concat_map
        (fun leaves -> check_shape ~m ~leaves)
        (shapes_of m m []))
    (List.filter (fun m -> m >= 2) (List.init (max_m + 1) Fun.id))
