module Json = Rtnet_util.Json
module Trace = Rtnet_core.Ddcr_trace
module Topo_driver = Rtnet_topology.Driver
module D = Diagnostic

let ( let* ) = Result.bind

type verdict =
  | Pass
  | Safety_violation of string
  | Deadline_miss of { misses : int; first_uid : int }
  | Failed_resync of { source : int }
  | Invariant_violation of { rule : string; message : string }
  | Harness_mismatch of string
  | Run_crash of string
  | Chain_deadline_miss of { misses : int; flow : string }
  | Handoff_loss of { bridge : string; chains : int }
  | Bridge_overflow of { bridge : string; dropped : int }
  | Admission_violation of { flow : string; misses : int }

let label = function
  | Pass -> "pass"
  | Safety_violation _ -> "safety-violation"
  | Deadline_miss _ -> "deadline-miss"
  | Failed_resync _ -> "failed-resync"
  | Invariant_violation _ -> "invariant-violation"
  | Harness_mismatch _ -> "harness-mismatch"
  | Run_crash _ -> "run-crash"
  | Chain_deadline_miss _ -> "chain-deadline-miss"
  | Handoff_loss _ -> "handoff-loss"
  | Bridge_overflow _ -> "bridge-overflow"
  | Admission_violation _ -> "admission-violation"

let describe = function
  | Pass -> "pass: every oracle holds"
  | Safety_violation m -> "safety violation: " ^ m
  | Deadline_miss { misses; first_uid } ->
    Printf.sprintf
      "%d deadline miss(es) outside every fault epoch (first uid=%d)" misses
      first_uid
  | Failed_resync { source } ->
    Printf.sprintf "source %d never resynchronized before the horizon" source
  | Invariant_violation { rule; message } ->
    Printf.sprintf "invariant violation [%s]: %s" rule message
  | Harness_mismatch m -> "harness mismatch: " ^ m
  | Run_crash m -> "run crashed: " ^ m
  | Chain_deadline_miss { misses; flow } ->
    Printf.sprintf
      "%d end-to-end chain deadline miss(es) outside every fault epoch \
       (first flow %s)"
      misses flow
  | Handoff_loss { bridge; chains } ->
    Printf.sprintf
      "%d chain(s) lost in the cross-segment hand-off at bridge %s" chains
      bridge
  | Bridge_overflow { bridge; dropped } ->
    Printf.sprintf
      "bridge %s store-and-forward queue overflowed: %d message(s) dropped"
      bridge dropped
  | Admission_violation { flow; misses } ->
    Printf.sprintf
      "admission control accepted flow %s yet the run misses %d deadline(s)"
      flow misses

let is_failure v = v <> Pass
let same_class a b = String.equal (label a) (label b)

(* -------------------- canonical JSON -------------------- *)

let to_json v =
  let tag = ("verdict", Json.String (label v)) in
  Json.Obj
    (match v with
    | Pass -> [ tag ]
    | Safety_violation m | Harness_mismatch m | Run_crash m ->
      [ tag; ("message", Json.String m) ]
    | Deadline_miss { misses; first_uid } ->
      [ tag; ("misses", Json.Int misses); ("first_uid", Json.Int first_uid) ]
    | Failed_resync { source } -> [ tag; ("source", Json.Int source) ]
    | Invariant_violation { rule; message } ->
      [ tag; ("rule", Json.String rule); ("message", Json.String message) ]
    | Chain_deadline_miss { misses; flow } ->
      [ tag; ("misses", Json.Int misses); ("flow", Json.String flow) ]
    | Handoff_loss { bridge; chains } ->
      [ tag; ("bridge", Json.String bridge); ("chains", Json.Int chains) ]
    | Bridge_overflow { bridge; dropped } ->
      [ tag; ("bridge", Json.String bridge); ("dropped", Json.Int dropped) ]
    | Admission_violation { flow; misses } ->
      [ tag; ("flow", Json.String flow); ("misses", Json.Int misses) ])

let of_json j =
  let* tag = Result.bind (Json.field "verdict" j) Json.get_string in
  let msg () = Result.bind (Json.field "message" j) Json.get_string in
  match tag with
  | "pass" -> Ok Pass
  | "safety-violation" ->
    let* m = msg () in
    Ok (Safety_violation m)
  | "harness-mismatch" ->
    let* m = msg () in
    Ok (Harness_mismatch m)
  | "run-crash" ->
    let* m = msg () in
    Ok (Run_crash m)
  | "deadline-miss" ->
    let* misses = Result.bind (Json.field "misses" j) Json.get_int in
    let* first_uid = Result.bind (Json.field "first_uid" j) Json.get_int in
    Ok (Deadline_miss { misses; first_uid })
  | "failed-resync" ->
    let* source = Result.bind (Json.field "source" j) Json.get_int in
    Ok (Failed_resync { source })
  | "invariant-violation" ->
    let* rule = Result.bind (Json.field "rule" j) Json.get_string in
    let* message = msg () in
    Ok (Invariant_violation { rule; message })
  | "chain-deadline-miss" ->
    let* misses = Result.bind (Json.field "misses" j) Json.get_int in
    let* flow = Result.bind (Json.field "flow" j) Json.get_string in
    Ok (Chain_deadline_miss { misses; flow })
  | "handoff-loss" ->
    let* bridge = Result.bind (Json.field "bridge" j) Json.get_string in
    let* chains = Result.bind (Json.field "chains" j) Json.get_int in
    Ok (Handoff_loss { bridge; chains })
  | "bridge-overflow" ->
    let* bridge = Result.bind (Json.field "bridge" j) Json.get_string in
    let* dropped = Result.bind (Json.field "dropped" j) Json.get_int in
    Ok (Bridge_overflow { bridge; dropped })
  | "admission-violation" ->
    let* flow = Result.bind (Json.field "flow" j) Json.get_string in
    let* misses = Result.bind (Json.field "misses" j) Json.get_int in
    Ok (Admission_violation { flow; misses })
  | other -> Error (Printf.sprintf "unknown verdict %S" other)

(* -------------------- classification -------------------- *)

(* Sources whose divergence span is still open when the trace ends: a
   [Crash] or [Desync] opens it, only [Resync] closes it — a [Rejoin]
   leaves the station listen-only, so recovery is not complete. *)
let unresynced events =
  let open_ = Hashtbl.create 8 in
  List.iter
    (function
      | Trace.Crash { source; _ } | Trace.Desync { source; _ } ->
        Hashtbl.replace open_ source ()
      | Trace.Resync { source; _ } -> Hashtbl.remove open_ source
      | _ -> ())
    events;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) open_ [])

let uid_of_subject s =
  match String.index_opt s '=' with
  | Some i -> (
    try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
    with _ -> -1)
  | None -> -1

let classify ~workload ~outcome events =
  let errors = D.errors (Trace_check.check_run ~workload ~outcome events) in
  let by_rule rule =
    List.filter (fun d -> String.equal d.D.rule_id rule) errors
  in
  match by_rule "TRC-SAFETY" with
  | d :: _ -> Safety_violation d.D.message
  | [] -> (
    match by_rule "TRC-DEADLINE" with
    | d :: _ as misses ->
      Deadline_miss
        {
          misses = List.length misses;
          first_uid = uid_of_subject d.D.subject;
        }
    | [] -> (
      match unresynced events with
      | source :: _ -> Failed_resync { source }
      | [] -> (
        match errors with
        | d :: _ ->
          Invariant_violation { rule = d.D.rule_id; message = d.D.message }
        | [] -> Pass)))

(* End-to-end classification of a federated run.  Shed and dropped
   chains are already excluded from [v_misses] by the driver; what is
   left is ranked most severe first: silent-loss-turned-structured
   (queue overflow), degraded-mode shedding (a chain abandoned at a
   hand-off), then chain deadline misses. *)
let classify_topo (r : Topo_driver.result) =
  let v = r.Topo_driver.r_verdict in
  match v.Topo_driver.v_bridge_drops with
  | d :: _ ->
    Bridge_overflow
      {
        bridge = d.Topo_driver.bd_bridge;
        dropped = List.length v.Topo_driver.v_bridge_drops;
      }
  | [] ->
    if v.Topo_driver.v_shed > 0 then
      let bridge =
        List.find_map
          (function
            | Topo_driver.Shed { sh_bridge; _ } -> Some sh_bridge
            | _ -> None)
          r.Topo_driver.r_events
        |> Option.value ~default:"?"
      in
      Handoff_loss { bridge; chains = v.Topo_driver.v_shed }
    else
      match v.Topo_driver.v_misses with
      | m :: _ ->
        Chain_deadline_miss
          {
            misses = List.length v.Topo_driver.v_misses;
            flow = m.Topo_driver.ms_flow;
          }
      | [] -> Pass
