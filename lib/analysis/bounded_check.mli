(** Pass 3: bounded exhaustive checker.

    For small tree shapes [(m, t)] this pass enumerates {e every}
    subset of active leaves, runs the executable search procedure
    ({!Rtnet_core.Tree_search}) on each, and checks the search against
    the closed-form analysis — brute force cross-validating the
    analytic core:

    - ["BND-XI-IMPL"]: the closed form (Eq. 10, {!Rtnet_core.Xi.exact})
      agrees with the independent divide-and-conquer recursion
      (Eq. 2–3, {!Rtnet_core.Xi.table}) at every [k];
    - ["BND-DETERMINISM"]: re-running a search on the same active set
      reproduces the identical probe-by-probe trace (the protocol's
      replicated-automaton determinism, Section 3.2);
    - ["BND-MUTEX"]: every active leaf is isolated exactly once, in
      left-to-right order — mutual exclusion of successful
      transmissions (safety, Section 4.2);
    - ["BND-XI"]: no search over [k] active leaves ever exceeds
      [ξ_k^t] non-transmission slots (problem P1, Section 4.1, Eq. 1);
    - ["BND-TIGHT"]: the maximum over all [C(t,k)] subsets {e attains}
      [ξ_k^t] — the bound is exact, and
      {!Rtnet_core.Xi.worst_case_subset} is a genuine witness;
    - ["BND-ZETA"] / ["BND-ARB-MUTEX"]: on an arbitrated medium
      ({!Rtnet_core.Tree_search.run_arbitrated}), every key assignment
      delivers each contender exactly once within [ζ_k^t] costly slots
      ({!Rtnet_core.Xi_arb}); for small [k] all [k!] key orders are
      enumerated and the worst observed cost must attain [ζ_k^t].

    On success each shape contributes one ["BND-OK"] info diagnostic
    recording how many subsets and searches were verified. *)

val check_shape : m:int -> leaves:int -> Diagnostic.t list
(** [check_shape ~m ~leaves] exhaustively checks the [leaves]-leaf
    balanced [m]-ary tree ([leaves] a positive power of [m]).  Runs
    [2^leaves] searches — keep [leaves] small (≤ 9 stays instant).
    @raise Invalid_argument on an invalid shape. *)

val sweep : ?max_m:int -> ?max_leaves:int -> unit -> Diagnostic.t list
(** [sweep ()] is {!check_shape} over every shape with
    [2 <= m <= max_m] (default 3) and [m <= leaves <= max_leaves]
    (default 9, [leaves] a power of [m]) — the small-case lattice the
    CI gate runs. *)
