module Ddcr_params = Rtnet_core.Ddcr_params
module Feasibility = Rtnet_core.Feasibility
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy
module Np_edf_fc = Rtnet_edf.Np_edf_fc
module D = Diagnostic

let s32 = "Section 3.2"
let s43 = "Section 4.3"

let structural p inst =
  match
    Ddcr_params.validate p ~num_sources:inst.Instance.num_sources
  with
  | Ok () -> []
  | Error e -> [ D.error ~rule_id:"CFG-PARAMS" ~subject:"params" ~paper_ref:s32 e ]

let horizon p inst =
  let horizon = Ddcr_params.horizon_classes p in
  let worst =
    List.fold_left
      (fun acc (c : Message.cls) -> max acc c.Message.cls_deadline)
      0 (Instance.classes inst)
  in
  if worst <= horizon then []
  else
    let msg =
      Printf.sprintf
        "scheduling horizon c*F = %d bit-times does not cover the largest \
         relative deadline %d: fresh messages of that class are shut out of \
         time trees%s"
        horizon worst
        (if p.Ddcr_params.theta > 0 then
           " (compressed time is on, so reft eventually catches up)"
         else " and compressed time is off (theta = 0)")
    in
    let mk = if p.Ddcr_params.theta > 0 then D.warning else D.error in
    [ mk ~rule_id:"CFG-HORIZON" ~subject:"time tree" ~paper_ref:s32 msg ]

let alpha p =
  let { Ddcr_params.alpha; class_width; _ } = p in
  let horizon = Ddcr_params.horizon_classes p in
  if alpha >= horizon && horizon > 0 then
    [
      D.error ~rule_id:"CFG-ALPHA" ~subject:"alpha" ~paper_ref:s32
        (Printf.sprintf
           "class-mapping offset alpha = %d is at least the scheduling \
            horizon %d: every message maps below deadline class 0"
           alpha horizon);
    ]
  else if alpha > class_width then
    [
      D.warning ~rule_id:"CFG-ALPHA" ~subject:"alpha" ~paper_ref:s32
        (Printf.sprintf
           "alpha = %d exceeds the class width c = %d: messages are steered \
            more than one full class early"
           alpha class_width);
    ]
  else []

let slot p inst =
  let x = inst.Instance.phy.Phy.slot_bits in
  if p.Ddcr_params.class_width < x then
    [
      D.warning ~rule_id:"CFG-SLOT" ~subject:"class width" ~paper_ref:s43
        (Printf.sprintf
           "deadline-class width c = %d bit-times is finer than the medium's \
            contention slot x = %d: classes are indistinguishable at slot \
            granularity"
           p.Ddcr_params.class_width x);
    ]
  else []

let burst p inst =
  let b = p.Ddcr_params.burst_bits in
  if b <= 0 then []
  else
    let smallest =
      List.fold_left
        (fun acc (c : Message.cls) ->
          min acc (Phy.tx_bits inst.Instance.phy c.Message.cls_bits))
        max_int (Instance.classes inst)
    in
    if smallest > b then
      [
        D.warning ~rule_id:"CFG-BURST" ~subject:"burst budget"
          ~paper_ref:"Section 5"
          (Printf.sprintf
             "bursting budget %d bits is smaller than the smallest on-wire \
              frame (%d bits): the budget can never carry a frame"
             b smallest);
      ]
    else []

(* Advisory: configurations this small are within reach of the
   explicit-state model checker, which proves the invariants for EVERY
   fault schedule within its bounds instead of sampling some.  Depth of
   an m-ary tree with q leaves = log_m q. *)
let tree_depth m leaves =
  let rec go d n = if n >= leaves then d else go (d + 1) (n * m) in
  go 0 1

let model_scope p inst =
  let z = inst.Instance.num_sources in
  let sd = tree_depth p.Ddcr_params.static_m p.Ddcr_params.static_leaves in
  if z <= 3 && sd <= 2 then
    [
      D.info ~rule_id:"CFG-MODEL" ~subject:inst.Instance.name
        ~paper_ref:"Section 4 correctness properties"
        (Printf.sprintf
           "%d source(s), static tree depth %d: small enough for exhaustive \
            bounded verification — run `ddcr_model check` to prove the \
            invariants over every fault schedule within the bounds"
           z sd);
    ]
  else []

let overload inst =
  let u = Instance.peak_utilization inst in
  if u > 1.0 then
    [
      D.error ~rule_id:"CFG-OVERLOAD" ~subject:inst.Instance.name
        ~paper_ref:"Section 2.2"
        (Printf.sprintf
           "peak offered load %.3f exceeds channel capacity: no protocol can \
            be feasible"
           u);
    ]
  else []

let feasibility ~strict ~oracle_ok p inst =
  let report = Feasibility.check p inst in
  if report.Feasibility.feasible then
    [
      D.info ~rule_id:"FEAS-MARGIN" ~subject:inst.Instance.name ~paper_ref:s43
        (Printf.sprintf
           "provably feasible: B_DDCR <= d(M) for every class (worst margin \
            %.3f)"
           report.Feasibility.worst_margin);
    ]
  else
    let mk =
      (* The paper bound is conservative (peak-load adversary, worst-case
         tree searches).  A workload the centralized NP-EDF oracle can
         schedule may still fail it; that gap is the provable price of
         distribution, a warning unless the caller demands proof. *)
      if strict || not oracle_ok then D.error else D.warning
    in
    List.filter_map
      (fun cr ->
        if cr.Feasibility.cr_feasible then None
        else
          let cls = cr.Feasibility.cr_cls in
          Some
            (mk ~rule_id:"FEAS-BDDCR" ~subject:cls.Message.cls_name
               ~paper_ref:s43
               (Printf.sprintf
                  "B_DDCR = %.0f bit-times exceeds d(M) = %d (r=%d u=%d v=%d, \
                   %.1f search slots)%s"
                  cr.Feasibility.cr_bound cls.Message.cls_deadline
                  cr.Feasibility.cr_r cr.Feasibility.cr_u cr.Feasibility.cr_v
                  cr.Feasibility.cr_search_slots
                  (if oracle_ok && not strict then
                     "; the centralized oracle schedules this workload, so \
                      the gap is the price of distribution"
                   else ""))))
      report.Feasibility.per_class

let check ?(strict = false) p inst =
  let structural = structural p inst in
  let shared = overload inst in
  if structural <> [] then structural @ shared
  else
    let oracle = Np_edf_fc.check inst in
    let oracle_diag =
      if oracle.Np_edf_fc.np_feasible then []
      else if Instance.peak_utilization inst > 1.0 then
        (* CFG-OVERLOAD already reports the root cause. *)
        []
      else
        [
          D.error ~rule_id:"CFG-ORACLE" ~subject:inst.Instance.name
            ~paper_ref:"Section 3.1"
            (Printf.sprintf
               "even the centralized NP-EDF oracle misses deadlines (margin \
                %.3f at t = %d): the workload is infeasible for any protocol \
                on this medium"
               oracle.Np_edf_fc.np_margin oracle.Np_edf_fc.critical_t);
        ]
    in
    shared @ horizon p inst @ alpha p @ slot p inst @ burst p inst
    @ model_scope p inst @ oracle_diag
    @ feasibility ~strict ~oracle_ok:oracle.Np_edf_fc.np_feasible p inst

(* Fault-plan lint ("CFG-FAULT"): campaign specs carrying a fault plan
   are checked against the horizon before any worker runs, plus
   heuristics for plans that are legal but probably not what the author
   meant. *)
let check_fault ?horizon plan =
  let subject = Rtnet_channel.Fault_plan.label plan in
  let ref_ = "fault model; Section 2.1 assumptions" in
  let validity =
    match Rtnet_channel.Fault_plan.validate ?horizon plan with
    | Ok () -> []
    | Error e -> [ D.error ~rule_id:"CFG-FAULT" ~subject ~paper_ref:ref_ e ]
  in
  let heuristics =
    (match plan.Rtnet_channel.Fault_plan.sp_garble with
    | Some (Rtnet_channel.Fault_plan.Gilbert_elliott { rate_good; rate_bad; _ })
      when rate_bad < rate_good ->
      [
        D.warning ~rule_id:"CFG-FAULT" ~subject ~paper_ref:ref_
          (Printf.sprintf
             "Gilbert–Elliott bad-state rate %.2f is below the good-state \
              rate %.2f — states are probably swapped"
             rate_bad rate_good);
      ]
    | _ -> [])
    @
    if plan.Rtnet_channel.Fault_plan.sp_misperception > 0.5 then
      [
        D.warning ~rule_id:"CFG-FAULT" ~subject ~paper_ref:ref_
          (Printf.sprintf
             "misperception rate %.2f makes the majority view wrong more \
              often than right; divergence recovery will follow the \
              misperceived consensus"
             plan.Rtnet_channel.Fault_plan.sp_misperception);
      ]
    else []
  in
  validity @ heuristics

(* Admission-trace lint ("CFG-ADMIT"): churn traces for the admission
   service are checked by replaying them through a scratch engine, so
   every diagnostic refers to the state the service would actually be
   in.  Two rules ride on the replay: re-adding a still-admitted flow
   id is a spec bug (the service will reject it, but the trace author
   almost certainly meant modify), and an accepted decision that
   leaves the binding class within one of its own frames of B_DDCR is
   running without slack — the next add of any consequence flips it. *)
let check_admit (tr : Rtnet_admit.Request.trace) =
  let module Req = Rtnet_admit.Request in
  let module Eng = Rtnet_admit.Engine in
  match
    Eng.create ~phy:tr.Req.tr_phy ~num_sources:tr.Req.tr_sources
      ~params:tr.Req.tr_params
  with
  | Error e ->
    [ D.error ~rule_id:"CFG-ADMIT" ~subject:"admit trace" ~paper_ref:s32 e ]
  | Ok eng ->
    let live : (string, Req.flow) Hashtbl.t = Hashtbl.create 32 in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    List.iteri
      (fun i req ->
        let id = Req.flow_id req in
        (match req with
        | Req.Add _ when Hashtbl.mem live id ->
          emit
            (D.error ~rule_id:"CFG-ADMIT-DUP" ~subject:id ~paper_ref:s43
               (Printf.sprintf
                  "request %d re-adds flow %s while it is still admitted \
                   (use modify to replace its parameters)"
                  i id))
        | _ -> ());
        let d = Eng.decide eng req in
        (match (d, req) with
        | Eng.Accepted _, (Req.Add f | Req.Modify f) ->
          Hashtbl.replace live id f
        | Eng.Accepted _, Req.Remove _ -> Hashtbl.remove live id
        | Eng.Rejected _, _ -> ());
        match d with
        | Eng.Accepted { binding = Some (cls, headroom) } ->
          let wire =
            match Hashtbl.find_opt live cls with
            | Some f -> Phy.tx_bits tr.Req.tr_phy f.Req.fl_bits
            | None -> 0
          in
          if headroom < float_of_int wire then
            emit
              (D.warning ~rule_id:"CFG-ADMIT-HEADROOM" ~subject:cls
                 ~paper_ref:s43
                 (Printf.sprintf
                    "after request %d (%s %s) the binding class %s has \
                     headroom %.1f bit-times — within one %d-bit on-wire \
                     frame of B_DDCR"
                    i (Req.op req) id cls headroom wire))
        | _ -> ())
      tr.Req.tr_requests;
    let summary =
      if !diags = [] then
        [
          D.info ~rule_id:"CFG-ADMIT" ~subject:"admit trace" ~paper_ref:s43
            (Printf.sprintf
               "replayed %d request(s): %d flow(s) admitted at the end, no \
                duplicate ids, binding headroom always at least one frame"
               (List.length tr.Req.tr_requests)
               (Eng.size eng));
        ]
      else []
    in
    List.rev !diags @ summary

(* Topology lint ("CFG-TOPO"): the federated counterpart of the
   per-segment passes.  Routing and acyclicity come first (elaboration
   presupposes them); on an elaborable topology every flow hop is
   priced against its decomposed budget and every bridge queue against
   the NP-EDF demand-bound oracle. *)
let check_topo ?policy topo =
  let module Topo = Rtnet_topology.Topo in
  let module Admit = Rtnet_topology.Admit in
  let module Bridge = Rtnet_topology.Bridge in
  let ref_topo = "Section 4.3, federated across segments" in
  let routing =
    List.map
      (fun e ->
        D.error ~rule_id:"CFG-TOPO" ~subject:topo.Topo.tp_name
          ~paper_ref:ref_topo e)
      (Topo.route_errors topo)
  in
  let cycle =
    match Topo.toposort topo with
    | Ok _ -> []
    | Error e ->
      [
        D.error ~rule_id:"CFG-TOPO" ~subject:topo.Topo.tp_name
          ~paper_ref:ref_topo e;
      ]
  in
  (* CFG-TOPO-FAULT: a fault plan referencing a station that exists on
     no segment (neither a declared source nor an incoming bridge
     station) is a spec bug, not a fault model. *)
  let faults =
    List.map
      (fun e ->
        D.error ~rule_id:"CFG-TOPO-FAULT" ~subject:topo.Topo.tp_name
          ~paper_ref:ref_topo e)
      (Topo.fault_errors topo)
  in
  if routing <> [] || cycle <> [] || faults <> [] then
    routing @ cycle @ faults
  else
    match Admit.elaborate ?policy topo with
    | Error e ->
      [
        D.error ~rule_id:"CFG-TOPO" ~subject:topo.Topo.tp_name
          ~paper_ref:ref_topo e;
      ]
    | Ok e ->
      let flow_diags =
        List.concat_map
          (fun (f : Admit.eflow) ->
            let name = f.Admit.ef_flow.Rtnet_topology.Topo.fl_name in
            (match f.Admit.ef_error with
            | Some err ->
              [
                D.error ~rule_id:"CFG-TOPO" ~subject:name ~paper_ref:ref_topo
                  err;
              ]
            | None -> [])
            @ List.concat
                (List.mapi
                   (fun i (h : Admit.hop) ->
                     if h.Admit.h_feasible then []
                     else
                       [
                         D.error ~rule_id:"CFG-TOPO" ~subject:name
                           ~paper_ref:ref_topo
                           (Printf.sprintf
                              "hop %d on segment %s: per-hop budget %d \
                               bit-times is below the hop's B_DDCR %.1f"
                              i h.Admit.h_segment h.Admit.h_budget
                              h.Admit.h_bound);
                       ])
                   f.Admit.ef_hops))
          e.Admit.e_flows
      in
      let bridge_diags =
        List.filter_map
          (fun (v : Bridge.verdict) ->
            if v.Bridge.bv_feasible then None
            else
              Some
                (D.error ~rule_id:"CFG-TOPO" ~subject:v.Bridge.bv_bridge
                   ~paper_ref:"Section 3.1 (NP-EDF demand bound)"
                   (if v.Bridge.bv_crash_window > 0 then
                      Printf.sprintf
                        "bridge queue overloaded once its worst crash window \
                         (%d bit-times) is accounted: %d forwarded classes, \
                         demand-bound margin %.3f > 1"
                        v.Bridge.bv_crash_window v.Bridge.bv_classes
                        v.Bridge.bv_margin
                    else
                      Printf.sprintf
                        "bridge queue overloaded: %d forwarded classes, \
                         demand-bound margin %.3f > 1 — the relay cannot \
                         sustain the aggregate flow demand under NP-EDF"
                        v.Bridge.bv_classes v.Bridge.bv_margin)))
          (Bridge.check ~fault_aware:true e)
      in
      (* CFG-TOPO-FAULT heuristic: a crash window parking a segment's
         only inbound bridge for longer than a crossing flow's whole
         end-to-end slack cannot be absorbed downstream — every held
         chain of that flow will miss or be shed. *)
      let fault_diags =
        List.concat_map
          (fun (b : Topo.bridge) ->
            let window =
              match Topo.find_segment topo b.Topo.br_to with
              | Some { Topo.sg_fault = Some sp; _ } ->
                Rtnet_channel.Fault_plan.max_outage sp
                  ~source:b.Topo.br_station
              | Some _ | None -> 0
            in
            let only_inbound =
              List.for_all
                (fun (b' : Topo.bridge) ->
                  b'.Topo.br_to <> b.Topo.br_to
                  || b'.Topo.br_name = b.Topo.br_name)
                topo.Topo.tp_bridges
            in
            if window = 0 || not only_inbound then []
            else
              List.filter_map
                (fun (f : Admit.eflow) ->
                  let crosses =
                    List.exists
                      (fun (h : Admit.hop) ->
                        match h.Admit.h_bridge with
                        | Some hb -> hb.Topo.br_name = b.Topo.br_name
                        | None -> false)
                      f.Admit.ef_hops
                  in
                  if not crosses then None
                  else
                    let slack =
                      f.Admit.ef_deadline
                      - List.fold_left
                          (fun acc (h : Admit.hop) ->
                            acc
                            + int_of_float (ceil h.Admit.h_bound)
                            + (match h.Admit.h_bridge with
                              | Some hb -> hb.Topo.br_latency
                              | None -> 0))
                          0 f.Admit.ef_hops
                    in
                    if window <= slack then None
                    else
                      Some
                        (D.warning ~rule_id:"CFG-TOPO-FAULT"
                           ~subject:f.Admit.ef_flow.Topo.fl_name
                           ~paper_ref:ref_topo
                           (Printf.sprintf
                              "crash window of %d bit-times parks bridge %s \
                               — segment %s's only inbound bridge — longer \
                               than the flow's end-to-end slack (%d \
                               bit-times); held chains cannot recover \
                               downstream"
                              window b.Topo.br_name b.Topo.br_to (max slack 0))))
                e.Admit.e_flows)
          topo.Topo.tp_bridges
      in
      (* Local (non-flow) infeasibility predates the topology: the
         segment's own workload already violates Section 4.3.  Warn
         rather than error — CFG-TOPO is about the federation. *)
      let hop_ids =
        List.concat_map
          (fun (f : Admit.eflow) ->
            List.map
              (fun (h : Admit.hop) ->
                (h.Admit.h_segment, h.Admit.h_cls.Message.cls_id))
              f.Admit.ef_hops)
          e.Admit.e_flows
      in
      let local_diags =
        List.concat_map
          (fun (seg, rep) ->
            List.filter_map
              (fun (cr : Feasibility.class_report) ->
                if
                  cr.Feasibility.cr_feasible
                  || List.mem
                       (seg, cr.Feasibility.cr_cls.Message.cls_id)
                       hop_ids
                then None
                else
                  Some
                    (D.warning ~rule_id:"CFG-TOPO" ~subject:seg
                       ~paper_ref:s43
                       (Printf.sprintf
                          "local class %s is infeasible on its own segment \
                           (B_DDCR %.1f > d = %d) independently of the \
                           federation"
                          cr.Feasibility.cr_cls.Message.cls_name
                          cr.Feasibility.cr_bound
                          cr.Feasibility.cr_cls.Message.cls_deadline)))
              rep.Feasibility.per_class)
          e.Admit.e_reports
      in
      let summary =
        if flow_diags = [] && bridge_diags = [] then
          [
            D.info ~rule_id:"CFG-TOPO" ~subject:topo.Topo.tp_name
              ~paper_ref:ref_topo
              (Printf.sprintf
                 "admitted: %d flow(s) across %d segment(s) (%d aggregate \
                  sources); every hop budget covers its B_DDCR and every \
                  bridge queue is schedulable"
                 (List.length topo.Topo.tp_flows)
                 (List.length topo.Topo.tp_segments)
                 (Topo.aggregate_sources topo));
          ]
        else []
      in
      flow_diags @ bridge_diags @ fault_diags @ local_diags @ summary
