(** Pass 1: static configuration linter.

    Validates a [Ddcr_params.t] × [Instance.t] pair {e before} any
    simulation, turning the preconditions scattered through Sections
    3.2 and 4.3 into named, citable rules:

    - ["CFG-PARAMS"]: structural parameter validity (tree shapes are
      powers of their branching degree, one non-empty ascending static
      index set per source, disjointness) — Section 3.2;
    - ["CFG-HORIZON"]: the scheduling horizon [c·F] covers the largest
      relative deadline; a shut-out class with compressed time off
      ([θ = 0]) is an error (the idleness pathology, Section 3.2),
      with [θ > 0] a warning;
    - ["CFG-ALPHA"]: the class-mapping offset [α] is sane relative to
      the class width and the horizon — Section 3.2;
    - ["CFG-SLOT"]: the deadline-class width [c] is no finer than the
      medium's contention-slot resolution [x] — Section 4.3;
    - ["CFG-BURST"]: a non-zero packet-bursting budget can actually
      carry at least one frame of the instance — Section 5;
    - ["CFG-OVERLOAD"]: peak offered load within channel capacity
      (above 1.0 {e no} protocol can be feasible) — Section 2.2;
    - ["CFG-ORACLE"]: the centralized NP-EDF oracle schedules the
      workload (a necessary condition for any medium-access protocol)
      — Section 3.1;
    - ["FEAS-BDDCR"]: the full [B_DDCR(s_i, M) ≤ d(M)] feasibility
      conditions of Section 4.3, one diagnostic per violating class.
      Because the paper bound is conservative, a violation on a
      workload the oracle {e can} schedule is reported as a warning
      (the provable price of distribution) unless [strict] is set;
    - ["FEAS-MARGIN"]: informational worst margin when all classes
      pass;
    - ["CFG-MODEL"]: informational nudge when the configuration is
      small enough (at most 3 sources, static tree depth at most 2)
      for the explicit-state model checker — [ddcr_model check] then
      proves the Section 4 invariants over {e every} fault schedule
      within its bounds instead of sampling some;
    - ["CFG-FAULT"]: fault-plan validity against the run horizon
      ({!check_fault}) plus heuristics for legal-but-suspicious plans
      (Gilbert–Elliott states swapped, majority misperception). *)

val check :
  ?strict:bool ->
  Rtnet_core.Ddcr_params.t ->
  Rtnet_workload.Instance.t ->
  Diagnostic.t list
(** [check p inst] lints the configuration; [strict] (default [false])
    promotes ["FEAS-BDDCR"] violations to errors even when the
    centralized oracle accepts the workload.  Never raises: parameter
    sets that [Ddcr_params.validate] rejects produce ["CFG-PARAMS"]
    errors and skip the passes that presuppose validity. *)

val check_fault :
  ?horizon:int -> Rtnet_channel.Fault_plan.spec -> Diagnostic.t list
(** [check_fault ?horizon plan] lints a fault plan (rule
    ["CFG-FAULT"]): {!Rtnet_channel.Fault_plan.validate} failures as
    errors — including crash windows extending past [horizon]
    (bit-times), whose station would never rejoin — plus warnings for
    suspicious parameterizations. *)

val check_admit : Rtnet_admit.Request.trace -> Diagnostic.t list
(** [check_admit tr] lints an admission churn trace by replaying it
    through a scratch {!Rtnet_admit.Engine}:

    - ["CFG-ADMIT"]: engine construction failure (invalid parameters
      for the trace's source count) as an error; one informational
      summary when the trace is clean;
    - ["CFG-ADMIT-DUP"]: an [add] of a flow id that is still admitted
      at that point of the trace is an error (the service will reject
      it; the author almost certainly meant [modify]);
    - ["CFG-ADMIT-HEADROOM"]: an accepted decision that leaves the
      binding class within one of its own on-wire frames of [B_DDCR]
      is a warning — admission is running without slack. *)

val check_topo :
  ?policy:Rtnet_core.Decompose.policy ->
  Rtnet_topology.Topo.t ->
  Diagnostic.t list
(** [check_topo topo] lints a multi-hop topology (rule ["CFG-TOPO"]):
    unroutable flows and a cyclic bridge graph are errors (reported
    granularly, one per problem); on an elaborable topology, a flow
    whose deadline decomposition fails, a per-hop budget below the
    hop's [B_DDCR], and a bridge whose forwarded-class demand fails
    the NP-EDF demand-bound oracle are errors; a segment-local class
    infeasible independently of the federation is a warning; an
    admitted topology yields one informational summary.  [policy] is
    the decomposition policy (default proportional).

    Fault rules (["CFG-TOPO-FAULT"]): a per-segment fault plan whose
    crash window names a station that is neither a declared source nor
    an incoming bridge station of its segment is an error
    ({!Rtnet_topology.Topo.fault_errors}); the bridge oracle runs
    fault-aware (the worst scheduled crash window is deducted from
    every forwarded deadline); and a crash window parking a segment's
    {e only} inbound bridge for longer than a crossing flow's whole
    end-to-end slack is a warning — no downstream re-decomposition can
    absorb it. *)
