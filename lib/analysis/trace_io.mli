(** Line-oriented serialization of {!Rtnet_core.Ddcr_trace} events.

    One event per line, [key=value] fields, so trace fixtures can be
    dumped from a run, stored, hand-mutated and re-checked by
    [ddcr_lint --check-trace].  The format:

    {v
idle t=0 phase=free
collision t=4096 phase=tts contenders=3
garbled t=8192 on_wire=4256
frame t=12448 finish=16704 source=2 uid=17 via=static dm=20000000
tts_begin t=4096 reft=0
tts_end t=16704 sent=true
sts_begin t=8192 leaf=3
sts_end t=16704
    v}

    [via] is one of [free], [attempt], [time], [static], [burst].  The
    optional [dm] field on [frame] lines records the message's absolute
    deadline so the timeliness check needs no separate workload; blank
    lines and [#] comments are ignored. *)

val output :
  ?deadline_of:(int -> int option) ->
  out_channel ->
  Rtnet_core.Ddcr_trace.event list ->
  unit
(** [output oc events] writes one line per event; [deadline_of uid]
    supplies the [dm] field of frame lines (omitted when [None] or not
    given). *)

val parse :
  string -> (Rtnet_core.Ddcr_trace.event list * (int * int) list, string) result
(** [parse text] reads a dump back: the events in file order plus the
    [(uid, dm)] pairs harvested from [frame] lines — ready to feed to
    {!Trace_check.check}.  Returns [Error] with a line-numbered message
    on the first malformed line. *)

val parse_file :
  string -> (Rtnet_core.Ddcr_trace.event list * (int * int) list, string) result
(** [parse_file path] is {!parse} on the contents of [path]. *)
