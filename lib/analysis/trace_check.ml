module Trace = Rtnet_core.Ddcr_trace
module Message = Rtnet_workload.Message
module Channel = Rtnet_channel.Channel
module Run = Rtnet_stats.Run
module D = Diagnostic

let safety_ref = "safety property <p.HRTDM>, Section 4.2"
let timeliness_ref = "timeliness property DM = T + d, Section 4.3"
let automaton_ref = "Section 3.2 automaton"
let accounting_ref = "slot accounting, Section 4.1"

let time_of = function
  | Trace.Idle_slot { time; _ }
  | Trace.Collision_slot { time; _ }
  | Trace.Garbled_slot { time; _ }
  | Trace.Frame_sent { time; _ }
  | Trace.Tts_begin { time; _ }
  | Trace.Tts_end { time; _ }
  | Trace.Sts_begin { time; _ }
  | Trace.Sts_end { time; _ }
  | Trace.Crash { time; _ }
  | Trace.Rejoin { time; _ }
  | Trace.Desync { time; _ }
  | Trace.Resync { time; _ } -> time

(* Fault epochs derivable from the trace itself: a source is degraded
   from its crash/desync until its resync (a rejoin keeps it degraded —
   it is listen-only until recovery).  Spans still open when the trace
   ends run to just past the last event. *)
let epochs_of_events events =
  let open_at = Hashtbl.create 4 in
  let spans = ref [] in
  let last = List.fold_left (fun acc e -> max acc (time_of e)) 0 events in
  List.iter
    (fun e ->
      match e with
      | Trace.Crash { time; source }
      | Trace.Desync { time; source }
      | Trace.Rejoin { time; source } ->
        if not (Hashtbl.mem open_at source) then
          Hashtbl.replace open_at source time
      | Trace.Resync { time; source } -> (
        match Hashtbl.find_opt open_at source with
        | Some s ->
          Hashtbl.remove open_at source;
          spans := (s, time) :: !spans
        | None -> ())
      | _ -> ())
    events;
  Hashtbl.iter (fun _ s -> spans := (s, last + 1) :: !spans) open_at;
  List.sort compare !spans

(* A deadline miss is excused (degradation, not a violation) iff a
   fault epoch overlaps the window from the earlier of frame start and
   deadline up to the frame's finish: a fault entirely after the frame
   finished cannot have delayed it. *)
let inside_epoch ~epochs ~t0 ~dm ~finish =
  let lo = min t0 dm in
  List.exists (fun (s, e) -> s < finish && lo < e) epochs

let subject_of_event i e = Format.asprintf "event %d (%a)" i Trace.pp_event e

(* Timestamps never decrease along the trace. *)
let check_order events =
  let _, _, diags =
    List.fold_left
      (fun (i, last, acc) e ->
        let t = time_of e in
        let acc =
          if t < last then
            D.error ~rule_id:"TRC-ORDER" ~subject:(subject_of_event i e)
              ~paper_ref:"slotted medium model, Section 2.1"
              (Printf.sprintf "timestamp %d precedes previous event at %d" t
                 last)
            :: acc
          else acc
        in
        (i + 1, max last t, acc))
      (0, min_int, []) events
  in
  List.rev diags

(* Mutual exclusion: successful transmissions never overlap. *)
let check_safety events =
  let frames =
    List.filter_map
      (function
        | Trace.Frame_sent { time; finish; source; uid; _ } ->
          Some (time, finish, source, uid)
        | _ -> None)
      events
  in
  let sorted = List.sort compare frames in
  let rec scan acc = function
    | (t1, f1, s1, u1) :: ((t2, _, s2, u2) :: _ as rest) ->
      let acc =
        if t2 < f1 then
          D.error ~rule_id:"TRC-SAFETY"
            ~subject:(Printf.sprintf "frames uid=%d uid=%d" u1 u2)
            ~paper_ref:safety_ref
            (Printf.sprintf
               "source %d's frame [%d, %d) overlaps source %d's frame \
                starting at %d"
               s1 t1 f1 s2 t2)
          :: acc
        else acc
      in
      scan acc rest
    | [ _ ] | [] -> List.rev acc
  in
  scan [] sorted

let check_deadlines ~deadlines ~epochs events =
  if deadlines = [] then []
  else
    let tbl = Hashtbl.create (List.length deadlines) in
    List.iter (fun (uid, dm) -> Hashtbl.replace tbl uid dm) deadlines;
    List.filter_map
      (function
        | Trace.Frame_sent { time; finish; source; uid; _ } -> (
          match Hashtbl.find_opt tbl uid with
          | Some dm when finish > dm ->
            let lateness =
              Printf.sprintf
                "source %d's frame finishes at %d, %d bit-times after its \
                 absolute deadline %d"
                source finish (finish - dm) dm
            in
            if inside_epoch ~epochs ~t0:time ~dm ~finish then
              Some
                (D.warning ~rule_id:"TRC-DEGRADED"
                   ~subject:(Printf.sprintf "uid=%d" uid)
                   ~paper_ref:timeliness_ref
                   (lateness
                  ^ " — inside a fault epoch, so degradation, not a \
                     timeliness violation"))
            else
              Some
                (D.error ~rule_id:"TRC-DEADLINE"
                   ~subject:(Printf.sprintf "uid=%d" uid)
                   ~paper_ref:timeliness_ref lateness)
          | Some _ -> None
          | None ->
            Some
              (D.warning ~rule_id:"TRC-UID"
                 ~subject:(Printf.sprintf "uid=%d" uid)
                 ~paper_ref:timeliness_ref
                 "frame uid does not appear in the workload; timeliness not \
                  checkable"))
        | _ -> None)
      events

(* One pass over the stream checking bracket structure, slot phases and
   frame vias against the automaton of Section 3.2. *)
let check_structure events =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let err i e msg =
    emit
      (D.error ~rule_id:"TRC-NESTING" ~subject:(subject_of_event i e)
         ~paper_ref:automaton_ref msg)
  in
  let bad_phase i e msg =
    emit
      (D.error ~rule_id:"TRC-PHASE" ~subject:(subject_of_event i e)
         ~paper_ref:automaton_ref msg)
  in
  let bad_via i e msg =
    emit
      (D.error ~rule_id:"TRC-VIA" ~subject:(subject_of_event i e)
         ~paper_ref:automaton_ref msg)
  in
  let in_tts = ref false and in_sts = ref false in
  let legal_slot_phase i e phase =
    match phase with
    | "tts" ->
      if not (!in_tts && not !in_sts) then
        bad_phase i e "slot in phase \"tts\" outside a time tree search"
    | "sts" ->
      if not !in_sts then
        bad_phase i e "slot in phase \"sts\" outside a static tree search"
    | "free" | "attempt" ->
      if !in_tts || !in_sts then
        bad_phase i e
          (Printf.sprintf "slot in phase %S inside a tree search" phase)
    | other -> bad_phase i e (Printf.sprintf "unknown phase %S" other)
  in
  List.iteri
    (fun i e ->
      match e with
      | Trace.Tts_begin _ ->
        if !in_tts then err i e "time tree search started inside another";
        in_tts := true;
        in_sts := false
      | Trace.Tts_end _ ->
        if not !in_tts then err i e "time tree search ended but none is open";
        if !in_sts then
          err i e "time tree search ended inside a static tree search";
        in_tts := false;
        in_sts := false
      | Trace.Sts_begin _ ->
        if not !in_tts then
          err i e "static tree search started outside a time tree search";
        if !in_sts then err i e "static tree search started inside another";
        in_sts := true
      | Trace.Sts_end _ ->
        if not !in_sts then
          err i e "static tree search ended but none is open";
        in_sts := false
      | Trace.Idle_slot { phase; _ } -> legal_slot_phase i e phase
      | Trace.Collision_slot { phase; contenders; _ } ->
        legal_slot_phase i e phase;
        if contenders < 2 then
          bad_phase i e
            (Printf.sprintf "collision slot with %d contender(s)" contenders)
      | Trace.Garbled_slot _ -> ()
      (* Fault events are orthogonal to the bracket structure: a crash,
         rejoin, desync or resync may land anywhere — the surviving
         synced sources carry the search on regardless. *)
      | Trace.Crash _ | Trace.Rejoin _ | Trace.Desync _ | Trace.Resync _ ->
        ()
      | Trace.Frame_sent { via; _ } -> (
        match via with
        | Trace.Free_csma | Trace.Open_attempt ->
          if !in_tts || !in_sts then
            bad_via i e
              (Format.asprintf "%a frame inside a tree search" Trace.pp_via via)
        | Trace.Time_tree ->
          if not (!in_tts && not !in_sts) then
            bad_via i e "time-tree frame outside a time tree search"
        | Trace.Static_tree ->
          if not !in_sts then
            bad_via i e "static-tree frame outside a static tree search"
        | Trace.Bursting -> ()))
    events;
  let truncated name =
    emit
      (D.warning ~rule_id:"TRC-TRUNCATED" ~subject:name
         ~paper_ref:automaton_ref
         (name ^ " still open when the trace ends (horizon truncation)"))
  in
  if !in_sts then truncated "static tree search";
  if !in_tts then truncated "time tree search";
  List.rev !diags

let check_accounting ~stats ~completions events =
  match (stats, completions) with
  | None, None -> []
  | _ ->
    let s = Trace.summarize events in
    let busy =
      List.fold_left
        (fun acc e ->
          match e with
          | Trace.Frame_sent { time; finish; _ } -> acc + (finish - time)
          | _ -> acc)
        0 events
    in
    let mismatch subject trace_v stats_v =
      if trace_v = stats_v then None
      else
        Some
          (D.error ~rule_id:"TRC-ACCOUNT" ~subject ~paper_ref:accounting_ref
             (Printf.sprintf "trace counts %d but the channel reports %d"
                trace_v stats_v))
    in
    let vs_stats =
      match stats with
      | None -> []
      | Some st ->
        let idle =
          List.fold_left (fun acc (_, n) -> acc + n) 0 s.Trace.idle_by_phase
        in
        List.filter_map Fun.id
          [
            mismatch "idle slots" idle st.Channel.idle_slots;
            mismatch "collision slots" s.Trace.collision_slots
              st.Channel.collision_slots;
            mismatch "garbled frames" s.Trace.garbled_slots
              st.Channel.garbled_count;
            mismatch "frames" s.Trace.frames st.Channel.tx_count;
            mismatch "busy bit-times" busy st.Channel.busy_bits;
          ]
    in
    let vs_completions =
      match completions with
      | None -> []
      | Some n -> Option.to_list (mismatch "completions" s.Trace.frames n)
    in
    vs_stats @ vs_completions

let check ?(workload = []) ?(deadlines = []) ?(fault_epochs = []) ?stats
    ?completions events =
  let deadlines =
    deadlines
    @ List.map (fun m -> (m.Message.uid, Message.abs_deadline m)) workload
  in
  let epochs =
    List.sort compare (fault_epochs @ epochs_of_events events)
  in
  check_order events @ check_safety events
  @ check_deadlines ~deadlines ~epochs events
  @ check_structure events
  @ check_accounting ~stats ~completions events

let check_run ~workload ~outcome events =
  let fault_epochs =
    match outcome.Run.faults with
    | Some fs -> fs.Run.f_epochs
    | None -> []
  in
  check ~workload ~fault_epochs ?stats:outcome.Run.channel
    ~completions:(List.length outcome.Run.completions)
    events
