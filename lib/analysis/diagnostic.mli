(** Structured diagnostics shared by every analysis pass.

    All three passes of [rtnet.analysis] — the configuration linter
    ({!Config_lint}), the trace invariant checker ({!Trace_check}) and
    the bounded exhaustive checker ({!Bounded_check}) — report their
    findings as values of this one type, so callers (the [ddcr_lint]
    CLI, the test suite, the [@lint] alias) can filter, print and turn
    them into exit codes uniformly.

    Every diagnostic cites the paper section or property it enforces
    ([paper_ref]), keeping the correspondence between the executable
    check and the correctness proof explicit. *)

type severity = Error | Warning | Info

type t = {
  rule_id : string;  (** stable machine-readable rule name, e.g. ["TRC-SAFETY"] *)
  severity : severity;
  subject : string;  (** what the diagnostic is about (class, event, shape) *)
  message : string;  (** human-readable explanation *)
  paper_ref : string;  (** paper section / property it enforces *)
}

val make :
  rule_id:string ->
  severity:severity ->
  subject:string ->
  paper_ref:string ->
  string ->
  t
(** [make ~rule_id ~severity ~subject ~paper_ref message] builds a
    diagnostic. *)

val error : rule_id:string -> subject:string -> paper_ref:string -> string -> t
(** [error ~rule_id ~subject ~paper_ref msg] is {!make} at {!Error}. *)

val warning :
  rule_id:string -> subject:string -> paper_ref:string -> string -> t
(** [warning ~rule_id ~subject ~paper_ref msg] is {!make} at {!Warning}. *)

val info : rule_id:string -> subject:string -> paper_ref:string -> string -> t
(** [info ~rule_id ~subject ~paper_ref msg] is {!make} at {!Info}. *)

val severity_rank : severity -> int
(** [severity_rank s] orders severities: [Info = 0 < Warning < Error]. *)

val count : severity -> t list -> int
(** [count s ds] is the number of diagnostics of severity [s]. *)

val errors : t list -> t list
(** [errors ds] keeps only the {!Error} diagnostics. *)

val has_errors : t list -> bool
(** [has_errors ds] is [errors ds <> []]. *)

val exit_code : t list -> int
(** [exit_code ds] is [1] if any diagnostic is an {!Error}, else [0] —
    the CI contract of [ddcr_lint]. *)

val pp_severity : Format.formatter -> severity -> unit
(** [pp_severity fmt s] prints ["error"], ["warning"] or ["info"]. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt d] prints one diagnostic on one line:
    [severity \[rule_id\] subject: message (paper_ref)]. *)

val pp_report : Format.formatter -> t list -> unit
(** [pp_report fmt ds] prints every diagnostic (most severe first,
    original order within a severity) followed by a one-line tally. *)
