(** Pass 2: trace invariant checker.

    Mechanically verifies a {!Rtnet_core.Ddcr_trace} event stream
    against the proof obligations of Section 4 — the checks a referee
    would run over an execution, applied to every simulated one:

    - ["TRC-ORDER"]: event timestamps are non-decreasing (the slotted
      medium model, Section 2.1);
    - ["TRC-SAFETY"]: no two [Frame_sent] intervals overlap on the wire
      — the mutual-exclusion safety property of [<p.HRTDM>]
      (Section 4.2);
    - ["TRC-DEADLINE"]: every frame finishes by its absolute deadline
      [DM = T + d] — the timeliness property (Section 4.3); requires
      the workload (or an explicit uid → deadline map); frames whose
      uid is unknown raise ["TRC-UID"] warnings;
    - ["TRC-NESTING"]: [Tts_begin]/[Tts_end] are balanced and
      unnested, [Sts_*] brackets lie strictly inside a TTs
      (Section 3.2's automaton structure); brackets left open by a
      horizon-truncated run are reported as ["TRC-TRUNCATED"] warnings;
    - ["TRC-PHASE"]: idle and collision slots carry a legal phase name
      consistent with the bracket they occur in ("tts" only inside a
      TTs, "sts" only inside an STs, "free"/"attempt" outside both);
    - ["TRC-VIA"]: each frame's transmission path matches its bracket
      context (e.g. a [Static_tree] frame inside an STs);
    - ["TRC-ACCOUNT"]: the trace's slot accounting reconciles exactly
      with the channel statistics (idle, collision, garbled and frame
      counts, busy bit-times) and, when given, the completion count
      (Section 4.1's accounting of the medium). *)

val check :
  ?workload:Rtnet_workload.Message.t list ->
  ?deadlines:(int * int) list ->
  ?stats:Rtnet_channel.Channel.stats ->
  ?completions:int ->
  Rtnet_core.Ddcr_trace.event list ->
  Diagnostic.t list
(** [check events] runs every structural invariant; [workload] (or raw
    [deadlines], [(uid, absolute_deadline)] pairs — both may be given,
    [workload] wins on clashes) enables the timeliness check, [stats]
    the channel reconciliation and [completions] the completion-count
    reconciliation. *)

val check_run :
  workload:Rtnet_workload.Message.t list ->
  outcome:Rtnet_stats.Run.outcome ->
  Rtnet_core.Ddcr_trace.event list ->
  Diagnostic.t list
(** [check_run ~workload ~outcome events] is {!check} wired to a
    completed simulation: deadlines from the workload, channel
    statistics and completion count from the outcome. *)
