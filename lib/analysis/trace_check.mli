(** Pass 2: trace invariant checker.

    Mechanically verifies a {!Rtnet_core.Ddcr_trace} event stream
    against the proof obligations of Section 4 — the checks a referee
    would run over an execution, applied to every simulated one:

    - ["TRC-ORDER"]: event timestamps are non-decreasing (the slotted
      medium model, Section 2.1);
    - ["TRC-SAFETY"]: no two [Frame_sent] intervals overlap on the wire
      — the mutual-exclusion safety property of [<p.HRTDM>]
      (Section 4.2);
    - ["TRC-DEADLINE"]: every frame finishes by its absolute deadline
      [DM = T + d] — the timeliness property (Section 4.3); requires
      the workload (or an explicit uid → deadline map); frames whose
      uid is unknown raise ["TRC-UID"] warnings;
    - ["TRC-NESTING"]: [Tts_begin]/[Tts_end] are balanced and
      unnested, [Sts_*] brackets lie strictly inside a TTs
      (Section 3.2's automaton structure); brackets left open by a
      horizon-truncated run are reported as ["TRC-TRUNCATED"] warnings;
    - ["TRC-PHASE"]: idle and collision slots carry a legal phase name
      consistent with the bracket they occur in ("tts" only inside a
      TTs, "sts" only inside an STs, "free"/"attempt" outside both);
    - ["TRC-VIA"]: each frame's transmission path matches its bracket
      context (e.g. a [Static_tree] frame inside an STs);
    - ["TRC-ACCOUNT"]: the trace's slot accounting reconciles exactly
      with the channel statistics (idle, collision, garbled and frame
      counts, busy bit-times) and, when given, the completion count
      (Section 4.1's accounting of the medium).

    {b Fault epochs.}  Under a fault plan the timeliness proof's
    premises (all stations up, consistent observation) do not hold
    everywhere.  The checker unions the epochs given by the caller
    (from {!Rtnet_stats.Run.fault_stats}) with epochs it derives from
    the trace itself ([Crash]/[Desync] opens a span for the source,
    [Resync] closes it; a [Rejoin] keeps it open — the station is
    listen-only until it resynchronizes).  A deadline miss whose
    window overlaps an epoch is reported as a ["TRC-DEGRADED"]
    {e warning} — measured degradation — rather than a
    ["TRC-DEADLINE"] error; safety (["TRC-SAFETY"]) is never relaxed:
    mutual exclusion must hold under every fault plan. *)

val check :
  ?workload:Rtnet_workload.Message.t list ->
  ?deadlines:(int * int) list ->
  ?fault_epochs:(int * int) list ->
  ?stats:Rtnet_channel.Channel.stats ->
  ?completions:int ->
  Rtnet_core.Ddcr_trace.event list ->
  Diagnostic.t list
(** [check events] runs every structural invariant; [workload] (or raw
    [deadlines], [(uid, absolute_deadline)] pairs — both may be given,
    [workload] wins on clashes) enables the timeliness check, [stats]
    the channel reconciliation and [completions] the completion-count
    reconciliation.  [fault_epochs] are [(start, finish)] spans (e.g.
    {!Rtnet_stats.Run.fault_stats.f_epochs}) inside which deadline
    misses downgrade to ["TRC-DEGRADED"] warnings; epochs derived from
    the trace's own fault events are always added. *)

val check_run :
  workload:Rtnet_workload.Message.t list ->
  outcome:Rtnet_stats.Run.outcome ->
  Rtnet_core.Ddcr_trace.event list ->
  Diagnostic.t list
(** [check_run ~workload ~outcome events] is {!check} wired to a
    completed simulation: deadlines from the workload, channel
    statistics and completion count from the outcome, fault epochs
    from the outcome's [faults] statistics (if the run used a fault
    plan). *)
