(** Run-outcome oracle: one verdict per simulated run.

    The chaos search ([rtnet.chaos]) and the trace checker share this
    verdict vocabulary: a run either upholds the paper's properties
    ({!Pass}) or fails in one of the ways the correctness proofs rule
    out.  {!classify} reduces a completed run — its trace, outcome and
    workload — to a verdict by running {!Trace_check.check_run} and
    inspecting the divergence-recovery bookkeeping; exceptions the
    simulator raises ({!Rtnet_mac.Harness.Mismatch}, safety failures)
    are mapped to verdicts by the caller via the dedicated
    constructors.

    Verdicts carry enough detail to print, but equality for the
    shrinker is {e by class} ({!same_class}): a minimized plan must
    reproduce the same {e kind} of violation, not the same slot
    numbers. *)

type verdict =
  | Pass  (** every oracle holds *)
  | Safety_violation of string
      (** mutual exclusion broken (TRC-SAFETY, or the harness's
          transmission-log reconciliation failed) — never acceptable
          under any fault plan (Section 4.2) *)
  | Deadline_miss of { misses : int; first_uid : int }
      (** a frame finished after [DM] {e outside} every fault epoch
          (TRC-DEADLINE errors; epoch-overlapping misses are measured
          degradation, not violations) *)
  | Failed_resync of { source : int }
      (** a station was still desynchronized (or down-and-rejoined
          without recovering) when the run ended — divergence recovery
          did not complete *)
  | Invariant_violation of { rule : string; message : string }
      (** any other trace-checker [Error] (TRC-ORDER, TRC-ACCOUNT, …) *)
  | Harness_mismatch of string
      (** {!Rtnet_mac.Harness.Mismatch}: replicas disagreed with the
          wire in a way the harness cross-check caught *)
  | Run_crash of string
      (** the simulator itself raised (protocol violation, assertion)
          — always a finding *)
  | Chain_deadline_miss of { misses : int; flow : string }
      (** a federated chain completed its last hop after the end-to-end
          deadline [T0 + d(M)] (shed / overflow-dropped chains are not
          counted here — see the next two) *)
  | Handoff_loss of { bridge : string; chains : int }
      (** chains abandoned at a cross-segment hand-off: degraded-mode
          operation shed them because their remaining budgets no
          longer decomposed after a bridge crash *)
  | Bridge_overflow of { bridge : string; dropped : int }
      (** a crashed bridge's bounded store-and-forward queue
          overflowed and dropped held messages (structured loss) *)
  | Admission_violation of { flow : string; misses : int }
      (** the admission engine accepted a flow set as feasible (every
          [B_DDCR] within its deadline) yet simulating exactly that set
          misses deadlines — the accept-then-violate bug class
          [rtnet.admit]'s chaos mode hunts; [flow] is the first missing
          class *)

val label : verdict -> string
(** [label v] is the verdict's class name: ["pass"],
    ["safety-violation"], ["deadline-miss"], ["failed-resync"],
    ["invariant-violation"], ["harness-mismatch"], ["run-crash"],
    ["chain-deadline-miss"], ["handoff-loss"], ["bridge-overflow"],
    ["admission-violation"]. *)

val describe : verdict -> string
(** [describe v] is a one-line human-readable rendering including the
    payload. *)

val is_failure : verdict -> bool
(** [is_failure v] iff [v <> Pass]. *)

val same_class : verdict -> verdict -> bool
(** [same_class a b] iff the verdicts have the same constructor — the
    shrinker's preservation criterion. *)

val to_json : verdict -> Rtnet_util.Json.t
(** Canonical encoding (fixed key order; replay artifacts embed it). *)

val of_json : Rtnet_util.Json.t -> (verdict, string) result

val classify :
  workload:Rtnet_workload.Message.t list ->
  outcome:Rtnet_stats.Run.outcome ->
  Rtnet_core.Ddcr_trace.event list ->
  verdict
(** [classify ~workload ~outcome events] runs
    {!Trace_check.check_run} and reduces the diagnostics to one
    verdict, most severe first: safety, then out-of-epoch deadline
    misses, then incomplete divergence recovery (a [Crash]/[Desync]
    with no matching [Resync] by the end of the trace), then any other
    checker error.  Warnings (degraded epochs, truncated brackets)
    never fail a run. *)

val classify_topo : Rtnet_topology.Driver.result -> verdict
(** [classify_topo r] reduces a federated end-to-end run
    ({!Rtnet_topology.Driver.run}) to one verdict, most severe first:
    {!Bridge_overflow} (a crashed bridge's bounded store-and-forward
    queue lost messages), {!Handoff_loss} (chains shed under
    degraded-mode operation), {!Chain_deadline_miss} (delivered chains
    that overran their end-to-end deadline; shed and dropped chains
    are accounted by the former two, never double-counted), else
    {!Pass}.  Exceptions the federation raises (harness mismatch,
    protocol violation) are mapped by the caller, as with
    {!classify}. *)
