module Trace = Rtnet_core.Ddcr_trace

let via_name = function
  | Trace.Free_csma -> "free"
  | Trace.Open_attempt -> "attempt"
  | Trace.Time_tree -> "time"
  | Trace.Static_tree -> "static"
  | Trace.Bursting -> "burst"

let via_of_name = function
  | "free" -> Some Trace.Free_csma
  | "attempt" -> Some Trace.Open_attempt
  | "time" -> Some Trace.Time_tree
  | "static" -> Some Trace.Static_tree
  | "burst" -> Some Trace.Bursting
  | _ -> None

let output ?(deadline_of = fun _ -> None) oc events =
  let line fmt = Printf.fprintf oc (fmt ^^ "\n") in
  List.iter
    (fun e ->
      match e with
      | Trace.Idle_slot { time; phase } -> line "idle t=%d phase=%s" time phase
      | Trace.Collision_slot { time; phase; contenders } ->
        line "collision t=%d phase=%s contenders=%d" time phase contenders
      | Trace.Garbled_slot { time; on_wire } ->
        line "garbled t=%d on_wire=%d" time on_wire
      | Trace.Frame_sent { time; finish; source; uid; via } -> (
        match deadline_of uid with
        | Some dm ->
          line "frame t=%d finish=%d source=%d uid=%d via=%s dm=%d" time
            finish source uid (via_name via) dm
        | None ->
          line "frame t=%d finish=%d source=%d uid=%d via=%s" time finish
            source uid (via_name via))
      | Trace.Tts_begin { time; reft } -> line "tts_begin t=%d reft=%d" time reft
      | Trace.Tts_end { time; sent } -> line "tts_end t=%d sent=%b" time sent
      | Trace.Sts_begin { time; time_leaf } ->
        line "sts_begin t=%d leaf=%d" time time_leaf
      | Trace.Sts_end { time } -> line "sts_end t=%d" time
      | Trace.Crash { time; source } -> line "crash t=%d source=%d" time source
      | Trace.Rejoin { time; source } ->
        line "rejoin t=%d source=%d" time source
      | Trace.Desync { time; source } ->
        line "desync t=%d source=%d" time source
      | Trace.Resync { time; source } ->
        line "resync t=%d source=%d" time source)
    events

(* Parsing: every line is a tag followed by key=value fields. *)

let fields_of tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        Some
          ( String.sub tok 0 i,
            String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> None)
    tokens

let parse_line ~lineno line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) ("line %d: " ^^ fmt) lineno in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | tag :: rest when String.length tag > 0 && tag.[0] = '#' ->
    ignore rest;
    Ok None
  | tag :: rest -> (
    let fields = fields_of rest in
    let str key =
      match List.assoc_opt key fields with
      | Some v -> Ok v
      | None -> fail "%s line misses field %S" tag key
    in
    let int key =
      Result.bind (str key) (fun v ->
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> fail "field %s=%S is not an integer" key v)
    in
    let ( let* ) = Result.bind in
    match tag with
    | "idle" ->
      let* time = int "t" in
      let* phase = str "phase" in
      Ok (Some (Trace.Idle_slot { time; phase }, None))
    | "collision" ->
      let* time = int "t" in
      let* phase = str "phase" in
      let* contenders = int "contenders" in
      Ok (Some (Trace.Collision_slot { time; phase; contenders }, None))
    | "garbled" ->
      let* time = int "t" in
      let* on_wire = int "on_wire" in
      Ok (Some (Trace.Garbled_slot { time; on_wire }, None))
    | "frame" ->
      let* time = int "t" in
      let* finish = int "finish" in
      let* source = int "source" in
      let* uid = int "uid" in
      let* via_s = str "via" in
      let* via =
        match via_of_name via_s with
        | Some v -> Ok v
        | None -> fail "unknown via %S" via_s
      in
      let dm =
        match List.assoc_opt "dm" fields with
        | Some v -> Option.map (fun d -> (uid, d)) (int_of_string_opt v)
        | None -> None
      in
      Ok (Some (Trace.Frame_sent { time; finish; source; uid; via }, dm))
    | "tts_begin" ->
      let* time = int "t" in
      let* reft = int "reft" in
      Ok (Some (Trace.Tts_begin { time; reft }, None))
    | "tts_end" ->
      let* time = int "t" in
      let* sent_s = str "sent" in
      let* sent =
        match bool_of_string_opt sent_s with
        | Some b -> Ok b
        | None -> fail "field sent=%S is not a boolean" sent_s
      in
      Ok (Some (Trace.Tts_end { time; sent }, None))
    | "sts_begin" ->
      let* time = int "t" in
      let* time_leaf = int "leaf" in
      Ok (Some (Trace.Sts_begin { time; time_leaf }, None))
    | "sts_end" ->
      let* time = int "t" in
      Ok (Some (Trace.Sts_end { time }, None))
    | "crash" ->
      let* time = int "t" in
      let* source = int "source" in
      Ok (Some (Trace.Crash { time; source }, None))
    | "rejoin" ->
      let* time = int "t" in
      let* source = int "source" in
      Ok (Some (Trace.Rejoin { time; source }, None))
    | "desync" ->
      let* time = int "t" in
      let* source = int "source" in
      Ok (Some (Trace.Desync { time; source }, None))
    | "resync" ->
      let* time = int "t" in
      let* source = int "source" in
      Ok (Some (Trace.Resync { time; source }, None))
    | other -> fail "unknown event tag %S" other)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno events deadlines = function
    | [] -> Ok (List.rev events, List.rev deadlines)
    | line :: rest -> (
      match parse_line ~lineno line with
      | Error e -> Error e
      | Ok None -> go (lineno + 1) events deadlines rest
      | Ok (Some (e, dm)) ->
        go (lineno + 1) (e :: events)
          (match dm with Some d -> d :: deadlines | None -> deadlines)
          rest)
  in
  go 1 [] [] lines

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
