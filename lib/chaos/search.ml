module Prng = Rtnet_util.Prng
module Json = Rtnet_util.Json
module Spec = Rtnet_campaign.Spec
module Pool = Rtnet_campaign.Pool
module Oracle = Rtnet_analysis.Oracle
module Registry = Rtnet_telemetry.Registry
module Sink = Rtnet_telemetry.Sink
module Instance = Rtnet_workload.Instance

let ( let* ) = Result.bind

type config = {
  s_candidate : Candidate.config;
  s_seed : int;
  s_count : int;
  s_budget : Generator.budget;
  s_jobs : int;
  s_watchdog_s : float option;
  s_retries : int;
  s_backoff_s : float;
  s_wall_budget_s : float option;
  s_hang_ms : int option;
}

let default_config candidate =
  {
    s_candidate = candidate;
    s_seed = 1;
    s_count = 64;
    s_budget = Generator.default_budget;
    s_jobs = 2;
    s_watchdog_s = Some 30.;
    s_retries = 1;
    s_backoff_s = 0.1;
    s_wall_budget_s = None;
    s_hang_ms = None;
  }

(* -------------------- config codec -------------------- *)

let config_to_json c =
  Json.Obj
    ([
       ("scenario", Spec.scenario_to_json c.s_candidate.Candidate.cf_scenario);
       ("horizon_ms", Json.Int c.s_candidate.Candidate.cf_horizon_ms);
       ("seed", Json.Int c.s_seed);
       ("candidates", Json.Int c.s_count);
       ("budget", Generator.budget_to_json c.s_budget);
       ("jobs", Json.Int c.s_jobs);
     ]
    @ (match c.s_watchdog_s with
      | None -> []
      | Some w -> [ ("watchdog_s", Json.Float w) ])
    @ [
        ("retries", Json.Int c.s_retries);
        ("backoff_s", Json.Float c.s_backoff_s);
      ]
    @
    match c.s_wall_budget_s with
    | None -> []
    | Some w -> [ ("wall_budget_s", Json.Float w) ])

let opt j key decode default =
  match Json.member key j with None -> Ok default | Some v -> decode v

let opt_some j key decode =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (decode v)

let config_of_json j =
  let* scenario = Result.bind (Json.field "scenario" j) Spec.scenario_of_json in
  let* horizon_ms = Result.bind (Json.field "horizon_ms" j) Json.get_int in
  let* seed = opt j "seed" Json.get_int 1 in
  let* count = opt j "candidates" Json.get_int 64 in
  let* budget =
    match Json.member "budget" j with
    | None -> Ok Generator.default_budget
    | Some b -> Generator.budget_of_json b
  in
  let* jobs = opt j "jobs" Json.get_int 2 in
  let* watchdog_s = opt_some j "watchdog_s" Json.get_float in
  let* retries = opt j "retries" Json.get_int 1 in
  let* backoff_s = opt j "backoff_s" Json.get_float 0.1 in
  let* wall_budget_s = opt_some j "wall_budget_s" Json.get_float in
  if count < 1 then Error "candidates < 1"
  else if jobs < 1 then Error "jobs < 1"
  else
    Ok
      {
        s_candidate =
          { Candidate.cf_scenario = scenario; cf_horizon_ms = horizon_ms; cf_params = None };
        s_seed = seed;
        s_count = count;
        s_budget = budget;
        s_jobs = jobs;
        s_watchdog_s = watchdog_s;
        s_retries = retries;
        s_backoff_s = backoff_s;
        s_wall_budget_s = wall_budget_s;
        s_hang_ms = None;
      }

let load_config path =
  let* j = Json.parse_file path in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (config_of_json j)

(* -------------------- candidates -------------------- *)

(* Domain separation mirrors the campaign's Seeding module: the trace
   and fault seeds of candidate [i] come from disjoint derive chains
   of the root seed, and the generator's plan stream uses its own tag
   — no coordinate ever shares a stream prefix with another. *)
let trace_seed_of config i = Prng.derive (Prng.derive config.s_seed 1) i
let fault_seed_of config i = Prng.derive (Prng.derive config.s_seed 2) i

let candidate_of config i =
  let horizon = config.s_candidate.Candidate.cf_horizon_ms * 1_000_000 in
  let inst = Spec.instance config.s_candidate.Candidate.cf_scenario in
  let sources = inst.Instance.num_sources in
  {
    Candidate.cd_plan =
      Generator.sample ~budget:config.s_budget ~seed:config.s_seed ~index:i
        ~horizon ~sources;
    cd_trace_seed = trace_seed_of config i;
    cd_fault_seed = fault_seed_of config i;
  }

(* -------------------- search -------------------- *)

type finding = {
  fi_index : int;
  fi_candidate : Candidate.t;
  fi_report : Candidate.report;
}

type gave_up = { gu_index : int; gu_attempts : int; gu_reason : string }

type result = {
  r_examined : int;
  r_findings : finding list;
  r_task_errors : (int * string) list;
  r_gave_up : gave_up list;
  r_exhausted : bool;
}

(* Shared supervised pool loop: execute [task] over the indexed
   candidate array, classify completions with [Oracle.is_failure],
   and collect failures as (index, report) pairs — the plain and
   topology searches only differ in the candidate type, which this
   driver never inspects. *)
let drive ?registry ~sink ~log ~jobs ~watchdog_s ~retries ~backoff_s
    ~wall_budget_s ~count:n ~task candidates =
  let count key = Option.iter (fun r -> Registry.incr r key) registry in
  let t0 = Unix.gettimeofday () in
  let should_stop () =
    match wall_budget_s with
    | None -> false
    | Some b -> Unix.gettimeofday () -. t0 >= b
  in
  let stopped_early = ref false in
  let failures = ref [] in
  let task_errors = ref [] in
  let gave_up = ref [] in
  let examined = ref 0 in
  let on_event = function
    | Pool.Completed (pos, timing, report) ->
      incr examined;
      count "chaos/candidates";
      let ok = not (Oracle.is_failure report.Candidate.rp_verdict) in
      sink.Sink.worker_cell ~worker:timing.Pool.worker
        ~key:(Printf.sprintf "cand%d" pos)
        ~t0:timing.Pool.t0 ~t1:timing.Pool.t1 ~ok;
      if not ok then begin
        count "chaos/findings";
        failures := (pos, report) :: !failures;
        log
          (Printf.sprintf "candidate %d: %s" pos
             (Oracle.describe report.Candidate.rp_verdict))
      end
    | Pool.Task_error (pos, timing, e) ->
      incr examined;
      count "chaos/candidates";
      count "chaos/task_errors";
      sink.Sink.worker_cell ~worker:timing.Pool.worker
        ~key:(Printf.sprintf "cand%d" pos)
        ~t0:timing.Pool.t0 ~t1:timing.Pool.t1 ~ok:false;
      task_errors := (pos, e) :: !task_errors;
      log (Printf.sprintf "candidate %d: task error: %s" pos e)
    | Pool.Gave_up { position; attempts; reason } ->
      incr examined;
      count "chaos/candidates";
      count "chaos/gave_up";
      gave_up :=
        {
          gu_index = position;
          gu_attempts = attempts;
          gu_reason = Pool.reason_text reason;
        }
        :: !gave_up;
      log
        (Printf.sprintf "candidate %d: gave up after %d attempt(s): %s"
           position attempts (Pool.reason_text reason))
  in
  let launched =
    Pool.supervise ~jobs ?watchdog_s ~retries ~backoff_s
      ~on_retry:(fun ~position ~attempt ~reason ->
        count "chaos/retries";
        log
          (Printf.sprintf "candidate %d: retry %d (%s)" position attempt reason))
      ~should_stop:(fun () ->
        let stop = should_stop () in
        if stop && not !stopped_early then begin
          stopped_early := true;
          log "wall budget exhausted: draining running candidates"
        end;
        stop)
      ~on_event task candidates
  in
  ignore launched;
  let by f l = List.sort (fun a b -> compare (f a) (f b)) l in
  ( !examined,
    by fst !failures,
    by fst !task_errors,
    by (fun g -> g.gu_index) !gave_up,
    !stopped_early || !examined < n )

let run ?registry ?(sink = Sink.null) ?(log = fun (_ : string) -> ()) config =
  let candidates =
    Array.init config.s_count (fun i -> (i, candidate_of config i))
  in
  let task (i, cd) =
    (match config.s_hang_ms with
    | Some ms when i = 0 ->
      (* Deliberate hang, used by the watchdog tests: sleep far past
         any sensible watchdog so the kill path is exercised. *)
      Unix.sleepf (float_of_int ms /. 1000.)
    | _ -> ());
    Candidate.run config.s_candidate cd
  in
  let examined, failures, task_errors, gave_up, exhausted =
    drive ?registry ~sink ~log ~jobs:config.s_jobs
      ~watchdog_s:config.s_watchdog_s ~retries:config.s_retries
      ~backoff_s:config.s_backoff_s ~wall_budget_s:config.s_wall_budget_s
      ~count:config.s_count ~task candidates
  in
  {
    r_examined = examined;
    r_findings =
      List.map
        (fun (pos, report) ->
          { fi_index = pos; fi_candidate = snd candidates.(pos); fi_report = report })
        failures;
    r_task_errors = task_errors;
    r_gave_up = gave_up;
    r_exhausted = exhausted;
  }

(* -------------------- topology search -------------------- *)

type topo_config = {
  t_candidate : Candidate.topo_config;
  t_seed : int;
  t_count : int;
  t_budget : Generator.budget;
  t_jobs : int;
  t_watchdog_s : float option;
  t_retries : int;
  t_backoff_s : float;
  t_wall_budget_s : float option;
}

let default_topo_config candidate =
  {
    t_candidate = candidate;
    t_seed = 1;
    t_count = 64;
    t_budget = Generator.default_budget;
    t_jobs = 2;
    t_watchdog_s = Some 30.;
    t_retries = 1;
    t_backoff_s = 0.1;
    t_wall_budget_s = None;
  }

(* Same derive chains as the plain search: plans from the generator's
   (disjoint) topo stream family, per-index trace/fault seeds from
   branches 1 and 2 of the root. *)
let topo_candidate_of config i =
  let horizon = config.t_candidate.Candidate.tc_horizon_ms * 1_000_000 in
  let topo = Candidate.topo_tree config.t_candidate in
  {
    Candidate.td_plans =
      Generator.sample_topo ~budget:config.t_budget ~seed:config.t_seed
        ~index:i ~horizon topo;
    td_trace_seed = Prng.derive (Prng.derive config.t_seed 1) i;
    td_fault_seed = Prng.derive (Prng.derive config.t_seed 2) i;
  }

type topo_finding = {
  tf_index : int;
  tf_candidate : Candidate.topo;
  tf_report : Candidate.report;
}

type topo_result = {
  tr_examined : int;
  tr_findings : topo_finding list;
  tr_task_errors : (int * string) list;
  tr_gave_up : gave_up list;
  tr_exhausted : bool;
}

let run_topo ?registry ?(sink = Sink.null) ?(log = fun (_ : string) -> ())
    config =
  let candidates =
    Array.init config.t_count (fun i -> (i, topo_candidate_of config i))
  in
  let task (_, td) = Candidate.run_topo config.t_candidate td in
  let examined, failures, task_errors, gave_up, exhausted =
    drive ?registry ~sink ~log ~jobs:config.t_jobs
      ~watchdog_s:config.t_watchdog_s ~retries:config.t_retries
      ~backoff_s:config.t_backoff_s ~wall_budget_s:config.t_wall_budget_s
      ~count:config.t_count ~task candidates
  in
  {
    tr_examined = examined;
    tr_findings =
      List.map
        (fun (pos, report) ->
          { tf_index = pos; tf_candidate = snd candidates.(pos); tf_report = report })
        failures;
    tr_task_errors = task_errors;
    tr_gave_up = gave_up;
    tr_exhausted = exhausted;
  }

(* -------------------- admission search -------------------- *)

type admit_config = {
  a_candidate : Candidate.admit_config;
  a_seed : int;
  a_count : int;
  a_pool : int;
  a_requests : int;
  a_jobs : int;
  a_watchdog_s : float option;
  a_retries : int;
  a_backoff_s : float;
  a_wall_budget_s : float option;
}

let default_admit_config candidate =
  {
    a_candidate = candidate;
    a_seed = 1;
    a_count = 64;
    a_pool = 8;
    a_requests = 64;
    a_jobs = 2;
    a_watchdog_s = Some 30.;
    a_retries = 1;
    a_backoff_s = 0.1;
    a_wall_budget_s = None;
  }

(* Churn streams from the generator's (disjoint) churn family; the
   per-index trace seed from branch 1 of the root, as everywhere. *)
let admit_candidate_of config i =
  {
    Candidate.ar_requests =
      Generator.sample_churn ~seed:config.a_seed ~index:i
        ~sources:config.a_candidate.Candidate.an_sources ~pool:config.a_pool
        ~requests:config.a_requests;
    ar_trace_seed = Prng.derive (Prng.derive config.a_seed 1) i;
  }

type admit_finding = {
  af_index : int;
  af_candidate : Candidate.admit;
  af_report : Candidate.report;
}

type admit_result = {
  as_examined : int;
  as_findings : admit_finding list;
  as_task_errors : (int * string) list;
  as_gave_up : gave_up list;
  as_exhausted : bool;
}

let run_admit ?registry ?(sink = Sink.null) ?(log = fun (_ : string) -> ())
    config =
  let candidates =
    Array.init config.a_count (fun i -> (i, admit_candidate_of config i))
  in
  let task (_, ad) = Candidate.run_admit config.a_candidate ad in
  let examined, failures, task_errors, gave_up, exhausted =
    drive ?registry ~sink ~log ~jobs:config.a_jobs
      ~watchdog_s:config.a_watchdog_s ~retries:config.a_retries
      ~backoff_s:config.a_backoff_s ~wall_budget_s:config.a_wall_budget_s
      ~count:config.a_count ~task candidates
  in
  {
    as_examined = examined;
    as_findings =
      List.map
        (fun (pos, report) ->
          { af_index = pos; af_candidate = snd candidates.(pos); af_report = report })
        failures;
    as_task_errors = task_errors;
    as_gave_up = gave_up;
    as_exhausted = exhausted;
  }
