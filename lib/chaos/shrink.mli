(** Delta-debugging shrinker for failing fault plans.

    Minimizes a plan while preserving the oracle verdict {e class}
    ({!Rtnet_analysis.Oracle.same_class}), along three axes in order:

    + {b drop fault events} — classic ddmin (Zeller's delta debugging)
      over the plan's {!Rtnet_channel.Fault_plan.atoms};
    + {b narrow windows} — each surviving crash window is repeatedly
      replaced by whichever half ({!Rtnet_channel.Fault_plan.split_crash})
      still reproduces the verdict;
    + {b weaken severities} — garble/misperception rates are halved
      ({!Rtnet_channel.Fault_plan.scale_severity}) while the verdict
      survives.

    The oracle is re-checked after every candidate mutation; a
    mutation that changes the verdict class is discarded.  The result
    is 1-minimal with respect to event removal: dropping any single
    remaining event loses the verdict. *)

type result = {
  sh_plan : Rtnet_channel.Fault_plan.spec;  (** the minimized plan *)
  sh_verdict : Rtnet_analysis.Oracle.verdict;
      (** the minimized plan's verdict (same class as the target) *)
  sh_checks : int;  (** oracle invocations spent *)
}

val run :
  oracle:(Rtnet_channel.Fault_plan.spec -> Rtnet_analysis.Oracle.verdict) ->
  target:Rtnet_analysis.Oracle.verdict ->
  Rtnet_channel.Fault_plan.spec ->
  result
(** [run ~oracle ~target plan] minimizes [plan].  [oracle] must be
    deterministic (re-run the candidate with its pinned seeds);
    [target] is the verdict to preserve.  If [plan] itself does not
    reproduce [target]'s class under [oracle], it is returned
    unchanged with [sh_checks = 1]. *)

type topo_result = {
  st_plans : (string * Rtnet_channel.Fault_plan.spec) list;
      (** the minimized per-segment plan set (segments whose plan
          shrank to nothing are removed) *)
  st_verdict : Rtnet_analysis.Oracle.verdict;
  st_checks : int;
}

val run_topo :
  oracle:
    ((string * Rtnet_channel.Fault_plan.spec) list ->
    Rtnet_analysis.Oracle.verdict) ->
  target:Rtnet_analysis.Oracle.verdict ->
  (string * Rtnet_channel.Fault_plan.spec) list ->
  topo_result
(** [run_topo ~oracle ~target plans] minimizes a topology fault
    schedule: ddmin over the {e union} of (segment, fault-event)
    pairs — so a whole-federation storm shrinks down to the one
    segment (typically the one bridge crash) that carries the verdict
    — followed by per-segment crash-window narrowing and severity
    weakening, every mutation re-checked against the full plan set. *)

type admit_result = {
  sa_requests : Rtnet_admit.Request.t list;  (** minimized churn stream *)
  sa_verdict : Rtnet_analysis.Oracle.verdict;
  sa_checks : int;
}

val run_admit :
  oracle:(Rtnet_admit.Request.t list -> Rtnet_analysis.Oracle.verdict) ->
  target:Rtnet_analysis.Oracle.verdict ->
  Rtnet_admit.Request.t list ->
  admit_result
(** [run_admit ~oracle ~target requests] minimizes an admission churn
    stream by ddmin over the requests (order-preserving removal only:
    the result is a subsequence of the original stream).  The usual
    outcome for an accept-then-violate finding is the single [add]
    whose acceptance the simulation contradicts. *)
