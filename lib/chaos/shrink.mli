(** Delta-debugging shrinker for failing fault plans.

    Minimizes a plan while preserving the oracle verdict {e class}
    ({!Rtnet_analysis.Oracle.same_class}), along three axes in order:

    + {b drop fault events} — classic ddmin (Zeller's delta debugging)
      over the plan's {!Rtnet_channel.Fault_plan.atoms};
    + {b narrow windows} — each surviving crash window is repeatedly
      replaced by whichever half ({!Rtnet_channel.Fault_plan.split_crash})
      still reproduces the verdict;
    + {b weaken severities} — garble/misperception rates are halved
      ({!Rtnet_channel.Fault_plan.scale_severity}) while the verdict
      survives.

    The oracle is re-checked after every candidate mutation; a
    mutation that changes the verdict class is discarded.  The result
    is 1-minimal with respect to event removal: dropping any single
    remaining event loses the verdict. *)

type result = {
  sh_plan : Rtnet_channel.Fault_plan.spec;  (** the minimized plan *)
  sh_verdict : Rtnet_analysis.Oracle.verdict;
      (** the minimized plan's verdict (same class as the target) *)
  sh_checks : int;  (** oracle invocations spent *)
}

val run :
  oracle:(Rtnet_channel.Fault_plan.spec -> Rtnet_analysis.Oracle.verdict) ->
  target:Rtnet_analysis.Oracle.verdict ->
  Rtnet_channel.Fault_plan.spec ->
  result
(** [run ~oracle ~target plan] minimizes [plan].  [oracle] must be
    deterministic (re-run the candidate with its pinned seeds);
    [target] is the verdict to preserve.  If [plan] itself does not
    reproduce [target]'s class under [oracle], it is returned
    unchanged with [sh_checks = 1]. *)
