(** The chaos search loop: sample candidates, execute them on a
    supervised worker pool, collect the failures.

    Candidates are indexed [0 .. s_count - 1]; candidate [i]'s plan
    and seeds are pure functions of [(config, i)] ({!candidate_of}),
    so a finding is reproducible from its index alone and the search
    is deterministic up to the {e set} of results (execution order
    varies with scheduling; results are re-sorted by index).

    Execution robustness comes from {!Rtnet_campaign.Pool.supervise}:
    a hung candidate is killed at the watchdog timeout and retried
    with backoff a bounded number of times, a candidate whose worker
    dies likewise, and an exhausted wall-clock budget stops launching
    new candidates while draining the running ones — the search
    reports partial results ([r_exhausted = true]) and never crashes. *)

type config = {
  s_candidate : Candidate.config;  (** scenario + horizon under test *)
  s_seed : int;  (** root seed; everything derives from it *)
  s_count : int;  (** candidate budget *)
  s_budget : Generator.budget;  (** severity budget *)
  s_jobs : int;  (** concurrent workers *)
  s_watchdog_s : float option;  (** per-candidate kill timeout *)
  s_retries : int;  (** retry budget per candidate *)
  s_backoff_s : float;  (** linear backoff unit between retries *)
  s_wall_budget_s : float option;  (** total wall-clock budget *)
  s_hang_ms : int option;
      (** {b test hook}: when [Some ms], candidate index 0 sleeps that
          many milliseconds inside the worker before running — the
          watchdog test's deliberately hung candidate.  [None] in any
          real search. *)
}

val default_config : Candidate.config -> config
(** 64 candidates, {!Generator.default_budget}, 2 jobs, 30 s
    watchdog, 1 retry, 0.1 s backoff, no wall budget, no hang hook. *)

val config_to_json : config -> Rtnet_util.Json.t
(** Canonical encoding — the committed smoke config is this shape.
    The hang hook is never serialized. *)

val config_of_json : Rtnet_util.Json.t -> (config, string) result

val load_config : string -> (config, string) result
(** [load_config path] parses a config file. *)

val candidate_of : config -> int -> Candidate.t
(** [candidate_of config i] is candidate [i]: its sampled plan and the
    per-index trace/fault seeds (domain-separated
    {!Rtnet_util.Prng.derive} chains of [s_seed]). *)

type finding = {
  fi_index : int;
  fi_candidate : Candidate.t;
  fi_report : Candidate.report;
}

type gave_up = { gu_index : int; gu_attempts : int; gu_reason : string }

type result = {
  r_examined : int;  (** candidates that produced any event *)
  r_findings : finding list;  (** failing candidates, by index *)
  r_task_errors : (int * string) list;
      (** candidates whose worker-side task raised outside the
          simulator mapping (should be empty; kept for honesty) *)
  r_gave_up : gave_up list;  (** candidates that exhausted retries *)
  r_exhausted : bool;  (** the wall budget stopped the search early *)
}

val run :
  ?registry:Rtnet_telemetry.Registry.t ->
  ?sink:Rtnet_telemetry.Sink.t ->
  ?log:(string -> unit) ->
  config ->
  result
(** [run config] executes the search.  [registry] (optional) receives
    the chaos counters ([chaos/candidates], [chaos/findings],
    [chaos/retries], [chaos/gave_up], [chaos/task_errors]); [sink]
    receives one [worker_cell] probe per candidate (wall-clock
    timeline, Perfetto-exportable via
    {!Rtnet_telemetry.Recorder}); [log] receives one progress line
    per notable event. *)

(** {1 Topology search}

    The same supervised loop over {e federated-topology} candidates:
    per-segment fault plans from {!Generator.sample_topo}, executed
    through {!Candidate.run_topo} and classified with the end-to-end
    oracle verdicts — this is how [ddcr_chaos] hunts
    accept-then-violate bugs of the admission layer (topologies the
    checker admits that a bridge crash then makes miss, shed or
    drop). *)

type topo_config = {
  t_candidate : Candidate.topo_config;
  t_seed : int;
  t_count : int;
  t_budget : Generator.budget;
  t_jobs : int;
  t_watchdog_s : float option;
  t_retries : int;
  t_backoff_s : float;
  t_wall_budget_s : float option;
}

val default_topo_config : Candidate.topo_config -> topo_config
(** Same defaults as {!default_config}: 64 candidates, default
    budget, 2 jobs, 30 s watchdog, 1 retry, 0.1 s backoff. *)

val topo_candidate_of : topo_config -> int -> Candidate.topo
(** [topo_candidate_of config i] is topology candidate [i] — a pure
    function of [(config, i)], like {!candidate_of}. *)

type topo_finding = {
  tf_index : int;
  tf_candidate : Candidate.topo;
  tf_report : Candidate.report;
}

type topo_result = {
  tr_examined : int;
  tr_findings : topo_finding list;
  tr_task_errors : (int * string) list;
  tr_gave_up : gave_up list;
  tr_exhausted : bool;
}

val run_topo :
  ?registry:Rtnet_telemetry.Registry.t ->
  ?sink:Rtnet_telemetry.Sink.t ->
  ?log:(string -> unit) ->
  topo_config ->
  topo_result
(** [run_topo config] is {!run} over topology candidates: same pool
    supervision, same counters and probes, findings carrying the
    per-segment plans. *)

(** {1 Admission search}

    The same supervised loop over {e admission churn} candidates:
    request streams from {!Generator.sample_churn}, executed through
    {!Candidate.run_admit} — admit the stream, simulate the admitted
    set — hunting flow sets the engine accepts that the simulator then
    makes miss deadlines
    ({!Rtnet_analysis.Oracle.Admission_violation}). *)

type admit_config = {
  a_candidate : Candidate.admit_config;  (** environment under test *)
  a_seed : int;
  a_count : int;
  a_pool : int;  (** flow-id pool size per candidate *)
  a_requests : int;  (** churn-stream length per candidate *)
  a_jobs : int;
  a_watchdog_s : float option;
  a_retries : int;
  a_backoff_s : float;
  a_wall_budget_s : float option;
}

val default_admit_config : Candidate.admit_config -> admit_config
(** 64 candidates of 64 requests over an 8-id pool; pool supervision
    defaults as in {!default_config}. *)

val admit_candidate_of : admit_config -> int -> Candidate.admit
(** [admit_candidate_of config i] is admission candidate [i] — a pure
    function of [(config, i)], like {!candidate_of}. *)

type admit_finding = {
  af_index : int;
  af_candidate : Candidate.admit;
  af_report : Candidate.report;
}

type admit_result = {
  as_examined : int;
  as_findings : admit_finding list;
  as_task_errors : (int * string) list;
  as_gave_up : gave_up list;
  as_exhausted : bool;
}

val run_admit :
  ?registry:Rtnet_telemetry.Registry.t ->
  ?sink:Rtnet_telemetry.Sink.t ->
  ?log:(string -> unit) ->
  admit_config ->
  admit_result
(** [run_admit config] is {!run} over admission candidates: same pool
    supervision, same counters and probes, findings carrying the churn
    stream that elicited the verdict. *)
