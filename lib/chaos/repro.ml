module Json = Rtnet_util.Json
module Spec = Rtnet_campaign.Spec
module Fault_plan = Rtnet_channel.Fault_plan
module Oracle = Rtnet_analysis.Oracle
module Ddcr_params = Rtnet_core.Ddcr_params
module Topo = Rtnet_topology.Topo

let ( let* ) = Result.bind

(* v1: (scenario, horizon, plan, seeds, verdict, fingerprint, note).
   v2 adds the optional "params" protocol-parameter override (model
   checker counterexamples pin the exact — possibly pathological —
   configuration they were found under) and the scheduled fault-plan
   atoms inside "plan".  v1 artifacts are still decoded (params = None,
   no scheduled atoms); v2 is always emitted. *)
let schema_version = 2

type t = {
  re_scenario : Spec.scenario;
  re_horizon_ms : int;
  re_params : Ddcr_params.t option;
  re_plan : Fault_plan.spec;
  re_trace_seed : int;
  re_fault_seed : int;
  re_verdict : Oracle.verdict;
  re_fingerprint : string;
  re_note : string;
}

let make ~config ~candidate ~report ~note =
  {
    re_scenario = config.Candidate.cf_scenario;
    re_horizon_ms = config.Candidate.cf_horizon_ms;
    re_params = config.Candidate.cf_params;
    re_plan = candidate.Candidate.cd_plan;
    re_trace_seed = candidate.Candidate.cd_trace_seed;
    re_fault_seed = candidate.Candidate.cd_fault_seed;
    re_verdict = report.Candidate.rp_verdict;
    re_fingerprint = report.Candidate.rp_fingerprint;
    re_note = note;
  }

let candidate t =
  ( {
      Candidate.cf_scenario = t.re_scenario;
      cf_horizon_ms = t.re_horizon_ms;
      cf_params = t.re_params;
    },
    {
      Candidate.cd_plan = t.re_plan;
      cd_trace_seed = t.re_trace_seed;
      cd_fault_seed = t.re_fault_seed;
    } )

let to_json t =
  Json.Obj
    ([
       ("chaos_repro_version", Json.Int schema_version);
       ("scenario", Spec.scenario_to_json t.re_scenario);
       ("horizon_ms", Json.Int t.re_horizon_ms);
     ]
    @ (match t.re_params with
      | None -> []
      | Some p -> [ ("params", Ddcr_params.to_json p) ])
    @ [
        ("plan", Fault_plan.spec_to_json t.re_plan);
        ("trace_seed", Json.Int t.re_trace_seed);
        ("fault_seed", Json.Int t.re_fault_seed);
        ("verdict", Oracle.to_json t.re_verdict);
        ("fingerprint", Json.String t.re_fingerprint);
        ("note", Json.String t.re_note);
      ])

let of_json j =
  let* v = Result.bind (Json.field "chaos_repro_version" j) Json.get_int in
  if v < 1 || v > schema_version then
    Error (Printf.sprintf "unsupported chaos repro version %d" v)
  else
    let* scenario = Result.bind (Json.field "scenario" j) Spec.scenario_of_json in
    let* horizon_ms = Result.bind (Json.field "horizon_ms" j) Json.get_int in
    let* params =
      match Json.member "params" j with
      | None | Some Json.Null -> Ok None
      | Some pj when v >= 2 ->
        Result.map Option.some
          (Result.map_error (fun e -> "params: " ^ e) (Ddcr_params.of_json pj))
      | Some _ -> Error "params override requires chaos repro version >= 2"
    in
    let* plan = Result.bind (Json.field "plan" j) Fault_plan.spec_of_json in
    let* () =
      Result.map_error
        (fun e -> "plan: " ^ e)
        (Fault_plan.validate ~horizon:(horizon_ms * 1_000_000) plan)
    in
    let* trace_seed = Result.bind (Json.field "trace_seed" j) Json.get_int in
    let* fault_seed = Result.bind (Json.field "fault_seed" j) Json.get_int in
    let* verdict = Result.bind (Json.field "verdict" j) Oracle.of_json in
    let* fingerprint = Result.bind (Json.field "fingerprint" j) Json.get_string in
    let* note =
      match Json.member "note" j with
      | None -> Ok ""
      | Some n -> Json.get_string n
    in
    if horizon_ms < 1 then Error "horizon_ms < 1"
    else
      Ok
        {
          re_scenario = scenario;
          re_horizon_ms = horizon_ms;
          re_params = params;
          re_plan = plan;
          re_trace_seed = trace_seed;
          re_fault_seed = fault_seed;
          re_verdict = verdict;
          re_fingerprint = fingerprint;
          re_note = note;
        }

let save ~path t = Json.to_file path (to_json t)

let load ~path =
  let* j = Json.parse_file path in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (of_json j)

type replay = {
  rr_report : Candidate.report;
  rr_verdict_ok : bool;
  rr_fingerprint_ok : bool;
}

let replay ?sink t =
  let config, cd = candidate t in
  let report = Candidate.run ?sink config cd in
  {
    rr_report = report;
    rr_verdict_ok = report.Candidate.rp_verdict = t.re_verdict;
    rr_fingerprint_ok =
      String.equal report.Candidate.rp_fingerprint t.re_fingerprint;
  }

(* -------------------- topology artifacts -------------------- *)

let topo_schema_version = 1

type topo = {
  rt_config : Candidate.topo_config;
  rt_plans : (string * Fault_plan.spec) list;
  rt_trace_seed : int;
  rt_fault_seed : int;
  rt_verdict : Oracle.verdict;
  rt_fingerprint : string;
  rt_note : string;
}

let make_topo ~config ~candidate ~report ~note =
  {
    rt_config = config;
    rt_plans = candidate.Candidate.td_plans;
    rt_trace_seed = candidate.Candidate.td_trace_seed;
    rt_fault_seed = candidate.Candidate.td_fault_seed;
    rt_verdict = report.Candidate.rp_verdict;
    rt_fingerprint = report.Candidate.rp_fingerprint;
    rt_note = note;
  }

let topo_candidate t =
  ( t.rt_config,
    {
      Candidate.td_plans = t.rt_plans;
      td_trace_seed = t.rt_trace_seed;
      td_fault_seed = t.rt_fault_seed;
    } )

let topo_to_json t =
  Json.Obj
    [
      ("topo_chaos_repro_version", Json.Int topo_schema_version);
      ("topology", Candidate.topo_config_to_json t.rt_config);
      ( "plans",
        Json.Obj
          (List.map (fun (n, sp) -> (n, Fault_plan.spec_to_json sp)) t.rt_plans)
      );
      ("trace_seed", Json.Int t.rt_trace_seed);
      ("fault_seed", Json.Int t.rt_fault_seed);
      ("verdict", Oracle.to_json t.rt_verdict);
      ("fingerprint", Json.String t.rt_fingerprint);
      ("note", Json.String t.rt_note);
    ]

let topo_of_json j =
  let* v = Result.bind (Json.field "topo_chaos_repro_version" j) Json.get_int in
  if v <> topo_schema_version then
    Error (Printf.sprintf "unsupported topo chaos repro version %d" v)
  else
    let* config =
      Result.bind (Json.field "topology" j) Candidate.topo_config_of_json
    in
    let horizon = config.Candidate.tc_horizon_ms * 1_000_000 in
    let* plans =
      match Json.member "plans" j with
      | Some (Json.Obj kvs) ->
        let rec decode acc = function
          | [] -> Ok (List.rev acc)
          | (name, pj) :: tl ->
            let* sp =
              Result.map_error
                (fun e -> Printf.sprintf "plans: %s: %s" name e)
                (Fault_plan.spec_of_json pj)
            in
            let* () =
              Result.map_error
                (fun e -> Printf.sprintf "plans: %s: %s" name e)
                (Fault_plan.validate ~horizon sp)
            in
            decode ((name, sp) :: acc) tl
        in
        decode [] kvs
      | Some _ -> Error "plans: expected an object"
      | None -> Error "missing plans"
    in
    (* The plan set must attach to the tree the config describes —
       a renamed segment would otherwise fail only at replay time. *)
    let* () =
      match Topo.with_faults (Candidate.topo_tree config) plans with
      | Ok _ -> Ok ()
      | Error e -> Error ("plans: " ^ e)
    in
    let* trace_seed = Result.bind (Json.field "trace_seed" j) Json.get_int in
    let* fault_seed = Result.bind (Json.field "fault_seed" j) Json.get_int in
    let* verdict = Result.bind (Json.field "verdict" j) Oracle.of_json in
    let* fingerprint = Result.bind (Json.field "fingerprint" j) Json.get_string in
    let* note =
      match Json.member "note" j with
      | None -> Ok ""
      | Some n -> Json.get_string n
    in
    Ok
      {
        rt_config = config;
        rt_plans = plans;
        rt_trace_seed = trace_seed;
        rt_fault_seed = fault_seed;
        rt_verdict = verdict;
        rt_fingerprint = fingerprint;
        rt_note = note;
      }

let save_topo ~path t = Json.to_file path (topo_to_json t)

let load_topo ~path =
  let* j = Json.parse_file path in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (topo_of_json j)

let replay_topo ?sink_for ?on_result t =
  let config, td = topo_candidate t in
  let report = Candidate.run_topo ?sink_for ?on_result config td in
  {
    rr_report = report;
    rr_verdict_ok = report.Candidate.rp_verdict = t.rt_verdict;
    rr_fingerprint_ok =
      String.equal report.Candidate.rp_fingerprint t.rt_fingerprint;
  }

(* -------------------- admission artifacts -------------------- *)

module A_request = Rtnet_admit.Request

let admit_schema_version = 1

type admission = {
  ra_config : Candidate.admit_config;
  ra_requests : A_request.t list;
  ra_trace_seed : int;
  ra_verdict : Oracle.verdict;
  ra_fingerprint : string;
  ra_note : string;
}

let make_admission ~config ~candidate ~report ~note =
  {
    ra_config = config;
    ra_requests = candidate.Candidate.ar_requests;
    ra_trace_seed = candidate.Candidate.ar_trace_seed;
    ra_verdict = report.Candidate.rp_verdict;
    ra_fingerprint = report.Candidate.rp_fingerprint;
    ra_note = note;
  }

let admission_candidate t =
  ( t.ra_config,
    {
      Candidate.ar_requests = t.ra_requests;
      ar_trace_seed = t.ra_trace_seed;
    } )

let admission_to_json t =
  Json.Obj
    [
      ("admit_chaos_repro_version", Json.Int admit_schema_version);
      ("admit", Candidate.admit_config_to_json t.ra_config);
      ("requests", Json.List (List.map A_request.to_json t.ra_requests));
      ("trace_seed", Json.Int t.ra_trace_seed);
      ("verdict", Oracle.to_json t.ra_verdict);
      ("fingerprint", Json.String t.ra_fingerprint);
      ("note", Json.String t.ra_note);
    ]

let admission_of_json j =
  let* v = Result.bind (Json.field "admit_chaos_repro_version" j) Json.get_int in
  if v <> admit_schema_version then
    Error (Printf.sprintf "unsupported admit chaos repro version %d" v)
  else
    let* config =
      Result.bind (Json.field "admit" j) Candidate.admit_config_of_json
    in
    (* The environment must reconstruct: unknown phy names and
       parameters invalid for the source count fail here, not at
       replay time. *)
    let* () =
      let* phy = A_request.phy_of_name config.Candidate.an_phy in
      match
        Rtnet_admit.Engine.create ~phy
          ~num_sources:config.Candidate.an_sources
          ~params:config.Candidate.an_params
      with
      | Ok _ -> Ok ()
      | Error e -> Error ("admit: " ^ e)
    in
    let* reqs = Result.bind (Json.field "requests" j) Json.get_list in
    let* requests =
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | r :: tl -> (
          match A_request.of_json r with
          | Ok req -> go (i + 1) (req :: acc) tl
          | Error e -> Error (Printf.sprintf "requests: %d: %s" i e))
      in
      go 0 [] reqs
    in
    let* trace_seed = Result.bind (Json.field "trace_seed" j) Json.get_int in
    let* verdict = Result.bind (Json.field "verdict" j) Oracle.of_json in
    let* fingerprint = Result.bind (Json.field "fingerprint" j) Json.get_string in
    let* note =
      match Json.member "note" j with
      | None -> Ok ""
      | Some n -> Json.get_string n
    in
    Ok
      {
        ra_config = config;
        ra_requests = requests;
        ra_trace_seed = trace_seed;
        ra_verdict = verdict;
        ra_fingerprint = fingerprint;
        ra_note = note;
      }

let save_admission ~path t = Json.to_file path (admission_to_json t)

let load_admission ~path =
  let* j = Json.parse_file path in
  Result.map_error
    (fun e -> Printf.sprintf "%s: %s" path e)
    (admission_of_json j)

let replay_admission ?sink t =
  let config, ad = admission_candidate t in
  let report = Candidate.run_admit ?sink config ad in
  {
    rr_report = report;
    rr_verdict_ok = report.Candidate.rp_verdict = t.ra_verdict;
    rr_fingerprint_ok =
      String.equal report.Candidate.rp_fingerprint t.ra_fingerprint;
  }

(* -------------------- auto-detection -------------------- *)

type any = Plain of t | Federated of topo | Admission of admission

let load_any ~path =
  let* j = Json.parse_file path in
  Result.map_error
    (fun e -> Printf.sprintf "%s: %s" path e)
    (match
       ( Json.member "topo_chaos_repro_version" j,
         Json.member "admit_chaos_repro_version" j )
     with
    | Some _, _ -> Result.map (fun t -> Federated t) (topo_of_json j)
    | None, Some _ -> Result.map (fun t -> Admission t) (admission_of_json j)
    | None, None -> Result.map (fun t -> Plain t) (of_json j))
