(** Self-contained, deterministic replay artifacts.

    A repro freezes everything needed to re-execute one chaos finding
    byte-identically: the scenario and horizon, the minimized (or
    raw) fault plan, the candidate's pinned trace/fault seeds, the
    expected {!Rtnet_analysis.Oracle.verdict} and the expected trace
    fingerprint.  [ddcr_chaos replay] re-runs the candidate and exits
    non-zero unless {e both} the verdict and the fingerprint
    reproduce exactly — the committed repro fixture under
    [test/fixtures/] is replayed this way on every [make chaos-smoke]. *)

val schema_version : int
(** The emitted version (2).  {!of_json} accepts 1 and 2: v2 added the
    optional protocol-parameter override and the scheduled fault-plan
    atoms; a v1 artifact decodes with [re_params = None].  Versions
    outside [\[1, 2]] are rejected. *)

type t = {
  re_scenario : Rtnet_campaign.Spec.scenario;
  re_horizon_ms : int;
  re_params : Rtnet_core.Ddcr_params.t option;
      (** protocol-parameter override (v2); [None] = scenario default *)
  re_plan : Rtnet_channel.Fault_plan.spec;
  re_trace_seed : int;
  re_fault_seed : int;
  re_verdict : Rtnet_analysis.Oracle.verdict;  (** expected verdict *)
  re_fingerprint : string;  (** expected trace fingerprint *)
  re_note : string;  (** provenance, e.g. "search seed=7 candidate=12" *)
}

val make :
  config:Candidate.config ->
  candidate:Candidate.t ->
  report:Candidate.report ->
  note:string ->
  t
(** [make ~config ~candidate ~report ~note] freezes a finding. *)

val candidate : t -> Candidate.config * Candidate.t
(** The run the artifact describes. *)

val to_json : t -> Rtnet_util.Json.t
(** Canonical encoding (fixed key order, versioned). *)

val of_json : Rtnet_util.Json.t -> (t, string) result
(** Decodes and validates: schema version, plan validity
    ({!Rtnet_channel.Fault_plan.validate} against the horizon) and a
    well-formed verdict — [ddcr_lint --check-repro] is this function
    on a file. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

type replay = {
  rr_report : Candidate.report;  (** what the re-execution produced *)
  rr_verdict_ok : bool;  (** verdict structurally equal to expected *)
  rr_fingerprint_ok : bool;  (** fingerprint byte-equal to expected *)
}

val replay : ?sink:Rtnet_telemetry.Sink.t -> t -> replay
(** [replay t] re-executes the candidate with the frozen seeds and
    compares against the expectations.  [sink] attaches a telemetry
    probe (e.g. a flight recorder) to the replayed run. *)

(** {1 Topology artifacts}

    A federated-topology finding freezes the tree parameters, the
    per-segment fault plans and the pinned seeds — everything
    {!Candidate.run_topo} needs.  Its JSON carries the distinct
    ["topo_chaos_repro_version"] key, so {!load_any} can dispatch a
    file of either kind. *)

val topo_schema_version : int
(** The emitted (and only accepted) topology-artifact version (1). *)

type topo = {
  rt_config : Candidate.topo_config;
  rt_plans : (string * Rtnet_channel.Fault_plan.spec) list;
  rt_trace_seed : int;
  rt_fault_seed : int;
  rt_verdict : Rtnet_analysis.Oracle.verdict;
  rt_fingerprint : string;
  rt_note : string;
}

val make_topo :
  config:Candidate.topo_config ->
  candidate:Candidate.topo ->
  report:Candidate.report ->
  note:string ->
  topo

val topo_candidate : topo -> Candidate.topo_config * Candidate.topo
val topo_to_json : topo -> Rtnet_util.Json.t

val topo_of_json : Rtnet_util.Json.t -> (topo, string) result
(** Decodes and validates: schema version, per-plan
    {!Rtnet_channel.Fault_plan.validate} against the horizon, and
    that every plan attaches to a segment of the described tree. *)

val save_topo : path:string -> topo -> unit
val load_topo : path:string -> (topo, string) result

val replay_topo :
  ?sink_for:(index:int -> segment:string -> Rtnet_telemetry.Sink.t) ->
  ?on_result:(Rtnet_topology.Driver.result -> unit) ->
  topo ->
  replay
(** [replay_topo t] re-executes the federated run with the frozen
    seeds; same verdict + fingerprint contract as {!replay}.
    [sink_for] attaches per-segment probes; [on_result] observes the
    raw driver result (when the run completes without a configuration
    error) — [ddcr_chaos replay --postmortem-out] uses both to
    regenerate the postmortem artifact of the frozen failure. *)

(** {1 Admission artifacts}

    An admission finding freezes the environment (phy, sources,
    protocol parameters, horizon), the churn stream and the pinned
    arrival-trace seed — everything {!Candidate.run_admit} needs.
    Its JSON carries the distinct ["admit_chaos_repro_version"] key
    for {!load_any} dispatch. *)

val admit_schema_version : int
(** The emitted (and only accepted) admission-artifact version (1). *)

type admission = {
  ra_config : Candidate.admit_config;
  ra_requests : Rtnet_admit.Request.t list;
  ra_trace_seed : int;
  ra_verdict : Rtnet_analysis.Oracle.verdict;
  ra_fingerprint : string;
  ra_note : string;
}

val make_admission :
  config:Candidate.admit_config ->
  candidate:Candidate.admit ->
  report:Candidate.report ->
  note:string ->
  admission

val admission_candidate : admission -> Candidate.admit_config * Candidate.admit
val admission_to_json : admission -> Rtnet_util.Json.t

val admission_of_json : Rtnet_util.Json.t -> (admission, string) result
(** Decodes and validates: schema version, resolvable phy name,
    parameters valid for the source count, well-formed requests and
    verdict. *)

val save_admission : path:string -> admission -> unit
val load_admission : path:string -> (admission, string) result

val replay_admission : ?sink:Rtnet_telemetry.Sink.t -> admission -> replay
(** [replay_admission t] re-decides the frozen churn stream and
    re-simulates the admitted set; same verdict + fingerprint contract
    as {!replay} (the fingerprint covers the decision log lines, so
    byte-identity asserts the decisions too). *)

type any = Plain of t | Federated of topo | Admission of admission

val load_any : path:string -> (any, string) result
(** [load_any ~path] loads an artifact of any kind, dispatching on
    the version key — [ddcr_chaos replay] and [shrink] take whichever
    file they are handed. *)
