module Prng = Rtnet_util.Prng
module Json = Rtnet_util.Json
module Fault_plan = Rtnet_channel.Fault_plan
module Topo = Rtnet_topology.Topo
module Instance = Rtnet_workload.Instance

let ( let* ) = Result.bind

type budget = {
  g_max_events : int;
  g_garble : bool;
  g_misperceive : bool;
  g_crash : bool;
  g_max_rate : float;
  g_max_crash_fraction : float;
}

let default_budget =
  {
    g_max_events = 4;
    g_garble = true;
    g_misperceive = true;
    g_crash = true;
    g_max_rate = 0.5;
    g_max_crash_fraction = 0.3;
  }

let budget_to_json b =
  Json.Obj
    [
      ("max_events", Json.Int b.g_max_events);
      ("garble", Json.Bool b.g_garble);
      ("misperceive", Json.Bool b.g_misperceive);
      ("crash", Json.Bool b.g_crash);
      ("max_rate", Json.Float b.g_max_rate);
      ("max_crash_fraction", Json.Float b.g_max_crash_fraction);
    ]

let opt j key decode default =
  match Json.member key j with None -> Ok default | Some v -> decode v

let budget_of_json j =
  let* max_events = opt j "max_events" Json.get_int default_budget.g_max_events in
  let* garble = opt j "garble" Json.get_bool default_budget.g_garble in
  let* misperceive =
    opt j "misperceive" Json.get_bool default_budget.g_misperceive
  in
  let* crash = opt j "crash" Json.get_bool default_budget.g_crash in
  let* max_rate = opt j "max_rate" Json.get_float default_budget.g_max_rate in
  let* max_crash_fraction =
    opt j "max_crash_fraction" Json.get_float default_budget.g_max_crash_fraction
  in
  Ok
    {
      g_max_events = max_events;
      g_garble = garble;
      g_misperceive = misperceive;
      g_crash = crash;
      g_max_rate = max_rate;
      g_max_crash_fraction = max_crash_fraction;
    }

let check_budget b =
  if b.g_max_events < 1 then invalid_arg "Generator.sample: max_events < 1";
  if not (b.g_garble || b.g_misperceive || b.g_crash) then
    invalid_arg "Generator.sample: every fault family disabled";
  if not (b.g_max_rate > 0. && b.g_max_rate <= 1.) then
    invalid_arg "Generator.sample: max_rate out of (0, 1]";
  if not (b.g_max_crash_fraction > 0. && b.g_max_crash_fraction <= 1.) then
    invalid_arg "Generator.sample: max_crash_fraction out of (0, 1]"

(* Domain tag for the generator's stream family, so candidate plans
   can never collide with the per-run seeds Search derives from the
   same root seed. *)
let stream_tag = 0xC4A0

type kind = Garble | Misperceive | Crash

(* A rate in [lo, hi) — the floor keeps sampled severities observable
   (a 1e-9 garble rate injects nothing over a short horizon). *)
let rate_in rng ~lo ~hi = lo +. Prng.float rng (Float.max (hi -. lo) 1e-6)

let sample_garble rng ~max_rate =
  if Prng.bool rng then Fault_plan.iid (rate_in rng ~lo:0.02 ~hi:max_rate)
  else
    (* Transition probabilities strictly inside (0, 1): the validator
       rejects the degenerate endpoints. *)
    let p_enter = rate_in rng ~lo:0.005 ~hi:0.3 in
    let p_exit = rate_in rng ~lo:0.05 ~hi:0.6 in
    let r1 = Prng.float rng max_rate and r2 = Prng.float rng max_rate in
    Fault_plan.gilbert_elliott ~p_enter ~p_exit ~rate_good:(Float.min r1 r2)
      ~rate_bad:(Float.max r1 r2)

let sample_misperception rng ~max_rate =
  Fault_plan.misperceive (rate_in rng ~lo:0.005 ~hi:(Float.min max_rate 0.25))

(* Crash windows of one source must not overlap; draw up to 8 times,
   then give up on this event (the plan just ends up smaller).  [pick]
   draws the target station — the plain sampler draws uniformly over
   the instance's sources, the topology sampler over the segment's
   station set including incoming bridge stations. *)
let sample_crash rng ~budget ~horizon ~pick existing =
  let max_width =
    max 2 (int_of_float (budget.g_max_crash_fraction *. float_of_int horizon))
  in
  let rec try_ n =
    if n = 0 then None
    else
      let source = pick () in
      let width = 2 + Prng.int rng (max 1 (max_width - 1)) in
      let width = min width (horizon - 1) in
      let from_ = Prng.int rng (max 1 (horizon - width)) in
      let until = from_ + width in
      let overlaps =
        List.exists
          (fun w ->
            w.Fault_plan.cw_source = source && w.Fault_plan.cw_from < until
            && from_ < w.Fault_plan.cw_until)
          existing
      in
      if overlaps then try_ (n - 1)
      else Some { Fault_plan.cw_source = source; cw_from = from_; cw_until = until }
  in
  try_ 8

(* The common atom loop: draw up to [n_events] fault events, at most
   one garble and one misperception, crash windows via [pick].  The
   draw sequence on [rng] is exactly what [sample] always consumed, so
   pre-topology plans are byte-identical. *)
let sample_atoms rng ~budget ~horizon ~pick =
  let kinds =
    (if budget.g_garble then [ Garble ] else [])
    @ (if budget.g_misperceive then [ Misperceive ] else [])
    @ if budget.g_crash then [ Crash ] else []
  in
  let pick_kind () = List.nth kinds (Prng.int rng (List.length kinds)) in
  let n_events = 1 + Prng.int rng budget.g_max_events in
  let rec go i ~have_garble ~have_mp ~crashes acc =
    if i = n_events then acc
    else
      match pick_kind () with
      | Garble when not have_garble ->
        go (i + 1) ~have_garble:true ~have_mp ~crashes
          (sample_garble rng ~max_rate:budget.g_max_rate :: acc)
      | Misperceive when not have_mp ->
        go (i + 1) ~have_garble ~have_mp:true ~crashes
          (sample_misperception rng ~max_rate:budget.g_max_rate :: acc)
      | Crash -> (
        match sample_crash rng ~budget ~horizon ~pick crashes with
        | Some w ->
          go (i + 1) ~have_garble ~have_mp ~crashes:(w :: crashes)
            ({ Fault_plan.none with sp_crashes = [ w ] } :: acc)
        | None -> go (i + 1) ~have_garble ~have_mp ~crashes acc)
      (* A duplicate garble/misperception draw is skipped rather than
         redrawn, so the plan stays within the event budget. *)
      | Garble | Misperceive -> go (i + 1) ~have_garble ~have_mp ~crashes acc
  in
  let atoms = List.rev (go 0 ~have_garble:false ~have_mp:false ~crashes:[] []) in
  let atoms =
    (* Skipped draws can leave the plan empty; guarantee at least one
       event with the first enabled family. *)
    if atoms = [] then
      [
        (match List.hd kinds with
        | Garble -> sample_garble rng ~max_rate:budget.g_max_rate
        | Misperceive -> sample_misperception rng ~max_rate:budget.g_max_rate
        | Crash -> (
          match sample_crash rng ~budget ~horizon ~pick [] with
          | Some w -> { Fault_plan.none with sp_crashes = [ w ] }
          | None -> sample_misperception rng ~max_rate:budget.g_max_rate));
      ]
    else atoms
  in
  Fault_plan.merge atoms

let sample ~budget ~seed ~index ~horizon ~sources =
  check_budget budget;
  if horizon < 4 then invalid_arg "Generator.sample: horizon < 4";
  if sources < 1 then invalid_arg "Generator.sample: sources < 1";
  let rng = Prng.stream ~seed ~path:[ stream_tag; index ] in
  let spec =
    sample_atoms rng ~budget ~horizon ~pick:(fun () -> Prng.int rng sources)
  in
  match Fault_plan.validate ~horizon spec with
  | Ok () -> spec
  | Error e ->
    (* Unreachable by construction; fail loudly rather than feed the
       search an invalid plan. *)
    invalid_arg ("Generator.sample: internal: " ^ e)

(* -------------------- topology plans -------------------- *)

(* Disjoint stream family for per-segment topology plans; within one
   candidate each segment draws from its own stream (path carries the
   segment's declaration index). *)
let topo_stream_tag = 0xC4A1

let sample_topo ~budget ~seed ~index ~horizon topo =
  check_budget budget;
  if horizon < 4 then invalid_arg "Generator.sample_topo: horizon < 4";
  if topo.Topo.tp_segments = [] then
    invalid_arg "Generator.sample_topo: empty topology";
  let bridge_stations_into name =
    List.filter_map
      (fun (b : Topo.bridge) ->
        if b.Topo.br_to = name then Some b.Topo.br_station else None)
      topo.Topo.tp_bridges
  in
  let stations_of (sg : Topo.segment) =
    Array.of_list
      (List.init sg.Topo.sg_instance.Instance.num_sources Fun.id
      @ bridge_stations_into sg.Topo.sg_name)
  in
  let segment_plan rng sg =
    let stations = stations_of sg in
    sample_atoms rng ~budget ~horizon
      ~pick:(fun () -> stations.(Prng.int rng (Array.length stations)))
  in
  let plans =
    List.concat
      (List.mapi
         (fun i (sg : Topo.segment) ->
           let rng = Prng.stream ~seed ~path:[ topo_stream_tag; index; i ] in
           (* Each segment is hit with probability 1/2 — whole-federation
              storms and single-segment plans both appear. *)
           if not (Prng.bool rng) then []
           else [ (sg.Topo.sg_name, segment_plan rng sg) ])
         topo.Topo.tp_segments)
  in
  (* Guarantee every candidate exercises the failover machinery: at
     least one crash window must park a bridge station (when the
     topology has bridges at all). *)
  let has_bridge_crash =
    List.exists
      (fun (name, sp) ->
        let bs = bridge_stations_into name in
        List.exists
          (fun (w : Fault_plan.crash_window) ->
            List.mem w.Fault_plan.cw_source bs)
          sp.Fault_plan.sp_crashes)
      plans
  in
  let plans =
    if has_bridge_crash then plans
    else
      match
        List.find_opt
          (fun (sg : Topo.segment) ->
            bridge_stations_into sg.Topo.sg_name <> [])
          topo.Topo.tp_segments
      with
      | None ->
        (* Bridge-less topology: just make sure the candidate is
           non-empty. *)
        if plans <> [] then plans
        else
          let sg = List.hd topo.Topo.tp_segments in
          let rng = Prng.stream ~seed ~path:[ topo_stream_tag; index; 0xF0 ] in
          [ (sg.Topo.sg_name, segment_plan rng sg) ]
      | Some sg ->
        let name = sg.Topo.sg_name in
        let rng = Prng.stream ~seed ~path:[ topo_stream_tag; index; 0xB1 ] in
        let bs = Array.of_list (bridge_stations_into name) in
        let existing =
          match List.assoc_opt name plans with
          | Some sp -> sp.Fault_plan.sp_crashes
          | None -> []
        in
        (match
           sample_crash rng ~budget ~horizon
             ~pick:(fun () -> bs.(Prng.int rng (Array.length bs)))
             existing
         with
        | Some w ->
          let atom = { Fault_plan.none with sp_crashes = [ w ] } in
          if List.mem_assoc name plans then
            List.map
              (fun (n, p) ->
                if n = name then (n, Fault_plan.compose p atom) else (n, p))
              plans
          else plans @ [ (name, atom) ]
        | None ->
          (* Only reachable when existing windows already blanket the
             bridge station — the plan crashes it regardless. *)
          plans)
  in
  List.iter
    (fun (name, sp) ->
      match Fault_plan.validate ~horizon sp with
      | Ok () -> ()
      | Error e ->
        invalid_arg
          (Printf.sprintf "Generator.sample_topo: internal (%s): %s" name e))
    plans;
  plans

(* -------------------- admission churn -------------------- *)

(* Disjoint stream family for admission churn streams.  The id pool is
   deliberately small relative to the request count, so the stream
   naturally exercises duplicate adds, removes of unknown flows and
   modifies of evicted flows — the structured-rejection paths — as
   well as ordinary accept/evict churn. *)
let churn_stream_tag = 0xC4A2

let sample_churn ~seed ~index ~sources ~pool ~requests =
  if sources < 1 then invalid_arg "Generator.sample_churn: sources < 1";
  if pool < 1 then invalid_arg "Generator.sample_churn: pool < 1";
  if requests < 0 then invalid_arg "Generator.sample_churn: requests < 0";
  let module Request = Rtnet_admit.Request in
  let rng = Prng.stream ~seed ~path:[ churn_stream_tag; index ] in
  let bits_menu = [| 1600; 4000; 8000; 16000 |] in
  let flow id =
    let bits = bits_menu.(Prng.int rng (Array.length bits_menu)) in
    (* Per-flow load bits/window in roughly [1/128, 1/16]: a handful
       of flows is feasible, a pile-up saturates and draws rejections. *)
    let window = bits * (16 + Prng.int rng 112) in
    let deadline = window * (1 + Prng.int rng 4) in
    {
      Request.fl_id = id;
      fl_source = Prng.int rng sources;
      fl_bits = bits;
      fl_deadline = deadline;
      fl_burst = 1 + Prng.int rng 2;
      fl_window = window;
      fl_offset = Prng.int rng window;
    }
  in
  List.init requests (fun _ ->
      let id = Printf.sprintf "f%d" (Prng.int rng pool) in
      match Prng.int rng 10 with
      | 0 | 1 -> Request.Remove id
      | 2 | 3 -> Request.Modify (flow id)
      | _ -> Request.Add (flow id))
