(** One chaos candidate: a fault plan plus the seeds that make its
    run reproducible, and the executor that turns it into a verdict.

    A candidate is executed exactly like a campaign cell — workload
    trace from the scenario instance, DDCR under the instantiated
    fault plan through {!Rtnet_mac.Harness} — then reduced to an
    {!Rtnet_analysis.Oracle.verdict} and a {b trace fingerprint}: the
    hex digest of the canonical JSON rendering of the run outcome.
    Outcome JSON carries no wall-clock fields, so the fingerprint is a
    pure function of (scenario, horizon, seeds, plan) — the equality
    replay artifacts assert. *)

type config = {
  cf_scenario : Rtnet_campaign.Spec.scenario;
  cf_horizon_ms : int;
  cf_params : Rtnet_core.Ddcr_params.t option;
      (** protocol-parameter override; [None] means
          [Ddcr_params.default] of the scenario instance.  Model-checker
          counterexamples seeded by a pathological configuration pin it
          here so the repro replays against those exact parameters. *)
}

type t = {
  cd_plan : Rtnet_channel.Fault_plan.spec;
  cd_trace_seed : int;  (** arrival-trace stream *)
  cd_fault_seed : int;  (** fault-plan sampler stream *)
}

type report = {
  rp_verdict : Rtnet_analysis.Oracle.verdict;
  rp_fingerprint : string;
  rp_delivered : int;
  rp_misses : int;  (** raw metric misses, epoch-blind — context only *)
  rp_elapsed_s : float;
}

val fingerprint_outcome : Rtnet_stats.Run.outcome -> string
(** Hex digest of {!Rtnet_stats.Run_json.outcome_to_json}'s canonical
    bytes. *)

type topo_config = {
  tc_segments : int;  (** tree size, [>= 2] (a 1-segment tree is flat) *)
  tc_fanout : int;
  tc_sources : int;  (** sources per segment *)
  tc_load : float;  (** per-segment uniform offered load *)
  tc_deadline_windows : float;
  tc_horizon_ms : int;
}
(** The federated tree under topology chaos: the same uniform
    [Topo.tree] shape the campaign's topo scenarios expand into,
    described by its parameters so repro artifacts stay
    self-contained. *)

type topo = {
  td_plans : (string * Rtnet_channel.Fault_plan.spec) list;
      (** per-segment fault plans ({!Generator.sample_topo}) *)
  td_trace_seed : int;
  td_fault_seed : int;
}
(** One topology chaos candidate. *)

val topo_config_to_json : topo_config -> Rtnet_util.Json.t
val topo_config_of_json : Rtnet_util.Json.t -> (topo_config, string) result

val topo_tree : topo_config -> Rtnet_topology.Topo.t
(** The (fault-free) tree the config describes. *)

val run : ?sink:Rtnet_telemetry.Sink.t -> config -> t -> report
(** [run cf cd] executes the candidate and classifies it.  [sink]
    attaches a telemetry/flight-recorder probe to the run (default
    {!Rtnet_telemetry.Sink.null}).  Never
    raises on a protocol failure: {!Rtnet_mac.Harness.Mismatch},
    safety/reconciliation [Failure]s and protocol violations are
    caught and mapped to the corresponding verdicts (with a
    deterministic fingerprint derived from the verdict itself, since
    no outcome exists).  Only truly unexpected conditions (e.g. an
    unknown scenario kind) escape. *)

type admit_config = {
  an_phy : string;  (** medium, by {!Rtnet_admit.Request.phy_of_name} *)
  an_sources : int;
  an_params : Rtnet_core.Ddcr_params.t;
      (** the parameters under test — broken-params fixtures plant the
          accept-then-violate bug here *)
  an_horizon_ms : int;  (** simulated span for the violation check *)
}
(** The admission-control environment under chaos, self-contained for
    repro artifacts. *)

type admit = {
  ar_requests : Rtnet_admit.Request.t list;
      (** the churn stream ({!Generator.sample_churn}) *)
  ar_trace_seed : int;  (** arrival-trace stream for the final set *)
}
(** One admission chaos candidate. *)

val admit_config_to_json : admit_config -> Rtnet_util.Json.t
val admit_config_of_json : Rtnet_util.Json.t -> (admit_config, string) result

val run_admit :
  ?sink:Rtnet_telemetry.Sink.t -> admit_config -> admit -> report
(** [run_admit ac ad] executes an admission candidate: drive the whole
    churn stream through a fresh {!Rtnet_admit.Engine}, then simulate
    the finally-admitted set (periodic arrivals, pinned trace seed)
    over the horizon.  A deadline miss in a set the engine accepted as
    feasible is the accept-then-violate bug:
    {!Rtnet_analysis.Oracle.Admission_violation} naming the first
    missing flow.  An empty final set passes trivially.  The
    fingerprint digests the decision log lines {e and} the outcome, so
    replay asserts the decisions themselves.  Protocol failures map to
    verdicts exactly as in {!run}. *)

val run_topo :
  ?sink_for:(index:int -> segment:string -> Rtnet_telemetry.Sink.t) ->
  ?on_result:(Rtnet_topology.Driver.result -> unit) ->
  topo_config ->
  topo ->
  report
(** [run_topo tc td] executes a topology candidate: build the tree,
    attach the per-segment plans ({!Rtnet_topology.Topo.with_faults}),
    admit slack-weighted, run the federated driver with the pinned
    seeds, and classify end-to-end with
    {!Rtnet_analysis.Oracle.classify_topo} — [Bridge_overflow],
    [Handoff_loss] and [Chain_deadline_miss] are the accept-then-violate
    verdicts the topology search hunts.  The fingerprint digests the
    driver's completion-schedule fingerprint together with the verdict
    rendering.  Driver configuration errors and protocol failures are
    mapped to verdicts exactly as in {!run}. *)
