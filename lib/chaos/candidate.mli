(** One chaos candidate: a fault plan plus the seeds that make its
    run reproducible, and the executor that turns it into a verdict.

    A candidate is executed exactly like a campaign cell — workload
    trace from the scenario instance, DDCR under the instantiated
    fault plan through {!Rtnet_mac.Harness} — then reduced to an
    {!Rtnet_analysis.Oracle.verdict} and a {b trace fingerprint}: the
    hex digest of the canonical JSON rendering of the run outcome.
    Outcome JSON carries no wall-clock fields, so the fingerprint is a
    pure function of (scenario, horizon, seeds, plan) — the equality
    replay artifacts assert. *)

type config = {
  cf_scenario : Rtnet_campaign.Spec.scenario;
  cf_horizon_ms : int;
  cf_params : Rtnet_core.Ddcr_params.t option;
      (** protocol-parameter override; [None] means
          [Ddcr_params.default] of the scenario instance.  Model-checker
          counterexamples seeded by a pathological configuration pin it
          here so the repro replays against those exact parameters. *)
}

type t = {
  cd_plan : Rtnet_channel.Fault_plan.spec;
  cd_trace_seed : int;  (** arrival-trace stream *)
  cd_fault_seed : int;  (** fault-plan sampler stream *)
}

type report = {
  rp_verdict : Rtnet_analysis.Oracle.verdict;
  rp_fingerprint : string;
  rp_delivered : int;
  rp_misses : int;  (** raw metric misses, epoch-blind — context only *)
  rp_elapsed_s : float;
}

val fingerprint_outcome : Rtnet_stats.Run.outcome -> string
(** Hex digest of {!Rtnet_stats.Run_json.outcome_to_json}'s canonical
    bytes. *)

val run : config -> t -> report
(** [run cf cd] executes the candidate and classifies it.  Never
    raises on a protocol failure: {!Rtnet_mac.Harness.Mismatch},
    safety/reconciliation [Failure]s and protocol violations are
    caught and mapped to the corresponding verdicts (with a
    deterministic fingerprint derived from the verdict itself, since
    no outcome exists).  Only truly unexpected conditions (e.g. an
    unknown scenario kind) escape. *)
