module Spec = Rtnet_campaign.Spec
module Instance = Rtnet_workload.Instance
module Fault_plan = Rtnet_channel.Fault_plan
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Harness = Rtnet_mac.Harness
module Oracle = Rtnet_analysis.Oracle
module Run = Rtnet_stats.Run
module Run_json = Rtnet_stats.Run_json
module Json = Rtnet_util.Json

type config = {
  cf_scenario : Spec.scenario;
  cf_horizon_ms : int;
  cf_params : Ddcr_params.t option;
}

type t = {
  cd_plan : Fault_plan.spec;
  cd_trace_seed : int;
  cd_fault_seed : int;
}

type report = {
  rp_verdict : Oracle.verdict;
  rp_fingerprint : string;
  rp_delivered : int;
  rp_misses : int;
  rp_elapsed_s : float;
}

let fingerprint_outcome outcome =
  Digest.to_hex (Digest.string (Json.to_string (Run_json.outcome_to_json outcome)))

(* When the run dies in an exception there is no outcome to digest;
   fingerprint the verdict rendering instead — still a pure function
   of the candidate, so replay equality holds. *)
let fingerprint_verdict v =
  Digest.to_hex (Digest.string ("verdict:" ^ Json.to_string (Oracle.to_json v)))

let run cf cd =
  let t0 = Unix.gettimeofday () in
  let inst = Spec.instance cf.cf_scenario in
  let horizon = cf.cf_horizon_ms * 1_000_000 in
  let trace = Instance.trace inst ~seed:cd.cd_trace_seed ~horizon in
  let params =
    match cf.cf_params with
    | Some p -> p
    | None -> Ddcr_params.default inst
  in
  let record, finish = Ddcr_trace.collector () in
  let finish_with verdict fingerprint delivered misses =
    {
      rp_verdict = verdict;
      rp_fingerprint = fingerprint;
      rp_delivered = delivered;
      rp_misses = misses;
      rp_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  match
    let plan = Fault_plan.create ~horizon ~seed:cd.cd_fault_seed cd.cd_plan in
    Ddcr.run_trace ~check_lockstep:true ~on_event:record ~plan params inst
      trace ~horizon
  with
  | outcome ->
    let events = finish () in
    let verdict = Oracle.classify ~workload:trace ~outcome events in
    let m = Run.metrics outcome in
    finish_with verdict (fingerprint_outcome outcome) m.Run.delivered
      m.Run.deadline_misses
  | exception Harness.Mismatch m ->
    let v = Oracle.Harness_mismatch (Harness.mismatch_message m) in
    finish_with v (fingerprint_verdict v) 0 0
  | exception Ddcr.Protocol_violation msg ->
    let v = Oracle.Run_crash ("protocol violation: " ^ msg) in
    finish_with v (fingerprint_verdict v) 0 0
  | exception Failure msg ->
    (* The harness raises [Failure] when safety or the end-of-run
       transmission-log reconciliation breaks. *)
    let v = Oracle.Safety_violation msg in
    finish_with v (fingerprint_verdict v) 0 0
  | exception Assert_failure _ ->
    let v = Oracle.Run_crash "assertion failure in the simulator" in
    finish_with v (fingerprint_verdict v) 0 0
