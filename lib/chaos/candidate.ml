module Spec = Rtnet_campaign.Spec
module Instance = Rtnet_workload.Instance
module Fault_plan = Rtnet_channel.Fault_plan
module Ddcr = Rtnet_core.Ddcr
module Ddcr_params = Rtnet_core.Ddcr_params
module Ddcr_trace = Rtnet_core.Ddcr_trace
module Harness = Rtnet_mac.Harness
module Oracle = Rtnet_analysis.Oracle
module Topo = Rtnet_topology.Topo
module Admit = Rtnet_topology.Admit
module Topo_driver = Rtnet_topology.Driver
module Decompose = Rtnet_core.Decompose
module Run = Rtnet_stats.Run
module Run_json = Rtnet_stats.Run_json
module Json = Rtnet_util.Json

type config = {
  cf_scenario : Spec.scenario;
  cf_horizon_ms : int;
  cf_params : Ddcr_params.t option;
}

type t = {
  cd_plan : Fault_plan.spec;
  cd_trace_seed : int;
  cd_fault_seed : int;
}

type topo_config = {
  tc_segments : int;
  tc_fanout : int;
  tc_sources : int;
  tc_load : float;
  tc_deadline_windows : float;
  tc_horizon_ms : int;
}

type topo = {
  td_plans : (string * Fault_plan.spec) list;
  td_trace_seed : int;
  td_fault_seed : int;
}

type report = {
  rp_verdict : Oracle.verdict;
  rp_fingerprint : string;
  rp_delivered : int;
  rp_misses : int;
  rp_elapsed_s : float;
}

let fingerprint_outcome outcome =
  Digest.to_hex (Digest.string (Json.to_string (Run_json.outcome_to_json outcome)))

(* When the run dies in an exception there is no outcome to digest;
   fingerprint the verdict rendering instead — still a pure function
   of the candidate, so replay equality holds. *)
let fingerprint_verdict v =
  Digest.to_hex (Digest.string ("verdict:" ^ Json.to_string (Oracle.to_json v)))

let run ?sink cf cd =
  let t0 = Unix.gettimeofday () in
  let inst = Spec.instance cf.cf_scenario in
  let horizon = cf.cf_horizon_ms * 1_000_000 in
  let trace = Instance.trace inst ~seed:cd.cd_trace_seed ~horizon in
  let params =
    match cf.cf_params with
    | Some p -> p
    | None -> Ddcr_params.default inst
  in
  let record, finish = Ddcr_trace.collector () in
  let finish_with verdict fingerprint delivered misses =
    {
      rp_verdict = verdict;
      rp_fingerprint = fingerprint;
      rp_delivered = delivered;
      rp_misses = misses;
      rp_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  match
    let plan = Fault_plan.create ~horizon ~seed:cd.cd_fault_seed cd.cd_plan in
    Ddcr.run_trace ~check_lockstep:true ~on_event:record ~plan ?sink params
      inst trace ~horizon
  with
  | outcome ->
    let events = finish () in
    let verdict = Oracle.classify ~workload:trace ~outcome events in
    let m = Run.metrics outcome in
    finish_with verdict (fingerprint_outcome outcome) m.Run.delivered
      m.Run.deadline_misses
  | exception Harness.Mismatch m ->
    let v = Oracle.Harness_mismatch (Harness.mismatch_message m) in
    finish_with v (fingerprint_verdict v) 0 0
  | exception Ddcr.Protocol_violation msg ->
    let v = Oracle.Run_crash ("protocol violation: " ^ msg) in
    finish_with v (fingerprint_verdict v) 0 0
  | exception Failure msg ->
    (* The harness raises [Failure] when safety or the end-of-run
       transmission-log reconciliation breaks. *)
    let v = Oracle.Safety_violation msg in
    finish_with v (fingerprint_verdict v) 0 0
  | exception Assert_failure _ ->
    let v = Oracle.Run_crash "assertion failure in the simulator" in
    finish_with v (fingerprint_verdict v) 0 0

(* -------------------- topology candidates -------------------- *)

let ( let* ) = Result.bind

let topo_config_to_json tc =
  Json.Obj
    [
      ("segments", Json.Int tc.tc_segments);
      ("fanout", Json.Int tc.tc_fanout);
      ("sources", Json.Int tc.tc_sources);
      ("load", Json.Float tc.tc_load);
      ("deadline_windows", Json.Float tc.tc_deadline_windows);
      ("horizon_ms", Json.Int tc.tc_horizon_ms);
    ]

let topo_config_of_json j =
  let* segments = Result.bind (Json.field "segments" j) Json.get_int in
  let* fanout = Result.bind (Json.field "fanout" j) Json.get_int in
  let* sources = Result.bind (Json.field "sources" j) Json.get_int in
  let* load = Result.bind (Json.field "load" j) Json.get_float in
  let* deadline_windows =
    Result.bind (Json.field "deadline_windows" j) Json.get_float
  in
  let* horizon_ms = Result.bind (Json.field "horizon_ms" j) Json.get_int in
  if segments < 2 then Error "segments < 2"
  else if fanout < 1 then Error "fanout < 1"
  else if sources < 1 then Error "sources < 1"
  else if horizon_ms < 1 then Error "horizon_ms < 1"
  else
    Ok
      {
        tc_segments = segments;
        tc_fanout = fanout;
        tc_sources = sources;
        tc_load = load;
        tc_deadline_windows = deadline_windows;
        tc_horizon_ms = horizon_ms;
      }

let topo_tree tc =
  Topo.tree ~name:"chaos" ~segments:tc.tc_segments ~fanout:tc.tc_fanout
    ~sources:tc.tc_sources ~load:tc.tc_load
    ~deadline_windows:tc.tc_deadline_windows ()

let run_topo ?sink_for ?on_result tc td =
  let t0 = Unix.gettimeofday () in
  let horizon = tc.tc_horizon_ms * 1_000_000 in
  let finish_with verdict fingerprint delivered misses =
    {
      rp_verdict = verdict;
      rp_fingerprint = fingerprint;
      rp_delivered = delivered;
      rp_misses = misses;
      rp_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  let crash msg =
    let v = Oracle.Run_crash msg in
    finish_with v (fingerprint_verdict v) 0 0
  in
  match Topo.with_faults (topo_tree tc) td.td_plans with
  | Error e -> crash ("topology fault plan: " ^ e)
  | Ok tree -> (
    match Admit.elaborate ~policy:Decompose.Slack_weighted tree with
    | Error e -> crash ("admission: " ^ e)
    | Ok e -> (
      match
        Topo_driver.run_seeded ~check_lockstep:true ?sink_for e
          ~seed:td.td_trace_seed ~fault_seed:td.td_fault_seed ~horizon
      with
      | Ok res ->
        Option.iter (fun f -> f res) on_result;
        let verdict = Oracle.classify_topo res in
        (* The driver's fingerprint pins the completion schedules; the
           verdict rendering pins the end-to-end classification — both
           must survive replay byte-identically. *)
        let fingerprint =
          Digest.to_hex
            (Digest.string
               ("topo:" ^ res.Topo_driver.r_fingerprint ^ ":"
              ^ Json.to_string (Oracle.to_json verdict)))
        in
        let m = res.Topo_driver.r_metrics in
        finish_with verdict fingerprint m.Run.delivered m.Run.deadline_misses
      | Error msg -> crash ("driver: " ^ msg)
      | exception Harness.Mismatch m ->
        let v = Oracle.Harness_mismatch (Harness.mismatch_message m) in
        finish_with v (fingerprint_verdict v) 0 0
      | exception Ddcr.Protocol_violation msg ->
        let v = Oracle.Run_crash ("protocol violation: " ^ msg) in
        finish_with v (fingerprint_verdict v) 0 0
      | exception Failure msg ->
        (* Safety or end-of-run reconciliation broke inside a segment's
           harness. *)
        let v = Oracle.Safety_violation msg in
        finish_with v (fingerprint_verdict v) 0 0
      | exception Assert_failure _ ->
        let v = Oracle.Run_crash "assertion failure in the simulator" in
        finish_with v (fingerprint_verdict v) 0 0))

(* -------------------- admission candidates -------------------- *)

module A_request = Rtnet_admit.Request
module A_engine = Rtnet_admit.Engine
module A_journal = Rtnet_admit.Journal
module Message = Rtnet_workload.Message

type admit_config = {
  an_phy : string;
  an_sources : int;
  an_params : Ddcr_params.t;
  an_horizon_ms : int;
}

type admit = {
  ar_requests : A_request.t list;
  ar_trace_seed : int;
}

let admit_config_to_json ac =
  Json.Obj
    [
      ("phy", Json.String ac.an_phy);
      ("sources", Json.Int ac.an_sources);
      ("params", Ddcr_params.to_json ac.an_params);
      ("horizon_ms", Json.Int ac.an_horizon_ms);
    ]

let admit_config_of_json j =
  let* phy = Result.bind (Json.field "phy" j) Json.get_string in
  let* sources = Result.bind (Json.field "sources" j) Json.get_int in
  let* params = Result.bind (Json.field "params" j) Ddcr_params.of_json in
  let* horizon_ms = Result.bind (Json.field "horizon_ms" j) Json.get_int in
  if sources < 1 then Error "sources < 1"
  else if horizon_ms < 1 then Error "horizon_ms < 1"
  else
    Ok
      {
        an_phy = phy;
        an_sources = sources;
        an_params = params;
        an_horizon_ms = horizon_ms;
      }

(* The first class the run actually failed: completions that finished
   late, then outright drops, then messages still queued though their
   deadline fell inside the horizon — the same accounting order
   [Run.metrics] uses for [deadline_misses]. *)
let first_missed_flow (outcome : Run.outcome) =
  let late =
    List.find_map
      (fun c ->
        if Run.missed c then Some c.Run.c_msg.Message.cls.Message.cls_name
        else None)
      outcome.Run.completions
  in
  let due m = Message.abs_deadline m <= outcome.Run.horizon in
  let first_due msgs =
    List.find_map
      (fun m -> if due m then Some m.Message.cls.Message.cls_name else None)
      msgs
  in
  match late with
  | Some f -> Some f
  | None -> (
    match first_due outcome.Run.dropped with
    | Some f -> Some f
    | None -> first_due outcome.Run.unfinished)

let run_admit ?sink ac ad =
  let t0 = Unix.gettimeofday () in
  let finish_with verdict fingerprint delivered misses =
    {
      rp_verdict = verdict;
      rp_fingerprint = fingerprint;
      rp_delivered = delivered;
      rp_misses = misses;
      rp_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  let crash msg =
    let v = Oracle.Run_crash msg in
    finish_with v (fingerprint_verdict v) 0 0
  in
  match
    let* phy = A_request.phy_of_name ac.an_phy in
    A_engine.create ~phy ~num_sources:ac.an_sources ~params:ac.an_params
  with
  | Error e -> crash ("admission setup: " ^ e)
  | Ok eng -> (
    (* Decide the whole churn stream first; the decision lines are part
       of the fingerprint, so replay asserts the decisions themselves,
       not just the simulation outcome. *)
    let lines =
      List.mapi
        (fun seq req ->
          let decision = A_engine.decide eng req in
          A_journal.record_line
            { A_journal.jr_seq = seq; jr_request = req; jr_decision = decision })
        ad.ar_requests
    in
    let decisions = String.concat "\n" lines in
    let fingerprint_with suffix =
      Digest.to_hex (Digest.string ("admit:" ^ decisions ^ ":" ^ suffix))
    in
    if A_engine.size eng = 0 then
      (* Nothing admitted, nothing to violate. *)
      finish_with Oracle.Pass (fingerprint_with "empty") 0 0
    else
      match A_engine.instance eng with
      | Error e -> crash ("admitted set not instantiable: " ^ e)
      | Ok inst -> (
        let horizon = ac.an_horizon_ms * 1_000_000 in
        let trace = Instance.trace inst ~seed:ad.ar_trace_seed ~horizon in
        match
          Ddcr.run_trace ~check_lockstep:true ?sink ac.an_params inst trace
            ~horizon
        with
        | outcome ->
          let m = Run.metrics outcome in
          let verdict =
            if m.Run.deadline_misses = 0 then Oracle.Pass
            else
              Oracle.Admission_violation
                {
                  flow =
                    Option.value ~default:"?" (first_missed_flow outcome);
                  misses = m.Run.deadline_misses;
                }
          in
          finish_with verdict
            (fingerprint_with (fingerprint_outcome outcome))
            m.Run.delivered m.Run.deadline_misses
        | exception Harness.Mismatch mm ->
          let v = Oracle.Harness_mismatch (Harness.mismatch_message mm) in
          finish_with v (fingerprint_verdict v) 0 0
        | exception Ddcr.Protocol_violation msg ->
          let v = Oracle.Run_crash ("protocol violation: " ^ msg) in
          finish_with v (fingerprint_verdict v) 0 0
        | exception Failure msg ->
          let v = Oracle.Safety_violation msg in
          finish_with v (fingerprint_verdict v) 0 0
        | exception Assert_failure _ ->
          let v = Oracle.Run_crash "assertion failure in the simulator" in
          finish_with v (fingerprint_verdict v) 0 0))
