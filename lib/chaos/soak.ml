module Prng = Rtnet_util.Prng
module Oracle = Rtnet_analysis.Oracle

type config = {
  so_search : Search.config;
  so_rounds : int;
  so_wall_budget_s : float option;
  so_out_dir : string option;
}

type result = {
  so_rounds_run : int;
  so_examined : int;
  so_findings : int;
  so_gave_up : int;
  so_repro_paths : string list;
  so_exhausted : bool;
}

let run ?(log = fun (_ : string) -> ()) config =
  let t0 = Unix.gettimeofday () in
  let seen = Hashtbl.create 32 in
  let paths = ref [] in
  let examined = ref 0 in
  let gave_up = ref 0 in
  let exhausted = ref false in
  let rounds_run = ref 0 in
  let remaining () =
    Option.map
      (fun b -> b -. (Unix.gettimeofday () -. t0))
      config.so_wall_budget_s
  in
  (try
     for r = 0 to config.so_rounds - 1 do
       (match remaining () with
       | Some left when left <= 0. ->
         exhausted := true;
         raise Exit
       | _ -> ());
       let round_config =
         {
           config.so_search with
           Search.s_seed = Prng.derive config.so_search.Search.s_seed r;
           s_wall_budget_s =
             (match remaining () with
             | None -> config.so_search.Search.s_wall_budget_s
             | Some left -> Some left);
         }
       in
       log (Printf.sprintf "soak round %d/%d" (r + 1) config.so_rounds);
       let res = Search.run ~log round_config in
       incr rounds_run;
       examined := !examined + res.Search.r_examined;
       gave_up := !gave_up + List.length res.Search.r_gave_up;
       if res.Search.r_exhausted then exhausted := true;
       List.iter
         (fun f ->
           let fp = f.Search.fi_report.Candidate.rp_fingerprint in
           if not (Hashtbl.mem seen fp) then begin
             Hashtbl.replace seen fp ();
             log
               (Printf.sprintf "new finding (round %d, candidate %d): %s"
                  (r + 1) f.Search.fi_index
                  (Oracle.describe f.Search.fi_report.Candidate.rp_verdict));
             match config.so_out_dir with
             | None -> ()
             | Some dir ->
               let repro =
                 Repro.make ~config:config.so_search.Search.s_candidate
                   ~candidate:f.Search.fi_candidate
                   ~report:f.Search.fi_report
                   ~note:
                     (Printf.sprintf "soak round=%d seed=%d candidate=%d" r
                        round_config.Search.s_seed f.Search.fi_index)
               in
               let path =
                 Filename.concat dir
                   (Printf.sprintf "chaos_repro_%s.json" (String.sub fp 0 12))
               in
               Repro.save ~path repro;
               paths := path :: !paths
           end)
         res.Search.r_findings
     done
   with Exit -> ());
  {
    so_rounds_run = !rounds_run;
    so_examined = !examined;
    so_findings = Hashtbl.length seen;
    so_gave_up = !gave_up;
    so_repro_paths = List.rev !paths;
    so_exhausted = !exhausted;
  }
