(** Long-running soak: repeated chaos searches under one wall-clock
    budget, accumulating de-duplicated findings as replay artifacts.

    Each round re-runs the configured search with a fresh derived
    seed (round [r] uses [Prng.derive seed r]), so rounds explore
    disjoint candidate populations.  Findings are de-duplicated by
    trace fingerprint across rounds; each new one is frozen with
    {!Repro.save} into the output directory (when given).  The soak
    inherits the search's graceful degradation: an exhausted wall
    budget ends the current round early, reports what was gathered
    and stops — it never crashes. *)

type config = {
  so_search : Search.config;  (** per-round search configuration *)
  so_rounds : int;  (** maximum rounds *)
  so_wall_budget_s : float option;
      (** total budget across rounds; overrides the per-round budget
          with the remaining time each round *)
  so_out_dir : string option;  (** where repro artifacts are written *)
}

type result = {
  so_rounds_run : int;
  so_examined : int;  (** candidates examined across all rounds *)
  so_findings : int;  (** distinct findings (by fingerprint) *)
  so_gave_up : int;  (** candidates that exhausted their retries *)
  so_repro_paths : string list;  (** artifacts written, oldest first *)
  so_exhausted : bool;  (** stopped by the wall budget *)
}

val run : ?log:(string -> unit) -> config -> result
