module Fault_plan = Rtnet_channel.Fault_plan
module Oracle = Rtnet_analysis.Oracle

type result = {
  sh_plan : Fault_plan.spec;
  sh_verdict : Oracle.verdict;
  sh_checks : int;
}

(* Split [l] into [n] chunks of near-equal length. *)
let chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i = n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k l acc' =
        if k = 0 then (List.rev acc', l)
        else
          match l with
          | [] -> (List.rev acc', [])
          | x :: tl -> take (k - 1) tl (x :: acc')
      in
      let chunk, rest = take size rest [] in
      go (i + 1) rest (chunk :: acc)
  in
  List.filter (fun c -> c <> []) (go 0 l [])

let minus l sub = List.filter (fun x -> not (List.memq x sub)) l

(* Zeller's ddmin over the atom list: try each chunk alone, then each
   complement, refining granularity until no subset reproduces. *)
let ddmin check atoms =
  let rec go atoms n =
    if List.length atoms <= 1 then atoms
    else
      let cs = chunks n atoms in
      match List.find_opt check cs with
      | Some c -> go c 2
      | None -> (
        let complements =
          if n = 2 then [] else List.map (fun c -> minus atoms c) cs
        in
        match List.find_opt check complements with
        | Some comp -> go comp (max (n - 1) 2)
        | None ->
          let len = List.length atoms in
          if n < len then go atoms (min len (2 * n)) else atoms)
  in
  go atoms 2

(* Replace crash window number [i] (in sp_crashes order) with [w]. *)
let with_crash sp i w =
  {
    sp with
    Fault_plan.sp_crashes =
      List.mapi (fun j w0 -> if j = i then w else w0) sp.Fault_plan.sp_crashes;
  }

let narrow_windows check sp =
  let sp = ref sp in
  List.iteri
    (fun i _ ->
      let continue = ref true in
      while !continue do
        let w = List.nth !sp.Fault_plan.sp_crashes i in
        match Fault_plan.split_crash w with
        | None -> continue := false
        | Some (left, right) ->
          if check (with_crash !sp i left) then sp := with_crash !sp i left
          else if check (with_crash !sp i right) then
            sp := with_crash !sp i right
          else continue := false
      done)
    !sp.Fault_plan.sp_crashes;
  !sp

let weaken_severities check sp =
  let sp = ref sp in
  let continue = ref true in
  (* Halve at most 6 times: below ~1.5% of the original rates further
     weakening cannot change which slots get hit on a short horizon. *)
  let budget = ref 6 in
  while !continue && !budget > 0 do
    let weaker = Fault_plan.scale_severity !sp 0.5 in
    if weaker <> !sp && check weaker then begin
      sp := weaker;
      decr budget
    end
    else continue := false
  done;
  !sp

let run ~oracle ~target plan =
  let checks = ref 0 in
  let check sp =
    (not (Fault_plan.is_empty sp))
    &&
    (incr checks;
     Oracle.same_class (oracle sp) target)
  in
  if not (check plan) then
    { sh_plan = plan; sh_verdict = oracle plan; sh_checks = !checks }
  else begin
    let atoms = ddmin (fun l -> check (Fault_plan.merge l)) (Fault_plan.atoms plan) in
    let sp = Fault_plan.merge atoms in
    let sp = narrow_windows check sp in
    let sp = weaken_severities check sp in
    { sh_plan = sp; sh_verdict = oracle sp; sh_checks = !checks }
  end

(* -------------------- topology plans -------------------- *)

type topo_result = {
  st_plans : (string * Fault_plan.spec) list;
  st_verdict : Oracle.verdict;
  st_checks : int;
}

let run_topo ~oracle ~target plans =
  let checks = ref 0 in
  (* ddmin works over (segment, atom) pairs; rebuilding preserves the
     original segment order so the minimized plan set composes onto
     the topology deterministically. *)
  let order = List.map fst plans in
  let rebuild pairs =
    List.filter_map
      (fun seg ->
        match
          List.filter_map (fun (s, a) -> if s = seg then Some a else None) pairs
        with
        | [] -> None
        | atoms -> Some (seg, Fault_plan.merge atoms))
      order
  in
  let check_pairs pairs =
    pairs <> []
    && (incr checks;
        Oracle.same_class (oracle (rebuild pairs)) target)
  in
  let all_pairs =
    List.concat_map
      (fun (seg, sp) -> List.map (fun a -> (seg, a)) (Fault_plan.atoms sp))
      plans
  in
  if not (check_pairs all_pairs) then
    { st_plans = plans; st_verdict = oracle plans; st_checks = !checks }
  else begin
    let pairs = ddmin check_pairs all_pairs in
    let cur = ref (rebuild pairs) in
    let with_seg seg sp =
      List.map (fun (s, sp0) -> if s = seg then (s, sp) else (s, sp0)) !cur
    in
    (* Per-segment window narrowing and severity weakening, each
       candidate mutation re-checked against the whole plan set. *)
    List.iter
      (fun (seg, _) ->
        let check_sp sp' =
          (not (Fault_plan.is_empty sp'))
          && (incr checks;
              Oracle.same_class (oracle (with_seg seg sp')) target)
        in
        let sp' = narrow_windows check_sp (List.assoc seg !cur) in
        let sp' = weaken_severities check_sp sp' in
        cur := with_seg seg sp')
      !cur;
    { st_plans = !cur; st_verdict = oracle !cur; st_checks = !checks }
  end

(* -------------------- admission churn -------------------- *)

type admit_result = {
  sa_requests : Rtnet_admit.Request.t list;
  sa_verdict : Oracle.verdict;
  sa_checks : int;
}

(* Request streams shrink by ddmin alone: requests are the atoms, and
   order is preserved (ddmin only ever removes), so the minimized
   stream is a subsequence of the original — any decision it elicits
   the original also explains. *)
let run_admit ~oracle ~target requests =
  let checks = ref 0 in
  let check reqs =
    reqs <> []
    && (incr checks;
        Oracle.same_class (oracle reqs) target)
  in
  if not (check requests) then
    { sa_requests = requests; sa_verdict = oracle requests; sa_checks = !checks }
  else
    let reqs = ddmin check requests in
    { sa_requests = reqs; sa_verdict = oracle reqs; sa_checks = !checks }
