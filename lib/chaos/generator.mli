(** Random fault-schedule generator.

    Samples {!Rtnet_channel.Fault_plan.spec} values from a seeded
    {!Rtnet_util.Prng} stream, bounded by a declared severity
    {!budget}: which fault families may appear, how many fault events
    a plan may carry, how hot the garble/misperception rates may run
    and how long a crash window may last relative to the horizon.

    Sampling is a pure function of [(budget, seed, index, horizon,
    sources)] — candidate [index] of a search is the same plan on
    every machine and every re-run, which is what makes replay
    artifacts self-contained.  Every sampled plan satisfies
    {!Rtnet_channel.Fault_plan.validate} by construction (transition
    probabilities strictly inside [(0, 1)], crash windows within the
    horizon and non-overlapping per source). *)

type budget = {
  g_max_events : int;  (** max fault events (atoms) per plan, >= 1 *)
  g_garble : bool;  (** allow wire garbling (iid or Gilbert–Elliott) *)
  g_misperceive : bool;  (** allow per-source misperception *)
  g_crash : bool;  (** allow crash/restart windows *)
  g_max_rate : float;
      (** severity cap for garble and misperception rates, in (0, 1] *)
  g_max_crash_fraction : float;
      (** max crash-window length as a fraction of the horizon,
          in (0, 1] *)
}

val default_budget : budget
(** All families enabled, up to 4 events, rates up to 0.5, crash
    windows up to 30% of the horizon. *)

val budget_to_json : budget -> Rtnet_util.Json.t
val budget_of_json : Rtnet_util.Json.t -> (budget, string) result

val sample :
  budget:budget ->
  seed:int ->
  index:int ->
  horizon:int ->
  sources:int ->
  Rtnet_channel.Fault_plan.spec
(** [sample ~budget ~seed ~index ~horizon ~sources] draws candidate
    [index]'s plan.  Plans for distinct indices are drawn from
    independent PRNG streams ({!Rtnet_util.Prng.stream} with the index
    in the path), so enlarging a search never changes the plans
    already drawn.  The result always carries at least one fault
    event.
    @raise Invalid_argument if the budget is malformed (no family
    enabled, caps out of range) or [horizon]/[sources] are too small. *)

val sample_topo :
  budget:budget ->
  seed:int ->
  index:int ->
  horizon:int ->
  Rtnet_topology.Topo.t ->
  (string * Rtnet_channel.Fault_plan.spec) list
(** [sample_topo ~budget ~seed ~index ~horizon topo] draws candidate
    [index]'s {e topology} fault schedule: per-segment plans (each
    segment hit with probability 1/2, from its own PRNG stream — a
    disjoint family from {!sample}'s) whose crash windows target that
    segment's valid station set, {e including incoming bridge
    stations}.  Every candidate is guaranteed at least one crash
    window parking a bridge station (when the topology has bridges),
    so the search always exercises bridge failover and degraded-mode
    operation.  The result plugs into
    {!Rtnet_topology.Topo.with_faults} and passes
    {!Rtnet_topology.Topo.fault_errors} by construction.
    @raise Invalid_argument on a malformed budget, [horizon < 4] or an
    empty topology. *)

val sample_churn :
  seed:int ->
  index:int ->
  sources:int ->
  pool:int ->
  requests:int ->
  Rtnet_admit.Request.t list
(** [sample_churn ~seed ~index ~sources ~pool ~requests] draws
    candidate [index]'s admission churn stream (a disjoint PRNG
    family from {!sample} and {!sample_topo}): [requests] operations
    over a pool of [pool] flow ids.  Roughly 60% adds, 20% modifies,
    20% removes; the small id pool guarantees the stream exercises
    duplicate adds and unknown removes/modifies — the
    structured-rejection paths — alongside ordinary churn.  Pure in
    all its arguments.
    @raise Invalid_argument on non-positive [sources]/[pool] or
    negative [requests]. *)
