module Json = Rtnet_util.Json
module Sink = Rtnet_telemetry.Sink

type config = {
  sv_chunk : int;
  sv_capacity : int;
  sv_high : int;
  sv_low : int;
  sv_selfcheck_every : int;
  sv_paranoid : bool;
  sv_snapshot_every : int;
}

let default =
  {
    sv_chunk = 1;
    sv_capacity = 1024;
    sv_high = 768;
    sv_low = 256;
    sv_selfcheck_every = 64;
    sv_paranoid = false;
    sv_snapshot_every = 512;
  }

let validate c =
  if c.sv_chunk < 1 then Error "chunk < 1"
  else if c.sv_capacity < 1 then Error "capacity < 1"
  else if c.sv_high < 1 || c.sv_high > c.sv_capacity then
    Error "high watermark outside [1, capacity]"
  else if c.sv_low < 0 || c.sv_low >= c.sv_high then
    Error "low watermark outside [0, high)"
  else if c.sv_selfcheck_every < 0 then Error "selfcheck_every < 0"
  else if c.sv_snapshot_every < 0 then Error "snapshot_every < 0"
  else Ok ()

type summary = {
  sm_processed : int;
  sm_accepted : int;
  sm_rejected : (string * int) list;
  sm_degraded : int;
  sm_restored : int;
  sm_selfchecks : int;
  sm_mismatch : string option;
  sm_flows : int;
}

let summary_to_json s =
  Json.Obj
    [
      ("processed", Json.Int s.sm_processed);
      ("accepted", Json.Int s.sm_accepted);
      ( "rejected",
        Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) s.sm_rejected) );
      ("degraded", Json.Int s.sm_degraded);
      ("restored", Json.Int s.sm_restored);
      ("selfchecks", Json.Int s.sm_selfchecks);
      ( "mismatch",
        match s.sm_mismatch with
        | None -> Json.Null
        | Some e -> Json.String e );
      ("flows", Json.Int s.sm_flows);
    ]

(* The arrival model is deterministic in the absolute request index:
   requests land in back-to-back chunks of [sv_chunk], and within a
   chunk the backlog at position [pos] is the [n - pos] requests not
   yet decided.  Everything the overload logic consults — chunk
   boundary, chunk size, backlog — is therefore a pure function of the
   sequence number, which is what makes [--resume] reproduce the exact
   same shed/degrade pattern a crashed run would have produced. *)

let run ?(sink = Sink.null) ?log ?journal ?snapshot config engine ~start
    requests =
  let total = start + List.length requests in
  let chunk = config.sv_chunk in
  let accepted = ref 0 in
  let rejected = Hashtbl.create 7 in
  let degraded_on = ref 0 in
  let degraded_off = ref 0 in
  let selfchecks = ref 0 in
  let mismatch = ref None in
  let was_degraded = ref false in
  let count_reject code =
    Hashtbl.replace rejected code (1 + Option.value ~default:0 (Hashtbl.find_opt rejected code))
  in
  List.iteri
    (fun i req ->
      let seq = start + i in
      let chunk_start = seq / chunk * chunk in
      let n = min chunk (total - chunk_start) in
      let pos = seq - chunk_start in
      let backlog = n - pos in
      let degraded = n >= config.sv_high && backlog > config.sv_low in
      if degraded && not !was_degraded then begin
        incr degraded_on;
        if sink.Sink.enabled then
          sink.Sink.service ~component:"admit" ~degraded:true ~backlog
      end
      else if (not degraded) && !was_degraded then begin
        incr degraded_off;
        if sink.Sink.enabled then
          sink.Sink.service ~component:"admit" ~degraded:false ~backlog
      end;
      was_degraded := degraded;
      let shed_all = pos >= config.sv_capacity in
      let shed_load =
        degraded && match req with Request.Remove _ -> false | _ -> true
      in
      let decision =
        if shed_all || shed_load then
          Engine.Rejected (Engine.Overloaded { retry_after = backlog })
        else Engine.decide engine req
      in
      (match decision with
      | Engine.Accepted _ -> incr accepted
      | Engine.Rejected _ -> count_reject (Engine.decision_code decision));
      let record =
        { Journal.jr_seq = seq; jr_request = req; jr_decision = decision }
      in
      Option.iter (fun j -> j record) journal;
      Option.iter
        (fun oc ->
          output_string oc (Journal.record_line record);
          output_char oc '\n')
        log;
      let check =
        config.sv_paranoid
        || config.sv_selfcheck_every > 0
           && (seq + 1) mod config.sv_selfcheck_every = 0
      in
      if check then begin
        incr selfchecks;
        match Engine.selfcheck engine with
        | Ok () -> ()
        | Error e ->
          if !mismatch = None then
            mismatch := Some (Printf.sprintf "after decision %d: %s" seq e)
      end;
      if config.sv_snapshot_every > 0 && (seq + 1) mod config.sv_snapshot_every = 0
      then
        Option.iter
          (fun s -> s ~seq:(seq + 1) (Engine.snapshot engine))
          snapshot)
    requests;
  Option.iter flush log;
  (* Leaving the run while degraded closes the episode, so Degraded /
     Restored counts pair up in the summary. *)
  if !was_degraded then begin
    incr degraded_off;
    if sink.Sink.enabled then
      sink.Sink.service ~component:"admit" ~degraded:false ~backlog:0
  end;
  {
    sm_processed = List.length requests;
    sm_accepted = !accepted;
    sm_rejected =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rejected []);
    sm_degraded = !degraded_on;
    sm_restored = !degraded_off;
    sm_selfchecks = !selfchecks;
    sm_mismatch = !mismatch;
    sm_flows = Engine.size engine;
  }
