(** Crash-safe decision journal: a length-prefixed write-ahead log of
    (request, decision) pairs plus periodic engine snapshots.

    Wire format: each record is a 4-byte big-endian payload length
    followed by canonical JSON bytes.  The first record is a header
    carrying the schema version and the {!Request.trace_hash} of the
    churn trace, so a journal can never be replayed against a
    different trace.  Records are flushed one by one; a [kill -9]
    therefore leaves at most one torn record at the tail, which
    {!load} drops (torn-tail tolerance — the Campaign.Checkpoint
    contract transposed to length prefixes).  Interior corruption — a
    fully-present record that does not parse, or a sequence gap — is
    an error, never silently skipped.

    Snapshots live next to the journal at [path ^ ".snap"], written
    atomically (tmp + rename); a stale or torn snapshot is ignored and
    the journal alone rebuilds the state. *)

type record = {
  jr_seq : int;  (** 0-based request index; checked dense on load *)
  jr_request : Request.t;
  jr_decision : Engine.decision;
}

val record_to_json : record -> Rtnet_util.Json.t
val record_of_json : Rtnet_util.Json.t -> (record, string) result

val record_line : record -> string
(** Canonical single-line rendering — also the decision-log line
    format, so the journal and the human-readable log are
    byte-relatable. *)

type loaded = {
  lo_records : record list;
  lo_torn : bool;  (** a torn tail (or torn header) was dropped *)
  lo_valid_bytes : int;  (** prefix length holding intact records *)
}

val load : path:string -> trace_hash:string -> (loaded, string) result
(** [load ~path ~trace_hash] reads the intact record prefix.  A
    missing file is an empty journal; a torn tail sets [lo_torn]; a
    header recorded under a different trace, an unparseable interior
    record or a non-dense sequence is an [Error]. *)

type writer

val create : path:string -> trace_hash:string -> (writer, string) result
(** [create] truncates [path] and writes the header. *)

val open_append : path:string -> valid_bytes:int -> (writer, string) result
(** [open_append ~path ~valid_bytes] truncates any torn tail past
    [valid_bytes] (as reported by {!load}) and appends from there. *)

val append : writer -> record -> unit
(** Framed write + flush, one record at a time. *)

val append_torn : writer -> record -> unit
(** Test hook: writes only the first half of the framed record —
    exactly the tail a [kill -9] mid-write leaves behind. *)

val close : writer -> unit

val snapshot_path : string -> string
(** [snapshot_path p] is [p ^ ".snap"]. *)

val save_snapshot :
  path:string ->
  trace_hash:string ->
  seq:int ->
  Rtnet_util.Json.t ->
  (unit, string) result
(** [save_snapshot ~path ~trace_hash ~seq state] atomically replaces
    the snapshot for journal [path] with the {!Engine.snapshot} state
    as of decision [seq] (exclusive: [seq] records are reflected). *)

val load_snapshot :
  path:string -> trace_hash:string -> (int * Rtnet_util.Json.t) option
(** [load_snapshot ~path ~trace_hash] is [Some (seq, state)] when a
    matching intact snapshot exists, [None] otherwise (missing, torn,
    stale and mismatched snapshots all degrade to journal-only
    recovery). *)
