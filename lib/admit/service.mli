(** The admission service loop: drains a churn stream through the
    {!Engine} under overload protection, journaling every decision.

    Arrival model: requests land in back-to-back chunks of
    [sv_chunk]; within a chunk the backlog at position [pos] is the
    [n - pos] requests not yet decided.  The overload logic consults
    only quantities that are pure functions of the absolute request
    index, so a resumed run reproduces the exact shed/degrade pattern
    the crashed run would have produced.

    Overload protection is two-tier:
    - positions at or past [sv_capacity] are shed outright
      ([Overloaded] with a [retry_after] backlog hint);
    - a chunk of size ≥ [sv_high] starts {e degraded}: [Add]/[Modify]
      requests are shed (a [Remove] still runs — evictions relieve
      load) until the backlog drains to [sv_low].  Transitions are
      emitted through the {!Rtnet_telemetry.Sink.t.service} probe as
      Degraded/Restored events.

    A differential self-check ({!Engine.selfcheck}) runs on every
    decision under [sv_paranoid], or every [sv_selfcheck_every]-th
    decision otherwise; the first mismatch is reported in the
    summary. *)

type config = {
  sv_chunk : int;  (** requests arriving per chunk (1 = steady drip) *)
  sv_capacity : int;  (** hard queue bound; positions past it shed *)
  sv_high : int;  (** chunk size at which degraded mode engages *)
  sv_low : int;  (** backlog at which degraded mode releases *)
  sv_selfcheck_every : int;  (** sampled differential check; 0 = off *)
  sv_paranoid : bool;  (** differential check on every decision *)
  sv_snapshot_every : int;  (** snapshot cadence in decisions; 0 = off *)
}

val default : config
(** chunk 1, capacity 1024, high 768, low 256, selfcheck every 64,
    paranoid off, snapshot every 512. *)

val validate : config -> (unit, string) result

type summary = {
  sm_processed : int;
  sm_accepted : int;
  sm_rejected : (string * int) list;  (** rejections per code, sorted *)
  sm_degraded : int;  (** Degraded transitions *)
  sm_restored : int;  (** Restored transitions *)
  sm_selfchecks : int;  (** differential checks run *)
  sm_mismatch : string option;  (** first incremental/full divergence *)
  sm_flows : int;  (** admitted set size after the run *)
}

val summary_to_json : summary -> Rtnet_util.Json.t

val run :
  ?sink:Rtnet_telemetry.Sink.t ->
  ?log:out_channel ->
  ?journal:(Journal.record -> unit) ->
  ?snapshot:(seq:int -> Rtnet_util.Json.t -> unit) ->
  config ->
  Engine.t ->
  start:int ->
  Request.t list ->
  summary
(** [run config engine ~start requests] decides [requests] in order;
    [start] is the absolute index of the first (non-zero when
    resuming).  Per decision, in order: decide → [journal] callback →
    [log] line ({!Journal.record_line}) → self-check → [snapshot]
    callback.  The journal callback owns durability (and is where the
    crash-injection hook lives); [snapshot] receives the sequence
    number {e after} the covered decision. *)
