(** Incremental admission engine: the Section 4.3 feasibility analysis
    maintained as a running data structure instead of recomputed per
    request.

    For every admitted flow [M] the engine caches the integer
    quantities [r(M)], [u(M)] and the interference transmission time,
    all of which are sums of per-pair terms; admitting or evicting a
    flow [f] adds or subtracts [f]'s term from each resident class in
    O(1) per class (with only the classes whose sums moved marked
    dirty), instead of re-running the O(n²) pairwise analysis.  The ξ
    machinery is cached too: the time-tree bound [ξ₂ = Xi.eq5] is a
    per-engine constant of the parameters, and the static-tree bound
    [S₁ = Multi_tree.bound] is memoized by its only inputs [(u, v)].

    Because all cached quantities are exact integers and the final
    bound is the same float expression Feasibility evaluates, the
    incremental answer is bit-identical to a from-scratch
    {!Rtnet_core.Feasibility.check} — an invariant {!selfcheck}
    asserts and the service's differential mode gates on. *)

type t

val create :
  phy:Rtnet_channel.Phy.t ->
  num_sources:int ->
  params:Rtnet_core.Ddcr_params.t ->
  (t, string) result
(** [create ~phy ~num_sources ~params] is an empty engine; the
    parameters are validated against [num_sources]. *)

type reject_code =
  | Infeasible of { binding : string; headroom : float }
      (** some class's [B_DDCR] would exceed its deadline; [binding]
          is the worst class and [headroom] its (negative) slack *)
  | Unknown_flow  (** remove/modify of a flow that is not admitted *)
  | Duplicate_flow  (** add of a flow id that is already admitted *)
  | Invalid_params of string  (** malformed flow parameters *)
  | Overloaded of { retry_after : int }
      (** shed by the service's backpressure (never emitted by the
          engine itself); [retry_after] is the backlog hint *)

type decision =
  | Accepted of { binding : (string * float) option }
      (** admitted; [binding] is the tightest class and its headroom
          [d − B_DDCR] after the change ([None] when the flow set
          became empty) *)
  | Rejected of reject_code

val decision_code : decision -> string
(** Stable short code: ["accepted"], ["infeasible"], ["unknown-flow"],
    ["duplicate-flow"], ["invalid-params"] or ["overloaded"]. *)

val decision_to_json : decision -> Rtnet_util.Json.t
val decision_of_json : Rtnet_util.Json.t -> (decision, string) result

val decide : t -> Request.t -> decision
(** [decide t req] answers [req] and, if accepted, mutates the
    admitted set.  Malformed or inconsistent requests yield structured
    rejections — never an exception.  A rejected [Modify] leaves the
    old flow admitted (atomic replace). *)

val decide_full : t -> Request.t -> decision
(** [decide_full t req] reaches the same decision as {!decide} but
    evaluates feasibility from scratch: every per-class sum recomputed
    by the O(n²) pairwise loops, every [S₁] by a direct [Multi_tree]
    call, no cache consulted.  The bench guard pins {!decide} at ≥10×
    this path. *)

val apply : t -> Request.t -> decision -> (unit, string) result
(** [apply t req d] replays a journaled decision without re-deciding:
    accepted requests mutate the admitted set, rejections are no-ops.
    Errors indicate a journal inconsistent with the engine state. *)

val selfcheck : t -> (unit, string) result
(** [selfcheck t] runs a from-scratch {!Rtnet_core.Feasibility.check}
    over the current admitted set and demands exact equality — integer
    for integer, float bit for float bit — with the cached values.
    [Ok ()] on an empty set. *)

val size : t -> int
val params : t -> Rtnet_core.Ddcr_params.t
val phy : t -> Rtnet_channel.Phy.t
val num_sources : t -> int

val flows : t -> (Request.flow * int) list
(** Admitted flows with their engine-assigned class ids, in class-id
    (= admission) order. *)

val headroom : t -> (string * float) option
(** Current binding class and its headroom; [None] when empty. *)

val instance : t -> (Rtnet_workload.Instance.t, string) result
(** [instance t] materializes the admitted set as a workload instance
    (periodic arrivals phased at each flow's offset) — the bridge to
    the simulator and to {!Rtnet_core.Feasibility}. *)

val snapshot : t -> Rtnet_util.Json.t
(** Serialize the admitted set (flows + class-id counter).  The caches
    are not serialized; {!restore} rebuilds them. *)

val restore :
  phy:Rtnet_channel.Phy.t ->
  num_sources:int ->
  params:Rtnet_core.Ddcr_params.t ->
  Rtnet_util.Json.t ->
  (t, string) result
(** [restore ~phy ~num_sources ~params j] rebuilds an engine from a
    {!snapshot}, recomputing every cached sum from scratch. *)

type stats = {
  st_decisions : int;  (** decisions answered *)
  st_s1_hits : int;  (** S₁ memo hits *)
  st_s1_misses : int;  (** S₁ memo misses (fresh Multi_tree calls) *)
}

val stats : t -> stats
