module Int_math = Rtnet_util.Int_math
module Json = Rtnet_util.Json
module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Arrival = Rtnet_workload.Arrival
module Phy = Rtnet_channel.Phy
module Ddcr_params = Rtnet_core.Ddcr_params
module Multi_tree = Rtnet_core.Multi_tree
module Xi = Rtnet_core.Xi
module Feasibility = Rtnet_core.Feasibility

let ( let* ) = Result.bind

(* Per-admitted-flow cache of the Section 4.3 quantities.  [en_r] is
   the rank sum *including* the paper's [−1] left out (so r(M) =
   en_r − 1); [en_u]/[en_tx] are the interference count and its
   transmission time.  All three are exact integer sums of per-pair
   terms, so delta updates commute and removing a flow restores the
   pre-add values bit-for-bit — which is what lets the differential
   self-check demand *exact* float equality against Feasibility. *)
type entry = {
  en_flow : Request.flow;
  en_cls_id : int;
  en_wire : int;
  mutable en_r : int;
  mutable en_u : int;
  mutable en_tx : int;
  mutable en_bound : float;
  mutable en_dirty : bool;
}

type t = {
  phy : Phy.t;
  num_sources : int;
  params : Ddcr_params.t;
  arbitrated : bool;
  x : float;
  eq5 : int;  (* cached time-tree search bound ξ₂ = Xi.eq5(m, F) *)
  s1_tab : (int * int, float) Hashtbl.t;  (* (u, v) ↦ ξ̃ bound S₁ *)
  flows : (string, entry) Hashtbl.t;
  mutable entries : entry list;  (* unordered; ties broken by cls_id *)
  mutable next_cls_id : int;
  mutable n_decisions : int;
  mutable n_s1_hits : int;
  mutable n_s1_misses : int;
}

let create ~phy ~num_sources ~params =
  let* () = Ddcr_params.validate params ~num_sources in
  Ok
    {
      phy;
      num_sources;
      params;
      arbitrated = phy.Phy.semantics = Phy.Arbitration;
      x = float_of_int phy.Phy.slot_bits;
      eq5 =
        Xi.eq5 ~m:params.Ddcr_params.time_m ~t:params.Ddcr_params.time_leaves;
      s1_tab = Hashtbl.create 256;
      flows = Hashtbl.create 64;
      entries = [];
      next_cls_id = 0;
      n_decisions = 0;
      n_s1_hits = 0;
      n_s1_misses = 0;
    }

let size t = Hashtbl.length t.flows
let params t = t.params
let phy t = t.phy
let num_sources t = t.num_sources

(* -------------------- decisions -------------------- *)

type reject_code =
  | Infeasible of { binding : string; headroom : float }
  | Unknown_flow
  | Duplicate_flow
  | Invalid_params of string
  | Overloaded of { retry_after : int }

type decision =
  | Accepted of { binding : (string * float) option }
  | Rejected of reject_code

let decision_code = function
  | Accepted _ -> "accepted"
  | Rejected (Infeasible _) -> "infeasible"
  | Rejected Unknown_flow -> "unknown-flow"
  | Rejected Duplicate_flow -> "duplicate-flow"
  | Rejected (Invalid_params _) -> "invalid-params"
  | Rejected (Overloaded _) -> "overloaded"

let decision_to_json d =
  let code = ("code", Json.String (decision_code d)) in
  Json.Obj
    (match d with
    | Accepted { binding = None } -> [ code ]
    | Accepted { binding = Some (b, h) } ->
      [ code; ("binding", Json.String b); ("headroom", Json.Float h) ]
    | Rejected (Infeasible { binding; headroom }) ->
      [
        code;
        ("binding", Json.String binding);
        ("headroom", Json.Float headroom);
      ]
    | Rejected Unknown_flow | Rejected Duplicate_flow -> [ code ]
    | Rejected (Invalid_params detail) ->
      [ code; ("detail", Json.String detail) ]
    | Rejected (Overloaded { retry_after }) ->
      [ code; ("retry_after", Json.Int retry_after) ])

let decision_of_json j =
  let* code = Result.bind (Json.field "code" j) Json.get_string in
  let binding () =
    let* b = Result.bind (Json.field "binding" j) Json.get_string in
    let* h = Result.bind (Json.field "headroom" j) Json.get_float in
    Ok (b, h)
  in
  match code with
  | "accepted" -> (
    match Json.member "binding" j with
    | None -> Ok (Accepted { binding = None })
    | Some _ ->
      let* bh = binding () in
      Ok (Accepted { binding = Some bh }))
  | "infeasible" ->
    let* b, h = binding () in
    Ok (Rejected (Infeasible { binding = b; headroom = h }))
  | "unknown-flow" -> Ok (Rejected Unknown_flow)
  | "duplicate-flow" -> Ok (Rejected Duplicate_flow)
  | "invalid-params" ->
    let* detail = Result.bind (Json.field "detail" j) Json.get_string in
    Ok (Rejected (Invalid_params detail))
  | "overloaded" ->
    let* retry_after = Result.bind (Json.field "retry_after" j) Json.get_int in
    Ok (Rejected (Overloaded { retry_after }))
  | other -> Error (Printf.sprintf "unknown decision code %S" other)

(* -------------------- feasibility terms -------------------- *)

(* The per-pair terms mirror Feasibility.{rank,interference}_bound and
   Feasibility.transmission_time verbatim — integer for integer. *)

let term_r ~m_deadline (c : Request.flow) =
  Int_math.cdiv m_deadline c.Request.fl_window * c.Request.fl_burst

let term_u ~m_deadline ~m_wire (c : Request.flow) =
  let numerator = m_deadline + c.Request.fl_deadline - m_wire in
  max 0 (Int_math.cdiv numerator c.Request.fl_window) * c.Request.fl_burst

let s1 t ~u ~v =
  match Hashtbl.find_opt t.s1_tab (u, v) with
  | Some s ->
    t.n_s1_hits <- t.n_s1_hits + 1;
    s
  | None ->
    t.n_s1_misses <- t.n_s1_misses + 1;
    let s =
      Multi_tree.bound ~m:t.params.Ddcr_params.static_m
        ~t:t.params.Ddcr_params.static_leaves ~u ~v
    in
    Hashtbl.add t.s1_tab (u, v) s;
    s

let v_of t en =
  1 + ((en.en_r - 1) / Ddcr_params.nu t.params en.en_flow.Request.fl_source)

(* B_DDCR from the cached integers; bit-identical to
   Feasibility.latency_bound{,_arbitrated} because every operation and
   its order match. *)
let bound_of t en =
  let u = en.en_u in
  let v = v_of t en in
  if t.arbitrated then
    float_of_int en.en_tx +. (t.x *. float_of_int (u + Int_math.cdiv v 2))
  else
    float_of_int en.en_tx
    +. (t.x *. (s1 t ~u ~v +. float_of_int (Int_math.cdiv v 2 * t.eq5)))

let refresh t en =
  if en.en_dirty then begin
    en.en_bound <- bound_of t en;
    en.en_dirty <- false
  end

(* -------------------- attach / detach -------------------- *)

let mk_entry t ~cls_id f =
  {
    en_flow = f;
    en_cls_id = cls_id;
    en_wire = Phy.tx_bits t.phy f.Request.fl_bits;
    en_r = 0;
    en_u = 0;
    en_tx = 0;
    en_bound = 0.;
    en_dirty = true;
  }

(* Add [en] to the admitted set, pushing its terms into every resident
   class and summing the residents' (and its own) terms into it.  Only
   classes whose sums actually moved are marked dirty — the dirty set. *)
let attach t en =
  let f = en.en_flow in
  en.en_r <- 0;
  en.en_u <- 0;
  en.en_tx <- 0;
  en.en_dirty <- true;
  let fold other =
    let g = other.en_flow in
    let du =
      term_u ~m_deadline:g.Request.fl_deadline ~m_wire:other.en_wire f
    in
    other.en_u <- other.en_u + du;
    other.en_tx <- other.en_tx + (du * en.en_wire);
    if du <> 0 then other.en_dirty <- true;
    if g.Request.fl_source = f.Request.fl_source then begin
      other.en_r <- other.en_r + term_r ~m_deadline:g.Request.fl_deadline f;
      other.en_dirty <- true
    end;
    let du' =
      term_u ~m_deadline:f.Request.fl_deadline ~m_wire:en.en_wire g
    in
    en.en_u <- en.en_u + du';
    en.en_tx <- en.en_tx + (du' * other.en_wire);
    if g.Request.fl_source = f.Request.fl_source then
      en.en_r <- en.en_r + term_r ~m_deadline:f.Request.fl_deadline g
  in
  List.iter fold t.entries;
  let self = term_u ~m_deadline:f.Request.fl_deadline ~m_wire:en.en_wire f in
  en.en_u <- en.en_u + self;
  en.en_tx <- en.en_tx + (self * en.en_wire);
  en.en_r <- en.en_r + term_r ~m_deadline:f.Request.fl_deadline f;
  Hashtbl.replace t.flows f.Request.fl_id en;
  t.entries <- en :: t.entries

let detach t en =
  let f = en.en_flow in
  Hashtbl.remove t.flows f.Request.fl_id;
  t.entries <- List.filter (fun e -> e != en) t.entries;
  List.iter
    (fun other ->
      let g = other.en_flow in
      let du =
        term_u ~m_deadline:g.Request.fl_deadline ~m_wire:other.en_wire f
      in
      other.en_u <- other.en_u - du;
      other.en_tx <- other.en_tx - (du * en.en_wire);
      if du <> 0 then other.en_dirty <- true;
      if g.Request.fl_source = f.Request.fl_source then begin
        other.en_r <- other.en_r - term_r ~m_deadline:g.Request.fl_deadline f;
        other.en_dirty <- true
      end)
    t.entries

(* -------------------- evaluation -------------------- *)

type eval = Empty | Eval of { binding : string; headroom : float; ok : bool }

let better (id_a, cls_a, h_a) (id_b, cls_b, h_b) =
  if h_a < h_b then (id_a, cls_a, h_a)
  else if h_b < h_a then (id_b, cls_b, h_b)
  else if cls_a <= cls_b then (id_a, cls_a, h_a)
  else (id_b, cls_b, h_b)

let evaluate t =
  match t.entries with
  | [] -> Empty
  | first :: _ ->
    refresh t first;
    let init =
      ( first.en_flow.Request.fl_id,
        first.en_cls_id,
        float_of_int first.en_flow.Request.fl_deadline -. first.en_bound )
    in
    let ok = ref true in
    let worst =
      List.fold_left
        (fun acc en ->
          refresh t en;
          if
            not
              (en.en_bound <= float_of_int en.en_flow.Request.fl_deadline)
          then ok := false;
          if en == first then acc
          else
            better acc
              ( en.en_flow.Request.fl_id,
                en.en_cls_id,
                float_of_int en.en_flow.Request.fl_deadline -. en.en_bound ))
        init t.entries
    in
    let binding, _, headroom = worst in
    Eval { binding; headroom; ok = !ok }

(* From-scratch twin of [evaluate]: every sum recomputed by the O(n²)
   pairwise loops and every S₁ by a direct Multi_tree call — no cache
   is read or written.  The bench guard pins [decide] at ≥10× this. *)
let evaluate_full t =
  match t.entries with
  | [] -> Empty
  | entries_hd :: _ ->
    let fresh en =
      let f = en.en_flow in
      let r = ref 0 and u = ref 0 and tx = ref 0 in
      List.iter
        (fun other ->
          let g = other.en_flow in
          let du =
            term_u ~m_deadline:f.Request.fl_deadline ~m_wire:en.en_wire g
          in
          u := !u + du;
          tx := !tx + (du * other.en_wire);
          if g.Request.fl_source = f.Request.fl_source then
            r := !r + term_r ~m_deadline:f.Request.fl_deadline g)
        t.entries;
      let v =
        1 + ((!r - 1) / Ddcr_params.nu t.params f.Request.fl_source)
      in
      let bound =
        if t.arbitrated then
          float_of_int !tx
          +. (t.x *. float_of_int (!u + Int_math.cdiv v 2))
        else
          float_of_int !tx
          +. t.x
             *. (Multi_tree.bound ~m:t.params.Ddcr_params.static_m
                   ~t:t.params.Ddcr_params.static_leaves ~u:!u ~v
                +. float_of_int
                     (Int_math.cdiv v 2
                     * Xi.eq5 ~m:t.params.Ddcr_params.time_m
                         ~t:t.params.Ddcr_params.time_leaves))
      in
      (en, bound)
    in
    let first = fresh entries_hd in
    let hr (en, bound) = float_of_int en.en_flow.Request.fl_deadline -. bound in
    let init =
      let en, _ = first in
      (en.en_flow.Request.fl_id, en.en_cls_id, hr first)
    in
    let ok = ref true in
    let worst =
      List.fold_left
        (fun acc en ->
          let ((_, bound) as fb) = if en == entries_hd then first else fresh en in
          if not (bound <= float_of_int en.en_flow.Request.fl_deadline) then
            ok := false;
          if en == entries_hd then acc
          else better acc (en.en_flow.Request.fl_id, en.en_cls_id, hr fb))
        init t.entries
    in
    let binding, _, headroom = worst in
    Eval { binding; headroom; ok = !ok }

(* -------------------- the decision procedure -------------------- *)

let validate_flow t (f : Request.flow) =
  if String.length f.Request.fl_id = 0 then Error "empty flow id"
  else if f.Request.fl_source < 0 || f.Request.fl_source >= t.num_sources then
    Error
      (Printf.sprintf "source %d out of range [0, %d)" f.Request.fl_source
         t.num_sources)
  else if f.Request.fl_bits <= 0 then Error "bits must be positive"
  else if f.Request.fl_deadline <= 0 then Error "deadline must be positive"
  else if f.Request.fl_burst < 1 then Error "burst must be >= 1"
  else if f.Request.fl_window <= 0 then Error "window must be positive"
  else if f.Request.fl_offset < 0 then Error "offset must be >= 0"
  else Ok ()

let decide_with ~eval t req =
  t.n_decisions <- t.n_decisions + 1;
  match req with
  | Request.Add f -> (
    match validate_flow t f with
    | Error e -> Rejected (Invalid_params e)
    | Ok () ->
      if Hashtbl.mem t.flows f.Request.fl_id then Rejected Duplicate_flow
      else begin
        let en = mk_entry t ~cls_id:t.next_cls_id f in
        attach t en;
        match eval t with
        | Empty -> assert false
        | Eval { binding; headroom; ok } ->
          if ok then begin
            t.next_cls_id <- t.next_cls_id + 1;
            Accepted { binding = Some (binding, headroom) }
          end
          else begin
            detach t en;
            Rejected (Infeasible { binding; headroom })
          end
      end)
  | Request.Remove id -> (
    match Hashtbl.find_opt t.flows id with
    | None -> Rejected Unknown_flow
    | Some en -> (
      detach t en;
      (* Evictions only shrink every sum, so the survivors stay
         feasible; the decision reports the new binding headroom. *)
      match eval t with
      | Empty -> Accepted { binding = None }
      | Eval { binding; headroom; _ } ->
        Accepted { binding = Some (binding, headroom) }))
  | Request.Modify f -> (
    match validate_flow t f with
    | Error e -> Rejected (Invalid_params e)
    | Ok () -> (
      match Hashtbl.find_opt t.flows f.Request.fl_id with
      | None -> Rejected Unknown_flow
      | Some old -> (
        detach t old;
        let en = mk_entry t ~cls_id:t.next_cls_id f in
        attach t en;
        match eval t with
        | Empty -> assert false
        | Eval { binding; headroom; ok } ->
          if ok then begin
            t.next_cls_id <- t.next_cls_id + 1;
            Accepted { binding = Some (binding, headroom) }
          end
          else begin
            (* Atomic replace: infeasible new parameters leave the old
               flow admitted under its original class id. *)
            detach t en;
            attach t old;
            Rejected (Infeasible { binding; headroom })
          end)))

let decide t req = decide_with ~eval:evaluate t req
let decide_full t req = decide_with ~eval:evaluate_full t req

(* Replay a journaled decision without re-deciding: accepted requests
   mutate, rejections are no-ops.  Errors mean the journal does not
   describe this engine's history. *)
let apply t req decision =
  match (req, decision) with
  | _, Rejected _ -> Ok ()
  | Request.Add f, Accepted _ ->
    if Hashtbl.mem t.flows f.Request.fl_id then
      Error (Printf.sprintf "journal: duplicate add of %s" f.Request.fl_id)
    else begin
      attach t (mk_entry t ~cls_id:t.next_cls_id f);
      t.next_cls_id <- t.next_cls_id + 1;
      Ok ()
    end
  | Request.Remove id, Accepted _ -> (
    match Hashtbl.find_opt t.flows id with
    | None -> Error (Printf.sprintf "journal: remove of unknown %s" id)
    | Some en ->
      detach t en;
      Ok ())
  | Request.Modify f, Accepted _ -> (
    match Hashtbl.find_opt t.flows f.Request.fl_id with
    | None -> Error (Printf.sprintf "journal: modify of unknown %s" f.Request.fl_id)
    | Some old ->
      detach t old;
      attach t (mk_entry t ~cls_id:t.next_cls_id f);
      t.next_cls_id <- t.next_cls_id + 1;
      Ok ())

(* -------------------- views -------------------- *)

let by_cls_id t =
  List.sort (fun a b -> compare a.en_cls_id b.en_cls_id) t.entries

let flows t =
  List.map
    (fun en -> (en.en_flow, en.en_cls_id))
    (by_cls_id t)

let headroom t =
  match evaluate t with
  | Empty -> None
  | Eval { binding; headroom; _ } -> Some (binding, headroom)

let cls_of_entry en =
  let f = en.en_flow in
  {
    Message.cls_id = en.en_cls_id;
    cls_name = f.Request.fl_id;
    cls_source = f.Request.fl_source;
    cls_bits = f.Request.fl_bits;
    cls_deadline = f.Request.fl_deadline;
    cls_burst = f.Request.fl_burst;
    cls_window = f.Request.fl_window;
  }

let instance t =
  match t.entries with
  | [] -> Error "no admitted flows"
  | _ ->
    Instance.create ~name:"admit" ~phy:t.phy ~num_sources:t.num_sources
      (List.map
         (fun en ->
           ( cls_of_entry en,
             Arrival.Periodic { offset = en.en_flow.Request.fl_offset } ))
         (by_cls_id t))

(* -------------------- differential self-check -------------------- *)

(* The invariant the whole fast path hangs on: the cached answer must
   equal a from-scratch Feasibility.check — not approximately, exactly,
   down to the float bit pattern (both sides compute the same integer
   sums and the same float expression). *)
let selfcheck t =
  match t.entries with
  | [] -> Ok ()
  | _ -> (
    match instance t with
    | Error e -> Error ("selfcheck: " ^ e)
    | Ok inst ->
      let report = Feasibility.check t.params inst in
      let mismatch = ref None in
      let note fmt = Printf.ksprintf (fun s -> mismatch := Some s) fmt in
      List.iter
        (fun cr ->
          if !mismatch = None then begin
            let cid = cr.Feasibility.cr_cls.Message.cls_id in
            match
              List.find_opt (fun en -> en.en_cls_id = cid) t.entries
            with
            | None -> note "selfcheck: class %d not in engine" cid
            | Some en ->
              refresh t en;
              if cr.Feasibility.cr_r <> en.en_r - 1 then
                note "selfcheck: %s: r %d <> %d"
                  en.en_flow.Request.fl_id cr.Feasibility.cr_r (en.en_r - 1)
              else if cr.Feasibility.cr_u <> en.en_u then
                note "selfcheck: %s: u %d <> %d" en.en_flow.Request.fl_id
                  cr.Feasibility.cr_u en.en_u
              else if cr.Feasibility.cr_v <> v_of t en then
                note "selfcheck: %s: v %d <> %d" en.en_flow.Request.fl_id
                  cr.Feasibility.cr_v (v_of t en)
              else if cr.Feasibility.cr_bound <> en.en_bound then
                note "selfcheck: %s: bound %.17g <> %.17g"
                  en.en_flow.Request.fl_id cr.Feasibility.cr_bound
                  en.en_bound
              else if
                cr.Feasibility.cr_feasible
                <> (en.en_bound
                   <= float_of_int en.en_flow.Request.fl_deadline)
              then
                note "selfcheck: %s: feasibility verdict differs"
                  en.en_flow.Request.fl_id
          end)
        report.Feasibility.per_class;
      (match !mismatch with
      | None ->
        if List.length report.Feasibility.per_class <> size t then
          note "selfcheck: class count %d <> %d"
            (List.length report.Feasibility.per_class)
            (size t)
      | Some _ -> ());
      match !mismatch with None -> Ok () | Some m -> Error m)

(* -------------------- snapshots -------------------- *)

let snapshot t =
  Json.Obj
    [
      ("next_cls_id", Json.Int t.next_cls_id);
      ( "flows",
        Json.List
          (List.map
             (fun en ->
               match Request.flow_to_json en.en_flow with
               | Json.Obj fields ->
                 Json.Obj (("cls_id", Json.Int en.en_cls_id) :: fields)
               | _ -> assert false)
             (by_cls_id t)) );
    ]

let restore ~phy ~num_sources ~params j =
  let* t = create ~phy ~num_sources ~params in
  let* next_cls_id = Result.bind (Json.field "next_cls_id" j) Json.get_int in
  let* flows = Result.bind (Json.field "flows" j) Json.get_list in
  let* () =
    List.fold_left
      (fun acc fj ->
        let* () = acc in
        let* cls_id = Result.bind (Json.field "cls_id" fj) Json.get_int in
        let* f = Request.flow_of_json fj in
        let* () = validate_flow t f in
        if Hashtbl.mem t.flows f.Request.fl_id then
          Error (Printf.sprintf "snapshot: duplicate flow %s" f.Request.fl_id)
        else if cls_id >= next_cls_id then
          Error (Printf.sprintf "snapshot: class id %d >= next %d" cls_id
                   next_cls_id)
        else begin
          attach t (mk_entry t ~cls_id f);
          Ok ()
        end)
      (Ok ()) flows
  in
  t.next_cls_id <- next_cls_id;
  Ok t

(* -------------------- counters -------------------- *)

type stats = { st_decisions : int; st_s1_hits : int; st_s1_misses : int }

let stats t =
  {
    st_decisions = t.n_decisions;
    st_s1_hits = t.n_s1_hits;
    st_s1_misses = t.n_s1_misses;
  }
