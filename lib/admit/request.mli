(** Admission-request vocabulary: flow descriptions, the three request
    operations, and self-contained churn trace files.

    A {!flow} is a named message class in the making: once admitted it
    becomes a {!Rtnet_workload.Message.cls} with an engine-assigned
    class id and a periodic arrival law phased at [fl_offset].  All
    quantities are in bit-times, exactly as in the feasibility
    conditions of Section 4.3. *)

type flow = {
  fl_id : string;  (** service-scoped flow name, e.g. ["f12"] *)
  fl_source : int;  (** owning station, [0 <= fl_source < sources] *)
  fl_bits : int;  (** Data-Link frame length [l] *)
  fl_deadline : int;  (** relative deadline [d(M)], bit-times *)
  fl_burst : int;  (** burst size [a(M)] *)
  fl_window : int;  (** arrival window [w(M)], bit-times *)
  fl_offset : int;  (** periodic arrival phase, bit-times *)
}

type t =
  | Add of flow  (** admit a new flow *)
  | Remove of string  (** evict the named flow *)
  | Modify of flow
      (** atomically replace the named flow's parameters; if the new
          parameters are infeasible the old flow stays admitted *)

val flow_id : t -> string
(** [flow_id r] is the flow name the request targets. *)

val op : t -> string
(** [op r] is ["add"], ["remove"] or ["modify"]. *)

val flow_to_json : flow -> Rtnet_util.Json.t
val flow_of_json : Rtnet_util.Json.t -> (flow, string) result
val to_json : t -> Rtnet_util.Json.t
val of_json : Rtnet_util.Json.t -> (t, string) result

val phy_of_name : string -> (Rtnet_channel.Phy.t, string) result
(** [phy_of_name n] resolves one of the shipped media by its [name]
    field (["gigabit-ethernet"], ["classic-ethernet"], ["atm-bus"]). *)

type trace = {
  tr_phy : Rtnet_channel.Phy.t;  (** broadcast medium *)
  tr_sources : int;  (** station count [z] *)
  tr_params : Rtnet_core.Ddcr_params.t;  (** protocol parameters *)
  tr_requests : t list;  (** the churn stream, in arrival order *)
}
(** A self-contained churn trace: everything [ddcr_admit run] needs.
    Embedding the parameters keeps broken-params fixtures (the
    accept-then-violate seeds) reproducible from one file. *)

val trace_to_json : trace -> Rtnet_util.Json.t
val trace_of_json : Rtnet_util.Json.t -> (trace, string) result
(** Decoding validates the parameters against [tr_sources] and knows
    only schema version 1 (key ["admit_trace_version"]). *)

val save_trace : path:string -> trace -> unit
val load_trace : path:string -> (trace, string) result

val trace_hash : trace -> string
(** [trace_hash tr] is the hex digest of the canonical trace JSON —
    journal and snapshot files record it so [--resume] refuses to
    replay a journal against a different trace. *)
