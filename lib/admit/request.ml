module Json = Rtnet_util.Json
module Phy = Rtnet_channel.Phy
module Ddcr_params = Rtnet_core.Ddcr_params

let ( let* ) = Result.bind

type flow = {
  fl_id : string;
  fl_source : int;
  fl_bits : int;
  fl_deadline : int;
  fl_burst : int;
  fl_window : int;
  fl_offset : int;
}

type t = Add of flow | Remove of string | Modify of flow

let flow_id = function Add f | Modify f -> f.fl_id | Remove id -> id
let op = function Add _ -> "add" | Remove _ -> "remove" | Modify _ -> "modify"

(* -------------------- canonical JSON -------------------- *)

let flow_to_json f =
  Json.Obj
    [
      ("id", Json.String f.fl_id);
      ("source", Json.Int f.fl_source);
      ("bits", Json.Int f.fl_bits);
      ("deadline", Json.Int f.fl_deadline);
      ("burst", Json.Int f.fl_burst);
      ("window", Json.Int f.fl_window);
      ("offset", Json.Int f.fl_offset);
    ]

let flow_of_json j =
  let* id = Result.bind (Json.field "id" j) Json.get_string in
  let int_field key = Result.bind (Json.field key j) Json.get_int in
  let* source = int_field "source" in
  let* bits = int_field "bits" in
  let* deadline = int_field "deadline" in
  let* burst = int_field "burst" in
  let* window = int_field "window" in
  let* offset = int_field "offset" in
  Ok
    {
      fl_id = id;
      fl_source = source;
      fl_bits = bits;
      fl_deadline = deadline;
      fl_burst = burst;
      fl_window = window;
      fl_offset = offset;
    }

let to_json = function
  | Add f -> Json.Obj [ ("op", Json.String "add"); ("flow", flow_to_json f) ]
  | Modify f ->
    Json.Obj [ ("op", Json.String "modify"); ("flow", flow_to_json f) ]
  | Remove id ->
    Json.Obj [ ("op", Json.String "remove"); ("id", Json.String id) ]

let of_json j =
  let* op = Result.bind (Json.field "op" j) Json.get_string in
  match op with
  | "add" ->
    let* f = Result.bind (Json.field "flow" j) flow_of_json in
    Ok (Add f)
  | "modify" ->
    let* f = Result.bind (Json.field "flow" j) flow_of_json in
    Ok (Modify f)
  | "remove" ->
    let* id = Result.bind (Json.field "id" j) Json.get_string in
    Ok (Remove id)
  | other -> Error (Printf.sprintf "unknown request op %S" other)

(* -------------------- trace files -------------------- *)

(* Media are referenced by name: the three shipped PHYs are the whole
   vocabulary, and a name keeps trace fixtures self-contained without
   a Phy codec. *)
let phys = [ Phy.gigabit_ethernet; Phy.classic_ethernet; Phy.atm_bus ]

let phy_of_name name =
  match List.find_opt (fun (p : Phy.t) -> String.equal p.Phy.name name) phys with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown phy %S" name)

type trace = {
  tr_phy : Phy.t;
  tr_sources : int;
  tr_params : Ddcr_params.t;
  tr_requests : t list;
}

let schema_version = 1

let trace_to_json tr =
  Json.Obj
    [
      ("admit_trace_version", Json.Int schema_version);
      ("phy", Json.String tr.tr_phy.Phy.name);
      ("sources", Json.Int tr.tr_sources);
      ("params", Ddcr_params.to_json tr.tr_params);
      ("requests", Json.List (List.map to_json tr.tr_requests));
    ]

let trace_of_json j =
  let* v = Result.bind (Json.field "admit_trace_version" j) Json.get_int in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported admit trace version %d" v)
  else
    let* phy_name = Result.bind (Json.field "phy" j) Json.get_string in
    let* phy = phy_of_name phy_name in
    let* sources = Result.bind (Json.field "sources" j) Json.get_int in
    let* params =
      Result.map_error
        (fun e -> "params: " ^ e)
        (Result.bind (Json.field "params" j) Ddcr_params.of_json)
    in
    let* reqs = Result.bind (Json.field "requests" j) Json.get_list in
    let* requests =
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | r :: tl -> (
          match of_json r with
          | Ok req -> go (i + 1) (req :: acc) tl
          | Error e -> Error (Printf.sprintf "request %d: %s" i e))
      in
      go 0 [] reqs
    in
    if sources < 1 then Error "sources < 1"
    else if
      Result.is_error (Ddcr_params.validate params ~num_sources:sources)
    then
      Error
        (match Ddcr_params.validate params ~num_sources:sources with
        | Error e -> "params: " ^ e
        | Ok () -> assert false)
    else
      Ok { tr_phy = phy; tr_sources = sources; tr_params = params;
           tr_requests = requests }

let save_trace ~path tr = Json.to_file path (trace_to_json tr)

let load_trace ~path =
  let* j = Json.parse_file path in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (trace_of_json j)

(* The hash pins journal and snapshot files to the exact trace they
   were recorded under; resuming against a different trace is refused
   rather than silently replayed into nonsense. *)
let trace_hash tr = Digest.to_hex (Digest.string (Json.to_string (trace_to_json tr)))
