module Json = Rtnet_util.Json

let ( let* ) = Result.bind

type record = {
  jr_seq : int;
  jr_request : Request.t;
  jr_decision : Engine.decision;
}

let record_to_json r =
  Json.Obj
    [
      ("seq", Json.Int r.jr_seq);
      ("request", Request.to_json r.jr_request);
      ("decision", Engine.decision_to_json r.jr_decision);
    ]

let record_of_json j =
  let* seq = Result.bind (Json.field "seq" j) Json.get_int in
  let* request = Result.bind (Json.field "request" j) Request.of_json in
  let* decision =
    Result.bind (Json.field "decision" j) Engine.decision_of_json
  in
  Ok { jr_seq = seq; jr_request = request; jr_decision = decision }

let record_line r = Json.to_string (record_to_json r)

(* -------------------- wire format -------------------- *)

(* Length-prefixed records: a 4-byte big-endian payload length followed
   by the canonical JSON bytes.  The first record is the header
   ({"admit_journal_version", "trace_hash"}); decision records follow.
   A record whose bytes end early — torn length field or torn payload,
   the shapes a kill -9 mid-write or a prefix truncation produce — is
   dropped; a fully-present record that fails to parse is corruption
   and an error (same contract as Campaign.Checkpoint's torn-tail
   tolerance, transposed from line-JSON to length prefixes). *)

let schema_version = 1

let header_json ~trace_hash =
  Json.Obj
    [
      ("admit_journal_version", Json.Int schema_version);
      ("trace_hash", Json.String trace_hash);
    ]

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

type loaded = {
  lo_records : record list;
  lo_torn : bool;  (** a torn tail (or torn header) was dropped *)
  lo_valid_bytes : int;  (** prefix length holding intact records *)
}

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e

let load ~path ~trace_hash =
  if not (Sys.file_exists path) then
    Ok { lo_records = []; lo_torn = false; lo_valid_bytes = 0 }
  else
    let* bytes = read_file path in
    let total = String.length bytes in
    (* [next pos] is [Some (payload, pos')] for an intact frame, [None]
       for a torn one (not enough bytes for the length or the payload). *)
    let next pos =
      if pos + 4 > total then None
      else
        let n = Int32.to_int (String.get_int32_be bytes pos) in
        if n < 0 || pos + 4 + n > total then None
        else Some (String.sub bytes (pos + 4) n, pos + 4 + n)
    in
    match next 0 with
    | None ->
      (* Torn header: the journal never recorded anything usable. *)
      Ok { lo_records = []; lo_torn = total > 0; lo_valid_bytes = 0 }
    | Some (header, pos0) ->
      let* () =
        let* j =
          Result.map_error (fun e -> "journal header: " ^ e) (Json.parse header)
        in
        let* v =
          Result.bind (Json.field "admit_journal_version" j) Json.get_int
        in
        if v <> schema_version then
          Error (Printf.sprintf "unsupported journal version %d" v)
        else
          let* h = Result.bind (Json.field "trace_hash" j) Json.get_string in
          if not (String.equal h trace_hash) then
            Error "journal was recorded under a different trace"
          else Ok ()
      in
      let rec go pos seq acc =
        if pos = total then Ok (List.rev acc, false, pos)
        else
          match next pos with
          | None -> Ok (List.rev acc, true, pos)
          | Some (payload, pos') ->
            let* j =
              Result.map_error
                (fun e -> Printf.sprintf "journal record %d: %s" seq e)
                (Json.parse payload)
            in
            let* r =
              Result.map_error
                (fun e -> Printf.sprintf "journal record %d: %s" seq e)
                (record_of_json j)
            in
            if r.jr_seq <> seq then
              Error
                (Printf.sprintf "journal record %d carries seq %d" seq r.jr_seq)
            else go pos' (seq + 1) (r :: acc)
      in
      let* records, torn, valid = go pos0 0 [] in
      Ok { lo_records = records; lo_torn = torn; lo_valid_bytes = valid }

(* -------------------- appending -------------------- *)

type writer = { w_oc : out_channel }

let create ~path ~trace_hash =
  try
    let oc = open_out_bin path in
    output_string oc (frame (Json.to_string (header_json ~trace_hash)));
    flush oc;
    Ok { w_oc = oc }
  with Sys_error e -> Error e

(* Re-open after a crash: the torn tail (if any) is cut off so fresh
   records extend the intact prefix. *)
let open_append ~path ~valid_bytes =
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd valid_bytes;
    let (_ : int) = Unix.lseek fd 0 Unix.SEEK_END in
    Ok { w_oc = Unix.out_channel_of_descr fd }
  with
  | Sys_error e -> Error e
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let append w r =
  output_string w.w_oc (frame (record_line r));
  flush w.w_oc

(* Test hook: write only the first half of the framed record — exactly
   what a kill -9 mid-write leaves behind. *)
let append_torn w r =
  let framed = frame (record_line r) in
  output_string w.w_oc (String.sub framed 0 (String.length framed / 2));
  flush w.w_oc

let close w = close_out_noerr w.w_oc

(* -------------------- snapshots -------------------- *)

let snapshot_path path = path ^ ".snap"

let snapshot_to_json ~trace_hash ~seq state =
  Json.Obj
    [
      ("admit_snapshot_version", Json.Int schema_version);
      ("trace_hash", Json.String trace_hash);
      ("seq", Json.Int seq);
      ("engine", state);
    ]

(* Atomic via tmp + rename, so a crash mid-snapshot leaves the previous
   snapshot (or none) — never a torn one. *)
let save_snapshot ~path ~trace_hash ~seq state =
  let sp = snapshot_path path in
  let tmp = sp ^ ".tmp" in
  try
    Json.to_file tmp (snapshot_to_json ~trace_hash ~seq state);
    Sys.rename tmp sp;
    Ok ()
  with Sys_error e -> Error e

(* A missing, unparseable or mismatched snapshot is not fatal — the
   journal alone reconstructs the state, just more slowly. *)
let load_snapshot ~path ~trace_hash =
  let sp = snapshot_path path in
  if not (Sys.file_exists sp) then None
  else
    match Json.parse_file sp with
    | Error _ -> None
    | Ok j -> (
      let ok =
        let* v =
          Result.bind (Json.field "admit_snapshot_version" j) Json.get_int
        in
        let* h = Result.bind (Json.field "trace_hash" j) Json.get_string in
        let* seq = Result.bind (Json.field "seq" j) Json.get_int in
        let* state = Json.field "engine" j in
        if v <> schema_version || not (String.equal h trace_hash) then
          Error "stale"
        else Ok (seq, state)
      in
      match ok with Ok r -> Some r | Error _ -> None)
