(** CSMA/DCR — the 802.3D deterministic collision resolution protocol
    (Le Lann & Rolin, 1984), cited in Section 5 as the {i STs-like}
    ancestor of CSMA/DDCR that was deployed industrially.

    Identical to CSMA/DDCR with the time-tree layer removed: channel
    access is à la CSMA-CD, and every collision is resolved by one
    balanced m-ary search of the {b static} tree, in static-index
    order.  Latency is bounded (unlike BEB) but the resolution order
    ignores deadlines, so deadline inversions grow with load — the gap
    that CSMA/DDCR's deadline equivalence classes close. *)

type params = {
  static_m : int;  (** branching degree *)
  static_leaves : int;  (** [q], a power of [static_m] *)
  static_indices : int array array;  (** per-source disjoint indices *)
}

val default : ?indices_per_source:int -> Rtnet_workload.Instance.t -> params
(** [default inst] sizes the static tree exactly as
    {!Rtnet_core.Ddcr_params.default} does. *)

val of_ddcr : Rtnet_core.Ddcr_params.t -> params
(** [of_ddcr p] reuses a CSMA/DDCR configuration's static tree — for
    like-for-like comparisons. *)

val run_trace :
  params ->
  Rtnet_workload.Instance.t ->
  Rtnet_workload.Message.t list ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run_trace params inst trace ~horizon] simulates the trace under
    CSMA/DCR. *)

val run :
  ?seed:int ->
  params ->
  Rtnet_workload.Instance.t ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run params inst ~horizon] generates the instance's trace (default
    seed 1) and simulates it. *)
