module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Phy = Rtnet_channel.Phy
module Edf_queue = Rtnet_edf.Edf_queue
module Run = Rtnet_stats.Run

type params = { slot_bits : int }

let default inst =
  let max_wire =
    List.fold_left
      (fun acc c -> max acc (Phy.tx_bits inst.Instance.phy c.Message.cls_bits))
      1 (Instance.classes inst)
  in
  { slot_bits = max_wire + inst.Instance.phy.Phy.slot_bits }

let run_trace ?params inst trace ~horizon =
  let p = match params with Some p -> p | None -> default inst in
  let z = inst.Instance.num_sources in
  let phy = inst.Instance.phy in
  List.iter
    (fun m ->
      if Phy.tx_bits phy m.Message.cls.Message.cls_bits > p.slot_bits then
        invalid_arg "Tdma.run_trace: frame larger than the TDMA slot")
    trace;
  let queues = Array.make z Edf_queue.empty in
  let completions = ref [] in
  let busy_bits = ref 0 in
  let tx_count = ref 0 in
  let arrivals =
    ref
      (List.sort
         (fun a b ->
           compare (a.Message.arrival, a.Message.uid) (b.Message.arrival, b.Message.uid))
         trace)
  in
  let deliver now =
    let rec go = function
      | m :: rest when m.Message.arrival <= now ->
        let s = m.Message.cls.Message.cls_source in
        queues.(s) <- Edf_queue.insert queues.(s) m;
        go rest
      | rest -> arrivals := rest
    in
    go !arrivals
  in
  let now = ref 0 in
  let owner = ref 0 in
  while !now < horizon do
    deliver !now;
    (match Edf_queue.pop queues.(!owner) with
    | Some (m, q) ->
      queues.(!owner) <- q;
      let on_wire = Phy.tx_bits phy m.Message.cls.Message.cls_bits in
      completions :=
        { Run.c_msg = m; c_start = !now; c_finish = !now + on_wire }
        :: !completions;
      busy_bits := !busy_bits + on_wire;
      incr tx_count
    | None -> ());
    owner := (!owner + 1) mod z;
    now := !now + p.slot_bits
  done;
  let unfinished =
    Array.fold_left (fun acc q -> acc @ Edf_queue.to_sorted_list q) [] queues
    @ List.filter (fun m -> m.Message.arrival < horizon) !arrivals
  in
  {
    Run.protocol = "tdma";
    completions = List.rev !completions;
    unfinished;
    dropped = [];
    horizon;
    channel =
      Some
        {
          Rtnet_channel.Channel.idle_slots = 0;
          collision_slots = 0;
          tx_count = !tx_count;
          garbled_count = 0;
          busy_bits = !busy_bits;
          total_bits = !now;
        };
    faults = None;
  }

let run ?(seed = 1) ?params inst ~horizon =
  run_trace ?params inst (Instance.trace inst ~seed ~horizon) ~horizon
