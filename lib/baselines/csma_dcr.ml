module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Channel = Rtnet_channel.Channel
module Harness = Rtnet_mac.Harness
module Ddcr_params = Rtnet_core.Ddcr_params

type params = {
  static_m : int;
  static_leaves : int;
  static_indices : int array array;
}

let default ?indices_per_source inst =
  let p = Ddcr_params.default ?indices_per_source inst in
  {
    static_m = p.Ddcr_params.static_m;
    static_leaves = p.Ddcr_params.static_leaves;
    static_indices = p.Ddcr_params.static_indices;
  }

let of_ddcr p =
  {
    static_m = p.Ddcr_params.static_m;
    static_leaves = p.Ddcr_params.static_leaves;
    static_indices = p.Ddcr_params.static_indices;
  }

type phase = Free | Search of (int * int) list

let run_trace params inst trace ~horizon =
  let z = inst.Instance.num_sources in
  if Array.length params.static_indices <> z then
    invalid_arg "Csma_dcr.run_trace: one index set per source required";
  (* Shared deterministic state, replicated from channel feedback
     exactly as in CSMA/DDCR's STs — minus the time-tree layer. *)
  let phase = ref Free in
  let ranks = Array.make z 0 in
  let attempt_of src m =
    {
      Channel.att_source = src;
      att_tag = m.Message.uid;
      att_bits = m.Message.cls.Message.cls_bits;
      att_key = (Message.abs_deadline m, src);
    }
  in
  let split (lo, w) =
    let child = w / params.static_m in
    List.init params.static_m (fun i -> (lo + (i * child), child))
  in
  let decide services ~now:_ =
    match !phase with
    | Free ->
      List.filter_map
        (fun src -> Option.map (attempt_of src) (services.Harness.peek src))
        (List.init z Fun.id)
    | Search [] -> assert false
    | Search ((lo, w) :: _) ->
      List.filter_map
        (fun src ->
          let own = params.static_indices.(src) in
          if
            ranks.(src) < Array.length own
            && own.(ranks.(src)) >= lo
            && own.(ranks.(src)) < lo + w
          then Option.map (attempt_of src) (services.Harness.peek src)
          else None)
        (List.init z Fun.id)
  in
  let after _services ~now:_ ~resolution ~next_free =
    (match (!phase, resolution) with
    | _, Channel.Garbled _ -> () (* noise: retry the current step *)
    | Free, (Channel.Idle | Channel.Tx _) -> ()
    | Free, Channel.Clash { survivor; _ } ->
      Array.fill ranks 0 z 0;
      (match survivor with
      | Some (src, _, _) -> ranks.(src) <- 1
      | None -> ());
      phase := Search [ (0, params.static_leaves) ]
    | Search [], _ -> assert false
    | Search (((_, w) as top) :: rest), res -> (
      match res with
      | Channel.Garbled _ -> assert false (* handled above *)
      | Channel.Idle -> phase := if rest = [] then Free else Search rest
      | Channel.Tx { src; _ } ->
        ranks.(src) <- ranks.(src) + 1;
        phase := (if rest = [] then Free else Search rest)
      | Channel.Clash { survivor; _ } ->
        (match survivor with
        | Some (src, _, _) -> ranks.(src) <- ranks.(src) + 1
        | None -> ());
        if w > 1 then phase := Search (split top @ rest)
        else
          invalid_arg
            "Csma_dcr: collision on a static leaf (indices not disjoint)"));
    next_free
  in
  Harness.run ~protocol:"csma-dcr" ~phy:inst.Instance.phy ~num_sources:z
    ~horizon ~decide ~after trace

let run ?(seed = 1) params inst ~horizon =
  run_trace params inst (Instance.trace inst ~seed ~horizon) ~horizon
