module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Channel = Rtnet_channel.Channel
module Harness = Rtnet_mac.Harness
module Prng = Rtnet_util.Prng

type params = { max_attempts : int; max_backoff_exp : int }

let ethernet = { max_attempts = 16; max_backoff_exp = 10 }

let run_trace ?(params = ethernet) ?fault ?plan ~seed inst trace ~horizon =
  let z = inst.Instance.num_sources in
  let rng = Prng.create seed in
  (* Per-station MAC state: consecutive collisions of the head frame,
     and remaining backoff slots (counted down on idle slots only). *)
  let attempts = Array.make z 0 in
  let backoff = Array.make z 0 in
  let reset src =
    attempts.(src) <- 0;
    backoff.(src) <- 0
  in
  let decide services ~now:_ =
    List.filter_map
      (fun src ->
        match services.Harness.peek src with
        | Some m when backoff.(src) = 0 ->
          Some
            {
              Channel.att_source = src;
              att_tag = m.Message.uid;
              att_bits = m.Message.cls.Message.cls_bits;
              att_key = (Message.abs_deadline m, src);
            }
        | Some _ | None -> None)
      (List.init z Fun.id)
  in
  let after services ~now:_ ~resolution ~next_free =
    (match resolution with
    | Channel.Garbled _ ->
      (* A CRC error is not a collision: the station retransmits
         without touching its backoff state. *)
      ()
    | Channel.Idle ->
      Array.iteri (fun src b -> if b > 0 then backoff.(src) <- b - 1) backoff
    | Channel.Tx { src; _ } ->
      (* The harness already recorded the completion and popped the
         frame; the station starts fresh on its next one. *)
      reset src
    | Channel.Clash { contenders; survivor } ->
      (match survivor with
      | Some (src, _, _) -> reset src
      | None -> ());
      List.iter
        (fun (src, _) ->
          match survivor with
          | Some (s, _, _) when s = src -> ()
          | Some _ | None ->
            attempts.(src) <- attempts.(src) + 1;
            if attempts.(src) >= params.max_attempts then begin
              (match services.Harness.pop src with
              | Some m -> services.Harness.drop m
              | None -> assert false);
              reset src
            end
            else begin
              let exp = min attempts.(src) params.max_backoff_exp in
              backoff.(src) <- Prng.int rng (1 lsl exp)
            end)
        contenders);
    next_free
  in
  Harness.run ~protocol:"csma-cd-beb" ?fault ?plan ~phy:inst.Instance.phy
    ~num_sources:z ~horizon ~decide ~after trace

let run ?params ?fault ?plan ~seed inst ~horizon =
  run_trace ?params ?fault ?plan ~seed inst (Instance.trace inst ~seed ~horizon) ~horizon
