(** CSMA-CD with truncated binary exponential backoff — the standard
    Ethernet MAC (IEEE 802.3) that CSMA/DDCR replaces.

    Each source services its queue in EDF order (so the comparison with
    CSMA/DDCR isolates the {i collision resolution} policy), attempts
    when the channel is free, and on the [n]-th consecutive collision
    of a frame waits a uniform number of slots in
    [\[0, 2^min(n,10) − 1]]; after 16 attempts the frame is dropped.
    The randomness makes transmission latency unbounded in the worst
    case — the paper's argument for a deterministic resolution. *)

type params = {
  max_attempts : int;  (** drop threshold (Ethernet: 16) *)
  max_backoff_exp : int;  (** truncation exponent (Ethernet: 10) *)
}

val ethernet : params
(** [ethernet] is the standard 802.3 parameter set. *)

val run_trace :
  ?params:params ->
  ?fault:Rtnet_channel.Channel.fault ->
  ?plan:Rtnet_channel.Fault_plan.t ->
  seed:int ->
  Rtnet_workload.Instance.t ->
  Rtnet_workload.Message.t list ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run_trace ~seed inst trace ~horizon] simulates the trace under
    CSMA-CD/BEB.  [seed] drives the backoff draws (deterministic
    replay).  [plan] injects wire-level fault-plan noise; BEB has no
    replicated state, so per-source misperception merely perturbs its
    backoff decisions and crashes silence the station. *)

val run :
  ?params:params ->
  ?fault:Rtnet_channel.Channel.fault ->
  ?plan:Rtnet_channel.Fault_plan.t ->
  seed:int ->
  Rtnet_workload.Instance.t ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run ~seed inst ~horizon] generates the instance's trace (same
    seed) and simulates it. *)
