(** Fixed-assignment TDMA — the contention-free alternative.

    Time is divided into rounds of [z] equal slots, one per source;
    source [i] may start one frame at the beginning of its slot in each
    round (frames fit the slot by construction).  Latency is trivially
    bounded, but the bound degrades linearly with [z] and unused slots
    are wasted — the reservation-based strawman against which
    contention protocols with near-optimal channel utilisation are
    motivated (Section 3.1). *)

type params = { slot_bits : int  (** TDMA slot length, bit-times *) }

val default : Rtnet_workload.Instance.t -> params
(** [default inst] sizes the TDMA slot for the largest on-wire frame
    of the instance plus one contention slot of guard time. *)

val run_trace :
  ?params:params ->
  Rtnet_workload.Instance.t ->
  Rtnet_workload.Message.t list ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run_trace inst trace ~horizon] simulates the trace under TDMA.
    @raise Invalid_argument if some frame exceeds the TDMA slot. *)

val run :
  ?seed:int ->
  ?params:params ->
  Rtnet_workload.Instance.t ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run inst ~horizon] generates the instance's trace (default seed
    1) and simulates it. *)
