(** Problem P1: worst-case balanced m-ary tree search times (Section 4.1).

    [ξ_k^t] is the worst-case number of {i non-transmission} channel
    slots (collision slots plus empty slots) needed to isolate [k]
    active leaves in a [t]-leaf balanced m-ary tree, [t = m^n] — the
    highest search time over all [C(t,k)] ways of choosing the [k]
    leaves (Eq. 1).  Successful transmissions do not count.

    This module implements every expression of Section 4.1 as a
    separate entry point so that the test suite can cross-validate
    them:

    - {!of_recursion}: Eq. 1 solved by direct maximisation over
      compositions (the defining equation — expensive, used as ground
      truth);
    - {!table}: the divide-and-conquer recursion Eq. 2–3 (with the
      [t = m] base computed from Eq. 1, reproducing Eq. 4);
    - {!exact}: the closed form Eq. 10 (O(log t) per query);
    - {!eq5}, {!eq6}, {!eq7}: the special values [ξ_2^t],
      [ξ_{2t/m}^t], [ξ_t^t];
    - {!derivative}: Eq. 8, the difference [ξ_{2p+2}^t − ξ_{2p}^t];
    - {!linear_tail}: Eq. 15, the exact linear expression on
      [\[2t/m, t\]];
    - {!tilde}: Eq. 11, the concave asymptotic function [ξ̃_k^t], a
      tight upper bound on [ξ_k^t] over [\[2, 2t/m\]], exact at
      [k = 2m^i];
    - {!max_gap}, {!gap_bound}, {!gap_bound_universal}: Eq. 12–14.

    All entry points raise [Invalid_argument] when [m < 2], [t] is not
    a positive power of [m], or [k ∉ [0, t]]. *)

val exact : m:int -> t:int -> k:int -> int
(** [exact ~m ~t ~k] is [ξ_k^t] by the closed form (Eq. 10), in exact
    integer arithmetic. *)

val table : m:int -> t:int -> int array
(** [table ~m ~t] is the full vector [ξ_0^t .. ξ_t^t] computed with the
    divide-and-conquer recursion (Eq. 2–3) — an implementation
    independent of {!exact}. *)

val of_recursion : m:int -> t:int -> k:int -> int
(** [of_recursion ~m ~t ~k] solves the defining recursion (Eq. 1) by
    dynamic programming over the max-plus composition convolution.
    O(m·t²) per tree level — ground truth for moderate [t]. *)

val eq5 : m:int -> t:int -> int
(** [eq5 ~m ~t] is [ξ_2^t = m·log_m t − 1] (Eq. 5). *)

val eq6 : m:int -> t:int -> int
(** [eq6 ~m ~t] is [ξ_{2t/m}^t = (t−1)/(m−1) + t − 2t/m] (Eq. 6). *)

val eq7 : m:int -> t:int -> int
(** [eq7 ~m ~t] is [ξ_t^t = (t−1)/(m−1)] (Eq. 7). *)

val derivative : m:int -> t:int -> p:int -> int
(** [derivative ~m ~t ~p] is [ξ_{2p+2}^t − ξ_{2p}^t =
    m·(log_m t − ⌊log_m (mp)⌋) − 2] (Eq. 8), for
    [p ∈ [1, t/2 − 1]], [t = m^n] with [n ≥ 2]. *)

val linear_tail : m:int -> t:int -> k:int -> int
(** [linear_tail ~m ~t ~k] is [ξ_k^t = (mt−1)/(m−1) − k], valid on
    [k ∈ [2t/m, t]] (Eq. 15). *)

val tilde : m:int -> t:int -> float -> float
(** [tilde ~m ~t k] is the asymptotic function
    [ξ̃_k^t = (m·k/2 − 1)/(m−1) + m·(k/2)·log_m(2t/k) − k] (Eq. 11),
    defined for real [k ∈ (0, t]].  It upper-bounds [ξ_k^t] on
    [\[2, 2t/m\]] and coincides with it at [k = 2m^i]. *)

val tilde_is_exact_at : m:int -> t:int -> k:int -> bool
(** [tilde_is_exact_at ~m ~t ~k] is [true] iff [k = 2m^i] for some
    [i ∈ [0, ⌊log_m(t/2)⌋]] — the abscissas where Eq. 11 meets Eq. 10. *)

val max_gap : m:int -> t:int -> float
(** [max_gap ~m ~t] is [max_{k∈[2,2t/m]} (ξ̃_k^t − ξ_k^t)] over {b even}
    [k], i.e. over the [ξ_{2p}^t] function of Eq. 9 from which Eq. 11
    is derived — the quantity bounded by Eq. 13–14 (computed
    exhaustively; the bound is numerically tight in this form). *)

val max_gap_any_parity : m:int -> t:int -> float
(** [max_gap_any_parity ~m ~t] is the same maximum over all integer
    [k ∈ [2, 2t/m]].  Odd abscissas add a bounded sawtooth (Eq. 3:
    [ξ_{2p+1} = ξ_{2p} − 1] while [ξ̃] interpolates smoothly), so this
    value exceeds {!max_gap} by a few slots. *)

val gap_bound : m:int -> float
(** [gap_bound ~m] is the per-[m] tightness coefficient of Eq. 13:
    [m^{1/(m−1)}/(e·ln m) − 1/(m−1)]; [max_gap ~m ~t <= gap_bound ~m · t]. *)

val gap_bound_universal : float
(** [gap_bound_universal] is Eq. 14's universal coefficient
    [√√3/(2e·ln 3) − 1/8 ≈ 0.0954]: for every [m],
    [max_gap ~m ~t ≤ 9.54% · t]. *)

val expected : m:int -> t:int -> k:int -> float
(** [expected ~m ~t ~k] is the {e expected} number of non-transmission
    slots to isolate [k] active leaves drawn uniformly at random from
    the [t] leaves — the average-case counterpart of [ξ_k^t], computed
    exactly from the nested hypergeometric occupancy of the tree: a
    node is probed iff its parent subtree holds at least two active
    leaves, and a probe costs a slot unless it isolates exactly one.
    Section 3.1's channel-utilization argument rests on this average
    case ("tree protocols achieve channel utilization ratios very close
    to theoretical upper bounds"). *)

val expected_efficiency : m:int -> t:int -> k:int -> frame_slots:float -> float
(** [expected_efficiency ~m ~t ~k ~frame_slots] is the expected channel
    efficiency of one collision-resolution epoch: [k] frames of
    [frame_slots] slots each, divided by the same plus the expected
    search slots. *)

val worst_case_subset : m:int -> t:int -> k:int -> int list
(** [worst_case_subset ~m ~t ~k] is a witness: a sorted list of [k]
    distinct leaves of the [t]-leaf tree whose deterministic search
    costs exactly [ξ_k^t] slots (maximising split recovered from the
    defining recursion).  Feeding it to {!Tree_search.run} must yield
    {!exact}. *)

val total_over_ks : m:int -> t:int -> int
(** [total_over_ks ~m ~t] is [Σ_{k=2}^{t} ξ_k^t] — the figure-of-merit
    used to compare branching degrees ("optimal m", end of
    Section 4.1). *)

val best_branching : min_leaves:int -> candidates:int list -> int
(** [best_branching ~min_leaves ~candidates] returns the branching
    degree among [candidates] whose smallest tree with at least
    [min_leaves] leaves minimises {!total_over_ks} normalised by the
    leaf count. *)
