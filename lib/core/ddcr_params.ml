module Int_math = Rtnet_util.Int_math
module Instance = Rtnet_workload.Instance
module Message = Rtnet_workload.Message
module Phy = Rtnet_channel.Phy

type t = {
  time_m : int;
  time_leaves : int;
  class_width : int;
  alpha : int;
  theta : int;
  static_m : int;
  static_leaves : int;
  static_indices : int array array;
  burst_bits : int;
}

let validate p ~num_sources =
  let power_of m v = m >= 2 && v >= m && Int_math.is_power_of m v in
  if not (power_of p.time_m p.time_leaves) then
    Error "time_leaves must be a power (>= m) of time_m"
  else if not (power_of p.static_m p.static_leaves) then
    Error "static_leaves must be a power (>= m) of static_m"
  else if p.class_width <= 0 then Error "class_width must be positive"
  else if p.alpha < 0 then Error "alpha must be non-negative"
  else if p.theta < 0 then Error "theta must be non-negative"
  else if p.burst_bits < 0 then Error "burst_bits must be non-negative"
  else if Array.length p.static_indices <> num_sources then
    Error "static_indices must have one entry per source"
  else begin
    let seen = Hashtbl.create 16 in
    let check_source i idx =
      if Array.length idx = 0 then
        Some (Printf.sprintf "source %d has no static index" i)
      else begin
        let bad = ref None in
        Array.iteri
          (fun j v ->
            if v < 0 || v >= p.static_leaves then
              bad := Some (Printf.sprintf "source %d: index %d out of range" i v)
            else if j > 0 && idx.(j - 1) >= v then
              bad := Some (Printf.sprintf "source %d: indices not ascending" i)
            else if Hashtbl.mem seen v then
              bad := Some (Printf.sprintf "static index %d allocated twice" v)
            else Hashtbl.add seen v ())
          idx;
        !bad
      end
    in
    let rec go i =
      if i >= num_sources then Ok ()
      else
        match check_source i p.static_indices.(i) with
        | Some e -> Error e
        | None -> go (i + 1)
    in
    go 0
  end

let nu p i = Array.length p.static_indices.(i)

type allocation = Round_robin | Contiguous | Weighted

(* Divide q leaves in proportion to per-source peak load, at least one
   each, largest remainders first. *)
let weighted_shares inst ~q =
  let z = inst.Instance.num_sources in
  let load i =
    List.fold_left
      (fun acc c ->
        acc
        +. float_of_int (c.Message.cls_burst * Phy.tx_bits inst.Instance.phy c.Message.cls_bits)
           /. float_of_int c.Message.cls_window)
      0.
      (Instance.classes_of_source inst i)
  in
  let loads = Array.init z load in
  let total = Array.fold_left ( +. ) 0. loads in
  let shares = Array.make z 1 in
  let spare = q - z in
  if total > 0. && spare > 0 then begin
    let ideal = Array.map (fun l -> float_of_int spare *. l /. total) loads in
    let floors = Array.map int_of_float ideal in
    Array.iteri (fun i f -> shares.(i) <- shares.(i) + f) floors;
    let used = Array.fold_left ( + ) 0 floors in
    (* Hand the leftover leaves to the largest remainders. *)
    let remainders =
      Array.to_list
        (Array.mapi (fun i x -> (x -. float_of_int floors.(i), i)) ideal)
    in
    let by_remainder = List.sort (fun a b -> compare b a) remainders in
    List.iteri
      (fun rank (_, i) -> if rank < spare - used then shares.(i) <- shares.(i) + 1)
      by_remainder
  end;
  shares

let allocate inst ~allocation ~q =
  let z = inst.Instance.num_sources in
  match allocation with
  | Round_robin ->
    let per = q / z in
    Array.init z (fun i -> Array.init per (fun j -> (j * z) + i))
  | Contiguous ->
    let per = q / z in
    Array.init z (fun i -> Array.init per (fun j -> (i * per) + j))
  | Weighted ->
    let shares = weighted_shares inst ~q in
    let next = ref 0 in
    Array.map
      (fun n ->
        let block = Array.init n (fun j -> !next + j) in
        next := !next + n;
        block)
      shares

let default ?(indices_per_source = 1) ?(time_leaves = 64) ?(branching = 4)
    ?(allocation = Round_robin) inst =
  if indices_per_source < 1 then
    invalid_arg "Ddcr_params.default: indices_per_source < 1";
  if branching < 2 then invalid_arg "Ddcr_params.default: branching < 2";
  let z = inst.Instance.num_sources in
  let m = branching in
  (* Round the requested leaf count up to the next power of m. *)
  let time_leaves =
    if time_leaves < m then m
    else begin
      let rec up p = if p >= time_leaves then p else up (p * m) in
      up m
    end
  in
  let needed = max m (z * indices_per_source) in
  let rec tree size = if size >= needed then size else tree (size * m) in
  let q = tree m in
  (* Fill the tree: idle leaves cost search slots without carrying
     anything, and a larger ν_i lets a source drain more of a burst per
     static search (v(M) shrinks in the FCs). *)
  let static_indices = allocate inst ~allocation ~q in
  let slot = inst.Instance.phy.Phy.slot_bits in
  let max_wire =
    List.fold_left
      (fun acc c -> max acc (Phy.tx_bits inst.Instance.phy c.Message.cls_bits))
      1 (Instance.classes inst)
  in
  let max_deadline =
    List.fold_left
      (fun acc c -> max acc c.Message.cls_deadline)
      1 (Instance.classes inst)
  in
  (* Two dimensioning constraints on the class width c:
     - a deadline class should hold roughly one static search of the
       sources' worth of traffic (q contention slots plus two maximal
       frames), and
     - the scheduling horizon c·F must cover the largest relative
       deadline, or fresh messages compute a time index beyond F − 1
       and are shut out of time tree searches until their deadline
       draws near (the channel-idleness pathology of Section 3.2). *)
  let c_search = (slot * q) + (2 * max_wire) in
  let c_horizon = Int_math.cdiv max_deadline (time_leaves - 2) in
  let c = max c_search c_horizon in
  {
    time_m = m;
    time_leaves;
    class_width = c;
    alpha = c;
    theta = 0;
    static_m = m;
    static_leaves = q;
    static_indices;
    burst_bits = 0;
  }

let with_burst p bits =
  if bits < 0 then invalid_arg "Ddcr_params.with_burst: negative";
  { p with burst_bits = bits }

let with_theta p th =
  if th < 0 then invalid_arg "Ddcr_params.with_theta: negative";
  { p with theta = th }

let horizon_classes p = p.class_width * p.time_leaves

(* Canonical JSON codec (fixed key order) — repro artifacts embed a
   parameter override so a model-checker counterexample seeded by a
   pathological configuration replays against those exact parameters. *)
module Json = Rtnet_util.Json

let to_json p =
  Json.Obj
    [
      ("time_m", Json.Int p.time_m);
      ("time_leaves", Json.Int p.time_leaves);
      ("class_width", Json.Int p.class_width);
      ("alpha", Json.Int p.alpha);
      ("theta", Json.Int p.theta);
      ("static_m", Json.Int p.static_m);
      ("static_leaves", Json.Int p.static_leaves);
      ( "static_indices",
        Json.List
          (Array.to_list
             (Array.map
                (fun idx ->
                  Json.List
                    (Array.to_list (Array.map (fun v -> Json.Int v) idx)))
                p.static_indices)) );
      ("burst_bits", Json.Int p.burst_bits);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let int_field key = Result.bind (Json.field key j) Json.get_int in
  let* time_m = int_field "time_m" in
  let* time_leaves = int_field "time_leaves" in
  let* class_width = int_field "class_width" in
  let* alpha = int_field "alpha" in
  let* theta = int_field "theta" in
  let* static_m = int_field "static_m" in
  let* static_leaves = int_field "static_leaves" in
  let* burst_bits = int_field "burst_bits" in
  let* rows = Result.bind (Json.field "static_indices" j) Json.get_list in
  let* static_indices =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* l = Json.get_list row in
        let* ints =
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              let* i = Json.get_int v in
              Ok (i :: acc))
            (Ok []) l
        in
        Ok (Array.of_list (List.rev ints) :: acc))
      (Ok []) rows
    |> Result.map (fun rows -> Array.of_list (List.rev rows))
  in
  let p =
    {
      time_m;
      time_leaves;
      class_width;
      alpha;
      theta;
      static_m;
      static_leaves;
      static_indices;
      burst_bits;
    }
  in
  (* Decoded parameters are validated at the boundary, with the same
     diagnostics the constructors raise. *)
  let* () = validate p ~num_sources:(Array.length static_indices) in
  Ok p

let pp fmt p =
  Format.fprintf fmt
    "ddcr(time %d^: F=%d c=%d α=%d θ=%d burst=%d; static %d^: q=%d, ν=[%s])"
    p.time_m p.time_leaves p.class_width p.alpha p.theta p.burst_bits
    p.static_m p.static_leaves
    (String.concat ","
       (Array.to_list (Array.map (fun a -> string_of_int (Array.length a)) p.static_indices)))
