type verdict = Feasible of Ddcr_params.t | Infeasible of Ddcr_params.t * float

let margin p inst = (Feasibility.check p inst).Feasibility.worst_margin

let dimension ?(time_leaf_candidates = [ 16; 64; 256 ])
    ?(indices_candidates = [ 1; 2; 4 ]) inst =
  if time_leaf_candidates = [] || indices_candidates = [] then
    invalid_arg "Dimensioning.dimension: empty candidate list";
  let candidates =
    List.concat_map
      (fun f ->
        List.map
          (fun ipc ->
            Ddcr_params.default ~indices_per_source:ipc ~time_leaves:f inst)
          indices_candidates)
      time_leaf_candidates
  in
  let scored = List.map (fun p -> (p, margin p inst)) candidates in
  let feasible = List.filter (fun (_, m) -> m <= 1.) scored in
  match feasible with
  | _ :: _ ->
    let best =
      List.fold_left
        (fun (bp, bm) (p, m) ->
          if Ddcr_params.horizon_classes p < Ddcr_params.horizon_classes bp
          then (p, m)
          else (bp, bm))
        (List.hd feasible) (List.tl feasible)
    in
    Feasible (fst best)
  | [] ->
    let best =
      List.fold_left
        (fun (bp, bm) (p, m) -> if m < bm then (p, m) else (bp, bm))
        (List.hd scored) (List.tl scored)
    in
    Infeasible (fst best, snd best)

let pp_verdict fmt = function
  | Feasible p ->
    Format.fprintf fmt "feasible with %a" Ddcr_params.pp p
  | Infeasible (p, m) ->
    Format.fprintf fmt "infeasible; best candidate %a (margin %.3f)"
      Ddcr_params.pp p m
