module Int_math = Rtnet_util.Int_math

let check_tree ~m ~t =
  if m < 2 then invalid_arg "Xi_arb: branching degree m must be >= 2";
  if t < m || not (Int_math.is_power_of m t) then
    invalid_arg "Xi_arb: t must be a positive power of m, t >= m"

(* One DP level: from the child vector Z (size s) to the parent vector
   (size s·m).  For k >= 2 the probe collides, carries the winner away
   from one child (adversary's choice), and the children are searched:

     parent.(k) = 1 + max over compositions, max over winner child c.

   Computed as: A = max-plus convolution of (m-1) unshifted children,
   then combine with one winner child whose count is reduced by 1. *)
let step child s_child m =
  let neg = min_int / 2 in
  let maxconv a ~bound_b =
    let la = Array.length a - 1 in
    let reach = la + bound_b in
    let out = Array.make (reach + 1) neg in
    for total = 0 to reach do
      for q = max 0 (total - la) to min bound_b total do
        if a.(total - q) > neg then begin
          let v = a.(total - q) + child.(q) in
          if v > out.(total) then out.(total) <- v
        end
      done
    done;
    out
  in
  (* A = best sum over (m-1) ordinary children. *)
  let a = ref [| 0 |] in
  for _ = 1 to m - 1 do
    a := maxconv !a ~bound_b:s_child
  done;
  let a = !a in
  let t_next = s_child * m in
  Array.init (t_next + 1) (fun k ->
      if k = 0 then 1
      else if k = 1 then 0
      else begin
        (* winner child holds kc >= 1 leaves, searched with kc - 1. *)
        let best = ref min_int in
        for kc = 1 to min s_child k do
          if k - kc <= Array.length a - 1 then begin
            let v = a.(k - kc) + child.(kc - 1) in
            if v > !best then best := v
          end
        done;
        1 + !best
      end)

let table ~m ~t =
  check_tree ~m ~t;
  let rec go z size = if size = t then z else go (step z size m) (size * m) in
  go [| 1; 0 |] 1

let exact ~m ~t ~k =
  let z = table ~m ~t in
  if k < 0 || k > t then invalid_arg "Xi_arb.exact: k out of [0, t]";
  z.(k)

let rec of_recursion ~m ~t ~k =
  if t = 1 then begin
    match k with
    | 0 -> 1
    | 1 -> 0
    | _ -> invalid_arg "Xi_arb.of_recursion: k > leaves"
  end
  else if k = 0 then 1
  else if k = 1 then 0
  else begin
    let child = t / m in
    (* Enumerate compositions of k into m parts bounded by child. *)
    let best = ref min_int in
    let parts = Array.make m 0 in
    let rec fill i remaining =
      if i = m - 1 then begin
        if remaining <= child then begin
          parts.(i) <- remaining;
          (* Try every child as the winner's subtree. *)
          for c = 0 to m - 1 do
            if parts.(c) >= 1 then begin
              let sum = ref 0 in
              for j = 0 to m - 1 do
                let kj = if j = c then parts.(j) - 1 else parts.(j) in
                sum := !sum + of_recursion ~m ~t:child ~k:kj
              done;
              if !sum > !best then best := !sum
            end
          done
        end
      end
      else
        for v = 0 to min child remaining do
          parts.(i) <- v;
          fill (i + 1) (remaining - v)
        done
    in
    fill 0 k;
    1 + !best
  end
