(** End-to-end deadline decomposition for multi-hop flows.

    The paper's feasibility machinery (Section 4.3) bounds the latency
    of a class on {e one} broadcast segment by [B_DDCR].  A flow routed
    across several federated segments must meet its end-to-end deadline
    [d(M)] over the whole path, so [d(M)] has to be split into per-hop
    budgets: hop [i] receives [b_i] bit-times, each store-and-forward
    bridge consumes its fixed relaying delay, and the decomposition is
    sound iff

    {[ Σ_i b_i + Σ bridge delays <= d(M)  and  b_i >= ceil B_DDCR_i ]}

    because then (by induction over the path) every message that meets
    its budget at every hop arrives within [d(M)].  This module owns
    the arithmetic; [Rtnet_topology.Admit] feeds it the per-hop
    [Feasibility.latency_bound] values and turns the budgets into
    per-segment deadline classes. *)

type policy =
  | Proportional
      (** split the whole post-bridge budget [d(M) − Σ delays] in
          proportion to the hops' [B_DDCR] bounds (largest-remainder
          apportionment, ties to the lowest hop index), then repair
          deterministically so every hop still covers its bound — slack
          goes where the bound says contention is worst *)
  | Slack_weighted
      (** give every hop exactly its bound [ceil B_DDCR_i], then share
          the remaining slack {e equally} across hops (the first
          [slack mod n] hops get one spare bit-time) — every hop gets
          the same absolute headroom against jitter *)

val policy_label : policy -> string
(** ["proportional"] or ["slack-weighted"] — the CLI spelling. *)

val policy_of_label : string -> (policy, string) result
(** Inverse of {!policy_label} (also accepts ["slack"]). *)

val split :
  policy:policy ->
  deadline:int ->
  bridge_delays:int list ->
  bounds:float list ->
  (int list, string) result
(** [split ~policy ~deadline ~bridge_delays ~bounds] decomposes the
    end-to-end deadline over [List.length bounds] hops ([bounds] are
    the per-hop [B_DDCR] values in bit-times; [bridge_delays] the fixed
    store-and-forward delays between consecutive hops, one fewer than
    the hops — only their sum matters).  Returns the per-hop budgets,
    which always satisfy the soundness invariant above with
    [Σ b_i + Σ delays = max (Σ needs) (d − Σ delays) + Σ delays <= d];
    in fact both policies spend the full budget:
    [Σ b_i = deadline − Σ delays].  Errors when there are no hops, a
    delay is negative, or the deadline cannot cover the bounds plus the
    bridge delays (the flow is unadmittable at any split).  Purely
    arithmetic and deterministic: equal inputs give equal budgets. *)
