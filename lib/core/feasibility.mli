(** Feasibility Conditions for HRTDM under CSMA/DDCR (Section 4.3).

    For a message class [M] of source [s_i], the paper derives, under
    peak-load (worst-case) arrival conditions:

    - [r(M) = Σ_{m∈MSG_i} ⌈d(M)/w(m)⌉·a(m) − 1], an upper bound on the
      number of [s_i]'s own messages serviced before [M];
    - [u(M) = Σ_{m∈MSG} ⌈(d(M)+d(m)−l'(M)/ψ)/w(m)⌉·a(m)], an upper
      bound on the messages transmitted by {i all} sources over
      [I(M) = [T(M), T(M)+d(M))];
    - [v(M) = 1 + ⌊r(M)/ν_i⌋], an upper bound on the static tree
      searches needed before [M]'s turn;
    - [B_DDCR(s_i, M)]: the transmission time of the [u(M)] messages
      plus [x·(S₁ + S₂)], where [S₁ = v·ξ̃^q_{u/v}] bounds the static
      searches (problem P2) and [S₂ = ⌈v/2⌉·ξ₂^F] bounds the time-tree
      searches (two active leaves per time tree being the worst case).

    The instance is feasible iff [B_DDCR(s_i, M) ≤ d(M)] for every
    class.

    All quantities are in bit-times ([ψ = 1] bit per bit-time), with
    [l'] the PHY-expanded frame length and [x] the slot time of the
    instance's medium. *)

val rank_bound : Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> int
(** [rank_bound inst m_cls] is [r(M)].
    @raise Invalid_argument if the class is not part of [inst]. *)

val interference_bound :
  Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> int
(** [interference_bound inst m_cls] is [u(M)] (per-class terms with a
    non-positive numerator contribute zero). *)

val static_trees_bound :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> int
(** [static_trees_bound p inst m_cls] is [v(M)]. *)

val search_slot_bound :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> float
(** [search_slot_bound p inst m_cls] is [S = S₁ + S₂] in slots. *)

val latency_bound :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> float
(** [latency_bound p inst m_cls] is [B_DDCR(s_i, M)] in bit-times —
    the paper's formula, verbatim. *)

val latency_bound_impl :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> float
(** [latency_bound_impl p inst m_cls] adds to {!latency_bound} the
    constant per-realisation overheads the paper's formula omits (see
    DESIGN.md §4): the open-attempt/collision slots bracketing each
    time-tree epoch ([2·x·(⌈v/2⌉+1)]) and one maximal frame of
    head-of-medium blocking (plus the packet-bursting budget when
    bursting is enabled).  Simulated latencies are validated against
    this bound. *)

val search_slot_bound_arbitrated :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> float
(** [search_slot_bound_arbitrated p inst m_cls] is the counterpart of
    {!search_slot_bound} for a non-destructive
    ({!Rtnet_channel.Phy.Arbitration}) medium under the re-probing
    discipline the automaton uses there: every collision slot carries a
    frame, so the [u(M)] interfering messages cost at most [u] slots,
    plus the paper's [⌈v/2⌉] epoch probes.  ({!Xi_arb} analyses the
    alternative split discipline.) *)

val latency_bound_arbitrated :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> Rtnet_workload.Message.cls -> float
(** [latency_bound_arbitrated p inst m_cls] is [B_DDCR] for an
    arbitrated medium — the "reasonably straightforward" derivation
    Section 3.2 alludes to for busses internal to ATM switches. *)

type class_report = {
  cr_cls : Rtnet_workload.Message.cls;  (** the class [M] *)
  cr_r : int;  (** [r(M)] *)
  cr_u : int;  (** [u(M)] *)
  cr_v : int;  (** [v(M)] *)
  cr_search_slots : float;  (** [S₁ + S₂] *)
  cr_bound : float;  (** [B_DDCR], bit-times *)
  cr_bound_impl : float;  (** implementation bound, bit-times *)
  cr_feasible : bool;  (** [B_DDCR ≤ d(M)] *)
}

type report = {
  per_class : class_report list;  (** one entry per class, id order *)
  feasible : bool;  (** conjunction over classes (paper bound) *)
  worst_margin : float;
      (** max over classes of [B_DDCR/d] — [≤ 1] iff feasible; the
          distance to (in)feasibility *)
}

val check : Ddcr_params.t -> Rtnet_workload.Instance.t -> report
(** [check p inst] evaluates the feasibility conditions for every
    class, using {!latency_bound} on destructive media and
    {!latency_bound_arbitrated} on arbitrated ones (the medium's
    semantics decide which analysis applies).
    @raise Invalid_argument if [p] fails validation. *)

val pp_report : Format.formatter -> report -> unit
(** [pp_report fmt r] prints the per-class table and the verdict. *)
