type via = Free_csma | Open_attempt | Time_tree | Static_tree | Bursting

type event =
  | Idle_slot of { time : int; phase : string }
  | Collision_slot of { time : int; phase : string; contenders : int }
  | Garbled_slot of { time : int; on_wire : int }
  | Frame_sent of {
      time : int;
      finish : int;
      source : int;
      uid : int;
      via : via;
    }
  | Tts_begin of { time : int; reft : int }
  | Tts_end of { time : int; sent : bool }
  | Sts_begin of { time : int; time_leaf : int }
  | Sts_end of { time : int }
  | Crash of { time : int; source : int }
  | Rejoin of { time : int; source : int }
  | Desync of { time : int; source : int }
  | Resync of { time : int; source : int }

type summary = {
  idle_by_phase : (string * int) list;
  collision_slots : int;
  garbled_slots : int;
  frames : int;
  frames_by_via : (via * int) list;
  tts_count : int;
  tts_productive : int;
  sts_count : int;
  crashes : int;
  rejoins : int;
  desyncs : int;
  resyncs : int;
}

let collector () =
  let events = ref [] in
  let record e = events := e :: !events in
  let finish () = List.rev !events in
  (record, finish)

let bump assoc key =
  let rec go = function
    | (k, n) :: rest when k = key -> (k, n + 1) :: rest
    | pair :: rest -> pair :: go rest
    | [] -> [ (key, 1) ]
  in
  go assoc

let summarize events =
  List.fold_left
    (fun acc e ->
      match e with
      | Idle_slot { phase; _ } ->
        { acc with idle_by_phase = bump acc.idle_by_phase phase }
      | Collision_slot _ -> { acc with collision_slots = acc.collision_slots + 1 }
      | Garbled_slot _ -> { acc with garbled_slots = acc.garbled_slots + 1 }
      | Frame_sent { via; _ } ->
        {
          acc with
          frames = acc.frames + 1;
          frames_by_via = bump acc.frames_by_via via;
        }
      | Tts_begin _ -> { acc with tts_count = acc.tts_count + 1 }
      | Tts_end { sent; _ } ->
        if sent then { acc with tts_productive = acc.tts_productive + 1 }
        else acc
      | Sts_begin _ -> { acc with sts_count = acc.sts_count + 1 }
      | Sts_end _ -> acc
      | Crash _ -> { acc with crashes = acc.crashes + 1 }
      | Rejoin _ -> { acc with rejoins = acc.rejoins + 1 }
      | Desync _ -> { acc with desyncs = acc.desyncs + 1 }
      | Resync _ -> { acc with resyncs = acc.resyncs + 1 })
    {
      idle_by_phase = [];
      collision_slots = 0;
      garbled_slots = 0;
      frames = 0;
      frames_by_via = [];
      tts_count = 0;
      tts_productive = 0;
      sts_count = 0;
      crashes = 0;
      rejoins = 0;
      desyncs = 0;
      resyncs = 0;
    }
    events

let via_name = function
  | Free_csma -> "free-csma"
  | Open_attempt -> "open-attempt"
  | Time_tree -> "time-tree"
  | Static_tree -> "static-tree"
  | Bursting -> "bursting"

let pp_via fmt v = Format.pp_print_string fmt (via_name v)

let pp_event fmt = function
  | Idle_slot { time; phase } -> Format.fprintf fmt "%10d idle (%s)" time phase
  | Collision_slot { time; phase; contenders } ->
    Format.fprintf fmt "%10d collision of %d (%s)" time contenders phase
  | Garbled_slot { time; on_wire } ->
    Format.fprintf fmt "%10d garbled frame (%d bits)" time on_wire
  | Frame_sent { time; finish; source; uid; via } ->
    Format.fprintf fmt "%10d frame src=%d uid=%d via %a (ends %d)" time source
      uid pp_via via finish
  | Tts_begin { time; reft } ->
    Format.fprintf fmt "%10d TTs begin (reft=%d)" time reft
  | Tts_end { time; sent } ->
    Format.fprintf fmt "%10d TTs end (out=%b)" time sent
  | Sts_begin { time; time_leaf } ->
    Format.fprintf fmt "%10d STs begin (class %d)" time time_leaf
  | Sts_end { time } -> Format.fprintf fmt "%10d STs end" time
  | Crash { time; source } ->
    Format.fprintf fmt "%10d source %d crashes" time source
  | Rejoin { time; source } ->
    Format.fprintf fmt "%10d source %d rejoins (listen-only)" time source
  | Desync { time; source } ->
    Format.fprintf fmt "%10d source %d desynchronized (listen-only)" time source
  | Resync { time; source } ->
    Format.fprintf fmt "%10d source %d resynchronized" time source

let pp_summary fmt s =
  Format.fprintf fmt "@[<v>frames: %d (" s.frames;
  List.iteri
    (fun i (via, n) ->
      Format.fprintf fmt "%s%a %d" (if i > 0 then ", " else "") pp_via via n)
    s.frames_by_via;
  Format.fprintf fmt ")@,collision slots: %d, garbled: %d@,idle slots:"
    s.collision_slots s.garbled_slots;
  List.iter
    (fun (phase, n) -> Format.fprintf fmt " %s=%d" phase n)
    s.idle_by_phase;
  Format.fprintf fmt "@,time tree searches: %d (%d productive), static: %d"
    s.tts_count s.tts_productive s.sts_count;
  if s.crashes > 0 || s.rejoins > 0 || s.desyncs > 0 || s.resyncs > 0 then
    Format.fprintf fmt "@,faults: %d crashes, %d rejoins, %d desyncs, %d resyncs"
      s.crashes s.rejoins s.desyncs s.resyncs;
  Format.fprintf fmt "@]"
