module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Channel = Rtnet_channel.Channel
module Phy = Rtnet_channel.Phy
module Sink = Rtnet_telemetry.Sink

exception Protocol_violation of string

(* The pure per-replica transition function.  Every field is immutable:
   [observe] maps (state, feedback) to a fresh state, so the same code
   drives the production simulator (through the thin mutable [Automaton]
   wrapper below), the lockstep-replication property tests and the
   [rtnet.model] explicit-state explorer — which needs values it can
   hash, dedup and stash in a frontier without defensive copies.  The
   records are small (a handful of words; stack tails are shared
   structurally), keeping the per-slot allocation cost to at most two
   short-lived blocks — the same property the zero-alloc slot-loop work
   relies on. *)
module Step = struct
  type tts = {
    t_stack : (int * int) list; (* unsearched time-tree intervals *)
    f_star : int; (* highest searched time leaf, -1 at entry *)
    sent : bool; (* "out": something transmitted this TTs *)
  }

  type sts = {
    s_stack : (int * int) list; (* unsearched static intervals *)
    time_leaf : int; (* the colliding deadline class *)
  }

  type phase = Free | Attempt | Tts of tts | Sts of sts * tts

  type state = {
    phase : phase;
    reft : int;
    rank : int; (* next unused own static index in current STs *)
    last_out : bool; (* [out] flag of the last completed TTs *)
  }

  let init = { phase = Free; reft = 0; rank = 0; last_out = false }

  (* f(reft, I.msg) = max(⌊(DM − (α + reft))/c⌋, f* + 1). *)
  let time_index p st tts msg =
    let natural =
      Rtnet_util.Int_math.fdiv
        (Message.abs_deadline msg - p.Ddcr_params.alpha - st.reft)
        p.Ddcr_params.class_width
    in
    max natural (tts.f_star + 1)

  let attempt_of ~source msg =
    {
      Channel.att_source = source;
      att_tag = msg.Message.uid;
      att_bits = msg.Message.cls.Message.cls_bits;
      att_key = (Message.abs_deadline msg, source);
    }

  let decide p ~source st ~msg_star =
    match (st.phase, msg_star) with
    | (Free | Attempt), Some m -> Some (attempt_of ~source m)
    | (Free | Attempt), None -> None
    | Tts tts, Some m -> (
      match tts.t_stack with
      | (lo, w) :: _ ->
        let idx = time_index p st tts m in
        if idx <= p.Ddcr_params.time_leaves - 1 && idx >= lo && idx < lo + w
        then Some (attempt_of ~source m)
        else None
      | [] -> raise (Protocol_violation "decide: empty time-tree stack"))
    | Tts _, None -> None
    | Sts (sts, tts), Some m -> (
      match sts.s_stack with
      | (lo, w) :: _ ->
        let own = p.Ddcr_params.static_indices.(source) in
        if
          st.rank < Array.length own
          && own.(st.rank) >= lo
          && own.(st.rank) < lo + w
          && time_index p st tts m <= sts.time_leaf
        then Some (attempt_of ~source m)
        else None
      | [] -> raise (Protocol_violation "decide: empty static-tree stack"))
    | Sts _, None -> None

  let enter_tts p ~reft st =
    {
      st with
      reft;
      phase =
        Tts
          {
            t_stack = [ (0, p.Ddcr_params.time_leaves) ];
            f_star = -1;
            sent = false;
          };
    }

  let finish_tts_if_done p st tts =
    match tts.t_stack with
    | _ :: _ -> { st with phase = Tts tts }
    | [] ->
      {
        st with
        reft = (if tts.sent then st.reft else st.reft + p.Ddcr_params.theta);
        last_out = tts.sent;
        phase = Attempt;
      }

  let split m (lo, w) =
    let child = w / m in
    List.init m (fun i -> (lo + (i * child), child))

  let pop_time_interval p st tts (lo, w) rest =
    finish_tts_if_done p st { tts with t_stack = rest; f_star = lo + w - 1 }

  let finish_sts_if_done p st sts tts ~next_free =
    match sts.s_stack with
    | _ :: _ -> { st with phase = Sts (sts, tts) }
    | [] -> (
      (* STs completion: reft := local physical time; the colliding
         time leaf is now fully searched. *)
      let st = { st with reft = next_free } in
      match tts.t_stack with
      | leaf :: rest -> pop_time_interval p st tts leaf rest
      | [] -> raise (Protocol_violation "sts completion: no time leaf"))

  let observe p ~source st ~resolution ~next_free =
    match st.phase with
    | Free -> (
      match resolution with
      (* A garbled frame (channel noise) carries nothing and changes no
         protocol state, in any phase: the sender simply retries its
         current step at the next slot. *)
      | Channel.Idle | Channel.Tx _ | Channel.Garbled _ -> st
      | Channel.Clash _ -> enter_tts p ~reft:next_free st)
    | Attempt -> (
      match resolution with
      | Channel.Idle -> { st with phase = Free }
      | Channel.Garbled _ -> st
      | Channel.Tx _ -> enter_tts p ~reft:st.reft st
      | Channel.Clash _ ->
        (* Resetting reft below the value accumulated by compressed
           time would undo the compression; the max keeps it monotone
           while matching "reft := local physical time" whenever the
           mode is off (reft <= physical time then). *)
        enter_tts p ~reft:(max st.reft next_free) st)
    | Tts tts -> (
      match tts.t_stack with
      | [] -> raise (Protocol_violation "observe: empty time-tree stack")
      | ((lo, w) as top) :: rest -> (
        match resolution with
        | Channel.Idle -> pop_time_interval p st tts top rest
        | Channel.Garbled _ -> st
        | Channel.Tx _ ->
          pop_time_interval p { st with reft = next_free }
            { tts with sent = true } top rest
        | Channel.Clash { survivor; _ } -> (
          match survivor with
          | Some _ ->
            (* Arbitrated medium: the collision slot carried the
               smallest-keyed frame, so re-probe the same interval —
               the remaining contenders re-arbitrate and drain one per
               slot, in absolute-deadline order (CAN-style).  Splitting
               would only add empty probes of emptied leaves. *)
            { st with reft = next_free; phase = Tts { tts with sent = true } }
          | None ->
            if w > 1 then
              {
                st with
                phase =
                  Tts
                    {
                      tts with
                      t_stack = split p.Ddcr_params.time_m top @ rest;
                    };
              }
            else
              {
                st with
                rank = 0;
                phase =
                  Sts
                    ( {
                        s_stack = [ (0, p.Ddcr_params.static_leaves) ];
                        time_leaf = lo;
                      },
                      tts );
              })))
    | Sts (sts, tts) -> (
      match sts.s_stack with
      | [] -> raise (Protocol_violation "observe: empty static-tree stack")
      | ((_, w) as top) :: rest -> (
        match resolution with
        | Channel.Idle ->
          finish_sts_if_done p st { sts with s_stack = rest } tts ~next_free
        | Channel.Garbled _ -> st
        | Channel.Tx { src; _ } ->
          let st = if src = source then { st with rank = st.rank + 1 } else st in
          finish_sts_if_done p st { sts with s_stack = rest }
            { tts with sent = true } ~next_free
        | Channel.Clash { survivor; _ } -> (
          match survivor with
          | Some (src, _, _) ->
            (* Arbitrated medium: carried frame, re-probe in place. *)
            let st =
              if src = source then { st with rank = st.rank + 1 } else st
            in
            { st with phase = Sts (sts, { tts with sent = true }) }
          | None ->
            if w > 1 then
              {
                st with
                phase =
                  Sts
                    ( {
                        sts with
                        s_stack = split p.Ddcr_params.static_m top @ rest;
                      },
                      tts );
              }
            else
              raise
                (Protocol_violation
                   "collision on a static tree leaf: static indices are not \
                    disjoint"))))

  let pp_stack fmt stack =
    List.iter (fun (lo, w) -> Format.fprintf fmt "[%d+%d)" lo w) stack

  let fingerprint st =
    match st.phase with
    | Free -> Printf.sprintf "free reft=%d" st.reft
    | Attempt -> Printf.sprintf "attempt reft=%d" st.reft
    | Tts tts ->
      Format.asprintf "tts reft=%d f*=%d sent=%b %a" st.reft tts.f_star
        tts.sent pp_stack tts.t_stack
    | Sts (sts, tts) ->
      Format.asprintf "sts reft=%d leaf=%d f*=%d sent=%b %a / %a" st.reft
        sts.time_leaf tts.f_star tts.sent pp_stack sts.s_stack pp_stack
        tts.t_stack

  let phase_name st =
    match st.phase with
    | Free -> "free"
    | Attempt -> "attempt"
    | Tts _ -> "tts"
    | Sts _ -> "sts"

  let at_boundary st =
    match st.phase with Free | Attempt -> true | Tts _ | Sts _ -> false

  let sts_leaf st =
    match st.phase with
    | Sts (sts, _) -> Some sts.time_leaf
    | Free | Attempt | Tts _ -> None

  (* Structural well-formedness — the slot-accounting obligations the
     model checker asserts on every reached state.  The proofs maintain
     these implicitly; the checker makes them machine-checked. *)
  let check_stack ~what ~leaves stack =
    let rec go expect = function
      | [] -> Ok ()
      | (lo, w) :: rest ->
        if w < 1 then Error (Printf.sprintf "%s: empty interval at %d" what lo)
        else if lo < expect then
          Error
            (Printf.sprintf "%s: interval [%d+%d) overlaps or reorders" what
               lo w)
        else if lo + w > leaves then
          Error
            (Printf.sprintf "%s: interval [%d+%d) exceeds %d leaves" what lo w
               leaves)
        else go (lo + w) rest
    in
    go 0 stack

  let wf p ~source st =
    let ( let* ) = Result.bind in
    let* () = if st.reft < 0 then Error "negative reft" else Ok () in
    let* () =
      let nu = Array.length p.Ddcr_params.static_indices.(source) in
      if st.rank < 0 || st.rank > nu then
        Error (Printf.sprintf "rank %d outside [0, %d]" st.rank nu)
      else Ok ()
    in
    match st.phase with
    | Free | Attempt -> Ok ()
    | Tts tts ->
      let* () =
        check_stack ~what:"time stack" ~leaves:p.Ddcr_params.time_leaves
          tts.t_stack
      in
      (match tts.t_stack with
      | (lo, _) :: _ when tts.f_star <> lo - 1 ->
        Error
          (Printf.sprintf "f* = %d but the top interval starts at %d"
             tts.f_star lo)
      | [] -> Error "empty time stack in phase tts"
      | _ -> Ok ())
    | Sts (sts, tts) ->
      let* () =
        check_stack ~what:"static stack" ~leaves:p.Ddcr_params.static_leaves
          sts.s_stack
      in
      let* () =
        check_stack ~what:"time stack" ~leaves:p.Ddcr_params.time_leaves
          tts.t_stack
      in
      if sts.s_stack = [] then Error "empty static stack in phase sts"
      else if
        sts.time_leaf < 0 || sts.time_leaf >= p.Ddcr_params.time_leaves
      then Error (Printf.sprintf "sts leaf %d out of range" sts.time_leaf)
      else Ok ()
end

(* The production wrapper: one mutable cell per replica around the pure
   transition function, preserving the original imperative interface. *)
module Automaton = struct
  type t = { params : Ddcr_params.t; source : int; mutable st : Step.state }

  let create params ~source = { params; source; st = Step.init }
  let state t = t.st
  let decide t ~msg_star = Step.decide t.params ~source:t.source t.st ~msg_star

  let observe t ~resolution ~next_free =
    t.st <- Step.observe t.params ~source:t.source t.st ~resolution ~next_free

  let fingerprint t = Step.fingerprint t.st
  let phase_name t = Step.phase_name t.st
  let reft t = t.st.Step.reft
  let last_tts_sent t = t.st.Step.last_out
  let sts_leaf t = Step.sts_leaf t.st
  let at_boundary t = Step.at_boundary t.st

  (* Divergence recovery (TDMH-style resync): a listen-only replica
     adopts the reference replica's shared state.  Only legal at a
     tree-epoch boundary — [Free]/[Attempt] carry no tree-search state,
     and the copied value is immutable, so nothing is shared unsafely. *)
  let resync t ~reference =
    if not (at_boundary reference) then
      invalid_arg "Automaton.resync: reference replica is inside a tree search";
    t.st <- { reference.st with Step.rank = 0 }

  (* Cold restart: the only live station re-seeds the shared state from
     scratch (everyone else resyncs to it as it becomes the reference). *)
  let restart t ~reft = t.st <- { Step.init with Step.reft = reft }
end

let run_trace ?(check_lockstep = false) ?on_event ?fault ?plan ?analyze
    ?(sink = Sink.null) ?on_complete ?inject params inst trace
    ~horizon =
  (match Ddcr_params.validate params ~num_sources:inst.Instance.num_sources with
  | Ok () -> ()
  | Error e -> invalid_arg ("Ddcr.run_trace: " ^ e));
  let z = inst.Instance.num_sources in
  let autos = Array.init z (fun source -> Automaton.create params ~source) in
  let plan_active = plan <> None in
  (* [synced.(s)]: s's replica tracks the shared state and s contends.
     Cleared on crash and on divergence detection; a non-synced live
     station is listen-only until it resyncs at a tree-epoch boundary. *)
  let synced = Array.make z true in
  let prev_alive = Array.make z true in
  let emit = match on_event with Some f -> f | None -> fun _ -> () in
  let telemetry = sink.Sink.enabled in
  (* Open tree-search spans (start bit-time, -1 when closed), for the
     telemetry [search] probe. *)
  let tts_start = ref (-1) in
  let sts_start = ref (-1) in
  let sts_sent = ref false in
  let via_of_phase = function
    | "free" -> Ddcr_trace.Free_csma
    | "attempt" -> Ddcr_trace.Open_attempt
    | "tts" -> Ddcr_trace.Time_tree
    | "sts" -> Ddcr_trace.Static_tree
    | other -> invalid_arg ("Ddcr.run_trace: unknown phase " ^ other)
  in
  let decide services ~now:_ =
    Array.to_list autos
    |> List.filter_map (fun a ->
           let s = a.Automaton.source in
           if not (services.Rtnet_mac.Harness.alive s && synced.(s)) then None
           else
             Automaton.decide a
               ~msg_star:(services.Rtnet_mac.Harness.peek s))
  in
  (* Packet bursting (Section 5): the acquiring source may append
     further EDF-ranked frames while they fit in the budget. *)
  let do_burst services src start0 =
    let open Rtnet_mac.Harness in
    let rec go start budget =
      (* Section 5: the burst carries "the first k messages (EDF
         ranked) waiting in Q" — the live queue, so arrivals during the
         acquisition participate in the ranking. *)
      services.deliver_until start;
      match services.peek src with
      | Some m
        when budget > 0
             && Phy.tx_bits inst.Instance.phy m.Message.cls.Message.cls_bits
                <= budget -> (
        match services.pop src with
        | Some m ->
          let on_wire, _ =
            Channel.burst services.channel ~src ~tag:m.Message.uid
              ~bits:m.Message.cls.Message.cls_bits
          in
          services.complete m ~start ~finish:(start + on_wire);
          emit
            (Ddcr_trace.Frame_sent
               {
                 time = start;
                 finish = start + on_wire;
                 source = src;
                 uid = m.Message.uid;
                 via = Ddcr_trace.Bursting;
               });
          go (start + on_wire) (budget - on_wire)
        | None -> start)
      | Some _ | None -> start
    in
    go start0 params.Ddcr_params.burst_bits
  in
  (* The reference replica: the lowest-id live, synced station.  It
     stands for "the shared state" in trace events, divergence
     detection and recovery.  Without a fault plan it is autos.(0),
     as before. *)
  let pick_reference services =
    let rec go s =
      if s >= z then None
      else if services.Rtnet_mac.Harness.alive s && synced.(s) then
        Some autos.(s)
      else go (s + 1)
    in
    go 0
  in
  let after services ~now ~resolution ~next_free =
    let ref_pre =
      match pick_reference services with Some a -> a | None -> autos.(0)
    in
    let pre_phase = Automaton.phase_name ref_pre in
    let slot = Channel.slot_bits services.Rtnet_mac.Harness.channel in
    if telemetry && pre_phase = "sts" then begin
      match resolution with
      | Channel.Tx _ | Channel.Clash { survivor = Some _; _ } ->
        sts_sent := true
      | Channel.Idle | Channel.Garbled _ | Channel.Clash { survivor = None; _ }
        -> ()
    end;
    (* Slot events, classified by the phase the slot was spent in. *)
    (match resolution with
    | Channel.Idle ->
      emit (Ddcr_trace.Idle_slot { time = now; phase = pre_phase })
    | Channel.Garbled { on_wire } ->
      emit (Ddcr_trace.Garbled_slot { time = now; on_wire })
    | Channel.Tx { src; tag; on_wire } ->
      emit
        (Ddcr_trace.Frame_sent
           {
             time = now;
             finish = now + on_wire;
             source = src;
             uid = tag;
             via = via_of_phase pre_phase;
           })
    | Channel.Clash { survivor; contenders } ->
      emit
        (Ddcr_trace.Collision_slot
           { time = now; phase = pre_phase; contenders = List.length contenders });
      (match survivor with
      | Some (src, tag, on_wire) ->
        emit
          (Ddcr_trace.Frame_sent
             {
               time = now + slot;
               finish = now + slot + on_wire;
               source = src;
               uid = tag;
               via = via_of_phase pre_phase;
             })
      | None -> ()));
    let next_free =
      match resolution with
      | Channel.Tx { src; on_wire; _ } -> do_burst services src (now + on_wire)
      | Channel.Clash { survivor = Some (src, _, on_wire); _ } ->
        do_burst services src (now + slot + on_wire)
      | Channel.Idle | Channel.Garbled _ | Channel.Clash { survivor = None; _ }
        ->
        next_free
    in
    (* Liveness transitions: a station entering a crash window loses
       its replica (stale on rejoin); one leaving it rejoins
       listen-only. *)
    Array.iter
      (fun a ->
        let s = a.Automaton.source in
        let alive = services.Rtnet_mac.Harness.alive s in
        (match (prev_alive.(s), alive) with
        | true, false ->
          synced.(s) <- false;
          emit (Ddcr_trace.Crash { time = now; source = s })
        | false, true -> emit (Ddcr_trace.Rejoin { time = now; source = s })
        | _ -> ());
        prev_alive.(s) <- alive)
      autos;
    (* Each live, synced replica advances on its OWN observation of the
       slot — equal to the wire unless the fault plan made it
       misperceive.  Desynced stations are listen-only: their stale
       replica is not advanced (it is replaced wholesale on resync). *)
    Array.iter
      (fun a ->
        let s = a.Automaton.source in
        if services.Rtnet_mac.Harness.alive s && synced.(s) then
          Automaton.observe a
            ~resolution:(services.Rtnet_mac.Harness.observed s)
            ~next_free)
      autos;
    (* Divergence detection: compare the per-slot replica-state digest
       across live synced stations; minority digests go listen-only.
       The plurality (ties broken toward the lowest station id) is
       "consensus reality" — under consistent observation all digests
       agree and this is a no-op. *)
    if plan_active then begin
      let groups : (string, int list) Hashtbl.t = Hashtbl.create 4 in
      Array.iter
        (fun a ->
          let s = a.Automaton.source in
          if services.Rtnet_mac.Harness.alive s && synced.(s) then begin
            let fp = Automaton.fingerprint a in
            let members =
              match Hashtbl.find_opt groups fp with Some l -> l | None -> []
            in
            Hashtbl.replace groups fp (s :: members)
          end)
        autos;
      if Hashtbl.length groups > 1 then begin
        let best =
          Hashtbl.fold
            (fun fp members acc ->
              let size = List.length members in
              let low = List.fold_left min max_int members in
              match acc with
              | Some (_, bsize, blow)
                when size < bsize || (size = bsize && low > blow) ->
                acc
              | _ -> Some (fp, size, low))
            groups None
        in
        let ref_fp =
          match best with Some (fp, _, _) -> fp | None -> assert false
        in
        Array.iter
          (fun a ->
            let s = a.Automaton.source in
            if
              services.Rtnet_mac.Harness.alive s
              && synced.(s)
              && Automaton.fingerprint a <> ref_fp
            then begin
              synced.(s) <- false;
              emit (Ddcr_trace.Desync { time = next_free; source = s })
            end)
          autos
      end;
      (* Degradation accounting: every live station sitting out this
         slot desynchronized extends the fault epoch. *)
      Array.iter
        (fun a ->
          let s = a.Automaton.source in
          if services.Rtnet_mac.Harness.alive s && not synced.(s) then
            services.Rtnet_mac.Harness.mark_desync s)
        autos
    end;
    let ref_post = pick_reference services in
    (if on_event <> None || telemetry then
       (* Phase-transition events, derived from the reference replica. *)
       match ref_post with
       | None -> ()
       | Some a0 -> (
         let post_phase = Automaton.phase_name a0 in
         let close_tts () =
           let sent = Automaton.last_tts_sent a0 in
           emit (Ddcr_trace.Tts_end { time = next_free; sent });
           if telemetry then begin
             if !tts_start >= 0 then
               sink.Sink.search ~tree:Sink.Time_tree ~start:!tts_start
                 ~finish:next_free ~sent;
             tts_start := -1;
             (* An unproductive TTs compresses time: reft jumped ahead
                by θ without consuming slots (Section 4.3). *)
             let theta = params.Ddcr_params.theta in
             if (not sent) && theta > 0 then
               sink.Sink.jump ~now:next_free
                 ~reft_from:(Automaton.reft a0 - theta)
                 ~reft_to:(Automaton.reft a0)
           end
         in
         let close_sts () =
           emit (Ddcr_trace.Sts_end { time = next_free });
           if telemetry then begin
             if !sts_start >= 0 then
               sink.Sink.search ~tree:Sink.Static_tree ~start:!sts_start
                 ~finish:next_free ~sent:!sts_sent;
             sts_start := -1;
             sts_sent := false
           end
         in
         match (pre_phase, post_phase) with
         | ("free" | "attempt"), "tts" ->
           emit
             (Ddcr_trace.Tts_begin { time = next_free; reft = Automaton.reft a0 });
           if telemetry then tts_start := next_free
         | "tts", "sts" ->
           let leaf = Option.value ~default:(-1) (Automaton.sts_leaf a0) in
           emit (Ddcr_trace.Sts_begin { time = next_free; time_leaf = leaf });
           if telemetry then begin
             sts_start := next_free;
             sts_sent := false
           end
         | "sts", "tts" -> close_sts ()
         | "sts", "attempt" ->
           close_sts ();
           close_tts ()
         | "tts", "attempt" -> close_tts ()
         | _, _ -> ()));
    (* Recovery.  A listen-only station re-acquires the shared state at
       the next tree-epoch boundary: the reference replica must be in
       free/attempt (no tree-search state to copy mid-flight).  If no
       live synced station remains, the lowest-id live one cold-starts
       the shared state and becomes the reference. *)
    if plan_active then begin
      (match ref_post with
      | Some _ -> ()
      | None -> (
        let rec first_alive s =
          if s >= z then None
          else if services.Rtnet_mac.Harness.alive s then Some autos.(s)
          else first_alive (s + 1)
        in
        match first_alive 0 with
        | None -> ()
        | Some a ->
          Automaton.restart a ~reft:next_free;
          synced.(a.Automaton.source) <- true;
          services.Rtnet_mac.Harness.mark_resync a.Automaton.source;
          emit
            (Ddcr_trace.Resync { time = next_free; source = a.Automaton.source })));
      match pick_reference services with
      | Some reference when Automaton.at_boundary reference ->
        Array.iter
          (fun a ->
            let s = a.Automaton.source in
            if services.Rtnet_mac.Harness.alive s && not synced.(s) then begin
              Automaton.resync a ~reference;
              synced.(s) <- true;
              services.Rtnet_mac.Harness.mark_resync s;
              emit (Ddcr_trace.Resync { time = next_free; source = s })
            end)
          autos
      | Some _ | None -> ()
    end;
    if check_lockstep then begin
      match ref_post with
      | None -> ()
      | Some a0 ->
        let reference = Automaton.fingerprint a0 in
        Array.iter
          (fun a ->
            let s = a.Automaton.source in
            if
              services.Rtnet_mac.Harness.alive s && synced.(s)
              && Automaton.fingerprint a <> reference
            then
              raise
                (Protocol_violation
                   (Printf.sprintf "lockstep broken at t=%d: %s vs %s" now
                      reference (Automaton.fingerprint a))))
          autos
    end;
    next_free
  in
  Rtnet_mac.Harness.run ~protocol:"csma-ddcr" ?fault ?plan ?analyze ~sink
    ?on_complete ?inject ~phy:inst.Instance.phy ~num_sources:z ~horizon
    ~decide ~after trace

let run ?check_lockstep ?on_event ?fault ?plan ?analyze ?sink ?on_complete
    ?inject ?(seed = 1) params inst ~horizon =
  run_trace ?check_lockstep ?on_event ?fault ?plan ?analyze ?sink ?on_complete
    ?inject params inst
    (Instance.trace inst ~seed ~horizon)
    ~horizon
