(** Multi-bus operation.

    Section 3.2 notes that "many such media can be used in parallel",
    and Section 5 reports deployed {i dual-bus} CSMA/DCR Ethernets
    (e.g. across the Ariane launchpad).  This module partitions an
    HRTDM instance's message set over [n] parallel busses (each source
    is attached to every bus), checks the feasibility conditions per
    bus, and simulates the busses independently — the multiaccess
    problem is per-bus, so everything from the single-bus theory
    applies unchanged to each member. *)

type assignment = private {
  original : Rtnet_workload.Instance.t;  (** the single-bus instance *)
  buses : Rtnet_workload.Instance.t array;  (** per-bus class subsets *)
  bus_of_class : (int * int) list;  (** class id → bus index *)
}

val partition :
  Rtnet_workload.Instance.t -> buses:int -> (assignment, string) result
(** [partition inst ~buses] splits [inst]'s classes over [buses]
    parallel busses by greedy worst-fit on peak offered load (heaviest
    class first onto the least-loaded bus) — the classic bin-packing
    heuristic for load balancing.  Tie-breaking is explicitly
    deterministic: classes of equal load are taken in ascending class
    id, and equal-load busses resolve to the lowest bus index, so the
    partition is a pure function of the class set (independent of
    input order) — required for reproducible topology fingerprints.
    Fails if [buses < 1] or there are fewer classes than busses. *)

val partition_exn :
  Rtnet_workload.Instance.t -> buses:int -> assignment
(** [partition_exn] is {!partition} or
    @raise Invalid_argument on rejection. *)

type report = {
  per_bus : (Ddcr_params.t * Feasibility.report) array;
      (** derived parameters and FC report per bus *)
  feasible : bool;  (** all busses feasible *)
  worst_margin : float;  (** max over busses *)
}

val check : assignment -> report
(** [check a] derives default CSMA/DDCR parameters per bus and
    evaluates the Section 4.3 feasibility conditions for each. *)

val run :
  ?check_lockstep:bool ->
  ?seed:int ->
  assignment ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run a ~horizon] simulates every bus independently under CSMA/DDCR
    (its own channel, its own replicas) and merges the outcomes via
    {!Rtnet_stats.Run.merge}: completions re-sorted by finish time,
    channel statistics summed.  The merged protocol label is
    ["csma-ddcr/<n>-bus"].  This is exactly the flowless star special
    case of the [Rtnet_topology] driver ([Topo.of_assignment] builds
    the equivalent bridge-free topology and its driver reproduces this
    function's outcome completion for completion — pinned by a test),
    so both scale stories share one merge code path. *)

val pp_report : Format.formatter -> report -> unit
(** [pp_report fmt r] prints per-bus margins and the verdict. *)

val dimension :
  ?max_buses:int -> Rtnet_workload.Instance.t -> (assignment * report) option
(** [dimension inst] finds the smallest number of parallel busses
    (from 1 up to [max_buses], default 4, and never more than the
    class count) for which every bus passes its feasibility conditions,
    returning the assignment and its report — or [None] if even the
    maximum does not suffice. *)
