module Int_math = Rtnet_util.Int_math
module Message = Rtnet_workload.Message
module Instance = Rtnet_workload.Instance
module Phy = Rtnet_channel.Phy

let member inst m_cls =
  List.exists
    (fun c -> c.Message.cls_id = m_cls.Message.cls_id)
    (Instance.classes inst)

let require_member inst m_cls =
  if not (member inst m_cls) then
    invalid_arg "Feasibility: class does not belong to the instance"

let rank_bound inst m_cls =
  require_member inst m_cls;
  let own = Instance.classes_of_source inst m_cls.Message.cls_source in
  List.fold_left
    (fun acc c ->
      acc
      + (Int_math.cdiv m_cls.Message.cls_deadline c.Message.cls_window
        * c.Message.cls_burst))
    (-1) own

let interference_bound inst m_cls =
  require_member inst m_cls;
  let wire_m = Phy.tx_bits inst.Instance.phy m_cls.Message.cls_bits in
  List.fold_left
    (fun acc c ->
      let numerator =
        m_cls.Message.cls_deadline + c.Message.cls_deadline - wire_m
      in
      let count = max 0 (Int_math.cdiv numerator c.Message.cls_window) in
      acc + (count * c.Message.cls_burst))
    0 (Instance.classes inst)

let static_trees_bound p inst m_cls =
  require_member inst m_cls;
  let nu = Ddcr_params.nu p m_cls.Message.cls_source in
  1 + (rank_bound inst m_cls / nu)

let s1 p ~u ~v =
  Multi_tree.bound ~m:p.Ddcr_params.static_m ~t:p.Ddcr_params.static_leaves ~u ~v

let s2 p ~v =
  float_of_int
    (Int_math.cdiv v 2
    * Xi.eq5 ~m:p.Ddcr_params.time_m ~t:p.Ddcr_params.time_leaves)

let search_slot_bound p inst m_cls =
  let u = interference_bound inst m_cls in
  let v = static_trees_bound p inst m_cls in
  s1 p ~u ~v +. s2 p ~v

(* Arbitrated medium with the re-probing discipline the automaton uses:
   every collision slot carries the smallest-keyed frame, so each of
   the u(M) interfering messages costs at most one collision slot, and
   the only other costly slots are the empty epoch probes — bounded by
   the paper's own epoch count ⌈v/2⌉ (Section 4.3's S₂ accounting). *)
let search_slot_bound_arbitrated p inst m_cls =
  let u = interference_bound inst m_cls in
  let v = static_trees_bound p inst m_cls in
  float_of_int (u + Int_math.cdiv v 2)

(* Transmission time of the u(M) interfering messages: the same
   per-class counts as u(M), weighted by each class's on-wire time. *)
let transmission_time inst m_cls =
  let wire_m = Phy.tx_bits inst.Instance.phy m_cls.Message.cls_bits in
  List.fold_left
    (fun acc c ->
      let numerator =
        m_cls.Message.cls_deadline + c.Message.cls_deadline - wire_m
      in
      let count = max 0 (Int_math.cdiv numerator c.Message.cls_window) in
      acc + (count * c.Message.cls_burst * Phy.tx_bits inst.Instance.phy c.Message.cls_bits))
    0 (Instance.classes inst)

let latency_bound p inst m_cls =
  require_member inst m_cls;
  let x = float_of_int inst.Instance.phy.Phy.slot_bits in
  float_of_int (transmission_time inst m_cls)
  +. (x *. search_slot_bound p inst m_cls)

let latency_bound_arbitrated p inst m_cls =
  require_member inst m_cls;
  let x = float_of_int inst.Instance.phy.Phy.slot_bits in
  float_of_int (transmission_time inst m_cls)
  +. (x *. search_slot_bound_arbitrated p inst m_cls)

let latency_bound_impl p inst m_cls =
  let x = float_of_int inst.Instance.phy.Phy.slot_bits in
  let v = static_trees_bound p inst m_cls in
  let epochs = Int_math.cdiv v 2 + 1 in
  let max_wire =
    List.fold_left
      (fun acc c -> max acc (Phy.tx_bits inst.Instance.phy c.Message.cls_bits))
      0 (Instance.classes inst)
  in
  latency_bound p inst m_cls
  +. (2. *. x *. float_of_int epochs)
  +. float_of_int (max_wire + p.Ddcr_params.burst_bits)

type class_report = {
  cr_cls : Message.cls;
  cr_r : int;
  cr_u : int;
  cr_v : int;
  cr_search_slots : float;
  cr_bound : float;
  cr_bound_impl : float;
  cr_feasible : bool;
}

type report = {
  per_class : class_report list;
  feasible : bool;
  worst_margin : float;
}

let check p inst =
  (match Ddcr_params.validate p ~num_sources:inst.Instance.num_sources with
  | Ok () -> ()
  | Error e -> invalid_arg ("Feasibility.check: " ^ e));
  (* The medium decides which analysis applies: destructive searches
     are bounded by the ξ machinery, wired-OR arbitration by the
     re-probe accounting. *)
  let arbitrated =
    inst.Instance.phy.Phy.semantics = Phy.Arbitration
  in
  let bound_of c =
    if arbitrated then latency_bound_arbitrated p inst c
    else latency_bound p inst c
  in
  let slots_of c =
    if arbitrated then search_slot_bound_arbitrated p inst c
    else search_slot_bound p inst c
  in
  let per_class =
    List.map
      (fun c ->
        let bound = bound_of c in
        {
          cr_cls = c;
          cr_r = rank_bound inst c;
          cr_u = interference_bound inst c;
          cr_v = static_trees_bound p inst c;
          cr_search_slots = slots_of c;
          cr_bound = bound;
          cr_bound_impl =
            latency_bound_impl p inst c
            -. latency_bound p inst c +. bound;
          cr_feasible = bound <= float_of_int c.Message.cls_deadline;
        })
      (Instance.classes inst)
  in
  let worst_margin =
    List.fold_left
      (fun acc cr ->
        max acc (cr.cr_bound /. float_of_int cr.cr_cls.Message.cls_deadline))
      0. per_class
  in
  {
    per_class;
    feasible = List.for_all (fun cr -> cr.cr_feasible) per_class;
    worst_margin;
  }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%-12s %6s %6s %4s %10s %12s %12s %s@,"
    "class" "r(M)" "u(M)" "v(M)" "S slots" "B_DDCR" "d(M)" "ok";
  List.iter
    (fun cr ->
      Format.fprintf fmt "%-12s %6d %6d %4d %10.1f %12.0f %12d %s@,"
        cr.cr_cls.Message.cls_name cr.cr_r cr.cr_u cr.cr_v cr.cr_search_slots
        cr.cr_bound cr.cr_cls.Message.cls_deadline
        (if cr.cr_feasible then "yes" else "NO");
    )
    r.per_class;
  Format.fprintf fmt "feasible: %b (worst margin %.3f)@]" r.feasible
    r.worst_margin
