(** Worst-case tree search times on an {e arbitrated} medium.

    Section 3.2 notes that on busses internal to ATM switches an
    exclusive-OR wired logic yields {e non-destructive} collisions, and
    that deriving the corresponding analysis "is reasonably
    straightforward" from the destructive one.  This module is that
    derivation, executable: on an arbitrated medium every collision
    slot also carries the contender with the smallest key, so the
    search recursion loses one active leaf at each internal collision —
    the adversary chooses the winner's position (it controls deadline
    keys) to maximise the remaining search.

    [ζ_k^t] (zeta) counts the costly slots — collision slots (which
    each carry one frame but still cost a slot time beyond the frame)
    plus empty probes — in the worst case over both leaf placements and
    key assignments:

    [ζ_k^t = 1 + max over compositions k₁+…+k_m = k, max over the
    winner's subtree c (k_c ≥ 1) of Σ_{i≠c} ζ_{k_i}^{t/m} +
    ζ_{k_c−1}^{t/m}], with [ζ_0 = 1], [ζ_1 = 0].

    Arbitration is a clear win at low contention — [ζ_2^t = m]
    regardless of depth, versus [ξ_2^t = m·log_m t − 1] — but {e not}
    uniformly: near [k = t] the winners carried at internal collisions
    leave emptied leaves that still get probed, so [ζ_k^t] can exceed
    [ξ_k^t] (first at [k ≈ 3t/4] for [m = 2], much earlier for larger
    [m]).  The tests check the low-contention dominance, the agreement
    of the two independent implementations below, and that every
    simulated arbitrated search (over random key assignments) stays
    within [ζ].  Because of the high-contention penalty, the CSMA/DDCR
    automaton does {e not} split after a carried winner: on arbitrated
    media it re-probes the same interval (CAN-style), resolving [k]
    contenders in exactly [k − 1] slots — the trivial bound
    {!Feasibility.search_slot_bound_arbitrated} uses.  This module
    quantifies the split alternative, i.e. what running the destructive
    search schedule unchanged over a wired-OR bus would cost. *)

val table : m:int -> t:int -> int array
(** [table ~m ~t] is [ζ_0^t .. ζ_t^t] by bottom-up dynamic programming
    (max-plus composition convolution with a winner-shifted child).
    @raise Invalid_argument on invalid tree shape. *)

val of_recursion : m:int -> t:int -> k:int -> int
(** [of_recursion ~m ~t ~k] evaluates the defining recursion directly
    (exponential in the tree depth — reference implementation for the
    tests; keep [t] small). *)

val exact : m:int -> t:int -> k:int -> int
(** [exact ~m ~t ~k] is [table ~m ~t].(k) — no closed form is known, so
    this simply memoises the DP per tree shape. *)
