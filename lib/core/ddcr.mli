(** The CSMA/DDCR protocol — Carrier Sense Multi Access / Deadline
    Driven Collision Resolution (Section 3.2).

    Every source runs the same deterministic automaton and keeps a
    replica of the shared protocol state (current phase, reference time
    [reft], tree-search stacks, highest searched leaf [f*]) updated
    {b only from channel feedback}, plus its private EDF queue.  The
    interpretation choices for the paper's informal description are
    listed in DESIGN.md §4.

    Phases:
    - {b free CSMA-CD}: no unresolved collision pending; any source
      with a non-empty queue attempts its [msg*]; the first collision
      starts CSMA/DDCR;
    - {b time tree search} ({i TTs}): a balanced [time_m]-ary search
      over the [F] deadline-class leaves; a source participates in the
      probed interval iff
      [f(reft, msg★) = max(⌊(DM − α − reft)/c⌋, f★ + 1)]
      falls inside it (and is [<= F − 1]);
    - {b static tree search} ({i STs}): entered on a time-tree leaf
      collision; sources walk their statically owned indices, at most
      [ν_i] transmissions each, with unsearched-index joins for late
      messages;
    - {b open attempt}: after each TTs, one à-la-CSMA-CD attempt slot;
      its collision resets [reft] and starts the next TTs; silence
      returns the channel to free CSMA-CD.  A TTs that transmitted
      nothing first advances [reft] by [θ(c)] (compressed time). *)

exception Protocol_violation of string
(** Raised if the channel feedback is inconsistent with the protocol's
    invariants (e.g. a collision on a static tree leaf, which disjoint
    index ownership makes impossible). *)

(** The pure per-replica transition function: the whole DDCR step as a
    [state -> feedback -> state] map over immutable records.  The
    mutable {!Automaton} below is a thin wrapper over this module; the
    explicit-state model checker ([Rtnet_model]) explores these values
    directly — they are hashable, comparable and structurally shared,
    so a frontier of reached states needs no defensive copies. *)
module Step : sig
  type tts = {
    t_stack : (int * int) list;
        (** unsearched time-tree intervals, ascending [(lo, width)] *)
    f_star : int;  (** highest searched time leaf, [-1] at entry *)
    sent : bool;  (** "out": something transmitted this TTs *)
  }

  type sts = {
    s_stack : (int * int) list;  (** unsearched static intervals *)
    time_leaf : int;  (** the colliding deadline class *)
  }

  type phase = Free | Attempt | Tts of tts | Sts of sts * tts

  type state = {
    phase : phase;
    reft : int;  (** reference time *)
    rank : int;  (** next unused own static index in current STs *)
    last_out : bool;  (** [out] flag of the last completed TTs *)
  }

  val init : state
  (** The initial (free CSMA-CD, [reft = 0]) state. *)

  val decide :
    Ddcr_params.t ->
    source:int ->
    state ->
    msg_star:Rtnet_workload.Message.t option ->
    Rtnet_channel.Channel.attempt option
  (** Pure counterpart of {!Automaton.decide}. *)

  val observe :
    Ddcr_params.t ->
    source:int ->
    state ->
    resolution:Rtnet_channel.Channel.resolution ->
    next_free:int ->
    state
  (** Pure counterpart of {!Automaton.observe}: the state after the
      slot's channel feedback.  [source] is needed only for the private
      rank bump on the replica's own static-tree transmissions.
      @raise Protocol_violation on inconsistent feedback. *)

  val fingerprint : state -> string
  (** Digest of the {b shared} state (phase, stacks, [reft], [f*]);
      byte-identical to {!Automaton.fingerprint} on the wrapped state.
      Private state (the rank) is excluded. *)

  val phase_name : state -> string
  (** ["free"], ["attempt"], ["tts"] or ["sts"]. *)

  val at_boundary : state -> bool
  (** Between tree epochs (phase free or attempt). *)

  val sts_leaf : state -> int option
  (** The colliding deadline class of an STs in progress, if any. *)

  val wf : Ddcr_params.t -> source:int -> state -> (unit, string) result
  (** [wf p ~source st] checks structural well-formedness — the
      slot-accounting obligations the model checker asserts on every
      reached state: stack intervals non-empty, in bounds, ascending
      and disjoint; [f* + 1] equal to the top time interval's start;
      [reft >= 0]; [0 <= rank <= ν(source)]; a non-empty stack in each
      in-search phase and the STs leaf in range. *)
end

(** The per-source protocol automaton, exposed for unit tests and for
    the lockstep-replication property test.  A thin mutable wrapper
    around {!Step}. *)
module Automaton : sig
  type t
  (** Replicated protocol state of one source. *)

  val state : t -> Step.state
  (** [state a] is the wrapped pure state (shared, immutable). *)

  val create : Ddcr_params.t -> source:int -> t
  (** [create params ~source] is the automaton of source [source] in
      its initial (free CSMA-CD) state. *)

  val decide :
    t -> msg_star:Rtnet_workload.Message.t option -> Rtnet_channel.Channel.attempt option
  (** [decide a ~msg_star] is the source's action for the next
      contention slot, given the head of its local EDF queue: [Some
      attempt] to transmit, [None] to stay silent. *)

  val observe :
    t ->
    resolution:Rtnet_channel.Channel.resolution ->
    next_free:int ->
    unit
  (** [observe a ~resolution ~next_free] advances the replica with the
      channel feedback of the slot; [next_free] is the start of the
      next contention slot ("local physical time" at which the next
      decision is taken). *)

  val fingerprint : t -> string
  (** [fingerprint a] digests the {b shared} replica state (phase,
      stacks, [reft], [f*]) — equal across all sources after every slot
      iff replication is in lockstep.  Private state (the static-index
      rank) is excluded. *)

  val phase_name : t -> string
  (** [phase_name a] is ["free"], ["attempt"], ["tts"] or ["sts"]. *)

  val reft : t -> int
  (** [reft a] is the replica's current reference time. *)

  val last_tts_sent : t -> bool
  (** [last_tts_sent a] is the [out] flag of the most recently
      completed time tree search ([false] before the first one). *)

  val sts_leaf : t -> int option
  (** [sts_leaf a] is the colliding deadline class of the static tree
      search in progress, if any. *)

  val at_boundary : t -> bool
  (** [at_boundary a] iff the replica is between tree epochs (phase
      free or attempt) — the only states a recovering station may copy. *)

  val resync : t -> reference:t -> unit
  (** [resync a ~reference] replaces [a]'s shared replica state (phase,
      [reft], [out]) with [reference]'s and resets its private rank —
      the divergence-recovery step, legal only at a tree-epoch boundary.
      @raise Invalid_argument if [reference] is inside a tree search. *)

  val restart : t -> reft:int -> unit
  (** [restart a ~reft] cold-starts the replica (free CSMA-CD, the
      given [reft]) — used when no synced station is left to copy. *)
end

val run_trace :
  ?check_lockstep:bool ->
  ?on_event:(Ddcr_trace.event -> unit) ->
  ?fault:Rtnet_channel.Channel.fault ->
  ?plan:Rtnet_channel.Fault_plan.t ->
  ?analyze:bool ->
  ?sink:Rtnet_telemetry.Sink.t ->
  ?on_complete:
    (msg:Rtnet_workload.Message.t -> start:int -> finish:int -> unit) ->
  ?inject:(now:int -> Rtnet_workload.Message.t list) ->
  Ddcr_params.t ->
  Rtnet_workload.Instance.t ->
  Rtnet_workload.Message.t list ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run_trace params inst trace ~horizon] simulates CSMA/DDCR for the
    given arrival trace on [inst]'s medium until [horizon] (bit-times)
    and reports the outcome (completions carry exact start/finish
    times; the channel's safety log is embedded in the statistics).
    With [check_lockstep] (default [false]) every slot asserts that all
    sources' replicas agree — O(z) extra work per slot.  [on_event]
    receives one {!Ddcr_trace.event} per slot plus phase transitions
    (see {!Ddcr_trace.collector}).  [fault] injects channel noise
    (garbled frames); the protocol retries garbled frames and remains
    safe, at the cost of latency.  [analyze] is forwarded to
    {!Rtnet_mac.Harness.run} (default [true]): the completion list is
    reconciled against the channel's transmission log when the run
    ends.

    [plan] runs the protocol under a {!Rtnet_channel.Fault_plan}:

    - a crashed source neither decides nor observes; on rejoin it is
      {e desynchronized} and stays listen-only;
    - every live synced replica is fed its own local observation
      ([Harness.observed]), so per-source misperception can make
      replicas diverge;
    - divergence is detected the slot it occurs by comparing replica
      digests ({!Automaton.fingerprint}); sources disagreeing with the
      plurality (ties broken towards the lowest id) are desynchronized
      and go listen-only;
    - a desynchronized source recovers at the first tree-epoch boundary
      (the plurality replica in phase free/attempt): it copies the
      reference replica state and re-enters contention — within one
      tree epoch of the fault clearing.  If {e no} synced source
      remains, the lowest-id live source cold-restarts the protocol and
      the others resync to it;
    - with [check_lockstep], lockstep is asserted among the live synced
      replicas only (the property fault plans preserve).

    [fault] and [plan] are mutually exclusive; the outcome's [faults]
    statistics are [Some] iff [plan] was given.

    [sink] (default {!Rtnet_telemetry.Sink.null}) receives, on top of
    the harness probes, the DDCR-specific ones: one [search] span per
    completed TTs/STs descent and one [jump] per compressed-time θ
    advance (an unproductive TTs).

    [on_complete] and [inject] are forwarded verbatim to
    {!Rtnet_mac.Harness.run} — the federation hooks a multi-hop
    topology driver uses to ingest this segment's completions online
    and to inject bridged arrivals from upstream segments.
    @raise Invalid_argument if [params] fail validation for [inst].
    @raise Protocol_violation on inconsistent channel feedback. *)

val run :
  ?check_lockstep:bool ->
  ?on_event:(Ddcr_trace.event -> unit) ->
  ?fault:Rtnet_channel.Channel.fault ->
  ?plan:Rtnet_channel.Fault_plan.t ->
  ?analyze:bool ->
  ?sink:Rtnet_telemetry.Sink.t ->
  ?on_complete:
    (msg:Rtnet_workload.Message.t -> start:int -> finish:int -> unit) ->
  ?inject:(now:int -> Rtnet_workload.Message.t list) ->
  ?seed:int ->
  Ddcr_params.t ->
  Rtnet_workload.Instance.t ->
  horizon:int ->
  Rtnet_stats.Run.outcome
(** [run params inst ~horizon] is {!run_trace} on
    [Instance.trace inst ~seed ~horizon] (default seed 1). *)
