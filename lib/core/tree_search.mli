(** Executable balanced m-ary tree search ({i m-ts}, Section 3.2).

    Runs the deterministic search procedure on a {b static} set of
    active leaves and records the slot-by-slot trace: first time there
    is a collision the leftmost of the [m] subtrees is examined; only
    sources whose index lies in that subtree stay active; when a
    subtree is fully searched (silence or one transmission) the
    adjacent subtree is searched, and so on.

    This module is the measurement instrument for validating the P1
    analysis: for any leaf subset, [cost (run ...)] must be at most
    [Xi.exact], and on [Xi.worst_case_subset] it must be exactly equal.
    The protocol simulator ({!Ddcr}) re-implements the same walk
    incrementally because its active sets change during the search. *)

type outcome =
  | Empty  (** probed interval held no active leaf: one empty slot *)
  | Isolated of int  (** exactly one active leaf: transmission, no slot
                         counted *)
  | Split  (** two or more active leaves: one collision slot, the [m]
               sub-intervals are searched next *)
  | Leaf_collision of int list
      (** two or more actives on a single leaf — terminal for the
          static search; in CSMA/DDCR's time trees this is where the
          static tree search is invoked *)

type step = {
  lo : int;  (** lowest leaf of the probed interval *)
  width : int;  (** interval width (a power of [m]) *)
  actives : int list;  (** active leaves inside, ascending *)
  outcome : outcome;  (** what the channel reported *)
}

type trace = step list
(** Probe order of the full search, first probe first. *)

val run : m:int -> t:int -> active:int list -> trace
(** [run ~m ~t ~active] searches the [t]-leaf balanced [m]-ary tree
    whose active leaves are [active] (distinct, in [\[0, t)]).
    Multiply-occupied leaves produce [Leaf_collision] steps (counted as
    collision slots) and their occupants are abandoned, matching a
    search in which ties are delegated to another mechanism.
    @raise Invalid_argument on invalid tree shape or leaves. *)

val cost : trace -> int
(** [cost tr] is the number of non-transmission slots: [Empty],
    [Split] and [Leaf_collision] steps each count 1; [Isolated] counts
    0 — the quantity [ξ] bounds. *)

val isolated : trace -> int list
(** [isolated tr] is the leaves isolated (transmitted), in search
    order — always left-to-right. *)

val pp_step : Format.formatter -> step -> unit
(** [pp_step fmt s] prints one probe in a compact form. *)

val run_arbitrated :
  m:int -> t:int -> active:(int * int) list -> int * int list
(** [run_arbitrated ~m ~t ~active] searches the tree on a
    {e non-destructive} medium ({!Rtnet_channel.Phy.Arbitration}):
    [active] pairs distinct leaves with arbitration keys; a probe of an
    interval holding two or more actives costs one slot {e and}
    delivers the smallest-keyed one, after which the sub-intervals are
    searched.  Returns [(costly_slots, delivery_order)] where
    [costly_slots] counts collision and empty slots (the quantity
    {!Xi_arb} bounds) and [delivery_order] lists the leaves in
    delivery order.
    @raise Invalid_argument on duplicate leaves or invalid shape. *)
