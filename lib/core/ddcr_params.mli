(** CSMA/DDCR protocol parameters (Section 3.2).

    A configuration fixes the two tree shapes and the deadline
    equivalence classes:

    - the {b time tree}: [time_leaves = F] leaves (a power of
      [time_m]), each leaf a deadline equivalence class of width
      [class_width = c] bit-times, covering the scheduling horizon
      [c·F];
    - the class-mapping offset [alpha = α] (messages are steered into a
      class slightly before it is "too late");
    - the compressed-time increment [theta = θ(c)] applied to [reft]
      when a time tree search ends without any transmission (0 turns
      the mode off);
    - the {b static tree}: [static_leaves = q] leaves (a power of
      [static_m]), with each source [s_i] owning the disjoint,
      ascending index set [static_indices.(i)] ([ν_i] indices — the
      maximum number of messages [s_i] can transmit per static
      search). *)

type t = {
  time_m : int;  (** branching degree of time trees *)
  time_leaves : int;  (** [F], a power of [time_m] *)
  class_width : int;  (** [c], bit-times *)
  alpha : int;  (** [α], bit-times *)
  theta : int;  (** [θ(c)], bit-times; [0] = compressed time off *)
  static_m : int;  (** branching degree of static trees *)
  static_leaves : int;  (** [q], a power of [static_m] *)
  static_indices : int array array;  (** per-source static indices *)
  burst_bits : int;
      (** packet-bursting budget (Section 5): once a source acquires
          the channel it may send further EDF-ranked frames from its
          queue as long as their cumulative on-wire length fits within
          this budget; [0] disables bursting *)
}

val validate : t -> num_sources:int -> (unit, string) result
(** [validate p ~num_sources] checks: tree shapes are powers of their
    branching degrees; [c > 0], [α >= 0], [θ >= 0]; there is one
    non-empty ascending index set per source; all indices lie in
    [\[0, q)] and are disjoint across sources. *)

val nu : t -> int -> int
(** [nu p i] is [ν_i], the number of static indices of source [i]. *)

type allocation =
  | Round_robin
      (** source [i] owns indices [i, z+i, 2z+i, …] — each source's
          indices spread across every static subtree *)
  | Contiguous
      (** source [i] owns one block of consecutive leaves — a lone
          bursting source keeps its search localised in one subtree *)
  | Weighted
      (** leaves divided in proportion to each source's peak offered
          load (largest-remainder rounding, at least one each) — heavy
          sources drain more of a burst per static search *)

val default :
  ?indices_per_source:int ->
  ?time_leaves:int ->
  ?branching:int ->
  ?allocation:allocation ->
  Rtnet_workload.Instance.t ->
  t
(** [default inst] derives a workable configuration for [inst]:
    [branching]-ary trees (default quaternary — the better branching
    per Fig. 2; [time_leaves] is rounded up to the next power of
    [branching]), the static tree sized
    for at least [indices_per_source] (default 1) indices per source
    and then {b filled} — every source receives [max(requested, q/z)]
    round-robin indices, since idle static leaves cost search slots
    while extra indices let a source drain more of a burst per static
    search — [α = c] and compressed time off.  [allocation] (default
    {!Round_robin}) chooses how the [q] static leaves are divided among
    the sources; the paper's mapping model is unrestricted (Section
    3.2: "not all q integers need be allocated"), and the choice is an
    ablation dimension (experiment E17).  [c] is sized both to
    a typical static-search duration and so that the scheduling horizon
    [c·F] covers the largest relative deadline (otherwise fresh
    messages are shut out of time trees — the idleness pathology that
    compressed time works around). *)

val with_burst : t -> int -> t
(** [with_burst p bits] is [p] with the packet-bursting budget
    replaced — the IEEE 802.3z-style extension of Section 5. *)

val with_theta : t -> int -> t
(** [with_theta p th] is [p] with the compressed-time increment
    replaced — used by the ablation experiments. *)

val horizon_classes : t -> int
(** [horizon_classes p] is the scheduling horizon [c·F] in
    bit-times. *)

val to_json : t -> Rtnet_util.Json.t
(** Canonical encoding (fixed key order); repro artifacts embed it. *)

val of_json : Rtnet_util.Json.t -> (t, string) result
(** Decodes and {!validate}s (against the number of index rows): a
    malformed configuration is rejected at the JSON boundary. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt p] prints a one-line parameter summary. *)
