(** Network dimensioning: choosing CSMA/DDCR parameters from the FCs.

    Section 2.2 presents the feasibility conditions as "an essential
    tool for an end user or a technology provider who has to assign
    numerical values".  This module turns them into a search: given an
    instance, explore protocol configurations (time-tree size, static
    branching, indices per source) and return one under which the
    instance is provably feasible — or the closest candidate with its
    margin when none is. *)

type verdict =
  | Feasible of Ddcr_params.t
      (** a configuration with worst margin [<= 1] (paper FC holds) *)
  | Infeasible of Ddcr_params.t * float
      (** best candidate found and its worst margin [> 1] *)

val dimension :
  ?time_leaf_candidates:int list ->
  ?indices_candidates:int list ->
  Rtnet_workload.Instance.t ->
  verdict
(** [dimension inst] searches the candidate grid (time-tree leaf
    counts, default [\[16; 64; 256\]]; indices per source, default
    [\[1; 2; 4\]]) with the derived defaults for the remaining
    parameters and returns the configuration with the smallest worst
    margin.  Preference among feasible configurations goes to the
    smallest scheduling horizon (tightest deadline classes, fewest
    inversions). *)

val margin :
  Ddcr_params.t -> Rtnet_workload.Instance.t -> float
(** [margin p inst] is the worst ratio [B_DDCR(M)/d(M)] over classes —
    [<= 1] iff the FCs hold. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** [pp_verdict fmt v] prints the chosen configuration and margin. *)
