(** Problem P2: worst-case searches over consecutive trees
    (Section 4.2).

    When [u] messages are transmitted over [v] consecutive [t]-leaf
    balanced m-ary tree searches, the worst-case total search time is
    the optimisation problem Eq. 16.  The paper bounds it using the
    concavity of [ξ̃]: the maximum of [Σ ξ̃_{k_i}^t] under
    [Σ k_i = u, k_i ∈ [2, t]] is attained at the equal split
    (Eq. 18), giving the computable bound Eq. 19:

    [max Σ ξ_{k_i}^t ≤ v·ξ̃_{u/v}^t = ξ̃_u^{tv} − (v−1)/(m−1)]. *)

val tilde_real : m:int -> t:float -> k:float -> float
(** [tilde_real ~m ~t ~k] is Eq. 11 extended to real tree size [t]
    (needed by Eq. 19, where the "tree" has [t·v] leaves which is not a
    power of [m]).  Requires [0 < k] and [0 < t]. *)

val bound : m:int -> t:int -> u:int -> v:int -> float
(** [bound ~m ~t ~u ~v] is the equal-split form [v·ξ̃_{u/v}^t] of
    Eq. 18.  The per-tree share [u/v] is clamped to [\[2, t\]]: below 2
    the clamp can only increase the value (valid upper bound, since
    [ξ_0, ξ_1 ≤ ξ̃_2]), and above [t] the message surplus is folded
    into additional trees ([v ← ⌈u/t⌉]).
    @raise Invalid_argument if [u < 0] or [v < 1]. *)

val bound_eq19 : m:int -> t:int -> u:int -> v:int -> float
(** [bound_eq19 ~m ~t ~u ~v] is the right-hand side of Eq. 19,
    [ξ̃_u^{tv} − (v−1)/(m−1)] — provably equal to {!bound} when
    [2 ≤ u/v ≤ t]; exposed separately so tests can verify Eq. 18's
    algebraic identity. *)

val worst_exact_of : xi:int array -> t:int -> u:int -> v:int -> int
(** [worst_exact_of ~xi ~t ~u ~v] is the exact optimisation of Eq. 16
    for an arbitrary per-tree cost table [xi] (index [k ∈ [0, t]]) —
    used with {!Xi_arb.table} for arbitrated media, where no concave
    asymptote is available but the tree sizes in play are small enough
    for the DP to be exact.
    @raise Invalid_argument unless [2v <= u <= t·v]. *)

val worst_exact : m:int -> t:int -> u:int -> v:int -> int
(** [worst_exact ~m ~t ~u ~v] solves Eq. 16 exactly by dynamic
    programming over compositions [k_1 + … + k_v = u] with
    [k_i ∈ [2, t]], using the exact [ξ] (left-hand side of Eq. 17/19).
    @raise Invalid_argument unless [2v <= u <= t·v]. *)
